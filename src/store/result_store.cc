#include "store/result_store.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <unistd.h>

#include "common/diag.hh"

namespace fs = std::filesystem;

namespace tlpsim::store
{

namespace
{

constexpr const char *kMagic = "tlpsim-row v1";

std::string
checksumHex(std::uint64_t sum)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(sum));
    return buf;
}

std::uint64_t
fnv1a(std::uint64_t h, const std::string &s)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ULL;

/** Parse one "<label> <value>" header line out of @p text at @p pos;
 *  advances pos past the newline. Returns false on any mismatch. */
bool
headerLine(const std::string &text, std::size_t &pos, const char *label,
           std::string &value_out)
{
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos)
        return false;
    const std::string line = text.substr(pos, eol - pos);
    const std::string want = std::string(label) + " ";
    if (line.compare(0, want.size(), want) != 0)
        return false;
    value_out = line.substr(want.size());
    pos = eol + 1;
    return !value_out.empty();
}

bool
parseSize(const std::string &s, std::size_t &out)
{
    if (s.empty())
        return false;
    std::size_t v = 0;
    for (char c : s) {
        if (c < '0' || c > '9')
            return false;
        v = v * 10 + static_cast<std::size_t>(c - '0');
    }
    out = v;
    return true;
}

} // namespace

std::uint64_t
fingerprint64(const std::string &s)
{
    return fnv1a(kFnvBasis, s);
}

std::string
fingerprintHex(const std::string &s)
{
    return checksumHex(fingerprint64(s));
}

unsigned
shardOf(const std::string &key, unsigned shards)
{
    if (shards <= 1)
        return 0;
    return static_cast<unsigned>(fingerprint64(key) % shards);
}

ShardSpec
parseShardSpec(const std::string &text)
{
    const std::size_t slash = text.find('/');
    ShardSpec spec;
    std::size_t index = 0;
    std::size_t count = 0;
    if (slash == std::string::npos
        || !parseSize(text.substr(0, slash), index)
        || !parseSize(text.substr(slash + 1), count) || count == 0
        || index >= count) {
        throw ConfigError("shard spec '" + text
                          + "': expected i/N with 0 <= i < N (e.g. 0/4)");
    }
    spec.index = static_cast<unsigned>(index);
    spec.count = static_cast<unsigned>(count);
    return spec;
}

ResultStore::ResultStore(const std::string &dir)
    : dir_(dir), rows_dir_(dir + "/rows"), quarantine_dir_(dir
                                                          + "/quarantine")
{
    std::error_code ec;
    fs::create_directories(rows_dir_, ec);
    if (!ec)
        fs::create_directories(quarantine_dir_, ec);
    if (ec) {
        throw ConfigError("cannot create result store at '" + dir
                          + "': " + ec.message());
    }
    // Temp files are crash leftovers: a writer that died between write
    // and rename. They are inert (load() never looks at them), but a
    // long-lived store would accumulate them, so sweep on open. A row
    // being written *right now* by a concurrent process may lose its
    // temp file here; its rename fails and is diagnosed, and the point
    // is simply recomputed on that process's next run.
    for (const auto &entry : fs::directory_iterator(rows_dir_, ec)) {
        if (entry.path().filename().string().find(".tmp.")
            != std::string::npos) {
            fs::remove(entry.path(), ec);
        }
    }
}

std::string
ResultStore::rowPath(const std::string &key) const
{
    return rows_dir_ + "/" + fingerprintHex(key) + ".row";
}

bool
ResultStore::verifyAndParse(const std::string &path, const std::string &key,
                            Config &row_out, std::string &reason_out) const
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        reason_out = "unreadable";
        return false;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof()) {
        reason_out = "read error";
        return false;
    }

    std::size_t pos = 0;
    std::size_t eol = text.find('\n');
    if (eol == std::string::npos || text.substr(0, eol) != kMagic) {
        reason_out = "bad magic (not a tlpsim row, or a torn write)";
        return false;
    }
    pos = eol + 1;

    std::string key_len_s;
    std::string row_len_s;
    std::string sum_s;
    std::size_t key_len = 0;
    std::size_t row_len = 0;
    if (!headerLine(text, pos, "key", key_len_s)
        || !headerLine(text, pos, "row", row_len_s)
        || !headerLine(text, pos, "sum", sum_s)
        || !parseSize(key_len_s, key_len) || !parseSize(row_len_s, row_len)) {
        reason_out = "malformed header";
        return false;
    }
    if (text.size() - pos != key_len + row_len) {
        reason_out = "truncated: header declares "
            + std::to_string(key_len + row_len) + " payload byte(s), file "
            "holds " + std::to_string(text.size() - pos);
        return false;
    }
    const std::string payload = text.substr(pos);
    if (checksumHex(fnv1a(kFnvBasis, payload)) != sum_s) {
        reason_out = "checksum mismatch (bit rot or a torn write)";
        return false;
    }
    const std::string stored_key = payload.substr(0, key_len);
    if (!key.empty() && stored_key != key) {
        // Astronomically unlikely 64-bit fingerprint collision — but a
        // collision served as a hit would silently poison a figure, so
        // the full key is the final arbiter.
        reason_out = "fingerprint collision: stored row belongs to a "
                     "different design point";
        return false;
    }
    try {
        row_out = Config::parse(payload.substr(key_len), path);
    } catch (const ConfigError &e) {
        reason_out = std::string("unparseable outcome: ") + e.what();
        return false;
    }
    if (row_out.getString(kStatusKey, "").empty()) {
        reason_out = "outcome lacks a status field";
        return false;
    }
    return true;
}

void
ResultStore::quarantine(const std::string &path, const std::string &reason)
{
    std::string target;
    {
        std::lock_guard<std::mutex> lock(m_);
        ++counters_.quarantined;
        target = quarantine_dir_ + "/"
            + fs::path(path).filename().string() + "."
            + std::to_string(static_cast<unsigned long>(::getpid())) + "."
            + std::to_string(tmp_seq_++) + ".bad";
    }
    std::error_code ec;
    fs::rename(path, target, ec);
    if (ec) {
        // Can't move it aside (permissions, concurrent quarantine):
        // remove it so it cannot be re-served, which is the property
        // that matters.
        fs::remove(path, ec);
        target = "(removed)";
    }
    diag("store", "quarantined " + path + " -> " + target + ": " + reason
                      + "; the point will be recomputed");
}

std::optional<Config>
ResultStore::load(const std::string &key)
{
    const std::string path = rowPath(key);
    std::error_code ec;
    if (!fs::exists(path, ec)) {
        std::lock_guard<std::mutex> lock(m_);
        ++counters_.misses;
        return std::nullopt;
    }
    Config row;
    std::string reason;
    if (!verifyAndParse(path, key, row, reason)) {
        quarantine(path, reason);
        std::lock_guard<std::mutex> lock(m_);
        ++counters_.misses;
        return std::nullopt;
    }
    std::lock_guard<std::mutex> lock(m_);
    if (row.getString(kStatusKey, "") == kStatusOk)
        ++counters_.hits;
    else
        ++counters_.failed_rows;
    return row;
}

void
ResultStore::save(const std::string &key, const Config &row)
{
    const std::string serialized = row.serialize();
    std::string text = std::string(kMagic) + "\n";
    text += "key " + std::to_string(key.size()) + "\n";
    text += "row " + std::to_string(serialized.size()) + "\n";
    text += "sum " + checksumHex(fnv1a(kFnvBasis, key + serialized)) + "\n";
    text += key;
    text += serialized;

    std::string tmp;
    {
        std::lock_guard<std::mutex> lock(m_);
        tmp = rowPath(key) + ".tmp."
            + std::to_string(static_cast<unsigned long>(::getpid())) + "."
            + std::to_string(tmp_seq_++);
    }
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        out.write(text.data(),
                  static_cast<std::streamsize>(text.size()));
        out.flush();
        if (!out.good()) {
            diag("store", "cannot write " + tmp
                              + "; the row is dropped (results are "
                                "unaffected, the point will be recomputed "
                                "next run)");
            std::error_code ec;
            fs::remove(tmp, ec);
            return;
        }
    }
    std::error_code ec;
    fs::rename(tmp, rowPath(key), ec);
    if (ec) {
        diag("store", "cannot publish " + rowPath(key) + ": " + ec.message()
                          + "; the row is dropped");
        fs::remove(tmp, ec);
        return;
    }
    std::lock_guard<std::mutex> lock(m_);
    ++counters_.saved;
}

std::size_t
ResultStore::okRowCount() const
{
    std::size_t ok = 0;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(rows_dir_, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.size() < 4 || name.substr(name.size() - 4) != ".row")
            continue;
        Config row;
        std::string reason;
        if (verifyAndParse(entry.path().string(), /*key=*/"", row, reason)
            && row.getString(kStatusKey, "") == kStatusOk) {
            ++ok;
        }
    }
    return ok;
}

ResultStore::Counters
ResultStore::counters() const
{
    std::lock_guard<std::mutex> lock(m_);
    return counters_;
}

} // namespace tlpsim::store
