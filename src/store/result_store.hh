/**
 * @file
 * Crash-safe on-disk result store for design-point sweeps.
 *
 * A ResultStore maps the Runner's design-point key (the mix/workload
 * prefix plus the full SystemConfig::effectiveConfig dump, i.e.
 * experiment::configKey) to one *row*: a small text file holding the
 * key, a Config-serialized outcome (an ok row carries the full
 * SimResult, a failed row the structured failure), and a checksum.
 * Rows are content-addressed by a 64-bit FNV-1a fingerprint of the key,
 * so re-running any sweep only simulates points whose effective config
 * — including component knob *defaults*, which the fingerprint expands
 * — actually changed.
 *
 * Durability contract:
 *   - save() composes the whole row in memory, writes it to a
 *     pid+sequence-unique temp file in the rows/ directory, then
 *     publishes it with one atomic rename. A `kill -9` at any instant
 *     leaves either the old row, the new row, or an inert temp file —
 *     never a torn row under the published name. Concurrent writers
 *     (two sweep shards on one store) each rename their own temp file;
 *     last-writer-wins, and both rows are valid (simulations are
 *     deterministic, so the contents agree).
 *   - load() verifies the magic, the declared block lengths against the
 *     file size (truncation), the checksum (corruption), and that the
 *     stored key matches the requested key (fingerprint collision).
 *     A row failing any check is *quarantined* — moved into
 *     quarantine/ and reported through diag() — and load() reports a
 *     miss, so the point is transparently recomputed rather than
 *     crashing the sweep or silently poisoning figures.
 *   - save() failures (disk full, permissions) are diagnosed, not
 *     thrown: the store is a cache, and losing a row must not kill a
 *     million-point sweep.
 *
 * On-disk layout under the store directory:
 *   rows/<fp16>.row   one row per design point (fp16 = key fingerprint)
 *   quarantine/       rows that failed verification, moved aside
 *
 * Row file format (text header, raw payload):
 *   tlpsim-row v1\n
 *   key <key-bytes>\n
 *   row <row-bytes>\n
 *   sum <16-hex FNV-1a64 of key+row payload>\n
 *   <key payload><row payload>
 */

#ifndef TLPSIM_STORE_RESULT_STORE_HH
#define TLPSIM_STORE_RESULT_STORE_HH

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "common/config.hh"

namespace tlpsim::store
{

// Row outcome keys ("status" discriminates ok rows from failure rows).
inline constexpr const char *kStatusKey = "status";
inline constexpr const char *kStatusOk = "ok";
inline constexpr const char *kStatusFailed = "failed";

/** FNV-1a 64-bit fingerprint (the content address of a row). */
std::uint64_t fingerprint64(const std::string &s);

/** fingerprint64 as fixed-width lowercase hex (the row file stem). */
std::string fingerprintHex(const std::string &s);

/** Deterministic shard assignment: which of @p shards owns @p key.
 *  Fingerprint-based, so the partition is stable across processes,
 *  hosts, and submission order; shards == 0 or 1 maps everything to
 *  shard 0. */
unsigned shardOf(const std::string &key, unsigned shards);

/** "i/N" shard spec ("0/4" = first of four). */
struct ShardSpec
{
    unsigned index = 0;
    unsigned count = 1;

    bool sharded() const { return count > 1; }
};

/** Parse "i/N" with 0 <= i < N; throws ConfigError naming the input. */
ShardSpec parseShardSpec(const std::string &text);

class ResultStore
{
  public:
    /** Open (creating if needed) the store at @p dir; sweeps inert temp
     *  files left behind by crashed writers. Throws ConfigError when the
     *  layout cannot be created. */
    explicit ResultStore(const std::string &dir);

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    const std::string &dir() const { return dir_; }

    /** The published row path for @p key (may not exist yet). */
    std::string rowPath(const std::string &key) const;

    /**
     * Load the row for @p key. Returns the stored outcome Config (check
     * kStatusKey) or nullopt on miss. Corrupt, truncated, or
     * key-mismatched rows are quarantined and reported as a miss.
     */
    std::optional<Config> load(const std::string &key);

    /** Atomically persist @p row as the outcome for @p key
     *  (write-temp-then-rename; failures diagnosed, not thrown). */
    void save(const std::string &key, const Config &row);

    /** Number of rows currently on disk whose status is "ok" (a full
     *  directory scan — resume-time reporting, not a hot path). Corrupt
     *  rows encountered during the scan are left in place; they are
     *  quarantined when load() actually needs them. */
    std::size_t okRowCount() const;

    struct Counters
    {
        std::size_t hits = 0;          ///< ok rows served
        std::size_t failed_rows = 0;   ///< failure rows seen by load()
        std::size_t misses = 0;        ///< no (usable) row
        std::size_t quarantined = 0;   ///< rows moved aside by load()
        std::size_t saved = 0;         ///< successful save() renames
    };

    Counters counters() const;

  private:
    bool verifyAndParse(const std::string &path, const std::string &key,
                        Config &row_out, std::string &reason_out) const;
    void quarantine(const std::string &path, const std::string &reason);

    std::string dir_;
    std::string rows_dir_;
    std::string quarantine_dir_;
    mutable std::mutex m_;   ///< counters + temp-name sequence
    Counters counters_;
    unsigned tmp_seq_ = 0;
};

} // namespace tlpsim::store

#endif // TLPSIM_STORE_RESULT_STORE_HH
