/**
 * @file
 * Trace-driven out-of-order core (Table III: 3.8 GHz, 4-wide, 6-stage,
 * 224-entry ROB), in the ChampSim modelling style.
 *
 * The core consumes retired-instruction records, renames their register
 * dependencies onto a producer/consumer wakeup graph, and models:
 *   - 4-wide fetch/dispatch gated by L1I misses and branch mispredictions
 *     (hashed-perceptron predictor; mispredicts stall fetch until the
 *     branch resolves plus a refill penalty);
 *   - dataflow execution: ALU ops complete ready+1, loads walk
 *     DTLB/STLB (page walks become Translation reads into the L2) and
 *     access the L1D, stores commit their write at retire;
 *   - store-to-load forwarding via a pending-store address map;
 *   - the off-chip prediction hook: FLP/Hermes are consulted when a
 *     load's address is known; "immediate" decisions fire a speculative
 *     DRAM read from the core (6-cycle predictor latency), "delayed"
 *     decisions tag the demand packet for issue-on-L1D-miss; training
 *     runs when the *demand* response returns with the true serve level.
 *
 * In-flight state lives in structure-of-arrays form: the ROB is a set of
 * parallel per-field arrays (state, ready, done, serial, ...) rather
 * than an array of structs, so the per-cycle scans (issue-list walk,
 * retire probe, wakeup chains) touch only the cache lines of the fields
 * they read. The per-entry dependent lists are intrusive chains through
 * fixed arrays (a slot has at most two unresolved operands, so
 * slot*2+operand is a perfect chain-node id) — no per-entry vectors.
 */

#ifndef TLPSIM_CORE_CORE_HH
#define TLPSIM_CORE_CORE_HH

#include <vector>

#include "common/flat_table.hh"
#include "common/ring.hh"
#include "common/stats.hh"
#include "core/branch_pred.hh"
#include "mem/packet.hh"
#include "offchip/offchip_predictor.hh"
#include "tlb/page_table.hh"
#include "tlb/tlb.hh"
#include "trace/trace.hh"

namespace tlpsim
{

class DramController;

class Core : public MemoryClient
{
  public:
    struct Params
    {
        unsigned id = 0;
        unsigned fetch_width = 4;
        unsigned retire_width = 4;
        unsigned rob_size = 224;
        unsigned lq_size = 72;
        unsigned sq_size = 56;
        unsigned load_ports = 2;
        unsigned mispredict_penalty = 6;   ///< refill bubbles post-resolve
        unsigned spec_latency = 6;         ///< FLP/Hermes trigger latency
        std::string name = "cpu0";
    };

    /** External units the core talks to. */
    struct Ports
    {
        TraceReader *trace = nullptr;
        MemoryBackend *l1i = nullptr;
        MemoryBackend *l1d = nullptr;
        /** Page-walk reads go here (the L2, as ChampSim's PTW does). */
        MemoryBackend *walk_target = nullptr;
        TranslationStack *tlbs = nullptr;
        PageTable *page_table = nullptr;
        DramController *dram = nullptr;
        OffChipPredictor *offchip = nullptr;
        /** Observer for Fig. 4: speculative request issued (core side);
         *  direct virtual call, not std::function — hot path. */
        SpecIssueObserver *spec_observer = nullptr;
    };

    Core(const Params &p, const Ports &ports, StatGroup *stats);

    void tick(Cycle now);

    /**
     * Per-cycle entry point for the simulator loop. During a quiet
     * window (tick() could change no state per nextEventCycle(), and no
     * response has arrived since — memReturn() drops the watermark) the
     * full pipeline walk collapses to the same per-cycle stall-counter
     * replay the global idle skip uses, so a stalled core costs a
     * compare and a counter bump instead of retire/issue/fetch scans.
     */
    void
    tickIfDue(Cycle now)
    {
        if (now < quiet_until_) {
            // Keep now_ fresh: responses arriving later this cycle
            // timestamp wakeups at now_ + 1, exactly as they would had
            // the core run its (no-op) tick.
            now_ = now;
            onCyclesSkipped(1);
            return;
        }
        tick(now);
        quiet_until_ = nextEventCycle(now);
    }

    void memReturn(const Packet &pkt) override;

    InstrCount retired() const { return retired_; }

    /**
     * Earliest cycle strictly after @p now at which tick() could change
     * architectural state or a stat, assuming no other component acts
     * first (events arriving via memReturn are the other components'
     * events and show up in *their* nextEventCycle). Must be called
     * after tick(now). Returns kCycleNever when the core is fully
     * quiescent until an external response arrives; per-cycle stall
     * counters during such a window are replayed by onCyclesSkipped().
     * (Non-const: inspecting the fetch gate peeks the trace cursor,
     * which may refill its chunk buffer.)
     */
    Cycle nextEventCycle(Cycle now);

    /**
     * Replay the per-cycle stat side effects of @p delta skipped no-op
     * ticks (ifetch stall / ROB-full counters), keeping a skipped run's
     * counters bit-identical to a cycle-by-cycle run. Only valid when
     * every skipped cycle was quiescent per nextEventCycle().
     */
    void onCyclesSkipped(Cycle delta);

    /** L1I presence check is routed through this probe+touch interface. */
    struct IfetchState
    {
        Addr last_line = ~Addr{0};
        bool waiting = false;
    };

  private:
    enum class State : std::uint8_t
    {
        WaitOps,     ///< operands unresolved
        WaitIssue,   ///< load: operands ready, not yet sent
        WaitWalk,    ///< load: page walk outstanding
        WaitMem,     ///< load: demand access outstanding
        Done,
    };

    struct RegState
    {
        Cycle ready = 0;
        std::int32_t producer_slot = -1;
        std::uint64_t producer_serial = 0;
    };

    struct LoadTraining
    {
        std::uint32_t rob_slot = 0;
        std::uint64_t serial = 0;
        PredictionMeta meta;
        bool data_done = false;
    };

    /** One outstanding page walk; deduped per virtual page, like a PTW
     *  MSHR: loads to the same page wait on the same walk. Waiters are
     *  chained through walk_next_ (indexed by rob slot), so piggybacking
     *  never allocates: a rob slot waits on at most one walk at a time,
     *  which makes the per-slot link array a perfect intrusive list. */
    struct WalkInflight
    {
        Addr vaddr = 0;
        std::int32_t head = -1;   ///< oldest waiting rob slot, -1 = none
        std::int32_t tail = -1;   ///< newest waiter (append point)
    };

    static constexpr std::uint64_t kIfetchReqId = ~std::uint64_t{0};

    void fetchAndDispatch(Cycle now);
    void dispatch(const TraceInstr &instr, Cycle now);
    void scheduleExec(std::uint32_t slot, Cycle now);
    void complete(std::uint32_t slot, Cycle done_cycle);
    void resolveOperand(std::uint32_t slot, Cycle ready_cycle, Cycle now);
    void issueLoads(Cycle now);
    bool issueOneLoad(std::uint32_t slot, Cycle now);
    void retire(Cycle now);
    void flushSpecDelay(Cycle now);
    bool fetchBlocked(Cycle now) const;
    void addDependent(std::uint32_t producer, std::uint32_t slot,
                      unsigned operand);

    std::uint32_t robIndex(std::uint64_t i) const
    {
        return static_cast<std::uint32_t>(i % rob_size_);
    }

    bool robFull() const { return rob_tail_ - rob_head_ >= rob_size_; }

    Params params_;
    Ports ports_;
    BranchPredictor bpred_;

    // ROB in structure-of-arrays form: one array per field, indexed by
    // rob slot. The per-cycle loops (retire head probe, issue-list scan,
    // wakeup-chain walks) each touch only the arrays they need, instead
    // of dragging a whole ~100-byte RobEntry line in per probe.
    std::size_t rob_size_ = 0;
    std::vector<Addr> rob_ip_;
    std::vector<Addr> rob_ld_vaddr_;
    std::vector<Addr> rob_st_vaddr_;
    std::vector<RegId> rob_dst_;
    std::vector<std::uint8_t> rob_unresolved_;
    std::vector<std::uint8_t> rob_is_load_;
    std::vector<std::uint8_t> rob_is_store_;
    std::vector<std::uint8_t> rob_mispred_;
    std::vector<State> rob_state_;
    std::vector<Cycle> rob_ready_;    ///< operand-ready cycle
    std::vector<Cycle> rob_done_;     ///< completion cycle (valid in Done)
    std::vector<std::uint64_t> rob_serial_;
    std::vector<std::uint64_t> rob_load_id_;
    /** Intrusive dependent chains: a consumer waits on at most two
     *  producers (operand 0/1), so chain node slot*2+operand uniquely
     *  names "operand N of consumer S". dep_head_/dep_tail_ are per
     *  producer slot; dep_next_ is per chain node. Append at tail keeps
     *  the wakeup order identical to the old per-entry vectors. */
    std::vector<std::int32_t> dep_head_;
    std::vector<std::int32_t> dep_tail_;
    std::vector<std::int32_t> dep_next_;

    std::uint64_t rob_head_ = 0;   ///< absolute index of oldest entry
    std::uint64_t rob_tail_ = 0;   ///< absolute index one past youngest
    std::uint64_t next_serial_ = 1;
    std::uint64_t next_load_id_ = 1;

    std::vector<RegState> regs_;
    std::vector<std::uint32_t> issue_list_;   ///< rob slots in WaitIssue
    // In-flight bookkeeping lives in fixed-capacity flat tables, not
    // node-based maps: the per-cycle loop must not touch the allocator
    // in steady state (tests/test_hotpath_alloc.cpp enforces this).
    FlatTable<LoadTraining> inflight_loads_;
    FlatTable<WalkInflight> walk_inflight_;
    FlatTable<int> pending_store_words_;
    /** Per-rob-slot intrusive links for WalkInflight waiter chains. */
    std::vector<std::int32_t> walk_next_;
    std::vector<std::uint64_t> walk_serial_;
    /** Hard cap on outstanding demand loads tracked in inflight_loads_
     *  (issue stalls at the cap, giving the table a strict bound). */
    std::size_t inflight_load_cap_ = 0;
    Ring<std::pair<Cycle, Packet>> spec_delay_;

    unsigned loads_in_flight_ = 0;
    unsigned stores_in_flight_ = 0;
    unsigned fetch_block_tokens_ = 0;
    Cycle fetch_stall_until_ = 0;
    IfetchState ifetch_;
    /** Set when this tick's fetch broke on a failed L1I sendRead (queue
     *  full, not waiting): that path bumps ifetch_stalls every retry
     *  cycle, so nextEventCycle() must refuse to skip over it. */
    bool fetch_retry_ = false;
    InstrCount retired_ = 0;
    Cycle now_ = 0;
    /** Quiet watermark for tickIfDue(): nextEventCycle() of the last
     *  real tick, dropped to 0 whenever a response arrives. */
    Cycle quiet_until_ = 0;

    Counter *instrs_;
    Counter *loads_;
    Counter *stores_;
    Counter *branches_;
    Counter *ifetch_stalls_;
    Counter *rob_full_;
    Counter *fwd_loads_;
    Counter *walks_;
    Counter *spec_from_core_;
};

} // namespace tlpsim

#endif // TLPSIM_CORE_CORE_HH
