#include "core/core.hh"

#include <algorithm>
#include <cassert>

#include "mem/dram.hh"

namespace tlpsim
{

namespace
{

/** Word-granularity key for the store-forwarding table. */
std::uint64_t
wordKey(Addr vaddr)
{
    return static_cast<std::uint64_t>(vaddr) >> 3;
}

} // namespace

Core::Core(const Params &p, const Ports &ports, StatGroup *stats)
    : params_(p), ports_(ports),
      bpred_({8, 1024, 20, p.name + ".bpred"}, stats),
      rob_(p.rob_size), regs_(kNumRegs),
      instrs_(stats->counter(p.name + ".instrs")),
      loads_(stats->counter(p.name + ".loads")),
      stores_(stats->counter(p.name + ".stores")),
      branches_(stats->counter(p.name + ".branches")),
      ifetch_stalls_(stats->counter(p.name + ".ifetch_stalls")),
      rob_full_(stats->counter(p.name + ".rob_full")),
      fwd_loads_(stats->counter(p.name + ".forwarded_loads")),
      walks_(stats->counter(p.name + ".page_walks")),
      spec_from_core_(stats->counter(p.name + ".spec_from_core"))
{
    issue_list_.reserve(p.lq_size);
    // Size every in-flight structure to its structural bound up front —
    // the per-cycle loop below never allocates once these are warm.
    // inflight_loads_ entries can outlive retirement (a spec-completed
    // load retires while its demand read is still in flight), so its
    // bound is a deliberate multiple of the LQ depth, enforced by an
    // issue stall in issueOneLoad().
    inflight_load_cap_ = static_cast<std::size_t>(p.lq_size) * 4;
    inflight_loads_.init(inflight_load_cap_);
    walk_inflight_.init(p.lq_size);
    pending_store_words_.init(p.sq_size);
    walk_next_.assign(p.rob_size, -1);
    walk_serial_.assign(p.rob_size, 0);
    spec_delay_.reserve(p.lq_size);
}

// Everything below runs once per simulated cycle (or per instruction /
// memory response within one). tools/hotpath_lint.py enforces that no
// allocation, std::function, or unwaived container growth appears here;
// tests/test_hotpath_alloc.cpp checks the same dynamically.
// tlpsim:hot

bool
Core::fetchBlocked(Cycle now) const
{
    return fetch_block_tokens_ > 0 || now < fetch_stall_until_;
}

void
Core::tick(Cycle now)
{
    now_ = now;
    retire(now);
    issueLoads(now);
    if (!spec_delay_.empty())
        flushSpecDelay(now);
    fetchAndDispatch(now);
}

void
Core::fetchAndDispatch(Cycle now)
{
    if (ifetch_.waiting) {
        ifetch_stalls_->add();
        return;
    }
    for (unsigned f = 0; f < params_.fetch_width; ++f) {
        if (fetchBlocked(now))
            break;
        if (rob_tail_ - rob_head_ >= rob_.size()) {
            rob_full_->add();
            break;
        }
        const TraceInstr &peeked = ports_.trace->peek();
        if (peeked.isLoad() && loads_in_flight_ >= params_.lq_size)
            break;
        if (peeked.isStore() && stores_in_flight_ >= params_.sq_size)
            break;

        // Instruction fetch at cache-line granularity.
        Addr line = blockNumber(peeked.ip);
        if (line != ifetch_.last_line) {
            Addr ipa = ports_.page_table->translate(params_.id, peeked.ip);
            if (!ports_.l1i->probe(ipa)) {
                Packet p;
                p.vaddr = peeked.ip;
                p.paddr = ipa;
                p.ip = peeked.ip;
                p.type = AccessType::Load;
                p.core = static_cast<std::uint8_t>(params_.id);
                p.requestor = this;
                p.req_id = kIfetchReqId;
                p.birth = now;
                if (ports_.l1i->sendRead(p)) {
                    ifetch_.waiting = true;
                    ifetch_.last_line = line;
                }
                ifetch_stalls_->add();
                break;
            }
            ifetch_.last_line = line;
        }

        TraceInstr instr = ports_.trace->next();
        dispatch(instr, now);
    }
}

void
Core::dispatch(const TraceInstr &instr, Cycle now)
{
    std::uint32_t slot = robIndex(rob_tail_++);
    RobEntry &e = rob_[slot];
    e.ip = instr.ip;
    e.ld_vaddr = instr.ld_vaddr;
    e.st_vaddr = instr.st_vaddr;
    e.dst = instr.dst;
    e.unresolved = 0;
    e.is_load = instr.isLoad();
    e.is_store = instr.isStore();
    e.mispredicted_branch = false;
    e.ready = now + 1;
    e.done = 0;
    e.serial = next_serial_++;
    e.load_id = 0;
    e.dependents.clear();

    for (RegId r : {instr.src0, instr.src1}) {
        if (r == kNoReg)
            continue;
        RegState &rs = regs_[r];
        if (rs.producer_slot >= 0
            && rob_[static_cast<std::uint32_t>(rs.producer_slot)].serial
                   == rs.producer_serial) {
            rob_[static_cast<std::uint32_t>(rs.producer_slot)]
                .dependents.push_back(slot);   // tlpsim:cap (kept capacity)
            ++e.unresolved;
        } else {
            e.ready = std::max(e.ready, rs.ready);
        }
    }
    if (e.dst != kNoReg) {
        regs_[e.dst] = {0, static_cast<std::int32_t>(slot), e.serial};
    }

    if (instr.branch == BranchKind::Conditional) {
        branches_->add();
        bool correct = bpred_.predictAndTrain(instr.ip, instr.taken);
        if (!correct) {
            e.mispredicted_branch = true;
            ++fetch_block_tokens_;   // released when the branch resolves
        }
    }
    if (e.is_load) {
        loads_->add();
        ++loads_in_flight_;
        e.load_id = next_load_id_++;
    }
    if (e.is_store) {
        stores_->add();
        ++stores_in_flight_;
        ++pending_store_words_[wordKey(e.st_vaddr)];
    }

    if (e.unresolved == 0)
        scheduleExec(slot, now);
    else
        e.state = State::WaitOps;
}

void
Core::scheduleExec(std::uint32_t slot, Cycle now)
{
    RobEntry &e = rob_[slot];
    if (e.is_load) {
        e.state = State::WaitIssue;
        issue_list_.push_back(slot);   // tlpsim:cap (reserved lq_size)
        return;
    }
    complete(slot, std::max(e.ready, now) + 1);
}

void
Core::complete(std::uint32_t slot, Cycle done_cycle)
{
    RobEntry &e = rob_[slot];
    e.state = State::Done;
    e.done = done_cycle;
    if (e.mispredicted_branch) {
        fetch_stall_until_ = std::max(
            fetch_stall_until_, done_cycle + params_.mispredict_penalty);
        assert(fetch_block_tokens_ > 0);
        --fetch_block_tokens_;
        e.mispredicted_branch = false;
    }
    if (e.dst != kNoReg) {
        RegState &rs = regs_[e.dst];
        if (rs.producer_slot == static_cast<std::int32_t>(slot)
            && rs.producer_serial == e.serial) {
            rs = {done_cycle, -1, 0};
        }
    }
    if (!e.dependents.empty()) {
        // Iterate in place: the complete() recursion below (via
        // resolveOperand → scheduleExec) only ever touches *younger*
        // slots' dependent lists — nothing appends to this one mid-walk
        // and rob_ itself never reallocates — so the vector's capacity
        // can be kept. (The old move-out-to-a-local freed and
        // reallocated this list once per completed producer, a
        // steady-state malloc/free pair on the per-cycle path.)
        for (std::size_t i = 0; i < e.dependents.size(); ++i)
            resolveOperand(e.dependents[i], done_cycle, now_);
        e.dependents.clear();
    }
}

void
Core::resolveOperand(std::uint32_t slot, Cycle ready_cycle, Cycle now)
{
    RobEntry &e = rob_[slot];
    e.ready = std::max(e.ready, ready_cycle);
    assert(e.unresolved > 0);
    if (--e.unresolved == 0)
        scheduleExec(slot, now);
}

void
Core::issueLoads(Cycle now)
{
    unsigned ports = params_.load_ports;
    for (std::size_t i = 0; i < issue_list_.size() && ports > 0;) {
        std::uint32_t slot = issue_list_[i];
        RobEntry &e = rob_[slot];
        if (e.state != State::WaitIssue) {
            issue_list_[i] = issue_list_.back();
            issue_list_.pop_back();
            continue;
        }
        if (e.ready > now) {
            ++i;
            continue;
        }
        if (issueOneLoad(slot, now)) {
            issue_list_[i] = issue_list_.back();
            issue_list_.pop_back();
            --ports;
        } else {
            ++i;
        }
    }
}

bool
Core::issueOneLoad(std::uint32_t slot, Cycle now)
{
    RobEntry &e = rob_[slot];
    const Addr vaddr = e.ld_vaddr;

    // Back-pressure: inflight_loads_ is sized to a fixed structural
    // bound (entries can outlive retirement while a demand read is in
    // flight); stall issue rather than grow past it.
    if (inflight_loads_.size() >= inflight_load_cap_)
        return false;

    // Store-to-load forwarding (word granularity).
    if (pending_store_words_.contains(wordKey(vaddr))) {
        fwd_loads_->add();
        complete(slot, now + 1);
        return true;
    }

    auto tr = ports_.tlbs->lookup(vaddr);
    if (tr.needs_walk) {
        Addr vpn = pageNumber(vaddr);
        if (WalkInflight *w = walk_inflight_.find(vpn)) {
            // A walk for this page is already outstanding: piggyback by
            // appending this slot to the walk's intrusive waiter chain
            // (insertion order — wakeup order must match it).
            walk_next_[slot] = -1;
            walk_serial_[slot] = e.serial;
            walk_next_[w->tail] = static_cast<std::int32_t>(slot);
            w->tail = static_cast<std::int32_t>(slot);
            e.state = State::WaitWalk;
            return true;
        }
        Packet walk;
        walk.paddr = ports_.page_table->pteAddress(params_.id, vaddr);
        walk.vaddr = walk.paddr;
        walk.ip = e.ip;
        walk.type = AccessType::Translation;
        walk.core = static_cast<std::uint8_t>(params_.id);
        walk.requestor = this;
        walk.req_id = vpn;
        walk.birth = now + ports_.tlbs->missLatency();
        if (!ports_.walk_target->sendRead(walk))
            return false;   // retry next cycle
        walks_->add();
        walk_next_[slot] = -1;
        walk_serial_[slot] = e.serial;
        walk_inflight_[vpn] = WalkInflight{
            vaddr, static_cast<std::int32_t>(slot),
            static_cast<std::int32_t>(slot)};
        e.state = State::WaitWalk;
        return true;
    }

    OffChipPredictor::Decision d;
    if (ports_.offchip != nullptr)
        d = ports_.offchip->predictLoad(e.ip, vaddr);

    Addr paddr = ports_.page_table->translate(params_.id, vaddr);

    Packet pkt;
    pkt.vaddr = vaddr;
    pkt.paddr = paddr;
    pkt.ip = e.ip;
    pkt.type = AccessType::Load;
    pkt.core = static_cast<std::uint8_t>(params_.id);
    pkt.offchip_pred = d.predicted_offchip;
    pkt.delayed_offchip_flag = d.delayed_flag;
    pkt.requestor = this;
    pkt.req_id = e.load_id;
    pkt.birth = now + (tr.latency > 0 ? tr.latency - 1 : 0);
    if (!ports_.l1d->sendRead(pkt))
        return false;   // L1D read queue full: retry

    if (d.spec_now && ports_.dram != nullptr) {
        Packet spec = pkt;
        spec.spec_dram = true;
        spec.delayed_offchip_flag = false;
        spec.birth = now + tr.latency + params_.spec_latency;
        spec_delay_.push_back({spec.birth, spec});   // tlpsim:cap (Ring)
        spec_from_core_->add();
        if (ports_.spec_observer != nullptr)
            ports_.spec_observer->onSpecIssued(spec);
    }

    inflight_loads_[e.load_id] = {slot, e.serial, d.meta, false};
    e.state = State::WaitMem;
    return true;
}

void
Core::flushSpecDelay(Cycle now)
{
    while (!spec_delay_.empty() && spec_delay_.front().first <= now) {
        ports_.dram->sendRead(spec_delay_.front().second);
        spec_delay_.pop_front();
    }
}

void
Core::retire(Cycle now)
{
    for (unsigned n = 0; n < params_.retire_width && rob_head_ != rob_tail_;
         ++n) {
        std::uint32_t slot = robIndex(rob_head_);
        RobEntry &e = rob_[slot];
        if (e.state != State::Done || e.done > now)
            break;
        if (e.is_store) {
            Packet w;
            w.vaddr = e.st_vaddr;
            w.paddr = ports_.page_table->translate(params_.id, e.st_vaddr);
            w.ip = e.ip;
            w.type = AccessType::Rfo;
            w.core = static_cast<std::uint8_t>(params_.id);
            w.birth = now;
            if (!ports_.l1d->sendWrite(w))
                break;   // L1D write queue full: stall retire
            // Keep the TLB contents warm for stores without modelling a
            // second walk (store translation overlaps with the ROB wait).
            auto tr = ports_.tlbs->lookup(e.st_vaddr);
            if (tr.needs_walk)
                ports_.tlbs->fill(e.st_vaddr);
            if (int *cnt = pending_store_words_.find(wordKey(e.st_vaddr));
                cnt != nullptr && --*cnt == 0)
                pending_store_words_.erase(wordKey(e.st_vaddr));
            --stores_in_flight_;
        }
        if (e.is_load) {
            assert(loads_in_flight_ > 0);
            --loads_in_flight_;
        }
        ++rob_head_;
        ++retired_;
        instrs_->add();
    }
}

void
Core::memReturn(const Packet &pkt)
{
    if (pkt.req_id == kIfetchReqId) {
        ifetch_.waiting = false;
        return;
    }
    if (pkt.type == AccessType::Translation) {
        WalkInflight *w = walk_inflight_.find(pkt.req_id);
        if (w == nullptr)
            return;
        const WalkInflight walk = *w;
        walk_inflight_.erase(pkt.req_id);
        ports_.tlbs->fill(walk.vaddr);
        // Wake the waiter chain in insertion order (the chain appends at
        // tail, so head-to-tail matches the order loads piggybacked).
        for (std::int32_t s = walk.head; s >= 0; s = walk_next_[s]) {
            RobEntry &e = rob_[static_cast<std::uint32_t>(s)];
            if (e.serial == walk_serial_[s] && e.state == State::WaitWalk) {
                e.state = State::WaitIssue;
                e.ready = std::max(e.ready, now_ + 1);
                issue_list_.push_back(   // tlpsim:cap (reserved lq_size)
                    static_cast<std::uint32_t>(s));
            }
        }
        return;
    }

    LoadTraining *lt = inflight_loads_.find(pkt.req_id);
    if (lt == nullptr)
        return;   // stale speculative response
    if (!lt->data_done) {
        lt->data_done = true;
        RobEntry &e = rob_[lt->rob_slot];
        if (e.serial == lt->serial && e.state == State::WaitMem)
            complete(lt->rob_slot, now_ + 1);
    }
    if (!pkt.spec_dram) {
        // Only the demand response knows the true serve level (paper:
        // FLP trains when the load returns to the core).
        if (ports_.offchip != nullptr)
            ports_.offchip->train(lt->meta, pkt.served_by == MemLevel::Dram);
        inflight_loads_.erase(pkt.req_id);
    }
}

// tlpsim:endhot

} // namespace tlpsim
