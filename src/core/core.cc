#include "core/core.hh"

#include <algorithm>
#include <cassert>

#include "mem/dram.hh"

namespace tlpsim
{

namespace
{

/** Word-granularity key for the store-forwarding table. */
std::uint64_t
wordKey(Addr vaddr)
{
    return static_cast<std::uint64_t>(vaddr) >> 3;
}

} // namespace

Core::Core(const Params &p, const Ports &ports, StatGroup *stats)
    : params_(p), ports_(ports),
      bpred_({8, 1024, 20, p.name + ".bpred"}, stats),
      rob_size_(p.rob_size), regs_(kNumRegs),
      instrs_(stats->counter(p.name + ".instrs")),
      loads_(stats->counter(p.name + ".loads")),
      stores_(stats->counter(p.name + ".stores")),
      branches_(stats->counter(p.name + ".branches")),
      ifetch_stalls_(stats->counter(p.name + ".ifetch_stalls")),
      rob_full_(stats->counter(p.name + ".rob_full")),
      fwd_loads_(stats->counter(p.name + ".forwarded_loads")),
      walks_(stats->counter(p.name + ".page_walks")),
      spec_from_core_(stats->counter(p.name + ".spec_from_core"))
{
    rob_ip_.assign(rob_size_, 0);
    rob_ld_vaddr_.assign(rob_size_, 0);
    rob_st_vaddr_.assign(rob_size_, 0);
    rob_dst_.assign(rob_size_, kNoReg);
    rob_unresolved_.assign(rob_size_, 0);
    rob_is_load_.assign(rob_size_, 0);
    rob_is_store_.assign(rob_size_, 0);
    rob_mispred_.assign(rob_size_, 0);
    rob_state_.assign(rob_size_, State::WaitOps);
    rob_ready_.assign(rob_size_, 0);
    rob_done_.assign(rob_size_, 0);
    rob_serial_.assign(rob_size_, 0);
    rob_load_id_.assign(rob_size_, 0);
    dep_head_.assign(rob_size_, -1);
    dep_tail_.assign(rob_size_, -1);
    dep_next_.assign(rob_size_ * 2, -1);
    issue_list_.reserve(p.lq_size);
    // Size every in-flight structure to its structural bound up front —
    // the per-cycle loop below never allocates once these are warm.
    // inflight_loads_ entries can outlive retirement (a spec-completed
    // load retires while its demand read is still in flight), so its
    // bound is a deliberate multiple of the LQ depth, enforced by an
    // issue stall in issueOneLoad().
    inflight_load_cap_ = static_cast<std::size_t>(p.lq_size) * 4;
    inflight_loads_.init(inflight_load_cap_);
    walk_inflight_.init(p.lq_size);
    pending_store_words_.init(p.sq_size);
    walk_next_.assign(p.rob_size, -1);
    walk_serial_.assign(p.rob_size, 0);
    spec_delay_.reserve(p.lq_size);
}

// Everything below runs once per simulated cycle (or per instruction /
// memory response within one). tools/hotpath_lint.py enforces that no
// allocation, std::function, or unwaived container growth appears here;
// tests/test_hotpath_alloc.cpp checks the same dynamically.
// tlpsim:hot

bool
Core::fetchBlocked(Cycle now) const
{
    return fetch_block_tokens_ > 0 || now < fetch_stall_until_;
}

void
Core::tick(Cycle now)
{
    now_ = now;
    retire(now);
    issueLoads(now);
    if (!spec_delay_.empty())
        flushSpecDelay(now);
    fetchAndDispatch(now);
}

Cycle
Core::nextEventCycle(Cycle now)
{
    Cycle ev = kCycleNever;
    // Retire: the head entry can act only once Done, at its done cycle.
    // A head that is already past-due (blocked store write, exhausted
    // retire width) must keep retrying every cycle.
    if (rob_head_ != rob_tail_) {
        const std::uint32_t head = robIndex(rob_head_);
        if (rob_state_[head] == State::Done)
            ev = std::min(ev, std::max(rob_done_[head], now + 1));
    }
    // Loads waiting to issue act at their operand-ready cycle; one that
    // stayed blocked this tick (port/cap/queue-full) retries next cycle.
    for (std::uint32_t slot : issue_list_) {
        if (rob_state_[slot] == State::WaitIssue)
            ev = std::min(ev, std::max(rob_ready_[slot], now + 1));
    }
    if (!spec_delay_.empty())
        ev = std::min(ev, std::max(spec_delay_.front().first, now + 1));
    // Fetch: mirror fetchAndDispatch()'s break conditions. Waiting on an
    // L1I fill and ROB-full are pure per-cycle counter bumps until an
    // external event — replayed by onCyclesSkipped(), no event here.
    // A blocked-branch token clears when the branch completes (covered
    // by the issue/retire/response events above).
    if (!ifetch_.waiting) {
        if (fetch_retry_) {
            ev = now + 1;   // failed L1I send: retries (and counts) per cycle
        } else if (fetch_block_tokens_ == 0) {
            if (now < fetch_stall_until_) {
                ev = std::min(ev, fetch_stall_until_);
            } else if (!robFull()) {
                const TraceInstr &peeked = ports_.trace->peek();
                const bool lq_block =
                    peeked.isLoad() && loads_in_flight_ >= params_.lq_size;
                const bool sq_block =
                    peeked.isStore() && stores_in_flight_ >= params_.sq_size;
                if (!lq_block && !sq_block)
                    ev = now + 1;   // fetch can make progress next cycle
            }
        }
    }
    return ev;
}

void
Core::onCyclesSkipped(Cycle delta)
{
    // Replay the counters fetchAndDispatch() bumps on every quiescent
    // cycle, in the same priority order as its early exits. The other
    // no-counter exits (blocked branch, mispredict stall window, LQ/SQ
    // peek block) skip silently. Valid only when nextEventCycle() had no
    // event inside the window, which pins these conditions across it.
    if (ifetch_.waiting) {
        ifetch_stalls_->add(delta);
        return;
    }
    if (fetch_block_tokens_ > 0 || now_ < fetch_stall_until_)
        return;
    if (robFull())
        rob_full_->add(delta);
}

void
Core::fetchAndDispatch(Cycle now)
{
    fetch_retry_ = false;
    if (ifetch_.waiting) {
        ifetch_stalls_->add();
        return;
    }
    for (unsigned f = 0; f < params_.fetch_width; ++f) {
        if (fetchBlocked(now))
            break;
        if (robFull()) {
            rob_full_->add();
            break;
        }
        const TraceInstr &peeked = ports_.trace->peek();
        if (peeked.isLoad() && loads_in_flight_ >= params_.lq_size)
            break;
        if (peeked.isStore() && stores_in_flight_ >= params_.sq_size)
            break;

        // Instruction fetch at cache-line granularity.
        Addr line = blockNumber(peeked.ip);
        if (line != ifetch_.last_line) {
            Addr ipa = ports_.page_table->translate(params_.id, peeked.ip);
            if (!ports_.l1i->probe(ipa)) {
                Packet p;
                p.vaddr = peeked.ip;
                p.paddr = ipa;
                p.ip = peeked.ip;
                p.type = AccessType::Load;
                p.core = static_cast<std::uint8_t>(params_.id);
                p.requestor = this;
                p.req_id = kIfetchReqId;
                p.birth = now;
                if (ports_.l1i->sendRead(p)) {
                    ifetch_.waiting = true;
                    ifetch_.last_line = line;
                } else {
                    fetch_retry_ = true;
                }
                ifetch_stalls_->add();
                break;
            }
            ifetch_.last_line = line;
        }

        TraceInstr instr = ports_.trace->next();
        dispatch(instr, now);
    }
}

void
Core::dispatch(const TraceInstr &instr, Cycle now)
{
    std::uint32_t slot = robIndex(rob_tail_++);
    rob_ip_[slot] = instr.ip;
    rob_ld_vaddr_[slot] = instr.ld_vaddr;
    rob_st_vaddr_[slot] = instr.st_vaddr;
    rob_dst_[slot] = instr.dst;
    rob_unresolved_[slot] = 0;
    rob_is_load_[slot] = instr.isLoad() ? 1 : 0;
    rob_is_store_[slot] = instr.isStore() ? 1 : 0;
    rob_mispred_[slot] = 0;
    rob_ready_[slot] = now + 1;
    rob_done_[slot] = 0;
    const std::uint64_t serial = next_serial_++;
    rob_serial_[slot] = serial;
    rob_load_id_[slot] = 0;
    dep_head_[slot] = -1;
    dep_tail_[slot] = -1;

    const RegId srcs[2] = {instr.src0, instr.src1};
    for (unsigned op = 0; op < 2; ++op) {
        const RegId r = srcs[op];
        if (r == kNoReg)
            continue;
        RegState &rs = regs_[r];
        if (rs.producer_slot >= 0
            && rob_serial_[static_cast<std::uint32_t>(rs.producer_slot)]
                   == rs.producer_serial) {
            addDependent(static_cast<std::uint32_t>(rs.producer_slot),
                         slot, op);
            ++rob_unresolved_[slot];
        } else {
            rob_ready_[slot] = std::max(rob_ready_[slot], rs.ready);
        }
    }
    if (instr.dst != kNoReg) {
        regs_[instr.dst] = {0, static_cast<std::int32_t>(slot), serial};
    }

    if (instr.branch == BranchKind::Conditional) {
        branches_->add();
        bool correct = bpred_.predictAndTrain(instr.ip, instr.taken);
        if (!correct) {
            rob_mispred_[slot] = 1;
            ++fetch_block_tokens_;   // released when the branch resolves
        }
    }
    if (rob_is_load_[slot] != 0) {
        loads_->add();
        ++loads_in_flight_;
        rob_load_id_[slot] = next_load_id_++;
    }
    if (rob_is_store_[slot] != 0) {
        stores_->add();
        ++stores_in_flight_;
        ++pending_store_words_[wordKey(instr.st_vaddr)];
    }

    if (rob_unresolved_[slot] == 0)
        scheduleExec(slot, now);
    else
        rob_state_[slot] = State::WaitOps;
}

void
Core::addDependent(std::uint32_t producer, std::uint32_t slot,
                   unsigned operand)
{
    // Chain node id: "operand N of consumer S". The node lives in exactly
    // one producer's chain at a time (an operand has one producer), and
    // appending at the tail reproduces the old per-entry vector's
    // push_back order, so wakeups fire in the exact same sequence.
    const std::int32_t node = static_cast<std::int32_t>(slot * 2 + operand);
    dep_next_[node] = -1;
    if (dep_tail_[producer] >= 0)
        dep_next_[dep_tail_[producer]] = node;
    else
        dep_head_[producer] = node;
    dep_tail_[producer] = node;
}

void
Core::scheduleExec(std::uint32_t slot, Cycle now)
{
    if (rob_is_load_[slot] != 0) {
        rob_state_[slot] = State::WaitIssue;
        issue_list_.push_back(slot);   // tlpsim:cap (reserved lq_size)
        return;
    }
    complete(slot, std::max(rob_ready_[slot], now) + 1);
}

void
Core::complete(std::uint32_t slot, Cycle done_cycle)
{
    rob_state_[slot] = State::Done;
    rob_done_[slot] = done_cycle;
    if (rob_mispred_[slot] != 0) {
        fetch_stall_until_ = std::max(
            fetch_stall_until_, done_cycle + params_.mispredict_penalty);
        assert(fetch_block_tokens_ > 0);
        --fetch_block_tokens_;
        rob_mispred_[slot] = 0;
    }
    const RegId dst = rob_dst_[slot];
    if (dst != kNoReg) {
        RegState &rs = regs_[dst];
        if (rs.producer_slot == static_cast<std::int32_t>(slot)
            && rs.producer_serial == rob_serial_[slot]) {
            rs = {done_cycle, -1, 0};
        }
    }
    // Walk the dependent chain head-to-tail (insertion order). The
    // complete() recursion below (via resolveOperand → scheduleExec)
    // only ever touches *younger* slots' chains — nothing appends to
    // this one mid-walk — so caching `next` before the call is enough.
    for (std::int32_t node = dep_head_[slot]; node >= 0;) {
        const std::int32_t next = dep_next_[node];
        resolveOperand(static_cast<std::uint32_t>(node) / 2, done_cycle,
                       now_);
        node = next;
    }
    dep_head_[slot] = -1;
    dep_tail_[slot] = -1;
}

void
Core::resolveOperand(std::uint32_t slot, Cycle ready_cycle, Cycle now)
{
    rob_ready_[slot] = std::max(rob_ready_[slot], ready_cycle);
    assert(rob_unresolved_[slot] > 0);
    if (--rob_unresolved_[slot] == 0)
        scheduleExec(slot, now);
}

void
Core::issueLoads(Cycle now)
{
    unsigned ports = params_.load_ports;
    for (std::size_t i = 0; i < issue_list_.size() && ports > 0;) {
        std::uint32_t slot = issue_list_[i];
        if (rob_state_[slot] != State::WaitIssue) {
            issue_list_[i] = issue_list_.back();
            issue_list_.pop_back();
            continue;
        }
        if (rob_ready_[slot] > now) {
            ++i;
            continue;
        }
        if (issueOneLoad(slot, now)) {
            issue_list_[i] = issue_list_.back();
            issue_list_.pop_back();
            --ports;
        } else {
            ++i;
        }
    }
}

bool
Core::issueOneLoad(std::uint32_t slot, Cycle now)
{
    const Addr vaddr = rob_ld_vaddr_[slot];

    // Back-pressure: inflight_loads_ is sized to a fixed structural
    // bound (entries can outlive retirement while a demand read is in
    // flight); stall issue rather than grow past it.
    if (inflight_loads_.size() >= inflight_load_cap_)
        return false;

    // Store-to-load forwarding (word granularity).
    if (pending_store_words_.contains(wordKey(vaddr))) {
        fwd_loads_->add();
        complete(slot, now + 1);
        return true;
    }

    auto tr = ports_.tlbs->lookup(vaddr);
    if (tr.needs_walk) {
        Addr vpn = pageNumber(vaddr);
        if (WalkInflight *w = walk_inflight_.find(vpn)) {
            // A walk for this page is already outstanding: piggyback by
            // appending this slot to the walk's intrusive waiter chain
            // (insertion order — wakeup order must match it).
            walk_next_[slot] = -1;
            walk_serial_[slot] = rob_serial_[slot];
            walk_next_[w->tail] = static_cast<std::int32_t>(slot);
            w->tail = static_cast<std::int32_t>(slot);
            rob_state_[slot] = State::WaitWalk;
            return true;
        }
        Packet walk;
        walk.paddr = ports_.page_table->pteAddress(params_.id, vaddr);
        walk.vaddr = walk.paddr;
        walk.ip = rob_ip_[slot];
        walk.type = AccessType::Translation;
        walk.core = static_cast<std::uint8_t>(params_.id);
        walk.requestor = this;
        walk.req_id = vpn;
        walk.birth = now + ports_.tlbs->missLatency();
        if (!ports_.walk_target->sendRead(walk))
            return false;   // retry next cycle
        walks_->add();
        walk_next_[slot] = -1;
        walk_serial_[slot] = rob_serial_[slot];
        walk_inflight_[vpn] = WalkInflight{
            vaddr, static_cast<std::int32_t>(slot),
            static_cast<std::int32_t>(slot)};
        rob_state_[slot] = State::WaitWalk;
        return true;
    }

    OffChipPredictor::Decision d;
    if (ports_.offchip != nullptr)
        d = ports_.offchip->predictLoad(rob_ip_[slot], vaddr);

    Addr paddr = ports_.page_table->translate(params_.id, vaddr);

    Packet pkt;
    pkt.vaddr = vaddr;
    pkt.paddr = paddr;
    pkt.ip = rob_ip_[slot];
    pkt.type = AccessType::Load;
    pkt.core = static_cast<std::uint8_t>(params_.id);
    pkt.offchip_pred = d.predicted_offchip;
    pkt.delayed_offchip_flag = d.delayed_flag;
    pkt.requestor = this;
    pkt.req_id = rob_load_id_[slot];
    pkt.birth = now + (tr.latency > 0 ? tr.latency - 1 : 0);
    if (!ports_.l1d->sendRead(pkt))
        return false;   // L1D read queue full: retry

    if (d.spec_now && ports_.dram != nullptr) {
        Packet spec = pkt;
        spec.spec_dram = true;
        spec.delayed_offchip_flag = false;
        spec.birth = now + tr.latency + params_.spec_latency;
        spec_delay_.push_back({spec.birth, spec});   // tlpsim:cap (Ring)
        spec_from_core_->add();
        if (ports_.spec_observer != nullptr)
            ports_.spec_observer->onSpecIssued(spec);
    }

    inflight_loads_[rob_load_id_[slot]] =
        {slot, rob_serial_[slot], d.meta, false};
    rob_state_[slot] = State::WaitMem;
    return true;
}

void
Core::flushSpecDelay(Cycle now)
{
    while (!spec_delay_.empty() && spec_delay_.front().first <= now) {
        ports_.dram->sendRead(spec_delay_.front().second);
        spec_delay_.pop_front();
    }
}

void
Core::retire(Cycle now)
{
    for (unsigned n = 0; n < params_.retire_width && rob_head_ != rob_tail_;
         ++n) {
        std::uint32_t slot = robIndex(rob_head_);
        if (rob_state_[slot] != State::Done || rob_done_[slot] > now)
            break;
        if (rob_is_store_[slot] != 0) {
            const Addr st_vaddr = rob_st_vaddr_[slot];
            Packet w;
            w.vaddr = st_vaddr;
            w.paddr = ports_.page_table->translate(params_.id, st_vaddr);
            w.ip = rob_ip_[slot];
            w.type = AccessType::Rfo;
            w.core = static_cast<std::uint8_t>(params_.id);
            w.birth = now;
            if (!ports_.l1d->sendWrite(w))
                break;   // L1D write queue full: stall retire
            // Keep the TLB contents warm for stores without modelling a
            // second walk (store translation overlaps with the ROB wait).
            auto tr = ports_.tlbs->lookup(st_vaddr);
            if (tr.needs_walk)
                ports_.tlbs->fill(st_vaddr);
            if (int *cnt = pending_store_words_.find(wordKey(st_vaddr));
                cnt != nullptr && --*cnt == 0)
                pending_store_words_.erase(wordKey(st_vaddr));
            --stores_in_flight_;
        }
        if (rob_is_load_[slot] != 0) {
            assert(loads_in_flight_ > 0);
            --loads_in_flight_;
        }
        ++rob_head_;
        ++retired_;
        instrs_->add();
    }
}

void
Core::memReturn(const Packet &pkt)
{
    quiet_until_ = 0;   // a response re-arms the pipeline
    if (pkt.req_id == kIfetchReqId) {
        ifetch_.waiting = false;
        return;
    }
    if (pkt.type == AccessType::Translation) {
        WalkInflight *w = walk_inflight_.find(pkt.req_id);
        if (w == nullptr)
            return;
        const WalkInflight walk = *w;
        walk_inflight_.erase(pkt.req_id);
        ports_.tlbs->fill(walk.vaddr);
        // Wake the waiter chain in insertion order (the chain appends at
        // tail, so head-to-tail matches the order loads piggybacked).
        for (std::int32_t s = walk.head; s >= 0; s = walk_next_[s]) {
            const std::uint32_t slot = static_cast<std::uint32_t>(s);
            if (rob_serial_[slot] == walk_serial_[s]
                && rob_state_[slot] == State::WaitWalk) {
                rob_state_[slot] = State::WaitIssue;
                rob_ready_[slot] = std::max(rob_ready_[slot], now_ + 1);
                issue_list_.push_back(   // tlpsim:cap (reserved lq_size)
                    slot);
            }
        }
        return;
    }

    LoadTraining *lt = inflight_loads_.find(pkt.req_id);
    if (lt == nullptr)
        return;   // stale speculative response
    if (!lt->data_done) {
        lt->data_done = true;
        if (rob_serial_[lt->rob_slot] == lt->serial
            && rob_state_[lt->rob_slot] == State::WaitMem)
            complete(lt->rob_slot, now_ + 1);
    }
    if (!pkt.spec_dram) {
        // Only the demand response knows the true serve level (paper:
        // FLP trains when the load returns to the core).
        if (ports_.offchip != nullptr)
            ports_.offchip->train(lt->meta, pkt.served_by == MemLevel::Dram);
        inflight_loads_.erase(pkt.req_id);
    }
}

// tlpsim:endhot

} // namespace tlpsim
