/**
 * @file
 * Hashed-perceptron conditional branch predictor (Table III), built on the
 * shared perceptron infrastructure. Features are PC hashes combined with
 * segments of the global history register, following Jiménez's hashed
 * perceptron used as ChampSim's default predictor.
 */

#ifndef TLPSIM_CORE_BRANCH_PRED_HH
#define TLPSIM_CORE_BRANCH_PRED_HH

#include "common/stats.hh"
#include "common/types.hh"
#include "offchip/perceptron.hh"

namespace tlpsim
{

class BranchPredictor
{
  public:
    struct Params
    {
        unsigned num_tables = 8;
        unsigned table_entries = 1024;
        int training_threshold = 20;
        std::string name = "bpred";
    };

    BranchPredictor(const Params &p, StatGroup *stats);
    explicit BranchPredictor(StatGroup *stats)
        : BranchPredictor(Params{}, stats)
    {}

    /**
     * Predict @p ip, train with the trace outcome @p taken, advance the
     * global history. Returns true iff the prediction was correct.
     */
    bool predictAndTrain(Addr ip, bool taken);

    StorageBudget storage() const { return perceptron_.storage(); }

  private:
    void computeIndices(Addr ip, std::uint16_t *out) const;

    Params params_;
    HashedPerceptron perceptron_;
    std::uint64_t ghist_ = 0;
    Counter *correct_;
    Counter *mispredict_;
};

} // namespace tlpsim

#endif // TLPSIM_CORE_BRANCH_PRED_HH
