#include "core/branch_pred.hh"

#include "common/bitops.hh"

namespace tlpsim
{

namespace
{

std::vector<HashedPerceptron::TableSpec>
bpredTables(const BranchPredictor::Params &p)
{
    std::vector<HashedPerceptron::TableSpec> specs;
    for (unsigned t = 0; t < p.num_tables; ++t)
        specs.push_back({"ghist" + std::to_string(t), p.table_entries});
    return specs;
}

} // namespace

BranchPredictor::BranchPredictor(const Params &p, StatGroup *stats)
    : params_(p), perceptron_(p.name, bpredTables(p), p.training_threshold),
      correct_(stats->counter(p.name + ".correct")),
      mispredict_(stats->counter(p.name + ".mispredict"))
{
}

void
BranchPredictor::computeIndices(Addr ip, std::uint16_t *out) const
{
    // Table t sees the PC hashed with an 8-bit slice of global history;
    // table 0 is history-free (bias + PC).
    for (unsigned t = 0; t < params_.num_tables; ++t) {
        std::uint64_t hist_slice = t == 0 ? 0 : bits(ghist_, (t - 1) * 8, 8);
        std::uint64_t v = (ip >> 2) ^ (hist_slice << (t & 3))
            ^ (hist_slice * 0x9e37);
        out[t] = perceptron_.indexFor(t, v);
    }
}

bool
BranchPredictor::predictAndTrain(Addr ip, bool taken)
{
    std::uint16_t index[16];
    computeIndices(ip, index);
    int sum = perceptron_.predict(index, params_.num_tables);
    bool predicted_taken = sum >= 0;

    perceptron_.train(index, params_.num_tables, sum, taken, 0);
    ghist_ = (ghist_ << 1) | static_cast<std::uint64_t>(taken);

    bool ok = predicted_taken == taken;
    (ok ? correct_ : mispredict_)->add();
    return ok;
}

} // namespace tlpsim
