#include "core/branch_pred.hh"

#include <cassert>

#include "common/bitops.hh"

namespace tlpsim
{

namespace
{

std::vector<HashedPerceptron::TableSpec>
bpredTables(const BranchPredictor::Params &p)
{
    std::vector<HashedPerceptron::TableSpec> specs;
    for (unsigned t = 0; t < p.num_tables; ++t)
        specs.push_back({"ghist" + std::to_string(t), p.table_entries});
    return specs;
}

} // namespace

BranchPredictor::BranchPredictor(const Params &p, StatGroup *stats)
    : params_(p), perceptron_(p.name, bpredTables(p), p.training_threshold),
      correct_(stats->counter(p.name + ".correct")),
      mispredict_(stats->counter(p.name + ".mispredict"))
{
    // computeIndices() folds the shared PC term once, which is only
    // sound while every table hashes into the same index space.
    for (unsigned t = 1; t < p.num_tables; ++t)
        assert(perceptron_.indexBits(t) == perceptron_.indexBits(0));
}

void
BranchPredictor::computeIndices(Addr ip, std::uint16_t *out) const
{
    // Table t sees the PC hashed with an 8-bit slice of global history;
    // table 0 is history-free (bias + PC).
    //
    // foldedXor is XOR-linear (it XORs fixed out_bits-wide slices), so
    // fold(a ^ b) == fold(a) ^ fold(b). Every bpred table shares one
    // geometry, which lets the full-width PC term be folded once; the
    // per-table folds then only cover the <= 24-bit history terms.
    const unsigned ob = perceptron_.indexBits(0);
    const std::uint64_t mask = perceptron_.entriesOf(0) - 1;
    const std::uint64_t pc_fold = foldedXor(ip >> 2, ob);
    out[0] = static_cast<std::uint16_t>(pc_fold & mask);
    for (unsigned t = 1; t < params_.num_tables; ++t) {
        std::uint64_t hist_slice = bits(ghist_, (t - 1) * 8, 8);
        std::uint64_t h = foldedXor(hist_slice << (t & 3), ob)
            ^ foldedXor(hist_slice * 0x9e37, ob);
        out[t] = static_cast<std::uint16_t>((pc_fold ^ h) & mask);
    }
}

bool
BranchPredictor::predictAndTrain(Addr ip, bool taken)
{
    std::uint16_t index[16];
    computeIndices(ip, index);
    int sum = perceptron_.predict(index, params_.num_tables);
    bool predicted_taken = sum >= 0;

    perceptron_.train(index, params_.num_tables, sum, taken, 0);
    ghist_ = (ghist_ << 1) | static_cast<std::uint64_t>(taken);

    bool ok = predicted_taken == taken;
    (ok ? correct_ : mispredict_)->add();
    return ok;
}

} // namespace tlpsim
