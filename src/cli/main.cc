/**
 * @file
 * tlpsim — the unified design-point / sweep driver.
 *
 * Any single design point, or a full workloads × schemes sweep grid, runs
 * through the same Runner the figure benches use, so results are memoized
 * per design point and tables are bit-identical for any worker count.
 *
 * Configuration precedence, lowest to highest:
 *   built-in Table III defaults  (SystemConfig::cascadeLake)
 *   --config FILE                ("key = value" lines; repeatable, later
 *                                 files win)
 *   TLPSIM_CONF                  ("key=value,key=value")
 *   --set KEY=VALUE              (repeatable)
 *
 * The legacy TLPSIM_WARMUP / TLPSIM_INSTRS knobs apply only when no
 * config source sets warmup_instrs / sim_instrs. TLPSIM_SET picks the
 * workload set (tiny|small|full), TLPSIM_JOBS the worker count
 * (--jobs overrides).
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "workloads/workload.hh"

using namespace tlpsim;
using namespace tlpsim::experiment;

namespace
{

constexpr const char *kUsage = R"(tlpsim — two-level neural off-chip prediction + prefetch filtering simulator

usage: tlpsim [options]

design point:
  --config FILE     apply a config file ("key = value" lines; repeatable)
  --set KEY=VALUE   override one config key (repeatable)
  --scheme NAME     scheme preset (repeatable; overrides the config's
                    scheme for each listed name; scheme.* keys from
                    --set/TLPSIM_CONF still override preset fields)
  --workload NAME   workload to simulate (repeatable; --sweep defaults to
                    every workload of the TLPSIM_SET set)

modes (default: run the configured workloads once):
  --sweep           run the workloads x schemes grid through the parallel
                    Runner (default schemes: baseline + the four paper
                    schemes of Figs. 10-14)
  --print-config    print the effective full config and exit
  --describe        print the Table III description and exit
  --list-workloads  list workload names and exit
  --list-schemes    list scheme preset names and exit
  --list-components list registry component names and exit

execution:
  --jobs N          worker threads (default: TLPSIM_JOBS or all cores)
  --help            this text

environment: TLPSIM_CONF, TLPSIM_SET, TLPSIM_JOBS, TLPSIM_WARMUP,
TLPSIM_INSTRS (see README "The tlpsim CLI").
)";

struct Options
{
    std::vector<std::string> config_files;
    std::vector<std::string> sets;
    std::vector<std::string> schemes;
    std::vector<std::string> workload_names;
    bool sweep = false;
    bool print_config = false;
    bool describe = false;
    bool list_workloads = false;
    bool list_schemes = false;
    bool list_components = false;
    unsigned jobs = 0;   ///< 0 = TLPSIM_JOBS / hardware default
};

[[noreturn]] void
usageError(const std::string &msg)
{
    std::fprintf(stderr, "tlpsim: %s\n(run tlpsim --help for usage)\n",
                 msg.c_str());
    std::exit(2);
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    auto need_value = [&](int i, const char *flag) -> std::string {
        if (i + 1 >= argc)
            usageError(std::string(flag) + " requires a value");
        return argv[i + 1];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(kUsage, stdout);
            std::exit(0);
        } else if (arg == "--config") {
            o.config_files.push_back(need_value(i, "--config"));
            ++i;
        } else if (arg == "--set") {
            o.sets.push_back(need_value(i, "--set"));
            ++i;
        } else if (arg == "--scheme") {
            o.schemes.push_back(need_value(i, "--scheme"));
            ++i;
        } else if (arg == "--workload") {
            o.workload_names.push_back(need_value(i, "--workload"));
            ++i;
        } else if (arg == "--jobs") {
            std::string v = need_value(i, "--jobs");
            ++i;
            char *end = nullptr;
            unsigned long parsed = std::strtoul(v.c_str(), &end, 10);
            if (end == v.c_str() || *end != '\0' || parsed == 0)
                usageError("--jobs expects a positive integer, got '" + v
                           + "'");
            o.jobs = static_cast<unsigned>(parsed);
        } else if (arg == "--sweep") {
            o.sweep = true;
        } else if (arg == "--print-config") {
            o.print_config = true;
        } else if (arg == "--describe") {
            o.describe = true;
        } else if (arg == "--list-workloads") {
            o.list_workloads = true;
        } else if (arg == "--list-schemes") {
            o.list_schemes = true;
        } else if (arg == "--list-components") {
            o.list_components = true;
        } else {
            usageError("unknown option '" + arg + "'");
        }
    }
    return o;
}

struct LayeredConfig
{
    /** All sources merged: files < env < --set. */
    Config merged;
    /** Env + --set only — per-invocation overrides. When --scheme or
     *  --sweep replaces the scheme axis, only these scheme.* keys are
     *  overlaid on the selected presets; a config file's scheme.* keys
     *  describe *its* scheme and must not collapse a sweep grid. */
    Config overrides;
};

LayeredConfig
layeredConfig(const Options &o)
{
    LayeredConfig lc;
    for (const std::string &path : o.config_files)
        lc.merged.merge(Config::parseFile(path));
    lc.overrides.merge(Config::fromEnv());
    for (const std::string &assignment : o.sets)
        lc.overrides.merge(Config::parseAssignments(assignment, "--set"));
    lc.merged.merge(lc.overrides);
    // Legacy scale knobs: lowest precedence after built-in defaults.
    if (!lc.merged.has("warmup_instrs"))
        lc.merged.set("warmup_instrs", envWarmup(200'000));
    if (!lc.merged.has("sim_instrs"))
        lc.merged.set("sim_instrs", envInstrs(1'000'000));
    return lc;
}

const workloads::WorkloadSpec &
findWorkload(const std::vector<workloads::WorkloadSpec> &all,
             const std::string &name)
{
    for (const auto &w : all) {
        if (w.name == name)
            return w;
    }
    std::vector<std::string> names;
    for (const auto &w : all)
        names.push_back(w.name);
    throw ConfigError("unknown workload '" + name
                      + "'; valid names (set TLPSIM_SET=tiny|small|full to "
                        "change the set): "
                      + joinNames(names));
}

/** The canonical per-design-point row every mode prints. */
TablePrinter
resultTable()
{
    return TablePrinter({"workload", "scheme", "ipc", "l1d_mpki", "l2c_mpki",
                         "llc_mpki", "dram_tx", "l1d_pf_acc"});
}

void
printResultRow(const TablePrinter &tp, const std::string &workload,
               const SimResult &r)
{
    tp.printRow({workload, r.scheme, TablePrinter::fmt(r.ipcTotal(), 4),
                 TablePrinter::fmt(r.mpki("l1d"), 2),
                 TablePrinter::fmt(r.mpki("l2c"), 2),
                 TablePrinter::fmt(r.mpki("llc"), 2),
                 std::to_string(r.dramTransactions()),
                 TablePrinter::fmt(r.l1dPrefetchAccuracy() * 100.0, 1)});
}

int
run(const Options &o)
{
    if (o.list_schemes) {
        for (const std::string &n : SchemeConfig::names())
            std::printf("%s\n", n.c_str());
        return 0;
    }
    if (o.list_components) {
        std::printf("prefetchers        : %s\n",
                    prefetcherRegistry().namesLine().c_str());
        std::printf("prefetch filters   : %s\n",
                    filterRegistry().namesLine().c_str());
        std::printf("off-chip predictors: %s\n",
                    offchipRegistry().namesLine().c_str());
        return 0;
    }

    auto all_workloads
        = workloads::singleCoreWorkloads(workloads::setSizeFromEnv());
    if (o.list_workloads) {
        for (const auto &w : all_workloads)
            std::printf("%-24s %s\n", w.name.c_str(), toString(w.suite));
        return 0;
    }

    LayeredConfig lc = layeredConfig(o);
    SystemConfig base = SystemConfig::fromConfig(lc.merged);

    if (o.print_config) {
        std::fputs(base.toConfig().serialize().c_str(), stdout);
        return 0;
    }
    if (o.describe) {
        std::fputs(base.description().c_str(), stdout);
        return 0;
    }
    if (base.num_cores != 1) {
        throw ConfigError(
            "the tlpsim CLI drives single-core design points (cores = 1); "
            "multi-core mixes run via the fig13/fig15/fig16 benches");
    }

    // Scheme axis: explicit --scheme list, else the config's scheme for a
    // single run, else baseline + the paper schemes for a sweep. Explicit
    // scheme.* keys from --set / TLPSIM_CONF override every selected
    // preset's fields (config-file scheme.* keys shape the file's own
    // scheme only, applied through `base` above).
    const Config scheme_overrides = lc.overrides.sub("scheme");
    auto with_overrides = [&scheme_overrides](const SchemeConfig &preset) {
        return SchemeConfig::fromConfig(scheme_overrides, preset);
    };
    std::vector<SchemeConfig> schemes;
    if (!o.schemes.empty()) {
        for (const std::string &name : o.schemes)
            schemes.push_back(with_overrides(SchemeConfig::fromName(name)));
    } else if (o.sweep) {
        schemes.push_back(with_overrides(SchemeConfig::baseline()));
        for (const SchemeConfig &s : SchemeConfig::paperSchemes())
            schemes.push_back(with_overrides(s));
    } else {
        schemes.push_back(base.scheme);
    }

    // Workload axis: explicit names, else (sweep only) the whole set.
    std::vector<workloads::WorkloadSpec> selected;
    if (!o.workload_names.empty()) {
        for (const std::string &name : o.workload_names)
            selected.push_back(findWorkload(all_workloads, name));
    } else if (o.sweep) {
        selected = all_workloads;
    } else {
        throw ConfigError("no workload selected: pass --workload NAME "
                          "(repeatable) or --sweep; --list-workloads shows "
                          "the choices");
    }

    std::vector<SystemConfig> grid;
    for (const SchemeConfig &s : schemes) {
        SystemConfig cfg = base;
        cfg.scheme = s;
        grid.push_back(cfg);
    }

    Runner runner(o.jobs == 0 ? jobsFromEnv() : o.jobs);
    std::fprintf(stderr,
                 "[tlpsim] %zu workload(s) x %zu scheme(s), "
                 "warmup=%llu sim=%llu, jobs=%u\n",
                 selected.size(), grid.size(),
                 static_cast<unsigned long long>(base.warmup_instrs),
                 static_cast<unsigned long long>(base.sim_instrs),
                 runner.jobs());
    // Submit the full grid up front; render in deterministic order.
    for (const auto &cfg : grid) {
        for (const auto &w : selected)
            runner.submitSingle(w, cfg);
    }

    TablePrinter tp = resultTable();
    tp.printHeader(o.sweep ? "tlpsim sweep" : "tlpsim run");
    for (const auto &w : selected) {
        for (const auto &cfg : grid)
            printResultRow(tp, w.name, runner.single(w, cfg));
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(parseArgs(argc, argv));
    } catch (const ConfigError &e) {
        std::fprintf(stderr, "tlpsim: %s\n", e.what());
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "tlpsim: internal error: %s\n", e.what());
        return 1;
    }
}
