/**
 * @file
 * tlpsim — the unified design-point / sweep driver.
 *
 * Any single design point, or a full workloads × schemes (single-core)
 * or mixes × schemes (multi-core) sweep grid, runs through the same
 * Runner the figure benches use, so results are memoized per design
 * point and tables are bit-identical for any worker count. The whole
 * grid is validated before the first simulation: every unknown scheme,
 * workload, or mix entry is collected and reported in one error.
 *
 * Configuration precedence, lowest to highest:
 *   built-in Table III defaults  (SystemConfig::cascadeLake)
 *   --config FILE                ("key = value" lines; repeatable, later
 *                                 files win)
 *   TLPSIM_CONF                  ("key=value,key=value")
 *   --set KEY=VALUE              (repeatable)
 *
 * The legacy TLPSIM_WARMUP / TLPSIM_INSTRS knobs apply only when no
 * config source sets warmup_instrs / sim_instrs. TLPSIM_SET picks the
 * workload set (tiny|small|full), TLPSIM_JOBS the worker count
 * (--jobs overrides).
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/diag.hh"
#include "sim/runner.hh"
#include "store/result_store.hh"
#include "tracefile/format.hh"
#include "workloads/workload.hh"

using namespace tlpsim;
using namespace tlpsim::experiment;

namespace
{

constexpr const char *kUsage = R"(tlpsim — two-level neural off-chip prediction + prefetch filtering simulator

usage: tlpsim [options]

design point:
  --config FILE     apply a config file ("key = value" lines; repeatable)
  --set KEY=VALUE   override one config key (repeatable)
  --scheme NAME     scheme preset (repeatable; overrides the config's
                    scheme for each listed name; scheme.* keys from
                    --set/TLPSIM_CONF still override preset fields)
  --workload NAME   workload to simulate (repeatable; "file:PATH" replays
                    an external .tlt trace file — see README "External
                    traces"; --sweep defaults to every workload of the
                    TLPSIM_SET set; with --cores N it becomes an N-copy
                    homogeneous mix)
  --cores N         number of cores (shorthand for --set cores=N; defaults
                    to the mix length when --mix is given)
  --mix A,B,...     multi-core mix: one workload name per core, ','/'+'
                    separated (repeatable; the config key "workload.mix"
                    is equivalent)

modes (default: run the configured workloads/mixes once):
  --sweep           run the workloads x schemes grid — or, multi-core,
                    the mixes x schemes grid (default mixes: TLPSIM_MIXES
                    per suite, the Fig. 13 recipe) — through the parallel
                    Runner (default schemes: baseline + the four paper
                    schemes of Figs. 10-14)
  --record-trace OUT  record the one named --workload's in-binary kernel
                    (warmup + sim instructions, the exact stream a
                    simulation consumes) to OUT as a portable .tlt trace
                    file and exit; replay it with --workload file:OUT
  --print-config    print the effective full config and exit
  --describe        print the Table III description and exit
  --list-workloads  list workload names and exit
  --list-schemes    list scheme preset names and exit
  --list-components list registry component names and exit
  --knobs [NAME]    print the declared knob reference (every component's
                    tuning keys with type, default, description; NAME
                    filters to one component) and exit

persistent sweeps (README "Persistent sweeps"):
  --store DIR       crash-safe on-disk result store: every completed
                    design point persists as a checksummed row keyed by
                    its effective-config fingerprint; stored points are
                    served without simulating (config key: store.dir)
  --resume          rerun an interrupted sweep: requires --store; only
                    missing, quarantined, or previously-failed points
                    simulate (store.resume)
  --shard I/N       deterministic fingerprint partition: this process
                    runs only its 1/N of the grid; shards share a store
                    and merge by union (store.shard)
  --timeout S       wall-clock budget per design point in seconds; a
                    point that exceeds it gets one retry, then a
                    structured failure row, and the sweep continues
                    (store.timeout_s; exit code 3 if any point failed)
  --out FILE        stream one JSONL row per completed point, flushed as
                    points finish — a crashed run's partial output stays
                    usable (store.out)

execution:
  --jobs N          worker threads (default: TLPSIM_JOBS or all cores)
  --help            this text

environment: TLPSIM_CONF, TLPSIM_SET, TLPSIM_JOBS, TLPSIM_WARMUP,
TLPSIM_INSTRS (see README "The tlpsim CLI").
)";

struct Options
{
    std::vector<std::string> config_files;
    std::vector<std::string> sets;
    std::vector<std::string> schemes;
    std::vector<std::string> workload_names;
    std::vector<std::string> mixes;   ///< one "a,b,c,d" list per --mix
    unsigned cores = 0;               ///< 0 = take from config / mix length
    bool sweep = false;
    bool print_config = false;
    bool describe = false;
    bool list_workloads = false;
    bool list_schemes = false;
    bool list_components = false;
    bool knobs = false;
    std::string knobs_component;   ///< "" = every component
    std::string record_trace;      ///< "" = no trace dump
    unsigned jobs = 0;   ///< 0 = TLPSIM_JOBS / hardware default
    std::string store_dir;         ///< "" = no persistent store
    bool resume = false;
    std::string shard;             ///< "i/N"; "" = unsharded
    std::string timeout;           ///< seconds; "" = no watchdog
    std::string out_jsonl;         ///< "" = no streamed output
};

[[noreturn]] void
usageError(const std::string &msg)
{
    std::fprintf(stderr, "tlpsim: %s\n(run tlpsim --help for usage)\n",
                 msg.c_str());
    std::exit(2);
}

/** Strictly "[1-9][0-9]*": no sign, no whitespace, no strtoul wrap of
 *  negatives to huge unsigneds. Dies with a usage error otherwise. */
unsigned
parsePositive(const std::string &v, const char *flag)
{
    bool digits_only = !v.empty();
    for (char ch : v) {
        if (ch < '0' || ch > '9')
            digits_only = false;
    }
    char *end = nullptr;
    unsigned long parsed = digits_only ? std::strtoul(v.c_str(), &end, 10)
                                       : 0;
    if (!digits_only || parsed == 0
        || parsed > std::numeric_limits<unsigned>::max())
        usageError(std::string(flag) + " expects a positive integer, got '"
                   + v + "'");
    return static_cast<unsigned>(parsed);
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    auto need_value = [&](int i, const char *flag) -> std::string {
        if (i + 1 >= argc)
            usageError(std::string(flag) + " requires a value");
        return argv[i + 1];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(kUsage, stdout);
            std::exit(0);
        } else if (arg == "--config") {
            o.config_files.push_back(need_value(i, "--config"));
            ++i;
        } else if (arg == "--set") {
            o.sets.push_back(need_value(i, "--set"));
            ++i;
        } else if (arg == "--scheme") {
            o.schemes.push_back(need_value(i, "--scheme"));
            ++i;
        } else if (arg == "--workload") {
            o.workload_names.push_back(need_value(i, "--workload"));
            ++i;
        } else if (arg == "--mix") {
            o.mixes.push_back(need_value(i, "--mix"));
            ++i;
        } else if (arg == "--cores") {
            o.cores = parsePositive(need_value(i, "--cores"), "--cores");
            ++i;
        } else if (arg == "--jobs") {
            o.jobs = parsePositive(need_value(i, "--jobs"), "--jobs");
            ++i;
        } else if (arg == "--store") {
            o.store_dir = need_value(i, "--store");
            ++i;
        } else if (arg == "--resume") {
            o.resume = true;
        } else if (arg == "--shard") {
            o.shard = need_value(i, "--shard");
            ++i;
        } else if (arg == "--timeout") {
            o.timeout = need_value(i, "--timeout");
            ++i;
        } else if (arg == "--out") {
            o.out_jsonl = need_value(i, "--out");
            ++i;
        } else if (arg == "--record-trace") {
            o.record_trace = need_value(i, "--record-trace");
            ++i;
        } else if (arg == "--sweep") {
            o.sweep = true;
        } else if (arg == "--print-config") {
            o.print_config = true;
        } else if (arg == "--describe") {
            o.describe = true;
        } else if (arg == "--list-workloads") {
            o.list_workloads = true;
        } else if (arg == "--list-schemes") {
            o.list_schemes = true;
        } else if (arg == "--list-components") {
            o.list_components = true;
        } else if (arg == "--knobs") {
            o.knobs = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                o.knobs_component = argv[++i];
        } else {
            usageError("unknown option '" + arg + "'");
        }
    }
    return o;
}

struct LayeredConfig
{
    /** All sources merged: files < env < --set. */
    Config merged;
    /** Env + --set only — per-invocation overrides. When --scheme or
     *  --sweep replaces the scheme axis, only these scheme.* keys are
     *  overlaid on the selected presets; a config file's scheme.* keys
     *  describe *its* scheme and must not collapse a sweep grid. */
    Config overrides;
};

LayeredConfig
layeredConfig(const Options &o)
{
    LayeredConfig lc;
    for (const std::string &path : o.config_files)
        lc.merged.merge(Config::parseFile(path));
    lc.overrides.merge(Config::fromEnv());
    for (const std::string &assignment : o.sets)
        lc.overrides.merge(Config::parseAssignments(assignment, "--set"));
    lc.merged.merge(lc.overrides);
    // Legacy scale knobs: lowest precedence after built-in defaults.
    if (!lc.merged.has("warmup_instrs"))
        lc.merged.set("warmup_instrs", envWarmup(200'000));
    if (!lc.merged.has("sim_instrs"))
        lc.merged.set("sim_instrs", envInstrs(1'000'000));
    return lc;
}

/** Split one --mix value ("a,b" / "a+b") into workload names. */
std::vector<std::string>
splitMixNames(const std::string &value)
{
    Config c;
    c.set("mix", value);
    return c.getStringList("mix");
}

/** Reject every unknown scheme name at once, before anything runs. */
void
validateSchemeNames(const std::vector<std::string> &names)
{
    std::vector<std::string> valid = SchemeConfig::names();
    std::vector<std::string> unknown;
    for (const std::string &n : names) {
        if (std::find(valid.begin(), valid.end(), n) == valid.end())
            unknown.push_back(n);
    }
    if (!unknown.empty()) {
        throw ConfigError("--scheme: unknown scheme"
                          + std::string(unknown.size() > 1 ? "s " : " ")
                          + joinNames(unknown)
                          + "; valid names: " + joinNames(valid));
    }
}

// ----- persistent sweeps ---------------------------------------------------

/** The sweep-machinery knobs: where results persist, how long a point
 *  may run, which shard of the grid this process owns. Sourced from the
 *  "store.*" config subtree (lowest precedence) overridden by the
 *  --store/--resume/--shard/--timeout/--out flags; consumed before
 *  SystemConfig::fromConfig sees the tree, because they configure the
 *  sweep, not the simulated system (and so never enter the design-point
 *  fingerprint). */
struct SweepOptions
{
    std::string store_dir;
    bool resume = false;
    store::ShardSpec shard;
    double timeout_s = 0.0;
    std::string out_jsonl;
};

SweepOptions
sweepOptions(const Options &o, LayeredConfig &lc)
{
    SweepOptions sw;
    sw.store_dir = lc.merged.getString("store.dir", "");
    sw.resume = lc.merged.getBool("store.resume", false);
    sw.timeout_s = lc.merged.getDouble("store.timeout_s", 0.0);
    std::string shard_spec = lc.merged.getString("store.shard", "");
    sw.out_jsonl = lc.merged.getString("store.out", "");
    lc.merged.eraseSub("store");
    lc.overrides.eraseSub("store");

    if (!o.store_dir.empty())
        sw.store_dir = o.store_dir;
    if (o.resume)
        sw.resume = true;
    if (!o.shard.empty())
        shard_spec = o.shard;
    if (!o.timeout.empty()) {
        Config c;
        c.set("store.timeout_s", o.timeout);
        sw.timeout_s = c.getDouble("store.timeout_s", 0.0);
    }
    if (!o.out_jsonl.empty())
        sw.out_jsonl = o.out_jsonl;

    if (!shard_spec.empty())
        sw.shard = store::parseShardSpec(shard_spec);
    if (sw.timeout_s < 0.0)
        usageError("--timeout expects a non-negative number of seconds, "
                   "got '" + std::to_string(sw.timeout_s) + "'");
    if (sw.resume && sw.store_dir.empty())
        usageError("--resume requires --store DIR (there is nothing to "
                   "resume from without a store)");
    return sw;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += static_cast<char>(c);
        } else if (c < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += static_cast<char>(c);
        }
    }
    return out;
}

/** JSON number rendering; non-finite values (an undefined accuracy on a
 *  zero-prefetch point) become null rather than invalid JSON. */
std::string
jsonNum(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/**
 * Streamed sweep output: one JSON object per completed design point, in
 * completion order (not table order — that is the point: whatever
 * finished before a crash is on disk), flushed per row. Thread-safe;
 * the Runner invokes write() from any worker.
 */
class JsonlWriter
{
  public:
    ~JsonlWriter()
    {
        if (f_ != nullptr)
            std::fclose(f_);
    }

    void
    open(const std::string &path)
    {
        f_ = std::fopen(path.c_str(), "w");
        if (f_ == nullptr)
            throw ConfigError("cannot open --out file '" + path + "'");
    }

    bool active() const { return f_ != nullptr; }

    void
    write(const experiment::Runner::CompletionRecord &rec)
    {
        std::string line = "{\"point\":\"" + jsonEscape(rec.label) + "\"";
        line += ",\"fp\":\"" + store::fingerprintHex(rec.key) + "\"";
        line += ",\"status\":\"";
        line += rec.failed ? "failed" : "ok";
        line += "\",\"source\":\"";
        line += rec.from_store ? "store" : "sim";
        line += "\",\"attempts\":" + std::to_string(rec.attempts);
        if (rec.result != nullptr) {
            const SimResult &r = *rec.result;
            line += ",\"ipc_sum\":" + jsonNum(r.ipcTotal());
            line += ",\"ipc_max\":" + jsonNum(r.ipcMax());
            line += ",\"l1d_mpki\":" + jsonNum(r.mpki("l1d"));
            line += ",\"l2c_mpki\":" + jsonNum(r.mpki("l2c"));
            line += ",\"llc_mpki\":" + jsonNum(r.mpki("llc"));
            line += ",\"dram_tx\":" + std::to_string(r.dramTransactions());
            line += ",\"l1d_pf_acc\":" + jsonNum(r.l1dPrefetchAccuracy());
            line += ",\"hit_cycle_cap\":";
            line += r.hit_cycle_cap ? "true" : "false";
        } else {
            line += ",\"error\":\"" + jsonEscape(rec.error) + "\"";
        }
        line += "}\n";
        std::lock_guard<std::mutex> lock(m_);
        std::fwrite(line.data(), 1, line.size(), f_);
        std::fflush(f_);
    }

  private:
    std::FILE *f_ = nullptr;
    std::mutex m_;
};

/** The canonical per-design-point row every mode prints. @p label_col is
 *  "workload" for single-core tables, "mix" for multi-core ones (mix
 *  names are wider, hence the wider column). Multi-core tables report
 *  the per-core-windowed IPC sum plus the largest per-core IPC — the
 *  plausibility number (bounded by the retire width) that CI's
 *  heterogeneous-mix smoke asserts on. */
TablePrinter
resultTable(const std::string &label_col = "workload",
            unsigned col_width = 14, bool per_core_ipc = false)
{
    std::vector<std::string> cols{label_col, "scheme"};
    if (per_core_ipc) {
        cols.push_back("ipc_sum");
        cols.push_back("ipc_max");
    } else {
        cols.push_back("ipc");
    }
    for (const char *c : {"l1d_mpki", "l2c_mpki", "llc_mpki", "dram_tx",
                          "l1d_pf_acc"})
        cols.push_back(c);
    return TablePrinter(std::move(cols), col_width);
}

void
printResultRow(const TablePrinter &tp, const std::string &workload,
               const SimResult &r, bool per_core_ipc = false)
{
    std::vector<std::string> cells{workload, r.scheme,
                                   TablePrinter::fmt(r.ipcTotal(), 4)};
    if (per_core_ipc)
        cells.push_back(TablePrinter::fmt(r.ipcMax(), 4));
    cells.push_back(TablePrinter::fmt(r.mpki("l1d"), 2));
    cells.push_back(TablePrinter::fmt(r.mpki("l2c"), 2));
    cells.push_back(TablePrinter::fmt(r.mpki("llc"), 2));
    cells.push_back(std::to_string(r.dramTransactions()));
    cells.push_back(TablePrinter::fmt(r.l1dPrefetchAccuracy() * 100.0, 1));
    tp.printRow(cells);
}

/** Render one outcome: a normal metric row, or — for a design point the
 *  watchdog recorded as a structured failure — a FAILED marker row (the
 *  diagnostics already carry the detail; the table stays aligned). */
void
printOutcomeRow(const TablePrinter &tp, const std::string &label,
                const std::string &scheme_name,
                const experiment::Runner::Outcome &oc,
                bool per_core_ipc = false)
{
    if (!oc.failed) {
        printResultRow(tp, label, *oc.result, per_core_ipc);
        return;
    }
    std::vector<std::string> cells{label, scheme_name, "FAILED"};
    for (std::size_t i = 0; i < (per_core_ipc ? 6u : 5u); ++i)
        cells.push_back("-");
    tp.printRow(cells);
}

int
run(const Options &o)
{
    if (o.list_schemes) {
        for (const std::string &n : SchemeConfig::names())
            std::printf("%s\n", n.c_str());
        return 0;
    }
    if (o.list_components) {
        std::printf("prefetchers        : %s\n",
                    prefetcherRegistry().namesLine().c_str());
        std::printf("prefetch filters   : %s\n",
                    filterRegistry().namesLine().c_str());
        std::printf("off-chip predictors: %s\n",
                    offchipRegistry().namesLine().c_str());
        return 0;
    }
    if (o.knobs) {
        std::fputs(knobReference(o.knobs_component).c_str(), stdout);
        return 0;
    }

    auto all_workloads
        = workloads::singleCoreWorkloads(workloads::setSizeFromEnv());
    if (o.list_workloads) {
        for (const auto &w : all_workloads)
            std::printf("%-24s %s\n", w.name.c_str(), toString(w.suite));
        std::printf("%-24s %s\n", "file:PATH",
                    "replay an external .tlt trace file (README "
                    "\"External traces\")");
        return 0;
    }

    LayeredConfig lc = layeredConfig(o);
    // Sweep-machinery knobs ("store.*") are consumed here, before
    // SystemConfig::fromConfig would reject them as unknown system keys.
    SweepOptions sw = sweepOptions(o, lc);

    // Mix axis sources: --mix flags plus the workload.mix config key.
    // "workload.*" keys are the workload axis, not SystemConfig fields;
    // consume them before fromConfig rejects them as unknown.
    std::vector<std::vector<std::string>> mix_names;
    for (const std::string &value : o.mixes) {
        std::vector<std::string> names = splitMixNames(value);
        if (names.empty()) {
            usageError("--mix expects workload names (',' or '+' "
                       "separated, one per core), got '" + value + "'");
        }
        mix_names.push_back(std::move(names));
    }
    if (lc.merged.has("workload.mix")) {
        // Consume the key even when its value is blank (a commented-out
        // mix must not turn into an "unknown config key" complaint).
        const auto config_mix = lc.merged.getStringList("workload.mix");
        if (!config_mix.empty())
            mix_names.push_back(config_mix);
        lc.merged.erase("workload.mix");
        lc.overrides.erase("workload.mix");
    }

    // Core-count precedence: --cores beats every config source; with
    // neither set, an explicit mix implies one core per named workload.
    if (o.cores != 0)
        lc.merged.set("cores", o.cores);
    else if (!lc.merged.has("cores") && !mix_names.empty())
        lc.merged.set("cores", mix_names.front().size());

    SystemConfig base = SystemConfig::fromConfig(lc.merged);

    if (!o.record_trace.empty()) {
        if (o.workload_names.size() != 1) {
            usageError("--record-trace expects exactly one --workload NAME "
                       "(the in-binary kernel to dump)");
        }
        const auto idx = workloads::resolveWorkloadIndices(
            all_workloads, o.workload_names, "--workload");
        const workloads::WorkloadSpec &w
            = all_workloads[static_cast<std::size_t>(idx.front())];
        if (w.isFile()) {
            usageError("--record-trace: '" + w.trace_path
                       + "' is already a trace file; nothing to record");
        }
        // The exact stream runSingleCore consumes: warmup + measurement
        // instructions, default recording seed — so a replay of the dump
        // is bit-identical to simulating the kernel in-binary.
        const Trace &trace
            = cachedTrace(w, base.warmup_instrs + base.sim_instrs);
        tracefile::writeTraceFile(
            o.record_trace, trace,
            w.suite == workloads::Suite::Gap ? 1 : 0);
        const auto info = tracefile::readInfo(o.record_trace);
        std::printf("recorded %s -> %s: %llu record(s), %llu bytes, %s\n",
                    w.name.c_str(), o.record_trace.c_str(),
                    static_cast<unsigned long long>(info.record_count),
                    static_cast<unsigned long long>(info.file_size),
                    info.identity().c_str());
        return 0;
    }

    if (o.print_config) {
        Config dump = base.toConfig();
        // The mix is config too: a saved --print-config dump must
        // reproduce a single-mix design point, not just its system.
        // (Several mixes are a sweep axis, like repeated --scheme, and
        // have no config-key rendering.)
        if (mix_names.size() == 1)
            dump.set("workload.mix", mix_names.front());
        std::fputs(dump.serialize().c_str(), stdout);
        return 0;
    }
    if (o.describe) {
        std::fputs(base.description().c_str(), stdout);
        return 0;
    }

    // Scheme axis: explicit --scheme list, else the config's scheme for a
    // single run, else baseline + the paper schemes for a sweep. Explicit
    // scheme.* keys from --set / TLPSIM_CONF override every selected
    // preset's fields (config-file scheme.* keys shape the file's own
    // scheme only, applied through `base` above).
    validateSchemeNames(o.schemes);
    const Config scheme_overrides = lc.overrides.sub("scheme");
    std::vector<SchemeConfig> schemes;
    // Knob-schema offences (a misspelled scheme.offchip.* key, a
    // wrongly-typed value) are collected across every scheme of the grid
    // and reported in one error before anything runs, like the mix axis.
    std::vector<std::string> scheme_errors;
    auto push_scheme = [&](const SchemeConfig &preset) {
        try {
            schemes.push_back(
                SchemeConfig::fromConfig(scheme_overrides, preset));
        } catch (const ConfigError &e) {
            // Presets sharing a component produce the same message once.
            if (std::find(scheme_errors.begin(), scheme_errors.end(),
                          e.what())
                == scheme_errors.end()) {
                scheme_errors.push_back(e.what());
            }
        }
    };
    if (!o.schemes.empty()) {
        for (const std::string &name : o.schemes)
            push_scheme(SchemeConfig::fromName(name));
    } else if (o.sweep) {
        push_scheme(SchemeConfig::baseline());
        for (const SchemeConfig &s : SchemeConfig::paperSchemes())
            push_scheme(s);
    } else {
        schemes.push_back(base.scheme);
        // A subtree for a slot the scheme never deploys tunes nothing:
        // reject it as the typo it almost certainly is. (Sweeps validate
        // per selected preset above, where the slot may well be filled.)
        auto flag_dangling = [&scheme_errors](const std::string &slot,
                                              const std::string &component,
                                              const Config &params) {
            if (!component.empty())
                return;
            for (const std::string &k : params.keys()) {
                scheme_errors.push_back(
                    "scheme." + slot + "." + k + " is set but scheme."
                    + slot + " = none deploys no component to consume it");
            }
        };
        flag_dangling("offchip", base.scheme.offchip,
                      base.scheme.offchip_params);
        flag_dangling("l1_filter", base.scheme.l1_filter,
                      base.scheme.l1_filter_params);
        flag_dangling("l2_filter", base.scheme.l2_filter,
                      base.scheme.l2_filter_params);
    }
    if (!scheme_errors.empty())
        throwConfigErrors(scheme_errors);

    std::vector<SystemConfig> grid;
    for (const SchemeConfig &s : schemes) {
        SystemConfig cfg = base;
        cfg.scheme = s;
        grid.push_back(cfg);
    }

    StorePolicy policy;
    if (!sw.store_dir.empty()) {
        if (sw.resume && !std::filesystem::exists(sw.store_dir)) {
            throw ConfigError("--resume: store '" + sw.store_dir
                              + "' does not exist; nothing to resume "
                                "(drop --resume to start a fresh store)");
        }
        policy.store = std::make_shared<store::ResultStore>(sw.store_dir);
        if (sw.resume) {
            diag("store",
                 "resume: " + std::to_string(policy.store->okRowCount())
                     + " ok row(s) already in " + sw.store_dir);
        }
    }
    policy.timeout_s = sw.timeout_s;

    // The JSONL writer outlives the Runner: workers stream rows into it
    // until the last job completes.
    JsonlWriter jsonl;
    Runner runner(o.jobs == 0 ? jobsFromEnv() : o.jobs, policy);
    if (!sw.out_jsonl.empty()) {
        jsonl.open(sw.out_jsonl);
        runner.setOnComplete(
            [&jsonl](const Runner::CompletionRecord &rec) {
                jsonl.write(rec);
            });
    }

    // Deterministic fingerprint partition: with --shard i/N this process
    // submits (and prints) only the points it owns; the partition
    // depends only on point keys, never on submission order or worker
    // count, so N shards over one store union to exactly the full grid.
    auto in_shard = [&sw](const std::string &key) {
        return store::shardOf(key, sw.shard.count) == sw.shard.index;
    };

    // Emitted after every table: the sweep's persistence ledger, on the
    // stable diagnostic prefix CI greps ("tlpsim: store: ..."). Exit
    // code 3 reports "the grid completed but some points failed".
    auto finish = [&]() -> int {
        if (policy.store != nullptr) {
            const auto c = policy.store->counters();
            diag("store",
                 "reused=" + std::to_string(runner.storeHitCount())
                     + " simulated="
                     + std::to_string(runner.simulatedCount()) + " failed="
                     + std::to_string(runner.failedCount())
                     + " quarantined=" + std::to_string(c.quarantined)
                     + " saved=" + std::to_string(c.saved));
        }
        return runner.failedCount() > 0 ? 3 : 0;
    };

    const bool multi_core = base.num_cores > 1 || !mix_names.empty();
    if (!multi_core) {
        // Workload axis: explicit names, else (sweep only) the whole
        // set. All names resolve — or fail together — before anything
        // is submitted.
        std::vector<workloads::WorkloadSpec> selected;
        if (!o.workload_names.empty()) {
            for (int idx : workloads::resolveWorkloadIndices(
                     all_workloads, o.workload_names, "--workload")) {
                selected.push_back(
                    all_workloads[static_cast<std::size_t>(idx)]);
            }
        } else if (o.sweep) {
            selected = all_workloads;
        } else {
            throw ConfigError("no workload selected: pass --workload NAME "
                              "(repeatable) or --sweep; --list-workloads "
                              "shows the choices");
        }

        // Submit the (shard-filtered) grid up front; render in
        // deterministic order.
        std::size_t owned = 0;
        for (const auto &cfg : grid) {
            for (const auto &w : selected) {
                if (!in_shard(singlePointKey(w, cfg)))
                    continue;
                runner.submitSingle(w, cfg);
                ++owned;
            }
        }
        std::fprintf(stderr,
                     "[tlpsim] %zu workload(s) x %zu scheme(s)%s, "
                     "warmup=%llu sim=%llu, jobs=%u\n",
                     selected.size(), grid.size(),
                     sw.shard.sharded()
                         ? (" (shard " + std::to_string(sw.shard.index)
                            + "/" + std::to_string(sw.shard.count) + ": "
                            + std::to_string(owned) + " point(s))")
                               .c_str()
                         : "",
                     static_cast<unsigned long long>(base.warmup_instrs),
                     static_cast<unsigned long long>(base.sim_instrs),
                     runner.jobs());

        TablePrinter tp = resultTable();
        tp.printHeader(o.sweep ? "tlpsim sweep" : "tlpsim run");
        for (const auto &w : selected) {
            for (const auto &cfg : grid) {
                const std::string key = singlePointKey(w, cfg);
                if (!in_shard(key))
                    continue;
                printOutcomeRow(tp, w.name, cfg.scheme.name,
                                runner.outcome(key));
            }
        }
        return finish();
    }

    // ---- multi-core: the mixes x schemes grid --------------------------
    // Validate the whole mix axis in one pass: every workload name of
    // every mix resolves, or the union of unknown names is reported in a
    // single error before any simulation starts.
    std::vector<workloads::Mix> mixes;
    if (!mix_names.empty()) {
        std::vector<std::string> every_name;
        for (const auto &names : mix_names)
            every_name.insert(every_name.end(), names.begin(), names.end());
        workloads::resolveWorkloadIndices(all_workloads, every_name,
                                          "--mix / workload.mix");
        for (const auto &names : mix_names) {
            mixes.push_back(workloads::mixFromNames(all_workloads, names,
                                                    "--mix"));
        }
        std::vector<std::string> wrong_width;
        for (const auto &mix : mixes) {
            if (mix.cores() != base.num_cores)
                wrong_width.push_back(mix.name + " ("
                                      + std::to_string(mix.cores()) + ")");
        }
        if (!wrong_width.empty()) {
            throw ConfigError(
                "cores = " + std::to_string(base.num_cores)
                + " but these mixes have a different width: "
                + joinNames(wrong_width)
                + " (one workload per core; adjust --cores or the mix)");
        }
    }
    if (!o.workload_names.empty()) {
        // A bare workload name on N cores is the N-copy homogeneous mix;
        // --workload and --mix union into one mix axis, no flag is
        // silently dropped.
        for (int idx : workloads::resolveWorkloadIndices(
                 all_workloads, o.workload_names, "--workload")) {
            workloads::Mix mix;
            const auto &w = all_workloads[static_cast<std::size_t>(idx)];
            mix.name = "homo." + w.name;
            mix.suite = w.suite;
            mix.homogeneous = true;
            mix.workload_index.assign(base.num_cores, idx);
            mixes.push_back(std::move(mix));
        }
    }
    if (mixes.empty() && o.sweep) {
        // The Fig. 13 recipe at the configured width: TLPSIM_MIXES per
        // suite, half homogeneous, seeded — and defaulted — like the
        // benches (bench_common.hh), so "the mixes" agree everywhere.
        mixes = workloads::makeMixes(all_workloads, envMixes(2), 1234,
                                     base.num_cores);
    } else if (mixes.empty()) {
        throw ConfigError("no mix selected: pass --mix A,B,... or "
                          "--workload NAME (an N-copy homogeneous mix) "
                          "or --sweep for the generated mix set");
    }

    std::size_t owned = 0;
    for (const auto &cfg : grid) {
        for (const auto &mix : mixes) {
            if (!in_shard(mixPointKey(mix, cfg)))
                continue;
            runner.submitMix(all_workloads, mix, cfg);
            ++owned;
        }
    }
    std::fprintf(stderr,
                 "[tlpsim] %zu mix(es) x %zu scheme(s) on %u cores%s, "
                 "warmup=%llu sim=%llu, jobs=%u\n",
                 mixes.size(), grid.size(), base.num_cores,
                 sw.shard.sharded()
                     ? (" (shard " + std::to_string(sw.shard.index) + "/"
                        + std::to_string(sw.shard.count) + ": "
                        + std::to_string(owned) + " point(s))")
                           .c_str()
                     : "",
                 static_cast<unsigned long long>(base.warmup_instrs),
                 static_cast<unsigned long long>(base.sim_instrs),
                 runner.jobs());

    TablePrinter tp = resultTable("mix", 24, /*per_core_ipc=*/true);
    tp.printHeader(o.sweep ? "tlpsim mix sweep" : "tlpsim mix run");
    for (const auto &mix : mixes) {
        for (const auto &cfg : grid) {
            const std::string key = mixPointKey(mix, cfg);
            if (!in_shard(key))
                continue;
            printOutcomeRow(tp, mix.name, cfg.scheme.name,
                            runner.outcome(key), /*per_core_ipc=*/true);
        }
    }
    return finish();
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(parseArgs(argc, argv));
    } catch (const ConfigError &e) {
        std::fprintf(stderr, "tlpsim: %s\n", e.what());
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "tlpsim: internal error: %s\n", e.what());
        return 1;
    }
}
