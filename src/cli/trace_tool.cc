/**
 * @file
 * tlpsim-trace — standalone trace-file tool.
 *
 *   tlpsim-trace convert IN OUT [--name N] [--suite spec|gap] [--limit K]
 *       convert a ChampSim trace (raw / .xz / .gz) to a sealed .tlt file
 *   tlpsim-trace info FILE
 *       print the header/footer metadata (structural validation only)
 *   tlpsim-trace verify FILE
 *       stream the whole record payload and check the footer checksum
 *
 * Kept separate from the tlpsim driver so trace preparation — typically
 * a one-off batch over downloaded ChampSim archives — doesn't route
 * through the simulation CLI's config machinery.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/config.hh"
#include "tracefile/champsim.hh"
#include "tracefile/format.hh"

using namespace tlpsim;
using namespace tlpsim::tracefile;

namespace
{

constexpr const char *kUsage
    = R"(tlpsim-trace — convert and inspect tlpsim trace files

usage:
  tlpsim-trace convert IN OUT [--name NAME] [--suite spec|gap] [--limit K]
      convert a ChampSim trace (raw, .xz, or .gz; compressed inputs
      stream through the system xz/gzip) to a sealed .tlt trace at OUT.
      --name sets the embedded workload name (default: derived from IN),
      --suite tags the suite for per-suite reporting (default: spec),
      --limit stops after K records (0 = all).
  tlpsim-trace info FILE
      print FILE's metadata after structural validation (magic, version,
      record-region bounds; the checksum is declared, not recomputed).
  tlpsim-trace verify FILE
      stream every record and verify the footer checksum; exits non-zero
      naming the file and byte offset on any corruption.

Replay a converted trace with: tlpsim --workload file:OUT
)";

[[noreturn]] void
usageError(const std::string &msg)
{
    std::fprintf(stderr,
                 "tlpsim-trace: %s\n(run tlpsim-trace --help for usage)\n",
                 msg.c_str());
    std::exit(2);
}

void
printInfo(const TraceFileInfo &info)
{
    std::printf("file          : %s\n", info.path.c_str());
    std::printf("name          : %s\n", info.name.c_str());
    std::printf("version       : %u\n", info.version);
    std::printf("suite         : %s\n", info.suite == 1 ? "gap" : "spec");
    std::printf("records       : %llu\n",
                static_cast<unsigned long long>(info.record_count));
    std::printf("file bytes    : %llu\n",
                static_cast<unsigned long long>(info.file_size));
    std::printf("payload offset: %llu\n",
                static_cast<unsigned long long>(info.payload_offset));
    std::printf("checksum      : %016llx\n",
                static_cast<unsigned long long>(info.checksum));
    std::printf("identity      : %s\n", info.identity().c_str());
}

int
runConvert(int argc, char **argv)
{
    if (argc < 4)
        usageError("convert expects: convert IN OUT [options]");
    const std::string in_path = argv[2];
    const std::string out_path = argv[3];
    ChampSimConvertOptions opt;
    for (int i = 4; i < argc; ++i) {
        const std::string arg = argv[i];
        auto need_value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                usageError(std::string(flag) + " requires a value");
            return argv[++i];
        };
        if (arg == "--name") {
            opt.name = need_value("--name");
        } else if (arg == "--suite") {
            const std::string v = need_value("--suite");
            if (v == "spec")
                opt.suite = 0;
            else if (v == "gap")
                opt.suite = 1;
            else
                usageError("--suite expects 'spec' or 'gap', got '" + v
                           + "'");
        } else if (arg == "--limit") {
            const std::string v = need_value("--limit");
            char *end = nullptr;
            opt.limit = std::strtoull(v.c_str(), &end, 10);
            if (end == v.c_str() || *end != '\0')
                usageError("--limit expects a record count, got '" + v
                           + "'");
        } else {
            usageError("unknown convert option '" + arg + "'");
        }
    }

    const ChampSimConvertStats stats = convertChampSim(in_path, out_path,
                                                       opt);
    const TraceFileInfo info = readInfo(out_path);
    std::printf("converted %s -> %s\n", in_path.c_str(), out_path.c_str());
    std::printf("  name %s, %llu record(s): %llu load(s), %llu store(s), "
                "%llu branch(es)\n",
                stats.name.c_str(),
                static_cast<unsigned long long>(stats.records),
                static_cast<unsigned long long>(stats.loads),
                static_cast<unsigned long long>(stats.stores),
                static_cast<unsigned long long>(stats.branches));
    std::printf("  identity %s\n", info.identity().c_str());
    return 0;
}

int
run(int argc, char **argv)
{
    if (argc < 2)
        usageError("expects a mode: convert, info, or verify");
    const std::string mode = argv[1];
    if (mode == "--help" || mode == "-h") {
        std::fputs(kUsage, stdout);
        return 0;
    }
    if (mode == "convert")
        return runConvert(argc, argv);
    if (mode == "info" || mode == "verify") {
        if (argc != 3)
            usageError(mode + " expects exactly one FILE");
        printInfo(mode == "verify" ? verifyFile(argv[2])
                                   : readInfo(argv[2]));
        if (mode == "verify")
            std::printf("checksum OK\n");
        return 0;
    }
    usageError("unknown mode '" + mode + "'");
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const ConfigError &e) {
        std::fprintf(stderr, "tlpsim-trace: %s\n", e.what());
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "tlpsim-trace: internal error: %s\n", e.what());
        return 1;
    }
}
