#include "tlb/tlb.hh"

#include <cassert>

namespace tlpsim
{

Tlb::Tlb(const Params &p, StatGroup *stats)
    : params_(p), sets_(p.entries / p.ways),
      entries_(static_cast<std::size_t>(p.entries)),
      hits_(stats->counter(p.name + ".hit")),
      misses_(stats->counter(p.name + ".miss"))
{
    assert(isPowerOfTwo(sets_));
}

Tlb::Entry *
Tlb::find(Addr vpn)
{
    std::size_t set = vpn & (sets_ - 1);
    Entry *base = &entries_[set * params_.ways];
    for (unsigned w = 0; w < params_.ways; ++w) {
        if (base[w].valid && base[w].vpn == vpn)
            return &base[w];
    }
    return nullptr;
}

bool
Tlb::lookup(Addr vaddr)
{
    Entry *e = find(pageNumber(vaddr));
    if (e != nullptr) {
        e->lru = ++lru_clock_;
        hits_->add();
        return true;
    }
    misses_->add();
    return false;
}

void
Tlb::install(Addr vaddr)
{
    Addr vpn = pageNumber(vaddr);
    if (find(vpn) != nullptr)
        return;
    std::size_t set = vpn & (sets_ - 1);
    Entry *base = &entries_[set * params_.ways];
    Entry *victim = base;
    for (unsigned w = 1; w < params_.ways; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lru < victim->lru)
            victim = &base[w];
    }
    victim->vpn = vpn;
    victim->valid = true;
    victim->lru = ++lru_clock_;
}

TranslationStack::Result
TranslationStack::lookup(Addr vaddr)
{
    if (dtlb_->lookup(vaddr))
        return {false, dtlb_->latency()};
    if (stlb_->lookup(vaddr)) {
        dtlb_->install(vaddr);
        return {false, dtlb_->latency() + stlb_->latency()};
    }
    return {true, 0};
}

void
TranslationStack::fill(Addr vaddr)
{
    stlb_->install(vaddr);
    dtlb_->install(vaddr);
}

} // namespace tlpsim
