/**
 * @file
 * Set-associative TLBs (L1 DTLB and the shared L2 STLB of Table III).
 *
 * TLBs are consulted synchronously by the core at load/store issue: a DTLB
 * hit costs its access latency, a DTLB miss falling into the STLB adds the
 * STLB latency, and a full miss triggers a page walk, which the core models
 * as a Translation-type read into the cache hierarchy.
 */

#ifndef TLPSIM_TLB_TLB_HH
#define TLPSIM_TLB_TLB_HH

#include <cstdint>
#include <vector>

#include "common/bitops.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace tlpsim
{

/** One level of TLB with true-LRU replacement. */
class Tlb
{
  public:
    struct Params
    {
        std::string name = "tlb";
        unsigned entries = 64;
        unsigned ways = 4;
        unsigned latency = 1;
    };

    Tlb(const Params &p, StatGroup *stats);

    /** Look up @p vaddr; fills hit latency and updates LRU. */
    bool lookup(Addr vaddr);

    /** Install a translation for @p vaddr (evicts LRU way). */
    void install(Addr vaddr);

    unsigned latency() const { return params_.latency; }
    const Params &params() const { return params_; }

  private:
    struct Entry
    {
        Addr vpn = 0;
        bool valid = false;
        std::uint64_t lru = 0;
    };

    Entry *find(Addr vpn);

    Params params_;
    unsigned sets_;
    std::vector<Entry> entries_;
    std::uint64_t lru_clock_ = 0;
    Counter *hits_;
    Counter *misses_;
};

/**
 * The core-side translation stack: DTLB backed by STLB.
 *
 * Result of a lookup: either a synchronous latency (both TLB levels) or a
 * page-walk requirement the core turns into a Translation read.
 */
class TranslationStack
{
  public:
    struct Result
    {
        bool needs_walk = false;
        unsigned latency = 0;   ///< valid when !needs_walk
    };

    TranslationStack(Tlb *dtlb, Tlb *stlb) : dtlb_(dtlb), stlb_(stlb) {}

    Result lookup(Addr vaddr);

    /** Install in both levels after a completed walk. */
    void fill(Addr vaddr);

    /** Latency already paid before a walk starts (DTLB + STLB misses). */
    unsigned
    missLatency() const
    {
        return dtlb_->latency() + stlb_->latency();
    }

  private:
    Tlb *dtlb_;
    Tlb *stlb_;
};

} // namespace tlpsim

#endif // TLPSIM_TLB_TLB_HH
