#include "tlb/page_table.hh"

#include "common/bitops.hh"

namespace tlpsim
{

Addr
PageTable::translate(unsigned asid, Addr vaddr)
{
    const Addr vpn = pageNumber(vaddr);
    MemoEntry &m = memo_[vpn & (kMemoEntries - 1)];
    if (m.vpn == vpn && m.asid == asid)
        return (m.frame << kPageBits) | (vaddr & kPageMask);
    Key key{asid, vpn};
    auto it = map_.find(key);
    if (it == map_.end())
        it = map_.emplace(key, next_frame_++).first;
    m = {vpn, asid, it->second};
    return (it->second << kPageBits) | (vaddr & kPageMask);
}

Addr
PageTable::pteAddress(unsigned asid, Addr vaddr) const
{
    // Model the leaf PTE fetch: 8-byte entries packed in a dedicated
    // physical region far above allocated frames. Consecutive virtual pages
    // hit consecutive PTEs, giving page walks the spatial locality real
    // radix tables have.
    constexpr Addr kPteRegion = Addr{1} << 46;
    Addr vpn = pageNumber(vaddr) + (static_cast<Addr>(asid) << 36);
    return kPteRegion + vpn * 8;
}

} // namespace tlpsim
