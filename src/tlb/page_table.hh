/**
 * @file
 * First-touch page table: deterministic virtual→physical mapping.
 *
 * Frames are handed out sequentially from a system-wide allocator on first
 * touch (any core, any page), so co-running cores interleave naturally in
 * physical memory as they would under a real OS. Frame 0 is reserved so a
 * physical address of 0 can never appear (0 is the "no access" sentinel in
 * trace records).
 */

#ifndef TLPSIM_TLB_PAGE_TABLE_HH
#define TLPSIM_TLB_PAGE_TABLE_HH

#include <array>
#include <cstdint>
#include <unordered_map>

#include "common/types.hh"

namespace tlpsim
{

class PageTable
{
  public:
    /**
     * Translate @p vaddr for address space @p asid, allocating a frame on
     * first touch. Returns the full physical address (page offset kept).
     */
    Addr translate(unsigned asid, Addr vaddr);

    /** Physical address of the PTE for @p vaddr (for page-walk traffic). */
    Addr pteAddress(unsigned asid, Addr vaddr) const;

    /** Number of frames allocated so far. */
    std::uint64_t allocatedFrames() const { return next_frame_ - 1; }

  private:
    struct Key
    {
        unsigned asid;
        Addr vpn;
        bool operator==(const Key &) const = default;
    };

    struct KeyHash
    {
        std::size_t
        operator()(const Key &k) const
        {
            return static_cast<std::size_t>(
                (k.vpn * 0x9e3779b97f4a7c15ULL) ^ (std::uint64_t{k.asid} << 1));
        }
    };

    /** Direct-mapped memo over the map_ lookup. translate() is called
     *  for every load, walk, and prefetch-candidate translation — most
     *  hit the same few pages back to back — and the mapping is
     *  first-touch-permanent, so a memo hit returns exactly what the
     *  map lookup would. Pure cache: no observable behavior change. */
    struct MemoEntry
    {
        Addr vpn = ~Addr{0};
        unsigned asid = ~0u;
        Addr frame = 0;
    };
    static constexpr std::size_t kMemoEntries = 1024;   // power of two

    std::array<MemoEntry, kMemoEntries> memo_{};
    std::unordered_map<Key, Addr, KeyHash> map_;
    Addr next_frame_ = 1;
};

} // namespace tlpsim

#endif // TLPSIM_TLB_PAGE_TABLE_HH
