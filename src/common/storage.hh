/**
 * @file
 * Storage accounting for hardware structures.
 *
 * The paper's Table II reports TLP's cost as 6.98 KB broken down by
 * component. Every predictor in tlpsim reports its storage through this
 * interface and bench/table2_storage regenerates the table from the live
 * configuration, so the budget can never silently drift from the code.
 */

#ifndef TLPSIM_COMMON_STORAGE_HH
#define TLPSIM_COMMON_STORAGE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace tlpsim
{

/** One line of a storage budget: a named bit count. */
struct StorageItem
{
    std::string name;
    std::uint64_t bits;

    double kilobytes() const { return static_cast<double>(bits) / 8.0 / 1024.0; }
};

/** A component's storage breakdown. */
class StorageBudget
{
  public:
    void
    add(const std::string &name, std::uint64_t bits)
    {
        items_.push_back({name, bits});
    }

    void
    merge(const StorageBudget &other, const std::string &prefix)
    {
        for (const auto &i : other.items_)
            items_.push_back({prefix + i.name, i.bits});
    }

    std::uint64_t totalBits() const;
    double totalKilobytes() const { return static_cast<double>(totalBits()) / 8192.0; }

    const std::vector<StorageItem> &items() const { return items_; }

    /** Render as an aligned text table (used by bench/table2_storage). */
    std::string toTable(const std::string &title) const;

  private:
    std::vector<StorageItem> items_;
};

} // namespace tlpsim

#endif // TLPSIM_COMMON_STORAGE_HH
