/**
 * @file
 * Bit-manipulation helpers: folded XOR hashing, bit slicing, mixing.
 *
 * All microarchitectural tables in tlpsim (perceptron weight tables, TLBs,
 * signature tables) index with these helpers so that hashing behaviour is
 * consistent and unit-testable in one place.
 */

#ifndef TLPSIM_COMMON_BITOPS_HH
#define TLPSIM_COMMON_BITOPS_HH

#include <cassert>
#include <cstdint>

namespace tlpsim
{

/** Extract bits [lo, lo+count) of v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned lo, unsigned count)
{
    return (v >> lo) & ((count >= 64) ? ~std::uint64_t{0}
                                      : ((std::uint64_t{1} << count) - 1));
}

/**
 * Fold a 64-bit value down to @p out_bits bits by XOR-ing successive
 * out_bits-wide slices. This is the classic hardware-friendly hash used by
 * hashed-perceptron predictors.
 */
constexpr std::uint64_t
foldedXor(std::uint64_t v, unsigned out_bits)
{
    if (out_bits == 0 || out_bits >= 64)
        return v;
    std::uint64_t mask = (std::uint64_t{1} << out_bits) - 1;
    std::uint64_t r = 0;
    while (v != 0) {
        r ^= v & mask;
        v >>= out_bits;
    }
    return r;
}

/**
 * 64-bit finalizer-style mixer (xorshift-multiply). Used where a
 * better-distributed hash is wanted, e.g. page-frame shuffling.
 */
constexpr std::uint64_t
mix64(std::uint64_t v)
{
    v ^= v >> 33;
    v *= 0xff51afd7ed558ccdULL;
    v ^= v >> 33;
    v *= 0xc4ceb9fe1a85ec53ULL;
    v ^= v >> 33;
    return v;
}

/** True iff v is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power of two. */
constexpr unsigned
log2i(std::uint64_t v)
{
    unsigned r = 0;
    while (v > 1) {
        v >>= 1;
        ++r;
    }
    return r;
}

/** Combine two values into one hash (boost-style). */
constexpr std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

} // namespace tlpsim

#endif // TLPSIM_COMMON_BITOPS_HH
