#include "common/storage.hh"

#include <cstdio>

namespace tlpsim
{

std::uint64_t
StorageBudget::totalBits() const
{
    std::uint64_t total = 0;
    for (const auto &i : items_)
        total += i.bits;
    return total;
}

std::string
StorageBudget::toTable(const std::string &title) const
{
    std::string out;
    out += title + "\n";
    std::size_t width = 4;
    for (const auto &i : items_)
        width = std::max(width, i.name.size());
    char buf[256];
    for (const auto &i : items_) {
        std::snprintf(buf, sizeof(buf), "  %-*s %10.2f KB (%llu bits)\n",
                      static_cast<int>(width), i.name.c_str(), i.kilobytes(),
                      static_cast<unsigned long long>(i.bits));
        out += buf;
    }
    std::snprintf(buf, sizeof(buf), "  %-*s %10.2f KB\n",
                  static_cast<int>(width), "TOTAL", totalKilobytes());
    out += buf;
    return out;
}

} // namespace tlpsim
