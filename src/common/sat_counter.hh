/**
 * @file
 * Saturating signed counters — the storage element of every perceptron
 * weight table and confidence counter in tlpsim.
 */

#ifndef TLPSIM_COMMON_SAT_COUNTER_HH
#define TLPSIM_COMMON_SAT_COUNTER_HH

#include <cstdint>

namespace tlpsim
{

/**
 * Signed saturating counter with a compile-time bit width.
 *
 * An N-bit counter saturates at [-2^(N-1), 2^(N-1)-1], matching the
 * hardware weight storage budget quoted in the paper's Table II.
 */
template <unsigned NBits>
class SatCounter
{
    static_assert(NBits >= 2 && NBits <= 15, "weight widths are small");

  public:
    static constexpr int kMax = (1 << (NBits - 1)) - 1;
    static constexpr int kMin = -(1 << (NBits - 1));

    constexpr SatCounter() = default;
    explicit constexpr SatCounter(int v) : value_(clamp(v)) {}

    constexpr int value() const { return value_; }
    constexpr unsigned storageBits() const { return NBits; }

    /** Increment toward kMax, saturating. */
    void
    increment()
    {
        if (value_ < kMax)
            ++value_;
    }

    /** Decrement toward kMin, saturating. */
    void
    decrement()
    {
        if (value_ > kMin)
            --value_;
    }

    /** Train in the direction of @p positive. */
    void
    train(bool positive)
    {
        if (positive)
            increment();
        else
            decrement();
    }

    void reset() { value_ = 0; }

  private:
    static constexpr int
    clamp(int v)
    {
        return v > kMax ? kMax : (v < kMin ? kMin : v);
    }

    std::int16_t value_ = 0;
};

/**
 * Unsigned saturating counter (confidence / usefulness counters).
 */
template <unsigned NBits>
class SatCounterU
{
    static_assert(NBits >= 1 && NBits <= 15);

  public:
    static constexpr unsigned kMax = (1u << NBits) - 1;

    constexpr unsigned value() const { return value_; }

    void
    increment()
    {
        if (value_ < kMax)
            ++value_;
    }

    void
    decrement()
    {
        if (value_ > 0)
            --value_;
    }

    void reset() { value_ = 0; }

  private:
    std::uint16_t value_ = 0;
};

} // namespace tlpsim

#endif // TLPSIM_COMMON_SAT_COUNTER_HH
