/**
 * @file
 * Shared diagnostic channel for operational events (store quarantines,
 * watchdog timeouts, resume summaries): every line is rendered
 * "tlpsim: <topic>: <message>" on stderr, so CI greps and operators can
 * match on a stable prefix instead of ad-hoc fprintf wording scattered
 * across subsystems. Lines are emitted atomically (one mutex-guarded
 * write), so concurrent sweep workers never interleave mid-line.
 *
 * This channel is for *events*; per-simulation progress logging
 * (runner.cc's "[sim ...]" lines) stays on its own informal format.
 */

#ifndef TLPSIM_COMMON_DIAG_HH
#define TLPSIM_COMMON_DIAG_HH

#include <string>

namespace tlpsim
{

/** Emit "tlpsim: <topic>: <message>\n" on stderr, atomically. */
void diag(const std::string &topic, const std::string &message);

} // namespace tlpsim

#endif // TLPSIM_COMMON_DIAG_HH
