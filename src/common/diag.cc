#include "common/diag.hh"

#include <cstdio>
#include <mutex>

namespace tlpsim
{

void
diag(const std::string &topic, const std::string &message)
{
    static std::mutex m;
    std::lock_guard<std::mutex> lock(m);
    std::fprintf(stderr, "tlpsim: %s: %s\n", topic.c_str(),
                 message.c_str());
    std::fflush(stderr);
}

} // namespace tlpsim
