#include "common/types.hh"

namespace tlpsim
{

const char *
toString(AccessType t)
{
    switch (t) {
      case AccessType::Load: return "load";
      case AccessType::Rfo: return "rfo";
      case AccessType::Prefetch: return "prefetch";
      case AccessType::Writeback: return "writeback";
      case AccessType::Translation: return "translation";
    }
    return "?";
}

const char *
toString(MemLevel l)
{
    switch (l) {
      case MemLevel::L1D: return "L1D";
      case MemLevel::L2C: return "L2C";
      case MemLevel::LLC: return "LLC";
      case MemLevel::Dram: return "DRAM";
      case MemLevel::None: return "none";
    }
    return "?";
}

} // namespace tlpsim
