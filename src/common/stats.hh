/**
 * @file
 * Lightweight statistics registry.
 *
 * Components own named Counter objects registered into a StatGroup; the
 * simulator aggregates groups per core / per cache and experiment code reads
 * them by name. Deliberately simple — no formulas, just counters and a few
 * derived helpers — because experiment math lives in sim/experiment.cc
 * where it is unit-tested.
 */

#ifndef TLPSIM_COMMON_STATS_HH
#define TLPSIM_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tlpsim
{

/** A single monotonically increasing statistic. */
class Counter
{
  public:
    void add(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Named collection of counters. Components register counters at
 * construction time; names are hierarchical by convention
 * ("l1d.load_miss", "dram.transactions").
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "") : name_(std::move(name)) {}

    /** Register (or fetch) a counter under @p name. Pointer stays valid. */
    Counter *counter(const std::string &name);

    /** Value of a counter, 0 if it was never registered. */
    std::uint64_t get(const std::string &name) const;

    /** True iff a counter with this name exists. */
    bool has(const std::string &name) const;

    /** Reset every counter (used at the warmup/measure boundary). */
    void resetAll();

    /** All (name, value) pairs, sorted by name. */
    std::vector<std::pair<std::string, std::uint64_t>> dump() const;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    // map (not unordered) so dump() is sorted and pointers are stable.
    std::map<std::string, Counter> counters_;
};

} // namespace tlpsim

#endif // TLPSIM_COMMON_STATS_HH
