/**
 * @file
 * Lightweight statistics registry.
 *
 * Components own named Counter objects registered into a StatGroup; the
 * simulator aggregates groups per core / per cache and experiment code reads
 * them by name. Deliberately simple — no formulas, just counters and a few
 * derived helpers — because experiment math lives in sim/experiment.cc
 * where it is unit-tested.
 */

#ifndef TLPSIM_COMMON_STATS_HH
#define TLPSIM_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tlpsim
{

/** A single monotonically increasing statistic. */
class Counter
{
  public:
    void add(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Point-in-time values of the counters under one name prefix, taken with
 * StatGroup::snapshot() and consumed by StatGroup::deltaSince(). The pair
 * reads a *windowed* measurement — counts between two instants — off
 * counters that run monotonically from construction, which is how
 * per-core measurement windows work: each core's stats are delimited by
 * snapshots at its own warmup/measure boundaries instead of one global
 * reset that every core must share.
 */
class StatSnapshot
{
  public:
    StatSnapshot() = default;

    /** The name prefix this snapshot covers ("" = every counter). */
    const std::string &prefix() const { return prefix_; }

    /** Snapshotted value of @p name (0 if it did not exist then, so
     *  counters born after the snapshot delta from zero). */
    std::uint64_t get(const std::string &name) const;

  private:
    friend class StatGroup;
    std::string prefix_;
    std::map<std::string, std::uint64_t> values_;
};

/**
 * Named collection of counters. Components register counters at
 * construction time; names are hierarchical by convention
 * ("l1d.load_miss", "dram.transactions").
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "") : name_(std::move(name)) {}

    /** Register (or fetch) a counter under @p name. Pointer stays valid. */
    Counter *counter(const std::string &name);

    /** Value of a counter, 0 if it was never registered. */
    std::uint64_t get(const std::string &name) const;

    /** True iff a counter with this name exists. */
    bool has(const std::string &name) const;

    /** Reset every counter. Mixing reset with snapshot/delta windows
     *  invalidates open snapshots (deltas would wrap); pick one idiom. */
    void resetAll();

    /** Values of every counter whose name starts with @p prefix, as of
     *  now. O(matching counters); the group is not modified. */
    StatSnapshot snapshot(const std::string &prefix = "") const;

    /** (name, current − snapshotted) for every *current* counter under
     *  the snapshot's prefix, sorted by name: the counts accumulated
     *  since the snapshot was taken. Counters registered after the
     *  snapshot report their full value. */
    std::vector<std::pair<std::string, std::uint64_t>>
    deltaSince(const StatSnapshot &snap) const;

    /** All (name, value) pairs, sorted by name. */
    std::vector<std::pair<std::string, std::uint64_t>> dump() const;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    // map (not unordered) so dump() is sorted and pointers are stable.
    std::map<std::string, Counter> counters_;
};

} // namespace tlpsim

#endif // TLPSIM_COMMON_STATS_HH
