/**
 * @file
 * Declared knob schemas — the data half of the self-describing component
 * API.
 *
 * Every component registered with a KnobSchema names its tuning knobs up
 * front (name, value type, default, one-line description). The schema is
 * what makes forwarded config subtrees (scheme.offchip.*,
 * l1d.prefetcher.*, ...) safe to sweep: a key no schema entry consumes
 * throws a ConfigError naming the offending key and the component's
 * declared knobs, instead of being silently ignored while the sweep runs
 * the defaults.
 *
 * Three cooperating pieces:
 *
 *   - KnobSpec / KnobSchema: the declaration. Defaults are rendered from
 *     typed C++ values (usually the component's default-constructed
 *     Params), so the schema can never drift from the code's defaults.
 *   - KnobSchema::check/validate: subtree validation — unknown keys and
 *     values that do not parse as the declared type are collected, one
 *     actionable error string per offence.
 *   - Knobs: the schema-checked Config reader builders extract with.
 *     Every getter names a knob that must be declared with a matching
 *     type; drift between a component's schema and its extraction code
 *     throws at build time instead of silently defaulting.
 */

#ifndef TLPSIM_COMMON_KNOBS_HH
#define TLPSIM_COMMON_KNOBS_HH

#include <cstdint>
#include <initializer_list>
#include <string>
#include <type_traits>
#include <vector>

#include "common/config.hh"

namespace tlpsim
{

enum class KnobType
{
    String,
    Int,
    Unsigned,
    Double,
    Bool,
};

const char *toString(KnobType t);

/** One declared tuning knob. */
struct KnobSpec
{
    std::string name;
    KnobType type;
    /** Config-rendered default (what a config file would say). */
    std::string default_value;
    std::string description;
    /** Int/Unsigned: the extraction width (32 or 64), recorded from the
     *  declaring C++ type so range validation matches what the builder's
     *  getter will accept — an out-of-range value fails the up-front
     *  check, never mid-run. */
    unsigned bits = 64;
    /** String knobs only: the accepted values ("policy"); empty = any. */
    std::vector<std::string> choices;

    KnobSpec(std::string n, const char *def, std::string desc,
             std::vector<std::string> choice_list = {});
    KnobSpec(std::string n, std::string def, std::string desc,
             std::vector<std::string> choice_list = {});
    KnobSpec(std::string n, bool def, std::string desc);
    KnobSpec(std::string n, double def, std::string desc);
    /** Any non-bool integral default; signedness picks Int vs Unsigned
     *  and the type's size picks the validated width. */
    template <typename T,
              typename = std::enable_if_t<std::is_integral_v<T>
                                          && !std::is_same_v<T, bool>>>
    KnobSpec(std::string n, T def, std::string desc)
        : name(std::move(n)),
          type(std::is_signed_v<T> ? KnobType::Int : KnobType::Unsigned),
          default_value(std::to_string(def)), description(std::move(desc)),
          bits(sizeof(T) <= 4 ? 32 : 64)
    {
    }
};

/** The declared knob set of one registered component. */
class KnobSchema
{
  public:
    KnobSchema() = default;
    /** Throws ConfigError on duplicate knob names (a copy-paste slip). */
    KnobSchema(std::initializer_list<KnobSpec> specs);

    bool contains(const std::string &name) const;
    /** The spec for @p name, or nullptr when undeclared. */
    const KnobSpec *find(const std::string &name) const;
    const std::vector<KnobSpec> &specs() const { return specs_; }

    /** Sorted knob names. */
    std::vector<std::string> names() const;
    /** One comma-separated line of names() (for error messages). */
    std::string namesLine() const;

    /** Every knob at its declared default, as a Config. */
    Config defaults() const;

    /**
     * Check every key of @p cfg against the schema. Undeclared keys and
     * values that do not parse as the declared type produce one error
     * string each, naming the key (with @p prefix prepended, e.g.
     * "scheme.offchip."), the offending component (@p component, e.g.
     * "off-chip predictor 'hermes'"), and the declared knobs.
     */
    std::vector<std::string> check(const Config &cfg,
                                   const std::string &component,
                                   const std::string &prefix = "") const;

    /** check() that throws one ConfigError joining every offence. */
    void validate(const Config &cfg, const std::string &component,
                  const std::string &prefix = "") const;

    /** Formatted knob reference (one line per knob; tlpsim --knobs). */
    std::string reference(const std::string &indent = "  ") const;

  private:
    std::vector<KnobSpec> specs_;
};

/**
 * Schema-checked Config reader for registry builders. Getters fall back
 * to the schema's declared default when the key is absent, so a
 * component's extraction code, its --knobs listing, and its effective
 * design-point fingerprint can never disagree about a default.
 */
class Knobs
{
  public:
    /** @p component labels errors, e.g. "prefetcher 'berti'". */
    Knobs(const Config &cfg, const KnobSchema &schema,
          std::string component);

    std::string str(const std::string &key) const;
    std::int32_t i32(const std::string &key) const;
    std::uint32_t u32(const std::string &key) const;
    std::uint64_t u64(const std::string &key) const;
    double num(const std::string &key) const;
    bool flag(const std::string &key) const;

  private:
    /** The declared spec for @p key; throws ConfigError when the builder
     *  reads a knob the schema never declared, or with the wrong type or
     *  width (@p bits; 0 = width-free type). */
    const KnobSpec &expect(const std::string &key, KnobType t,
                           unsigned bits = 0) const;

    const Config &cfg_;
    const KnobSchema &schema_;
    std::string component_;
};

} // namespace tlpsim

#endif // TLPSIM_COMMON_KNOBS_HH
