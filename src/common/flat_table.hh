/**
 * @file
 * Fixed-capacity open-addressing hash map for the per-cycle hot path.
 *
 * The core's in-flight bookkeeping (outstanding loads, pending store
 * words, page walks) used to live in std::unordered_maps, which allocate
 * one node per insert and free it per erase — a steady-state malloc/free
 * pair for every load the core issues. A FlatTable stores {key, value}
 * slots in one flat array sized once (to a power of two at least twice
 * the structural bound, so probe chains stay short) and never touches
 * the allocator after init(); the Debug-build allocation-counter test
 * (tests/test_hotpath_alloc.cpp) enforces exactly that.
 *
 * Keys are 64-bit; the empty slot is tracked by an explicit flag, so the
 * full key space (including 0) is usable. Erase uses backward-shift
 * deletion, so lookups never scan tombstones no matter how long the
 * table lives. Capacity is the caller's contract: insert into a full
 * table asserts in Debug and is UB-free but unreachable in Release
 * (every user sizes the table from the structural bound that also
 * bounds occupancy, e.g. the load-queue depth).
 */

#ifndef TLPSIM_COMMON_FLAT_TABLE_HH
#define TLPSIM_COMMON_FLAT_TABLE_HH

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace tlpsim
{

template <typename V>
class FlatTable
{
  public:
    FlatTable() = default;

    /** Size for at least @p max_entries live entries (allocates the slot
     *  array at twice that, rounded up to a power of two). Call once,
     *  before the hot loop; discards any contents. */
    void
    init(std::size_t max_entries)
    {
        std::size_t cap = 16;
        while (cap < max_entries * 2)
            cap *= 2;
        slots_.assign(cap, Slot{});
        mask_ = cap - 1;
        size_ = 0;
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Pointer to the value for @p key, or nullptr. Stable only until
     *  the next erase() (backward-shift moves slots). */
    V *
    find(std::uint64_t key)
    {
        assert(!slots_.empty());
        for (std::size_t i = hash(key);; i = (i + 1) & mask_) {
            Slot &s = slots_[i];
            if (!s.used)
                return nullptr;
            if (s.key == key)
                return &s.value;
        }
    }

    bool contains(std::uint64_t key) { return find(key) != nullptr; }

    /** Value for @p key, default-constructing a slot if absent (the
     *  operator[] idiom). The table must not be full. */
    V &
    operator[](std::uint64_t key)
    {
        assert(!slots_.empty());
        for (std::size_t i = hash(key);; i = (i + 1) & mask_) {
            Slot &s = slots_[i];
            if (s.used && s.key == key)
                return s.value;
            if (!s.used) {
                assert(size_ < slots_.size() && "FlatTable overfull");
                s.used = true;
                s.key = key;
                s.value = V{};
                ++size_;
                return s.value;
            }
        }
    }

    /** Erase @p key if present; returns whether it was. The value slot
     *  is overwritten with a default-constructed V (releasing resources
     *  deterministically), then the probe chain is compacted. */
    bool
    erase(std::uint64_t key)
    {
        assert(!slots_.empty());
        std::size_t i = hash(key);
        for (;; i = (i + 1) & mask_) {
            Slot &s = slots_[i];
            if (!s.used)
                return false;
            if (s.key == key)
                break;
        }
        // Backward-shift deletion: pull every displaced follower of the
        // probe chain one slot back so no tombstone is needed.
        std::size_t hole = i;
        for (std::size_t j = (hole + 1) & mask_;; j = (j + 1) & mask_) {
            Slot &cand = slots_[j];
            if (!cand.used)
                break;
            const std::size_t home = hash(cand.key);
            // cand may move into the hole iff the hole lies between its
            // home slot and its current slot (cyclically).
            if (((j - home) & mask_) >= ((j - hole) & mask_)) {
                slots_[hole] = std::move(cand);
                hole = j;
            }
        }
        slots_[hole] = Slot{};
        --size_;
        return true;
    }

    void
    clear()
    {
        for (Slot &s : slots_)
            s = Slot{};
        size_ = 0;
    }

  private:
    struct Slot
    {
        std::uint64_t key = 0;
        V value{};
        bool used = false;
    };

    std::size_t
    hash(std::uint64_t key) const
    {
        // Fibonacci multiplicative hash: cheap and fine for the
        // load-id / word-address / page-number keys used here.
        return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ULL) >> 32)
            & mask_;
    }

    std::vector<Slot> slots_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
};

} // namespace tlpsim

#endif // TLPSIM_COMMON_FLAT_TABLE_HH
