#include "common/watchdog.hh"

#include <chrono>
#include <cstdio>

namespace tlpsim::watchdog
{

namespace
{

// tlpsim:waive(determinism) the watchdog measures real wall-clock time
// by design; expiry produces a structured failure row, never a silently
// different simulation result
using Clock = std::chrono::steady_clock;

struct ThreadWatchdog
{
    bool armed = false;
    double budget_s = 0.0;
    Clock::time_point start;
    Clock::time_point deadline;
    const CancelFlag *cancel = nullptr;
};

thread_local ThreadWatchdog g_wd;

} // namespace

void
arm(double seconds)
{
    if (seconds <= 0.0) {
        disarm();
        return;
    }
    g_wd.armed = true;
    g_wd.budget_s = seconds;
    g_wd.start = Clock::now();
    g_wd.deadline
        = g_wd.start + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(seconds));
}

void
disarm()
{
    g_wd.armed = false;
}

bool
armed()
{
    return g_wd.armed;
}

double
elapsedSeconds()
{
    if (!g_wd.armed)
        return 0.0;
    return std::chrono::duration<double>(Clock::now() - g_wd.start).count();
}

void
bindCancel(const CancelFlag *flag)
{
    g_wd.cancel = flag;
}

void
poll()
{
    // Cancellation outranks the deadline: a cancelled point must not be
    // retried, and SimTimeoutError would route it into the retry loop.
    if (g_wd.cancel != nullptr && g_wd.cancel->requested()) {
        g_wd.cancel = nullptr;
        g_wd.armed = false;
        throw SimCancelledError("design point cancelled");
    }
    if (!g_wd.armed || Clock::now() < g_wd.deadline)
        return;
    char msg[96];
    std::snprintf(msg, sizeof(msg),
                  "design point exceeded its %.3gs wall-clock budget",
                  g_wd.budget_s);
    // Disarm before throwing: the handler (the Runner's retry loop) must
    // not trip over a stale deadline while deciding what to do next.
    g_wd.armed = false;
    throw SimTimeoutError(msg);
}

} // namespace tlpsim::watchdog
