#include "common/stats.hh"

namespace tlpsim
{

Counter *
StatGroup::counter(const std::string &name)
{
    return &counters_[name];
}

std::uint64_t
StatGroup::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

bool
StatGroup::has(const std::string &name) const
{
    return counters_.find(name) != counters_.end();
}

void
StatGroup::resetAll()
{
    for (auto &kv : counters_)
        kv.second.reset();
}

std::vector<std::pair<std::string, std::uint64_t>>
StatGroup::dump() const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto &kv : counters_)
        out.emplace_back(kv.first, kv.second.value());
    return out;
}

} // namespace tlpsim
