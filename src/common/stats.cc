#include "common/stats.hh"

namespace tlpsim
{

namespace
{

bool
startsWith(const std::string &name, const std::string &prefix)
{
    return name.compare(0, prefix.size(), prefix) == 0;
}

} // namespace

std::uint64_t
StatSnapshot::get(const std::string &name) const
{
    auto it = values_.find(name);
    return it == values_.end() ? 0 : it->second;
}

Counter *
StatGroup::counter(const std::string &name)
{
    return &counters_[name];
}

std::uint64_t
StatGroup::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

bool
StatGroup::has(const std::string &name) const
{
    return counters_.find(name) != counters_.end();
}

void
StatGroup::resetAll()
{
    for (auto &kv : counters_)
        kv.second.reset();
}

StatSnapshot
StatGroup::snapshot(const std::string &prefix) const
{
    StatSnapshot snap;
    snap.prefix_ = prefix;
    // counters_ is sorted, so every name sharing a prefix is one
    // contiguous range starting at lower_bound(prefix).
    for (auto it = counters_.lower_bound(prefix);
         it != counters_.end() && startsWith(it->first, prefix); ++it)
        snap.values_.emplace(it->first, it->second.value());
    return snap;
}

std::vector<std::pair<std::string, std::uint64_t>>
StatGroup::deltaSince(const StatSnapshot &snap) const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    for (auto it = counters_.lower_bound(snap.prefix());
         it != counters_.end() && startsWith(it->first, snap.prefix());
         ++it)
        out.emplace_back(it->first, it->second.value() - snap.get(it->first));
    return out;
}

std::vector<std::pair<std::string, std::uint64_t>>
StatGroup::dump() const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto &kv : counters_)
        out.emplace_back(kv.first, kv.second.value());
    return out;
}

} // namespace tlpsim
