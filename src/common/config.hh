/**
 * @file
 * Declarative configuration tree.
 *
 * A Config is an ordered map of dotted-path keys ("scheme.tau_high") to
 * string values with typed accessors — the data half of the component
 * registry API. Sources, lowest to highest precedence in the tlpsim CLI:
 *
 *   1. built-in defaults (SystemConfig::cascadeLake),
 *   2. config files      (Config::parseFile, "key = value" lines),
 *   3. the TLPSIM_CONF environment variable ("key=value,key=value"),
 *   4. --set KEY=VALUE command-line flags,
 *
 * merged with Config::merge (later layers win per key). Typed getters
 * throw ConfigError with the offending key, value, and expectation, so
 * every failure names what to fix.
 */

#ifndef TLPSIM_COMMON_CONFIG_HH
#define TLPSIM_COMMON_CONFIG_HH

#include <cstdint>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace tlpsim
{

/** Any configuration failure: parse errors, bad values, unknown keys. */
class ConfigError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Comma-join for "valid names: ..." error messages and listings. */
std::string joinNames(const std::vector<std::string> &names);

/** Throw one ConfigError carrying every collected error, one per line
 *  (the "report all offenders at once" convention of grid validation).
 *  @p errors must be non-empty. */
[[noreturn]] void throwConfigErrors(const std::vector<std::string> &errors);

class Config
{
  public:
    // ----- building ------------------------------------------------------
    void set(const std::string &key, std::string value);
    void set(const std::string &key, const char *value);
    void set(const std::string &key, bool value);
    void set(const std::string &key, double value);
    /** List-valued key, rendered "a, b, c" (see getStringList). */
    void set(const std::string &key, const std::vector<std::string> &value);
    /** Any integral type. Unsigned types keep their full range — a
     *  stat counter above INT64_MAX must not round-trip as negative. */
    template <typename T,
              typename = std::enable_if_t<std::is_integral_v<T>>>
    void
    set(const std::string &key, T value)
    {
        if constexpr (std::is_unsigned_v<T>)
            setUnsignedInt(key, static_cast<std::uint64_t>(value));
        else
            setInt(key, static_cast<std::int64_t>(value));
    }

    /** Overlay @p other on top of this config (other wins per key). */
    void merge(const Config &other);

    /** Remove a key; returns true if it existed. */
    bool erase(const std::string &key);

    /** Remove every key under "prefix." — how the CLI consumes execution
     *  knob subtrees ("store.*") that configure the sweep machinery, not
     *  the simulated system, before SystemConfig::fromConfig would
     *  reject them as unknown. Returns the number of keys removed. */
    std::size_t eraseSub(const std::string &prefix);

    // ----- reading -------------------------------------------------------
    bool has(const std::string &key) const;
    bool empty() const { return values_.empty(); }

    /** All keys, sorted. */
    std::vector<std::string> keys() const;

    /**
     * Consumed-key tracking: every typed getter marks the key it read,
     * and sub() marks the keys it forwards, so after a consumer (e.g.
     * SystemConfig::fromConfig) has extracted everything it understands,
     * the keys still unconsumed are exactly the typos — present in the
     * config but feeding no field and no component subtree. has() does
     * not mark (probing is not consumption); set/merge/erase reset the
     * mark of the keys they touch.
     */
    std::vector<std::string> unconsumedKeys() const;

    /** Typed getters: return @p fallback when the key is absent; throw
     *  ConfigError when the key is present but malformed. */
    std::string getString(const std::string &key,
                          const std::string &fallback = "") const;
    std::int64_t getInt(const std::string &key, std::int64_t fallback) const;
    std::uint64_t getUnsigned(const std::string &key,
                              std::uint64_t fallback) const;
    /** 32-bit variants: additionally throw ConfigError when the value is
     *  well-formed but out of range (no silent truncation). */
    std::int32_t getInt32(const std::string &key,
                          std::int32_t fallback) const;
    std::uint32_t getUnsigned32(const std::string &key,
                                std::uint32_t fallback) const;
    double getDouble(const std::string &key, double fallback) const;
    bool getBool(const std::string &key, bool fallback) const;

    /**
     * List-valued key: the value split on ',', '+', or whitespace, empty
     * items dropped. ',' reads naturally in config files
     * ("workload.mix = bfs.kron, mcf_pchase"); '+' survives the
     * assignment syntax of TLPSIM_CONF / --set, where ',' already
     * separates assignments ("workload.mix=bfs.kron+mcf_pchase").
     * Returns @p fallback when the key is absent.
     */
    std::vector<std::string>
    getStringList(const std::string &key,
                  const std::vector<std::string> &fallback = {}) const;

    /** Sub-config of every key under "prefix." with the prefix stripped. */
    Config sub(const std::string &prefix) const;

    // ----- text format ---------------------------------------------------
    /**
     * Parse "key = value" lines. '#' starts a comment; blank lines are
     * skipped. @p origin names the source in error messages.
     */
    static Config parse(const std::string &text,
                        const std::string &origin = "<string>");

    static Config parseFile(const std::string &path);

    /** Parse "key=value,key=value" (',' or ';' separated) — the TLPSIM_CONF
     *  / --set flag syntax. */
    static Config parseAssignments(const std::string &text,
                                   const std::string &origin = "<args>");

    /** The TLPSIM_CONF environment overlay (empty if unset). */
    static Config fromEnv();

    /** Canonical "key = value" rendering, keys sorted; parse(serialize())
     *  reproduces the config exactly. */
    std::string serialize() const;

    /** Value equality; consumed-key marks do not participate. */
    bool operator==(const Config &other) const
    {
        return values_ == other.values_;
    }

  private:
    void setInt(const std::string &key, std::int64_t value);
    void setUnsignedInt(const std::string &key, std::uint64_t value);

    std::map<std::string, std::string> values_;
    /** Keys read by a typed getter or forwarded by sub(); mutable so a
     *  const consumer (fromConfig takes const Config &) can track. */
    mutable std::set<std::string> consumed_;
};

} // namespace tlpsim

#endif // TLPSIM_COMMON_CONFIG_HH
