/**
 * @file
 * Per-thread wall-clock watchdog for long-running design points.
 *
 * The Runner arms the watchdog on the thread about to execute a design
 * point; the Simulator's main loop polls it every 64 Ki cycles (one
 * predictable branch plus, when armed, one steady_clock read — far below
 * measurement noise). When the deadline passes, poll() throws
 * SimTimeoutError, unwinding the simulation cleanly: the Simulator and
 * every component it owns are destroyed, and the Runner turns the
 * exception into a structured failure row instead of letting one
 * pathological point wedge a million-point grid.
 *
 * State is thread_local, so concurrent sweep workers time out
 * independently and an unarmed thread (every bench, every test that
 * never opts in) pays only the `armed` check.
 */

#ifndef TLPSIM_COMMON_WATCHDOG_HH
#define TLPSIM_COMMON_WATCHDOG_HH

#include <stdexcept>

namespace tlpsim
{

/** A design point exceeded its configured wall-clock budget. */
class SimTimeoutError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

namespace watchdog
{

/** Arm the calling thread's watchdog: poll() throws SimTimeoutError once
 *  @p seconds of wall-clock time elapse. seconds <= 0 disarms. */
void arm(double seconds);

/** Disarm the calling thread's watchdog. */
void disarm();

/** Is the calling thread's watchdog armed? */
bool armed();

/** Wall-clock seconds since the calling thread's arm() (0 if unarmed). */
double elapsedSeconds();

/** Throw SimTimeoutError if the calling thread's deadline has passed;
 *  no-op when unarmed. */
void poll();

} // namespace watchdog

} // namespace tlpsim

#endif // TLPSIM_COMMON_WATCHDOG_HH
