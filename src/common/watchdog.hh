/**
 * @file
 * Per-thread wall-clock watchdog for long-running design points.
 *
 * The Runner arms the watchdog on the thread about to execute a design
 * point; the Simulator's main loop polls it every 64 Ki cycles (one
 * predictable branch plus, when armed, one steady_clock read — far below
 * measurement noise). When the deadline passes, poll() throws
 * SimTimeoutError, unwinding the simulation cleanly: the Simulator and
 * every component it owns are destroyed, and the Runner turns the
 * exception into a structured failure row instead of letting one
 * pathological point wedge a million-point grid.
 *
 * State is thread_local, so concurrent sweep workers time out
 * independently and an unarmed thread (every bench, every test that
 * never opts in) pays only the `armed` check.
 */

#ifndef TLPSIM_COMMON_WATCHDOG_HH
#define TLPSIM_COMMON_WATCHDOG_HH

#include <atomic>
#include <stdexcept>

namespace tlpsim
{

/** A design point exceeded its configured wall-clock budget. */
class SimTimeoutError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** A design point was cancelled from another thread via a CancelFlag.
 *  Deliberately NOT a SimTimeoutError: the Runner's retry loop treats
 *  timeouts as transient and re-runs the point, but a cancellation must
 *  unwind exactly once and propagate to the caller. */
class SimCancelledError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

namespace watchdog
{

/**
 * A one-shot cross-thread cancellation flag.
 *
 * This is an intended lock-free site: request() is called from a
 * controller thread while the simulation thread polls requested() every
 * 64 Ki cycles. The release store pairs with the acquire load so that
 * everything the controller wrote before request() (e.g. a reason
 * string, updated shared state) is visible to the simulation thread by
 * the time poll() observes the flag and unwinds. Relaxed would be
 * sufficient for the bool itself but would not order those side
 * effects; seq_cst would add nothing this pairing needs.
 */
class CancelFlag
{
  public:
    /** Request cancellation (idempotent, callable from any thread). */
    void request() { flag_.store(true, std::memory_order_release); }

    /** Has cancellation been requested? (callable from any thread) */
    bool requested() const { return flag_.load(std::memory_order_acquire); }

  private:
    std::atomic<bool> flag_{false};
};

/** Arm the calling thread's watchdog: poll() throws SimTimeoutError once
 *  @p seconds of wall-clock time elapse. seconds <= 0 disarms. */
void arm(double seconds);

/** Disarm the calling thread's watchdog. */
void disarm();

/** Is the calling thread's watchdog armed? */
bool armed();

/** Wall-clock seconds since the calling thread's arm() (0 if unarmed). */
double elapsedSeconds();

/** Bind a cancellation flag to the calling thread: poll() throws
 *  SimCancelledError once flag->requested() becomes true. nullptr
 *  unbinds. The flag must outlive the binding; the caller (the Runner)
 *  unbinds before the flag is destroyed. */
void bindCancel(const CancelFlag *flag);

/** Throw SimTimeoutError if the calling thread's deadline has passed,
 *  or SimCancelledError if a bound CancelFlag was requested; no-op when
 *  unarmed and unbound. */
void poll();

} // namespace watchdog

} // namespace tlpsim

#endif // TLPSIM_COMMON_WATCHDOG_HH
