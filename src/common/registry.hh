/**
 * @file
 * String-keyed component registry with declared knob schemas.
 *
 * Registry<T, Extra...> maps names to builder functions producing
 * unique_ptr<T> from a Config (plus any extra wiring arguments, e.g. the
 * StatGroup components register their counters in). Components register
 * themselves — adding a new prefetcher, filter, or off-chip predictor is
 * one Registry::add call in the component's own translation unit, not a
 * core-header edit — and configs select them by name.
 *
 * A registration carries a KnobSchema (common/knobs.hh) declaring every
 * tuning knob the builder consumes: build() validates its Config against
 * the schema, so a misspelled or wrongly-typed key in a forwarded
 * subtree (scheme.offchip.*, l1d.prefetcher.*, ...) throws a ConfigError
 * naming the key and the component's declared knobs instead of being
 * silently ignored. The schema is also the component's documentation —
 * `tlpsim --knobs` renders it — which makes the registry a
 * self-describing API: a new backend documents its knob set to join.
 * The schema-less add() overload survives for out-of-tree components
 * that have not declared knobs yet; their configs pass through
 * unvalidated and --knobs marks them as undeclared.
 *
 * Lookup failures throw ConfigError listing every registered name, so a
 * typo in a config file tells the user exactly what is available.
 *
 * tlpsim links as a static archive, where a TU whose only contents are
 * registration statics would be dropped by the linker. The built-in
 * components therefore expose plain registration functions that
 * prefetch/factory.cc calls once (see prefetcherRegistry() and friends);
 * out-of-tree components linked as objects can use Registrar statics.
 */

#ifndef TLPSIM_COMMON_REGISTRY_HH
#define TLPSIM_COMMON_REGISTRY_HH

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/knobs.hh"

namespace tlpsim
{

template <typename T, typename... Extra>
class Registry
{
  public:
    using Builder
        = std::function<std::unique_ptr<T>(const Config &, Extra...)>;

    /** Process-wide instance for this component type. */
    static Registry &
    instance()
    {
        static Registry r;
        return r;
    }

    /** Human-readable component-kind label used in error messages. */
    void setKind(std::string kind) { kind_ = std::move(kind); }
    const std::string &kind() const { return kind_; }

    /** Register @p builder under @p name with its declared knob schema;
     *  build() validates configs against it. Re-registering the same
     *  name is an error (catches copy-paste slips at startup). */
    void
    add(const std::string &name, KnobSchema schema, Builder builder)
    {
        addEntry(name, Entry{std::move(builder), std::move(schema)});
    }

    /** Register @p builder without a schema (out-of-tree components that
     *  have not declared knobs): configs pass through unvalidated. */
    void
    add(const std::string &name, Builder builder)
    {
        addEntry(name, Entry{std::move(builder), std::nullopt});
    }

    bool contains(const std::string &name) const
    {
        return builders_.count(name) > 0;
    }

    /** Declared knob schema of @p name, or nullptr when the component
     *  registered without one. Throws ConfigError on unknown names. */
    const KnobSchema *
    knobs(const std::string &name) const
    {
        const Entry &e = entry(name);
        return e.schema ? &*e.schema : nullptr;
    }

    /** Sorted names of every registered builder. */
    std::vector<std::string>
    names() const
    {
        std::vector<std::string> out;
        out.reserve(builders_.size());
        for (const auto &[name, e] : builders_)
            out.push_back(name);
        return out;
    }

    /** One comma-separated line of names() (for error messages / --list). */
    std::string namesLine() const { return joinNames(names()); }

    /** Build the component registered as @p name. Throws ConfigError
     *  naming every valid choice if @p name is unknown, and — when the
     *  component declared a schema — naming the declared knobs if @p cfg
     *  holds a key no schema entry consumes or a wrongly-typed value. */
    std::unique_ptr<T>
    build(const std::string &name, const Config &cfg, Extra... extra) const
    {
        const Entry &e = entry(name);
        if (e.schema)
            e.schema->validate(cfg, kind_ + " '" + name + "'");
        return e.builder(cfg, extra...);
    }

  private:
    struct Entry
    {
        Builder builder;
        std::optional<KnobSchema> schema;
    };

    Registry() = default;

    void
    addEntry(const std::string &name, Entry e)
    {
        auto [it, inserted] = builders_.emplace(name, std::move(e));
        if (!inserted) {
            throw ConfigError(kind_ + " '" + name
                              + "' is already registered");
        }
    }

    const Entry &
    entry(const std::string &name) const
    {
        auto it = builders_.find(name);
        if (it == builders_.end()) {
            throw ConfigError("unknown " + kind_ + " '" + name
                              + "'; valid names: " + namesLine());
        }
        return it->second;
    }

    std::string kind_ = "component";
    std::map<std::string, Entry> builders_;
};

/** Static-initialization helper for out-of-tree components:
 *  `static Registrar<Prefetcher> reg("mine", {...knobs...},
 *   [](const Config &c) {...});` */
template <typename T, typename... Extra>
struct Registrar
{
    Registrar(const std::string &name,
              typename Registry<T, Extra...>::Builder builder)
    {
        Registry<T, Extra...>::instance().add(name, std::move(builder));
    }

    Registrar(const std::string &name, KnobSchema schema,
              typename Registry<T, Extra...>::Builder builder)
    {
        Registry<T, Extra...>::instance().add(name, std::move(schema),
                                              std::move(builder));
    }
};

} // namespace tlpsim

#endif // TLPSIM_COMMON_REGISTRY_HH
