/**
 * @file
 * String-keyed component registry.
 *
 * Registry<T, Extra...> maps names to builder functions producing
 * unique_ptr<T> from a Config (plus any extra wiring arguments, e.g. the
 * StatGroup components register their counters in). Components register
 * themselves — adding a new prefetcher, filter, or off-chip predictor is
 * one Registry::add call in the component's own translation unit, not a
 * core-header edit — and configs select them by name.
 *
 * Lookup failures throw ConfigError listing every registered name, so a
 * typo in a config file tells the user exactly what is available.
 *
 * tlpsim links as a static archive, where a TU whose only contents are
 * registration statics would be dropped by the linker. The built-in
 * components therefore expose plain registration functions that
 * prefetch/factory.cc calls once (see prefetcherRegistry() and friends);
 * out-of-tree components linked as objects can use Registrar statics.
 */

#ifndef TLPSIM_COMMON_REGISTRY_HH
#define TLPSIM_COMMON_REGISTRY_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hh"

namespace tlpsim
{

template <typename T, typename... Extra>
class Registry
{
  public:
    using Builder
        = std::function<std::unique_ptr<T>(const Config &, Extra...)>;

    /** Process-wide instance for this component type. */
    static Registry &
    instance()
    {
        static Registry r;
        return r;
    }

    /** Human-readable component-kind label used in error messages. */
    void setKind(std::string kind) { kind_ = std::move(kind); }
    const std::string &kind() const { return kind_; }

    /** Register @p builder under @p name. Re-registering the same name is
     *  an error (catches copy-paste slips at startup). */
    void
    add(const std::string &name, Builder builder)
    {
        auto [it, inserted] = builders_.emplace(name, std::move(builder));
        if (!inserted) {
            throw ConfigError(kind_ + " '" + name
                              + "' is already registered");
        }
    }

    bool contains(const std::string &name) const
    {
        return builders_.count(name) > 0;
    }

    /** Sorted names of every registered builder. */
    std::vector<std::string>
    names() const
    {
        std::vector<std::string> out;
        out.reserve(builders_.size());
        for (const auto &[name, b] : builders_)
            out.push_back(name);
        return out;
    }

    /** One comma-separated line of names() (for error messages / --list). */
    std::string namesLine() const { return joinNames(names()); }

    /** Build the component registered as @p name. Throws ConfigError
     *  naming every valid choice if @p name is unknown. */
    std::unique_ptr<T>
    build(const std::string &name, const Config &cfg, Extra... extra) const
    {
        auto it = builders_.find(name);
        if (it == builders_.end()) {
            throw ConfigError("unknown " + kind_ + " '" + name
                              + "'; valid names: " + namesLine());
        }
        return it->second(cfg, extra...);
    }

  private:
    Registry() = default;

    std::string kind_ = "component";
    std::map<std::string, Builder> builders_;
};

/** Static-initialization helper for out-of-tree components:
 *  `static Registrar<Prefetcher> reg("mine", [](const Config &c) {...});` */
template <typename T, typename... Extra>
struct Registrar
{
    Registrar(const std::string &name,
              typename Registry<T, Extra...>::Builder builder)
    {
        Registry<T, Extra...>::instance().add(name, std::move(builder));
    }
};

} // namespace tlpsim

#endif // TLPSIM_COMMON_REGISTRY_HH
