/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * Every source of randomness in tlpsim (graph generation, synthetic kernels,
 * workload mixing, page-frame shuffling) draws from a seeded Xoshiro256**
 * instance so that all experiments are exactly reproducible.
 */

#ifndef TLPSIM_COMMON_RNG_HH
#define TLPSIM_COMMON_RNG_HH

#include <cstdint>

#include "common/bitops.hh"

namespace tlpsim
{

/** Xoshiro256** PRNG; fast, high-quality, deterministic across platforms. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 1)
    {
        // SplitMix64 seeding, as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : s) {
            x += 0x9e3779b97f4a7c15ULL;
            word = mix64(x);
        }
    }

    /** Uniform 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
        const std::uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** Uniform value in [0, bound). bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Multiply-shift rejection-free bound (Lemire); bias is negligible
        // for simulation purposes and determinism is what matters here.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s[4];
};

} // namespace tlpsim

#endif // TLPSIM_COMMON_RNG_HH
