/**
 * @file
 * Fundamental scalar types and address-geometry constants shared by every
 * tlpsim module.
 */

#ifndef TLPSIM_COMMON_TYPES_HH
#define TLPSIM_COMMON_TYPES_HH

#include <cstdint>
#include <string>

namespace tlpsim
{

/** Byte address (virtual or physical, context dependent). */
using Addr = std::uint64_t;

/** Core clock cycle count. */
using Cycle = std::uint64_t;

/** Retired-instruction count. */
using InstrCount = std::uint64_t;

/** Sentinel for "no cycle scheduled yet / never". */
constexpr Cycle kCycleNever = ~Cycle{0};

/** Cache block geometry: 64-byte lines. */
constexpr unsigned kBlockBits = 6;
constexpr Addr kBlockSize = Addr{1} << kBlockBits;
constexpr Addr kBlockMask = kBlockSize - 1;

/** Page geometry: 4 KiB pages, 64 lines per page. */
constexpr unsigned kPageBits = 12;
constexpr Addr kPageSize = Addr{1} << kPageBits;
constexpr Addr kPageMask = kPageSize - 1;
constexpr unsigned kLinesPerPage = 1u << (kPageBits - kBlockBits);

/** Extract the cache-block-aligned address. */
constexpr Addr
blockAlign(Addr a)
{
    return a & ~kBlockMask;
}

/** Extract the block number (address >> 6). */
constexpr Addr
blockNumber(Addr a)
{
    return a >> kBlockBits;
}

/** Extract the page number (address >> 12). */
constexpr Addr
pageNumber(Addr a)
{
    return a >> kPageBits;
}

/** Offset of the block within its page, in [0, 64). */
constexpr unsigned
lineOffsetInPage(Addr a)
{
    return static_cast<unsigned>((a >> kBlockBits) & (kLinesPerPage - 1));
}

/** Byte offset within the cache block, in [0, 64). */
constexpr unsigned
byteOffsetInBlock(Addr a)
{
    return static_cast<unsigned>(a & kBlockMask);
}

/**
 * Classification of memory requests as they move through the hierarchy.
 * Mirrors ChampSim's access types.
 */
enum class AccessType : std::uint8_t
{
    Load,          ///< demand data load
    Rfo,           ///< store miss fetch (read-for-ownership)
    Prefetch,      ///< hardware prefetch
    Writeback,     ///< dirty eviction
    Translation,   ///< page-table walk access
};

/** Where in the hierarchy a request was ultimately served. */
enum class MemLevel : std::uint8_t
{
    L1D,
    L2C,
    LLC,
    Dram,
    None,   ///< not (yet) served
};

/** Printable name for an AccessType. */
const char *toString(AccessType t);

/** Printable name for a MemLevel. */
const char *toString(MemLevel l);

} // namespace tlpsim

#endif // TLPSIM_COMMON_TYPES_HH
