#include "common/knobs.hh"

#include <algorithm>
#include <charconv>
#include <cstdio>

namespace tlpsim
{

const char *
toString(KnobType t)
{
    switch (t) {
      case KnobType::String: return "string";
      case KnobType::Int: return "int";
      case KnobType::Unsigned: return "unsigned";
      case KnobType::Double: return "double";
      case KnobType::Bool: return "bool";
    }
    return "?";
}

KnobSpec::KnobSpec(std::string n, const char *def, std::string desc,
                   std::vector<std::string> choice_list)
    : name(std::move(n)), type(KnobType::String), default_value(def),
      description(std::move(desc)), choices(std::move(choice_list))
{
}

KnobSpec::KnobSpec(std::string n, std::string def, std::string desc,
                   std::vector<std::string> choice_list)
    : name(std::move(n)), type(KnobType::String),
      default_value(std::move(def)), description(std::move(desc)),
      choices(std::move(choice_list))
{
}

KnobSpec::KnobSpec(std::string n, bool def, std::string desc)
    : name(std::move(n)), type(KnobType::Bool),
      default_value(def ? "true" : "false"), description(std::move(desc))
{
}

KnobSpec::KnobSpec(std::string n, double def, std::string desc)
    : name(std::move(n)), type(KnobType::Double),
      description(std::move(desc))
{
    // Same shortest-round-trip rendering as Config::set(double), so the
    // schema default and a toConfig dump of it are byte-identical.
    char buf[64];
    auto res = std::to_chars(buf, buf + sizeof(buf), def);
    default_value.assign(buf, res.ptr);
}

KnobSchema::KnobSchema(std::initializer_list<KnobSpec> specs)
    : specs_(specs)
{
    for (const KnobSpec &s : specs_) {
        if (find(s.name) != &s) {
            throw ConfigError("knob '" + s.name
                              + "' is declared twice in one schema");
        }
    }
}

bool
KnobSchema::contains(const std::string &name) const
{
    return find(name) != nullptr;
}

const KnobSpec *
KnobSchema::find(const std::string &name) const
{
    for (const KnobSpec &s : specs_) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

std::vector<std::string>
KnobSchema::names() const
{
    std::vector<std::string> out;
    out.reserve(specs_.size());
    for (const KnobSpec &s : specs_)
        out.push_back(s.name);
    std::sort(out.begin(), out.end());
    return out;
}

std::string
KnobSchema::namesLine() const
{
    return joinNames(names());
}

Config
KnobSchema::defaults() const
{
    Config c;
    for (const KnobSpec &s : specs_)
        c.set(s.name, s.default_value);
    return c;
}

namespace
{

/** Does @p value parse (and fit) as @p spec declares? Reuses the Config
 *  getters at the declared width, so the accepted grammar and range are
 *  exactly what the builder's extraction will accept. */
bool
valueParses(const std::string &value, const KnobSpec &spec)
{
    Config probe;
    probe.set("v", value);
    try {
        switch (spec.type) {
          case KnobType::String:
            return spec.choices.empty()
                || std::find(spec.choices.begin(), spec.choices.end(),
                             value)
                       != spec.choices.end();
          case KnobType::Int:
            if (spec.bits <= 32)
                probe.getInt32("v", 0);
            else
                probe.getInt("v", 0);
            break;
          case KnobType::Unsigned:
            if (spec.bits <= 32)
                probe.getUnsigned32("v", 0);
            else
                probe.getUnsigned("v", 0);
            break;
          case KnobType::Double: probe.getDouble("v", 0.0); break;
          case KnobType::Bool: probe.getBool("v", false); break;
        }
    } catch (const ConfigError &) {
        return false;
    }
    return true;
}

/** "expected ..." wording for a wrongly-typed value. */
std::string
expectedText(const KnobSpec &spec)
{
    switch (spec.type) {
      case KnobType::String:
        return spec.choices.empty()
            ? std::string{"string"}
            : "one of " + joinNames(spec.choices);
      case KnobType::Int:
        return spec.bits <= 32 ? "a 32-bit int" : "an int";
      case KnobType::Unsigned:
        return spec.bits <= 32 ? "a 32-bit unsigned" : "an unsigned";
      case KnobType::Double: return "a number";
      case KnobType::Bool: return "a boolean";
    }
    return "?";
}

} // namespace

std::vector<std::string>
KnobSchema::check(const Config &cfg, const std::string &component,
                  const std::string &prefix) const
{
    std::vector<std::string> errors;
    for (const std::string &key : cfg.keys()) {
        const KnobSpec *spec = find(key);
        if (spec == nullptr) {
            errors.push_back(prefix + key + ": unknown " + component
                             + " knob; declared knobs: " + namesLine());
        } else if (!valueParses(cfg.getString(key), *spec)) {
            errors.push_back(prefix + key + " = '" + cfg.getString(key)
                             + "': expected " + expectedText(*spec)
                             + " for " + component + " knob '" + key
                             + "'; declared knobs: " + namesLine());
        }
    }
    return errors;
}

void
KnobSchema::validate(const Config &cfg, const std::string &component,
                     const std::string &prefix) const
{
    std::vector<std::string> errors = check(cfg, component, prefix);
    if (!errors.empty())
        throwConfigErrors(errors);
}

std::string
KnobSchema::reference(const std::string &indent) const
{
    std::string out;
    char buf[512];
    for (const KnobSpec &s : specs_) {
        std::snprintf(buf, sizeof(buf), "%s%-24s %-9s %-10s %s\n",
                      indent.c_str(), s.name.c_str(), toString(s.type),
                      s.default_value.c_str(), s.description.c_str());
        out += buf;
    }
    return out;
}

// ------------------------------------------------------------------ Knobs

Knobs::Knobs(const Config &cfg, const KnobSchema &schema,
             std::string component)
    : cfg_(cfg), schema_(schema), component_(std::move(component))
{
}

const KnobSpec &
Knobs::expect(const std::string &key, KnobType t, unsigned bits) const
{
    const KnobSpec *spec = schema_.find(key);
    if (spec == nullptr) {
        throw ConfigError(component_ + " builder reads knob '" + key
                          + "' its schema never declared; declared knobs: "
                          + schema_.namesLine());
    }
    // Unsigned extraction of an Int knob (or a 32-bit read of a 64-bit
    // declaration) would let the declared range disagree with the
    // accepted range — the up-front check would pass values that later
    // fail extraction.
    if (spec->type != t || (bits != 0 && spec->bits != bits)) {
        auto describe = [](KnobType type, unsigned width) {
            std::string out = toString(type);
            if (width != 0
                && (type == KnobType::Int || type == KnobType::Unsigned)) {
                // Appended piecewise: `"(" + std::to_string(w) + ")"`
                // trips GCC 12's -Wrestrict false positive (PR 105329)
                // under -O2.
                out += '(';
                out += std::to_string(width);
                out += ')';
            }
            return out;
        };
        throw ConfigError(component_ + " builder reads knob '" + key
                          + "' as " + describe(t, bits)
                          + " but it is declared "
                          + describe(spec->type, spec->bits));
    }
    return *spec;
}

std::string
Knobs::str(const std::string &key) const
{
    const KnobSpec &spec = expect(key, KnobType::String);
    return cfg_.getString(key, spec.default_value);
}

std::int32_t
Knobs::i32(const std::string &key) const
{
    const KnobSpec &spec = expect(key, KnobType::Int, 32);
    if (cfg_.has(key))
        return cfg_.getInt32(key, 0);
    Config def;
    def.set(key, spec.default_value);
    return def.getInt32(key, 0);
}

std::uint32_t
Knobs::u32(const std::string &key) const
{
    const KnobSpec &spec = expect(key, KnobType::Unsigned, 32);
    if (cfg_.has(key))
        return cfg_.getUnsigned32(key, 0);
    Config def;
    def.set(key, spec.default_value);
    return def.getUnsigned32(key, 0);
}

std::uint64_t
Knobs::u64(const std::string &key) const
{
    const KnobSpec &spec = expect(key, KnobType::Unsigned, 64);
    if (cfg_.has(key))
        return cfg_.getUnsigned(key, 0);
    Config def;
    def.set(key, spec.default_value);
    return def.getUnsigned(key, 0);
}

double
Knobs::num(const std::string &key) const
{
    const KnobSpec &spec = expect(key, KnobType::Double);
    if (cfg_.has(key))
        return cfg_.getDouble(key, 0.0);
    Config def;
    def.set(key, spec.default_value);
    return def.getDouble(key, 0.0);
}

bool
Knobs::flag(const std::string &key) const
{
    const KnobSpec &spec = expect(key, KnobType::Bool);
    if (cfg_.has(key))
        return cfg_.getBool(key, false);
    Config def;
    def.set(key, spec.default_value);
    return def.getBool(key, false);
}

} // namespace tlpsim
