#include "common/config.hh"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

namespace tlpsim
{

namespace
{

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

[[noreturn]] void
badValue(const std::string &key, const std::string &value,
         const char *expected)
{
    throw ConfigError("config key '" + key + "': expected " + expected
                      + ", got '" + value + "'");
}

} // namespace

std::string
joinNames(const std::vector<std::string> &names)
{
    std::string out;
    for (const std::string &n : names)
        out += out.empty() ? n : ", " + n;
    return out;
}

void
throwConfigErrors(const std::vector<std::string> &errors)
{
    std::string msg;
    for (const std::string &e : errors)
        msg += msg.empty() ? e : "\n" + e;
    throw ConfigError(msg);
}

void
Config::set(const std::string &key, std::string value)
{
    values_[key] = std::move(value);
    consumed_.erase(key);
}

void
Config::set(const std::string &key, const char *value)
{
    values_[key] = value;
    consumed_.erase(key);
}

void
Config::set(const std::string &key, bool value)
{
    values_[key] = value ? "true" : "false";
    consumed_.erase(key);
}

void
Config::set(const std::string &key, double value)
{
    // Shortest round-trippable rendering: parse(serialize()) must
    // reproduce the exact double (configKey relies on it).
    char buf[64];
    auto res = std::to_chars(buf, buf + sizeof(buf), value);
    values_[key] = std::string(buf, res.ptr);
    consumed_.erase(key);
}

void
Config::set(const std::string &key, const std::vector<std::string> &value)
{
    values_[key] = joinNames(value);
    consumed_.erase(key);
}

void
Config::setInt(const std::string &key, std::int64_t value)
{
    values_[key] = std::to_string(value);
    consumed_.erase(key);
}

void
Config::setUnsignedInt(const std::string &key, std::uint64_t value)
{
    values_[key] = std::to_string(value);
    consumed_.erase(key);
}

void
Config::merge(const Config &other)
{
    for (const auto &[k, v] : other.values_) {
        values_[k] = v;
        consumed_.erase(k);
    }
}

bool
Config::erase(const std::string &key)
{
    consumed_.erase(key);
    return values_.erase(key) > 0;
}

std::size_t
Config::eraseSub(const std::string &prefix)
{
    const std::string p = prefix + ".";
    std::size_t removed = 0;
    for (auto it = values_.lower_bound(p);
         it != values_.end() && it->first.compare(0, p.size(), p) == 0;) {
        consumed_.erase(it->first);
        it = values_.erase(it);
        ++removed;
    }
    return removed;
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) > 0;
}

std::vector<std::string>
Config::keys() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto &[k, v] : values_)
        out.push_back(k);
    return out;
}

std::vector<std::string>
Config::unconsumedKeys() const
{
    std::vector<std::string> out;
    for (const auto &[k, v] : values_) {
        if (consumed_.count(k) == 0)
            out.push_back(k);
    }
    return out;
}

std::string
Config::getString(const std::string &key, const std::string &fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    consumed_.insert(key);
    return it->second;
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    consumed_.insert(key);
    const char *s = it->second.c_str();
    char *end = nullptr;
    errno = 0;
    long long v = std::strtoll(s, &end, 0);
    if (end == s || *end != '\0' || errno == ERANGE)
        badValue(key, it->second, "a 64-bit integer");
    return v;
}

std::uint64_t
Config::getUnsigned(const std::string &key, std::uint64_t fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    consumed_.insert(key);
    const char *s = it->second.c_str();
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(s, &end, 0);
    if (end == s || *end != '\0' || errno == ERANGE
        || it->second.front() == '-') {
        badValue(key, it->second, "a 64-bit non-negative integer");
    }
    return v;
}

std::int32_t
Config::getInt32(const std::string &key, std::int32_t fallback) const
{
    std::int64_t v = getInt(key, fallback);
    if (v < std::numeric_limits<std::int32_t>::min()
        || v > std::numeric_limits<std::int32_t>::max()) {
        badValue(key, getString(key), "a 32-bit integer");
    }
    return static_cast<std::int32_t>(v);
}

std::uint32_t
Config::getUnsigned32(const std::string &key, std::uint32_t fallback) const
{
    std::uint64_t v = getUnsigned(key, fallback);
    if (v > std::numeric_limits<std::uint32_t>::max())
        badValue(key, getString(key), "a 32-bit non-negative integer");
    return static_cast<std::uint32_t>(v);
}

double
Config::getDouble(const std::string &key, double fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    consumed_.insert(key);
    const char *s = it->second.c_str();
    char *end = nullptr;
    errno = 0;
    double v = std::strtod(s, &end);
    if (end == s || *end != '\0' || errno == ERANGE)
        badValue(key, it->second, "a number");
    return v;
}

bool
Config::getBool(const std::string &key, bool fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    consumed_.insert(key);
    const std::string &v = it->second;
    if (v == "true" || v == "1" || v == "yes" || v == "on")
        return true;
    if (v == "false" || v == "0" || v == "no" || v == "off")
        return false;
    badValue(key, v, "a boolean (true/false/1/0/yes/no/on/off)");
}

std::vector<std::string>
Config::getStringList(const std::string &key,
                      const std::vector<std::string> &fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    consumed_.insert(key);
    std::vector<std::string> out;
    std::string item;
    auto flush = [&] {
        if (!item.empty()) {
            out.push_back(std::move(item));
            item.clear();
        }
    };
    for (char ch : it->second) {
        if (ch == ',' || ch == '+'
            || std::isspace(static_cast<unsigned char>(ch))) {
            flush();
        } else {
            item += ch;
        }
    }
    flush();
    return out;
}

Config
Config::sub(const std::string &prefix) const
{
    Config out;
    const std::string p = prefix + ".";
    for (const auto &[k, v] : values_) {
        if (k.size() > p.size() && k.compare(0, p.size(), p) == 0) {
            out.values_[k.substr(p.size())] = v;
            // Forwarded to the subtree's consumer — the parent-level
            // typo net must not also flag these keys.
            consumed_.insert(k);
        }
    }
    return out;
}

Config
Config::parse(const std::string &text, const std::string &origin)
{
    Config out;
    std::istringstream in(text);
    std::string line;
    unsigned lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (std::size_t hash = line.find('#'); hash != std::string::npos)
            line.erase(hash);
        line = trim(line);
        if (line.empty())
            continue;
        std::size_t eq = line.find('=');
        if (eq == std::string::npos) {
            throw ConfigError(origin + ":" + std::to_string(lineno)
                              + ": expected 'key = value', got '" + line
                              + "'");
        }
        std::string key = trim(line.substr(0, eq));
        std::string value = trim(line.substr(eq + 1));
        if (key.empty()) {
            throw ConfigError(origin + ":" + std::to_string(lineno)
                              + ": empty key in '" + line + "'");
        }
        out.values_[key] = value;
    }
    return out;
}

Config
Config::parseFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw ConfigError("cannot open config file '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();
    return parse(text.str(), path);
}

Config
Config::parseAssignments(const std::string &text, const std::string &origin)
{
    Config out;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t end = text.find_first_of(",;", pos);
        if (end == std::string::npos)
            end = text.size();
        std::string item = trim(text.substr(pos, end - pos));
        pos = end + 1;
        if (item.empty())
            continue;
        std::size_t eq = item.find('=');
        if (eq == std::string::npos) {
            throw ConfigError(origin + ": expected KEY=VALUE, got '" + item
                              + "'");
        }
        std::string key = trim(item.substr(0, eq));
        if (key.empty())
            throw ConfigError(origin + ": empty key in '" + item + "'");
        out.values_[key] = trim(item.substr(eq + 1));
    }
    return out;
}

Config
Config::fromEnv()
{
    const char *v = std::getenv("TLPSIM_CONF");
    return v == nullptr ? Config{}
                        : parseAssignments(v, "TLPSIM_CONF");
}

std::string
Config::serialize() const
{
    std::string out;
    for (const auto &[k, v] : values_) {
        out += k;
        out += " = ";
        out += v;
        out += "\n";
    }
    return out;
}

} // namespace tlpsim
