/**
 * @file
 * Fixed-capacity-friendly FIFO ring buffer.
 *
 * The per-cycle queues (cache RQ/WQ/PQ/fill queues, the cores'
 * speculative-issue delay lines) used to be std::deques; libstdc++'s
 * deque allocates and frees a node roughly every 512 bytes of traffic,
 * which put one malloc/free pair on the per-cycle hot path for every few
 * queue entries that cycled through. A Ring stores its elements in one
 * contiguous power-of-two block and reuses it forever: after the queue
 * has once reached its high-water mark, push/pop never touch the
 * allocator again — which is what the Debug-build allocation-counter
 * test (tests/test_hotpath_alloc.cpp) enforces for the measurement
 * window.
 *
 * Growth doubles the block and linearizes the contents; callers that
 * know their bound (every cache queue is capped by its Params size)
 * can reserve() it up front so not even the first pushes allocate.
 */

#ifndef TLPSIM_COMMON_RING_HH
#define TLPSIM_COMMON_RING_HH

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace tlpsim
{

template <typename T>
class Ring
{
  public:
    Ring() = default;

    /** Ensure capacity for @p n elements without further allocation. */
    void
    reserve(std::size_t n)
    {
        if (n > buf_.size())
            grow(ceilPow2(n));
    }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    T &front() { return buf_[head_]; }
    const T &front() const { return buf_[head_]; }

    T &back() { return buf_[wrap(head_ + size_ - 1)]; }
    const T &back() const { return buf_[wrap(head_ + size_ - 1)]; }

    /** i-th element from the front (0 = front()). */
    T &operator[](std::size_t i) { return buf_[wrap(head_ + i)]; }
    const T &operator[](std::size_t i) const
    {
        return buf_[wrap(head_ + i)];
    }

    void
    push_back(T value)
    {
        if (size_ == buf_.size())
            grow(buf_.empty() ? kMinCapacity : buf_.size() * 2);
        buf_[wrap(head_ + size_)] = std::move(value);
        ++size_;
    }

    void
    pop_front()
    {
        assert(size_ > 0);
        // Leave the slot's object in place (moved-from or stale): slots
        // are overwritten on reuse, and not destroying here is what lets
        // element types with capacity (e.g. Packet vectors) recycle it.
        head_ = wrap(head_ + 1);
        --size_;
    }

    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

  private:
    static constexpr std::size_t kMinCapacity = 8;

    static std::size_t
    ceilPow2(std::size_t n)
    {
        std::size_t c = kMinCapacity;
        while (c < n)
            c *= 2;
        return c;
    }

    std::size_t wrap(std::size_t i) const { return i & (buf_.size() - 1); }

    void
    grow(std::size_t new_cap)
    {
        std::vector<T> fresh(new_cap);
        for (std::size_t i = 0; i < size_; ++i)
            fresh[i] = std::move(buf_[wrap(head_ + i)]);
        buf_.swap(fresh);
        head_ = 0;
    }

    std::vector<T> buf_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace tlpsim

#endif // TLPSIM_COMMON_RING_HH
