#include "tracefile/champsim.hh"

#include <sys/wait.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/config.hh"
#include "tracefile/format.hh"

namespace tlpsim::tracefile
{

namespace
{

std::uint64_t
getU64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size()
        && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/** POSIX-shell single-quote: safe for any byte but NUL. */
std::string
shellQuote(const std::string &s)
{
    std::string out = "'";
    for (char c : s) {
        if (c == '\'')
            out += "'\\''";
        else
            out += c;
    }
    out += "'";
    return out;
}

/** Map a ChampSim register id into tlpsim's 1..63 space, 0 staying the
 *  "none" sentinel. */
RegId
mapReg(std::uint8_t r)
{
    if (r == 0)
        return kNoReg;
    return static_cast<RegId>((r - 1) % (kNumRegs - 1) + 1);
}

/** Input stream that is either a plain file or a decompressor pipe. */
class InputStream
{
  public:
    InputStream(const std::string &path, const std::string &decompress_cmd)
        : path_(path)
    {
        if (!decompress_cmd.empty())
            openPipe(decompress_cmd + " " + shellQuote(path));
        else if (endsWith(path, ".xz"))
            openPipe("xz -dc -- " + shellQuote(path));
        else if (endsWith(path, ".gz"))
            openPipe("gzip -dc -- " + shellQuote(path));
        else {
            f_ = std::fopen(path.c_str(), "rb");
            if (f_ == nullptr) {
                throw ConfigError("champsim trace '" + path
                                  + "': cannot open for reading");
            }
        }
    }

    ~InputStream()
    {
        if (f_ == nullptr)
            return;
        if (piped_) {
            // Status deliberately discarded: the destructor only runs
            // with the stream still open when an exception is already in
            // flight or a record limit cut the read short — in both cases
            // the child is being abandoned mid-stream (it will typically
            // die of SIGPIPE), so its exit status carries no signal about
            // the input's integrity. The clean-EOF path goes through
            // finish(), which does check.
            pclose(f_);
        } else {
            std::fclose(f_);
        }
    }

    InputStream(const InputStream &) = delete;
    InputStream &operator=(const InputStream &) = delete;

    std::size_t readBytes(unsigned char *out, std::size_t n)
    {
        return std::fread(out, 1, n, f_);
    }

    /** Close and verify the producer exited cleanly; call after EOF.
     *  A silently dead decompressor truncates the stream at a record
     *  boundary, which is indistinguishable from a short-but-valid
     *  trace — so the child's wait status is the only truncation signal
     *  and must not be discarded. */
    void finish()
    {
        if (!piped_) {
            std::fclose(f_);
            f_ = nullptr;
            return;
        }
        const int status = pclose(f_);
        f_ = nullptr;
        if (status == -1) {
            throw ConfigError("champsim trace '" + path_
                              + "': decompressor `" + cmd_
                              + "`: wait failed — child status lost");
        }
        if (WIFSIGNALED(status)) {
            throw ConfigError("champsim trace '" + path_
                              + "': decompressor `" + cmd_
                              + "` killed by signal "
                              + std::to_string(WTERMSIG(status))
                              + " — output may stop at any record "
                                "boundary");
        }
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
            const int code = WIFEXITED(status) ? WEXITSTATUS(status)
                                               : status;
            throw ConfigError("champsim trace '" + path_
                              + "': decompressor `" + cmd_
                              + "` exited with status "
                              + std::to_string(code)
                              + " — corrupt archive or missing "
                                "decompressor");
        }
    }

  private:
    void openPipe(const std::string &cmd)
    {
        cmd_ = cmd;
        piped_ = true;
        f_ = popen(cmd.c_str(), "r");
        if (f_ == nullptr) {
            throw ConfigError("champsim trace '" + path_
                              + "': cannot start decompressor `" + cmd_
                              + "`");
        }
    }

    std::string path_;
    std::string cmd_;   ///< full pipe command, named in errors
    std::FILE *f_ = nullptr;
    bool piped_ = false;
};

/** Basename with compression and trace suffixes stripped. */
std::string
deriveName(const std::string &path)
{
    std::string s = path;
    const std::size_t slash = s.find_last_of('/');
    if (slash != std::string::npos)
        s = s.substr(slash + 1);
    for (const char *suffix : {".xz", ".gz", ".champsimtrace", ".trace"}) {
        if (endsWith(s, suffix))
            s = s.substr(0, s.size() - std::strlen(suffix));
    }
    if (s.empty())
        s = "champsim";
    return s;
}

} // namespace

TraceInstr
decodeChampSimRecord(const unsigned char in[kChampSimRecordSize])
{
    TraceInstr i;
    i.ip = getU64(in);
    const bool is_branch = in[8] != 0;
    const bool taken = in[9] != 0;
    const unsigned char *dest_regs = in + 10;
    const unsigned char *src_regs = in + 12;

    for (int m = 0; m < 2; ++m) {
        const std::uint64_t a = getU64(in + 16 + 8 * m);
        if (a != 0) {
            i.st_vaddr = a;
            break;
        }
    }
    for (int m = 0; m < 4; ++m) {
        const std::uint64_t a = getU64(in + 32 + 8 * m);
        if (a != 0) {
            i.ld_vaddr = a;
            break;
        }
    }

    RegId srcs[2] = {kNoReg, kNoReg};
    int nsrc = 0;
    bool reads_flags = false;
    bool reads_other = false;
    for (int r = 0; r < 4; ++r) {
        const std::uint8_t reg = src_regs[r];
        if (reg == 0)
            continue;
        if (reg == kChampSimRegFlags)
            reads_flags = true;
        else if (reg != kChampSimRegIP && reg != kChampSimRegSP)
            reads_other = true;
        if (nsrc < 2)
            srcs[nsrc++] = mapReg(reg);
    }
    i.src0 = srcs[0];
    i.src1 = srcs[1];
    for (int r = 0; r < 2; ++r) {
        if (dest_regs[r] != 0) {
            i.dst = mapReg(dest_regs[r]);
            break;
        }
    }

    if (is_branch) {
        if (reads_flags)
            i.branch = BranchKind::Conditional;
        else if (reads_other)
            i.branch = BranchKind::Indirect;
        else
            i.branch = BranchKind::Direct;
        i.taken = taken;
    }
    return i;
}

ChampSimConvertStats
convertChampSim(const std::string &in_path, const std::string &out_path,
                const ChampSimConvertOptions &opt)
{
    InputStream in(in_path, opt.decompress_cmd);

    ChampSimConvertStats stats;
    stats.name = opt.name.empty() ? deriveName(in_path) : opt.name;

    TraceFileWriter::Options wopt;
    wopt.name = stats.name;
    wopt.suite = opt.suite;
    TraceFileWriter writer(out_path, wopt);

    // Read whole ChampSim records in bulk; a trailing partial record
    // means the input was cut and must not silently become a trace.
    constexpr std::size_t kBatch = 1024;
    std::vector<unsigned char> raw(kBatch * kChampSimRecordSize);
    bool done = false;
    while (!done) {
        std::size_t want = raw.size();
        if (opt.limit != 0) {
            const std::uint64_t left = opt.limit - stats.records;
            if (left == 0)
                break;
            want = static_cast<std::size_t>(std::min<std::uint64_t>(
                want, left * kChampSimRecordSize));
        }
        const std::size_t got = in.readBytes(raw.data(), want);
        if (got < want)
            done = true;
        if (got % kChampSimRecordSize != 0) {
            throw ConfigError(
                "champsim trace '" + in_path + "': input ends "
                + std::to_string(got % kChampSimRecordSize)
                + " bytes into a "
                + std::to_string(kChampSimRecordSize)
                + "-byte record (record #"
                + std::to_string(stats.records + got / kChampSimRecordSize)
                + ") — truncated download?");
        }
        for (std::size_t r = 0; r < got / kChampSimRecordSize; ++r) {
            const TraceInstr i = decodeChampSimRecord(
                raw.data() + r * kChampSimRecordSize);
            writer.append(i);
            ++stats.records;
            if (i.isLoad())
                ++stats.loads;
            if (i.isStore())
                ++stats.stores;
            if (i.isBranch())
                ++stats.branches;
        }
    }
    if (opt.limit == 0 || stats.records < opt.limit)
        in.finish();

    if (stats.records == 0) {
        throw ConfigError("champsim trace '" + in_path
                          + "': no records — empty input");
    }
    writer.finish();
    return stats;
}

} // namespace tlpsim::tracefile
