/**
 * @file
 * tlpsim portable on-disk trace format (".tlt"), version 1.
 *
 * A trace file is one looping TraceInstr stream plus identifying
 * metadata, laid out so that (a) any truncation or corruption is
 * detectable before or during replay, and (b) a reader never needs more
 * than one chunk of records in memory:
 *
 *   byte  size  field
 *   0     8     magic "tlptrace" (ASCII, no NUL)
 *   8     4     u32  format version (this build reads 1)
 *   12    4     u32  suite (0 = SPEC, 1 = GAP; reporting only)
 *   16    8     u64  payload_offset — byte offset of the first record.
 *                    Readers seek here rather than assuming the header
 *                    size, so later versions may grow the metadata
 *                    without breaking v1 readers of v1 files.
 *   24    8     u64  reserved (written 0, ignored on read)
 *   32    4     u32  name_len
 *   36    n     workload name (UTF-8, no NUL)
 *   ...         records: record_count × 32-byte TraceInstr images
 *   EOF-24 8    u64  record_count
 *   EOF-16 8    u64  FNV-1a64 checksum of the record payload bytes
 *   EOF-8  8    footer magic "tlptfoot"
 *
 * Every multi-byte field is little-endian, written byte by byte — the
 * file is identical regardless of host endianness or struct layout, and
 * record PCs are whatever the writer recorded, so figures reproduce
 * across link layouts and machines (no ASLR re-normalization on replay).
 *
 * A record image is the TraceInstr fields in declaration order:
 * u64 ip, u64 ld_vaddr, u64 st_vaddr, u8 src0, u8 src1, u8 dst,
 * u8 branch, u8 taken, 3 zero bytes.
 *
 * The footer makes truncation loud: a file cut anywhere loses the footer
 * magic or leaves a record region whose byte count disagrees with
 * record_count (or is not a multiple of 32 — cut mid-record). The
 * checksum catches in-place corruption; readers accumulate it while
 * streaming and verify at the end of the first pass, so verification
 * costs no extra I/O and no extra memory.
 */

#ifndef TLPSIM_TRACEFILE_FORMAT_HH
#define TLPSIM_TRACEFILE_FORMAT_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace tlpsim::tracefile
{

inline constexpr char kMagic[] = "tlptrace";         ///< 8 bytes on disk
inline constexpr char kFooterMagic[] = "tlptfoot";   ///< 8 bytes on disk
inline constexpr std::uint32_t kVersion = 1;
inline constexpr std::size_t kRecordSize = 32;
inline constexpr std::size_t kFixedHeaderSize = 36;  ///< up to name bytes
inline constexpr std::size_t kFooterSize = 24;
/** Suggested file extension (not enforced anywhere). */
inline constexpr const char *kExtension = ".tlt";

/** Incremental FNV-1a 64-bit — the footer checksum and the content
 *  identity that feeds the design-point fingerprint. */
class Fnv1a64
{
  public:
    void
    update(const void *data, std::size_t n)
    {
        auto p = static_cast<const unsigned char *>(data);
        std::uint64_t h = h_;
        for (std::size_t i = 0; i < n; ++i)
            h = (h ^ p[i]) * 0x100000001b3ull;
        h_ = h;
    }

    std::uint64_t value() const { return h_; }

  private:
    std::uint64_t h_ = 0xcbf29ce484222325ull;
};

/** Encode one record as its 32-byte little-endian on-disk image. */
void encodeRecord(const TraceInstr &i, unsigned char out[kRecordSize]);

/** Decode a 32-byte on-disk image. */
TraceInstr decodeRecord(const unsigned char in[kRecordSize]);

/**
 * Everything the header and footer declare about a trace file, validated
 * structurally: magic, version, header bounds, footer magic, and the
 * record region being exactly record_count whole records. readInfo()
 * throws ConfigError naming the file and the offending byte offset for
 * every violation; the checksum is *declared* here and verified against
 * the payload by verifyPayload() or during a streaming first pass.
 */
struct TraceFileInfo
{
    std::string path;
    std::string name;              ///< embedded workload name
    std::uint32_t version = 0;
    std::uint32_t suite = 0;       ///< 0 = SPEC, 1 = GAP
    std::uint64_t payload_offset = 0;
    std::uint64_t record_count = 0;
    std::uint64_t checksum = 0;    ///< declared by the footer
    std::uint64_t file_size = 0;

    /** "tracefile:v1:<checksum-hex>x<count>" — the content identity that
     *  keys store rows and Runner jobs: two paths to byte-identical
     *  record streams collide (intended), a re-converted or edited file
     *  never aliases the old rows. Valid once the checksum has been
     *  verified against the payload. */
    std::string identity() const;
};

/** Open and structurally validate @p path (see TraceFileInfo). */
TraceFileInfo readInfo(const std::string &path);

/**
 * Stream the whole record payload once (bounded chunk buffer) and verify
 * the footer checksum; throws ConfigError naming file, region, computed
 * and declared sums on mismatch. Returns the verified info — the one
 * full-file pass external trace resolution performs up front, so a
 * corrupt file fails before any simulation starts.
 */
TraceFileInfo verifyFile(const std::string &path);

/**
 * Streaming writer: open(), append() records as they are produced (a
 * converter never materializes the trace), finish() seals the file.
 * Writes go to "<path>.tmp" and finish() publishes with one atomic
 * rename, so a crashed or failed write never leaves a plausible-looking
 * half trace under the final name; an unfinished writer removes its temp
 * file on destruction.
 */
class TraceFileWriter
{
  public:
    struct Options
    {
        std::string name;          ///< embedded workload name (required)
        std::uint32_t suite = 0;   ///< 0 = SPEC, 1 = GAP
    };

    TraceFileWriter(const std::string &path, const Options &opt);
    ~TraceFileWriter();

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    void append(const TraceInstr &i);

    std::uint64_t count() const { return count_; }

    /** Write the footer, flush, close, and atomically publish the file.
     *  Throws ConfigError on I/O failure or if nothing was appended
     *  (an empty trace cannot satisfy the looping replay contract). */
    void finish();

  private:
    void flushBuffer();

    std::string path_;
    std::string tmp_path_;
    std::FILE *f_ = nullptr;
    std::vector<unsigned char> buf_;
    Fnv1a64 sum_;
    std::uint64_t count_ = 0;
    bool finished_ = false;
};

/** Write a materialized Trace to @p path (the --record-trace path and
 *  the test fixture generator). */
void writeTraceFile(const std::string &path, const Trace &trace,
                    std::uint32_t suite);

} // namespace tlpsim::tracefile

#endif // TLPSIM_TRACEFILE_FORMAT_HH
