#include "tracefile/file_source.hh"

#include <algorithm>

#include "common/config.hh"

namespace tlpsim::tracefile
{

namespace
{

std::string
hex64(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

FileTraceSource::FileTraceSource(const std::string &path,
                                 std::size_t chunk_records)
    : info_(readInfo(path))
{
    f_ = std::fopen(path.c_str(), "rb");
    if (f_ == nullptr)
        throw ConfigError("trace file '" + path + "': cannot open for "
                          "reading");
    // The chunk never needs to exceed one pass; keep tiny traces tiny.
    const std::uint64_t cap = std::min<std::uint64_t>(
        std::max<std::size_t>(chunk_records, 1), info_.record_count);
    raw_.resize(static_cast<std::size_t>(cap) * kRecordSize);
    if (std::fseek(f_, static_cast<long>(info_.payload_offset), SEEK_SET)
        != 0) {
        std::fclose(f_);
        f_ = nullptr;
        throw ConfigError("trace file '" + path
                          + "': cannot seek to the record region at byte "
                          + std::to_string(info_.payload_offset));
    }
}

FileTraceSource::~FileTraceSource()
{
    if (f_ != nullptr)
        std::fclose(f_);
}

std::size_t
FileTraceSource::read(TraceInstr *out, std::size_t n)
{
    // Stop at the pass boundary so the checksum closes exactly there and
    // the wrap seek happens between read() calls, never inside one.
    const std::uint64_t left_in_pass = info_.record_count - pass_pos_;
    const std::size_t take = static_cast<std::size_t>(
        std::min<std::uint64_t>({n, raw_.size() / kRecordSize,
                                 left_in_pass}));
    const std::size_t bytes = take * kRecordSize;
    if (std::fread(raw_.data(), 1, bytes, f_) != bytes) {
        throw ConfigError(
            "trace file '" + info_.path
            + "': short read in the record region at byte "
            + std::to_string(info_.payload_offset + pass_pos_ * kRecordSize)
            + " (file shrank since it was opened?)");
    }
    if (first_pass_)
        sum_.update(raw_.data(), bytes);
    for (std::size_t i = 0; i < take; ++i)
        out[i] = decodeRecord(raw_.data() + i * kRecordSize);
    pass_pos_ += take;

    if (pass_pos_ == info_.record_count) {
        if (first_pass_ && sum_.value() != info_.checksum) {
            throw ConfigError(
                "trace file '" + info_.path
                + "': checksum mismatch over records ["
                + std::to_string(info_.payload_offset) + ", "
                + std::to_string(info_.payload_offset
                                 + info_.record_count * kRecordSize)
                + "): computed " + hex64(sum_.value())
                + ", footer declares " + hex64(info_.checksum));
        }
        first_pass_ = false;
        pass_pos_ = 0;
        if (std::fseek(f_, static_cast<long>(info_.payload_offset),
                       SEEK_SET)
            != 0) {
            throw ConfigError("trace file '" + info_.path
                              + "': cannot seek back to the record region "
                                "at byte "
                              + std::to_string(info_.payload_offset));
        }
    }
    return take;
}

} // namespace tlpsim::tracefile
