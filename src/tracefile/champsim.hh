/**
 * @file
 * ChampSim → tlpsim trace conversion.
 *
 * ChampSim distributes traces as streams of 64-byte `input_instr`
 * records (usually xz-compressed). This converter maps that layout onto
 * tlpsim's 32-byte TraceInstr and writes a sealed .tlt file, streaming
 * record by record — neither the input nor the output trace is ever
 * materialized, so arbitrarily large traces convert at a fixed RSS.
 *
 * The ChampSim record (all fields little-endian):
 *
 *   byte  size  field
 *   0     8     u64 ip
 *   8     1     u8  is_branch
 *   9     1     u8  branch_taken
 *   10    2     u8  destination_registers[2]
 *   12    4     u8  source_registers[4]
 *   16    16    u64 destination_memory[2]
 *   32    32    u64 source_memory[4]
 *
 * Mapping onto TraceInstr:
 *  - ld_vaddr / st_vaddr take the first nonzero source / destination
 *    memory operand (tlpsim models at most one load and one store per
 *    instruction; multi-operand records keep the first, which preserves
 *    the access stream's page/line locality).
 *  - Registers renumber into tlpsim's 1..63 space as ((r - 1) % 63) + 1,
 *    keeping 0 as the "none" sentinel: dependencies stay dependencies,
 *    distinct ChampSim ids almost always stay distinct.
 *  - Branch kind is recovered from the register reads the ChampSim
 *    tracer emits for each x86 branch flavour: a branch reading FLAGS
 *    (25) is Conditional; one reading any register other than IP (26) /
 *    SP (6) / FLAGS is Indirect; anything else is Direct.
 */

#ifndef TLPSIM_TRACEFILE_CHAMPSIM_HH
#define TLPSIM_TRACEFILE_CHAMPSIM_HH

#include <cstdint>
#include <string>

#include "trace/trace.hh"

namespace tlpsim::tracefile
{

/** ChampSim's on-disk record size and the register ids its x86 tracer
 *  uses as markers (see ChampSim's instruction.h). */
inline constexpr std::size_t kChampSimRecordSize = 64;
inline constexpr std::uint8_t kChampSimRegSP = 6;
inline constexpr std::uint8_t kChampSimRegFlags = 25;
inline constexpr std::uint8_t kChampSimRegIP = 26;

/** Decode one 64-byte ChampSim record into a TraceInstr (the pure
 *  mapping, exposed for tests). */
TraceInstr decodeChampSimRecord(const unsigned char in[kChampSimRecordSize]);

struct ChampSimConvertOptions
{
    /** Workload name embedded in the output; empty = derive from the
     *  input filename (basename, compression and trace suffixes
     *  stripped). */
    std::string name;
    std::uint32_t suite = 0;    ///< 0 = SPEC, 1 = GAP
    std::uint64_t limit = 0;    ///< stop after this many records; 0 = all
    /** Override the decompressor: run `<decompress_cmd> <path>` (path
     *  shell-quoted) and read records from its stdout, regardless of the
     *  input's extension. Empty = pick xz/gzip/plain by suffix. Lets
     *  tests (and unusual archives) drive the pipe path deterministically,
     *  including the child-failure reporting. */
    std::string decompress_cmd;
};

struct ChampSimConvertStats
{
    std::string name;           ///< embedded workload name actually used
    std::uint64_t records = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
};

/**
 * Convert @p in_path (raw, .xz, or .gz — compressed inputs stream
 * through the system decompressor, no in-tree codec) to a sealed tlpsim
 * trace at @p out_path. Throws ConfigError on unreadable input, a
 * failing decompressor, input that ends mid-record, or an empty input.
 */
ChampSimConvertStats convertChampSim(const std::string &in_path,
                                     const std::string &out_path,
                                     const ChampSimConvertOptions &opt);

} // namespace tlpsim::tracefile

#endif // TLPSIM_TRACEFILE_CHAMPSIM_HH
