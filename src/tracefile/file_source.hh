/**
 * @file
 * Bounded-memory streaming TraceSource over an on-disk trace file.
 *
 * A FileTraceSource owns one file handle and one raw chunk buffer
 * (chunk_records × 32 bytes, default 128 KiB); that buffer is the only
 * window of the trace ever resident, so a hundred-GB trace replays at a
 * fixed RSS per core. The stream loops: at the end of the record region
 * the source seeks back to the first record, exactly like the in-memory
 * reader repeats short traces.
 *
 * Verification is folded into the stream: the structural checks
 * (magic, version, truncation, record count) run at construction via
 * readInfo(), and the footer checksum is accumulated chunk by chunk
 * during the first pass and compared when the pass completes — a
 * corrupted record region throws ConfigError naming the file and byte
 * range rather than silently feeding garbage to the core. (The CLI's
 * file: workload resolution additionally runs verifyFile() up front, so
 * sweeps fail before the first simulation, not mid-grid.)
 *
 * Each concurrent simulation builds its own FileTraceSource over the
 * same path — the sources share nothing, which is what keeps N-worker
 * replay deterministic and lock-free.
 */

#ifndef TLPSIM_TRACEFILE_FILE_SOURCE_HH
#define TLPSIM_TRACEFILE_FILE_SOURCE_HH

#include <cstdio>
#include <string>
#include <vector>

#include "tracefile/format.hh"
#include "trace/trace.hh"

namespace tlpsim::tracefile
{

class FileTraceSource final : public TraceSource
{
  public:
    explicit FileTraceSource(const std::string &path,
                             std::size_t chunk_records
                             = TraceReader::kChunkRecords);
    ~FileTraceSource() override;

    FileTraceSource(const FileTraceSource &) = delete;
    FileTraceSource &operator=(const FileTraceSource &) = delete;

    std::uint64_t size() const override { return info_.record_count; }
    const std::string &name() const override { return info_.name; }
    std::size_t read(TraceInstr *out, std::size_t n) override;

    const TraceFileInfo &info() const { return info_; }

    /** Bytes of file data this source ever holds at once. */
    std::size_t chunkBytes() const { return raw_.size(); }

  private:
    TraceFileInfo info_;
    std::FILE *f_ = nullptr;
    std::vector<unsigned char> raw_;
    std::uint64_t pass_pos_ = 0;   ///< records consumed in current pass
    bool first_pass_ = true;
    Fnv1a64 sum_;
};

} // namespace tlpsim::tracefile

#endif // TLPSIM_TRACEFILE_FILE_SOURCE_HH
