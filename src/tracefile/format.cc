#include "tracefile/format.hh"

#include <cstdio>
#include <cstring>

#include "common/config.hh"

namespace tlpsim::tracefile
{

namespace
{

void
putU32(unsigned char *p, std::uint32_t v)
{
    p[0] = static_cast<unsigned char>(v);
    p[1] = static_cast<unsigned char>(v >> 8);
    p[2] = static_cast<unsigned char>(v >> 16);
    p[3] = static_cast<unsigned char>(v >> 24);
}

void
putU64(unsigned char *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint32_t
getU32(const unsigned char *p)
{
    return static_cast<std::uint32_t>(p[0])
        | static_cast<std::uint32_t>(p[1]) << 8
        | static_cast<std::uint32_t>(p[2]) << 16
        | static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t
getU64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

std::string
hex64(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

[[noreturn]] void
fileError(const std::string &path, const std::string &what)
{
    throw ConfigError("trace file '" + path + "': " + what);
}

} // namespace

void
encodeRecord(const TraceInstr &i, unsigned char out[kRecordSize])
{
    putU64(out, i.ip);
    putU64(out + 8, i.ld_vaddr);
    putU64(out + 16, i.st_vaddr);
    out[24] = i.src0;
    out[25] = i.src1;
    out[26] = i.dst;
    out[27] = static_cast<unsigned char>(i.branch);
    out[28] = i.taken ? 1 : 0;
    out[29] = out[30] = out[31] = 0;
}

TraceInstr
decodeRecord(const unsigned char in[kRecordSize])
{
    TraceInstr i;
    i.ip = getU64(in);
    i.ld_vaddr = getU64(in + 8);
    i.st_vaddr = getU64(in + 16);
    i.src0 = in[24];
    i.src1 = in[25];
    i.dst = in[26];
    // Out-of-range branch codes clamp to NotBranch rather than forging an
    // enum value UBSan would flag; the checksum already rejects a file
    // whose bytes were corrupted in place.
    i.branch = in[27] <= static_cast<unsigned char>(BranchKind::Indirect)
        ? static_cast<BranchKind>(in[27])
        : BranchKind::NotBranch;
    i.taken = in[28] != 0;
    return i;
}

std::string
TraceFileInfo::identity() const
{
    return "tracefile:v" + std::to_string(version) + ":" + hex64(checksum)
        + "x" + std::to_string(record_count);
}

TraceFileInfo
readInfo(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        fileError(path, "cannot open for reading");
    struct Closer
    {
        std::FILE *f;
        ~Closer() { std::fclose(f); }
    } closer{f};

    TraceFileInfo info;
    info.path = path;

    if (std::fseek(f, 0, SEEK_END) != 0)
        fileError(path, "cannot seek (not a regular file?)");
    const long end = std::ftell(f);
    if (end < 0)
        fileError(path, "cannot determine file size");
    info.file_size = static_cast<std::uint64_t>(end);

    unsigned char hdr[kFixedHeaderSize];
    if (info.file_size < kFixedHeaderSize + kFooterSize) {
        fileError(path,
                  "truncated: " + std::to_string(info.file_size)
                      + " bytes, but the fixed header ("
                      + std::to_string(kFixedHeaderSize) + ") plus footer ("
                      + std::to_string(kFooterSize)
                      + ") alone need "
                      + std::to_string(kFixedHeaderSize + kFooterSize));
    }
    std::rewind(f);
    if (std::fread(hdr, 1, sizeof(hdr), f) != sizeof(hdr))
        fileError(path, "short read on the fixed header at byte 0");

    if (std::memcmp(hdr, kMagic, 8) != 0) {
        fileError(path,
                  "bad magic at byte 0 — not a tlpsim trace file (want \""
                      + std::string(kMagic) + "\")");
    }
    info.version = getU32(hdr + 8);
    if (info.version != kVersion) {
        fileError(path,
                  "unsupported format version "
                      + std::to_string(info.version)
                      + " at byte 8 (this build reads version "
                      + std::to_string(kVersion) + ")");
    }
    info.suite = getU32(hdr + 12);
    info.payload_offset = getU64(hdr + 16);
    const std::uint32_t name_len = getU32(hdr + 32);

    if (info.payload_offset < kFixedHeaderSize + name_len
        || info.payload_offset > info.file_size - kFooterSize) {
        fileError(path,
                  "payload offset " + std::to_string(info.payload_offset)
                      + " (declared at byte 16) lies outside the file's "
                        "record region ["
                      + std::to_string(kFixedHeaderSize + name_len) + ", "
                      + std::to_string(info.file_size - kFooterSize) + ")");
    }

    info.name.resize(name_len);
    if (name_len != 0
        && std::fread(info.name.data(), 1, name_len, f) != name_len)
        fileError(path, "short read on the name at byte 36");

    const std::uint64_t footer_at = info.file_size - kFooterSize;
    unsigned char ftr[kFooterSize];
    if (std::fseek(f, static_cast<long>(footer_at), SEEK_SET) != 0
        || std::fread(ftr, 1, sizeof(ftr), f) != sizeof(ftr))
        fileError(path,
                  "short read on the footer at byte "
                      + std::to_string(footer_at));
    if (std::memcmp(ftr + 16, kFooterMagic, 8) != 0) {
        fileError(path,
                  "bad footer magic at byte " + std::to_string(footer_at + 16)
                      + " — the file is truncated or was not sealed by "
                        "TraceFileWriter::finish()");
    }
    info.record_count = getU64(ftr);
    info.checksum = getU64(ftr + 8);

    const std::uint64_t payload_bytes = footer_at - info.payload_offset;
    if (payload_bytes % kRecordSize != 0) {
        fileError(path,
                  "truncated mid-record: the record region ends at byte "
                      + std::to_string(footer_at) + ", "
                      + std::to_string(payload_bytes % kRecordSize)
                      + " bytes into record #"
                      + std::to_string(payload_bytes / kRecordSize));
    }
    if (payload_bytes / kRecordSize != info.record_count) {
        fileError(path,
                  "record count mismatch: the footer at byte "
                      + std::to_string(footer_at) + " declares "
                      + std::to_string(info.record_count)
                      + " record(s) but the region ["
                      + std::to_string(info.payload_offset) + ", "
                      + std::to_string(footer_at) + ") holds "
                      + std::to_string(payload_bytes / kRecordSize));
    }
    if (info.record_count == 0)
        fileError(path, "empty trace: the footer declares 0 records");
    return info;
}

TraceFileInfo
verifyFile(const std::string &path)
{
    TraceFileInfo info = readInfo(path);
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        fileError(path, "cannot open for reading");
    struct Closer
    {
        std::FILE *f;
        ~Closer() { std::fclose(f); }
    } closer{f};
    if (std::fseek(f, static_cast<long>(info.payload_offset), SEEK_SET) != 0)
        fileError(path,
                  "cannot seek to the record region at byte "
                      + std::to_string(info.payload_offset));

    Fnv1a64 sum;
    std::vector<unsigned char> chunk(1 << 20);
    std::uint64_t left = info.record_count * kRecordSize;
    std::uint64_t at = info.payload_offset;
    while (left > 0) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(left, chunk.size()));
        if (std::fread(chunk.data(), 1, want, f) != want) {
            fileError(path,
                      "short read in the record region at byte "
                          + std::to_string(at)
                          + " (file shrank while reading?)");
        }
        sum.update(chunk.data(), want);
        left -= want;
        at += want;
    }
    if (sum.value() != info.checksum) {
        fileError(path,
                  "checksum mismatch over records ["
                      + std::to_string(info.payload_offset) + ", "
                      + std::to_string(at) + "): computed "
                      + hex64(sum.value()) + ", footer at byte "
                      + std::to_string(info.file_size - kFooterSize)
                      + " declares " + hex64(info.checksum));
    }
    return info;
}

TraceFileWriter::TraceFileWriter(const std::string &path, const Options &opt)
    : path_(path), tmp_path_(path + ".tmp")
{
    f_ = std::fopen(tmp_path_.c_str(), "wb");
    if (f_ == nullptr)
        fileError(path, "cannot open '" + tmp_path_ + "' for writing");

    const std::uint32_t name_len
        = static_cast<std::uint32_t>(opt.name.size());
    std::vector<unsigned char> hdr(kFixedHeaderSize + name_len);
    std::memcpy(hdr.data(), kMagic, 8);
    putU32(hdr.data() + 8, kVersion);
    putU32(hdr.data() + 12, opt.suite);
    putU64(hdr.data() + 16, kFixedHeaderSize + name_len);
    putU64(hdr.data() + 24, 0);
    putU32(hdr.data() + 32, name_len);
    std::memcpy(hdr.data() + kFixedHeaderSize, opt.name.data(), name_len);
    if (std::fwrite(hdr.data(), 1, hdr.size(), f_) != hdr.size()) {
        std::fclose(f_);
        f_ = nullptr;
        std::remove(tmp_path_.c_str());
        fileError(path, "write failed on the header (disk full?)");
    }
    buf_.reserve(1 << 20);
}

TraceFileWriter::~TraceFileWriter()
{
    if (f_ != nullptr) {
        std::fclose(f_);
        std::remove(tmp_path_.c_str());
    }
}

void
TraceFileWriter::append(const TraceInstr &i)
{
    unsigned char rec[kRecordSize];
    encodeRecord(i, rec);
    sum_.update(rec, kRecordSize);
    buf_.insert(buf_.end(), rec, rec + kRecordSize);
    ++count_;
    if (buf_.size() >= (std::size_t{1} << 20))
        flushBuffer();
}

void
TraceFileWriter::flushBuffer()
{
    if (buf_.empty())
        return;
    if (std::fwrite(buf_.data(), 1, buf_.size(), f_) != buf_.size())
        fileError(path_, "write failed in the record region (disk full?)");
    buf_.clear();
}

void
TraceFileWriter::finish()
{
    if (finished_)
        return;
    if (count_ == 0) {
        fileError(path_,
                  "refusing to write an empty trace (replay loops the "
                  "record stream, which needs at least one record)");
    }
    flushBuffer();
    unsigned char ftr[kFooterSize];
    putU64(ftr, count_);
    putU64(ftr + 8, sum_.value());
    std::memcpy(ftr + 16, kFooterMagic, 8);
    if (std::fwrite(ftr, 1, sizeof(ftr), f_) != sizeof(ftr)
        || std::fflush(f_) != 0)
        fileError(path_, "write failed on the footer (disk full?)");
    std::fclose(f_);
    f_ = nullptr;
    if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
        std::remove(tmp_path_.c_str());
        fileError(path_, "cannot publish '" + tmp_path_ + "'");
    }
    finished_ = true;
}

void
writeTraceFile(const std::string &path, const Trace &trace,
               std::uint32_t suite)
{
    TraceFileWriter::Options opt;
    opt.name = trace.name();
    opt.suite = suite;
    TraceFileWriter w(path, opt);
    for (std::size_t i = 0; i < trace.size(); ++i)
        w.append(trace.at(i));
    w.finish();
}

} // namespace tlpsim::tracefile
