/**
 * @file
 * Page buffer: tracks recently-touched pages and which cache lines within
 * them have been accessed, producing the "first access" bit used by the
 * Hermes/FLP/SLP features (Table I). This is the 0.63 KB "page buffer"
 * component of the paper's Table II budget.
 */

#ifndef TLPSIM_OFFCHIP_PAGE_BUFFER_HH
#define TLPSIM_OFFCHIP_PAGE_BUFFER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/storage.hh"
#include "common/types.hh"

namespace tlpsim
{

class PageBuffer
{
  public:
    struct Params
    {
        unsigned entries = 64;
        unsigned ways = 4;
        std::string name = "page_buffer";
    };

    PageBuffer();
    explicit PageBuffer(const Params &p);

    /**
     * True iff @p addr's cache line had not been touched in its tracked
     * page; records the touch (and allocates the page entry LRU on miss).
     */
    bool firstAccess(Addr addr);

    StorageBudget storage() const;

  private:
    struct Entry
    {
        Addr page = 0;
        std::uint64_t line_mask = 0;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    Params params_;
    unsigned sets_;
    std::vector<Entry> entries_;
    std::uint64_t lru_clock_ = 0;
};

} // namespace tlpsim

#endif // TLPSIM_OFFCHIP_PAGE_BUFFER_HH
