#include "offchip/page_buffer.hh"

#include <cassert>

#include "common/bitops.hh"

namespace tlpsim
{

PageBuffer::PageBuffer() : PageBuffer(Params{}) {}

PageBuffer::PageBuffer(const Params &p)
    : params_(p), sets_(p.entries / p.ways),
      entries_(static_cast<std::size_t>(p.entries))
{
    assert(isPowerOfTwo(sets_));
}

// tlpsim:hot

bool
PageBuffer::firstAccess(Addr addr)
{
    Addr page = pageNumber(addr);
    std::uint64_t line_bit = std::uint64_t{1} << lineOffsetInPage(addr);
    std::size_t set = page & (sets_ - 1);
    Entry *base = &entries_[set * params_.ways];

    Entry *victim = base;
    for (unsigned w = 0; w < params_.ways; ++w) {
        Entry &e = base[w];
        if (e.valid && e.page == page) {
            e.lru = ++lru_clock_;
            bool first = (e.line_mask & line_bit) == 0;
            e.line_mask |= line_bit;
            return first;
        }
        if (!e.valid || e.lru < victim->lru
            || (victim->valid && !e.valid)) {
            if (!e.valid || (victim->valid && e.lru < victim->lru))
                victim = &e;
        }
    }
    victim->valid = true;
    victim->page = page;
    victim->line_mask = line_bit;
    victim->lru = ++lru_clock_;
    return true;
}

// tlpsim:endhot

StorageBudget
PageBuffer::storage() const
{
    // Per entry: page tag (~36 bits after set indexing is generous) +
    // 64-bit line mask + LRU bits.
    StorageBudget b;
    b.add(params_.name, std::uint64_t{params_.entries} * (36 + 64 + 2));
    return b;
}

} // namespace tlpsim
