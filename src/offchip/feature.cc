#include "offchip/feature.hh"

namespace tlpsim
{

std::uint64_t
featureValue(FeatureKind kind, const FeatureContext &ctx)
{
    switch (kind) {
      case FeatureKind::PcXorLineOffset:
        return ctx.pc ^ lineOffsetInPage(ctx.addr);
      case FeatureKind::PcXorByteOffset:
        return ctx.pc ^ byteOffsetInBlock(ctx.addr);
      case FeatureKind::PcFirstAccess:
        return (ctx.pc << 1) | static_cast<std::uint64_t>(ctx.first_access);
      case FeatureKind::LineOffsetFirstAccess:
        return (static_cast<std::uint64_t>(lineOffsetInPage(ctx.addr)) << 1)
            | static_cast<std::uint64_t>(ctx.first_access);
      case FeatureKind::Last4LoadPcs:
        return ctx.last_pcs_hash;
      case FeatureKind::FlpPredLineOffset:
        return (static_cast<std::uint64_t>(ctx.flp_pred)
                << (kPageBits - kBlockBits))
            | lineOffsetInPage(ctx.addr);
    }
    return 0;
}

const char *
toString(FeatureKind kind)
{
    switch (kind) {
      case FeatureKind::PcXorLineOffset: return "pc_xor_line_offset";
      case FeatureKind::PcXorByteOffset: return "pc_xor_byte_offset";
      case FeatureKind::PcFirstAccess: return "pc_first_access";
      case FeatureKind::LineOffsetFirstAccess:
        return "line_offset_first_access";
      case FeatureKind::Last4LoadPcs: return "last4_load_pcs";
      case FeatureKind::FlpPredLineOffset: return "flp_pred_line_offset";
    }
    return "?";
}

std::vector<FeatureKind>
legacyHermesFeatures()
{
    return {
        FeatureKind::PcXorLineOffset,
        FeatureKind::PcXorByteOffset,
        FeatureKind::PcFirstAccess,
        FeatureKind::LineOffsetFirstAccess,
        FeatureKind::Last4LoadPcs,
    };
}

std::vector<FeatureKind>
slpFeatures(bool use_flp_feature)
{
    auto f = legacyHermesFeatures();
    if (use_flp_feature)
        f.push_back(FeatureKind::FlpPredLineOffset);
    return f;
}

std::vector<HashedPerceptron::TableSpec>
featureTables(const std::vector<FeatureKind> &features, unsigned scale_shift)
{
    std::vector<HashedPerceptron::TableSpec> specs;
    for (FeatureKind f : features) {
        unsigned entries;
        switch (f) {
          case FeatureKind::LineOffsetFirstAccess:
          case FeatureKind::FlpPredLineOffset:
            entries = 128;
            break;
          default:
            entries = 1024;
            break;
        }
        specs.push_back({toString(f), entries << scale_shift});
    }
    return specs;
}

} // namespace tlpsim
