#include "offchip/perceptron.hh"

#include <cassert>

namespace tlpsim
{

HashedPerceptron::HashedPerceptron(std::string name,
                                   std::vector<TableSpec> tables,
                                   int training_threshold)
    : name_(std::move(name)), training_threshold_(training_threshold)
{
    for (auto &spec : tables) {
        assert(isPowerOfTwo(spec.entries));
        table_names_.push_back(spec.name);
        tables_.emplace_back(spec.entries);
        index_bits_.push_back(log2i(spec.entries));
    }
}

int
HashedPerceptron::predict(const std::uint16_t *index, unsigned n) const
{
    assert(n == tables_.size());
    int sum = 0;
    for (unsigned t = 0; t < n; ++t)
        sum += tables_[t][index[t]].value();
    return sum;
}

void
HashedPerceptron::train(const std::uint16_t *index, unsigned n, int sum,
                        bool outcome_positive, int decision_threshold)
{
    assert(n == tables_.size());
    bool predicted_positive = sum >= decision_threshold;
    bool mispredicted = predicted_positive != outcome_positive;
    if (!mispredicted && std::abs(sum - decision_threshold)
        >= training_threshold_) {
        return;   // confident and correct: leave the weights alone
    }
    for (unsigned t = 0; t < n; ++t)
        tables_[t][index[t]].train(outcome_positive);
}

void
HashedPerceptron::nudge(const std::uint16_t *index, unsigned n, bool positive)
{
    assert(n == tables_.size());
    for (unsigned t = 0; t < n; ++t)
        tables_[t][index[t]].train(positive);
}

void
HashedPerceptron::reset()
{
    for (auto &table : tables_) {
        for (auto &w : table)
            w.reset();
    }
}

StorageBudget
HashedPerceptron::storage() const
{
    StorageBudget b;
    for (std::size_t t = 0; t < tables_.size(); ++t) {
        b.add(name_ + "." + table_names_[t],
              static_cast<std::uint64_t>(tables_[t].size())
                  * PerceptronWeight{}.storageBits());
    }
    return b;
}

} // namespace tlpsim
