#include "offchip/perceptron.hh"

#include <cassert>

namespace tlpsim
{

HashedPerceptron::HashedPerceptron(std::string name,
                                   std::vector<TableSpec> tables,
                                   int training_threshold)
    : name_(std::move(name)), training_threshold_(training_threshold)
{
    assert(tables.size() <= kMaxTables);
    std::uint32_t offset = 0;
    for (auto &spec : tables) {
        assert(isPowerOfTwo(spec.entries));
        table_names_.push_back(spec.name);
        meta_.push_back({offset, spec.entries, log2i(spec.entries)});
        offset += spec.entries;
    }
    weights_.resize(offset);
}

// Predict/train run once per load; no allocation allowed here
// (tools/hotpath_lint.py).
// tlpsim:hot

int
HashedPerceptron::predict(const std::uint16_t *index, unsigned n) const
{
    assert(n == meta_.size());
    int sum = 0;
    for (unsigned t = 0; t < n; ++t)
        sum += weights_[meta_[t].offset + index[t]].value();
    return sum;
}

void
HashedPerceptron::train(const std::uint16_t *index, unsigned n, int sum,
                        bool outcome_positive, int decision_threshold)
{
    assert(n == meta_.size());
    bool predicted_positive = sum >= decision_threshold;
    bool mispredicted = predicted_positive != outcome_positive;
    if (!mispredicted && std::abs(sum - decision_threshold)
        >= training_threshold_) {
        return;   // confident and correct: leave the weights alone
    }
    for (unsigned t = 0; t < n; ++t)
        weights_[meta_[t].offset + index[t]].train(outcome_positive);
}

void
HashedPerceptron::nudge(const std::uint16_t *index, unsigned n, bool positive)
{
    assert(n == meta_.size());
    for (unsigned t = 0; t < n; ++t)
        weights_[meta_[t].offset + index[t]].train(positive);
}

// tlpsim:endhot

void
HashedPerceptron::reset()
{
    for (auto &w : weights_)
        w.reset();
}

StorageBudget
HashedPerceptron::storage() const
{
    StorageBudget b;
    for (std::size_t t = 0; t < meta_.size(); ++t) {
        b.add(name_ + "." + table_names_[t],
              static_cast<std::uint64_t>(meta_[t].entries)
                  * PerceptronWeight{}.storageBits());
    }
    return b;
}

} // namespace tlpsim
