#include "offchip/perceptron.hh"

#include <cassert>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace tlpsim
{

namespace
{

#if defined(__x86_64__)
bool
hostHasAvx2()
{
    static const bool avx2 = __builtin_cpu_supports("avx2") != 0;
    return avx2;
}
#endif

} // namespace

HashedPerceptron::HashedPerceptron(std::string name,
                                   std::vector<TableSpec> tables,
                                   int training_threshold)
    : name_(std::move(name)), training_threshold_(training_threshold)
{
    assert(tables.size() <= kMaxTables);
    std::uint32_t offset = 0;
    for (auto &spec : tables) {
        assert(isPowerOfTwo(spec.entries));
        table_names_.push_back(spec.name);
        meta_.push_back({offset, spec.entries, log2i(spec.entries)});
        offset += spec.entries;
    }
    pad_index_ = offset;
    weights_.resize(offset + 2);   // zero guards, see the member comment
}

// Predict/train run once per load; no allocation allowed here
// (tools/hotpath_lint.py).
// tlpsim:hot

int
HashedPerceptron::predict(const std::uint16_t *index, unsigned n) const
{
    assert(n == meta_.size());
#if defined(__x86_64__)
    if (n >= 8 && hostHasAvx2())
        return predictAvx2(index, n);
#endif
    int sum = 0;
    for (unsigned t = 0; t < n; ++t)
        sum += weights_[meta_[t].offset + index[t]].value();
    return sum;
}

#if defined(__x86_64__)
__attribute__((target("avx2"))) int
HashedPerceptron::predictAvx2(const std::uint16_t *index, unsigned n) const
{
    // Weights are one int16 each, so a 4-byte gather at byte stride 2
    // picks weight idx[i] up in each lane's low half (the high half is
    // the next weight, or a guard entry at the table's end); shift-pair
    // sign extension recovers the value. The sums are bit-identical to
    // the scalar loop: int32 addition of at most kMaxTables values in
    // [-16, 15] cannot overflow and is order-insensitive.
    static_assert(sizeof(PerceptronWeight) == sizeof(std::int16_t),
                  "gather kernel assumes int16 weight storage");
    alignas(32) std::int32_t idx[kMaxTables];
    static_assert(kMaxTables % 8 == 0, "padding stays inside idx[]");
    for (unsigned t = 0; t < n; ++t)
        idx[t] = static_cast<std::int32_t>(meta_[t].offset + index[t]);
    const unsigned padded = (n + 7u) & ~7u;
    for (unsigned t = n; t < padded; ++t)
        idx[t] = static_cast<std::int32_t>(pad_index_);   // always-zero weight
    const int *base = reinterpret_cast<const int *>(weights_.data());
    __m256i acc = _mm256_setzero_si256();
    for (unsigned t = 0; t < padded; t += 8) {
        const __m256i vindex
            = _mm256_load_si256(reinterpret_cast<const __m256i *>(idx + t));
        __m256i w = _mm256_i32gather_epi32(base, vindex, 2);
        w = _mm256_srai_epi32(_mm256_slli_epi32(w, 16), 16);
        acc = _mm256_add_epi32(acc, w);
    }
    __m128i s = _mm_add_epi32(_mm256_castsi256_si128(acc),
                              _mm256_extracti128_si256(acc, 1));
    s = _mm_add_epi32(s, _mm_srli_si128(s, 8));
    s = _mm_add_epi32(s, _mm_srli_si128(s, 4));
    return _mm_cvtsi128_si32(s);
}
#endif

void
HashedPerceptron::train(const std::uint16_t *index, unsigned n, int sum,
                        bool outcome_positive, int decision_threshold)
{
    assert(n == meta_.size());
    bool predicted_positive = sum >= decision_threshold;
    bool mispredicted = predicted_positive != outcome_positive;
    if (!mispredicted && std::abs(sum - decision_threshold)
        >= training_threshold_) {
        return;   // confident and correct: leave the weights alone
    }
    for (unsigned t = 0; t < n; ++t)
        weights_[meta_[t].offset + index[t]].train(outcome_positive);
}

void
HashedPerceptron::nudge(const std::uint16_t *index, unsigned n, bool positive)
{
    assert(n == meta_.size());
    for (unsigned t = 0; t < n; ++t)
        weights_[meta_[t].offset + index[t]].train(positive);
}

// tlpsim:endhot

void
HashedPerceptron::reset()
{
    for (auto &w : weights_)
        w.reset();
}

StorageBudget
HashedPerceptron::storage() const
{
    StorageBudget b;
    for (std::size_t t = 0; t < meta_.size(); ++t) {
        b.add(name_ + "." + table_names_[t],
              static_cast<std::uint64_t>(meta_[t].entries)
                  * PerceptronWeight{}.storageBits());
    }
    return b;
}

} // namespace tlpsim
