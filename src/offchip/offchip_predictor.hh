/**
 * @file
 * Off-chip predictors for demand loads: Hermes (the baseline, single
 * activation threshold, always-immediate speculative requests) and the
 * paper's FLP (two thresholds τ_high / τ_low driving the novel selective
 * delay mechanism), plus the always-delay ablation mode of Fig. 15.
 *
 * One instance per core. The predictor is consulted when a load's address
 * is known; its Decision tells the core whether to fire a speculative
 * DRAM request immediately, tag the load for issue-on-L1D-miss, or do
 * nothing. Training happens when the load completes, against the true
 * "was served by DRAM" outcome.
 */

#ifndef TLPSIM_OFFCHIP_OFFCHIP_PREDICTOR_HH
#define TLPSIM_OFFCHIP_OFFCHIP_PREDICTOR_HH

#include <cstdint>
#include <string>

#include "common/stats.hh"
#include "common/storage.hh"
#include "mem/packet.hh"
#include "offchip/feature.hh"
#include "offchip/page_buffer.hh"
#include "offchip/perceptron.hh"

namespace tlpsim
{

/** When (if ever) a positive off-chip prediction fires the DRAM request. */
enum class OffchipPolicy
{
    None,        ///< no off-chip prediction (baseline)
    Immediate,   ///< Hermes / "FLP w/o selective delay": fire at the core
    AlwaysDelay, ///< Fig. 15 "Delayed TSP": fire only on L1D miss
    Selective,   ///< the paper's FLP: τ_high fires now, [τ_low, τ_high) delays
};

const char *toString(OffchipPolicy p);

/** Parse toString's names back ("none", "immediate", "always_delay",
 *  "selective"); throws ConfigError listing the valid names. */
OffchipPolicy offchipPolicyFromString(const std::string &s);

class OffChipPredictor
{
  public:
    struct Params
    {
        std::string name = "flp";
        OffchipPolicy policy = OffchipPolicy::Selective;
        /** Immediate-fire threshold (Hermes τ_act / FLP τ_high). */
        int tau_high = 26;
        /** Predicted-off-chip threshold (FLP τ_low; Hermes uses τ_high). */
        int tau_low = 2;
        int training_threshold = 30;
        /** Table scaling for the Fig. 17 "+7KB Hermes" design. */
        unsigned table_scale_shift = 0;
    };

    OffChipPredictor(const Params &p, StatGroup *stats);

    /** What to do with this load. */
    struct Decision
    {
        bool spec_now = false;       ///< issue speculative DRAM read now
        bool delayed_flag = false;   ///< issue it if the L1D lookup misses
        bool predicted_offchip = false;
        PredictionMeta meta;         ///< stored in the LQ for training
    };

    Decision predictLoad(Addr ip, Addr vaddr);

    /** Train against the final outcome of the load. */
    void train(const PredictionMeta &meta, bool went_offchip);

    StorageBudget storage() const;

    const Params &params() const { return params_; }

    /** Threshold separating "predicted off-chip" from not. */
    int
    predictThreshold() const
    {
        return params_.policy == OffchipPolicy::Immediate ? params_.tau_high
                                                          : params_.tau_low;
    }

  private:
    Params params_;
    std::vector<FeatureKind> features_;
    HashedPerceptron perceptron_;
    PageBuffer page_buffer_;
    LoadPcHistory pc_history_;

    Counter *pred_offchip_;
    Counter *pred_onchip_;
    Counter *spec_now_;
    Counter *delayed_;
    Counter *train_correct_;
    Counter *train_wrong_;
};

} // namespace tlpsim

#endif // TLPSIM_OFFCHIP_OFFCHIP_PREDICTOR_HH
