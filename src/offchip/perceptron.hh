/**
 * @file
 * Hashed-perceptron infrastructure shared by every neural predictor in
 * tlpsim: the branch predictor, Hermes, FLP, SLP, and PPF.
 *
 * A HashedPerceptron owns one weight table per feature. A prediction
 * hashes each feature value into its table, reads the weights, and sums
 * them; training saturating-updates the same entries when the outcome
 * disagrees with the prediction or the magnitude of the sum is below the
 * training threshold (the classic perceptron update rule of Jiménez &
 * Lin adapted by Hermes/PPF).
 */

#ifndef TLPSIM_OFFCHIP_PERCEPTRON_HH
#define TLPSIM_OFFCHIP_PERCEPTRON_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitops.hh"
#include "common/sat_counter.hh"
#include "common/storage.hh"

namespace tlpsim
{

/** Fixed-point weight with 5-bit storage, matching the paper's budget. */
using PerceptronWeight = SatCounter<5>;

/**
 * Most feature tables any perceptron in the system uses (bpred's 16).
 * Callers snapshot per-prediction indices in fixed arrays sized by this
 * (or by kMaxFeatures for the packet-borne PredictionMeta) so the
 * per-load predict/train path never touches the heap.
 */
constexpr unsigned kMaxTables = 16;

class HashedPerceptron
{
  public:
    struct TableSpec
    {
        std::string name;
        unsigned entries;   ///< power of two
    };

    HashedPerceptron(std::string name, std::vector<TableSpec> tables,
                     int training_threshold);

    unsigned numTables() const { return static_cast<unsigned>(meta_.size()); }

    /** Hash a raw feature value into table @p t's index space. */
    std::uint16_t
    indexFor(unsigned t, std::uint64_t value) const
    {
        const TableMeta &m = meta_[t];
        return static_cast<std::uint16_t>(
            foldedXor(value, m.index_bits) & (m.entries - 1));
    }

    /** Table @p t's fold width (callers exploiting foldedXor's
     *  XOR-linearity pre-fold shared hash terms once per prediction). */
    unsigned indexBits(unsigned t) const { return meta_[t].index_bits; }

    unsigned entriesOf(unsigned t) const { return meta_[t].entries; }

    /** Sum weights for pre-hashed indices (one per table). Dispatches
     *  to an AVX2 gather kernel when the host supports it and n >= 8;
     *  the vector and scalar paths produce bit-identical sums (int32
     *  addition over |w| <= 15, n <= 16 cannot overflow and is
     *  order-insensitive). */
    int predict(const std::uint16_t *index, unsigned n) const;

    /**
     * Perceptron update: if the prediction implied by @p sum (against
     * @p decision_threshold) was wrong, or |sum| is below the training
     * threshold, nudge every indexed weight toward the outcome.
     */
    void train(const std::uint16_t *index, unsigned n, int sum,
               bool outcome_positive, int decision_threshold);

    /** Unconditional nudge (used by PPF's recovery path). */
    void nudge(const std::uint16_t *index, unsigned n, bool positive);

    int weightAt(unsigned t, std::uint16_t idx) const
    {
        return weights_[meta_[t].offset + idx].value();
    }

    void reset();

    StorageBudget storage() const;

    const std::string &name() const { return name_; }

  private:
    struct TableMeta
    {
        std::uint32_t offset;    ///< table start within weights_
        std::uint32_t entries;   ///< power of two
        unsigned index_bits;
    };

#if defined(__x86_64__)
    /** AVX2 gather kernel behind predict()'s runtime dispatch. */
    int predictAvx2(const std::uint16_t *index, unsigned n) const;
#endif

    std::string name_;
    std::vector<std::string> table_names_;
    std::vector<TableMeta> meta_;
    /** All tables back to back, plus two always-zero guard entries: the
     *  first doubles as the padding weight for gather lanes beyond n,
     *  the second keeps the gather's 4-byte loads in bounds at the
     *  padding index. Neither is ever trained. */
    std::vector<PerceptronWeight> weights_;
    std::uint32_t pad_index_ = 0;   ///< index of the first guard entry
    int training_threshold_;
};

} // namespace tlpsim

#endif // TLPSIM_OFFCHIP_PERCEPTRON_HH
