/**
 * @file
 * Program features for off-chip prediction (the paper's Table I).
 *
 * FLP computes the five legacy Hermes features over *virtual* addresses;
 * SLP computes the same five over *physical* addresses plus the novel
 * "FLP prediction + cacheline offset" leveling feature.
 */

#ifndef TLPSIM_OFFCHIP_FEATURE_HH
#define TLPSIM_OFFCHIP_FEATURE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "offchip/perceptron.hh"

namespace tlpsim
{

enum class FeatureKind
{
    PcXorLineOffset,        ///< PC ⊕ cacheline offset (within page)
    PcXorByteOffset,        ///< PC ⊕ byte offset (within line)
    PcFirstAccess,          ///< PC + first-access bit
    LineOffsetFirstAccess,  ///< cacheline offset + first-access bit
    Last4LoadPcs,           ///< folded hash of the last 4 load PCs
    FlpPredLineOffset,      ///< FLP output bit + cacheline offset (SLP only)
};

/** Everything a feature may draw on. */
struct FeatureContext
{
    Addr pc = 0;
    Addr addr = 0;          ///< virtual (FLP) or physical (SLP)
    bool first_access = false;
    std::uint64_t last_pcs_hash = 0;
    bool flp_pred = false;
};

/** Raw (un-hashed) feature value. */
std::uint64_t featureValue(FeatureKind kind, const FeatureContext &ctx);

const char *toString(FeatureKind kind);

/** The five legacy Hermes features (Table I, top). */
std::vector<FeatureKind> legacyHermesFeatures();

/** Legacy features + the SLP leveling feature (Table I, bottom). */
std::vector<FeatureKind> slpFeatures(bool use_flp_feature);

/**
 * Build the perceptron table specs for a feature list. Sizes follow the
 * paper's budget: 1024-entry tables for PC-based features, 128 entries
 * for the purely offset-based ones; @p scale_shift multiplies every table
 * by 2^shift (used for the Fig. 17 "+7KB" designs).
 */
std::vector<HashedPerceptron::TableSpec>
featureTables(const std::vector<FeatureKind> &features,
              unsigned scale_shift = 0);

/** Rolling hash of the last four load PCs (per core). */
class LoadPcHistory
{
  public:
    void
    push(Addr pc)
    {
        history_[pos_] = pc;
        pos_ = (pos_ + 1) & 3;
    }

    std::uint64_t
    hash() const
    {
        std::uint64_t h = 0;
        for (unsigned i = 0; i < 4; ++i)
            h ^= history_[(pos_ + i) & 3] >> (3 - i);
        return h;
    }

  private:
    Addr history_[4] = {};
    unsigned pos_ = 0;
};

} // namespace tlpsim

#endif // TLPSIM_OFFCHIP_FEATURE_HH
