#include "offchip/slp.hh"

#include "prefetch/factory.hh"

namespace tlpsim
{

Slp::Slp(const Params &p, StatGroup *stats)
    : params_(p), features_(slpFeatures(p.use_flp_feature)),
      perceptron_(p.name, featureTables(features_, p.table_scale_shift),
                  p.training_threshold),
      page_buffer_({64, 4, p.name + ".page_buffer"}),
      allowed_(stats->counter(p.name + ".allowed")),
      dropped_(stats->counter(p.name + ".dropped")),
      probation_(stats->counter(p.name + ".probation")),
      train_correct_(stats->counter(p.name + ".train_correct")),
      train_wrong_(stats->counter(p.name + ".train_wrong"))
{
}

// tlpsim:hot

bool
Slp::allow(const PrefetchTrigger &trigger, Addr pf_vaddr, Addr pf_paddr,
           std::uint32_t pf_metadata, std::uint8_t &fill_level,
           PredictionMeta &meta)
{
    (void)pf_vaddr;
    (void)pf_metadata;
    (void)fill_level;

    FeatureContext ctx;
    ctx.pc = trigger.ip;
    ctx.addr = pf_paddr;                    // physical: SLP is post-L1D
    ctx.first_access = page_buffer_.firstAccess(pf_paddr);
    ctx.last_pcs_hash = pc_history_.hash();
    ctx.flp_pred = trigger.offchip_pred;    // FLP output bit of the demand
    pc_history_.push(trigger.ip);

    meta.num_features = static_cast<std::uint8_t>(features_.size());
    for (std::size_t t = 0; t < features_.size(); ++t) {
        meta.index[t] = perceptron_.indexFor(
            static_cast<unsigned>(t), featureValue(features_[t], ctx));
    }
    int sum = perceptron_.predict(meta.index.data(), meta.num_features);
    meta.confidence = static_cast<std::int16_t>(sum);
    meta.predicted_offchip = sum >= params_.tau_pref;
    meta.valid = true;

    if (meta.predicted_offchip) {
        if (params_.probation_period != 0
            && ++probation_counter_ >= params_.probation_period) {
            // Let a sampled candidate through so its completion can
            // retrain the weights if the phase changed.
            probation_counter_ = 0;
            probation_->add();
            return true;
        }
        // Predicted to be served from DRAM → likely useless: discard.
        dropped_->add();
        return false;
    }
    allowed_->add();
    return true;
}

void
Slp::onPrefetchFill(const Packet &pkt)
{
    if (!pkt.pred_meta.valid)
        return;
    bool went_offchip = pkt.served_by == MemLevel::Dram;
    (pkt.pred_meta.predicted_offchip == went_offchip ? train_correct_
                                                     : train_wrong_)
        ->add();
    perceptron_.train(pkt.pred_meta.index.data(), pkt.pred_meta.num_features,
                      pkt.pred_meta.confidence, went_offchip,
                      params_.tau_pref);
}

// tlpsim:endhot

StorageBudget
Slp::storage() const
{
    StorageBudget b;
    b.merge(perceptron_.storage(), "");
    b.merge(page_buffer_.storage(), "");
    return b;
}

namespace
{

const KnobSchema &
slpKnobs()
{
    static const KnobSchema schema = [] {
        const Slp::Params d;
        return KnobSchema{
            {"name", d.name, "stat-counter prefix (per-cpu by default)"},
            {"tau_pref", d.tau_pref,
             "drop threshold: sum >= tau_pref predicts off-chip"},
            {"training_threshold", d.training_threshold,
             "train while |sum| is below this magnitude"},
            {"use_flp_feature", d.use_flp_feature,
             "feed the FLP confidence output in as a feature"},
            {"table_scale_shift", d.table_scale_shift,
             "left-shift on perceptron table sizes"},
            {"probation_period", d.probation_period,
             "issue every Nth predicted-off-chip prefetch anyway (0 = "
             "never)"},
        };
    }();
    return schema;
}

} // namespace

void
detail::registerSlpFilter()
{
    FilterRegistry::instance().add(
        "slp", slpKnobs(), [](const Config &cfg, StatGroup *stats) {
            Knobs k(cfg, slpKnobs(), "prefetch filter 'slp'");
            Slp::Params p;
            p.name = k.str("name");
            p.tau_pref = k.i32("tau_pref");
            p.training_threshold = k.i32("training_threshold");
            p.use_flp_feature = k.flag("use_flp_feature");
            p.table_scale_shift = k.u32("table_scale_shift");
            p.probation_period = k.u32("probation_period");
            return std::make_unique<Slp>(p, stats);
        });
}

} // namespace tlpsim
