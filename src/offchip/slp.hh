/**
 * @file
 * Second Level Perceptron (SLP): off-chip prediction as an L1D prefetch
 * filter — the paper's second contribution (§IV-B).
 *
 * SLP sits beside the L1D and is consulted for every prefetch candidate
 * the L1D prefetcher emits. It reuses the five legacy Hermes features,
 * computed over *physical* addresses (SLP lives after translation), plus
 * the novel leveling feature combining the FLP output bit of the demand
 * access that triggered the prefetch with the prefetched block's line
 * offset in its physical page. A candidate whose perceptron sum clears
 * τ_pref is predicted to be served from DRAM — and, per the paper's
 * Finding 4, overwhelmingly useless — so it is discarded.
 *
 * Training happens when an issued prefetch completes, against the true
 * "served from DRAM" outcome carried by the fill (metadata parked in the
 * L1D MSHR, Table II).
 */

#ifndef TLPSIM_OFFCHIP_SLP_HH
#define TLPSIM_OFFCHIP_SLP_HH

#include <string>

#include "common/stats.hh"
#include "offchip/feature.hh"
#include "offchip/page_buffer.hh"
#include "offchip/perceptron.hh"
#include "prefetch/prefetcher.hh"

namespace tlpsim
{

class Slp : public PrefetchFilter
{
  public:
    struct Params
    {
        std::string name = "slp";
        /** Drop threshold: sum ≥ τ_pref predicts off-chip → discard. */
        int tau_pref = 8;
        int training_threshold = 30;
        /** Fig. 15 TSP variants disable the FLP-output feature. */
        bool use_flp_feature = true;
        unsigned table_scale_shift = 0;
        /**
         * Issue every Nth predicted-off-chip prefetch anyway (0 = never).
         * The paper trains SLP only on *completed* prefetches, so a pure
         * drop policy can never unlearn a stale positive prediction once a
         * program phase changes; this deterministic probation keeps the
         * training signal alive at a bounded bandwidth cost.
         */
        unsigned probation_period = 32;
    };

    Slp(const Params &p, StatGroup *stats);

    const char *name() const override { return "slp"; }

    bool allow(const PrefetchTrigger &trigger, Addr pf_vaddr, Addr pf_paddr,
               std::uint32_t pf_metadata, std::uint8_t &fill_level,
               PredictionMeta &meta) override;

    void onPrefetchFill(const Packet &pkt) override;

    StorageBudget storage() const override;

    const Params &params() const { return params_; }

  private:
    Params params_;
    std::vector<FeatureKind> features_;
    HashedPerceptron perceptron_;
    PageBuffer page_buffer_;
    LoadPcHistory pc_history_;

    unsigned probation_counter_ = 0;
    Counter *allowed_;
    Counter *dropped_;
    Counter *probation_;
    Counter *train_correct_;
    Counter *train_wrong_;
};

} // namespace tlpsim

#endif // TLPSIM_OFFCHIP_SLP_HH
