#include "offchip/offchip_predictor.hh"

#include "common/config.hh"
#include "prefetch/factory.hh"

namespace tlpsim
{

const char *
toString(OffchipPolicy p)
{
    switch (p) {
      case OffchipPolicy::None: return "none";
      case OffchipPolicy::Immediate: return "immediate";
      case OffchipPolicy::AlwaysDelay: return "always_delay";
      case OffchipPolicy::Selective: return "selective";
    }
    return "?";
}

OffchipPolicy
offchipPolicyFromString(const std::string &s)
{
    for (OffchipPolicy p :
         {OffchipPolicy::None, OffchipPolicy::Immediate,
          OffchipPolicy::AlwaysDelay, OffchipPolicy::Selective}) {
        if (s == toString(p))
            return p;
    }
    throw ConfigError("unknown off-chip policy '" + s
                      + "'; valid names: none, immediate, always_delay, "
                        "selective");
}

OffChipPredictor::OffChipPredictor(const Params &p, StatGroup *stats)
    : params_(p), features_(legacyHermesFeatures()),
      perceptron_(p.name, featureTables(features_, p.table_scale_shift),
                  p.training_threshold),
      page_buffer_({64, 4, p.name + ".page_buffer"}),
      pred_offchip_(stats->counter(p.name + ".pred_offchip")),
      pred_onchip_(stats->counter(p.name + ".pred_onchip")),
      spec_now_(stats->counter(p.name + ".spec_now")),
      delayed_(stats->counter(p.name + ".delayed")),
      train_correct_(stats->counter(p.name + ".train_correct")),
      train_wrong_(stats->counter(p.name + ".train_wrong"))
{
}

// predictLoad/train run once per load (the paper's per-access FLP
// consult-and-train path); no allocation allowed here
// (tools/hotpath_lint.py).
// tlpsim:hot

OffChipPredictor::Decision
OffChipPredictor::predictLoad(Addr ip, Addr vaddr)
{
    Decision d;
    if (params_.policy == OffchipPolicy::None)
        return d;

    FeatureContext ctx;
    ctx.pc = ip;
    ctx.addr = vaddr;
    ctx.first_access = page_buffer_.firstAccess(vaddr);
    ctx.last_pcs_hash = pc_history_.hash();
    pc_history_.push(ip);

    d.meta.num_features = static_cast<std::uint8_t>(features_.size());
    for (std::size_t t = 0; t < features_.size(); ++t) {
        d.meta.index[t] = perceptron_.indexFor(
            static_cast<unsigned>(t), featureValue(features_[t], ctx));
    }
    int sum = perceptron_.predict(d.meta.index.data(),
                                  d.meta.num_features);
    d.meta.confidence = static_cast<std::int16_t>(sum);
    d.meta.valid = true;

    switch (params_.policy) {
      case OffchipPolicy::Immediate:
        d.spec_now = sum >= params_.tau_high;
        d.predicted_offchip = d.spec_now;
        break;
      case OffchipPolicy::AlwaysDelay:
        d.delayed_flag = sum >= params_.tau_low;
        d.predicted_offchip = d.delayed_flag;
        break;
      case OffchipPolicy::Selective:
        if (sum >= params_.tau_high) {
            d.spec_now = true;
        } else if (sum >= params_.tau_low) {
            d.delayed_flag = true;
        }
        d.predicted_offchip = d.spec_now || d.delayed_flag;
        break;
      case OffchipPolicy::None:
        break;
    }
    d.meta.predicted_offchip = d.predicted_offchip;

    (d.predicted_offchip ? pred_offchip_ : pred_onchip_)->add();
    if (d.spec_now)
        spec_now_->add();
    if (d.delayed_flag)
        delayed_->add();
    return d;
}

void
OffChipPredictor::train(const PredictionMeta &meta, bool went_offchip)
{
    if (!meta.valid)
        return;
    (meta.predicted_offchip == went_offchip ? train_correct_ : train_wrong_)
        ->add();
    perceptron_.train(meta.index.data(), meta.num_features, meta.confidence,
                      went_offchip, predictThreshold());
}

// tlpsim:endhot

StorageBudget
OffChipPredictor::storage() const
{
    StorageBudget b;
    b.merge(perceptron_.storage(), "");
    b.merge(page_buffer_.storage(), "");
    return b;
}

namespace
{

/** Both off-chip predictors share one knob set; "flp" and "hermes"
 *  differ only in the declared defaults. */
KnobSchema
offchipKnobSchema(const OffChipPredictor::Params &d)
{
    return KnobSchema{
        {"name", d.name, "stat-counter prefix (per-cpu by default)"},
        {"policy", toString(d.policy),
         "speculative-request policy: immediate, always_delay, selective",
         {"none", "immediate", "always_delay", "selective"}},
        {"tau_high", d.tau_high,
         "immediate-fire threshold (Hermes tau_act / FLP tau_high)"},
        {"tau_low", d.tau_low,
         "predicted-off-chip threshold (FLP tau_low)"},
        {"training_threshold", d.training_threshold,
         "train while |sum| is below this magnitude"},
        {"table_scale_shift", d.table_scale_shift,
         "left-shift on perceptron table sizes (Fig. 17 \"+7KB Hermes\")"},
    };
}

const KnobSchema &
flpKnobs()
{
    static const KnobSchema schema
        = offchipKnobSchema(OffChipPredictor::Params{});
    return schema;
}

const KnobSchema &
hermesKnobs()
{
    static const KnobSchema schema = [] {
        OffChipPredictor::Params d;
        d.policy = OffchipPolicy::Immediate;
        d.tau_high = 4;
        return offchipKnobSchema(d);
    }();
    return schema;
}

OffChipPredictor::Params
offchipParamsFromKnobs(const Knobs &k)
{
    OffChipPredictor::Params p;
    p.name = k.str("name");
    p.policy = offchipPolicyFromString(k.str("policy"));
    p.tau_high = k.i32("tau_high");
    p.tau_low = k.i32("tau_low");
    p.training_threshold = k.i32("training_threshold");
    p.table_scale_shift = k.u32("table_scale_shift");
    return p;
}

} // namespace

void
detail::registerOffchipPredictors()
{
    // The paper's FLP: selective-delay defaults.
    OffchipRegistry::instance().add(
        "flp", flpKnobs(), [](const Config &cfg, StatGroup *stats) {
            Knobs k(cfg, flpKnobs(), "off-chip predictor 'flp'");
            return std::make_unique<OffChipPredictor>(
                offchipParamsFromKnobs(k), stats);
        });
    // Hermes (Bera et al., MICRO 2022): one aggressive activation
    // threshold, always-immediate speculative requests.
    OffchipRegistry::instance().add(
        "hermes", hermesKnobs(), [](const Config &cfg, StatGroup *stats) {
            Knobs k(cfg, hermesKnobs(), "off-chip predictor 'hermes'");
            return std::make_unique<OffChipPredictor>(
                offchipParamsFromKnobs(k), stats);
        });
}

} // namespace tlpsim
