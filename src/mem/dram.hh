/**
 * @file
 * DDR4-like memory controller (Table III).
 *
 * Models what matters to the paper's experiments: bank-level row-buffer
 * locality (tRP = tRCD = tCAS = 24 cycles), a shared data bus whose burst
 * occupancy enforces the configured bandwidth (12.8 GB/s single-core,
 * 3.2 GB/s per core multi-core, swept 1.6–25.6 in Fig. 16), FR-FCFS
 * scheduling with write-drain bursts, and the speculative-request path
 * Hermes/FLP use: speculative reads fetch a line into a small per-core
 * buffer near the controller; a later demand read to the same line merges
 * with the in-flight access or consumes the buffered line instead of
 * paying a second DRAM transaction.
 */

#ifndef TLPSIM_MEM_DRAM_HH
#define TLPSIM_MEM_DRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/packet.hh"

namespace tlpsim
{

class DramController : public MemoryBackend
{
  public:
    struct Params
    {
        std::string name = "dram";
        unsigned banks = 8;
        unsigned blocks_per_row = 128;   ///< 8 KiB row buffer
        unsigned t_rp = 24;
        unsigned t_rcd = 24;
        unsigned t_cas = 24;
        /** Core cycles the data bus is busy per 64 B transfer. */
        unsigned burst_cycles = 19;      ///< 12.8 GB/s at 3.8 GHz
        unsigned rq_size = 64;
        unsigned wq_size = 64;
        /** Speculative-line buffer entries per core (Hermes path). */
        unsigned spec_buffer_entries = 64;
        unsigned num_cores = 1;
    };

    DramController(const Params &p, StatGroup *stats);

    bool sendRead(const Packet &pkt) override;
    bool sendWrite(const Packet &pkt) override;
    bool probe(Addr) const override { return false; }
    void tick(Cycle now) override;

    /** True iff a completed speculative line for @p paddr is buffered. */
    bool specBufferHolds(std::uint8_t core, Addr paddr) const;

    std::uint64_t transactions() const { return txn_->value(); }

    const Params &params() const { return params_; }

  private:
    struct QueueEntry
    {
        Packet pkt;
        Cycle arrival;
        std::vector<Packet> waiters;   ///< merged demand reads
    };

    struct Bank
    {
        Cycle ready_at = 0;
        Addr open_row = ~Addr{0};
    };

    struct InFlight
    {
        QueueEntry entry;
        Cycle done;
    };

    /** Per-core speculative line buffer entry. */
    struct SpecLine
    {
        Addr block = 0;
        bool ready = false;
        bool valid = false;
        Cycle fetched_at = 0;
    };

    unsigned bankOf(Addr paddr) const;
    Addr rowOf(Addr paddr) const;

    /** Pick the next read/write with FR-FCFS and start it. */
    void scheduleOne(Cycle now, std::vector<QueueEntry> &queue,
                     bool is_write);

    void completeReads(Cycle now);

    SpecLine *findSpecLine(std::uint8_t core, Addr block);
    SpecLine *allocSpecLine(std::uint8_t core, Addr block, Cycle now);

    /** Waiter storage for a new read entry, recycled from completed
     *  ones so steady-state merges never touch the allocator. */
    std::vector<Packet> takeWaiterStorage();

    Params params_;
    // The queues are vectors (reserved to their Params bound), not
    // deques: FR-FCFS scans by index and erases in the middle anyway,
    // and libstdc++'s deque frees/reallocates nodes as entries cycle.
    std::vector<QueueEntry> read_q_;
    std::vector<QueueEntry> write_q_;
    std::vector<InFlight> in_flight_;
    /** Initial per-vector waiter capacity (cf. Cache::kWaiterReserve). */
    static constexpr std::size_t kWaiterReserve = 8;
    /** Completed entries' waiter vectors, kept for their capacity. The
     *  pool is filled to the occupancy bound at construction. */
    std::vector<std::vector<Packet>> waiter_pool_;
    std::vector<Bank> banks_;
    std::vector<std::vector<SpecLine>> spec_buffer_;   ///< [core][entry]
    Cycle bus_free_at_ = 0;
    bool draining_writes_ = false;

    Counter *txn_;
    Counter *reads_;
    Counter *writes_;
    Counter *row_hits_;
    Counter *row_misses_;
    Counter *spec_issued_;
    Counter *spec_consumed_;
    Counter *spec_merged_inflight_;
    Counter *spec_wasted_;
    Counter *spec_dropped_full_;
    Counter *rq_merges_;
};

} // namespace tlpsim

#endif // TLPSIM_MEM_DRAM_HH
