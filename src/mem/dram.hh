/**
 * @file
 * DDR4-like memory controller (Table III).
 *
 * Models what matters to the paper's experiments: bank-level row-buffer
 * locality (tRP = tRCD = tCAS = 24 cycles), a shared data bus whose burst
 * occupancy enforces the configured bandwidth (12.8 GB/s single-core,
 * 3.2 GB/s per core multi-core, swept 1.6–25.6 in Fig. 16), FR-FCFS
 * scheduling with write-drain bursts, and the speculative-request path
 * Hermes/FLP use: speculative reads fetch a line into a small per-core
 * buffer near the controller; a later demand read to the same line merges
 * with the in-flight access or consumes the buffered line instead of
 * paying a second DRAM transaction.
 */

#ifndef TLPSIM_MEM_DRAM_HH
#define TLPSIM_MEM_DRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/packet.hh"

namespace tlpsim
{

class DramController : public MemoryBackend
{
  public:
    struct Params
    {
        std::string name = "dram";
        unsigned banks = 8;
        unsigned blocks_per_row = 128;   ///< 8 KiB row buffer
        unsigned t_rp = 24;
        unsigned t_rcd = 24;
        unsigned t_cas = 24;
        /** Core cycles the data bus is busy per 64 B transfer. */
        unsigned burst_cycles = 19;      ///< 12.8 GB/s at 3.8 GHz
        unsigned rq_size = 64;
        unsigned wq_size = 64;
        /** Speculative-line buffer entries per core (Hermes path). */
        unsigned spec_buffer_entries = 64;
        unsigned num_cores = 1;
    };

    DramController(const Params &p, StatGroup *stats);

    bool sendRead(const Packet &pkt) override;
    bool sendWrite(const Packet &pkt) override;
    bool probe(Addr) const override { return false; }
    void tick(Cycle now) override;

    /** Per-cycle entry point for the simulator loop: skips tick() while
     *  the controller is provably inert (no completion due, and either
     *  nothing queued or the bus gate / all-banks-busy quiet window
     *  holds), so a waiting cycle costs one compare instead of a
     *  virtual call plus three early-return checks. */
    void
    tickIfDue(Cycle now)
    {
        if (now >= next_tick_)
            tick(now);
    }

    /**
     * Earliest cycle strictly after @p now at which a *full* tick (one
     * reaching the drain-policy update and the scheduler) runs — the
     * same watermark tickIfDue() uses, kCycleNever when fully drained.
     * Deliberately no tighter (see the definition): the drain flag is
     * hysteresis with memory, so an idle skip must not jump past any
     * full tick or skip-on and skip-off runs diverge. Valid after
     * tick(now).
     */
    Cycle nextEventCycle(Cycle now) const;

    /** True iff a completed speculative line for @p paddr is buffered. */
    bool specBufferHolds(std::uint8_t core, Addr paddr) const;

    std::uint64_t transactions() const { return txn_->value(); }

    const Params &params() const { return params_; }

  private:
    struct QueueEntry
    {
        Packet pkt;
        Cycle arrival;
        std::vector<Packet> waiters;   ///< merged demand reads
    };

    struct Bank
    {
        Cycle ready_at = 0;
        Addr open_row = ~Addr{0};
    };

    struct InFlight
    {
        QueueEntry entry;
        Cycle done;
    };

    /** Per-core speculative line buffer entry. */
    struct SpecLine
    {
        Addr block = 0;
        bool ready = false;
        bool valid = false;
        Cycle fetched_at = 0;
    };

    unsigned bankOf(Addr paddr) const;
    Addr rowOf(Addr paddr) const;

    /** Pick the next read/write with FR-FCFS and start it. Returns
     *  kCycleNever when a request issued (or the queue is empty);
     *  otherwise the earliest ready_at among the queue's banks — the
     *  first cycle a re-scan could pick anything. */
    Cycle scheduleOne(Cycle now, std::vector<QueueEntry> &queue,
                      bool is_write);

    void completeReads(Cycle now);

    SpecLine *findSpecLine(std::uint8_t core, Addr block);
    SpecLine *allocSpecLine(std::uint8_t core, Addr block, Cycle now);

    /** Waiter storage for a new read entry, recycled from completed
     *  ones so steady-state merges never touch the allocator. */
    std::vector<Packet> takeWaiterStorage();

    Params params_;
    // The queues are vectors (reserved to their Params bound), not
    // deques: FR-FCFS scans by index and erases in the middle anyway,
    // and libstdc++'s deque frees/reallocates nodes as entries cycle.
    std::vector<QueueEntry> read_q_;
    std::vector<QueueEntry> write_q_;
    std::vector<InFlight> in_flight_;
    /** Initial per-vector waiter capacity (cf. Cache::kWaiterReserve). */
    static constexpr std::size_t kWaiterReserve = 8;
    /** Completed entries' waiter vectors, kept for their capacity. The
     *  pool is filled to the occupancy bound at construction. */
    std::vector<std::vector<Packet>> waiter_pool_;
    std::vector<Bank> banks_;
    std::vector<std::vector<SpecLine>> spec_buffer_;   ///< [core][entry]
    Cycle bus_free_at_ = 0;
    bool draining_writes_ = false;
    /** Address-mapping shifts, fixed at construction (bankOf/rowOf run
     *  inside the FR-FCFS scan loops). */
    unsigned bank_shift_ = 0;
    unsigned row_shift_ = 0;
    /** Quiet watermark: before this cycle a scheduling scan cannot pick
     *  (every queued request's bank is busy and no new entries arrived).
     *  Set from a fruitless scan's bank horizon, cleared on enqueue and
     *  after every issue. Ticks inside the window skip the scan — they
     *  would change no state (the drain-policy update is a pure function
     *  of queue sizes, which such ticks leave alone). */
    Cycle sched_quiet_until_ = 0;
    /** Exact earliest in-flight completion (kCycleNever when none):
     *  pushed down on issue, recomputed by every completion sweep.
     *  Lets completeReads() skip its scan on the vast majority of
     *  cycles and nextEventCycle() avoid walking in_flight_. */
    Cycle next_done_ = kCycleNever;
    /** Quiet watermark for tickIfDue(): min of the next completion and
     *  the first cycle the scheduler could act (bus-gate clearance and
     *  the sched_quiet_until_ window), recomputed after every tick and
     *  dropped to 0 by every enqueue. */
    Cycle next_tick_ = 0;

    /** Recompute next_tick_ from maintained state (end of tick()). */
    Cycle computeNextTick(Cycle now) const;

    Counter *txn_;
    Counter *reads_;
    Counter *writes_;
    Counter *row_hits_;
    Counter *row_misses_;
    Counter *spec_issued_;
    Counter *spec_consumed_;
    Counter *spec_merged_inflight_;
    Counter *spec_wasted_;
    Counter *spec_dropped_full_;
    Counter *rq_merges_;
};

} // namespace tlpsim

#endif // TLPSIM_MEM_DRAM_HH
