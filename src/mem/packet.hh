/**
 * @file
 * Memory request packets and the unit interfaces they flow between.
 *
 * Packets are value types: every queue and MSHR stores its own copy, so
 * there is no shared-ownership lifetime to manage. Requests flow *down*
 * (core → L1D → L2 → LLC → DRAM) through MemoryBackend::send*() and
 * responses flow *up* by invoking the requestor's memReturn() with a copy
 * carrying the final serve level.
 */

#ifndef TLPSIM_MEM_PACKET_HH
#define TLPSIM_MEM_PACKET_HH

#include <array>
#include <cstdint>

#include "common/types.hh"

namespace tlpsim
{

/** Max feature tables any perceptron predictor in the system uses
 *  (PPF is the largest at 9). */
constexpr unsigned kMaxFeatures = 10;

/**
 * Snapshot of a perceptron prediction, stored with the request so the
 * predictor can train on the true outcome when the request completes.
 * This is the paper's "Load Queue metadata" / "L1D MSHR metadata"
 * (Table II): hashed feature indices, confidence, and the prediction bit.
 */
struct PredictionMeta
{
    std::array<std::uint16_t, kMaxFeatures> index{};
    std::uint8_t num_features = 0;
    std::int16_t confidence = 0;
    bool predicted_offchip = false;
    bool valid = false;
};

/** One memory request (or its response). */
struct Packet
{
    Addr vaddr = 0;    ///< block-aligned virtual address
    Addr paddr = 0;    ///< block-aligned physical address
    Addr ip = 0;       ///< PC of the triggering instruction
    AccessType type = AccessType::Load;
    std::uint8_t core = 0;
    /** Lowest hierarchy level that allocates the fill (1=L1, 2=L2, 3=LLC). */
    std::uint8_t fill_level = 1;
    /** Hermes/FLP speculative DRAM request (does not fill caches). */
    bool spec_dram = false;
    /** FLP low-confidence tag: issue the speculative request on L1D miss. */
    bool delayed_offchip_flag = false;
    /** FLP/Hermes output bit, consumed by SLP as a feature. */
    bool offchip_pred = false;
    /** Level that ultimately provided the data. */
    MemLevel served_by = MemLevel::None;
    Cycle birth = 0;
    /** Who to notify on completion (nullptr = fire and forget). */
    class MemoryClient *requestor = nullptr;
    /** Requestor-private tag (e.g. load-queue index). */
    std::uint64_t req_id = 0;
    /** Prefetcher-private metadata (e.g. SPP signature/confidence). */
    std::uint32_t pf_metadata = 0;
    /** SLP training metadata for L1D prefetches (paper's MSHR metadata). */
    PredictionMeta pred_meta;

    bool isDemand() const
    {
        return type == AccessType::Load || type == AccessType::Rfo;
    }
};

/**
 * Observer for Hermes/FLP speculative DRAM issues (the Fig. 4 oracle).
 * A direct virtual call replaces the old std::function hook: the probe
 * fires on the on_spec_issued hot path, where the extra indirection and
 * potential allocation of std::function showed up in profiles (see
 * ROADMAP).
 */
class SpecIssueObserver
{
  public:
    virtual ~SpecIssueObserver() = default;

    /** @p pkt is the speculative request; pkt.core identifies the core. */
    virtual void onSpecIssued(const Packet &pkt) = 0;
};

/** Receives completions for requests it issued. */
class MemoryClient
{
  public:
    virtual ~MemoryClient() = default;

    /** Called exactly once per completed read-like request copy. */
    virtual void memReturn(const Packet &pkt) = 0;
};

/** Anything a cache (or core) can send requests to. */
class MemoryBackend
{
  public:
    virtual ~MemoryBackend() = default;

    /** Enqueue a demand/translation read. False = queue full, retry. */
    virtual bool sendRead(const Packet &pkt) = 0;

    /** Enqueue a writeback/store. False = queue full, retry. */
    virtual bool sendWrite(const Packet &pkt) = 0;

    /** Enqueue a prefetch (lower priority). False = queue full. */
    virtual bool sendPrefetch(const Packet &pkt) { return sendRead(pkt); }

    /** May sendPrefetch() succeed right now? Capacity hint only: false
     *  means sendPrefetch is guaranteed to fail this cycle, so a caller
     *  retrying a blocked prefetch can skip building the packet. True
     *  promises nothing (the default suits backends with merge paths). */
    virtual bool canAcceptPrefetch() const { return true; }

    /** Tag-array presence check with no state change (oracle probes). */
    virtual bool probe(Addr paddr) const = 0;

    /** Advance one core clock. */
    virtual void tick(Cycle now) = 0;
};

} // namespace tlpsim

#endif // TLPSIM_MEM_PACKET_HH
