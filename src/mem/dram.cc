#include "mem/dram.hh"

#include <algorithm>
#include <cassert>

#include "common/bitops.hh"

namespace tlpsim
{

DramController::DramController(const Params &p, StatGroup *stats)
    : params_(p), banks_(p.banks),
      spec_buffer_(p.num_cores,
                   std::vector<SpecLine>(p.spec_buffer_entries)),
      txn_(stats->counter(p.name + ".transactions")),
      reads_(stats->counter(p.name + ".reads")),
      writes_(stats->counter(p.name + ".writes")),
      row_hits_(stats->counter(p.name + ".row_hit")),
      row_misses_(stats->counter(p.name + ".row_miss")),
      spec_issued_(stats->counter(p.name + ".spec_issued")),
      spec_consumed_(stats->counter(p.name + ".spec_consumed")),
      spec_merged_inflight_(stats->counter(p.name + ".spec_merged_inflight")),
      spec_wasted_(stats->counter(p.name + ".spec_wasted")),
      spec_dropped_full_(stats->counter(p.name + ".spec_dropped_full")),
      rq_merges_(stats->counter(p.name + ".rq_merges"))
{
    assert(isPowerOfTwo(p.banks));
    assert(isPowerOfTwo(p.blocks_per_row));
    bank_shift_ = log2i(p.blocks_per_row);
    row_shift_ = bank_shift_ + log2i(p.banks);
    read_q_.reserve(p.rq_size);
    write_q_.reserve(p.wq_size);
    in_flight_.reserve(p.rq_size);

    // Pre-populate the waiter pool to the circulation bound: every live
    // read entry (queued or in flight) holds one vector, the read queue
    // is gated at rq_size, and the issue gating in tick() keeps the
    // in-flight list shallow. Pre-filling means takeWaiterStorage()
    // never constructs fresh storage on the per-cycle path, even the
    // first time the controller reaches a new occupancy high-water mark.
    const std::size_t pool = std::size_t{p.rq_size} + 8;
    waiter_pool_.reserve(pool);
    for (std::size_t i = 0; i < pool; ++i) {
        waiter_pool_.emplace_back();
        waiter_pool_.back().reserve(kWaiterReserve);
    }
}

// Everything below runs on the per-cycle path. tools/hotpath_lint.py
// bans allocation and unwaived container growth here;
// tests/test_hotpath_alloc.cpp checks the same dynamically.
// tlpsim:hot

std::vector<Packet>
DramController::takeWaiterStorage()
{
    if (waiter_pool_.empty())
        return {};
    std::vector<Packet> v = std::move(waiter_pool_.back());
    waiter_pool_.pop_back();
    return v;
}

unsigned
DramController::bankOf(Addr paddr) const
{
    // column (low) | bank | row (high): an 8 KiB stream stays in one row.
    return static_cast<unsigned>(
        (blockNumber(paddr) >> bank_shift_) & (params_.banks - 1));
}

Addr
DramController::rowOf(Addr paddr) const
{
    return blockNumber(paddr) >> row_shift_;
}

DramController::SpecLine *
DramController::findSpecLine(std::uint8_t core, Addr block)
{
    for (auto &line : spec_buffer_[core]) {
        if (line.valid && line.block == block)
            return &line;
    }
    return nullptr;
}

DramController::SpecLine *
DramController::allocSpecLine(std::uint8_t core, Addr block, Cycle now)
{
    auto &buf = spec_buffer_[core];
    SpecLine *victim = nullptr;
    for (auto &line : buf) {
        if (!line.valid)
            return &(line = SpecLine{block, false, true, now});
        // Only completed-and-unconsumed lines can be replaced.
        if (line.ready && (victim == nullptr
                           || line.fetched_at < victim->fetched_at)) {
            victim = &line;
        }
    }
    if (victim == nullptr)
        return nullptr;   // all entries still in flight
    spec_wasted_->add();  // evicting a fetched line no demand ever used
    *victim = SpecLine{block, false, true, now};
    return victim;
}

bool
DramController::sendRead(const Packet &pkt)
{
    Addr block = blockNumber(pkt.paddr);

    if (pkt.spec_dram) {
        // Hermes/FLP speculative fetch.
        if (findSpecLine(pkt.core, block) != nullptr)
            return true;   // already fetched or in flight: coalesce
        if (read_q_.size() >= params_.rq_size) {
            spec_dropped_full_->add();
            return true;   // speculation is best-effort: drop, don't stall
        }
        SpecLine *line = allocSpecLine(pkt.core, block, pkt.birth);
        if (line == nullptr) {
            spec_dropped_full_->add();
            return true;
        }
        spec_issued_->add();
        read_q_.push_back(   // tlpsim:cap (reserved rq_size)
            {pkt, pkt.birth, takeWaiterStorage()});
        sched_quiet_until_ = 0;   // new entry: its bank may be idle
        next_tick_ = 0;
        return true;
    }

    // Demand/prefetch/translation read: try the speculative buffer first.
    if (pkt.isDemand()) {
        if (SpecLine *line = findSpecLine(pkt.core, block)) {
            if (line->ready) {
                // Line already fetched by the speculative request: serve
                // from the buffer, no new DRAM transaction.
                line->valid = false;
                spec_consumed_->add();
                Packet resp = pkt;
                resp.served_by = MemLevel::Dram;
                if (resp.requestor != nullptr)
                    resp.requestor->memReturn(resp);
                return true;
            }
            // In flight: ride along with the speculative access.
            for (auto &e : read_q_) {
                if (e.pkt.spec_dram && e.pkt.core == pkt.core
                    && blockNumber(e.pkt.paddr) == block) {
                    e.waiters.push_back(pkt);   // tlpsim:cap (pooled)
                    spec_merged_inflight_->add();
                    return true;
                }
            }
            for (auto &f : in_flight_) {
                if (f.entry.pkt.spec_dram && f.entry.pkt.core == pkt.core
                    && blockNumber(f.entry.pkt.paddr) == block) {
                    f.entry.waiters.push_back(pkt);   // tlpsim:cap (pooled)
                    spec_merged_inflight_->add();
                    return true;
                }
            }
            // Buffer said in-flight but the access is gone (shouldn't
            // happen); fall through to a regular access.
            line->valid = false;
        }
    }

    // Merge with a same-block read already queued (cross-core sharing is
    // impossible in multiprogrammed mode, but same-core LLC miss + spec
    // races are).
    for (auto &e : read_q_) {
        if (!e.pkt.spec_dram && blockNumber(e.pkt.paddr) == block
            && e.pkt.core == pkt.core) {
            e.waiters.push_back(pkt);   // tlpsim:cap (pooled)
            rq_merges_->add();
            return true;
        }
    }

    if (read_q_.size() >= params_.rq_size)
        return false;
    read_q_.push_back(   // tlpsim:cap (reserved rq_size)
        {pkt, pkt.birth, takeWaiterStorage()});
    sched_quiet_until_ = 0;   // new entry: its bank may be idle
    next_tick_ = 0;
    return true;
}

bool
DramController::sendWrite(const Packet &pkt)
{
    if (write_q_.size() >= params_.wq_size)
        return false;
    // Writes complete silently and never collect waiters, so the empty
    // vector here never allocates.
    write_q_.push_back({pkt, pkt.birth, {}});   // tlpsim:cap (reserved)
    sched_quiet_until_ = 0;   // new entry: its bank may be idle
    next_tick_ = 0;
    return true;
}

Cycle
DramController::scheduleOne(Cycle now, std::vector<QueueEntry> &queue,
                            bool is_write)
{
    if (queue.empty())
        return kCycleNever;

    // FR-FCFS: oldest row-buffer hit whose bank is ready; else the oldest
    // request with a ready bank.
    std::size_t pick = queue.size();
    Cycle bank_horizon = kCycleNever;
    for (std::size_t i = 0; i < queue.size(); ++i) {
        const Bank &bank = banks_[bankOf(queue[i].pkt.paddr)];
        if (bank.ready_at > now) {
            bank_horizon = std::min(bank_horizon, bank.ready_at);
            continue;
        }
        if (bank.open_row == rowOf(queue[i].pkt.paddr)) {
            pick = i;
            break;
        }
        if (pick == queue.size())
            pick = i;
    }
    if (pick == queue.size())
        return bank_horizon;

    QueueEntry entry = std::move(queue[pick]);
    queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(pick));

    Bank &bank = banks_[bankOf(entry.pkt.paddr)];
    Addr row = rowOf(entry.pkt.paddr);
    Cycle access_lat;
    bool row_hit = bank.open_row == row;
    if (row_hit) {
        access_lat = params_.t_cas;
        row_hits_->add();
    } else {
        access_lat = params_.t_rp + params_.t_rcd + params_.t_cas;
        row_misses_->add();
        bank.open_row = row;
    }

    Cycle data_start = std::max(now + access_lat, bus_free_at_);
    Cycle done = data_start + params_.burst_cycles;
    bus_free_at_ = done;
    // Row hits pipeline column accesses at the burst rate (tCCD-style);
    // a row conflict occupies the bank until the transfer completes.
    bank.ready_at = row_hit ? now + params_.burst_cycles : done;

    txn_->add();
    if (is_write) {
        writes_->add();
        return kCycleNever;   // writes complete silently
    }
    reads_->add();
    in_flight_.push_back(   // tlpsim:cap (reserved rq_size)
        {std::move(entry), done});
    next_done_ = std::min(next_done_, done);
    return kCycleNever;
}

void
DramController::completeReads(Cycle now)
{
    if (now < next_done_)
        return;   // nothing in flight completes this cycle

    Cycle next = kCycleNever;
    for (std::size_t i = 0; i < in_flight_.size();) {
        if (in_flight_[i].done > now) {
            next = std::min(next, in_flight_[i].done);
            ++i;
            continue;
        }
        InFlight f = std::move(in_flight_[i]);
        in_flight_[i] = std::move(in_flight_.back());
        in_flight_.pop_back();

        Packet &p = f.entry.pkt;
        if (p.spec_dram) {
            if (SpecLine *line
                = findSpecLine(p.core, blockNumber(p.paddr))) {
                line->ready = true;
            }
        }
        p.served_by = MemLevel::Dram;
        if (p.requestor != nullptr)
            p.requestor->memReturn(p);
        for (Packet &w : f.entry.waiters) {
            w.served_by = MemLevel::Dram;
            if (w.requestor != nullptr)
                w.requestor->memReturn(w);
            // A demand waiter on a speculative access consumed the line.
            if (p.spec_dram) {
                if (SpecLine *line
                    = findSpecLine(p.core, blockNumber(p.paddr))) {
                    line->valid = false;
                    spec_consumed_->add();
                }
            }
        }
        // Keep the waiter vector's capacity for the next read entry.
        f.entry.waiters.clear();
        waiter_pool_.push_back(   // tlpsim:cap (reserved rq_size)
            std::move(f.entry.waiters));
    }
    next_done_ = next;
}

void
DramController::tick(Cycle now)
{
    completeReads(now);

    // Issue gating: allow at most one data burst to be reserved beyond
    // the current one. This keeps CAS/burst pipelining (row hits stream
    // at the bus rate) while bounding how far reservations — and the
    // in-flight list — can run ahead of the clock.
    if (bus_free_at_ > now + params_.t_cas + params_.burst_cycles) {
        next_tick_ = computeNextTick(now);
        return;
    }

    if (now < sched_quiet_until_) {
        next_tick_ = computeNextTick(now);
        return;   // every queued request's bank is still busy
    }

    // Write-drain policy: start draining when the write queue is nearly
    // full or there is nothing else to do; stop once mostly drained.
    if (draining_writes_) {
        if (write_q_.size() <= params_.wq_size / 4)
            draining_writes_ = false;
    } else if (write_q_.size() >= (params_.wq_size * 7) / 8
               || (read_q_.empty() && !write_q_.empty())) {
        draining_writes_ = true;
    }

    Cycle horizon;
    if (draining_writes_ && !write_q_.empty())
        horizon = scheduleOne(now, write_q_, true);
    else
        horizon = scheduleOne(now, read_q_, false);
    // A fruitless scan's bank horizon quiets the scheduler until then;
    // an issue (or empty queue) re-scans next tick (kCycleNever would
    // wedge an empty queue closed, so clamp to "no window").
    sched_quiet_until_ = horizon == kCycleNever ? 0 : horizon;
    next_tick_ = computeNextTick(now);
}

Cycle
DramController::computeNextTick(Cycle now) const
{
    // Mirrors tick()'s early exits using only maintained watermarks (no
    // queue scans): before this cycle a tick would complete nothing
    // (next_done_), and the scheduler is fenced by the bus gate and by
    // sched_quiet_until_'s all-banks-busy window. Enqueues drop
    // next_tick_ to 0, so a new entry is never fenced out.
    Cycle e = in_flight_.empty() ? kCycleNever
                                 : std::max(next_done_, now + 1);
    if (!read_q_.empty() || !write_q_.empty()) {
        const Cycle headroom = params_.t_cas + params_.burst_cycles;
        const Cycle gate = bus_free_at_ > now + headroom
            ? bus_free_at_ - headroom
            : now + 1;
        const Cycle sched = std::max(gate,
                                     std::max(sched_quiet_until_, now + 1));
        e = std::min(e, sched);
    }
    return e;
}

Cycle
DramController::nextEventCycle(Cycle now) const
{
    // Exactly the tickIfDue() watermark — the first cycle a *full* tick
    // (one that reaches the drain-policy update and the scheduler) runs.
    // It is tempting to bound tighter, e.g. by the queue's bank-ready
    // horizon: that is wrong, because draining_writes_ is hysteresis
    // with memory, and with an empty read queue and a small write queue
    // consecutive full ticks oscillate it (start-drain's "nothing else
    // to do" vs stop-drain's "mostly drained"). The flag value when a
    // bank finally frees — and hence the issue cycle — depends on the
    // parity of full ticks since the last enqueue, so an idle skip may
    // never jump past one: it would change scheduling outcomes, and
    // skip-on/skip-off runs must stay bit-identical.
    return computeNextTick(now);
}

bool
DramController::specBufferHolds(std::uint8_t core, Addr paddr) const
{
    for (const auto &line : spec_buffer_[core]) {
        if (line.valid && line.ready && line.block == blockNumber(paddr))
            return true;
    }
    return false;
}

// tlpsim:endhot

} // namespace tlpsim
