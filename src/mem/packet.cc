#include "mem/packet.hh"

// Packet is a plain value type; this translation unit only anchors the
// vtables of MemoryClient / MemoryBackend.

namespace tlpsim
{

} // namespace tlpsim
