#include "workloads/recorder.hh"

namespace tlpsim::workloads
{

namespace
{

/**
 * ASLR-stable anchor inside this binary's text segment. PIE relocates
 * the whole segment by one slide, so call-site addresses normalized
 * against the anchor are identical from run to run — without this,
 * recorded PCs (and every PC-hashed predictor feature downstream) would
 * differ between processes and figures would not reproduce exactly.
 */
Addr
anchorPc()
{
    static const Addr anchor = reinterpret_cast<Addr>(&anchorPc);
    return anchor;
}

/** Synthetic text base recorded PCs are rebased onto. */
constexpr Addr kTraceCodeBase = 0x400000;

/** PC of the caller's call site (stable per static call site and run). */
inline Addr
callerPc()
{
    Addr pc = reinterpret_cast<Addr>(
        __builtin_extract_return_addr(__builtin_return_address(0)));
    return kTraceCodeBase + (pc - anchorPc());
}

} // namespace

Addr
TraceRecorder::alloc(std::uint64_t bytes)
{
    Addr base = brk_;
    // Round the region up to a page and leave one guard page between
    // regions so distinct arrays never share a page (keeps first-access
    // features meaningful).
    std::uint64_t sz = (bytes + kPageMask) & ~kPageMask;
    brk_ += sz + kPageSize;
    return base;
}

RegId
TraceRecorder::load(Addr vaddr, RegId a, RegId b)
{
    return loadAt(callerPc(), vaddr, a, b);
}

void
TraceRecorder::store(Addr vaddr, RegId a, RegId b)
{
    storeAt(callerPc(), vaddr, a, b);
}

RegId
TraceRecorder::alu(RegId a, RegId b)
{
    return aluAt(callerPc(), a, b);
}

void
TraceRecorder::branch(bool taken, RegId a)
{
    branchAt(callerPc(), taken, a);
}

void
TraceRecorder::jump()
{
    if (full())
        return;
    TraceInstr i;
    i.ip = callerPc();
    i.branch = BranchKind::Direct;
    i.taken = true;
    trace_->push(i);
}

RegId
TraceRecorder::loadAt(Addr ip, Addr vaddr, RegId a, RegId b)
{
    if (full())
        return allocReg();
    TraceInstr i;
    i.ip = ip;
    i.ld_vaddr = vaddr;
    i.src0 = a;
    i.src1 = b;
    i.dst = allocReg();
    trace_->push(i);
    return i.dst;
}

void
TraceRecorder::storeAt(Addr ip, Addr vaddr, RegId a, RegId b)
{
    if (full())
        return;
    TraceInstr i;
    i.ip = ip;
    i.st_vaddr = vaddr;
    i.src0 = a;
    i.src1 = b;
    trace_->push(i);
}

RegId
TraceRecorder::aluAt(Addr ip, RegId a, RegId b)
{
    if (full())
        return allocReg();
    TraceInstr i;
    i.ip = ip;
    i.src0 = a;
    i.src1 = b;
    i.dst = allocReg();
    trace_->push(i);
    return i.dst;
}

void
TraceRecorder::branchAt(Addr ip, bool taken, RegId a)
{
    if (full())
        return;
    TraceInstr i;
    i.ip = ip;
    i.branch = BranchKind::Conditional;
    i.taken = taken;
    i.src0 = a;
    trace_->push(i);
}

} // namespace tlpsim::workloads
