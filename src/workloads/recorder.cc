#include "workloads/recorder.hh"

namespace tlpsim::workloads
{

namespace
{

/** PC of the caller's call site (stable per static call site). */
inline Addr
callerPc()
{
    return reinterpret_cast<Addr>(
        __builtin_extract_return_addr(__builtin_return_address(0)));
}

} // namespace

Addr
TraceRecorder::alloc(std::uint64_t bytes)
{
    Addr base = brk_;
    // Round the region up to a page and leave one guard page between
    // regions so distinct arrays never share a page (keeps first-access
    // features meaningful).
    std::uint64_t sz = (bytes + kPageMask) & ~kPageMask;
    brk_ += sz + kPageSize;
    return base;
}

RegId
TraceRecorder::load(Addr vaddr, RegId a, RegId b)
{
    return loadAt(callerPc(), vaddr, a, b);
}

void
TraceRecorder::store(Addr vaddr, RegId a, RegId b)
{
    storeAt(callerPc(), vaddr, a, b);
}

RegId
TraceRecorder::alu(RegId a, RegId b)
{
    return aluAt(callerPc(), a, b);
}

void
TraceRecorder::branch(bool taken, RegId a)
{
    branchAt(callerPc(), taken, a);
}

void
TraceRecorder::jump()
{
    if (full())
        return;
    TraceInstr i;
    i.ip = callerPc();
    i.branch = BranchKind::Direct;
    i.taken = true;
    trace_->push(i);
}

RegId
TraceRecorder::loadAt(Addr ip, Addr vaddr, RegId a, RegId b)
{
    if (full())
        return allocReg();
    TraceInstr i;
    i.ip = ip;
    i.ld_vaddr = vaddr;
    i.src0 = a;
    i.src1 = b;
    i.dst = allocReg();
    trace_->push(i);
    return i.dst;
}

void
TraceRecorder::storeAt(Addr ip, Addr vaddr, RegId a, RegId b)
{
    if (full())
        return;
    TraceInstr i;
    i.ip = ip;
    i.st_vaddr = vaddr;
    i.src0 = a;
    i.src1 = b;
    trace_->push(i);
}

RegId
TraceRecorder::aluAt(Addr ip, RegId a, RegId b)
{
    if (full())
        return allocReg();
    TraceInstr i;
    i.ip = ip;
    i.src0 = a;
    i.src1 = b;
    i.dst = allocReg();
    trace_->push(i);
    return i.dst;
}

void
TraceRecorder::branchAt(Addr ip, bool taken, RegId a)
{
    if (full())
        return;
    TraceInstr i;
    i.ip = ip;
    i.branch = BranchKind::Conditional;
    i.taken = taken;
    i.src0 = a;
    trace_->push(i);
}

} // namespace tlpsim::workloads
