/**
 * @file
 * Workload registry: named single-core workloads and multi-core mixes.
 *
 * Mirrors the paper's methodology (§V-B..D): GAP workloads are
 * kernel × input-graph combinations, SPEC workloads are the SPEC-like
 * kernels, and multi-core mixes are random homogeneous / heterogeneous
 * 4-tuples drawn per suite. Everything is deterministic in the seed.
 *
 * Set sizes: the paper uses 55 single-core workloads and 200 mixes at
 * 100M instructions; a laptop bench run scales that down. `Small` is the
 * default; `Full` (TLPSIM_SET=full) widens graphs and workload counts.
 */

#ifndef TLPSIM_WORKLOADS_WORKLOAD_HH
#define TLPSIM_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "trace/trace.hh"
#include "workloads/gap_kernels.hh"
#include "workloads/graph.hh"
#include "workloads/spec_kernels.hh"

namespace tlpsim::workloads
{

/** Benchmark suite a workload belongs to (drives per-suite reporting). */
enum class Suite
{
    Spec,
    Gap,
};

const char *toString(Suite s);

/** A named, recordable workload. */
struct WorkloadSpec
{
    std::string name;
    Suite suite;
    /** Record the workload into @p rec with randomness from @p seed. */
    std::function<void(TraceRecorder &, std::uint64_t)> record;
};

/** Workload-set scaling. */
enum class SetSize
{
    Tiny,    ///< unit/integration tests: small graphs, tiny working sets
    Small,   ///< default bench scale
    Full,    ///< TLPSIM_SET=full: widest graph/workload coverage
};

/** Parameters that depend on SetSize. */
struct ScaleParams
{
    unsigned graph_scale;    ///< log2 vertices
    unsigned graph_degree;   ///< average directed degree
    unsigned spec_ws_shift;  ///< working-set right-shift for SPEC kernels
    std::vector<GraphKind> graphs;        ///< input graphs used
    std::vector<SpecKernel> spec_kernels; ///< SPEC-like kernels used
};

ScaleParams scaleParams(SetSize s);

/** Reads TLPSIM_SET (tiny|small|full); defaults to Small. */
SetSize setSizeFromEnv();

/** All single-core workloads for a set size (GAP first, then SPEC). */
std::vector<WorkloadSpec> singleCoreWorkloads(SetSize s);

/** Build a trace of @p instrs records for @p spec. */
Trace buildTrace(const WorkloadSpec &spec, std::uint64_t instrs,
                 std::uint64_t seed);

/** A multi-core mix: indices into a workload vector, one per core. */
struct Mix
{
    std::string name;
    Suite suite;
    bool homogeneous;
    std::vector<int> workload_index;

    /** Number of cores this mix occupies (one workload per core). */
    unsigned cores() const
    {
        return static_cast<unsigned>(workload_index.size());
    }
};

/**
 * Generate @p cores-wide mixes per the paper's recipe: half homogeneous
 * (N copies of one workload), half heterogeneous (independently drawn),
 * generated separately for each suite. The draw order is independent of
 * @p cores' value per slot, so the 4-core mixes of the paper's figures
 * are reproduced exactly by the default.
 */
std::vector<Mix> makeMixes(const std::vector<WorkloadSpec> &workloads,
                           int mixes_per_suite, std::uint64_t seed,
                           unsigned cores = 4);

/**
 * Resolve workload names to indices into @p workloads. Unlike a lookup
 * loop that stops at the first typo, this collects *every* unknown name
 * and throws one ConfigError listing them all alongside the valid names,
 * so a sweep grid is validated up front in a single pass.
 * @p context names the source ("--mix", "--workload") in the error.
 */
std::vector<int>
resolveWorkloadIndices(const std::vector<WorkloadSpec> &workloads,
                       const std::vector<std::string> &names,
                       const std::string &context);

/** Build a named Mix from workload names (one per core) via
 *  resolveWorkloadIndices; the mix is named "a+b+c+..." . */
Mix mixFromNames(const std::vector<WorkloadSpec> &workloads,
                 const std::vector<std::string> &names,
                 const std::string &context);

} // namespace tlpsim::workloads

#endif // TLPSIM_WORKLOADS_WORKLOAD_HH
