/**
 * @file
 * Workload registry: named single-core workloads and multi-core mixes.
 *
 * Mirrors the paper's methodology (§V-B..D): GAP workloads are
 * kernel × input-graph combinations, SPEC workloads are the SPEC-like
 * kernels, and multi-core mixes are random homogeneous / heterogeneous
 * 4-tuples drawn per suite. Everything is deterministic in the seed.
 *
 * Set sizes: the paper uses 55 single-core workloads and 200 mixes at
 * 100M instructions; a laptop bench run scales that down. `Small` is the
 * default; `Full` (TLPSIM_SET=full) widens graphs and workload counts.
 */

#ifndef TLPSIM_WORKLOADS_WORKLOAD_HH
#define TLPSIM_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "trace/trace.hh"
#include "workloads/gap_kernels.hh"
#include "workloads/graph.hh"
#include "workloads/spec_kernels.hh"

namespace tlpsim::workloads
{

/** Benchmark suite a workload belongs to (drives per-suite reporting). */
enum class Suite
{
    Spec,
    Gap,
};

const char *toString(Suite s);

/** A named workload: either an in-binary kernel recorded on demand, or
 *  an external trace file replayed from disk (trace_path non-empty). */
struct WorkloadSpec
{
    std::string name;
    Suite suite;
    /** Record the workload into @p rec with randomness from @p seed.
     *  Null for file-backed workloads — they replay, never record. */
    std::function<void(TraceRecorder &, std::uint64_t)> record;
    /** Path of the external trace file; empty = in-binary kernel. */
    std::string trace_path;
    /** Verified content identity of the trace file
     *  ("tracefile:v1:<checksum>x<count>"); empty for in-binary kernels. */
    std::string identity;

    bool isFile() const { return !trace_path.empty(); }

    /** Name that keys design points (store rows, Runner jobs): the
     *  workload name for in-binary kernels (their content is a pure
     *  function of name, scale, and seed), the *content* identity for
     *  file workloads — so two paths to byte-identical traces share
     *  rows, and an edited or re-converted file never aliases stale
     *  results recorded under its old bytes. */
    const std::string &pointName() const
    {
        return identity.empty() ? name : identity;
    }
};

/** Workload-set scaling. */
enum class SetSize
{
    Tiny,    ///< unit/integration tests: small graphs, tiny working sets
    Small,   ///< default bench scale
    Full,    ///< TLPSIM_SET=full: widest graph/workload coverage
};

/** Parameters that depend on SetSize. */
struct ScaleParams
{
    unsigned graph_scale;    ///< log2 vertices
    unsigned graph_degree;   ///< average directed degree
    unsigned spec_ws_shift;  ///< working-set right-shift for SPEC kernels
    std::vector<GraphKind> graphs;        ///< input graphs used
    std::vector<SpecKernel> spec_kernels; ///< SPEC-like kernels used
};

ScaleParams scaleParams(SetSize s);

/** Reads TLPSIM_SET (tiny|small|full); defaults to Small. */
SetSize setSizeFromEnv();

/** All single-core workloads for a set size (GAP first, then SPEC). */
std::vector<WorkloadSpec> singleCoreWorkloads(SetSize s);

/** Build a trace of @p instrs records for @p spec. */
Trace buildTrace(const WorkloadSpec &spec, std::uint64_t instrs,
                 std::uint64_t seed);

/** A multi-core mix: indices into a workload vector, one per core. */
struct Mix
{
    std::string name;
    Suite suite;
    bool homogeneous;
    std::vector<int> workload_index;
    /** Design-point identity: the slot workloads' pointName()s joined
     *  with '+'. Empty (generated mixes of in-binary kernels) means the
     *  display name doubles as the identity. */
    std::string point_name;

    /** Number of cores this mix occupies (one workload per core). */
    unsigned cores() const
    {
        return static_cast<unsigned>(workload_index.size());
    }

    /** Name that keys design points (cf. WorkloadSpec::pointName). */
    const std::string &pointName() const
    {
        return point_name.empty() ? name : point_name;
    }
};

/**
 * Generate @p cores-wide mixes per the paper's recipe: half homogeneous
 * (N copies of one workload), half heterogeneous (independently drawn),
 * generated separately for each suite. The draw order is independent of
 * @p cores' value per slot, so the 4-core mixes of the paper's figures
 * are reproduced exactly by the default.
 */
std::vector<Mix> makeMixes(const std::vector<WorkloadSpec> &workloads,
                           int mixes_per_suite, std::uint64_t seed,
                           unsigned cores = 4);

/** The workload-name syntax that replays an external trace file. */
inline constexpr const char *kFileWorkloadPrefix = "file:";

/** True iff @p name uses the "file:PATH" external-trace syntax. */
bool isFileWorkloadName(const std::string &name);

/**
 * Build a WorkloadSpec replaying the trace file at @p path. The file is
 * fully verified up front (structure *and* payload checksum — one
 * streaming pass), so a corrupt trace fails here, at resolution time,
 * not mid-sweep; throws ConfigError naming the file and byte offset.
 * The spec's name is the workload name embedded in the file, its
 * identity the verified content hash.
 */
WorkloadSpec fileTraceWorkload(const std::string &path);

/**
 * Resolve workload names to indices into @p workloads. Unlike a lookup
 * loop that stops at the first typo, this collects *every* unknown name
 * and malformed trace file and throws one ConfigError listing them all
 * alongside the valid names, so a sweep grid is validated up front in a
 * single pass. "file:PATH" names resolve to external trace files:
 * each distinct path is verified once and appended to @p workloads
 * (which is why the vector is mutable); repeats reuse the appended
 * spec. Plain names match only in-binary kernels — a file whose
 * embedded name collides with a kernel shadows nothing.
 * @p context names the source ("--mix", "--workload") in the error.
 */
std::vector<int>
resolveWorkloadIndices(std::vector<WorkloadSpec> &workloads,
                       const std::vector<std::string> &names,
                       const std::string &context);

/** Build a named Mix from workload names (one per core) via
 *  resolveWorkloadIndices; the mix is named "a+b+c+..." . */
Mix mixFromNames(std::vector<WorkloadSpec> &workloads,
                 const std::vector<std::string> &names,
                 const std::string &context);

} // namespace tlpsim::workloads

#endif // TLPSIM_WORKLOADS_WORKLOAD_HH
