#include "workloads/workload.hh"

#include <cstdlib>
#include <cstring>

#include "common/config.hh"
#include "common/rng.hh"

namespace tlpsim::workloads
{

const char *
toString(Suite s)
{
    return s == Suite::Spec ? "SPEC" : "GAP";
}

ScaleParams
scaleParams(SetSize s)
{
    switch (s) {
      case SetSize::Tiny:
        return {
            12, 8, 4,
            {GraphKind::Kron, GraphKind::Road},
            {SpecKernel::McfPchase, SpecKernel::LibqStream},
        };
      case SetSize::Small:
        return {
            21, 10, 1,
            {GraphKind::Kron, GraphKind::Road, GraphKind::Urand},
            {SpecKernel::McfPchase, SpecKernel::LbmStencil,
             SpecKernel::XalanHash, SpecKernel::OmnetppHeap,
             SpecKernel::DeepsjengTt, SpecKernel::RomsSpmv},
        };
      case SetSize::Full:
        return {
            21, 12, 0,
            {GraphKind::Web, GraphKind::Road, GraphKind::Twitter,
             GraphKind::Kron, GraphKind::Urand},
            {SpecKernel::McfPchase, SpecKernel::LbmStencil,
             SpecKernel::LibqStream, SpecKernel::OmnetppHeap,
             SpecKernel::XalanHash, SpecKernel::GccMixed,
             SpecKernel::DeepsjengTt, SpecKernel::RomsSpmv},
        };
    }
    return scaleParams(SetSize::Small);
}

SetSize
setSizeFromEnv()
{
    const char *v = std::getenv("TLPSIM_SET");
    if (v == nullptr)
        return SetSize::Small;
    if (std::strcmp(v, "full") == 0)
        return SetSize::Full;
    if (std::strcmp(v, "tiny") == 0)
        return SetSize::Tiny;
    return SetSize::Small;
}

std::vector<WorkloadSpec>
singleCoreWorkloads(SetSize s)
{
    ScaleParams p = scaleParams(s);
    std::vector<WorkloadSpec> out;

    for (GapKernel k : kAllGapKernels) {
        for (GraphKind gk : p.graphs) {
            WorkloadSpec w;
            w.name = std::string(toString(k)) + "." + toString(gk);
            w.suite = Suite::Gap;
            w.record = [k, gk, p](TraceRecorder &rec, std::uint64_t seed) {
                auto g = GraphCache::get(gk, p.graph_scale,
                                         p.graph_degree, 42);
                recordGapKernel(k, *g, rec, seed);
            };
            out.push_back(std::move(w));
        }
    }
    for (SpecKernel k : p.spec_kernels) {
        WorkloadSpec w;
        w.name = toString(k);
        w.suite = Suite::Spec;
        w.record = [k, p](TraceRecorder &rec, std::uint64_t seed) {
            recordSpecKernel(k, rec, seed, p.spec_ws_shift);
        };
        out.push_back(std::move(w));
    }
    return out;
}

Trace
buildTrace(const WorkloadSpec &spec, std::uint64_t instrs, std::uint64_t seed)
{
    Trace trace(spec.name);
    TraceRecorder::Options opt;
    opt.max_instrs = instrs;
    TraceRecorder rec(trace, opt);
    spec.record(rec, seed);
    return trace;
}

std::vector<Mix>
makeMixes(const std::vector<WorkloadSpec> &workloads, int mixes_per_suite,
          std::uint64_t seed, unsigned cores)
{
    std::vector<Mix> mixes;
    for (Suite suite : {Suite::Spec, Suite::Gap}) {
        std::vector<int> candidates;
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            if (workloads[i].suite == suite)
                candidates.push_back(static_cast<int>(i));
        }
        if (candidates.empty())
            continue;
        Rng rng(seed ^ (suite == Suite::Gap ? 0x9a9 : 0x5e5));
        for (int m = 0; m < mixes_per_suite; ++m) {
            Mix mix;
            mix.suite = suite;
            mix.homogeneous = m < mixes_per_suite / 2;
            if (mix.homogeneous) {
                int w = candidates[rng.below(candidates.size())];
                mix.workload_index.assign(cores, w);
                mix.name = std::string("homo.") + workloads[w].name;
            } else {
                for (unsigned c = 0; c < cores; ++c) {
                    mix.workload_index.push_back(
                        candidates[rng.below(candidates.size())]);
                }
                mix.name = std::string("hetero.") + toString(suite) + "."
                    + std::to_string(m);
            }
            mixes.push_back(std::move(mix));
        }
    }
    return mixes;
}

std::vector<int>
resolveWorkloadIndices(const std::vector<WorkloadSpec> &workloads,
                       const std::vector<std::string> &names,
                       const std::string &context)
{
    std::vector<int> indices;
    std::vector<std::string> unknown;
    for (const std::string &name : names) {
        int found = -1;
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            if (workloads[i].name == name) {
                found = static_cast<int>(i);
                break;
            }
        }
        if (found < 0)
            unknown.push_back(name);
        else
            indices.push_back(found);
    }
    if (!unknown.empty()) {
        std::vector<std::string> valid;
        for (const auto &w : workloads)
            valid.push_back(w.name);
        throw ConfigError(context + ": unknown workload"
                          + (unknown.size() > 1 ? "s " : " ")
                          + joinNames(unknown)
                          + "; valid names (set TLPSIM_SET=tiny|small|full "
                            "to change the set): "
                          + joinNames(valid));
    }
    return indices;
}

Mix
mixFromNames(const std::vector<WorkloadSpec> &workloads,
             const std::vector<std::string> &names,
             const std::string &context)
{
    Mix mix;
    mix.workload_index = resolveWorkloadIndices(workloads, names, context);
    mix.suite = Suite::Spec;
    mix.homogeneous = true;
    for (int idx : mix.workload_index) {
        const WorkloadSpec &w = workloads[static_cast<std::size_t>(idx)];
        if (w.suite == Suite::Gap)
            mix.suite = Suite::Gap;
        if (w.name != workloads[static_cast<std::size_t>(
                          mix.workload_index.front())].name) {
            mix.homogeneous = false;
        }
        mix.name += mix.name.empty() ? w.name : "+" + w.name;
    }
    return mix;
}

} // namespace tlpsim::workloads
