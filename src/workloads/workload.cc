#include "workloads/workload.hh"

#include <cstdlib>
#include <cstring>

#include "common/config.hh"
#include "common/rng.hh"
#include "tracefile/format.hh"

namespace tlpsim::workloads
{

const char *
toString(Suite s)
{
    return s == Suite::Spec ? "SPEC" : "GAP";
}

ScaleParams
scaleParams(SetSize s)
{
    switch (s) {
      case SetSize::Tiny:
        return {
            12, 8, 4,
            {GraphKind::Kron, GraphKind::Road},
            {SpecKernel::McfPchase, SpecKernel::LibqStream},
        };
      case SetSize::Small:
        return {
            21, 10, 1,
            {GraphKind::Kron, GraphKind::Road, GraphKind::Urand},
            {SpecKernel::McfPchase, SpecKernel::LbmStencil,
             SpecKernel::XalanHash, SpecKernel::OmnetppHeap,
             SpecKernel::DeepsjengTt, SpecKernel::RomsSpmv},
        };
      case SetSize::Full:
        return {
            21, 12, 0,
            {GraphKind::Web, GraphKind::Road, GraphKind::Twitter,
             GraphKind::Kron, GraphKind::Urand},
            {SpecKernel::McfPchase, SpecKernel::LbmStencil,
             SpecKernel::LibqStream, SpecKernel::OmnetppHeap,
             SpecKernel::XalanHash, SpecKernel::GccMixed,
             SpecKernel::DeepsjengTt, SpecKernel::RomsSpmv},
        };
    }
    return scaleParams(SetSize::Small);
}

SetSize
setSizeFromEnv()
{
    const char *v = std::getenv("TLPSIM_SET");
    if (v == nullptr)
        return SetSize::Small;
    if (std::strcmp(v, "full") == 0)
        return SetSize::Full;
    if (std::strcmp(v, "tiny") == 0)
        return SetSize::Tiny;
    return SetSize::Small;
}

std::vector<WorkloadSpec>
singleCoreWorkloads(SetSize s)
{
    ScaleParams p = scaleParams(s);
    std::vector<WorkloadSpec> out;

    for (GapKernel k : kAllGapKernels) {
        for (GraphKind gk : p.graphs) {
            WorkloadSpec w;
            w.name = std::string(toString(k)) + "." + toString(gk);
            w.suite = Suite::Gap;
            w.record = [k, gk, p](TraceRecorder &rec, std::uint64_t seed) {
                auto g = GraphCache::get(gk, p.graph_scale,
                                         p.graph_degree, 42);
                recordGapKernel(k, *g, rec, seed);
            };
            out.push_back(std::move(w));
        }
    }
    for (SpecKernel k : p.spec_kernels) {
        WorkloadSpec w;
        w.name = toString(k);
        w.suite = Suite::Spec;
        w.record = [k, p](TraceRecorder &rec, std::uint64_t seed) {
            recordSpecKernel(k, rec, seed, p.spec_ws_shift);
        };
        out.push_back(std::move(w));
    }
    return out;
}

Trace
buildTrace(const WorkloadSpec &spec, std::uint64_t instrs, std::uint64_t seed)
{
    if (!spec.record) {
        // File-backed workloads replay via a TraceSource; materializing
        // them here would defeat the bounded-memory contract, so a path
        // that reaches this (a bench calling cachedTrace on a file spec)
        // is a bug surfaced by name.
        throw ConfigError("workload '" + spec.name
                          + "' is file-backed (" + spec.trace_path
                          + "); it streams from disk and cannot be "
                            "re-recorded in memory");
    }
    Trace trace(spec.name);
    TraceRecorder::Options opt;
    opt.max_instrs = instrs;
    TraceRecorder rec(trace, opt);
    spec.record(rec, seed);
    return trace;
}

std::vector<Mix>
makeMixes(const std::vector<WorkloadSpec> &workloads, int mixes_per_suite,
          std::uint64_t seed, unsigned cores)
{
    std::vector<Mix> mixes;
    for (Suite suite : {Suite::Spec, Suite::Gap}) {
        std::vector<int> candidates;
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            if (workloads[i].suite == suite)
                candidates.push_back(static_cast<int>(i));
        }
        if (candidates.empty())
            continue;
        Rng rng(seed ^ (suite == Suite::Gap ? 0x9a9 : 0x5e5));
        for (int m = 0; m < mixes_per_suite; ++m) {
            Mix mix;
            mix.suite = suite;
            mix.homogeneous = m < mixes_per_suite / 2;
            if (mix.homogeneous) {
                int w = candidates[rng.below(candidates.size())];
                mix.workload_index.assign(cores, w);
                mix.name = std::string("homo.") + workloads[w].name;
            } else {
                for (unsigned c = 0; c < cores; ++c) {
                    mix.workload_index.push_back(
                        candidates[rng.below(candidates.size())]);
                }
                mix.name = std::string("hetero.") + toString(suite) + "."
                    + std::to_string(m);
            }
            mixes.push_back(std::move(mix));
        }
    }
    return mixes;
}

bool
isFileWorkloadName(const std::string &name)
{
    return name.compare(0, std::strlen(kFileWorkloadPrefix),
                        kFileWorkloadPrefix) == 0;
}

WorkloadSpec
fileTraceWorkload(const std::string &path)
{
    const tracefile::TraceFileInfo info = tracefile::verifyFile(path);
    WorkloadSpec w;
    w.name = info.name;
    w.suite = info.suite == 1 ? Suite::Gap : Suite::Spec;
    w.trace_path = path;
    w.identity = info.identity();
    return w;
}

std::vector<int>
resolveWorkloadIndices(std::vector<WorkloadSpec> &workloads,
                       const std::vector<std::string> &names,
                       const std::string &context)
{
    std::vector<int> indices;
    std::vector<std::string> unknown;
    std::vector<std::string> errors;
    for (const std::string &name : names) {
        if (isFileWorkloadName(name)) {
            const std::string path
                = name.substr(std::strlen(kFileWorkloadPrefix));
            int found = -1;
            for (std::size_t i = 0; i < workloads.size(); ++i) {
                if (workloads[i].trace_path == path) {
                    found = static_cast<int>(i);
                    break;
                }
            }
            if (found < 0) {
                try {
                    workloads.push_back(fileTraceWorkload(path));
                    found = static_cast<int>(workloads.size() - 1);
                } catch (const ConfigError &e) {
                    errors.push_back(context + ": " + e.what());
                    continue;
                }
            }
            indices.push_back(found);
            continue;
        }
        int found = -1;
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            if (!workloads[i].isFile() && workloads[i].name == name) {
                found = static_cast<int>(i);
                break;
            }
        }
        if (found < 0)
            unknown.push_back(name);
        else
            indices.push_back(found);
    }
    if (!unknown.empty()) {
        std::vector<std::string> valid;
        for (const auto &w : workloads) {
            if (!w.isFile())
                valid.push_back(w.name);
        }
        errors.push_back(
            context + ": unknown workload"
            + (unknown.size() > 1 ? "s " : " ") + joinNames(unknown)
            + "; valid names (set TLPSIM_SET=tiny|small|full to change "
              "the set, or file:PATH to replay an external trace): "
            + joinNames(valid));
    }
    if (!errors.empty())
        throwConfigErrors(errors);
    return indices;
}

Mix
mixFromNames(std::vector<WorkloadSpec> &workloads,
             const std::vector<std::string> &names,
             const std::string &context)
{
    Mix mix;
    mix.workload_index = resolveWorkloadIndices(workloads, names, context);
    mix.suite = Suite::Spec;
    mix.homogeneous = true;
    bool any_file = false;
    for (int idx : mix.workload_index) {
        const WorkloadSpec &w = workloads[static_cast<std::size_t>(idx)];
        if (w.suite == Suite::Gap)
            mix.suite = Suite::Gap;
        if (w.isFile())
            any_file = true;
        if (w.name != workloads[static_cast<std::size_t>(
                          mix.workload_index.front())].name) {
            mix.homogeneous = false;
        }
        mix.name += mix.name.empty() ? w.name : "+" + w.name;
        mix.point_name
            += mix.point_name.empty() ? w.pointName() : "+" + w.pointName();
    }
    // For all-in-binary mixes the display name is the identity; keeping
    // point_name empty preserves the store keys of every existing sweep.
    if (!any_file)
        mix.point_name.clear();
    return mix;
}

} // namespace tlpsim::workloads
