#include "workloads/graph.hh"

#include <algorithm>
#include <condition_variable>
#include <map>
#include <mutex>
#include <tuple>

#include "common/rng.hh"

namespace tlpsim::workloads
{

Vertex
Graph::maxDegreeVertex() const
{
    Vertex best = 0;
    std::uint64_t best_deg = 0;
    for (Vertex v = 0; v < numVertices(); ++v) {
        if (degree(v) > best_deg) {
            best_deg = degree(v);
            best = v;
        }
    }
    return best;
}

std::uint64_t
Graph::maxDegree() const
{
    std::uint64_t best = 0;
    for (Vertex v = 0; v < numVertices(); ++v)
        best = std::max(best, degree(v));
    return best;
}

double
Graph::avgDegree() const
{
    return numVertices() == 0
        ? 0.0
        : static_cast<double>(numEdges()) / numVertices();
}

const char *
toString(GraphKind k)
{
    switch (k) {
      case GraphKind::Web: return "web";
      case GraphKind::Road: return "road";
      case GraphKind::Twitter: return "twitter";
      case GraphKind::Kron: return "kron";
      case GraphKind::Urand: return "urand";
    }
    return "?";
}

namespace
{

using EdgeList = std::vector<std::pair<Vertex, Vertex>>;

/** One RMAT edge draw with recursive quadrant selection. */
std::pair<Vertex, Vertex>
rmatEdge(Rng &rng, unsigned scale, double a, double b, double c)
{
    Vertex src = 0;
    Vertex dst = 0;
    for (unsigned bit = 0; bit < scale; ++bit) {
        double r = rng.uniform();
        if (r < a) {
            // top-left: neither bit set
        } else if (r < a + b) {
            dst |= Vertex{1} << bit;
        } else if (r < a + b + c) {
            src |= Vertex{1} << bit;
        } else {
            src |= Vertex{1} << bit;
            dst |= Vertex{1} << bit;
        }
    }
    return {src, dst};
}

EdgeList
genRmat(Rng &rng, unsigned scale, std::uint64_t num_edges, double a,
        double b, double c)
{
    EdgeList edges;
    edges.reserve(num_edges);
    for (std::uint64_t i = 0; i < num_edges; ++i) {
        auto [u, v] = rmatEdge(rng, scale, a, b, c);
        if (u != v)
            edges.emplace_back(u, v);
    }
    return edges;
}

EdgeList
genUrand(Rng &rng, Vertex n, std::uint64_t num_edges)
{
    EdgeList edges;
    edges.reserve(num_edges);
    for (std::uint64_t i = 0; i < num_edges; ++i) {
        auto u = static_cast<Vertex>(rng.below(n));
        auto v = static_cast<Vertex>(rng.below(n));
        if (u != v)
            edges.emplace_back(u, v);
    }
    return edges;
}

/**
 * Preferential attachment (web-like): each new vertex links to d targets
 * sampled from the endpoint pool, producing a power-law with the spatial
 * locality of crawl order.
 */
EdgeList
genWeb(Rng &rng, Vertex n, unsigned d)
{
    EdgeList edges;
    edges.reserve(static_cast<std::uint64_t>(n) * d);
    std::vector<Vertex> pool;
    pool.reserve(static_cast<std::uint64_t>(n) * d * 2);
    pool.push_back(0);
    for (Vertex v = 1; v < n; ++v) {
        for (unsigned k = 0; k < d; ++k) {
            Vertex target = pool[rng.below(pool.size())];
            if (target != v) {
                edges.emplace_back(v, target);
                pool.push_back(target);
            }
            pool.push_back(v);
        }
    }
    return edges;
}

/** Grid side for a road graph of >= n vertices (power-of-two square). */
Vertex
roadSide(Vertex n)
{
    auto side = static_cast<Vertex>(1);
    while (static_cast<std::uint64_t>(side) * side < n)
        side <<= 1;
    return side;
}

/** 2D mesh with 4-neighborhood plus sparse random shortcuts (road-like). */
EdgeList
genRoad(Rng &rng, Vertex side)
{
    Vertex n = side * side;
    EdgeList edges;
    edges.reserve(static_cast<std::uint64_t>(n) * 2 + n / 16);
    for (Vertex y = 0; y < side; ++y) {
        for (Vertex x = 0; x < side; ++x) {
            Vertex v = y * side + x;
            if (x + 1 < side)
                edges.emplace_back(v, v + 1);
            if (y + 1 < side)
                edges.emplace_back(v, v + side);
        }
    }
    // Highways: a few long-range links, as in real road networks.
    for (Vertex i = 0; i < n / 16; ++i) {
        auto u = static_cast<Vertex>(rng.below(n));
        auto v = static_cast<Vertex>(rng.below(n));
        if (u != v)
            edges.emplace_back(u, v);
    }
    return edges;
}

/** Symmetrize an edge list and pack it into CSR form. */
Graph
buildCsr(Vertex n, const EdgeList &edges)
{
    Graph g;
    g.offsets.assign(static_cast<std::size_t>(n) + 1, 0);
    for (const auto &[u, v] : edges) {
        ++g.offsets[u + 1];
        ++g.offsets[v + 1];
    }
    for (std::size_t i = 1; i < g.offsets.size(); ++i)
        g.offsets[i] += g.offsets[i - 1];
    g.neighbors.resize(g.offsets.back());
    std::vector<std::uint64_t> cursor(g.offsets.begin(), g.offsets.end() - 1);
    for (const auto &[u, v] : edges) {
        g.neighbors[cursor[u]++] = v;
        g.neighbors[cursor[v]++] = u;
    }
    return g;
}

} // namespace

Graph
makeGraph(GraphKind kind, unsigned scale, unsigned avg_degree,
          std::uint64_t seed)
{
    Rng rng(seed ^ (static_cast<std::uint64_t>(kind) << 56)
            ^ (std::uint64_t{scale} << 48));
    auto n = Vertex{1} << scale;
    // avg_degree counts directed edges per vertex post-symmetrization, so
    // draw n*d/2 undirected edges.
    std::uint64_t num_edges = (static_cast<std::uint64_t>(n) * avg_degree) / 2;

    EdgeList edges;
    switch (kind) {
      case GraphKind::Kron:
        edges = genRmat(rng, scale, num_edges, 0.57, 0.19, 0.19);
        break;
      case GraphKind::Twitter:
        edges = genRmat(rng, scale, num_edges, 0.62, 0.17, 0.17);
        break;
      case GraphKind::Web:
        edges = genWeb(rng, n, std::max(1u, avg_degree / 2));
        break;
      case GraphKind::Urand:
        edges = genUrand(rng, n, num_edges);
        break;
      case GraphKind::Road:
        n = roadSide(n) * roadSide(n);   // grid must be square
        edges = genRoad(rng, roadSide(n));
        break;
    }
    return buildCsr(n, edges);
}

namespace
{

using CacheKey = std::tuple<int, unsigned, unsigned, std::uint64_t>;

/** One cache entry; graph is written once under m and shared read-only.
 *  If construction throws, error is propagated to every waiter and the
 *  slot is dropped from the cache so a later request can retry. */
struct GraphSlot
{
    std::mutex m;
    std::condition_variable cv;
    bool ready = false;
    std::shared_ptr<const Graph> graph;
    std::exception_ptr error;
};

std::mutex g_graph_mutex;
std::map<CacheKey, std::shared_ptr<GraphSlot>> g_graph_cache;

/** Resident cap: enough for every graph of a set to stay warm while
 *  parallel trace builds are in flight. Evicted graphs stay alive for as
 *  long as any worker still holds its shared_ptr. */
constexpr std::size_t kMaxResidentGraphs = 4;

} // namespace

std::shared_ptr<const Graph>
GraphCache::get(GraphKind kind, unsigned scale, unsigned avg_degree,
                std::uint64_t seed)
{
    CacheKey key{static_cast<int>(kind), scale, avg_degree, seed};
    std::shared_ptr<GraphSlot> slot;
    bool builder = false;
    {
        std::lock_guard<std::mutex> lock(g_graph_mutex);
        auto it = g_graph_cache.find(key);
        if (it == g_graph_cache.end()) {
            if (g_graph_cache.size() >= kMaxResidentGraphs)
                g_graph_cache.erase(g_graph_cache.begin());
            it = g_graph_cache.emplace(key, std::make_shared<GraphSlot>())
                     .first;
            builder = true;
        }
        slot = it->second;
    }
    if (builder) {
        std::shared_ptr<const Graph> built;
        std::exception_ptr error;
        try {
            built = std::make_shared<const Graph>(
                makeGraph(kind, scale, avg_degree, seed));
        } catch (...) {
            error = std::current_exception();
        }
        if (error) {
            // Evictions may have replaced the key; only drop our slot.
            std::lock_guard<std::mutex> cache_lock(g_graph_mutex);
            auto it = g_graph_cache.find(key);
            if (it != g_graph_cache.end() && it->second == slot)
                g_graph_cache.erase(it);
        }
        {
            std::lock_guard<std::mutex> lock(slot->m);
            slot->graph = built;
            slot->error = error;
            slot->ready = true;
        }
        slot->cv.notify_all();
        if (error)
            std::rethrow_exception(error);
        return built;
    }
    std::unique_lock<std::mutex> lock(slot->m);
    slot->cv.wait(lock, [&] { return slot->ready; });
    if (slot->error)
        std::rethrow_exception(slot->error);
    return slot->graph;
}

void
GraphCache::clear()
{
    std::lock_guard<std::mutex> lock(g_graph_mutex);
    g_graph_cache.clear();
}

} // namespace tlpsim::workloads
