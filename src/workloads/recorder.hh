/**
 * @file
 * Trace recorder: the bridge between real kernel code and tlpsim traces.
 *
 * Workload kernels (GAP graph algorithms, SPEC-like loops) execute their
 * real algorithm on host data structures and, as they run, record the
 * corresponding instruction stream through this API. Each recorder call
 * emits exactly one TraceInstr. Program counters are taken from the
 * caller's return address, so every *static* call site in a kernel gets a
 * stable, distinct PC — exactly the property PC-indexed predictors
 * (perceptron features, IPCP, Berti, SPP) rely on.
 *
 * Register dependencies are explicit: load() returns the destination
 * register holding the loaded value and kernels thread those registers into
 * dependent operations, so pointer chases serialize in the out-of-order
 * core just like the real program would.
 */

#ifndef TLPSIM_WORKLOADS_RECORDER_HH
#define TLPSIM_WORKLOADS_RECORDER_HH

#include <cstdint>

#include "trace/trace.hh"

namespace tlpsim::workloads
{

/** A virtual-address view of a host array mirrored into trace space. */
struct VArray
{
    Addr base = 0;
    unsigned elem_size = 0;

    Addr
    at(std::uint64_t index) const
    {
        return base + index * elem_size;
    }
};

/**
 * Records one instruction per call into a Trace.
 *
 * The recorder owns a bump allocator for the synthetic virtual heap so
 * each workload's data regions are disjoint and page-aligned.
 */
class TraceRecorder
{
  public:
    struct Options
    {
        std::uint64_t max_instrs = 1'000'000;
        Addr heap_base = Addr{1} << 32;   ///< 4 GiB: clear of code addresses
    };

    TraceRecorder(Trace &out, const Options &opt)
        : trace_(&out), max_instrs_(opt.max_instrs), brk_(opt.heap_base)
    {
        trace_->reserve(opt.max_instrs);
    }

    /** True once max_instrs records have been emitted; kernels must stop. */
    bool full() const { return trace_->size() >= max_instrs_; }

    std::uint64_t instrCount() const { return trace_->size(); }

    /** Reserve @p bytes of synthetic virtual address space (page aligned). */
    Addr alloc(std::uint64_t bytes);

    /** Reserve an array of @p count elements of @p elem_size bytes. */
    VArray
    allocArray(std::uint64_t count, unsigned elem_size)
    {
        return VArray{alloc(count * elem_size), elem_size};
    }

    /**
     * Emit a load from @p vaddr whose address depends on registers
     * @p a / @p b. Returns the register the value lands in.
     */
    [[gnu::noinline]] RegId load(Addr vaddr, RegId a = kNoReg,
                                 RegId b = kNoReg);

    /** Emit a store to @p vaddr with data/address dependencies. */
    [[gnu::noinline]] void store(Addr vaddr, RegId a = kNoReg,
                                 RegId b = kNoReg);

    /** Emit a 1-cycle ALU op consuming a/b, producing a new register. */
    [[gnu::noinline]] RegId alu(RegId a = kNoReg, RegId b = kNoReg);

    /** Emit a conditional branch with the given outcome. */
    [[gnu::noinline]] void branch(bool taken, RegId a = kNoReg);

    /** Emit an unconditional direct branch (loop back-edges, calls). */
    [[gnu::noinline]] void jump();

    /** Emit @p n independent filler ALU ops (same PC site). */
    void
    ops(unsigned n)
    {
        for (unsigned i = 0; i < n; ++i)
            alu();
    }

    /**
     * Explicit-PC variants, used by unit tests and microbenchmarks where
     * a synthetic, build-independent PC is required.
     */
    RegId loadAt(Addr ip, Addr vaddr, RegId a = kNoReg, RegId b = kNoReg);
    void storeAt(Addr ip, Addr vaddr, RegId a = kNoReg, RegId b = kNoReg);
    RegId aluAt(Addr ip, RegId a = kNoReg, RegId b = kNoReg);
    void branchAt(Addr ip, bool taken, RegId a = kNoReg);

  private:
    /** Rotate through architectural registers 1..kNumRegs-1. */
    RegId
    allocReg()
    {
        RegId r = next_reg_;
        next_reg_ = (next_reg_ % (kNumRegs - 1)) + 1;
        return r;
    }

    Trace *trace_;
    std::uint64_t max_instrs_;
    Addr brk_;
    RegId next_reg_ = 1;
};

} // namespace tlpsim::workloads

#endif // TLPSIM_WORKLOADS_RECORDER_HH
