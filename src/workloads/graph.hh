/**
 * @file
 * In-memory CSR graphs and the synthetic generators standing in for the
 * paper's input graphs (Table V: Web, Road, Twitter, Kron, Urand).
 *
 * The paper's graphs are hundreds of millions of edges; we reproduce their
 * *degree-distribution classes* (power-law of varying skew, uniform random,
 * low-degree mesh) at laptop scale, since degree distribution is the
 * property the paper identifies as controlling reuse and off-chip rate
 * (§V-B). Friendster is covered by the Urand/Twitter classes.
 */

#ifndef TLPSIM_WORKLOADS_GRAPH_HH
#define TLPSIM_WORKLOADS_GRAPH_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace tlpsim::workloads
{

using Vertex = std::uint32_t;

/** Compressed-sparse-row graph (undirected: both edge directions stored). */
struct Graph
{
    std::vector<std::uint64_t> offsets;   ///< size = numVertices() + 1
    std::vector<Vertex> neighbors;        ///< size = numEdges()

    Vertex
    numVertices() const
    {
        return static_cast<Vertex>(offsets.empty() ? 0 : offsets.size() - 1);
    }

    std::uint64_t numEdges() const { return neighbors.size(); }

    std::uint64_t degree(Vertex v) const { return offsets[v + 1] - offsets[v]; }

    /** Begin index of v's adjacency list in neighbors. */
    std::uint64_t begin(Vertex v) const { return offsets[v]; }
    std::uint64_t end(Vertex v) const { return offsets[v + 1]; }

    Vertex maxDegreeVertex() const;
    std::uint64_t maxDegree() const;
    double avgDegree() const;
};

/** The five input-graph classes from Table V. */
enum class GraphKind
{
    Web,       ///< power-law with locality (preferential attachment)
    Road,      ///< low-degree 2D mesh with shortcuts
    Twitter,   ///< heavily skewed power-law (RMAT a=0.62)
    Kron,      ///< Kronecker/RMAT (a=0.57), the Graph500 generator
    Urand,     ///< uniform random (Erdős–Rényi style)
};

constexpr GraphKind kAllGraphKinds[] = {
    GraphKind::Web, GraphKind::Road, GraphKind::Twitter,
    GraphKind::Kron, GraphKind::Urand,
};

const char *toString(GraphKind k);

/**
 * Build a graph of roughly 2^scale vertices and avg_degree directed edges
 * per vertex (after symmetrization). Deterministic in @p seed.
 */
Graph makeGraph(GraphKind kind, unsigned scale, unsigned avg_degree,
                std::uint64_t seed);

/**
 * Process-wide cache of built graphs so the 6 GAP kernels sharing one
 * input graph pay its construction cost once per bench binary.
 *
 * Thread-safe: concurrent get() calls for the same key build the graph
 * once and share it read-only. Callers receive a shared_ptr so cache
 * eviction can never invalidate a graph still in use by another worker.
 */
class GraphCache
{
  public:
    static std::shared_ptr<const Graph> get(GraphKind kind, unsigned scale,
                                            unsigned avg_degree,
                                            std::uint64_t seed);
    static void clear();
};

} // namespace tlpsim::workloads

#endif // TLPSIM_WORKLOADS_GRAPH_HH
