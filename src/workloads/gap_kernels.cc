#include "workloads/gap_kernels.hh"

#include <algorithm>
#include <cassert>

#include "common/bitops.hh"
#include "common/rng.hh"

namespace tlpsim::workloads
{

const char *
toString(GapKernel k)
{
    switch (k) {
      case GapKernel::Bfs: return "bfs";
      case GapKernel::Pr: return "pr";
      case GapKernel::Cc: return "cc";
      case GapKernel::Bc: return "bc";
      case GapKernel::Tc: return "tc";
      case GapKernel::Sssp: return "sssp";
    }
    return "?";
}

GapKernelTraits
gapKernelTraits(GapKernel k)
{
    switch (k) {
      case GapKernel::Bfs:
        return {"BFS", "4 B", "Push & Pull", true};
      case GapKernel::Pr:
        return {"PR", "4 B", "Pull-Only", false};
      case GapKernel::Cc:
        return {"CC", "4 B", "Push-Mostly", false};
      case GapKernel::Bc:
        return {"BC", "8 B + 4 B", "Push-Mostly", true};
      case GapKernel::Tc:
        return {"TC", "4 B", "Push-Only", false};
      case GapKernel::Sssp:
        return {"SSSP", "4 B", "Push-Only", true};
    }
    return {"?", "?", "?", false};
}

namespace
{

/** Deterministically pick a source vertex with non-trivial degree. */
Vertex
pickSource(const Graph &g, Rng &rng)
{
    for (int tries = 0; tries < 64; ++tries) {
        auto v = static_cast<Vertex>(rng.below(g.numVertices()));
        if (g.degree(v) > 0)
            return v;
    }
    return g.maxDegreeVertex();
}

/** Virtual mirrors of the CSR structure itself. */
struct CsrMirror
{
    VArray off;
    VArray nbr;

    CsrMirror(const Graph &g, TraceRecorder &rec)
        : off(rec.allocArray(g.numVertices() + 1, 8)),
          nbr(rec.allocArray(g.numEdges(), 4))
    {}
};

} // namespace

// GCC 12 flags the reserve-then-push_back on `queue` below as
// -Wfree-nonheap-object under -O2 (PR 104475, a false positive in the
// vendored vector-growth analysis); the pragma keeps -Werror viable
// without restructuring working code.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wfree-nonheap-object"

BfsResult
recordBfs(const Graph &g, TraceRecorder &rec, std::uint64_t seed)
{
    const Vertex n = g.numVertices();
    Rng rng(seed);
    BfsResult res;
    res.source = pickSource(g, rng);
    res.parent.assign(n, kNoParent);

    CsrMirror csr(g, rec);
    VArray v_parent = rec.allocArray(n, 4);
    VArray v_queue = rec.allocArray(n, 4);

    std::vector<Vertex> queue;
    queue.reserve(n);
    res.parent[res.source] = res.source;
    queue.push_back(res.source);
    rec.store(v_queue.at(0));
    res.visited = 1;

    for (std::size_t head = 0; head < queue.size() && !rec.full(); ++head) {
        Vertex u = queue[head];
        RegId ru = rec.load(v_queue.at(head));
        RegId rbeg = rec.load(csr.off.at(u), ru);
        rec.load(csr.off.at(u + 1), ru);
        for (std::uint64_t e = g.begin(u); e < g.end(u); ++e) {
            if (rec.full())
                break;
            Vertex v = g.neighbors[e];
            RegId rv = rec.load(csr.nbr.at(e), rbeg);
            RegId rp = rec.load(v_parent.at(v), rv);    // irregular gather
            bool unvisited = res.parent[v] == kNoParent;
            rec.branch(unvisited, rp);
            if (unvisited) {
                res.parent[v] = u;
                rec.store(v_parent.at(v), ru, rv);
                queue.push_back(v);
                rec.store(v_queue.at(queue.size() - 1), rv);
                ++res.visited;
            }
        }
    }
    return res;
}

#pragma GCC diagnostic pop

PrResult
recordPr(const Graph &g, TraceRecorder &rec, std::uint64_t seed,
         unsigned max_iters)
{
    const Vertex n = g.numVertices();
    (void)seed;
    constexpr float kDamp = 0.85f;
    PrResult res;
    res.rank.assign(n, 1.0f / static_cast<float>(n));
    std::vector<float> contrib(n, 0.0f);

    CsrMirror csr(g, rec);
    VArray v_rank = rec.allocArray(n, 4);
    VArray v_contrib = rec.allocArray(n, 4);

    const float base = (1.0f - kDamp) / static_cast<float>(n);
    // Phase 1 streams 3 instructions over every vertex; on large graphs
    // with short trace budgets that alone would fill the trace before a
    // single gather is recorded. Record a fixed-size sample of the phase
    // (its access pattern is uniform streaming) while computing all
    // contributions host-side, so the recorded mix stays gather-dominated
    // like a steady-state PR SimPoint.
    const Vertex phase1_recorded = std::min<Vertex>(n, 8192);
    for (unsigned iter = 0; iter < max_iters && !rec.full(); ++iter) {
        // Phase 1: per-vertex outgoing contribution (streaming).
        for (Vertex v = 0; v < n && !rec.full(); ++v) {
            contrib[v] = g.degree(v) > 0
                ? res.rank[v] / static_cast<float>(g.degree(v))
                : 0.0f;
            if (v < phase1_recorded) {
                RegId rr = rec.load(v_rank.at(v));
                RegId rc = rec.alu(rr);
                rec.store(v_contrib.at(v), rc);
            }
        }
        // Phase 2: pull — gather contributions of in-neighbors.
        for (Vertex v = 0; v < n && !rec.full(); ++v) {
            RegId rbeg = rec.load(csr.off.at(v));
            float sum = 0.0f;
            RegId racc = rec.alu();
            for (std::uint64_t e = g.begin(v); e < g.end(v); ++e) {
                if (rec.full())
                    break;
                Vertex u = g.neighbors[e];
                RegId ru = rec.load(csr.nbr.at(e), rbeg);
                RegId rc = rec.load(v_contrib.at(u), ru);   // gather
                sum += contrib[u];
                racc = rec.alu(rc, racc);
                rec.branch(e + 1 < g.end(v), racc);   // edge-loop branch
            }
            res.rank[v] = base + kDamp * sum;
            rec.store(v_rank.at(v), racc);
        }
        ++res.iterations;
    }
    return res;
}

CcResult
recordCc(const Graph &g, TraceRecorder &rec, std::uint64_t seed)
{
    const Vertex n = g.numVertices();
    (void)seed;
    CcResult res;
    res.comp.resize(n);

    CsrMirror csr(g, rec);
    VArray v_comp = rec.allocArray(n, 4);

    for (Vertex v = 0; v < n; ++v)
        res.comp[v] = v;

    bool changed = true;
    while (changed && !rec.full()) {
        changed = false;
        // Hooking: push the smaller label across every edge.
        for (Vertex u = 0; u < n && !rec.full(); ++u) {
            RegId rbeg = rec.load(csr.off.at(u));
            RegId rcu = rec.load(v_comp.at(u));
            for (std::uint64_t e = g.begin(u); e < g.end(u); ++e) {
                if (rec.full())
                    break;
                Vertex v = g.neighbors[e];
                RegId rv = rec.load(csr.nbr.at(e), rbeg);
                RegId rcv = rec.load(v_comp.at(v), rv);     // gather
                bool hook = res.comp[v] < res.comp[u];
                rec.branch(hook, rcv);
                if (hook) {
                    res.comp[u] = res.comp[v];
                    rec.store(v_comp.at(u), rcv, rcu);
                    changed = true;
                }
            }
        }
        // Shortcutting: pointer-jump every label to its root.
        for (Vertex v = 0; v < n && !rec.full(); ++v) {
            RegId rc = rec.load(v_comp.at(v));
            while (res.comp[v] != res.comp[res.comp[v]]) {
                if (rec.full())
                    break;
                // comp[comp[v]] — dependent load-load chain.
                rc = rec.load(v_comp.at(res.comp[v]), rc);
                res.comp[v] = res.comp[res.comp[v]];
                rec.store(v_comp.at(v), rc);
                changed = true;
            }
        }
    }
    return res;
}

BcResult
recordBc(const Graph &g, TraceRecorder &rec, std::uint64_t seed)
{
    const Vertex n = g.numVertices();
    Rng rng(seed);
    BcResult res;
    res.source = pickSource(g, rng);
    res.centrality.assign(n, 0.0f);

    CsrMirror csr(g, rec);
    VArray v_depth = rec.allocArray(n, 4);
    VArray v_sigma = rec.allocArray(n, 8);    // path counts: 8 B property
    VArray v_delta = rec.allocArray(n, 4);
    VArray v_order = rec.allocArray(n, 4);

    std::vector<std::uint32_t> depth(n, kInfDist);
    std::vector<double> sigma(n, 0.0);
    std::vector<float> delta(n, 0.0f);
    std::vector<Vertex> order;
    order.reserve(n);

    depth[res.source] = 0;
    sigma[res.source] = 1.0;
    order.push_back(res.source);
    rec.store(v_order.at(0));

    // Forward phase: BFS recording sigma accumulation.
    for (std::size_t head = 0; head < order.size() && !rec.full(); ++head) {
        Vertex u = order[head];
        RegId ru = rec.load(v_order.at(head));
        RegId rbeg = rec.load(csr.off.at(u), ru);
        RegId rsu = rec.load(v_sigma.at(u), ru);
        for (std::uint64_t e = g.begin(u); e < g.end(u); ++e) {
            if (rec.full())
                break;
            Vertex v = g.neighbors[e];
            RegId rv = rec.load(csr.nbr.at(e), rbeg);
            RegId rd = rec.load(v_depth.at(v), rv);
            bool first_visit = depth[v] == kInfDist;
            rec.branch(first_visit, rd);
            if (first_visit) {
                depth[v] = depth[u] + 1;
                rec.store(v_depth.at(v), rv);
                order.push_back(v);
                rec.store(v_order.at(order.size() - 1), rv);
            }
            if (depth[v] == depth[u] + 1) {
                sigma[v] += sigma[u];
                RegId rsv = rec.load(v_sigma.at(v), rv);
                RegId rsum = rec.alu(rsv, rsu);
                rec.store(v_sigma.at(v), rsum, rv);
            }
        }
    }

    // Backward phase: dependency accumulation in reverse BFS order.
    for (std::size_t i = order.size(); i-- > 1 && !rec.full();) {
        Vertex w = order[i];
        RegId rw = rec.load(v_order.at(i));
        RegId rbeg = rec.load(csr.off.at(w), rw);
        RegId rdw = rec.load(v_delta.at(w), rw);
        RegId rsw = rec.load(v_sigma.at(w), rw);
        for (std::uint64_t e = g.begin(w); e < g.end(w); ++e) {
            if (rec.full())
                break;
            Vertex v = g.neighbors[e];
            RegId rv = rec.load(csr.nbr.at(e), rbeg);
            RegId rd = rec.load(v_depth.at(v), rv);
            bool predecessor = depth[v] + 1 == depth[w];
            rec.branch(predecessor, rd);
            if (predecessor && sigma[w] > 0.0) {
                RegId rsv = rec.load(v_sigma.at(v), rv);
                RegId rdv = rec.load(v_delta.at(v), rv);
                delta[v] += static_cast<float>(
                    sigma[v] / sigma[w] * (1.0 + delta[w]));
                RegId rnew = rec.alu(rec.alu(rsv, rsw), rec.alu(rdv, rdw));
                rec.store(v_delta.at(v), rnew, rv);
            }
        }
        res.centrality[w] = delta[w];
    }
    return res;
}

TcResult
recordTc(const Graph &g, TraceRecorder &rec, std::uint64_t seed)
{
    const Vertex n = g.numVertices();
    (void)seed;
    TcResult res;

    // GAP pre-sorts adjacency lists before counting; the sort is setup,
    // not part of the measured kernel, so it is not recorded.
    Graph sorted = g;
    for (Vertex v = 0; v < n; ++v) {
        std::sort(sorted.neighbors.begin()
                      + static_cast<std::ptrdiff_t>(sorted.begin(v)),
                  sorted.neighbors.begin()
                      + static_cast<std::ptrdiff_t>(sorted.end(v)));
    }

    CsrMirror csr(sorted, rec);

    for (Vertex u = 0; u < n && !rec.full(); ++u) {
        RegId rbu = rec.load(csr.off.at(u));
        for (std::uint64_t e = sorted.begin(u); e < sorted.end(u); ++e) {
            Vertex v = sorted.neighbors[e];
            RegId rv = rec.load(csr.nbr.at(e), rbu);
            if (v >= u)
                break;    // count each triangle once (u > v ordering)
            RegId rbv = rec.load(csr.off.at(v), rv);
            // Merge-intersect adj(u) and adj(v), both sorted.
            std::uint64_t i = sorted.begin(u);
            std::uint64_t j = sorted.begin(v);
            while (i < sorted.end(u) && j < sorted.end(v) && !rec.full()) {
                Vertex a = sorted.neighbors[i];
                Vertex b = sorted.neighbors[j];
                if (a >= v)
                    break;
                RegId ra = rec.load(csr.nbr.at(i), rbu);
                RegId rb = rec.load(csr.nbr.at(j), rbv);
                rec.branch(a == b, rec.alu(ra, rb));
                if (a == b) {
                    ++res.triangles;
                    ++i;
                    ++j;
                } else if (a < b) {
                    ++i;
                } else {
                    ++j;
                }
            }
            if (rec.full())
                break;
        }
    }
    return res;
}

SsspResult
recordSssp(const Graph &g, TraceRecorder &rec, std::uint64_t seed,
           std::uint32_t delta)
{
    const Vertex n = g.numVertices();
    Rng rng(seed);
    SsspResult res;
    res.source = pickSource(g, rng);
    res.dist.assign(n, kInfDist);

    CsrMirror csr(g, rec);
    VArray v_dist = rec.allocArray(n, 4);
    VArray v_wgt = rec.allocArray(g.numEdges(), 4);
    VArray v_bucket = rec.allocArray(n * 2, 4);

    // Deterministic synthetic weights in [1, 32], as GAP does for
    // unweighted inputs.
    auto weight = [](std::uint64_t e) {
        return static_cast<std::uint32_t>(1 + (mix64(e) & 31));
    };

    std::vector<std::vector<Vertex>> buckets;
    auto bucketOf = [&](std::uint32_t d) { return d / delta; };
    auto push = [&](Vertex v, std::uint32_t d) {
        std::size_t b = bucketOf(d);
        if (buckets.size() <= b)
            buckets.resize(b + 1);
        buckets[b].push_back(v);
    };

    res.dist[res.source] = 0;
    push(res.source, 0);
    rec.store(v_bucket.at(0));

    std::uint64_t bucket_writes = 1;
    for (std::size_t b = 0; b < buckets.size() && !rec.full(); ++b) {
        // Δ-stepping re-examines a bucket until it stops growing.
        for (std::size_t i = 0; i < buckets[b].size() && !rec.full(); ++i) {
            Vertex u = buckets[b][i];
            RegId ru = rec.load(v_bucket.at(i % (n * 2)));
            RegId rdu = rec.load(v_dist.at(u), ru);
            if (bucketOf(res.dist[u]) != b)
                continue;    // stale entry
            RegId rbeg = rec.load(csr.off.at(u), ru);
            for (std::uint64_t e = g.begin(u); e < g.end(u); ++e) {
                if (rec.full())
                    break;
                Vertex v = g.neighbors[e];
                RegId rv = rec.load(csr.nbr.at(e), rbeg);
                RegId rw = rec.load(v_wgt.at(e), rbeg);
                std::uint32_t cand = res.dist[u] + weight(e);
                RegId rdv = rec.load(v_dist.at(v), rv);
                bool relax = cand < res.dist[v];
                rec.branch(relax, rec.alu(rdv, rec.alu(rdu, rw)));
                if (relax) {
                    res.dist[v] = cand;
                    rec.store(v_dist.at(v), rv);
                    push(v, cand);
                    rec.store(v_bucket.at(bucket_writes++ % (n * 2)), rv);
                }
            }
        }
    }
    return res;
}

void
recordGapKernel(GapKernel k, const Graph &g, TraceRecorder &rec,
                std::uint64_t seed)
{
    switch (k) {
      case GapKernel::Bfs:
        recordBfs(g, rec, seed);
        return;
      case GapKernel::Pr:
        recordPr(g, rec, seed);
        return;
      case GapKernel::Cc:
        recordCc(g, rec, seed);
        return;
      case GapKernel::Bc:
        recordBc(g, rec, seed);
        return;
      case GapKernel::Tc:
        recordTc(g, rec, seed);
        return;
      case GapKernel::Sssp:
        recordSssp(g, rec, seed);
        return;
    }
}

} // namespace tlpsim::workloads
