/**
 * @file
 * The six GAP benchmark kernels (Table IV), implemented for real against
 * CSR graphs and recorded into tlpsim traces.
 *
 * Each kernel runs its actual algorithm on host data and records the
 * corresponding instruction stream (offset/neighbor streaming loads,
 * irregular property-array gathers, frontier pushes, data-dependent
 * branches) through TraceRecorder. The recorded access pattern therefore
 * *is* the algorithm's access pattern, at laptop scale.
 *
 * Recording stops when the recorder is full; the returned result structs
 * are complete only if the algorithm finished first (tests use small
 * graphs with generous instruction budgets to validate correctness).
 */

#ifndef TLPSIM_WORKLOADS_GAP_KERNELS_HH
#define TLPSIM_WORKLOADS_GAP_KERNELS_HH

#include <cstdint>
#include <vector>

#include "workloads/graph.hh"
#include "workloads/recorder.hh"

namespace tlpsim::workloads
{

/** Kernels from the GAP benchmark suite. */
enum class GapKernel
{
    Bfs,    ///< breadth-first search (push, frontier)
    Pr,     ///< PageRank (pull)
    Cc,     ///< connected components, Shiloach-Vishkin style
    Bc,     ///< betweenness centrality, Brandes
    Tc,     ///< triangle counting (sorted-list intersection)
    Sssp,   ///< single-source shortest paths, Δ-stepping
};

constexpr GapKernel kAllGapKernels[] = {
    GapKernel::Bfs, GapKernel::Pr, GapKernel::Cc,
    GapKernel::Bc, GapKernel::Tc, GapKernel::Sssp,
};

const char *toString(GapKernel k);

/** Table IV traits. */
struct GapKernelTraits
{
    const char *name;
    const char *irreg_elem_size;   ///< size of the irregular property element
    const char *execution_style;
    bool uses_frontier;
};

GapKernelTraits gapKernelTraits(GapKernel k);

constexpr Vertex kNoParent = ~Vertex{0};
constexpr std::uint32_t kInfDist = ~std::uint32_t{0};

struct BfsResult
{
    Vertex source = 0;
    std::uint64_t visited = 0;
    std::vector<Vertex> parent;
};

struct PrResult
{
    unsigned iterations = 0;
    std::vector<float> rank;
};

struct CcResult
{
    std::vector<Vertex> comp;
};

struct BcResult
{
    Vertex source = 0;
    std::vector<float> centrality;
};

struct TcResult
{
    std::uint64_t triangles = 0;
};

struct SsspResult
{
    Vertex source = 0;
    std::vector<std::uint32_t> dist;
};

BfsResult recordBfs(const Graph &g, TraceRecorder &rec, std::uint64_t seed);
PrResult recordPr(const Graph &g, TraceRecorder &rec, std::uint64_t seed,
                  unsigned max_iters = 8);
CcResult recordCc(const Graph &g, TraceRecorder &rec, std::uint64_t seed);
BcResult recordBc(const Graph &g, TraceRecorder &rec, std::uint64_t seed);
TcResult recordTc(const Graph &g, TraceRecorder &rec, std::uint64_t seed);
SsspResult recordSssp(const Graph &g, TraceRecorder &rec, std::uint64_t seed,
                      std::uint32_t delta = 8);

/** Dispatch by kernel id (used by the workload registry). */
void recordGapKernel(GapKernel k, const Graph &g, TraceRecorder &rec,
                     std::uint64_t seed);

} // namespace tlpsim::workloads

#endif // TLPSIM_WORKLOADS_GAP_KERNELS_HH
