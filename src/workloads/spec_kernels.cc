#include "workloads/spec_kernels.hh"

#include <algorithm>
#include <vector>

#include "common/bitops.hh"
#include "common/rng.hh"

namespace tlpsim::workloads
{

const char *
toString(SpecKernel k)
{
    switch (k) {
      case SpecKernel::McfPchase: return "mcf_pchase";
      case SpecKernel::LbmStencil: return "lbm_stencil";
      case SpecKernel::LibqStream: return "libq_stream";
      case SpecKernel::OmnetppHeap: return "omnetpp_heap";
      case SpecKernel::XalanHash: return "xalan_hash";
      case SpecKernel::GccMixed: return "gcc_mixed";
      case SpecKernel::DeepsjengTt: return "deepsjeng_tt";
      case SpecKernel::RomsSpmv: return "roms_spmv";
    }
    return "?";
}

namespace
{

/** Dependent pointer chase over a random permutation cycle (mcf-like). */
void
recordMcfPchase(TraceRecorder &rec, std::uint64_t seed, unsigned ws_shift)
{
    Rng rng(seed);
    const std::uint64_t nodes = (std::uint64_t{4} << 20) >> ws_shift; // 32 MB
    VArray v_next = rec.allocArray(nodes, 8);
    VArray v_cost = rec.allocArray(nodes, 8);

    // Sattolo's algorithm: a single cycle covering every node.
    std::vector<std::uint32_t> next(nodes);
    for (std::uint64_t i = 0; i < nodes; ++i)
        next[i] = static_cast<std::uint32_t>(i);
    for (std::uint64_t i = nodes - 1; i > 0; --i)
        std::swap(next[i], next[rng.below(i)]);

    std::uint64_t cur = 0;
    RegId rptr = rec.alu();
    std::uint64_t step = 0;
    while (!rec.full()) {
        rptr = rec.load(v_next.at(cur), rptr);       // serialized chase
        RegId rc = rec.load(v_cost.at(cur), rptr);
        RegId rsum = rec.alu(rc, rptr);
        rec.branch((step & 7) != 7, rsum);
        if ((step & 7) == 7)
            rec.store(v_cost.at(cur), rsum);         // arc-cost update
        cur = next[cur];
        ++step;
    }
}

/** 3-D 7-point stencil sweep, double grid, two arrays (lbm-like). */
void
recordLbmStencil(TraceRecorder &rec, std::uint64_t seed, unsigned ws_shift)
{
    (void)seed;
    const std::uint64_t dim = 128 >> (ws_shift / 3);
    const std::uint64_t cells = dim * dim * dim;    // 128^3*8B*2 = 32 MB
    VArray v_src = rec.allocArray(cells, 8);
    VArray v_dst = rec.allocArray(cells, 8);

    auto idx = [dim](std::uint64_t x, std::uint64_t y, std::uint64_t z) {
        return (z * dim + y) * dim + x;
    };

    while (!rec.full()) {
        for (std::uint64_t z = 1; z + 1 < dim && !rec.full(); ++z) {
            for (std::uint64_t y = 1; y + 1 < dim; ++y) {
                for (std::uint64_t x = 1; x + 1 < dim; ++x) {
                    if (rec.full())
                        break;
                    std::uint64_t c = idx(x, y, z);
                    RegId r0 = rec.load(v_src.at(c));
                    RegId r1 = rec.load(v_src.at(c - 1));
                    RegId r2 = rec.load(v_src.at(c + 1));
                    RegId r3 = rec.load(v_src.at(c - dim));
                    RegId r4 = rec.load(v_src.at(c + dim));
                    RegId r5 = rec.load(v_src.at(c - dim * dim));
                    RegId r6 = rec.load(v_src.at(c + dim * dim));
                    RegId s1 = rec.alu(r0, r1);
                    RegId s2 = rec.alu(r2, r3);
                    RegId s3 = rec.alu(r4, r5);
                    RegId s4 = rec.alu(s1, s2);
                    RegId s5 = rec.alu(s3, r6);
                    RegId s6 = rec.alu(s4, s5);
                    rec.store(v_dst.at(c), s6);
                }
            }
        }
        std::swap(v_src, v_dst);
        rec.jump();
    }
}

/** Unit-stride read-modify-write over large vectors (libquantum-like). */
void
recordLibqStream(TraceRecorder &rec, std::uint64_t seed, unsigned ws_shift)
{
    (void)seed;
    const std::uint64_t elems = (std::uint64_t{4} << 20) >> ws_shift; // 32 MB
    VArray v_state = rec.allocArray(elems, 8);

    while (!rec.full()) {
        for (std::uint64_t i = 0; i < elems && !rec.full(); ++i) {
            RegId r = rec.load(v_state.at(i));
            RegId t = rec.alu(r);
            rec.store(v_state.at(i), t);
            rec.branch((i & 63) == 63, t);    // gate-block boundary
        }
        rec.jump();
    }
}

/** Binary-heap event queue with payload gathers (omnetpp-like). */
void
recordOmnetppHeap(TraceRecorder &rec, std::uint64_t seed, unsigned ws_shift)
{
    Rng rng(seed);
    const std::uint64_t heap_cap = std::uint64_t{1} << 20;
    const std::uint64_t payloads = (std::uint64_t{2} << 20) >> ws_shift;
    VArray v_heap = rec.allocArray(heap_cap, 8);
    VArray v_payload = rec.allocArray(payloads, 32);

    std::vector<std::uint64_t> heap;
    heap.reserve(heap_cap);

    auto siftUp = [&](std::size_t i) {
        while (i > 0 && !rec.full()) {
            std::size_t p = (i - 1) / 2;
            RegId rc = rec.load(v_heap.at(i));
            RegId rp = rec.load(v_heap.at(p));
            bool swap_up = heap[i] < heap[p];
            rec.branch(swap_up, rec.alu(rc, rp));
            if (!swap_up)
                break;
            std::swap(heap[i], heap[p]);
            rec.store(v_heap.at(i), rp);
            rec.store(v_heap.at(p), rc);
            i = p;
        }
    };

    auto siftDown = [&]() {
        std::size_t i = 0;
        while (!rec.full()) {
            std::size_t l = 2 * i + 1;
            std::size_t r = l + 1;
            if (l >= heap.size())
                break;
            std::size_t m = l;
            RegId rl = rec.load(v_heap.at(l));
            if (r < heap.size()) {
                RegId rr = rec.load(v_heap.at(r));
                if (heap[r] < heap[l])
                    m = r;
                rec.branch(m == r, rec.alu(rl, rr));
            }
            RegId ri = rec.load(v_heap.at(i));
            bool swap_down = heap[m] < heap[i];
            rec.branch(swap_down, ri);
            if (!swap_down)
                break;
            std::swap(heap[i], heap[m]);
            rec.store(v_heap.at(i), ri);
            rec.store(v_heap.at(m), ri);
            i = m;
        }
    };

    // Seed the queue, then run the pop-one-push-two / pop-heavy phases an
    // event simulator exhibits.
    while (!rec.full()) {
        if (heap.size() < 1024 || (heap.size() < heap_cap - 2
                                   && rng.chance(0.55))) {
            std::uint64_t key = rng.next() >> 16;
            heap.push_back(key);
            rec.store(v_heap.at(heap.size() - 1));
            siftUp(heap.size() - 1);
        } else if (!heap.empty()) {
            std::uint64_t key = heap[0];
            // Touch the event payload (irregular, large working set).
            std::uint64_t pi = key % payloads;
            RegId rp0 = rec.load(v_payload.at(pi));
            RegId rp1 = rec.load(v_payload.at(pi) + 16, rp0);
            rec.store(v_payload.at(pi) + 24, rp1);
            heap[0] = heap.back();
            heap.pop_back();
            if (!heap.empty()) {
                rec.store(v_heap.at(0));
                siftDown();
            }
        }
    }
}

/** Open-addressing (linear probe) hash table lookups (xalancbmk-like). */
void
recordXalanHash(TraceRecorder &rec, std::uint64_t seed, unsigned ws_shift)
{
    Rng rng(seed);
    const std::uint64_t slots = (std::uint64_t{4} << 20) >> ws_shift;
    VArray v_table = rec.allocArray(slots, 16);    // 64 MB at full size

    std::vector<std::uint64_t> table(slots, 0);
    std::uint64_t population = 0;
    const std::uint64_t target_pop = slots / 2;    // 50 % load factor

    while (!rec.full()) {
        std::uint64_t key = rng.next() | 1;
        bool insert = population < target_pop || rng.chance(0.1);
        std::uint64_t h = mix64(key) % slots;
        RegId rk = rec.alu();
        for (std::uint64_t probe = 0; probe < slots && !rec.full(); ++probe) {
            std::uint64_t s = (h + probe) % slots;
            RegId rs = rec.load(v_table.at(s), rk);
            bool end = table[s] == 0 || table[s] == key;
            rec.branch(end, rs);
            if (end) {
                if (insert && table[s] == 0) {
                    table[s] = key;
                    ++population;
                    rec.store(v_table.at(s), rs);
                    rec.store(v_table.at(s) + 8, rs);
                }
                break;
            }
        }
    }
}

/** Branchy walks with mixed locality (gcc-like, moderate MPKI). */
void
recordGccMixed(TraceRecorder &rec, std::uint64_t seed, unsigned ws_shift)
{
    Rng rng(seed);
    const std::uint64_t hot = (std::uint64_t{64} << 10);            // 512 KB
    const std::uint64_t cold = (std::uint64_t{1} << 20) >> ws_shift; // 8 MB
    VArray v_hot = rec.allocArray(hot, 8);
    VArray v_cold = rec.allocArray(cold, 8);

    while (!rec.full()) {
        // Hot loop: fits in L2, branch-heavy.
        std::uint64_t i = rng.below(hot);
        for (unsigned k = 0; k < 12 && !rec.full(); ++k) {
            RegId r = rec.load(v_hot.at(i));
            bool t = (mix64(i + k) & 3) != 0;
            rec.branch(t, r);
            i = (i + (t ? 1 : 17)) % hot;
            rec.ops(2);
        }
        // Cold excursion: IR node visit far from the hot set.
        std::uint64_t j = rng.below(cold);
        RegId rc = rec.load(v_cold.at(j));
        RegId rc2 = rec.load(v_cold.at((j + 5) % cold), rc);
        rec.branch((mix64(j) & 7) == 0, rc2);
        rec.store(v_cold.at(j), rc2);
    }
}

/** Random transposition-table probes (deepsjeng-like). */
void
recordDeepsjengTt(TraceRecorder &rec, std::uint64_t seed, unsigned ws_shift)
{
    Rng rng(seed);
    const std::uint64_t entries = (std::uint64_t{4} << 20) >> ws_shift;
    VArray v_tt = rec.allocArray(entries, 16);     // 64 MB at full size

    while (!rec.full()) {
        std::uint64_t hash = rng.next();
        std::uint64_t slot = hash % entries;
        RegId rtag = rec.load(v_tt.at(slot));
        RegId rval = rec.load(v_tt.at(slot) + 8, rtag);
        bool hit = (hash & 7) < 3;                 // ~37 % TT hit rate
        rec.branch(hit, rval);
        if (!hit) {
            // Search work then store the new entry.
            rec.ops(6);
            rec.store(v_tt.at(slot), rval);
            rec.store(v_tt.at(slot) + 8, rval);
        } else {
            rec.ops(2);
        }
    }
}

/** CSR sparse matrix-vector product (roms-like gathers + streams). */
void
recordRomsSpmv(TraceRecorder &rec, std::uint64_t seed, unsigned ws_shift)
{
    Rng rng(seed);
    const std::uint64_t rows = (std::uint64_t{1} << 20) >> ws_shift;
    const unsigned nnz_per_row = 12;
    const std::uint64_t x_elems = (std::uint64_t{2} << 20) >> ws_shift;
    VArray v_cols = rec.allocArray(rows * nnz_per_row, 4);
    VArray v_vals = rec.allocArray(rows * nnz_per_row, 8);
    VArray v_x = rec.allocArray(x_elems, 8);       // 16 MB at full size
    VArray v_y = rec.allocArray(rows, 8);

    // Column pattern: mostly near-diagonal, some far entries.
    std::vector<std::uint32_t> cols(rows * nnz_per_row);
    for (std::uint64_t r = 0; r < rows; ++r) {
        for (unsigned k = 0; k < nnz_per_row; ++k) {
            std::uint64_t c = rng.chance(0.7)
                ? (r * 2 + k) % x_elems
                : rng.below(x_elems);
            cols[r * nnz_per_row + k] = static_cast<std::uint32_t>(c);
        }
    }

    while (!rec.full()) {
        for (std::uint64_t r = 0; r < rows && !rec.full(); ++r) {
            RegId racc = rec.alu();
            for (unsigned k = 0; k < nnz_per_row; ++k) {
                std::uint64_t e = r * nnz_per_row + k;
                RegId rc = rec.load(v_cols.at(e));
                RegId rv = rec.load(v_vals.at(e));
                RegId rx = rec.load(v_x.at(cols[e]), rc);   // gather
                racc = rec.alu(racc, rec.alu(rv, rx));
            }
            rec.store(v_y.at(r), racc);
        }
        rec.jump();
    }
}

} // namespace

void
recordSpecKernel(SpecKernel k, TraceRecorder &rec, std::uint64_t seed,
                 unsigned ws_shift)
{
    switch (k) {
      case SpecKernel::McfPchase:
        recordMcfPchase(rec, seed, ws_shift);
        return;
      case SpecKernel::LbmStencil:
        recordLbmStencil(rec, seed, ws_shift);
        return;
      case SpecKernel::LibqStream:
        recordLibqStream(rec, seed, ws_shift);
        return;
      case SpecKernel::OmnetppHeap:
        recordOmnetppHeap(rec, seed, ws_shift);
        return;
      case SpecKernel::XalanHash:
        recordXalanHash(rec, seed, ws_shift);
        return;
      case SpecKernel::GccMixed:
        recordGccMixed(rec, seed, ws_shift);
        return;
      case SpecKernel::DeepsjengTt:
        recordDeepsjengTt(rec, seed, ws_shift);
        return;
      case SpecKernel::RomsSpmv:
        recordRomsSpmv(rec, seed, ws_shift);
        return;
    }
}

} // namespace tlpsim::workloads
