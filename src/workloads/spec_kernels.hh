/**
 * @file
 * SPEC-CPU-like synthetic kernels.
 *
 * The paper evaluates 24 SPEC CPU 2006/2017 traces with LLC MPKI > 1. The
 * proprietary binaries/SimPoints are not redistributable, so this module
 * provides eight kernels whose *memory behaviour classes* span the same
 * space the memory-bound SPEC subset occupies: dependent pointer chasing,
 * regular stencils/streams (highly prefetchable), hash probing, heap
 * management, table lookups, sparse algebra, and branchy mixed loops.
 * Predictors only ever observe {PC, address, history, outcome}, which these
 * kernels generate from the genuine algorithms.
 */

#ifndef TLPSIM_WORKLOADS_SPEC_KERNELS_HH
#define TLPSIM_WORKLOADS_SPEC_KERNELS_HH

#include <cstdint>

#include "workloads/recorder.hh"

namespace tlpsim::workloads
{

/** SPEC-like kernel identifiers; names hint the SPEC member they mimic. */
enum class SpecKernel
{
    McfPchase,      ///< dependent pointer chase over a random cycle (mcf)
    LbmStencil,     ///< 3-D 7-point stencil over two grids (lbm/cactus)
    LibqStream,     ///< unit-stride read-modify-write streams (libquantum)
    OmnetppHeap,    ///< binary-heap event queue + payload gathers (omnetpp)
    XalanHash,      ///< open-addressing hash probes (xalancbmk)
    GccMixed,       ///< branchy mixed-locality walks (gcc)
    DeepsjengTt,    ///< transposition-table probes (deepsjeng)
    RomsSpmv,       ///< CSR sparse mat-vec (roms/fotonik-like gathers)
};

constexpr SpecKernel kAllSpecKernels[] = {
    SpecKernel::McfPchase, SpecKernel::LbmStencil, SpecKernel::LibqStream,
    SpecKernel::OmnetppHeap, SpecKernel::XalanHash, SpecKernel::GccMixed,
    SpecKernel::DeepsjengTt, SpecKernel::RomsSpmv,
};

const char *toString(SpecKernel k);

/**
 * Record @p k until the recorder is full.
 *
 * @param ws_shift  log2 scaling of the kernel's working set; 0 = full-size
 *                  (tens of MB, well beyond the LLC), each +1 halves it.
 */
void recordSpecKernel(SpecKernel k, TraceRecorder &rec, std::uint64_t seed,
                      unsigned ws_shift = 0);

} // namespace tlpsim::workloads

#endif // TLPSIM_WORKLOADS_SPEC_KERNELS_HH
