/**
 * @file
 * Set-associative write-back cache with MSHRs, read/write/prefetch queues,
 * LRU replacement, prefetcher + filter hooks, and the FLP delayed
 * speculative-DRAM path.
 *
 * Timing model (ChampSim-class): a request entering a queue becomes
 * eligible for tag lookup after the cache's access latency; hits respond
 * at lookup time, misses allocate an MSHR and forward downstream, and
 * fills respond to all merged waiters the cycle they are installed.
 *
 * Prefetch fill levels: a prefetch packet carries the *lowest* level that
 * should allocate it (1=L1D, 2=L2C, 3=LLC). Every level at or below its
 * own number allocates the line on the fill path, as in ChampSim.
 */

#ifndef TLPSIM_CACHE_CACHE_HH
#define TLPSIM_CACHE_CACHE_HH

#include <string>
#include <vector>

#include "common/ring.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/packet.hh"
#include "prefetch/prefetcher.hh"

namespace tlpsim
{

class DramController;

/**
 * Translates virtual prefetch candidates to physical addresses (L1D
 * only). A direct virtual call, not std::function: the hook fires per
 * prefetch candidate — the hottest translation path in the system — and
 * one owner (the Simulator's page-table adapter) serves every core,
 * dispatched on the core argument, mirroring SpecIssueObserver.
 */
class Translator
{
  public:
    virtual ~Translator() = default;

    virtual Addr translate(std::uint8_t core, Addr vaddr) = 0;
};

class Cache : public MemoryBackend, public MemoryClient
{
  public:
    struct Params
    {
        std::string name = "cache";
        MemLevel level = MemLevel::L1D;
        /** Numeric level for fill decisions: 1=L1, 2=L2, 3=LLC. */
        unsigned level_num = 1;
        unsigned sets = 64;
        unsigned ways = 8;
        unsigned latency = 4;
        unsigned mshrs = 10;
        unsigned rq_size = 32;
        unsigned wq_size = 32;
        unsigned pq_size = 16;
        /** Tag lookups per cycle across RQ/WQ/PQ. */
        unsigned lookups_per_cycle = 4;
        /** Allow demand loads hitting here to serve (always true). */
        Prefetcher *prefetcher = nullptr;
        PrefetchFilter *filter = nullptr;
        /** L1D only: translate virtual prefetch candidates (direct
         *  virtual call; hot path — see Translator). */
        Translator *translator = nullptr;
        /** L1D only: DRAM controller for delayed FLP speculative reads. */
        DramController *spec_dram = nullptr;
        /** Extra cycles between miss detection and spec issue (paper: 6). */
        unsigned spec_latency = 6;
        /** Notified when this cache issues a delayed speculative DRAM
         *  read (direct call; hot path — see SpecIssueObserver). */
        SpecIssueObserver *spec_observer = nullptr;
    };

    Cache(const Params &p, MemoryBackend *lower, StatGroup *stats);

    // MemoryBackend
    bool sendRead(const Packet &pkt) override;
    bool sendWrite(const Packet &pkt) override;
    bool sendPrefetch(const Packet &pkt) override;
    bool canAcceptPrefetch() const override { return pq_.size() < params_.pq_size; }
    bool probe(Addr paddr) const override;
    void tick(Cycle now) override;

    /** Per-cycle entry point for the simulator loop: checks the quiet
     *  watermark inline so a no-op cycle costs one compare instead of a
     *  virtual call into tick()'s identical early return. */
    void
    tickIfDue(Cycle now)
    {
        if (now >= next_ready_)
            tick(now);
    }

    /**
     * Earliest cycle strictly after @p now at which tick() has any work
     * (kCycleNever if quiescent until a send/fill arrives). Valid after
     * tick(now); the same watermark also short-circuits quiet ticks.
     */
    Cycle nextEventCycle(Cycle now) const
    {
        return next_ready_ > now ? next_ready_ : now + 1;
    }

    // MemoryClient (fills returning from the lower level)
    void memReturn(const Packet &pkt) override;

    const Params &params() const { return params_; }

    /** Demand misses outstanding (used by tests). */
    std::size_t mshrsInUse() const { return mshrs_.size(); }

    /** Storage of data+tag arrays (for the Fig. 17 budget bench). */
    std::uint64_t storageBits() const;

  private:
    /** Sentinel in tags_ for an invalid way: larger than any block
     *  number the 46-bit physical space (plus PTE region) can produce. */
    static constexpr Addr kNoTag = ~Addr{0};

    /** Per-way metadata. The tag and LRU stamp live in the parallel
     *  tags_/lru_ arrays — the lookup/probe tag scans and the victim
     *  scan each walk one flat array (a set's 8-16 entries span one or
     *  two cache lines) without dragging the rest of the metadata
     *  through. A way is valid iff its tags_ entry != kNoTag. */
    struct Block
    {
        bool dirty = false;
        bool prefetched = false; ///< filled by a prefetch, not yet used
        MemLevel pf_served_from = MemLevel::None;
    };

    struct Mshr
    {
        Addr block = 0;          ///< block number
        AccessType type = AccessType::Load;   ///< promoted on demand merge
        bool demand_merged = false;           ///< late prefetch marker
        bool dirty_on_fill = false;           ///< store miss: dirty the fill
        Packet primary;          ///< first packet (carries pred_meta)
        std::vector<Packet> waiters;
    };

    struct TimedPacket
    {
        Packet pkt;
        Cycle ready_at;
    };

    Block *lookup(Addr paddr, bool update_lru);
    Mshr *findMshr(Addr paddr);

    /** Recompute next_ready_ from the queue fronts (end of tick()). */
    Cycle computeNextReady(Cycle now) const;

    void processFills(Cycle now);
    bool processRead(TimedPacket &entry, Cycle now);
    bool processWrite(TimedPacket &entry, Cycle now);
    bool processPrefetch(TimedPacket &entry, Cycle now);
    void flushSpecDelay(Cycle now);

    /** Install @p pkt's block; false if blocked on a full lower WQ. */
    bool install(const Packet &pkt, Cycle now);

    void respond(Packet pkt, MemLevel served_by);
    /** Waiter storage for a new MSHR, recycled from retired ones so
     *  steady-state merges never touch the allocator. */
    std::vector<Packet> takeWaiterStorage();
    void notifyPrefetcher(const Packet &pkt, bool hit, bool prefetch_hit,
                          Cycle now);
    /** @p tag is the victim's tags_ entry (kNoTag for an empty way). */
    void classifyEviction(Addr tag, const Block &blk);
    void countAccess(AccessType type, bool hit);

    Params params_;
    MemoryBackend *lower_;
    StatGroup *stats_;

    std::vector<Addr> tags_;        ///< per way; kNoTag = invalid
    std::vector<std::uint64_t> lru_; ///< LRU stamps parallel to tags_
    std::vector<Block> blocks_;     ///< metadata parallel to tags_
    std::vector<Mshr> mshrs_;
    // FIFO queues are rings, not deques: libstdc++'s deque mallocs and
    // frees a node every ~512B of traffic, which lands on the per-cycle
    // path. Each ring is reserved to its Params bound in the ctor.
    Ring<TimedPacket> rq_;
    Ring<TimedPacket> wq_;
    Ring<TimedPacket> pq_;
    Ring<TimedPacket> fills_;
    Ring<TimedPacket> spec_delay_;
    /** Initial per-vector waiter capacity (observed maxima are 1-2;
     *  growth past this is geometric and one-time per vector). */
    static constexpr std::size_t kWaiterReserve = 8;
    /** Retired MSHRs' waiter vectors, kept for their capacity. The pool
     *  is filled to the MSHR count at construction, so a live run never
     *  constructs waiter storage from scratch. */
    std::vector<std::vector<Packet>> waiter_pool_;
    std::vector<PrefetchCandidate> cand_buf_;
    std::uint64_t lru_clock_ = 0;
    Cycle now_ = 0;
    /** Quiet-cycle watermark: when now < next_ready_, tick(now) would be
     *  a no-op (no fills pending, no spec issue or queue front due), so
     *  tick() returns immediately. Pushed down by sendRead/sendWrite/
     *  sendPrefetch/memReturn, recomputed at the end of a full tick. */
    Cycle next_ready_ = 0;

    // Per-type hit/miss counters, indexed by AccessType.
    Counter *hit_[5];
    Counter *miss_[5];
    Counter *mshr_merge_;
    Counter *pf_issued_;
    Counter *pf_filtered_;
    Counter *pf_dropped_queue_;
    Counter *pf_dup_;
    Counter *pf_useful_;
    Counter *pf_useless_;
    Counter *pf_late_;
    Counter *writebacks_;
    Counter *spec_delayed_issued_;
    // Usefulness bucketed by where the prefetch was served from
    // (index by MemLevel: L1D unused, L2C, LLC, Dram).
    Counter *pf_useful_from_[4];
    Counter *pf_useless_from_[4];
};

} // namespace tlpsim

#endif // TLPSIM_CACHE_CACHE_HH
