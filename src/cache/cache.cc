#include "cache/cache.hh"

#include <algorithm>
#include <cassert>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include "common/bitops.hh"
#include "mem/dram.hh"

namespace tlpsim
{

namespace
{

const char *kTypeNames[] = {"load", "rfo", "pf", "wb", "trans"};

int
levelIndex(MemLevel l)
{
    switch (l) {
      case MemLevel::L2C: return 1;
      case MemLevel::LLC: return 2;
      case MemLevel::Dram: return 3;
      default: return 0;
    }
}

// Tag-scan kernel: way of the first tags_[w] == tag, or -1. The scalar
// and AVX2 bodies return the same way (movemask+ctz picks the lowest
// match, matching the scalar loop's first-hit order), so dispatch is
// invisible to the simulation. kNoTag never equals a block number, so
// invalid ways can never match.
inline int
findWayScalar(const Addr *tags, unsigned ways, Addr tag)
{
    for (unsigned w = 0; w < ways; ++w) {
        if (tags[w] == tag)
            return static_cast<int>(w);
    }
    return -1;
}

#if defined(__x86_64__)
__attribute__((target("avx2"))) int
findWayAvx2(const Addr *tags, unsigned ways, Addr tag)
{
    static_assert(sizeof(Addr) == 8, "tag scan assumes 64-bit tags");
    const __m256i vtag = _mm256_set1_epi64x(static_cast<long long>(tag));
    for (unsigned w = 0; w < ways; w += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(tags + w));
        const int m = _mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(v, vtag)));
        if (m != 0)
            return static_cast<int>(w) + __builtin_ctz(static_cast<unsigned>(m));
    }
    return -1;
}

bool
hostHasAvx2ForTags()
{
    static const bool has = __builtin_cpu_supports("avx2");
    return has;
}
#endif

/** Associativity-dispatched scan (AVX2 when the host has it and the
 *  set's tag run is a whole number of 4-lane vectors). */
inline int
findWay(const Addr *tags, unsigned ways, Addr tag)
{
#if defined(__x86_64__)
    if ((ways & 3u) == 0 && hostHasAvx2ForTags())
        return findWayAvx2(tags, ways, tag);
#endif
    return findWayScalar(tags, ways, tag);
}

} // namespace

Cache::Cache(const Params &p, MemoryBackend *lower, StatGroup *stats)
    : params_(p), lower_(lower), stats_(stats),
      tags_(static_cast<std::size_t>(p.sets) * p.ways, kNoTag),
      lru_(static_cast<std::size_t>(p.sets) * p.ways, 0),
      blocks_(static_cast<std::size_t>(p.sets) * p.ways)
{
    assert(isPowerOfTwo(p.sets));
    for (int t = 0; t < 5; ++t) {
        hit_[t] = stats->counter(p.name + "." + kTypeNames[t] + "_hit");
        miss_[t] = stats->counter(p.name + "." + kTypeNames[t] + "_miss");
    }
    mshr_merge_ = stats->counter(p.name + ".mshr_merge");
    pf_issued_ = stats->counter(p.name + ".pf_issued");
    pf_filtered_ = stats->counter(p.name + ".pf_filtered");
    pf_dropped_queue_ = stats->counter(p.name + ".pf_dropped_queue");
    pf_dup_ = stats->counter(p.name + ".pf_dup");
    pf_useful_ = stats->counter(p.name + ".pf_useful");
    pf_useless_ = stats->counter(p.name + ".pf_useless");
    pf_late_ = stats->counter(p.name + ".pf_late");
    writebacks_ = stats->counter(p.name + ".writebacks");
    spec_delayed_issued_ = stats->counter(p.name + ".spec_delayed_issued");
    const char *lvl[] = {"l1d", "l2c", "llc", "dram"};
    for (int i = 0; i < 4; ++i) {
        pf_useful_from_[i]
            = stats->counter(p.name + ".pf_useful_from_" + lvl[i]);
        pf_useless_from_[i]
            = stats->counter(p.name + ".pf_useless_from_" + lvl[i]);
    }

    // Reserve every queue to its structural bound so the per-cycle loop
    // never allocates in steady state (fills_ is bounded by outstanding
    // misses, which the MSHR count caps).
    rq_.reserve(p.rq_size);
    wq_.reserve(p.wq_size);
    pq_.reserve(p.pq_size);
    fills_.reserve(p.mshrs);
    spec_delay_.reserve(p.rq_size);
    mshrs_.reserve(p.mshrs);
    cand_buf_.reserve(32);

    // Pre-populate the waiter pool to its circulation bound: at most
    // p.mshrs vectors are ever out (one per live MSHR, and MSHR creation
    // is gated on mshrs_.size() < p.mshrs), so takeWaiterStorage() never
    // finds the pool empty and the per-cycle path never constructs a
    // fresh capacity-0 vector — not even the first time a cache reaches
    // a new concurrency high-water mark deep into a run.
    waiter_pool_.reserve(p.mshrs);
    for (unsigned i = 0; i < p.mshrs; ++i) {
        waiter_pool_.emplace_back();
        waiter_pool_.back().reserve(kWaiterReserve);
    }
}

std::uint64_t
Cache::storageBits() const
{
    // Data + tag (assume 40-bit physical tags) + state bits per block.
    return static_cast<std::uint64_t>(params_.sets) * params_.ways
        * (kBlockSize * 8 + 40 + 4);
}

// Everything below runs on the per-cycle path (tick, queue processing,
// fills, prefetcher notification). tools/hotpath_lint.py bans allocation
// and unwaived container growth here; tests/test_hotpath_alloc.cpp
// checks the same dynamically.
// tlpsim:hot

std::vector<Packet>
Cache::takeWaiterStorage()
{
    if (waiter_pool_.empty())
        return {};
    std::vector<Packet> v = std::move(waiter_pool_.back());
    waiter_pool_.pop_back();
    return v;
}

Cache::Block *
Cache::lookup(Addr paddr, bool update_lru)
{
    Addr block = blockNumber(paddr);
    std::size_t set = block & (params_.sets - 1);
    const Addr *tbase = &tags_[set * params_.ways];
    const int w = findWay(tbase, params_.ways, block);
    if (w < 0)
        return nullptr;
    if (update_lru)
        lru_[set * params_.ways + static_cast<unsigned>(w)] = ++lru_clock_;
    return &blocks_[set * params_.ways + static_cast<unsigned>(w)];
}

Cache::Mshr *
Cache::findMshr(Addr paddr)
{
    Addr block = blockNumber(paddr);
    for (auto &m : mshrs_) {
        if (m.block == block)
            return &m;
    }
    return nullptr;
}

bool
Cache::probe(Addr paddr) const
{
    Addr block = blockNumber(paddr);
    std::size_t set = block & (params_.sets - 1);
    return findWay(&tags_[set * params_.ways], params_.ways, block) >= 0;
}

bool
Cache::sendRead(const Packet &pkt)
{
    if (rq_.size() >= params_.rq_size)
        return false;
    const Cycle ready = pkt.birth + params_.latency;
    rq_.push_back({pkt, ready});   // tlpsim:cap (Ring, reserved)
    next_ready_ = std::min(next_ready_, ready);
    return true;
}

bool
Cache::sendWrite(const Packet &pkt)
{
    if (wq_.size() >= params_.wq_size)
        return false;
    const Cycle ready = pkt.birth + params_.latency;
    wq_.push_back({pkt, ready});   // tlpsim:cap (Ring, reserved)
    next_ready_ = std::min(next_ready_, ready);
    return true;
}

bool
Cache::sendPrefetch(const Packet &pkt)
{
    if (pq_.size() >= params_.pq_size)
        return false;
    const Cycle ready = pkt.birth + params_.latency;
    pq_.push_back({pkt, ready});   // tlpsim:cap (Ring, reserved)
    next_ready_ = std::min(next_ready_, ready);
    return true;
}

void
Cache::memReturn(const Packet &pkt)
{
    fills_.push_back({pkt, pkt.birth});   // tlpsim:cap (Ring, reserved)
    next_ready_ = 0;   // fills are processed on the very next tick
}

void
Cache::respond(Packet pkt, MemLevel served_by)
{
    pkt.served_by = served_by;
    if (pkt.requestor != nullptr)
        pkt.requestor->memReturn(pkt);
}

void
Cache::countAccess(AccessType type, bool hit)
{
    (hit ? hit_ : miss_)[static_cast<int>(type)]->add();
}

void
Cache::classifyEviction(Addr tag, const Block &blk)
{
    if (tag == kNoTag)
        return;
    if (blk.prefetched) {
        pf_useless_->add();
        pf_useless_from_[levelIndex(blk.pf_served_from)]->add();
        if (params_.filter != nullptr)
            params_.filter->onPrefetchedEvictUnused(tag << kBlockBits);
    }
}

bool
Cache::install(const Packet &pkt, Cycle now)
{
    // Prefetches only allocate at levels at or above their fill level
    // (level_num >= fill_level); pass-through fills skip installation.
    if (pkt.type == AccessType::Prefetch
        && params_.level_num < pkt.fill_level) {
        return true;
    }

    // Victim: first invalid way, else LRU.
    const std::size_t set = blockNumber(pkt.paddr) & (params_.sets - 1);
    Addr *tbase = &tags_[set * params_.ways];
    std::uint64_t *lbase = &lru_[set * params_.ways];
    unsigned victim = 0;
    for (unsigned w = 0; w < params_.ways; ++w) {
        if (tbase[w] == kNoTag) {
            victim = w;
            break;
        }
        if (lbase[w] < lbase[victim])
            victim = w;
    }

    Block &vb = blocks_[set * params_.ways + victim];
    const Addr vtag = tbase[victim];
    if (vtag != kNoTag && vb.dirty) {
        Packet wb;
        wb.paddr = vtag << kBlockBits;
        wb.vaddr = wb.paddr;
        wb.type = AccessType::Writeback;
        wb.core = pkt.core;
        wb.birth = now;
        if (!lower_->sendWrite(wb))
            return false;   // retry when the lower write queue drains
        writebacks_->add();
    }
    classifyEviction(vtag, vb);

    tbase[victim] = blockNumber(pkt.paddr);
    vb.dirty = false;
    vb.prefetched = false;
    vb.pf_served_from = MemLevel::None;
    lbase[victim] = ++lru_clock_;
    return true;
}

void
Cache::processFills(Cycle now)
{
    while (!fills_.empty()) {
        const Packet &fill = fills_.front().pkt;
        Mshr *mshr = findMshr(fill.paddr);

        // Install unless this is a pass-through prefetch fill.
        bool demand_merged = mshr != nullptr && mshr->demand_merged;
        Packet to_install = fill;
        if (demand_merged)
            to_install.type = AccessType::Load;   // promoted: always allocate
        if (!install(to_install, now))
            return;   // blocked on lower WQ; retry next cycle

        if (mshr == nullptr) {
            // Fire-and-forget fill (pass-through prefetch): nothing to wake.
            fills_.pop_front();
            continue;
        }

        Block *blk = lookup(fill.paddr, false);
        bool was_prefetch = mshr->type == AccessType::Prefetch;
        if (blk != nullptr && was_prefetch && !mshr->demand_merged) {
            blk->prefetched = true;
            blk->pf_served_from = fill.served_by;
        }
        if (was_prefetch && mshr->demand_merged) {
            // Late prefetch: a demand arrived while it was in flight.
            pf_late_->add();
            pf_useful_->add();
            pf_useful_from_[levelIndex(fill.served_by)]->add();
        }
        if (blk != nullptr && mshr->dirty_on_fill)
            blk->dirty = true;

        if (was_prefetch && params_.filter != nullptr
            && mshr->primary.pred_meta.valid) {
            Packet done = mshr->primary;
            done.served_by = fill.served_by;
            params_.filter->onPrefetchFill(done);
        }
        if (!was_prefetch && params_.prefetcher != nullptr
            && mshr->primary.isDemand()) {
            params_.prefetcher->onFill(mshr->primary.vaddr, mshr->primary.ip,
                                       fill.served_by,
                                       now - mshr->primary.birth);
        }

        if (mshr->primary.requestor != nullptr)
            respond(mshr->primary, fill.served_by);
        for (auto &w : mshr->waiters)
            respond(w, fill.served_by);

        // Swap-remove the MSHR, but keep its waiter vector's capacity in
        // the pool — MSHR turnover is steady-state and must not free.
        mshr->waiters.clear();
        waiter_pool_.push_back(   // tlpsim:cap (reserved mshrs)
            std::move(mshr->waiters));
        if (mshr != &mshrs_.back())
            *mshr = std::move(mshrs_.back());
        mshrs_.pop_back();
        fills_.pop_front();
    }
}

void
Cache::notifyPrefetcher(const Packet &pkt, bool hit, bool prefetch_hit,
                        Cycle now)
{
    if (params_.prefetcher == nullptr)
        return;
    PrefetchTrigger trig;
    trig.vaddr = pkt.vaddr;
    trig.paddr = pkt.paddr;
    trig.ip = pkt.ip;
    trig.type = pkt.type;
    trig.cache_hit = hit;
    trig.prefetch_hit = prefetch_hit;
    trig.offchip_pred = pkt.offchip_pred;
    trig.core = pkt.core;
    trig.now = now;

    cand_buf_.clear();
    params_.prefetcher->onAccess(trig, cand_buf_);

    for (const auto &cand : cand_buf_) {
        Addr pf_vaddr = cand.addr;
        Addr pf_paddr = params_.translator != nullptr
            ? params_.translator->translate(pkt.core, pf_vaddr)
            : pf_vaddr;
        std::uint8_t fill_level = cand.fill_level;
        PredictionMeta meta;
        if (params_.filter != nullptr
            && !params_.filter->allow(trig, pf_vaddr, pf_paddr,
                                      cand.metadata, fill_level, meta)) {
            pf_filtered_->add();
            continue;
        }
        if (pq_.size() >= params_.pq_size) {
            pf_dropped_queue_->add();
            continue;
        }
        Packet pf;
        pf.vaddr = blockAlign(pf_vaddr);
        pf.paddr = blockAlign(pf_paddr);
        pf.ip = pkt.ip;
        pf.type = AccessType::Prefetch;
        pf.core = pkt.core;
        pf.fill_level = fill_level;
        pf.pf_metadata = cand.metadata;
        pf.pred_meta = meta;
        pf.birth = now;
        pq_.push_back({pf, now + 1});   // tlpsim:cap (Ring, reserved)
        pf_issued_->add();
    }
}

bool
Cache::processRead(TimedPacket &entry, Cycle now)
{
    Packet &pkt = entry.pkt;
    Block *blk = lookup(pkt.paddr, true);

    if (blk != nullptr) {
        countAccess(pkt.type, true);
        bool prefetch_hit = blk->prefetched;
        if (pkt.isDemand() && blk->prefetched) {
            blk->prefetched = false;
            pf_useful_->add();
            pf_useful_from_[levelIndex(blk->pf_served_from)]->add();
            if (params_.filter != nullptr)
                params_.filter->onDemandHitPrefetched(pkt.paddr, pkt.ip);
        }
        if (pkt.isDemand())
            notifyPrefetcher(pkt, true, prefetch_hit, now);
        respond(pkt, params_.level);
        return true;
    }

    countAccess(pkt.type, false);

    // FLP selective delay: the prediction was deferred to L1D-miss time.
    if (pkt.type == AccessType::Load && pkt.delayed_offchip_flag
        && params_.spec_dram != nullptr) {
        Packet spec = pkt;
        spec.spec_dram = true;
        spec.delayed_offchip_flag = false;
        spec.birth = now + params_.spec_latency;
        spec_delay_.push_back({spec, spec.birth});   // tlpsim:cap (Ring, reserved)
        spec_delayed_issued_->add();
        if (params_.spec_observer != nullptr)
            params_.spec_observer->onSpecIssued(spec);
    }

    if (Mshr *mshr = findMshr(pkt.paddr)) {
        if (pkt.isDemand() && mshr->type == AccessType::Prefetch)
            mshr->demand_merged = true;
        mshr->waiters.push_back(pkt);   // tlpsim:cap (pooled)
        mshr_merge_->add();
        if (pkt.isDemand()) {
            notifyPrefetcher(pkt, false, false, now);
            if (params_.filter != nullptr)
                params_.filter->onDemandMiss(pkt.paddr, pkt.ip);
        }
        return true;
    }

    if (mshrs_.size() >= params_.mshrs)
        return false;

    Packet fwd = pkt;
    fwd.requestor = this;
    fwd.req_id = blockNumber(pkt.paddr);
    fwd.birth = now;
    bool sent = pkt.type == AccessType::Prefetch ? lower_->sendPrefetch(fwd)
                                                 : lower_->sendRead(fwd);
    if (!sent)
        return false;

    Mshr mshr;
    mshr.block = blockNumber(pkt.paddr);
    mshr.type = pkt.type;
    mshr.primary = pkt;
    mshr.waiters = takeWaiterStorage();
    mshrs_.push_back(std::move(mshr));   // tlpsim:cap (reserved mshrs)

    if (pkt.isDemand()) {
        notifyPrefetcher(pkt, false, false, now);
        if (params_.filter != nullptr)
            params_.filter->onDemandMiss(pkt.paddr, pkt.ip);
    }
    return true;
}

bool
Cache::processWrite(TimedPacket &entry, Cycle now)
{
    Packet &pkt = entry.pkt;
    Block *blk = lookup(pkt.paddr, true);

    if (blk != nullptr) {
        countAccess(pkt.type, true);
        if (pkt.isDemand() && blk->prefetched) {
            blk->prefetched = false;
            pf_useful_->add();
            pf_useful_from_[levelIndex(blk->pf_served_from)]->add();
            if (params_.filter != nullptr)
                params_.filter->onDemandHitPrefetched(pkt.paddr, pkt.ip);
        }
        blk->dirty = true;
        if (pkt.isDemand())
            notifyPrefetcher(pkt, true, false, now);
        return true;
    }

    countAccess(pkt.type, false);

    if (pkt.type == AccessType::Writeback) {
        // Writeback miss: allocate directly, no downstream fetch.
        Packet inst = pkt;
        inst.type = AccessType::Load;   // force allocation at this level
        if (!install(inst, now))
            return false;
        Block *nb = lookup(pkt.paddr, false);
        nb->dirty = true;
        return true;
    }

    // Store (RFO) miss at L1D: fetch the line, dirty it on fill.
    if (Mshr *mshr = findMshr(pkt.paddr)) {
        mshr->dirty_on_fill = true;
        if (mshr->type == AccessType::Prefetch)
            mshr->demand_merged = true;
        mshr->waiters.push_back(pkt);   // tlpsim:cap (pooled)
        mshr_merge_->add();
        notifyPrefetcher(pkt, false, false, now);
        return true;
    }
    if (mshrs_.size() >= params_.mshrs)
        return false;

    Packet fwd = pkt;
    fwd.type = AccessType::Rfo;
    fwd.requestor = this;
    fwd.req_id = blockNumber(pkt.paddr);
    fwd.birth = now;
    if (!lower_->sendRead(fwd))
        return false;

    Mshr mshr;
    mshr.block = blockNumber(pkt.paddr);
    mshr.type = AccessType::Rfo;
    mshr.dirty_on_fill = true;
    mshr.primary = pkt;
    mshr.waiters = takeWaiterStorage();
    mshrs_.push_back(std::move(mshr));   // tlpsim:cap (reserved mshrs)
    notifyPrefetcher(pkt, false, false, now);
    if (params_.filter != nullptr)
        params_.filter->onDemandMiss(pkt.paddr, pkt.ip);
    return true;
}

bool
Cache::processPrefetch(TimedPacket &entry, Cycle now)
{
    Packet &pkt = entry.pkt;

    // Pass-through prefetch (fills a deeper level only).
    if (params_.level_num < pkt.fill_level) {
        if (lookup(pkt.paddr, false) != nullptr) {
            pf_dup_->add();
            return true;
        }
        if (!lower_->canAcceptPrefetch())
            return false;   // retry without rebuilding the packet
        Packet fwd = pkt;
        fwd.birth = now;
        return lower_->sendPrefetch(fwd);
    }

    Block *blk = lookup(pkt.paddr, true);
    // Prefetches arriving from the level above act as training accesses
    // for this level's prefetcher (ChampSim semantics): this is how SPP
    // at L2 runs ahead of the L1D prefetch stream.
    if (pkt.requestor != nullptr)
        notifyPrefetcher(pkt, blk != nullptr, false, now);
    if (blk != nullptr) {
        countAccess(AccessType::Prefetch, true);
        if (pkt.requestor != nullptr)
            respond(pkt, params_.level);
        else
            pf_dup_->add();
        return true;
    }
    countAccess(AccessType::Prefetch, false);

    if (Mshr *mshr = findMshr(pkt.paddr)) {
        if (pkt.requestor != nullptr) {
            mshr->waiters.push_back(pkt);   // tlpsim:cap (pooled)
            mshr_merge_->add();
        } else {
            pf_dup_->add();
        }
        return true;
    }
    if (mshrs_.size() >= params_.mshrs)
        return false;
    if (!lower_->canAcceptPrefetch())
        return false;   // retry without rebuilding the packet

    Packet fwd = pkt;
    fwd.requestor = this;
    fwd.req_id = blockNumber(pkt.paddr);
    fwd.birth = now;
    if (!lower_->sendPrefetch(fwd))
        return false;

    Mshr mshr;
    mshr.block = blockNumber(pkt.paddr);
    mshr.type = AccessType::Prefetch;
    mshr.primary = pkt;
    mshr.waiters = takeWaiterStorage();
    mshrs_.push_back(std::move(mshr));   // tlpsim:cap (reserved mshrs)
    return true;
}

void
Cache::flushSpecDelay(Cycle now)
{
    while (!spec_delay_.empty() && spec_delay_.front().ready_at <= now) {
        params_.spec_dram->sendRead(spec_delay_.front().pkt);
        spec_delay_.pop_front();
    }
}

Cycle
Cache::computeNextReady(Cycle now) const
{
    // Pending fills (including ones blocked on a full lower WQ) retry
    // every cycle; otherwise the earliest queue-front due time decides.
    // A front that is already due but stayed (budget exhausted, blocked
    // miss) clamps to now+1 — those paths bump counters per retry cycle,
    // so they must keep ticking.
    if (!fills_.empty())
        return now + 1;
    Cycle e = kCycleNever;
    if (!spec_delay_.empty())
        e = std::min(e, std::max(spec_delay_.front().ready_at, now + 1));
    if (!rq_.empty())
        e = std::min(e, std::max(rq_.front().ready_at, now + 1));
    if (!wq_.empty())
        e = std::min(e, std::max(wq_.front().ready_at, now + 1));
    if (!pq_.empty())
        e = std::min(e, std::max(pq_.front().ready_at, now + 1));
    return e;
}

void
Cache::tick(Cycle now)
{
    if (now < next_ready_)
        return;   // quiet cycle: nothing due yet
    now_ = now;
    processFills(now);
    if (!spec_delay_.empty())
        flushSpecDelay(now);

    unsigned budget = params_.lookups_per_cycle;
    while (budget > 0 && !rq_.empty() && rq_.front().ready_at <= now) {
        if (!processRead(rq_.front(), now))
            break;
        rq_.pop_front();
        --budget;
    }
    while (budget > 0 && !wq_.empty() && wq_.front().ready_at <= now) {
        if (!processWrite(wq_.front(), now))
            break;
        wq_.pop_front();
        --budget;
    }
    while (budget > 0 && !pq_.empty() && pq_.front().ready_at <= now) {
        if (!processPrefetch(pq_.front(), now))
            break;
        pq_.pop_front();
        --budget;
    }

    next_ready_ = computeNextReady(now);
}

// tlpsim:endhot

} // namespace tlpsim
