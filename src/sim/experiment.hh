/**
 * @file
 * Experiment harness: shared plumbing for the bench/ binaries that
 * regenerate the paper's tables and figures — trace caching, environment
 * scaling knobs, single-core and multi-core runners, the paper's metrics
 * (speedup, weighted speedup, ΔDRAM transactions), and text-table output.
 */

#ifndef TLPSIM_SIM_EXPERIMENT_HH
#define TLPSIM_SIM_EXPERIMENT_HH

#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "sim/system_config.hh"
#include "workloads/workload.hh"

namespace tlpsim::experiment
{

/** TLPSIM_INSTRS (measurement instructions per core). */
InstrCount envInstrs(InstrCount fallback = 1'000'000);
/** TLPSIM_WARMUP (warmup instructions per core). */
InstrCount envWarmup(InstrCount fallback = 200'000);
/** TLPSIM_MIXES (4-core mixes per suite). */
int envMixes(int fallback = 4);

/**
 * Process-wide trace cache: benches sweep many workloads/schemes over the
 * same workloads; each trace is recorded once. In-binary kernels only —
 * file-backed specs stream from disk and are never materialized (see
 * traceSource()).
 */
const Trace &cachedTrace(const workloads::WorkloadSpec &spec,
                         InstrCount instrs, std::uint64_t seed = 7);
void clearTraceCache();

/**
 * The stream a simulation consumes for @p spec: a MemoryTraceSource over
 * the cached recording for in-binary kernels, a fresh bounded-memory
 * FileTraceSource for file-backed specs. Each call returns an
 * independent stream (own position, own file handle), so N concurrent
 * simulations of one workload stay deterministic and lock-free.
 */
std::shared_ptr<TraceSource> traceSource(const workloads::WorkloadSpec &spec,
                                         InstrCount instrs,
                                         std::uint64_t seed = 7);

/** Run one workload on a single-core system. */
SimResult runSingleCore(const workloads::WorkloadSpec &workload,
                        SystemConfig cfg);

/** Run a multi-core mix (one workload per core; mix length must equal
 *  cfg.num_cores or a ConfigError names the offending mix). */
SimResult runMix(const std::vector<workloads::WorkloadSpec> &workloads,
                 const workloads::Mix &mix, SystemConfig cfg);

/**
 * SimResult <-> Config round trip — the payload of a persistent store
 * row. Every field serializes losslessly: integers exactly, doubles via
 * Config's shortest-round-trippable rendering (std::to_chars), per-core
 * vectors as indexed keys ("ipc.0", "ipc.1", ...), and the stats map
 * under "stat.<name>". simResultFromConfig(simResultToConfig(r)) equals
 * r field for field, bit for bit — the property that makes a
 * store-served sweep table diff clean against a cold run.
 */
Config simResultToConfig(const SimResult &r);

/** Inverse of simResultToConfig; throws ConfigError on malformed input
 *  (a store row from a different format version). */
SimResult simResultFromConfig(const Config &cfg);

/** Percent change of @p value over @p baseline: +10 = 10 % more. */
double percentDelta(double value, double baseline);

/** Geometric mean of (1 + pct/100) ratios, returned as a percentage. */
double geomeanSpeedupPct(const std::vector<double> &speedup_pcts);

/**
 * The paper's multi-core metric: Σ IPC_shared/IPC_single over a mix's
 * slots — one per core, at whatever width the mix has — normalized to
 * the same sum in the baseline configuration. All three arguments must
 * describe the same mix: a slot-count mismatch (scheme vs baseline vs
 * ipc_single) throws ConfigError instead of silently indexing the
 * vectors out of step.
 */
double weightedSpeedupPct(const SimResult &scheme_result,
                          const SimResult &baseline_result,
                          const std::vector<double> &ipc_single);

/** Fixed-width text table used by every bench binary. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> columns,
                          unsigned col_width = 14);

    void printHeader(const std::string &title) const;
    void printRow(const std::vector<std::string> &cells) const;
    void printSeparator() const;

    static std::string fmt(double v, int precision = 2);
    static std::string fmtPct(double v, int precision = 1);

  private:
    std::vector<std::string> columns_;
    unsigned col_width_;
};

} // namespace tlpsim::experiment

#endif // TLPSIM_SIM_EXPERIMENT_HH
