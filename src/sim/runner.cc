#include "sim/runner.hh"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace tlpsim::experiment
{

unsigned
jobsFromEnv()
{
    if (const char *v = std::getenv("TLPSIM_JOBS")) {
        char *end = nullptr;
        unsigned long parsed = std::strtoul(v, &end, 10);
        if (end != v && parsed > 0)
            return static_cast<unsigned>(parsed);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

std::string
configKey(const SystemConfig &cfg)
{
    // The full *effective* dump: every tunable field participates — with
    // each deployed component's subtree expanded to its declared schema
    // defaults overlaid with the configured knobs — so two design points
    // that differ anywhere (a tau, a queue depth, a component default
    // that changed between builds) can never share a memoized result.
    return cfg.effectiveConfig().serialize();
}

std::string
configSummary(const SystemConfig &cfg)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%s|%s|%uc|%llu+%llu",
                  cfg.scheme.name.c_str(),
                  cfg.l1_prefetcher.empty() ? "none"
                                            : cfg.l1_prefetcher.c_str(),
                  cfg.num_cores,
                  static_cast<unsigned long long>(cfg.warmup_instrs),
                  static_cast<unsigned long long>(cfg.sim_instrs));
    return buf;
}

Runner::Runner(unsigned jobs) : jobs_(jobs == 0 ? 1 : jobs)
{
    // With one job the caller thread does all the work in get(); spawning
    // a single worker would only add wakeup latency.
    if (jobs_ >= 2) {
        threads_.reserve(jobs_);
        for (unsigned i = 0; i < jobs_; ++i)
            threads_.emplace_back([this] { workerLoop(); });
    }
}

Runner::~Runner()
{
    {
        std::lock_guard<std::mutex> lock(m_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

bool
Runner::submit(const std::string &key, JobFn fn)
{
    {
        std::lock_guard<std::mutex> lock(m_);
        auto [it, inserted] = map_.try_emplace(key);
        if (!inserted)
            return false;
        it->second.fn = std::move(fn);
        queue_.push_back(key);
    }
    work_cv_.notify_one();
    return true;
}

const SimResult &
Runner::get(const std::string &key)
{
    std::unique_lock<std::mutex> lock(m_);
    auto it = map_.find(key);
    if (it == map_.end()) {
        // Loud in every build type: an assert would be compiled out of
        // the default Release build and leave UB on a mis-keyed lookup.
        throw std::logic_error("Runner::get() for a key that was never "
                               "submitted: " + key);
    }
    Job &job = it->second;
    if (job.state == State::Pending) {
        // Work stealing: run the job on the calling thread. The stale
        // queue entry is skipped by workers (state != Pending).
        job.state = State::Running;
        execute(job, lock);
    } else {
        done_cv_.wait(lock, [&] { return job.state == State::Done; });
    }
    if (job.error)
        std::rethrow_exception(job.error);
    return job.result;
}

void
Runner::execute(Job &job, std::unique_lock<std::mutex> &lock)
{
    JobFn fn = std::move(job.fn);
    job.fn = nullptr;
    lock.unlock();
    SimResult result;
    std::exception_ptr error;
    try {
        result = fn();
    } catch (...) {
        error = std::current_exception();
    }
    lock.lock();
    job.result = std::move(result);
    job.error = error;
    job.state = State::Done;
    ++completed_;
    done_cv_.notify_all();
}

void
Runner::workerLoop()
{
    std::unique_lock<std::mutex> lock(m_);
    while (true) {
        work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
        if (stop_)
            return;
        std::string key = std::move(queue_.front());
        queue_.pop_front();
        Job &job = map_.at(key);
        if (job.state != State::Pending)
            continue;   // claimed by a stealing get()
        job.state = State::Running;
        execute(job, lock);
    }
}

namespace
{

void
logSim(const char *what, const std::string &name, const SystemConfig &cfg)
{
    std::fprintf(stderr, "  [sim %s] %-22s %s\n", what, name.c_str(),
                 configSummary(cfg).c_str());
}

} // namespace

namespace
{

std::string
singleKey(const workloads::WorkloadSpec &w, const SystemConfig &cfg)
{
    return "1c|" + w.name + "|" + configKey(cfg);
}

std::string
mixKey(const workloads::Mix &mix, const SystemConfig &cfg)
{
    return std::to_string(mix.cores()) + "c|" + mix.name + "|"
        + configKey(cfg);
}

} // namespace

void
Runner::submitSingle(const workloads::WorkloadSpec &w,
                     const SystemConfig &cfg)
{
    submit(singleKey(w, cfg), [w, cfg] {
        logSim("1c", w.name, cfg);
        return runSingleCore(w, cfg);
    });
}

const SimResult &
Runner::single(const workloads::WorkloadSpec &w, const SystemConfig &cfg)
{
    submitSingle(w, cfg);
    return get(singleKey(w, cfg));
}

void
Runner::submitMix(const std::vector<workloads::WorkloadSpec> &all,
                  const workloads::Mix &mix, const SystemConfig &cfg)
{
    submit(mixKey(mix, cfg), [all, mix, cfg] {
        logSim((std::to_string(mix.cores()) + "c").c_str(), mix.name, cfg);
        return runMix(all, mix, cfg);
    });
}

const SimResult &
Runner::mix(const std::vector<workloads::WorkloadSpec> &all,
            const workloads::Mix &mix, const SystemConfig &cfg)
{
    submitMix(all, mix, cfg);
    return get(mixKey(mix, cfg));
}

std::size_t
Runner::submitted() const
{
    std::lock_guard<std::mutex> lock(m_);
    return map_.size();
}

std::size_t
Runner::completed() const
{
    std::lock_guard<std::mutex> lock(m_);
    return completed_;
}

Runner &
defaultRunner()
{
    static Runner runner;
    return runner;
}

} // namespace tlpsim::experiment
