#include "sim/runner.hh"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "common/diag.hh"
#include "common/watchdog.hh"

namespace tlpsim::experiment
{

unsigned
jobsFromEnv()
{
    if (const char *v = std::getenv("TLPSIM_JOBS")) {
        char *end = nullptr;
        unsigned long parsed = std::strtoul(v, &end, 10);
        if (end != v && parsed > 0)
            return static_cast<unsigned>(parsed);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

std::string
configKey(const SystemConfig &cfg)
{
    // The full *effective* dump: every tunable field participates — with
    // each deployed component's subtree expanded to its declared schema
    // defaults overlaid with the configured knobs — so two design points
    // that differ anywhere (a tau, a queue depth, a component default
    // that changed between builds) can never share a memoized result.
    return cfg.effectiveConfig().serialize();
}

std::string
configSummary(const SystemConfig &cfg)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%s|%s|%uc|%llu+%llu",
                  cfg.scheme.name.c_str(),
                  cfg.l1_prefetcher.empty() ? "none"
                                            : cfg.l1_prefetcher.c_str(),
                  cfg.num_cores,
                  static_cast<unsigned long long>(cfg.warmup_instrs),
                  static_cast<unsigned long long>(cfg.sim_instrs));
    return buf;
}

Runner::Runner(unsigned jobs, StorePolicy policy)
    : jobs_(jobs == 0 ? 1 : jobs), policy_(std::move(policy))
{
    if (policy_.timeout_attempts == 0)
        policy_.timeout_attempts = 1;
    // With one job the caller thread does all the work in get(); spawning
    // a single worker would only add wakeup latency.
    if (jobs_ >= 2) {
        threads_.reserve(jobs_);
        for (unsigned i = 0; i < jobs_; ++i)
            threads_.emplace_back([this] { workerLoop(); });
    }
}

Runner::~Runner()
{
    {
        std::lock_guard<std::mutex> lock(m_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

bool
Runner::submit(const std::string &key, JobFn fn, std::string label)
{
    {
        std::lock_guard<std::mutex> lock(m_);
        auto [it, inserted] = map_.try_emplace(key);
        if (!inserted)
            return false;
        it->second.fn = std::move(fn);
        it->second.label = std::move(label);
        queue_.push_back(key);
    }
    work_cv_.notify_one();
    return true;
}

Runner::Job &
Runner::await(const std::string &key)
{
    std::unique_lock<std::mutex> lock(m_);
    auto it = map_.find(key);
    if (it == map_.end()) {
        // Loud in every build type: an assert would be compiled out of
        // the default Release build and leave UB on a mis-keyed lookup,
        // and waiting on a job that will never exist would block forever.
        throw std::logic_error(
            "Runner::get()/outcome() for a key that was never submitted "
            "(" + std::to_string(map_.size()) + " job(s) are submitted; "
            "fingerprint " + store::fingerprintHex(key) + "): " + key);
    }
    Job &job = it->second;
    if (job.state == State::Pending) {
        // Work stealing: run the job on the calling thread. The stale
        // queue entry is skipped by workers (state != Pending).
        job.state = State::Running;
        execute(it->first, job, lock);
    } else {
        done_cv_.wait(lock, [&] { return job.state == State::Done; });
    }
    if (job.error)
        std::rethrow_exception(job.error);
    return job;
}

const SimResult &
Runner::get(const std::string &key)
{
    Job &job = await(key);
    if (job.failed)
        throw SimTimeoutError(job.fail_error);
    return job.result;
}

Runner::Outcome
Runner::outcome(const std::string &key)
{
    Job &job = await(key);
    Outcome out;
    out.failed = job.failed;
    out.result = job.failed ? nullptr : &job.result;
    out.error = job.fail_error;
    out.attempts = job.attempts;
    out.from_store = job.from_store;
    return out;
}

void
Runner::execute(const std::string &key, Job &job,
                std::unique_lock<std::mutex> &lock)
{
    JobFn fn = std::move(job.fn);
    job.fn = nullptr;
    const std::string label = job.label;
    lock.unlock();

    SimResult result;
    std::exception_ptr error;
    bool failed = false;
    bool from_store = false;
    unsigned attempts = 0;
    std::string fail_msg;

    // 1. Persistent-store hit: an ok row is the result — no simulation.
    //    A failure row (earlier run recorded a timeout) and a
    //    quarantined row (load() moved it aside) both fall through to
    //    recomputation, which is what makes --resume self-healing.
    if (policy_.store) {
        if (auto row = policy_.store->load(key)) {
            if (row->getString(store::kStatusKey, "") == store::kStatusOk) {
                try {
                    result = simResultFromConfig(*row);
                    from_store = true;
                } catch (const ConfigError &e) {
                    // Checksummed but undeserializable: a row written by
                    // an incompatible format revision. Recompute (and
                    // overwrite it below).
                    diag("store", "row for " + label
                                      + " is from an incompatible format ("
                                      + e.what() + "); recomputing");
                }
            }
        }
    }

    // 2. Simulate under the watchdog, with bounded timeout retries.
    //    The Runner's CancelFlag is bound for the duration: a
    //    requestCancel() from any thread surfaces here as
    //    SimCancelledError at the Simulator's next watchdog poll, taking
    //    the non-timeout branch below (no retry, no failure row).
    if (!from_store) {
        watchdog::bindCancel(&cancel_);
        for (;;) {
            ++attempts;
            if (policy_.timeout_s > 0.0)
                watchdog::arm(policy_.timeout_s);
            try {
                result = fn();
                watchdog::disarm();
                break;
            } catch (const SimTimeoutError &e) {
                watchdog::disarm();
                if (attempts >= policy_.timeout_attempts) {
                    failed = true;
                    fail_msg = std::string(e.what()) + " ("
                        + std::to_string(attempts) + " attempt(s))";
                    diag("watchdog", label + ": " + fail_msg
                                         + "; recording a failure row and "
                                           "continuing the sweep");
                    break;
                }
                diag("watchdog", label + ": " + e.what() + "; retrying ("
                                     + std::to_string(attempts + 1) + "/"
                                     + std::to_string(
                                           policy_.timeout_attempts)
                                     + ")");
            } catch (...) {
                // Non-timeout errors keep their PR-1 semantics: stored
                // and rethrown to every get()/outcome() caller.
                watchdog::disarm();
                error = std::current_exception();
                break;
            }
        }
        watchdog::bindCancel(nullptr);

        // 3. Persist the outcome (ok or structured failure).
        if (policy_.store && !error) {
            Config row;
            if (failed) {
                row.set(store::kStatusKey, store::kStatusFailed);
                row.set("error", fail_msg);
                row.set("attempts", attempts);
                row.set("timeout_s", policy_.timeout_s);
            } else {
                row = simResultToConfig(result);
                row.set(store::kStatusKey, store::kStatusOk);
            }
            policy_.store->save(key, row);
        }
    }

    // 4. Stream the completion (outside the lock; the record's pointers
    //    are only promised for the duration of the call).
    if (on_complete_ && !error) {
        CompletionRecord rec{key,      label,    failed, from_store,
                             attempts, fail_msg, failed ? nullptr : &result};
        on_complete_(rec);
    }

    lock.lock();
    job.result = std::move(result);
    job.error = error;
    job.failed = failed;
    job.from_store = from_store;
    job.attempts = attempts;
    job.fail_error = std::move(fail_msg);
    job.state = State::Done;
    ++completed_;
    if (from_store)
        ++store_hits_;
    else if (failed)
        ++failed_;
    else if (!error)
        ++simulated_;
    done_cv_.notify_all();
}

void
Runner::workerLoop()
{
    std::unique_lock<std::mutex> lock(m_);
    while (true) {
        work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
        if (stop_)
            return;
        std::string key = std::move(queue_.front());
        queue_.pop_front();
        Job &job = map_.at(key);
        if (job.state != State::Pending)
            continue;   // claimed by a stealing get()
        job.state = State::Running;
        execute(key, job, lock);
    }
}

namespace
{

void
logSim(const char *what, const std::string &name, const SystemConfig &cfg)
{
    std::fprintf(stderr, "  [sim %s] %-22s %s\n", what, name.c_str(),
                 configSummary(cfg).c_str());
}

} // namespace

std::string
singlePointKey(const workloads::WorkloadSpec &w, const SystemConfig &cfg)
{
    // pointName(), not name: a file workload keys by verified content
    // hash, so the same bytes under two paths share store rows and an
    // edited file never serves stale ones.
    return "1c|" + w.pointName() + "|" + configKey(cfg);
}

std::string
mixPointKey(const workloads::Mix &mix, const SystemConfig &cfg)
{
    return std::to_string(mix.cores()) + "c|" + mix.pointName() + "|"
        + configKey(cfg);
}

void
Runner::submitSingle(const workloads::WorkloadSpec &w,
                     const SystemConfig &cfg)
{
    submit(singlePointKey(w, cfg), [w, cfg] {
        logSim("1c", w.name, cfg);
        return runSingleCore(w, cfg);
    }, w.name + "|" + cfg.scheme.name);
}

const SimResult &
Runner::single(const workloads::WorkloadSpec &w, const SystemConfig &cfg)
{
    submitSingle(w, cfg);
    return get(singlePointKey(w, cfg));
}

void
Runner::submitMix(const std::vector<workloads::WorkloadSpec> &all,
                  const workloads::Mix &mix, const SystemConfig &cfg)
{
    submit(mixPointKey(mix, cfg), [all, mix, cfg] {
        logSim((std::to_string(mix.cores()) + "c").c_str(), mix.name, cfg);
        return runMix(all, mix, cfg);
    }, mix.name + "|" + cfg.scheme.name);
}

const SimResult &
Runner::mix(const std::vector<workloads::WorkloadSpec> &all,
            const workloads::Mix &mix, const SystemConfig &cfg)
{
    submitMix(all, mix, cfg);
    return get(mixPointKey(mix, cfg));
}

std::size_t
Runner::submitted() const
{
    std::lock_guard<std::mutex> lock(m_);
    return map_.size();
}

std::size_t
Runner::completed() const
{
    std::lock_guard<std::mutex> lock(m_);
    return completed_;
}

std::size_t
Runner::simulatedCount() const
{
    std::lock_guard<std::mutex> lock(m_);
    return simulated_;
}

std::size_t
Runner::storeHitCount() const
{
    std::lock_guard<std::mutex> lock(m_);
    return store_hits_;
}

std::size_t
Runner::failedCount() const
{
    std::lock_guard<std::mutex> lock(m_);
    return failed_;
}

Runner &
defaultRunner()
{
    static Runner runner;
    return runner;
}

} // namespace tlpsim::experiment
