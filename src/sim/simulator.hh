/**
 * @file
 * Simulator: composes cores, caches, TLBs, predictors, and DRAM into a
 * system per SystemConfig, runs warmup + measurement, and returns a
 * SimResult snapshot. Owns every component; nothing escapes its lifetime.
 */

#ifndef TLPSIM_SIM_SIMULATOR_HH
#define TLPSIM_SIM_SIMULATOR_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "common/stats.hh"
#include "core/core.hh"
#include "sim/hotloop_profile.hh"
#include "mem/dram.hh"
#include "offchip/offchip_predictor.hh"
#include "sim/system_config.hh"
#include "tlb/page_table.hh"
#include "tlb/tlb.hh"
#include "trace/trace.hh"

namespace tlpsim
{

/**
 * Everything an experiment needs from one finished simulation.
 *
 * Measurement semantics are per core (ChampSim-style): each core's
 * window opens the cycle *it* retires warmup_instrs and closes when it
 * retires sim_instrs more, independent of co-runner progress — so a
 * fast core's window spans its real retire time even when a slow
 * co-runner is still warming up. Per-core stats ("cpuN.*") cover core
 * N's own window; shared-structure stats ("llc.*", "dram.*",
 * "oracle.*") cover one global window from the first window opening to
 * the last one closing.
 */
struct SimResult
{
    std::string scheme;
    unsigned num_cores = 0;
    InstrCount sim_instrs = 0;              ///< per core, nominal target
    /** Per core: instructions measured inside the core's own window.
     *  Equal to sim_instrs for cores that closed their window; smaller
     *  for cores cut off by the cycle cap, and zero for a core the cap
     *  caught still warming up. Every per-instruction metric below
     *  divides by these, not the nominal target, so a capped run
     *  reports its true rates instead of silently deflated ones. */
    std::vector<InstrCount> instrs;
    std::vector<double> ipc;                ///< per core, own window
    /** Per core: cycle the core's measurement window opened (it retired
     *  its warmup_instrs-th instruction). 0 means warmup never finished
     *  — only possible when hit_cycle_cap is set. */
    std::vector<Cycle> warmup_end_cycle;
    /** Per core: length of the core's own measurement window, from its
     *  warmup end to the cycle it retired sim_instrs more (or to the
     *  cycle cap). */
    std::vector<Cycle> window_cycles;
    bool hit_cycle_cap = false;
    /** Windowed counters — see the struct comment for which window each
     *  name family covers. */
    std::map<std::string, std::uint64_t> stats;

    /** Measured instructions summed over the per-core windows. Falls
     *  back to the nominal sim_instrs * num_cores only when `instrs` is
     *  empty (hand-built SimResults in tests); Simulator::run always
     *  populates `instrs`, including with zeros for cores the cycle cap
     *  caught mid-warmup, so capped and heterogeneous runs never
     *  misreport per-instruction totals via the nominal quota. */
    InstrCount totalInstrs() const;

    std::uint64_t
    stat(const std::string &name) const
    {
        auto it = stats.find(name);
        return it == stats.end() ? 0 : it->second;
    }

    /** Sum a per-core stat "cpuN.<suffix>" over all cores. */
    std::uint64_t sumOverCores(const std::string &suffix) const;

    /** Demand (load+RFO) MPKI of a cache level ("l1d", "l2c", "llc"). */
    double mpki(const std::string &cache) const;

    /** Total DRAM transactions (the Figs. 2/3/11/14/16 metric). */
    std::uint64_t dramTransactions() const
    {
        return stat("dram.transactions");
    }

    /** L1D prefetch accuracy: useful / (useful + useless), Fig. 12. */
    double l1dPrefetchAccuracy() const;

    /** Prefetches per kilo-instruction helpers for Figs. 5/6. */
    double ppki(const std::string &counter_suffix) const;

    double ipcTotal() const;

    /** Largest per-core IPC. Physically bounded by the retire width;
     *  the pre-window-semantics degenerate-window bug pushed this to
     *  ~sim_instrs, which is what the CI smoke guards against. */
    double ipcMax() const;
};

class Simulator
{
  public:
    /**
     * @param cfg      full system configuration
     * @param sources  one trace stream per core (each repeats cyclically
     *                 if shorter than the simulation length). The
     *                 simulator shares ownership: a caller may hand over
     *                 freshly built sources and forget them.
     */
    Simulator(const SystemConfig &cfg,
              std::vector<std::shared_ptr<TraceSource>> sources);

    /** Convenience for in-memory traces (tests, single-shot runs): wraps
     *  each Trace in a MemoryTraceSource. The traces must outlive the
     *  simulator. */
    Simulator(const SystemConfig &cfg, std::vector<const Trace *> traces);
    ~Simulator();

    /** Warmup + measure; may only be called once. */
    SimResult run();

    /** Tick every unit once (exposed for tests). */
    void step();

    /**
     * Earliest cycle at which any component could change state or a
     * stat, given the post-step() state (conservative: never later than
     * the true next event). Only meaningful after at least one step().
     */
    Cycle nextEventCycle();

    /**
     * Event-driven idle skip: if nextEventCycle() is beyond cycle_, jump
     * the clock straight there (clamped to @p limit) and replay the
     * skipped cycles' deterministic stall counters on every core. A
     * skipping run is bit-identical — same stats, same figure tables —
     * to a cycle-by-cycle run; run() invokes this after every step when
     * the idle_skip knob is on. Returns the number of cycles skipped.
     */
    Cycle skipIdle(Cycle limit);

    /** Total cycles elided by skipIdle() (not a stat on purpose: the
     *  stat maps of skip-on and skip-off runs must stay identical). */
    std::uint64_t idleSkippedCycles() const { return idle_skipped_; }

    /** Attach a per-subsystem hot-loop profile (nullptr to detach).
     *  While attached, step()/skipIdle() bracket each component family
     *  with timestamp reads; simulation results are unaffected. */
    void setProfile(HotloopProfile *p) { profile_ = p; }

    Cycle cycle() const { return cycle_; }
    StatGroup &stats() { return stats_; }
    Core &core(unsigned i) { return *cores_[i]; }
    Cache &l1d(unsigned i) { return *l1d_[i]; }
    Cache &l2(unsigned i) { return *l2_[i]; }
    Cache &llc() { return *llc_; }
    DramController &dram() { return *dram_; }

    /** Combined TLP storage budget (Table II). */
    static StorageBudget tlpStorageBudget();

  private:
    /** The Fig. 4 oracle: counts where spec-targeted blocks reside.
     *  Implements SpecIssueObserver so the per-issue notification is one
     *  virtual call (no std::function on the hot path). */
    struct OracleProbe;

    /** Adapts the page table to the Cache::Translator interface: one
     *  shared instance translates every core's prefetch candidates (the
     *  last std::function on the hot path, now a direct virtual call). */
    struct PrefetchTranslator;

    void build();
    void stepProfiled();

    SystemConfig cfg_;
    std::vector<std::shared_ptr<TraceSource>> sources_;
    StatGroup stats_;
    Cycle cycle_ = 0;
    std::uint64_t idle_skipped_ = 0;
    HotloopProfile *profile_ = nullptr;

    PageTable page_table_;
    std::unique_ptr<OracleProbe> oracle_;
    std::unique_ptr<PrefetchTranslator> translator_;
    std::unique_ptr<DramController> dram_;
    std::unique_ptr<Cache> llc_;
    std::vector<std::unique_ptr<Cache>> l2_;
    std::vector<std::unique_ptr<Cache>> l1d_;
    std::vector<std::unique_ptr<Cache>> l1i_;
    std::vector<std::unique_ptr<Tlb>> dtlb_;
    std::vector<std::unique_ptr<Tlb>> stlb_;
    std::vector<std::unique_ptr<TranslationStack>> tlbs_;
    std::vector<std::unique_ptr<OffChipPredictor>> offchip_;
    std::vector<std::unique_ptr<PrefetchFilter>> l1_filter_;
    std::vector<std::unique_ptr<PrefetchFilter>> l2_filter_;
    std::vector<std::unique_ptr<Prefetcher>> l1_pf_;
    std::vector<std::unique_ptr<Prefetcher>> l2_pf_;
    std::vector<std::unique_ptr<TraceReader>> readers_;
    std::vector<std::unique_ptr<Core>> cores_;
};

} // namespace tlpsim

#endif // TLPSIM_SIM_SIMULATOR_HH
