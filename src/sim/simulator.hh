/**
 * @file
 * Simulator: composes cores, caches, TLBs, predictors, and DRAM into a
 * system per SystemConfig, runs warmup + measurement, and returns a
 * SimResult snapshot. Owns every component; nothing escapes its lifetime.
 */

#ifndef TLPSIM_SIM_SIMULATOR_HH
#define TLPSIM_SIM_SIMULATOR_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "common/stats.hh"
#include "core/core.hh"
#include "mem/dram.hh"
#include "offchip/offchip_predictor.hh"
#include "sim/system_config.hh"
#include "tlb/page_table.hh"
#include "tlb/tlb.hh"
#include "trace/trace.hh"

namespace tlpsim
{

/** Everything an experiment needs from one finished simulation. */
struct SimResult
{
    std::string scheme;
    unsigned num_cores = 0;
    InstrCount sim_instrs = 0;              ///< per core, nominal target
    /** Per core: instructions actually retired during measurement. Equal
     *  to sim_instrs for cores that reached their target; smaller for
     *  cores cut off by the cycle cap. Every per-instruction metric
     *  below divides by these, not the nominal target, so a capped run
     *  reports its true rates instead of silently deflated ones. */
    std::vector<InstrCount> instrs;
    std::vector<double> ipc;                ///< per core, measurement phase
    std::vector<Cycle> cycles;              ///< per core measurement cycles
    bool hit_cycle_cap = false;
    std::map<std::string, std::uint64_t> stats;

    /** Measured instructions summed over cores (nominal if pre-instrs
     *  results are mixed in, e.g. hand-built SimResults in tests). */
    InstrCount totalInstrs() const;

    std::uint64_t
    stat(const std::string &name) const
    {
        auto it = stats.find(name);
        return it == stats.end() ? 0 : it->second;
    }

    /** Sum a per-core stat "cpuN.<suffix>" over all cores. */
    std::uint64_t sumOverCores(const std::string &suffix) const;

    /** Demand (load+RFO) MPKI of a cache level ("l1d", "l2c", "llc"). */
    double mpki(const std::string &cache) const;

    /** Total DRAM transactions (the Figs. 2/3/11/14/16 metric). */
    std::uint64_t dramTransactions() const
    {
        return stat("dram.transactions");
    }

    /** L1D prefetch accuracy: useful / (useful + useless), Fig. 12. */
    double l1dPrefetchAccuracy() const;

    /** Prefetches per kilo-instruction helpers for Figs. 5/6. */
    double ppki(const std::string &counter_suffix) const;

    double ipcTotal() const;
};

class Simulator
{
  public:
    /**
     * @param cfg     full system configuration
     * @param traces  one trace per core (repeated cyclically if shorter
     *                than the simulation length)
     */
    Simulator(const SystemConfig &cfg, std::vector<const Trace *> traces);
    ~Simulator();

    /** Warmup + measure; may only be called once. */
    SimResult run();

    /** Tick every unit once (exposed for tests). */
    void step();

    Cycle cycle() const { return cycle_; }
    StatGroup &stats() { return stats_; }
    Core &core(unsigned i) { return *cores_[i]; }
    Cache &l1d(unsigned i) { return *l1d_[i]; }
    Cache &l2(unsigned i) { return *l2_[i]; }
    Cache &llc() { return *llc_; }
    DramController &dram() { return *dram_; }

    /** Combined TLP storage budget (Table II). */
    static StorageBudget tlpStorageBudget();

  private:
    /** The Fig. 4 oracle: counts where spec-targeted blocks reside.
     *  Implements SpecIssueObserver so the per-issue notification is one
     *  virtual call (no std::function on the hot path). */
    struct OracleProbe;

    /** Adapts the page table to the Cache::Translator interface: one
     *  shared instance translates every core's prefetch candidates (the
     *  last std::function on the hot path, now a direct virtual call). */
    struct PrefetchTranslator;

    void build();

    SystemConfig cfg_;
    std::vector<const Trace *> traces_;
    StatGroup stats_;
    Cycle cycle_ = 0;

    PageTable page_table_;
    std::unique_ptr<OracleProbe> oracle_;
    std::unique_ptr<PrefetchTranslator> translator_;
    std::unique_ptr<DramController> dram_;
    std::unique_ptr<Cache> llc_;
    std::vector<std::unique_ptr<Cache>> l2_;
    std::vector<std::unique_ptr<Cache>> l1d_;
    std::vector<std::unique_ptr<Cache>> l1i_;
    std::vector<std::unique_ptr<Tlb>> dtlb_;
    std::vector<std::unique_ptr<Tlb>> stlb_;
    std::vector<std::unique_ptr<TranslationStack>> tlbs_;
    std::vector<std::unique_ptr<OffChipPredictor>> offchip_;
    std::vector<std::unique_ptr<PrefetchFilter>> l1_filter_;
    std::vector<std::unique_ptr<PrefetchFilter>> l2_filter_;
    std::vector<std::unique_ptr<Prefetcher>> l1_pf_;
    std::vector<std::unique_ptr<Prefetcher>> l2_pf_;
    std::vector<std::unique_ptr<TraceReader>> readers_;
    std::vector<std::unique_ptr<Core>> cores_;
};

} // namespace tlpsim

#endif // TLPSIM_SIM_SIMULATOR_HH
