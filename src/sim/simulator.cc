#include "sim/simulator.hh"

#include <algorithm>

#include "common/watchdog.hh"
#include "offchip/slp.hh"

namespace tlpsim
{

/** Counts which level already holds the block a speculative DRAM read
 *  targets (Fig. 4). One instance serves all cores via pkt.core. */
struct Simulator::OracleProbe : SpecIssueObserver
{
    OracleProbe(Simulator &sim, StatGroup &stats)
        : sim_(sim),
          in_l1d_(stats.counter("oracle.spec_block_in_l1d")),
          in_l2c_(stats.counter("oracle.spec_block_in_l2c")),
          in_llc_(stats.counter("oracle.spec_block_in_llc")),
          in_dram_(stats.counter("oracle.spec_block_in_dram"))
    {
    }

    void
    onSpecIssued(const Packet &pkt) override
    {
        if (sim_.l1d_[pkt.core]->probe(pkt.paddr))
            in_l1d_->add();
        else if (sim_.l2_[pkt.core]->probe(pkt.paddr))
            in_l2c_->add();
        else if (sim_.llc_->probe(pkt.paddr))
            in_llc_->add();
        else
            in_dram_->add();
    }

  private:
    Simulator &sim_;
    Counter *in_l1d_;
    Counter *in_l2c_;
    Counter *in_llc_;
    Counter *in_dram_;
};

/** One page-table adapter serves all cores; the core id is the address
 *  space id (asid), exactly as the per-core lambdas used to capture it. */
struct Simulator::PrefetchTranslator : Translator
{
    explicit PrefetchTranslator(PageTable &pt) : pt_(pt) {}

    Addr
    translate(std::uint8_t core, Addr vaddr) override
    {
        return pt_.translate(core, vaddr);
    }

  private:
    PageTable &pt_;
};

InstrCount
SimResult::totalInstrs() const
{
    // The nominal quota is only a fallback for hand-built results with
    // no per-core accounting at all. Simulator::run always fills
    // `instrs` with what each window measured (sim_instrs for closed
    // windows, the truncated count for capped ones, 0 for cores caught
    // mid-warmup), and summing anything else here would misreport every
    // per-instruction total of capped or heterogeneous runs.
    if (instrs.empty())
        return sim_instrs * num_cores;
    InstrCount total = 0;
    for (InstrCount n : instrs)
        total += n;
    return total;
}

std::uint64_t
SimResult::sumOverCores(const std::string &suffix) const
{
    std::uint64_t total = 0;
    for (unsigned c = 0; c < num_cores; ++c)
        total += stat("cpu" + std::to_string(c) + "." + suffix);
    return total;
}

double
SimResult::mpki(const std::string &cache) const
{
    // The LLC is shared (one stat group); per-core caches sum "cpuN." stats.
    std::uint64_t misses = cache == "llc"
        ? stat("llc.load_miss") + stat("llc.rfo_miss")
        : sumOverCores(cache + ".load_miss")
            + sumOverCores(cache + ".rfo_miss");
    double kilo_instr = static_cast<double>(totalInstrs()) / 1000.0;
    return kilo_instr == 0.0 ? 0.0 : static_cast<double>(misses) / kilo_instr;
}

double
SimResult::l1dPrefetchAccuracy() const
{
    auto useful = static_cast<double>(sumOverCores("l1d.pf_useful"));
    auto useless = static_cast<double>(sumOverCores("l1d.pf_useless"));
    return useful + useless == 0.0 ? 0.0 : useful / (useful + useless);
}

double
SimResult::ppki(const std::string &counter_suffix) const
{
    double kilo_instr = static_cast<double>(totalInstrs()) / 1000.0;
    return kilo_instr == 0.0
        ? 0.0
        : static_cast<double>(sumOverCores(counter_suffix)) / kilo_instr;
}

double
SimResult::ipcTotal() const
{
    double total = 0.0;
    for (double v : ipc)
        total += v;
    return total;
}

double
SimResult::ipcMax() const
{
    double max = 0.0;
    for (double v : ipc)
        max = std::max(max, v);
    return max;
}

Simulator::Simulator(const SystemConfig &cfg,
                     std::vector<std::shared_ptr<TraceSource>> sources)
    : cfg_(cfg), sources_(std::move(sources)), stats_("sim")
{
    // A config error, not an assert: the shared LLC and DRAM are sized
    // from num_cores, so silently reusing or dropping traces would skew
    // every multi-core metric — and asserts vanish in Release builds.
    if (sources_.size() != cfg_.num_cores) {
        throw ConfigError(
            "cores = " + std::to_string(cfg_.num_cores) + " but "
            + std::to_string(sources_.size())
            + " trace(s) supplied: a multi-core mix needs exactly one "
              "workload per core (adjust 'cores' or the mix)");
    }
    for (std::size_t c = 0; c < sources_.size(); ++c) {
        if (sources_[c] == nullptr) {
            throw ConfigError("core " + std::to_string(c)
                              + " has no trace stream");
        }
    }
    build();
}

Simulator::Simulator(const SystemConfig &cfg,
                     std::vector<const Trace *> traces)
    : Simulator(cfg, [&traces] {
          std::vector<std::shared_ptr<TraceSource>> sources;
          sources.reserve(traces.size());
          for (const Trace *t : traces)
              sources.push_back(std::make_shared<MemoryTraceSource>(*t));
          return sources;
      }())
{
}

Simulator::~Simulator() = default;

void
Simulator::build()
{
    const unsigned n = cfg_.num_cores;

    oracle_ = std::make_unique<OracleProbe>(*this, stats_);
    translator_ = std::make_unique<PrefetchTranslator>(page_table_);

    DramController::Params dp = cfg_.dram;
    dp.burst_cycles = cfg_.burstCycles();
    dp.num_cores = n;
    dram_ = std::make_unique<DramController>(dp, &stats_);

    Cache::Params lp = cfg_.llc;
    lp.name = "llc";
    lp.sets *= n;                  // 1.375 MB and 64 MSHRs per core
    lp.mshrs *= n;
    lp.rq_size *= n;
    lp.wq_size *= n;
    lp.pq_size *= n;
    llc_ = std::make_unique<Cache>(lp, dram_.get(), &stats_);

    for (unsigned c = 0; c < n; ++c) {
        const std::string cpu = "cpu" + std::to_string(c);
        const SchemeConfig &sch = cfg_.scheme;

        // Components are built through the string-keyed registries: the
        // scheme names what is deployed, and the buildConfig helpers
        // (shared with SystemConfig::effectiveConfig, so the fingerprint
        // matches construction) assemble the named paper knobs plus the
        // forwarded subtree (scheme.offchip.* et al.) — so new backends
        // drop in via registration plus config alone. build() validates
        // every key against the component's declared knob schema. Only
        // the per-cpu stat name is injected here, and a user-set "name"
        // subtree key still wins.
        if (sch.hasOffchip()) {
            Config oc = sch.offchipBuildConfig();
            if (!oc.has("name"))
                oc.set("name", cpu + ".flp");
            offchip_.push_back(
                offchipRegistry().build(sch.offchip, oc, &stats_));
        } else {
            offchip_.push_back(nullptr);
        }

        if (sch.hasL1Filter()) {
            Config fc = sch.l1FilterBuildConfig();
            if (!fc.has("name"))
                fc.set("name", cpu + "." + sch.l1_filter);
            l1_filter_.push_back(
                filterRegistry().build(sch.l1_filter, fc, &stats_));
        } else {
            l1_filter_.push_back(nullptr);
        }

        if (sch.hasL2Filter()) {
            Config fc = sch.l2FilterBuildConfig();
            if (!fc.has("name"))
                fc.set("name", cpu + "." + sch.l2_filter);
            l2_filter_.push_back(
                filterRegistry().build(sch.l2_filter, fc, &stats_));
        } else {
            l2_filter_.push_back(nullptr);
        }

        if (!cfg_.l1_prefetcher.empty()) {
            l1_pf_.push_back(prefetcherRegistry().build(
                cfg_.l1_prefetcher, cfg_.l1PrefetcherBuildConfig()));
        } else {
            l1_pf_.push_back(nullptr);
        }

        if (!cfg_.l2_prefetcher.empty()) {
            l2_pf_.push_back(prefetcherRegistry().build(
                cfg_.l2_prefetcher, cfg_.l2PrefetcherBuildConfig()));
        } else {
            l2_pf_.push_back(nullptr);
        }

        Cache::Params p2 = cfg_.l2;
        p2.name = cpu + ".l2c";
        p2.prefetcher = l2_pf_.back().get();
        p2.filter = l2_filter_.back().get();
        l2_.push_back(std::make_unique<Cache>(p2, llc_.get(), &stats_));

        Cache::Params p1 = cfg_.l1d;
        p1.name = cpu + ".l1d";
        p1.prefetcher = l1_pf_.back().get();
        p1.filter = l1_filter_.back().get();
        p1.translator = translator_.get();
        // The delayed speculative path exists for FLP-style policies.
        if (sch.offchip_policy == OffchipPolicy::Selective
            || sch.offchip_policy == OffchipPolicy::AlwaysDelay) {
            p1.spec_dram = dram_.get();
        }
        p1.spec_latency = cfg_.core.spec_latency;
        p1.spec_observer = oracle_.get();
        l1d_.push_back(std::make_unique<Cache>(p1, l2_.back().get(),
                                               &stats_));

        Cache::Params pi = cfg_.l1i;
        pi.name = cpu + ".l1i";
        l1i_.push_back(std::make_unique<Cache>(pi, l2_.back().get(),
                                               &stats_));

        Tlb::Params dt = cfg_.dtlb;
        dt.name = cpu + ".dtlb";
        dtlb_.push_back(std::make_unique<Tlb>(dt, &stats_));
        Tlb::Params st = cfg_.stlb;
        st.name = cpu + ".stlb";
        stlb_.push_back(std::make_unique<Tlb>(st, &stats_));
        tlbs_.push_back(std::make_unique<TranslationStack>(
            dtlb_.back().get(), stlb_.back().get()));

        readers_.push_back(std::make_unique<TraceReader>(*sources_[c]));

        Core::Params cp = cfg_.core;
        cp.id = c;
        cp.name = cpu;

        Core::Ports ports;
        ports.trace = readers_.back().get();
        ports.l1i = l1i_.back().get();
        ports.l1d = l1d_.back().get();
        ports.walk_target = l2_.back().get();
        ports.tlbs = tlbs_.back().get();
        ports.page_table = &page_table_;
        ports.dram = dram_.get();
        ports.offchip = offchip_.back().get();
        ports.spec_observer = oracle_.get();
        cores_.push_back(std::make_unique<Core>(cp, ports, &stats_));
    }
}

void
Simulator::step()
{
    if (profile_ != nullptr) {
        stepProfiled();
        return;
    }
    for (auto &core : cores_)
        core->tickIfDue(cycle_);
    for (auto &c : l1i_)
        c->tickIfDue(cycle_);
    for (auto &c : l1d_)
        c->tickIfDue(cycle_);
    for (auto &c : l2_)
        c->tickIfDue(cycle_);
    llc_->tickIfDue(cycle_);
    dram_->tickIfDue(cycle_);
    ++cycle_;
}

void
Simulator::stepProfiled()
{
    HotloopProfile &p = *profile_;
    std::uint64_t t0 = profileTimestamp();
    auto lap = [&t0, &p](int subsystem, std::size_t n) {
        const std::uint64_t t1 = profileTimestamp();
        p.ticks[subsystem] += t1 - t0;
        p.calls[subsystem] += n;
        t0 = t1;
    };
    for (auto &core : cores_)
        core->tickIfDue(cycle_);
    lap(HotloopProfile::kCore, cores_.size());
    for (auto &c : l1i_)
        c->tickIfDue(cycle_);
    lap(HotloopProfile::kL1i, l1i_.size());
    for (auto &c : l1d_)
        c->tickIfDue(cycle_);
    lap(HotloopProfile::kL1d, l1d_.size());
    for (auto &c : l2_)
        c->tickIfDue(cycle_);
    lap(HotloopProfile::kL2, l2_.size());
    llc_->tickIfDue(cycle_);
    lap(HotloopProfile::kLlc, 1);
    dram_->tickIfDue(cycle_);
    lap(HotloopProfile::kDram, 1);
    ++cycle_;
    ++p.stepped_cycles;
}

Cycle
Simulator::nextEventCycle()
{
    // Components were last ticked at cycle_ - 1 (step() post-increments).
    // Cheapest sources first (O(1) cache watermarks, then DRAM, then the
    // per-core scans), bailing out the moment the floor of now + 1 is
    // reached: on busy cycles some cache almost always has work due next
    // cycle, so the common case never pays for the core-side scan.
    const Cycle now = cycle_ - 1;
    const Cycle lo = now + 1;
    Cycle e = llc_->nextEventCycle(now);
    if (e <= lo)
        return e;
    for (auto &c : l1d_) {
        e = std::min(e, c->nextEventCycle(now));
        if (e <= lo)
            return e;
    }
    for (auto &c : l2_) {
        e = std::min(e, c->nextEventCycle(now));
        if (e <= lo)
            return e;
    }
    for (auto &c : l1i_) {
        e = std::min(e, c->nextEventCycle(now));
        if (e <= lo)
            return e;
    }
    e = std::min(e, dram_->nextEventCycle(now));
    if (e <= lo)
        return e;
    for (auto &core : cores_) {
        e = std::min(e, core->nextEventCycle(now));
        if (e <= lo)
            return e;
    }
    return e;
}

Cycle
Simulator::skipIdle(Cycle limit)
{
    Cycle target;
    if (profile_ != nullptr) {
        const std::uint64_t t0 = profileTimestamp();
        target = std::min(nextEventCycle(), limit);
        profile_->ticks[HotloopProfile::kNextEvent]
            += profileTimestamp() - t0;
        ++profile_->calls[HotloopProfile::kNextEvent];
    } else {
        target = std::min(nextEventCycle(), limit);
    }
    if (target <= cycle_)
        return 0;
    const Cycle delta = target - cycle_;
    // Replay the per-cycle stall counters the elided ticks would have
    // bumped (the only side effect a quiescent cycle has).
    for (auto &core : cores_)
        core->onCyclesSkipped(delta);
    cycle_ = target;
    idle_skipped_ += delta;
    if (profile_ != nullptr)
        profile_->skipped_cycles += delta;
    return delta;
}

namespace
{

/** Per-core stat prefix by the naming convention every component in
 *  build() follows: core-owned counters are "cpuN.…", shared ones
 *  (llc, dram, oracle) never start with "cpu". */
std::string
perCorePrefix(unsigned core)
{
    return "cpu" + std::to_string(core) + ".";
}

bool
isPerCoreStat(const std::string &name)
{
    return name.compare(0, 3, "cpu") == 0;
}

} // namespace

SimResult
Simulator::run()
{
    const unsigned n = cfg_.num_cores;
    const InstrCount warmup = cfg_.warmup_instrs;
    // Per-core retirement target: a core's window closes when *it* has
    // retired warmup + sim_instrs, regardless of co-runner progress.
    const InstrCount target = cfg_.warmup_instrs + cfg_.sim_instrs;
    // Configured hard cap, or the automatic hang bound, derived from the
    // per-core target: the run ends when the slowest core retires
    // `target` instructions, and all cores progress concurrently, so an
    // IPC floor of 1/400 on that slowest core bounds the whole run at
    // target * 400 cycles plus fixed cold-start slack. Warmup is part of
    // the bound — with per-core windows the slowest core's warmup can
    // dominate the run, and a cap hit during warmup must still be a
    // clean hit_cycle_cap result (zero-instruction windows, not
    // garbage), which the post-loop accounting below guarantees.
    const Cycle cap = cfg_.max_cycles != 0
        ? cfg_.max_cycles
        : static_cast<Cycle>(target) * 400 + 100'000;

    SimResult res;
    res.scheme = cfg_.scheme.name;
    res.num_cores = n;
    res.sim_instrs = cfg_.sim_instrs;
    res.instrs.assign(n, 0);
    res.ipc.assign(n, 0.0);
    res.warmup_end_cycle.assign(n, 0);
    res.window_cycles.assign(n, 0);

    // Per-core phase machine (ChampSim-style): warming → measuring the
    // cycle the core retires its own warmup quota, → done when it
    // retires sim_instrs more. Under the old global warmup barrier a
    // fast core could pass `target` while slow co-runners were still
    // warming up, so its "measurement window" degenerated to ~1 cycle
    // and its IPC read as ~sim_instrs. Per-core stats are delimited by
    // snapshots at the core's own window boundaries; shared structures
    // (LLC, DRAM, oracle) get one global window from the first window
    // opening to the last one closing.
    enum class Phase : std::uint8_t { Warming, Measuring, Done };
    std::vector<Phase> phase(n, Phase::Warming);
    std::vector<StatSnapshot> window_open(n);
    std::vector<InstrCount> retired_at_open(n, 0);
    StatSnapshot shared_open;
    bool any_window_open = false;
    unsigned remaining = n;

    auto openWindow = [&](unsigned c) {
        phase[c] = Phase::Measuring;
        res.warmup_end_cycle[c] = cycle_;
        retired_at_open[c] = cores_[c]->retired();
        window_open[c] = stats_.snapshot(perCorePrefix(c));
        if (!any_window_open) {
            shared_open = stats_.snapshot();
            any_window_open = true;
        }
    };
    auto closeWindow = [&](unsigned c) {
        phase[c] = Phase::Done;
        res.window_cycles[c] = cycle_ - res.warmup_end_cycle[c];
        for (auto &[stat, delta] : stats_.deltaSince(window_open[c]))
            res.stats.insert_or_assign(stat, delta);
        --remaining;
    };
    auto advancePhases = [&] {
        for (unsigned c = 0; c < n; ++c) {
            if (phase[c] == Phase::Warming
                && cores_[c]->retired() >= warmup) {
                openWindow(c);
            }
            if (phase[c] == Phase::Measuring
                && cores_[c]->retired() >= target) {
                res.instrs[c] = cfg_.sim_instrs;
                closeWindow(c);
            }
        }
    };

    advancePhases();   // warmup_instrs == 0 opens windows at cycle 0
    const bool idle_skip = cfg_.idle_skip;
    Cycle poll_epoch = 0;
    Cycle next_skip_try = 0;
    while (remaining > 0 && cycle_ < cap) {
        step();
        // Wall-clock watchdog (armed by the Runner's StorePolicy): one
        // predictable branch per ~64 Ki cycles, a clock read only when a
        // timeout is actually configured. poll() throws SimTimeoutError,
        // unwinding this run cleanly — simulation state is per-Simulator
        // and dies with it, so a retry starts from scratch. The poll
        // fires on 64 Ki-epoch *crossings*, not exact multiples: the
        // idle skip below can jump the clock over any fixed multiple.
        if ((cycle_ >> 16) != poll_epoch) {
            poll_epoch = cycle_ >> 16;
            watchdog::poll();
        }
        advancePhases();
        // Event-driven idle elision: when every component reports its
        // next possible state change is beyond the next cycle, jump
        // straight there. Bit-identical to ticking through (the skipped
        // ticks' only side effects — per-cycle stall counters — are
        // replayed), including at the cap: a capped run replays exactly
        // the stall counts the cycle-by-cycle loop would have counted.
        // A fruitless scan backs off for a few cycles: skipping is
        // optional (a missed skip just ticks through the quiet cycles),
        // so busy stretches stop paying the scan every cycle.
        if (idle_skip && remaining > 0 && cycle_ < cap
            && cycle_ >= next_skip_try && skipIdle(cap) == 0) {
            next_skip_try = cycle_ + 8;
        }
    }
    res.hit_cycle_cap = remaining > 0;

    // Cores cut off by the cap report what their window really held —
    // the instructions retired since it opened — and a core the cap
    // caught still warming held nothing: zero instructions over a
    // zero-cycle window, with explicit zero stat deltas so the result's
    // stat key set does not depend on where the cap landed.
    for (unsigned c = 0; c < n; ++c) {
        if (phase[c] == Phase::Measuring) {
            res.instrs[c] = std::min<InstrCount>(
                cores_[c]->retired() - retired_at_open[c],
                cfg_.sim_instrs);
            closeWindow(c);
        } else if (phase[c] == Phase::Warming) {
            for (auto &[stat, delta]
                 : stats_.deltaSince(stats_.snapshot(perCorePrefix(c))))
                res.stats.insert_or_assign(stat, delta);
        }
    }

    // Shared-structure window: first window open → last window close
    // (the loop exits the cycle the last window closes, or at the cap).
    // If the cap fired before any window opened the global window is
    // empty and every shared counter reports a zero delta.
    if (!any_window_open)
        shared_open = stats_.snapshot();
    for (auto &[stat, delta] : stats_.deltaSince(shared_open)) {
        if (!isPerCoreStat(stat))
            res.stats.insert_or_assign(stat, delta);
    }

    for (unsigned c = 0; c < n; ++c) {
        res.ipc[c] = res.window_cycles[c] == 0
            ? 0.0
            : static_cast<double>(res.instrs[c])
                / static_cast<double>(res.window_cycles[c]);
    }
    return res;
}

StorageBudget
Simulator::tlpStorageBudget()
{
    StorageBudget b;

    StatGroup scratch("scratch");
    OffChipPredictor::Params fp;
    fp.name = "flp";
    OffChipPredictor flp(fp, &scratch);
    b.merge(flp.storage(), "FLP: ");

    Slp::Params sp;
    Slp slp(sp, &scratch);
    b.merge(slp.storage(), "SLP: ");

    // Load Queue metadata (Table II): hashed PC 32b + last-4 PC 10b +
    // first access 1b + confidence 5b, per LQ entry (72 entries).
    b.add("LQ metadata", std::uint64_t{72} * (32 + 10 + 1 + 5));
    // L1D MSHR metadata: same + prediction bit, per MSHR (10 entries).
    b.add("L1D MSHR metadata", std::uint64_t{10} * (32 + 10 + 1 + 5 + 1));
    return b;
}

} // namespace tlpsim
