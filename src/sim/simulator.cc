#include "sim/simulator.hh"

#include <cassert>

namespace tlpsim
{

std::uint64_t
SimResult::sumOverCores(const std::string &suffix) const
{
    std::uint64_t total = 0;
    for (unsigned c = 0; c < num_cores; ++c)
        total += stat("cpu" + std::to_string(c) + "." + suffix);
    return total;
}

double
SimResult::mpki(const std::string &cache) const
{
    // The LLC is shared (one stat group); per-core caches sum "cpuN." stats.
    std::uint64_t misses = cache == "llc"
        ? stat("llc.load_miss") + stat("llc.rfo_miss")
        : sumOverCores(cache + ".load_miss")
            + sumOverCores(cache + ".rfo_miss");
    double kilo_instr
        = static_cast<double>(sim_instrs) * num_cores / 1000.0;
    return kilo_instr == 0.0 ? 0.0 : static_cast<double>(misses) / kilo_instr;
}

double
SimResult::l1dPrefetchAccuracy() const
{
    auto useful = static_cast<double>(sumOverCores("l1d.pf_useful"));
    auto useless = static_cast<double>(sumOverCores("l1d.pf_useless"));
    return useful + useless == 0.0 ? 0.0 : useful / (useful + useless);
}

double
SimResult::ppki(const std::string &counter_suffix) const
{
    double kilo_instr
        = static_cast<double>(sim_instrs) * num_cores / 1000.0;
    return kilo_instr == 0.0
        ? 0.0
        : static_cast<double>(sumOverCores(counter_suffix)) / kilo_instr;
}

double
SimResult::ipcTotal() const
{
    double total = 0.0;
    for (double v : ipc)
        total += v;
    return total;
}

Simulator::Simulator(const SystemConfig &cfg,
                     std::vector<const Trace *> traces)
    : cfg_(cfg), traces_(std::move(traces)), stats_("sim")
{
    assert(traces_.size() == cfg_.num_cores);
    build();
}

Simulator::~Simulator() = default;

void
Simulator::build()
{
    const unsigned n = cfg_.num_cores;

    DramController::Params dp = cfg_.dram;
    dp.burst_cycles = cfg_.burstCycles();
    dp.num_cores = n;
    dram_ = std::make_unique<DramController>(dp, &stats_);

    Cache::Params lp = cfg_.llc;
    lp.name = "llc";
    lp.sets *= n;                  // 1.375 MB and 64 MSHRs per core
    lp.mshrs *= n;
    lp.rq_size *= n;
    lp.wq_size *= n;
    lp.pq_size *= n;
    llc_ = std::make_unique<Cache>(lp, dram_.get(), &stats_);

    for (unsigned c = 0; c < n; ++c) {
        const std::string cpu = "cpu" + std::to_string(c);
        const SchemeConfig &sch = cfg_.scheme;

        if (sch.hasOffchip()) {
            OffChipPredictor::Params op;
            op.name = cpu + ".flp";
            op.policy = sch.offchip_policy;
            op.tau_high = sch.tau_high;
            op.tau_low = sch.tau_low;
            op.training_threshold = sch.offchip_training_threshold;
            op.table_scale_shift = sch.offchip_table_scale;
            offchip_.push_back(
                std::make_unique<OffChipPredictor>(op, &stats_));
        } else {
            offchip_.push_back(nullptr);
        }

        if (sch.slp) {
            Slp::Params sp;
            sp.name = cpu + ".slp";
            sp.tau_pref = sch.slp_tau_pref;
            sp.use_flp_feature = sch.slp_flp_feature;
            slp_.push_back(std::make_unique<Slp>(sp, &stats_));
        } else {
            slp_.push_back(nullptr);
        }

        if (sch.ppf) {
            Ppf::Params pp;
            pp.name = cpu + ".ppf";
            ppf_.push_back(std::make_unique<Ppf>(pp, &stats_));
        } else {
            ppf_.push_back(nullptr);
        }

        l1_pf_.push_back(makeL1Prefetcher(cfg_.l1_prefetcher,
                                          cfg_.l1_pf_table_scale));
        l2_pf_.push_back(makeL2Prefetcher(
            sch.ppf ? L2Prefetcher::SppAggressive : L2Prefetcher::Spp));

        Cache::Params p2 = cfg_.l2;
        p2.name = cpu + ".l2c";
        p2.prefetcher = l2_pf_.back().get();
        p2.filter = ppf_.back().get();
        l2_.push_back(std::make_unique<Cache>(p2, llc_.get(), &stats_));

        Cache::Params p1 = cfg_.l1d;
        p1.name = cpu + ".l1d";
        p1.prefetcher = l1_pf_.back().get();
        p1.filter = slp_.back().get();
        p1.translator = [this, c](std::uint8_t, Addr vaddr) {
            return page_table_.translate(c, vaddr);
        };
        // The delayed speculative path exists for FLP-style policies.
        if (sch.offchip_policy == OffchipPolicy::Selective
            || sch.offchip_policy == OffchipPolicy::AlwaysDelay) {
            p1.spec_dram = dram_.get();
        }
        p1.spec_latency = cfg_.core.spec_latency;
        // Register the oracle counters once; the probe fires per
        // speculative issue and must not do string lookups.
        Counter *in_l1d = stats_.counter("oracle.spec_block_in_l1d");
        Counter *in_l2c = stats_.counter("oracle.spec_block_in_l2c");
        Counter *in_llc = stats_.counter("oracle.spec_block_in_llc");
        Counter *in_dram = stats_.counter("oracle.spec_block_in_dram");
        p1.on_spec_issued = [this, c, in_l1d, in_l2c, in_llc,
                             in_dram](const Packet &pkt) {
            if (l1d_[c]->probe(pkt.paddr))
                in_l1d->add();
            else if (l2_[c]->probe(pkt.paddr))
                in_l2c->add();
            else if (llc_->probe(pkt.paddr))
                in_llc->add();
            else
                in_dram->add();
        };
        l1d_.push_back(std::make_unique<Cache>(p1, l2_.back().get(),
                                               &stats_));
        // Close the self-reference used by the oracle probe above.

        Cache::Params pi = cfg_.l1i;
        pi.name = cpu + ".l1i";
        l1i_.push_back(std::make_unique<Cache>(pi, l2_.back().get(),
                                               &stats_));

        Tlb::Params dt = cfg_.dtlb;
        dt.name = cpu + ".dtlb";
        dtlb_.push_back(std::make_unique<Tlb>(dt, &stats_));
        Tlb::Params st = cfg_.stlb;
        st.name = cpu + ".stlb";
        stlb_.push_back(std::make_unique<Tlb>(st, &stats_));
        tlbs_.push_back(std::make_unique<TranslationStack>(
            dtlb_.back().get(), stlb_.back().get()));

        readers_.push_back(std::make_unique<TraceReader>(*traces_[c]));

        Core::Params cp = cfg_.core;
        cp.id = c;
        cp.name = cpu;

        Core::Ports ports;
        ports.trace = readers_.back().get();
        ports.l1i = l1i_.back().get();
        ports.l1d = l1d_.back().get();
        ports.walk_target = l2_.back().get();
        ports.tlbs = tlbs_.back().get();
        ports.page_table = &page_table_;
        ports.dram = dram_.get();
        ports.offchip = offchip_.back().get();
        ports.on_spec_issued = p1.on_spec_issued;
        cores_.push_back(std::make_unique<Core>(cp, ports, &stats_));
    }
}

void
Simulator::step()
{
    for (auto &core : cores_)
        core->tick(cycle_);
    for (auto &c : l1i_)
        c->tick(cycle_);
    for (auto &c : l1d_)
        c->tick(cycle_);
    for (auto &c : l2_)
        c->tick(cycle_);
    llc_->tick(cycle_);
    dram_->tick(cycle_);
    ++cycle_;
}

SimResult
Simulator::run()
{
    const unsigned n = cfg_.num_cores;
    const InstrCount warmup = cfg_.warmup_instrs;
    const InstrCount target = cfg_.warmup_instrs + cfg_.sim_instrs;
    // Generous bound: IPC floor of 1/400 before we declare a hang.
    const Cycle cap = static_cast<Cycle>(target) * 400 + 100'000;

    SimResult res;
    res.scheme = cfg_.scheme.name;
    res.num_cores = n;
    res.sim_instrs = cfg_.sim_instrs;
    res.ipc.assign(n, 0.0);
    res.cycles.assign(n, 0);

    auto all_reached = [&](InstrCount k) {
        for (auto &core : cores_) {
            if (core->retired() < k)
                return false;
        }
        return true;
    };

    while (!all_reached(warmup) && cycle_ < cap)
        step();

    stats_.resetAll();
    Cycle measure_start = cycle_;
    std::vector<Cycle> finish(n, 0);
    std::vector<bool> done(n, false);
    unsigned remaining = n;

    while (remaining > 0 && cycle_ < cap) {
        step();
        for (unsigned c = 0; c < n; ++c) {
            if (!done[c] && cores_[c]->retired() >= target) {
                done[c] = true;
                finish[c] = cycle_;
                --remaining;
            }
        }
    }
    res.hit_cycle_cap = remaining > 0;

    for (unsigned c = 0; c < n; ++c) {
        Cycle fc = done[c] ? finish[c] : cycle_;
        res.cycles[c] = fc - measure_start;
        res.ipc[c] = res.cycles[c] == 0
            ? 0.0
            : static_cast<double>(cfg_.sim_instrs)
                / static_cast<double>(res.cycles[c]);
    }
    for (auto &[name, value] : stats_.dump())
        res.stats.emplace(name, value);
    return res;
}

StorageBudget
Simulator::tlpStorageBudget()
{
    StorageBudget b;

    StatGroup scratch("scratch");
    OffChipPredictor::Params fp;
    fp.name = "flp";
    OffChipPredictor flp(fp, &scratch);
    b.merge(flp.storage(), "FLP: ");

    Slp::Params sp;
    Slp slp(sp, &scratch);
    b.merge(slp.storage(), "SLP: ");

    // Load Queue metadata (Table II): hashed PC 32b + last-4 PC 10b +
    // first access 1b + confidence 5b, per LQ entry (72 entries).
    b.add("LQ metadata", std::uint64_t{72} * (32 + 10 + 1 + 5));
    // L1D MSHR metadata: same + prediction bit, per MSHR (10 entries).
    b.add("L1D MSHR metadata", std::uint64_t{10} * (32 + 10 + 1 + 5 + 1));
    return b;
}

} // namespace tlpsim
