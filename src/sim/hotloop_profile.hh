/**
 * @file
 * Per-subsystem cycle attribution for the simulator hot loop.
 *
 * A HotloopProfile attached to a Simulator (Simulator::setProfile) makes
 * step() and skipIdle() bracket each component family's tick with a TSC
 * read and accumulate the deltas per subsystem. The normal path pays one
 * predictable branch per step; the profiled path pays ~2 TSC reads per
 * component per cycle, which perturbs absolute wall time but keeps the
 * *relative* attribution honest — exactly what's needed to direct
 * hot-loop work and to spot a subsystem whose share regresses.
 *
 * Used by bench/profile_hotloop (CI uploads its report as an artifact).
 */

#ifndef TLPSIM_SIM_HOTLOOP_PROFILE_HH
#define TLPSIM_SIM_HOTLOOP_PROFILE_HH

#include <cstdint>
#include <ctime>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace tlpsim
{

/** Timestamp source for profiling: raw TSC on x86, a monotonic clock
 *  elsewhere. Only ratios between samples are ever reported, so the
 *  unit (TSC ticks vs nanoseconds) does not matter. */
inline std::uint64_t
profileTimestamp()
{
#if defined(__x86_64__) || defined(__i386__)
    return __rdtsc();
#else
    struct timespec ts;
    // tlpsim:waive(determinism) profiling-only clock read; never taken on
    // the simulation path and never feeds simulated state.
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL
        + static_cast<std::uint64_t>(ts.tv_nsec);
#endif
}

/** Accumulated hot-loop attribution, one bucket per subsystem family. */
struct HotloopProfile
{
    enum Subsystem
    {
        kCore = 0,     ///< Core::tick (retire/issue/fetch/dispatch)
        kL1i,          ///< instruction caches
        kL1d,          ///< data caches
        kL2,           ///< private L2s
        kLlc,          ///< shared LLC
        kDram,         ///< DRAM controller
        kNextEvent,    ///< idle-skip next-event computation
        kNumSubsystems,
    };

    std::uint64_t ticks[kNumSubsystems] = {};   ///< TSC deltas summed
    std::uint64_t calls[kNumSubsystems] = {};
    std::uint64_t stepped_cycles = 0;           ///< cycles actually ticked
    std::uint64_t skipped_cycles = 0;           ///< cycles elided by skip

    static const char *
    name(int s)
    {
        static const char *kNames[kNumSubsystems]
            = {"core", "l1i", "l1d", "l2", "llc", "dram", "next_event"};
        return kNames[s];
    }

    std::uint64_t
    total() const
    {
        std::uint64_t t = 0;
        for (std::uint64_t v : ticks)
            t += v;
        return t;
    }

    void
    merge(const HotloopProfile &o)
    {
        for (int s = 0; s < kNumSubsystems; ++s) {
            ticks[s] += o.ticks[s];
            calls[s] += o.calls[s];
        }
        stepped_cycles += o.stepped_cycles;
        skipped_cycles += o.skipped_cycles;
    }
};

} // namespace tlpsim

#endif // TLPSIM_SIM_HOTLOOP_PROFILE_HH
