/**
 * @file
 * Parallel experiment engine.
 *
 * A figure/table bench is a grid of independent design points
 * (workload × scheme × system knobs); each point is one self-contained
 * simulation. The Runner shards those simulations across a job-based
 * thread pool:
 *
 *   - Jobs are keyed by a config fingerprint; submitting the same design
 *     point twice is a no-op, and results are memoized for the lifetime of
 *     the Runner (this replaces the per-bench static result caches).
 *   - Traces are recorded once through the mutex-guarded cache in
 *     sim/experiment.cc and shared read-only across workers.
 *   - get() blocks until the job completes; if the job is still queued,
 *     the calling thread claims and runs it inline (work stealing), so a
 *     Runner with TLPSIM_JOBS=1 spawns no threads and degenerates to the
 *     old sequential behaviour.
 *   - Results are keyed, not ordered by completion: benches render their
 *     tables by iterating their own loops, so output is bit-identical
 *     regardless of worker count.
 *
 * Worker count comes from TLPSIM_JOBS (default: hardware_concurrency).
 */

#ifndef TLPSIM_SIM_RUNNER_HH
#define TLPSIM_SIM_RUNNER_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/experiment.hh"
#include "sim/simulator.hh"
#include "sim/system_config.hh"
#include "workloads/workload.hh"

namespace tlpsim::experiment
{

/** TLPSIM_JOBS (worker threads), default hardware_concurrency, min 1. */
unsigned jobsFromEnv();

/** Fingerprint of every SystemConfig field the simulation depends on
 *  (the serialized SystemConfig::effectiveConfig dump, which expands
 *  each deployed component's declared knob defaults). */
std::string configKey(const SystemConfig &cfg);

/** Short human-readable design-point label for progress logging. */
std::string configSummary(const SystemConfig &cfg);

class Runner
{
  public:
    using JobFn = std::function<SimResult()>;

    explicit Runner(unsigned jobs = jobsFromEnv());
    ~Runner();

    Runner(const Runner &) = delete;
    Runner &operator=(const Runner &) = delete;

    /** Queue a keyed job. Returns false (and does nothing) if the key is
     *  already submitted, running, or done. */
    bool submit(const std::string &key, JobFn fn);

    /** Block until the job for @p key is done; runs it inline if it is
     *  still queued. The reference stays valid for the Runner's life. */
    const SimResult &get(const std::string &key);

    /** submit() + get(). */
    const SimResult &
    run(const std::string &key, JobFn fn)
    {
        submit(key, std::move(fn));
        return get(key);
    }

    // ----- design-point helpers used by the bench binaries --------------

    /** Queue a single-core simulation of @p w under @p cfg. */
    void submitSingle(const workloads::WorkloadSpec &w,
                      const SystemConfig &cfg);

    /** Result of submitSingle (submits on demand). */
    const SimResult &single(const workloads::WorkloadSpec &w,
                            const SystemConfig &cfg);

    /** Queue a multi-core mix simulation (cfg.num_cores cores). */
    void submitMix(const std::vector<workloads::WorkloadSpec> &all,
                   const workloads::Mix &mix, const SystemConfig &cfg);

    /** Result of submitMix (submits on demand). */
    const SimResult &mix(const std::vector<workloads::WorkloadSpec> &all,
                         const workloads::Mix &mix, const SystemConfig &cfg);

    unsigned jobs() const { return jobs_; }
    std::size_t submitted() const;
    std::size_t completed() const;

  private:
    enum class State
    {
        Pending,
        Running,
        Done,
    };

    struct Job
    {
        State state = State::Pending;
        JobFn fn;
        SimResult result;
        std::exception_ptr error;
    };

    void workerLoop();
    /** Run @p job (must be Running); takes and restores @p lock. */
    void execute(Job &job, std::unique_lock<std::mutex> &lock);

    unsigned jobs_;
    mutable std::mutex m_;
    std::condition_variable work_cv_;   ///< workers: queue non-empty / stop
    std::condition_variable done_cv_;   ///< get(): a job completed
    std::map<std::string, Job> map_;    ///< node-stable result storage
    std::deque<std::string> queue_;     ///< submission order
    bool stop_ = false;
    std::size_t completed_ = 0;
    std::vector<std::thread> threads_;
};

/** Process-wide runner shared by the bench binaries. */
Runner &defaultRunner();

} // namespace tlpsim::experiment

#endif // TLPSIM_SIM_RUNNER_HH
