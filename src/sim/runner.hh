/**
 * @file
 * Parallel experiment engine.
 *
 * A figure/table bench is a grid of independent design points
 * (workload × scheme × system knobs); each point is one self-contained
 * simulation. The Runner shards those simulations across a job-based
 * thread pool:
 *
 *   - Jobs are keyed by a config fingerprint; submitting the same design
 *     point twice is a no-op, and results are memoized for the lifetime of
 *     the Runner (this replaces the per-bench static result caches).
 *   - Traces are recorded once through the mutex-guarded cache in
 *     sim/experiment.cc and shared read-only across workers.
 *   - get() blocks until the job completes; if the job is still queued,
 *     the calling thread claims and runs it inline (work stealing), so a
 *     Runner with TLPSIM_JOBS=1 spawns no threads and degenerates to the
 *     old sequential behaviour.
 *   - Results are keyed, not ordered by completion: benches render their
 *     tables by iterating their own loops, so output is bit-identical
 *     regardless of worker count.
 *   - With a StorePolicy, each job first consults the persistent
 *     ResultStore: an ok row is deserialized and served without
 *     simulating; a miss (or a failure/quarantined row) simulates under
 *     an optional wall-clock watchdog and persists the outcome. A point
 *     that exceeds timeout_s gets one bounded retry, then is recorded
 *     as a structured failure and the sweep continues — outcome()
 *     exposes the per-point status without throwing.
 *
 * Worker count comes from TLPSIM_JOBS (default: hardware_concurrency).
 */

#ifndef TLPSIM_SIM_RUNNER_HH
#define TLPSIM_SIM_RUNNER_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <memory>

#include "common/watchdog.hh"
#include "sim/experiment.hh"
#include "sim/simulator.hh"
#include "sim/system_config.hh"
#include "store/result_store.hh"
#include "workloads/workload.hh"

namespace tlpsim::experiment
{

/** TLPSIM_JOBS (worker threads), default hardware_concurrency, min 1. */
unsigned jobsFromEnv();

/** Fingerprint of every SystemConfig field the simulation depends on
 *  (the serialized SystemConfig::effectiveConfig dump, which expands
 *  each deployed component's declared knob defaults). */
std::string configKey(const SystemConfig &cfg);

/** The Runner key of a single-core design point — also the content
 *  address of its persistent store row and the input to the --shard
 *  partition, so every consumer agrees on what "the same point" means. */
std::string singlePointKey(const workloads::WorkloadSpec &w,
                           const SystemConfig &cfg);

/** The Runner key of a multi-core mix design point (cf. singlePointKey). */
std::string mixPointKey(const workloads::Mix &mix, const SystemConfig &cfg);

/** Short human-readable design-point label for progress logging. */
std::string configSummary(const SystemConfig &cfg);

/** Persistence and robustness policy for a Runner's executed jobs.
 *  (Namespace-scope rather than nested so it can brace-default in the
 *  Runner constructor signature.) */
struct StorePolicy
{
    /** Persistent result store; null = in-process memoization only. */
    std::shared_ptr<store::ResultStore> store;
    /** Wall-clock budget per design point in seconds; 0 disables the
     *  watchdog. */
    double timeout_s = 0.0;
    /** Total attempts for a point that times out: the first run plus
     *  bounded retries (default: one retry — a wall-clock timeout is
     *  host noise as often as pathology, but retrying forever would
     *  re-wedge the grid). */
    unsigned timeout_attempts = 2;
};

class Runner
{
  public:
    using JobFn = std::function<SimResult()>;

    /** Status of one completed design point, without exception control
     *  flow: sweeps print failure rows and keep going. */
    struct Outcome
    {
        bool failed = false;
        /** Valid when !failed; points into Runner-owned storage (stable
         *  for the Runner's life). */
        const SimResult *result = nullptr;
        std::string error;        ///< failure description (failed only)
        unsigned attempts = 0;    ///< simulation attempts (0 = stored hit)
        bool from_store = false;  ///< served from the persistent store
    };

    /** One completed point, streamed to the completion observer. The
     *  result pointer is only valid during the callback. */
    struct CompletionRecord
    {
        const std::string &key;
        const std::string &label;
        bool failed;
        bool from_store;
        unsigned attempts;
        const std::string &error;
        const SimResult *result;   ///< null when failed
    };
    using CompletionFn = std::function<void(const CompletionRecord &)>;

    explicit Runner(unsigned jobs = jobsFromEnv(), StorePolicy policy = {});
    ~Runner();

    Runner(const Runner &) = delete;
    Runner &operator=(const Runner &) = delete;

    /** Streaming observer invoked once per completed point (completion
     *  order, any worker thread; calls are serialized by the observer's
     *  own discipline — the CLI's JSONL writer locks internally). Set
     *  before the first submit(). */
    void setOnComplete(CompletionFn fn) { on_complete_ = std::move(fn); }

    /** Queue a keyed job. Returns false (and does nothing) if the key is
     *  already submitted, running, or done. @p label is a short
     *  human-readable point name for diagnostics and streamed output. */
    bool submit(const std::string &key, JobFn fn, std::string label = "");

    /** Block until the job for @p key is done; runs it inline if it is
     *  still queued. The reference stays valid for the Runner's life.
     *  Throws SimTimeoutError for a point recorded as a watchdog
     *  failure; use outcome() to handle failures without unwinding.
     *  Calling with a key that was never submitted is a programming
     *  error and throws std::logic_error naming the key — it can never
     *  block forever or return garbage. */
    const SimResult &get(const std::string &key);

    /** Block like get(), but report watchdog failures as data instead of
     *  throwing (non-timeout simulation errors still rethrow). */
    Outcome outcome(const std::string &key);

    /** submit() + get(). */
    const SimResult &
    run(const std::string &key, JobFn fn)
    {
        submit(key, std::move(fn));
        return get(key);
    }

    // ----- design-point helpers used by the bench binaries --------------

    /** Queue a single-core simulation of @p w under @p cfg. */
    void submitSingle(const workloads::WorkloadSpec &w,
                      const SystemConfig &cfg);

    /** Result of submitSingle (submits on demand). */
    const SimResult &single(const workloads::WorkloadSpec &w,
                            const SystemConfig &cfg);

    /** Queue a multi-core mix simulation (cfg.num_cores cores). */
    void submitMix(const std::vector<workloads::WorkloadSpec> &all,
                   const workloads::Mix &mix, const SystemConfig &cfg);

    /** Result of submitMix (submits on demand). */
    const SimResult &mix(const std::vector<workloads::WorkloadSpec> &all,
                         const workloads::Mix &mix, const SystemConfig &cfg);

    unsigned jobs() const { return jobs_; }
    std::size_t submitted() const;
    std::size_t completed() const;

    // Sweep accounting (for resume/shard reporting and CI assertions):
    /** Points actually simulated in this process (not store-served). */
    std::size_t simulatedCount() const;
    /** Points served from the persistent store without simulating. */
    std::size_t storeHitCount() const;
    /** Points that ended as structured watchdog failures. */
    std::size_t failedCount() const;

    const StorePolicy &policy() const { return policy_; }

    /** Request cooperative cancellation of every simulating job. Safe
     *  from any thread, idempotent, lock-free (the flag is a single
     *  release-store; workers observe it at the Simulator's next
     *  watchdog poll, within 64 Ki simulated cycles). Each cancelled
     *  job unwinds with SimCancelledError, which get()/outcome()
     *  rethrow to the caller — unlike a timeout, a cancelled point is
     *  never retried and never recorded as a failure row. */
    void requestCancel() { cancel_.request(); }

    /** Has requestCancel() been called? */
    bool cancelRequested() const { return cancel_.requested(); }

  private:
    enum class State
    {
        Pending,
        Running,
        Done,
    };

    struct Job
    {
        State state = State::Pending;
        JobFn fn;
        std::string label;
        SimResult result;
        std::exception_ptr error;
        bool failed = false;       ///< structured watchdog failure
        bool from_store = false;
        unsigned attempts = 0;
        std::string fail_error;
    };

    void workerLoop();
    /** Run @p job (must be Running); takes and restores @p lock. */
    void execute(const std::string &key, Job &job,
                 std::unique_lock<std::mutex> &lock);
    /** Wait until @p key's job is Done (work-stealing a Pending job);
     *  rethrows stored non-timeout errors. Returns the job. */
    Job &await(const std::string &key);

    unsigned jobs_;
    StorePolicy policy_;
    CompletionFn on_complete_;
    mutable std::mutex m_;
    std::condition_variable work_cv_;   ///< workers: queue non-empty / stop
    std::condition_variable done_cv_;   ///< get(): a job completed
    std::map<std::string, Job> map_;    ///< node-stable result storage
    std::deque<std::string> queue_;     ///< submission order
    watchdog::CancelFlag cancel_;       ///< lock-free, polled by workers
    bool stop_ = false;
    std::size_t completed_ = 0;
    std::size_t simulated_ = 0;
    std::size_t store_hits_ = 0;
    std::size_t failed_ = 0;
    std::vector<std::thread> threads_;
};

/** Process-wide runner shared by the bench binaries. */
Runner &defaultRunner();

} // namespace tlpsim::experiment

#endif // TLPSIM_SIM_RUNNER_HH
