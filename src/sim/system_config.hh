/**
 * @file
 * System configuration: the Table III baseline (Intel Cascade Lake-like)
 * plus the "scheme" axis — which combination of off-chip prediction and
 * prefetch filtering is deployed.
 *
 * Components are named by registry keys (prefetch/factory.hh), so a
 * design point is pure data: SystemConfig round-trips through the
 * declarative Config tree (fromConfig/toConfig), and every evaluated
 * design point in the paper (baseline, PPF, Hermes, Hermes+PPF, TLP, the
 * Fig. 15 ablations, Fig. 17's storage-boosted variants) is a named
 * SchemeConfig preset (SchemeConfig::fromName) shipped as a config file
 * under configs/.
 */

#ifndef TLPSIM_SIM_SYSTEM_CONFIG_HH
#define TLPSIM_SIM_SYSTEM_CONFIG_HH

#include <string>
#include <vector>

#include "cache/cache.hh"
#include "common/config.hh"
#include "core/core.hh"
#include "mem/dram.hh"
#include "offchip/offchip_predictor.hh"
#include "offchip/slp.hh"
#include "prefetch/factory.hh"
#include "tlb/tlb.hh"

namespace tlpsim
{

/** One evaluated design point (off-chip prediction × prefetch filtering).
 *  Component slots hold registry names; empty means "not deployed". */
struct SchemeConfig
{
    std::string name = "baseline";

    /** Off-chip predictor registry name ("flp", "hermes"; "" = none). */
    std::string offchip;
    OffchipPolicy offchip_policy = OffchipPolicy::None;
    int tau_high = 30;   ///< FLP τ_high / Hermes activation threshold
    int tau_low = 8;     ///< FLP τ_low (predicted-off-chip cut)
    int offchip_training_threshold = 30;
    unsigned offchip_table_scale = 0;   ///< Fig. 17 "+7KB Hermes"

    /** L1D prefetch-filter registry name ("slp"; "" = none). */
    std::string l1_filter;
    bool slp_flp_feature = true;
    int slp_tau_pref = 8;

    /** L2 prefetch-filter registry name ("ppf"; "" = none). */
    std::string l2_filter;

    /**
     * Arbitrary per-component subtrees, forwarded verbatim to the
     * registry builders on top of the named knobs above (subtree keys
     * win). "scheme.offchip.table_scale_shift = 2" tunes the off-chip
     * predictor without SchemeConfig having heard of the key — the
     * point of the registry: new backends bring new knobs without core
     * edits. Relative keys: "offchip.*", "l1_filter.*", "l2_filter.*".
     */
    Config offchip_params;
    Config l1_filter_params;
    Config l2_filter_params;

    bool hasOffchip() const { return !offchip.empty(); }
    bool hasL1Filter() const { return !l1_filter.empty(); }
    bool hasL2Filter() const { return !l2_filter.empty(); }

    bool operator==(const SchemeConfig &) const = default;

    // --- named presets ---------------------------------------------------
    /** Look up a paper scheme by name; throws ConfigError listing names().
     */
    static SchemeConfig fromName(const std::string &name);

    /** Sorted names of every shipped scheme preset. */
    static std::vector<std::string> names();

    // Deprecated preset accessors (shims over fromName).
    static SchemeConfig baseline();
    static SchemeConfig ppfScheme();       ///< PPF over aggressive SPP
    static SchemeConfig hermes();          ///< Hermes (immediate)
    static SchemeConfig hermesPpf();       ///< Hermes + PPF
    static SchemeConfig tlp();             ///< FLP selective + SLP (+feature)
    // Fig. 15 ablation points
    static SchemeConfig flpOnly();         ///< FLP w/o selective delay
    static SchemeConfig slpOnly();         ///< SLP w/o FLP
    static SchemeConfig tsp();             ///< FLP immediate + SLP w/o feature
    static SchemeConfig delayedTsp();      ///< always-delay + SLP w/o feature
    static SchemeConfig selectiveTsp();    ///< selective + SLP w/o feature
    // Fig. 17
    static SchemeConfig hermesPlus7kb();

    /** The four comparison points of Figs. 10-14. */
    static std::vector<SchemeConfig> paperSchemes();

    /** The six Fig. 15 ablation points. */
    static std::vector<SchemeConfig> ablationSchemes();

    // --- declarative config ---------------------------------------------
    /**
     * Apply relative keys ("offchip", "tau_high", ...) over @p defaults;
     * validates registry names, policy consistency, and — for every
     * deployed component that declared a KnobSchema — the forwarded
     * subtree: unknown keys under "offchip.", "l1_filter.", "l2_filter."
     * and wrongly-typed values are collected across all three slots and
     * thrown as one ConfigError naming each offending key and the
     * component's declared knobs. Unknown relative keys ("bogus") are
     * rejected via consumed-key tracking.
     */
    static SchemeConfig fromConfig(const Config &cfg,
                                   const SchemeConfig &defaults);
    static SchemeConfig fromConfig(const Config &cfg);

    /** Relative-key rendering; fromConfig(toConfig()) == *this. */
    Config toConfig() const;

    // --- component builder configs --------------------------------------
    /**
     * The exact Config the registry builder of each deployed slot
     * receives (named knobs the component declares, overlaid with the
     * forwarded subtree), minus the per-cpu stat "name" the Simulator
     * injects. Shared by the Simulator (construction) and
     * SystemConfig::effectiveConfig (fingerprinting), so the fingerprint
     * can never disagree with what is built.
     */
    Config offchipBuildConfig() const;
    Config l1FilterBuildConfig() const;
    Config l2FilterBuildConfig() const;
};

/** Full system configuration. */
struct SystemConfig
{
    unsigned num_cores = 1;
    InstrCount warmup_instrs = 200'000;
    InstrCount sim_instrs = 1'000'000;
    /** Hard cycle cap for the whole run; 0 = automatic hang bound
     *  (~400 cycles per target instruction). A run that hits the cap
     *  reports hit_cycle_cap and per-core *measured* instruction counts
     *  (SimResult::instrs) rather than the nominal sim_instrs. */
    Cycle max_cycles = 0;
    /** Event-driven idle-cycle elision in Simulator::run(): when no
     *  component can change state before the next scheduled event, the
     *  clock jumps straight to it. Bit-identical results either way
     *  (skipped cycles' stall counters are replayed); the knob exists so
     *  tests can diff skip-on vs skip-off. */
    bool idle_skip = true;
    /** Per-core DRAM bandwidth (Table III: 12.8 single, 3.2 multi). */
    double dram_gbps_per_core = 12.8;
    double core_ghz = 3.8;

    /** L1D prefetcher registry name ("" = none). */
    std::string l1_prefetcher = "ipcp";
    unsigned l1_pf_table_scale = 0;     ///< Fig. 17 "+7KB IPCP/Berti"
    /** L2 prefetcher registry name ("" = none). */
    std::string l2_prefetcher = "spp";
    /** Arbitrary prefetcher subtrees ("l1d.prefetcher.*" /
     *  "l2.prefetcher.*"), forwarded to the registry builders. */
    Config l1_pf_params;
    Config l2_pf_params;
    SchemeConfig scheme;

    Core::Params core;
    Cache::Params l1i;
    Cache::Params l1d;
    Cache::Params l2;
    Cache::Params llc;    ///< per-core share; Simulator scales sets
    Tlb::Params dtlb;
    Tlb::Params stlb;
    DramController::Params dram;

    /** Table III defaults. */
    static SystemConfig cascadeLake(unsigned cores = 1);

    /**
     * Build from a declarative Config: defaults are cascadeLake("cores"),
     * the "scheme" key selects a SchemeConfig preset by name, and every
     * other key overrides one field. Unknown keys and invalid values
     * throw ConfigError naming the key and the valid choices.
     */
    static SystemConfig fromConfig(const Config &cfg);

    /** Full dump of every tunable field; fromConfig(toConfig()) == *this
     *  and serialize(toConfig()) is a complete, reparseable config file. */
    Config toConfig() const;

    /**
     * toConfig() with every deployed component's subtree expanded to its
     * full effective knob set: declared schema defaults overlaid with
     * the named knobs and user-set subtree keys (the per-cpu stat "name"
     * excluded). This is the Runner fingerprint (experiment::configKey):
     * it captures effective — not just user-set — knob values, so a
     * changed component default can never silently alias two different
     * design points. Re-parsing an effectiveConfig() dump reproduces the
     * same design point (expansion is idempotent).
     */
    Config effectiveConfig() const;

    /** Builder configs of the prefetcher slots (cf. the SchemeConfig
     *  helpers): named knobs the component declares + forwarded subtree. */
    Config l1PrefetcherBuildConfig() const;
    Config l2PrefetcherBuildConfig() const;

    /** DRAM burst occupancy for the configured bandwidth. */
    unsigned burstCycles() const;

    /** Human-readable Table III rendering (bench/table3_config). */
    std::string description() const;
};

} // namespace tlpsim

#endif // TLPSIM_SIM_SYSTEM_CONFIG_HH
