/**
 * @file
 * System configuration: the Table III baseline (Intel Cascade Lake-like)
 * plus the "scheme" axis — which combination of off-chip prediction and
 * prefetch filtering is deployed. Every evaluated design point in the
 * paper (baseline, PPF, Hermes, Hermes+PPF, TLP, and the Fig. 15
 * ablations) is a SchemeConfig; Fig. 17's storage-boosted designs are
 * table-scale variants.
 */

#ifndef TLPSIM_SIM_SYSTEM_CONFIG_HH
#define TLPSIM_SIM_SYSTEM_CONFIG_HH

#include <string>
#include <vector>

#include "cache/cache.hh"
#include "core/core.hh"
#include "mem/dram.hh"
#include "offchip/offchip_predictor.hh"
#include "offchip/slp.hh"
#include "prefetch/factory.hh"
#include "tlb/tlb.hh"

namespace tlpsim
{

/** One evaluated design point (off-chip prediction × prefetch filtering). */
struct SchemeConfig
{
    std::string name = "baseline";
    OffchipPolicy offchip_policy = OffchipPolicy::None;
    int tau_high = 30;   ///< FLP τ_high / Hermes activation threshold
    int tau_low = 8;     ///< FLP τ_low (predicted-off-chip cut)
    int offchip_training_threshold = 30;
    unsigned offchip_table_scale = 0;   ///< Fig. 17 "+7KB Hermes"
    bool slp = false;
    bool slp_flp_feature = true;
    int slp_tau_pref = 8;
    bool ppf = false;

    bool hasOffchip() const { return offchip_policy != OffchipPolicy::None; }

    // --- The paper's named design points --------------------------------
    static SchemeConfig baseline();
    static SchemeConfig ppfScheme();       ///< PPF over aggressive SPP
    static SchemeConfig hermes();          ///< Hermes (immediate)
    static SchemeConfig hermesPpf();       ///< Hermes + PPF
    static SchemeConfig tlp();             ///< FLP selective + SLP (+feature)
    // Fig. 15 ablation points
    static SchemeConfig flpOnly();         ///< FLP w/o selective delay
    static SchemeConfig slpOnly();         ///< SLP w/o FLP
    static SchemeConfig tsp();             ///< FLP immediate + SLP w/o feature
    static SchemeConfig delayedTsp();      ///< always-delay + SLP w/o feature
    static SchemeConfig selectiveTsp();    ///< selective + SLP w/o feature
    // Fig. 17
    static SchemeConfig hermesPlus7kb();

    /** The four comparison points of Figs. 10-14. */
    static std::vector<SchemeConfig> paperSchemes();

    /** The six Fig. 15 ablation points. */
    static std::vector<SchemeConfig> ablationSchemes();
};

/** Full system configuration. */
struct SystemConfig
{
    unsigned num_cores = 1;
    InstrCount warmup_instrs = 200'000;
    InstrCount sim_instrs = 1'000'000;
    /** Per-core DRAM bandwidth (Table III: 12.8 single, 3.2 multi). */
    double dram_gbps_per_core = 12.8;
    double core_ghz = 3.8;

    L1Prefetcher l1_prefetcher = L1Prefetcher::Ipcp;
    unsigned l1_pf_table_scale = 0;     ///< Fig. 17 "+7KB IPCP/Berti"
    SchemeConfig scheme;

    Core::Params core;
    Cache::Params l1i;
    Cache::Params l1d;
    Cache::Params l2;
    Cache::Params llc;    ///< per-core share; Simulator scales sets
    Tlb::Params dtlb;
    Tlb::Params stlb;
    DramController::Params dram;

    /** Table III defaults. */
    static SystemConfig cascadeLake(unsigned cores = 1);

    /** DRAM burst occupancy for the configured bandwidth. */
    unsigned burstCycles() const;

    /** Human-readable Table III rendering (bench/table3_config). */
    std::string description() const;
};

} // namespace tlpsim

#endif // TLPSIM_SIM_SYSTEM_CONFIG_HH
