#include "sim/experiment.hh"

#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

#include "tracefile/file_source.hh"

namespace tlpsim::experiment
{

namespace
{

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (v == nullptr)
        return fallback;
    char *end = nullptr;
    std::uint64_t parsed = std::strtoull(v, &end, 10);
    return end == v ? fallback : parsed;
}

} // namespace

InstrCount
envInstrs(InstrCount fallback)
{
    return envU64("TLPSIM_INSTRS", fallback);
}

InstrCount
envWarmup(InstrCount fallback)
{
    return envU64("TLPSIM_WARMUP", fallback);
}

int
envMixes(int fallback)
{
    return static_cast<int>(
        envU64("TLPSIM_MIXES", static_cast<std::uint64_t>(fallback)));
}

namespace
{

struct TraceKey
{
    std::string name;
    InstrCount instrs;
    std::uint64_t seed;

    bool
    operator<(const TraceKey &o) const
    {
        if (name != o.name)
            return name < o.name;
        if (instrs != o.instrs)
            return instrs < o.instrs;
        return seed < o.seed;
    }
};

/**
 * One memoized trace. The first thread to request a key records the trace
 * while later requesters block on cv; afterwards the trace is immutable
 * and shared read-only across all simulation workers. If recording throws,
 * the error is propagated to every waiter and the slot is dropped from the
 * cache so a later request can retry (waiters keep the slot alive through
 * their shared_ptr).
 */
struct TraceSlot
{
    std::mutex m;
    std::condition_variable cv;
    bool ready = false;
    Trace trace;
    std::exception_ptr error;
};

std::mutex g_trace_mutex;
std::map<TraceKey, std::shared_ptr<TraceSlot>> g_trace_cache;

} // namespace

const Trace &
cachedTrace(const workloads::WorkloadSpec &spec, InstrCount instrs,
            std::uint64_t seed)
{
    TraceKey key{spec.name, instrs, seed};
    std::shared_ptr<TraceSlot> slot;
    bool builder = false;
    {
        std::lock_guard<std::mutex> lock(g_trace_mutex);
        auto it = g_trace_cache.find(key);
        if (it == g_trace_cache.end()) {
            it = g_trace_cache.emplace(key, std::make_shared<TraceSlot>())
                     .first;
            builder = true;
        }
        slot = it->second;
    }
    if (builder) {
        std::exception_ptr error;
        Trace built;
        try {
            built = workloads::buildTrace(spec, instrs, seed);
        } catch (...) {
            error = std::current_exception();
        }
        if (error) {
            std::lock_guard<std::mutex> cache_lock(g_trace_mutex);
            g_trace_cache.erase(key);
        }
        {
            std::lock_guard<std::mutex> lock(slot->m);
            slot->trace = std::move(built);
            slot->error = error;
            slot->ready = true;
        }
        slot->cv.notify_all();
        if (error)
            std::rethrow_exception(error);
        return slot->trace;
    }
    std::unique_lock<std::mutex> lock(slot->m);
    slot->cv.wait(lock, [&] { return slot->ready; });
    if (slot->error)
        std::rethrow_exception(slot->error);
    return slot->trace;
}

void
clearTraceCache()
{
    // Only safe with no simulations in flight (they hold Trace references).
    std::lock_guard<std::mutex> lock(g_trace_mutex);
    g_trace_cache.clear();
}

std::shared_ptr<TraceSource>
traceSource(const workloads::WorkloadSpec &spec, InstrCount instrs,
            std::uint64_t seed)
{
    if (spec.isFile())
        return std::make_shared<tracefile::FileTraceSource>(spec.trace_path);
    // The cache slot (and the Trace in it) lives for the process, so the
    // source's reference into it cannot dangle.
    return std::make_shared<MemoryTraceSource>(
        cachedTrace(spec, instrs, seed));
}

SimResult
runSingleCore(const workloads::WorkloadSpec &workload, SystemConfig cfg)
{
    cfg.num_cores = 1;
    Simulator sim(cfg, {traceSource(workload,
                                    cfg.warmup_instrs + cfg.sim_instrs)});
    return sim.run();
}

SimResult
runMix(const std::vector<workloads::WorkloadSpec> &workloads,
       const workloads::Mix &mix, SystemConfig cfg)
{
    // The shared LLC, DRAM bandwidth, and queue depths are all sized
    // from num_cores, so a mix that doesn't occupy every core is a
    // config error — surfaced here with the mix named, before any trace
    // is recorded (the Simulator ctor would also catch it, namelessly).
    if (mix.cores() != cfg.num_cores) {
        throw ConfigError(
            "mix '" + mix.name + "' names " + std::to_string(mix.cores())
            + " workload(s) but cores = " + std::to_string(cfg.num_cores)
            + "; a mix needs exactly one workload per core");
    }
    std::vector<std::shared_ptr<TraceSource>> sources;
    for (int idx : mix.workload_index) {
        sources.push_back(traceSource(workloads[static_cast<size_t>(idx)],
                                      cfg.warmup_instrs + cfg.sim_instrs));
    }
    Simulator sim(cfg, std::move(sources));
    return sim.run();
}

namespace
{

/** "prefix.N" keys for a per-core vector, N = 0..size-1. */
template <typename T, typename Setter>
void
putVector(Config &cfg, const std::string &prefix,
          const std::vector<T> &values, Setter set_one)
{
    for (std::size_t i = 0; i < values.size(); ++i)
        set_one(cfg, prefix + "." + std::to_string(i), values[i]);
}

/** Read "prefix.0", "prefix.1", ... until the first absent index. An
 *  empty vector round-trips as no keys at all. */
template <typename Getter>
void
readVector(const Config &cfg, const std::string &prefix, Getter get_one)
{
    for (std::size_t i = 0;; ++i) {
        const std::string key = prefix + "." + std::to_string(i);
        if (!cfg.has(key))
            break;
        get_one(key);
    }
}

} // namespace

Config
simResultToConfig(const SimResult &r)
{
    Config cfg;
    cfg.set("scheme", r.scheme);
    cfg.set("num_cores", r.num_cores);
    cfg.set("sim_instrs", r.sim_instrs);
    cfg.set("hit_cycle_cap", r.hit_cycle_cap);
    putVector(cfg, "instrs", r.instrs,
              [](Config &c, const std::string &k, InstrCount v) {
                  c.set(k, v);
              });
    putVector(cfg, "ipc", r.ipc,
              [](Config &c, const std::string &k, double v) { c.set(k, v); });
    putVector(cfg, "warmup_end_cycle", r.warmup_end_cycle,
              [](Config &c, const std::string &k, Cycle v) { c.set(k, v); });
    putVector(cfg, "window_cycles", r.window_cycles,
              [](Config &c, const std::string &k, Cycle v) { c.set(k, v); });
    for (const auto &[name, value] : r.stats)
        cfg.set("stat." + name, value);
    return cfg;
}

SimResult
simResultFromConfig(const Config &cfg)
{
    SimResult r;
    r.scheme = cfg.getString("scheme");
    r.num_cores = cfg.getUnsigned32("num_cores", 0);
    r.sim_instrs = cfg.getUnsigned("sim_instrs", 0);
    r.hit_cycle_cap = cfg.getBool("hit_cycle_cap", false);
    readVector(cfg, "instrs", [&](const std::string &k) {
        r.instrs.push_back(cfg.getUnsigned(k, 0));
    });
    readVector(cfg, "ipc", [&](const std::string &k) {
        r.ipc.push_back(cfg.getDouble(k, 0.0));
    });
    readVector(cfg, "warmup_end_cycle", [&](const std::string &k) {
        r.warmup_end_cycle.push_back(cfg.getUnsigned(k, 0));
    });
    readVector(cfg, "window_cycles", [&](const std::string &k) {
        r.window_cycles.push_back(cfg.getUnsigned(k, 0));
    });
    const std::string stat_prefix = "stat.";
    for (const std::string &key : cfg.keys()) {
        if (key.compare(0, stat_prefix.size(), stat_prefix) == 0) {
            r.stats.emplace(key.substr(stat_prefix.size()),
                            cfg.getUnsigned(key, 0));
        }
    }
    return r;
}

double
percentDelta(double value, double baseline)
{
    if (baseline == 0.0)
        return 0.0;
    return (value / baseline - 1.0) * 100.0;
}

double
geomeanSpeedupPct(const std::vector<double> &speedup_pcts)
{
    if (speedup_pcts.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double pct : speedup_pcts)
        log_sum += std::log(std::max(1.0 + pct / 100.0, 1e-6));
    return (std::exp(log_sum / static_cast<double>(speedup_pcts.size()))
            - 1.0)
        * 100.0;
}

double
weightedSpeedupPct(const SimResult &scheme_result,
                   const SimResult &baseline_result,
                   const std::vector<double> &ipc_single)
{
    if (scheme_result.ipc.size() != baseline_result.ipc.size()
        || baseline_result.ipc.size() != ipc_single.size()) {
        throw ConfigError(
            "weighted speedup: slot count mismatch — scheme result has "
            + std::to_string(scheme_result.ipc.size())
            + " core(s), baseline result "
            + std::to_string(baseline_result.ipc.size())
            + ", ipc_single " + std::to_string(ipc_single.size())
            + "; all three must describe the same mix");
    }
    double scheme_ws = 0.0;
    double base_ws = 0.0;
    for (std::size_t c = 0; c < ipc_single.size(); ++c) {
        if (ipc_single[c] <= 0.0)
            continue;
        scheme_ws += scheme_result.ipc[c] / ipc_single[c];
        base_ws += baseline_result.ipc[c] / ipc_single[c];
    }
    return percentDelta(scheme_ws, base_ws);
}

TablePrinter::TablePrinter(std::vector<std::string> columns,
                           unsigned col_width)
    : columns_(std::move(columns)), col_width_(col_width)
{
}

void
TablePrinter::printHeader(const std::string &title) const
{
    std::printf("\n=== %s ===\n", title.c_str());
    for (const auto &c : columns_)
        std::printf("%-*s", col_width_, c.c_str());
    std::printf("\n");
    printSeparator();
}

void
TablePrinter::printRow(const std::vector<std::string> &cells) const
{
    for (const auto &c : cells)
        std::printf("%-*s", col_width_, c.c_str());
    std::printf("\n");
}

void
TablePrinter::printSeparator() const
{
    for (std::size_t i = 0; i < columns_.size() * col_width_; ++i)
        std::printf("-");
    std::printf("\n");
}

std::string
TablePrinter::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TablePrinter::fmtPct(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%+.*f%%", precision, v);
    return buf;
}

} // namespace tlpsim::experiment
