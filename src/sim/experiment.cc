#include "sim/experiment.hh"

#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

namespace tlpsim::experiment
{

namespace
{

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (v == nullptr)
        return fallback;
    char *end = nullptr;
    std::uint64_t parsed = std::strtoull(v, &end, 10);
    return end == v ? fallback : parsed;
}

} // namespace

InstrCount
envInstrs(InstrCount fallback)
{
    return envU64("TLPSIM_INSTRS", fallback);
}

InstrCount
envWarmup(InstrCount fallback)
{
    return envU64("TLPSIM_WARMUP", fallback);
}

int
envMixes(int fallback)
{
    return static_cast<int>(
        envU64("TLPSIM_MIXES", static_cast<std::uint64_t>(fallback)));
}

namespace
{

struct TraceKey
{
    std::string name;
    InstrCount instrs;
    std::uint64_t seed;

    bool
    operator<(const TraceKey &o) const
    {
        if (name != o.name)
            return name < o.name;
        if (instrs != o.instrs)
            return instrs < o.instrs;
        return seed < o.seed;
    }
};

/**
 * One memoized trace. The first thread to request a key records the trace
 * while later requesters block on cv; afterwards the trace is immutable
 * and shared read-only across all simulation workers. If recording throws,
 * the error is propagated to every waiter and the slot is dropped from the
 * cache so a later request can retry (waiters keep the slot alive through
 * their shared_ptr).
 */
struct TraceSlot
{
    std::mutex m;
    std::condition_variable cv;
    bool ready = false;
    Trace trace;
    std::exception_ptr error;
};

std::mutex g_trace_mutex;
std::map<TraceKey, std::shared_ptr<TraceSlot>> g_trace_cache;

} // namespace

const Trace &
cachedTrace(const workloads::WorkloadSpec &spec, InstrCount instrs,
            std::uint64_t seed)
{
    TraceKey key{spec.name, instrs, seed};
    std::shared_ptr<TraceSlot> slot;
    bool builder = false;
    {
        std::lock_guard<std::mutex> lock(g_trace_mutex);
        auto it = g_trace_cache.find(key);
        if (it == g_trace_cache.end()) {
            it = g_trace_cache.emplace(key, std::make_shared<TraceSlot>())
                     .first;
            builder = true;
        }
        slot = it->second;
    }
    if (builder) {
        std::exception_ptr error;
        Trace built;
        try {
            built = workloads::buildTrace(spec, instrs, seed);
        } catch (...) {
            error = std::current_exception();
        }
        if (error) {
            std::lock_guard<std::mutex> cache_lock(g_trace_mutex);
            g_trace_cache.erase(key);
        }
        {
            std::lock_guard<std::mutex> lock(slot->m);
            slot->trace = std::move(built);
            slot->error = error;
            slot->ready = true;
        }
        slot->cv.notify_all();
        if (error)
            std::rethrow_exception(error);
        return slot->trace;
    }
    std::unique_lock<std::mutex> lock(slot->m);
    slot->cv.wait(lock, [&] { return slot->ready; });
    if (slot->error)
        std::rethrow_exception(slot->error);
    return slot->trace;
}

void
clearTraceCache()
{
    // Only safe with no simulations in flight (they hold Trace references).
    std::lock_guard<std::mutex> lock(g_trace_mutex);
    g_trace_cache.clear();
}

SimResult
runSingleCore(const workloads::WorkloadSpec &workload, SystemConfig cfg)
{
    cfg.num_cores = 1;
    const Trace &trace
        = cachedTrace(workload, cfg.warmup_instrs + cfg.sim_instrs);
    Simulator sim(cfg, {&trace});
    return sim.run();
}

SimResult
runMix(const std::vector<workloads::WorkloadSpec> &workloads,
       const workloads::Mix &mix, SystemConfig cfg)
{
    // The shared LLC, DRAM bandwidth, and queue depths are all sized
    // from num_cores, so a mix that doesn't occupy every core is a
    // config error — surfaced here with the mix named, before any trace
    // is recorded (the Simulator ctor would also catch it, namelessly).
    if (mix.cores() != cfg.num_cores) {
        throw ConfigError(
            "mix '" + mix.name + "' names " + std::to_string(mix.cores())
            + " workload(s) but cores = " + std::to_string(cfg.num_cores)
            + "; a mix needs exactly one workload per core");
    }
    std::vector<const Trace *> traces;
    for (int idx : mix.workload_index) {
        traces.push_back(&cachedTrace(workloads[static_cast<size_t>(idx)],
                                      cfg.warmup_instrs + cfg.sim_instrs));
    }
    Simulator sim(cfg, traces);
    return sim.run();
}

double
percentDelta(double value, double baseline)
{
    if (baseline == 0.0)
        return 0.0;
    return (value / baseline - 1.0) * 100.0;
}

double
geomeanSpeedupPct(const std::vector<double> &speedup_pcts)
{
    if (speedup_pcts.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double pct : speedup_pcts)
        log_sum += std::log(std::max(1.0 + pct / 100.0, 1e-6));
    return (std::exp(log_sum / static_cast<double>(speedup_pcts.size()))
            - 1.0)
        * 100.0;
}

double
weightedSpeedupPct(const SimResult &scheme_result,
                   const SimResult &baseline_result,
                   const std::vector<double> &ipc_single)
{
    if (scheme_result.ipc.size() != baseline_result.ipc.size()
        || baseline_result.ipc.size() != ipc_single.size()) {
        throw ConfigError(
            "weighted speedup: slot count mismatch — scheme result has "
            + std::to_string(scheme_result.ipc.size())
            + " core(s), baseline result "
            + std::to_string(baseline_result.ipc.size())
            + ", ipc_single " + std::to_string(ipc_single.size())
            + "; all three must describe the same mix");
    }
    double scheme_ws = 0.0;
    double base_ws = 0.0;
    for (std::size_t c = 0; c < ipc_single.size(); ++c) {
        if (ipc_single[c] <= 0.0)
            continue;
        scheme_ws += scheme_result.ipc[c] / ipc_single[c];
        base_ws += baseline_result.ipc[c] / ipc_single[c];
    }
    return percentDelta(scheme_ws, base_ws);
}

TablePrinter::TablePrinter(std::vector<std::string> columns,
                           unsigned col_width)
    : columns_(std::move(columns)), col_width_(col_width)
{
}

void
TablePrinter::printHeader(const std::string &title) const
{
    std::printf("\n=== %s ===\n", title.c_str());
    for (const auto &c : columns_)
        std::printf("%-*s", col_width_, c.c_str());
    std::printf("\n");
    printSeparator();
}

void
TablePrinter::printRow(const std::vector<std::string> &cells) const
{
    for (const auto &c : cells)
        std::printf("%-*s", col_width_, c.c_str());
    std::printf("\n");
}

void
TablePrinter::printSeparator() const
{
    for (std::size_t i = 0; i < columns_.size() * col_width_; ++i)
        std::printf("-");
    std::printf("\n");
}

std::string
TablePrinter::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TablePrinter::fmtPct(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%+.*f%%", precision, v);
    return buf;
}

} // namespace tlpsim::experiment
