#include "sim/system_config.hh"

#include <cmath>
#include <cstdio>

namespace tlpsim
{

SchemeConfig
SchemeConfig::baseline()
{
    return {};
}

SchemeConfig
SchemeConfig::ppfScheme()
{
    SchemeConfig s;
    s.name = "ppf";
    s.ppf = true;
    return s;
}

SchemeConfig
SchemeConfig::hermes()
{
    SchemeConfig s;
    s.name = "hermes";
    s.offchip_policy = OffchipPolicy::Immediate;
    s.tau_high = 4;   // Hermes' single activation threshold (aggressive)
    return s;
}

SchemeConfig
SchemeConfig::hermesPpf()
{
    SchemeConfig s = hermes();
    s.name = "hermes+ppf";
    s.ppf = true;
    return s;
}

SchemeConfig
SchemeConfig::tlp()
{
    SchemeConfig s;
    s.name = "tlp";
    s.offchip_policy = OffchipPolicy::Selective;
    s.slp = true;
    s.slp_flp_feature = true;
    return s;
}

SchemeConfig
SchemeConfig::flpOnly()
{
    SchemeConfig s;
    s.name = "flp";
    s.offchip_policy = OffchipPolicy::Immediate;
    s.tau_high = 4;   // without the delay mechanism FLP fires like Hermes
    return s;
}

SchemeConfig
SchemeConfig::slpOnly()
{
    SchemeConfig s;
    s.name = "slp";
    s.slp = true;
    s.slp_flp_feature = false;   // no FLP exists to supply the feature
    return s;
}

SchemeConfig
SchemeConfig::tsp()
{
    SchemeConfig s;
    s.name = "tsp";
    s.offchip_policy = OffchipPolicy::Immediate;
    s.tau_high = 4;
    s.slp = true;
    s.slp_flp_feature = false;
    return s;
}

SchemeConfig
SchemeConfig::delayedTsp()
{
    SchemeConfig s;
    s.name = "delayed_tsp";
    s.offchip_policy = OffchipPolicy::AlwaysDelay;
    s.slp = true;
    s.slp_flp_feature = false;
    return s;
}

SchemeConfig
SchemeConfig::selectiveTsp()
{
    SchemeConfig s;
    s.name = "selective_tsp";
    s.offchip_policy = OffchipPolicy::Selective;
    s.slp = true;
    s.slp_flp_feature = false;
    return s;
}

SchemeConfig
SchemeConfig::hermesPlus7kb()
{
    SchemeConfig s = hermes();
    s.name = "hermes+7kb";
    s.offchip_table_scale = 2;   // 4x tables ≈ +7.7 KB
    return s;
}

std::vector<SchemeConfig>
SchemeConfig::paperSchemes()
{
    return {ppfScheme(), hermes(), hermesPpf(), tlp()};
}

std::vector<SchemeConfig>
SchemeConfig::ablationSchemes()
{
    return {flpOnly(), slpOnly(), tsp(), delayedTsp(), selectiveTsp(), tlp()};
}

SystemConfig
SystemConfig::cascadeLake(unsigned cores)
{
    SystemConfig c;
    c.num_cores = cores;
    c.dram_gbps_per_core = cores == 1 ? 12.8 : 3.2;

    c.core.rob_size = 224;
    c.core.fetch_width = 4;
    c.core.retire_width = 4;
    c.core.lq_size = 72;
    c.core.sq_size = 56;
    c.core.mispredict_penalty = 6;
    c.core.spec_latency = 6;

    c.l1i.level = MemLevel::L1D;    // stats-only; L1I has no prefetcher
    c.l1i.level_num = 1;
    c.l1i.sets = 64;
    c.l1i.ways = 8;
    c.l1i.latency = 4;
    c.l1i.mshrs = 10;
    c.l1i.rq_size = 16;
    c.l1i.wq_size = 4;
    c.l1i.pq_size = 4;

    c.l1d.level = MemLevel::L1D;
    c.l1d.level_num = 1;
    c.l1d.sets = 64;        // 32 KB, 8-way
    c.l1d.ways = 8;
    c.l1d.latency = 4;
    c.l1d.mshrs = 10;
    c.l1d.rq_size = 32;
    c.l1d.wq_size = 32;
    c.l1d.pq_size = 16;

    c.l2.level = MemLevel::L2C;
    c.l2.level_num = 2;
    c.l2.sets = 1024;       // 1 MB, 16-way
    c.l2.ways = 16;
    c.l2.latency = 10;
    c.l2.mshrs = 16;
    c.l2.rq_size = 32;
    c.l2.wq_size = 32;
    c.l2.pq_size = 32;

    c.llc.level = MemLevel::LLC;
    c.llc.level_num = 3;
    c.llc.sets = 2048;      // 1.375 MB, 11-way (per core; scaled by cores)
    c.llc.ways = 11;
    c.llc.latency = 40;     // Table III: 36/56 cycles
    c.llc.mshrs = 64;
    c.llc.rq_size = 64;
    c.llc.wq_size = 64;
    c.llc.pq_size = 64;

    c.dtlb.name = "dtlb";
    c.dtlb.entries = 64;
    c.dtlb.ways = 4;
    c.dtlb.latency = 1;

    c.stlb.name = "stlb";
    c.stlb.entries = 1536;
    c.stlb.ways = 12;
    c.stlb.latency = 8;

    c.dram.banks = 8;
    c.dram.blocks_per_row = 128;
    c.dram.t_rp = c.dram.t_rcd = c.dram.t_cas = 24;
    c.dram.rq_size = 64;
    c.dram.wq_size = 64;
    c.dram.spec_buffer_entries = 64;
    return c;
}

unsigned
SystemConfig::burstCycles() const
{
    double total_gbps = dram_gbps_per_core * num_cores;
    double ns_per_line = 64.0 / total_gbps;
    auto cycles = static_cast<unsigned>(std::lround(ns_per_line * core_ghz));
    return cycles == 0 ? 1 : cycles;
}

std::string
SystemConfig::description() const
{
    char buf[512];
    std::string out;
    out += "System configuration (Table III)\n";
    std::snprintf(buf, sizeof(buf),
                  "  CPU        : %u core(s), %.1f GHz, 4-wide OoO, "
                  "%u-entry ROB, 6-cycle mispredict refill\n",
                  num_cores, core_ghz, core.rob_size);
    out += buf;
    out += "  Branch pred: hashed-perceptron\n";
    std::snprintf(buf, sizeof(buf),
                  "  L1 DTLB    : %u-entry, %u-way, %ucc\n", dtlb.entries,
                  dtlb.ways, dtlb.latency);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "  L2 TLB     : %u-entry, %u-way, %ucc\n", stlb.entries,
                  stlb.ways, stlb.latency);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "  L1I        : %u KB, %u-way, %ucc, %u MSHRs\n",
                  l1i.sets * l1i.ways * 64 / 1024, l1i.ways, l1i.latency,
                  l1i.mshrs);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "  L1D        : %u KB, %u-way, %ucc, %u MSHRs, "
                  "prefetcher=%s\n",
                  l1d.sets * l1d.ways * 64 / 1024, l1d.ways, l1d.latency,
                  l1d.mshrs, toString(l1_prefetcher));
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "  L2C        : %u KB, %u-way, %ucc, %u MSHRs, "
                  "prefetcher=spp\n",
                  l2.sets * l2.ways * 64 / 1024, l2.ways, l2.latency,
                  l2.mshrs);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "  LLC        : %.3f MB/core, %u-way, %ucc, %u MSHRs\n",
                  llc.sets * llc.ways * 64.0 / (1024.0 * 1024.0), llc.ways,
                  llc.latency, llc.mshrs);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "  DRAM       : %.1f GB/s per core, tRP=tRCD=tCAS=%u, "
                  "%u banks, burst=%u cycles\n",
                  dram_gbps_per_core, dram.t_rp, dram.banks, burstCycles());
    out += buf;
    std::snprintf(buf, sizeof(buf), "  Scheme     : %s\n",
                  scheme.name.c_str());
    out += buf;
    return out;
}

} // namespace tlpsim
