#include "sim/system_config.hh"

#include <cmath>
#include <cstdio>
#include <map>

namespace tlpsim
{

// ---------------------------------------------------------------- schemes

namespace
{

SchemeConfig
makeBaseline()
{
    return {};
}

SchemeConfig
makePpf()
{
    SchemeConfig s;
    s.name = "ppf";
    s.l2_filter = "ppf";
    return s;
}

SchemeConfig
makeHermes()
{
    SchemeConfig s;
    s.name = "hermes";
    s.offchip = "hermes";
    s.offchip_policy = OffchipPolicy::Immediate;
    s.tau_high = 4;   // Hermes' single activation threshold (aggressive)
    return s;
}

SchemeConfig
makeHermesPpf()
{
    SchemeConfig s = makeHermes();
    s.name = "hermes+ppf";
    s.l2_filter = "ppf";
    return s;
}

SchemeConfig
makeTlp()
{
    SchemeConfig s;
    s.name = "tlp";
    s.offchip = "flp";
    s.offchip_policy = OffchipPolicy::Selective;
    s.l1_filter = "slp";
    s.slp_flp_feature = true;
    return s;
}

SchemeConfig
makeFlpOnly()
{
    SchemeConfig s;
    s.name = "flp";
    s.offchip = "flp";
    s.offchip_policy = OffchipPolicy::Immediate;
    s.tau_high = 4;   // without the delay mechanism FLP fires like Hermes
    return s;
}

SchemeConfig
makeSlpOnly()
{
    SchemeConfig s;
    s.name = "slp";
    s.l1_filter = "slp";
    s.slp_flp_feature = false;   // no FLP exists to supply the feature
    return s;
}

SchemeConfig
makeTsp()
{
    SchemeConfig s;
    s.name = "tsp";
    s.offchip = "flp";
    s.offchip_policy = OffchipPolicy::Immediate;
    s.tau_high = 4;
    s.l1_filter = "slp";
    s.slp_flp_feature = false;
    return s;
}

SchemeConfig
makeDelayedTsp()
{
    SchemeConfig s;
    s.name = "delayed_tsp";
    s.offchip = "flp";
    s.offchip_policy = OffchipPolicy::AlwaysDelay;
    s.l1_filter = "slp";
    s.slp_flp_feature = false;
    return s;
}

SchemeConfig
makeSelectiveTsp()
{
    SchemeConfig s;
    s.name = "selective_tsp";
    s.offchip = "flp";
    s.offchip_policy = OffchipPolicy::Selective;
    s.l1_filter = "slp";
    s.slp_flp_feature = false;
    return s;
}

SchemeConfig
makeHermesPlus7kb()
{
    SchemeConfig s = makeHermes();
    s.name = "hermes+7kb";
    s.offchip_table_scale = 2;   // 4x tables ≈ +7.7 KB
    return s;
}

/** Every named design point of the paper, keyed by scheme name. */
const std::map<std::string, SchemeConfig (*)()> &
presetTable()
{
    static const std::map<std::string, SchemeConfig (*)()> table = {
        {"baseline", makeBaseline},
        {"ppf", makePpf},
        {"hermes", makeHermes},
        {"hermes+ppf", makeHermesPpf},
        {"tlp", makeTlp},
        {"flp", makeFlpOnly},
        {"slp", makeSlpOnly},
        {"tsp", makeTsp},
        {"delayed_tsp", makeDelayedTsp},
        {"selective_tsp", makeSelectiveTsp},
        {"hermes+7kb", makeHermesPlus7kb},
    };
    return table;
}

/** Config files accept "none"/"no" for an empty component slot. */
std::string
normalizeComponentName(std::string name)
{
    return name == "none" || name == "no" ? std::string{} : name;
}

/** Render an empty component slot as "none" in config dumps. */
const std::string &
renderComponentName(const std::string &name)
{
    static const std::string none = "none";
    return name.empty() ? none : name;
}

/** set(key, value) on @p out only when the schema is absent (component
 *  without declared knobs) or declares @p key — the named paper knobs
 *  (tau_high, table_scale_shift, ...) are injected only into components
 *  that consume them. */
struct KnobInjector
{
    Config &out;
    const KnobSchema *schema;

    template <typename V>
    void
    operator()(const char *key, V &&value) const
    {
        if (schema == nullptr || schema->contains(key))
            out.set(key, std::forward<V>(value));
    }
};

/**
 * Knob-schema check of one forwarded component subtree: every key of
 * @p params must be a knob @p component declared (with a well-typed
 * value). Returns one error string per offence, keys prefixed with
 * @p prefix ("scheme.offchip."). Slots without a component, and
 * components registered without a schema, have nothing to check.
 */
template <typename Reg>
std::vector<std::string>
subtreeKnobErrors(const Reg &reg, const std::string &component,
                  const Config &params, const std::string &prefix)
{
    if (component.empty() || params.empty())
        return {};
    const KnobSchema *ks = reg.knobs(component);
    if (ks == nullptr)
        return {};
    return ks->check(params, reg.kind() + " '" + component + "'", prefix);
}

} // namespace

SchemeConfig
SchemeConfig::fromName(const std::string &name)
{
    const auto &table = presetTable();
    auto it = table.find(name);
    if (it == table.end()) {
        throw ConfigError("unknown scheme '" + name
                          + "'; valid names: " + joinNames(names()));
    }
    return it->second();
}

std::vector<std::string>
SchemeConfig::names()
{
    std::vector<std::string> out;
    for (const auto &[n, fn] : presetTable())
        out.push_back(n);
    return out;
}

SchemeConfig SchemeConfig::baseline() { return fromName("baseline"); }
SchemeConfig SchemeConfig::ppfScheme() { return fromName("ppf"); }
SchemeConfig SchemeConfig::hermes() { return fromName("hermes"); }
SchemeConfig SchemeConfig::hermesPpf() { return fromName("hermes+ppf"); }
SchemeConfig SchemeConfig::tlp() { return fromName("tlp"); }
SchemeConfig SchemeConfig::flpOnly() { return fromName("flp"); }
SchemeConfig SchemeConfig::slpOnly() { return fromName("slp"); }
SchemeConfig SchemeConfig::tsp() { return fromName("tsp"); }
SchemeConfig SchemeConfig::delayedTsp() { return fromName("delayed_tsp"); }
SchemeConfig SchemeConfig::selectiveTsp()
{
    return fromName("selective_tsp");
}
SchemeConfig SchemeConfig::hermesPlus7kb() { return fromName("hermes+7kb"); }

std::vector<SchemeConfig>
SchemeConfig::paperSchemes()
{
    return {ppfScheme(), hermes(), hermesPpf(), tlp()};
}

std::vector<SchemeConfig>
SchemeConfig::ablationSchemes()
{
    return {flpOnly(), slpOnly(), tsp(), delayedTsp(), selectiveTsp(), tlp()};
}

SchemeConfig
SchemeConfig::fromConfig(const Config &cfg)
{
    return fromConfig(cfg, SchemeConfig{});
}

SchemeConfig
SchemeConfig::fromConfig(const Config &cfg, const SchemeConfig &defaults)
{
    SchemeConfig s = defaults;
    s.name = cfg.getString("name", s.name);
    s.offchip = normalizeComponentName(cfg.getString("offchip", s.offchip));
    if (cfg.has("offchip_policy")) {
        s.offchip_policy
            = offchipPolicyFromString(cfg.getString("offchip_policy"));
    }
    s.tau_high = cfg.getInt32("tau_high", s.tau_high);
    s.tau_low = cfg.getInt32("tau_low", s.tau_low);
    s.offchip_training_threshold
        = cfg.getInt32("offchip_training_threshold",
                                      s.offchip_training_threshold);
    s.offchip_table_scale = cfg.getUnsigned32("offchip_table_scale", s.offchip_table_scale);
    s.l1_filter
        = normalizeComponentName(cfg.getString("l1_filter", s.l1_filter));
    s.slp_flp_feature = cfg.getBool("slp_flp_feature", s.slp_flp_feature);
    s.slp_tau_pref
        = cfg.getInt32("slp_tau_pref", s.slp_tau_pref);
    s.l2_filter
        = normalizeComponentName(cfg.getString("l2_filter", s.l2_filter));

    // Arbitrary per-component subtrees overlay the defaults' subtrees;
    // the keys are component-defined and validated (or defaulted) by the
    // registry builder that receives them, not here.
    s.offchip_params.merge(cfg.sub("offchip"));
    s.l1_filter_params.merge(cfg.sub("l1_filter"));
    s.l2_filter_params.merge(cfg.sub("l2_filter"));

    if (s.hasOffchip() && !offchipRegistry().contains(s.offchip)) {
        throw ConfigError("scheme.offchip: unknown off-chip predictor '"
                          + s.offchip + "'; valid names: "
                          + offchipRegistry().namesLine());
    }
    for (const std::string &f : {s.l1_filter, s.l2_filter}) {
        if (!f.empty() && !filterRegistry().contains(f)) {
            throw ConfigError("scheme filter: unknown prefetch filter '" + f
                              + "'; valid names: "
                              + filterRegistry().namesLine());
        }
    }
    if (s.hasOffchip() && s.offchip_policy == OffchipPolicy::None) {
        throw ConfigError("scheme.offchip = '" + s.offchip
                          + "' requires scheme.offchip_policy to be "
                            "immediate, always_delay, or selective");
    }
    if (!s.hasOffchip() && s.offchip_policy != OffchipPolicy::None) {
        throw ConfigError(std::string{"scheme.offchip_policy = '"}
                          + toString(s.offchip_policy)
                          + "' requires scheme.offchip to name a predictor "
                            "(valid names: "
                          + offchipRegistry().namesLine() + ")");
    }

    // Unknown relative keys ("scheme.bogus") — everything understood was
    // consumed by a getter above or forwarded by a sub() — and the
    // misspelled-tuning-key net: every forwarded subtree key must be a
    // knob its component declared, every offender reported at once.
    std::vector<std::string> errors;
    if (std::vector<std::string> stray = cfg.unconsumedKeys();
        !stray.empty()) {
        std::vector<std::string> valid;
        for (const std::string &k : SchemeConfig{}.toConfig().keys())
            valid.push_back("scheme." + k);
        for (const std::string &key : stray) {
            errors.push_back(
                "unknown config key 'scheme." + key + "'; valid scheme "
                "keys: " + joinNames(valid)
                + " (and the scheme.offchip.*, scheme.l1_filter.*, "
                  "scheme.l2_filter.* component subtrees)");
        }
    }
    for (std::vector<std::string> slot_errors :
         {subtreeKnobErrors(offchipRegistry(), s.offchip, s.offchip_params,
                            "scheme.offchip."),
          subtreeKnobErrors(filterRegistry(), s.l1_filter,
                            s.l1_filter_params, "scheme.l1_filter."),
          subtreeKnobErrors(filterRegistry(), s.l2_filter,
                            s.l2_filter_params, "scheme.l2_filter.")}) {
        errors.insert(errors.end(), slot_errors.begin(), slot_errors.end());
    }
    if (!errors.empty())
        throwConfigErrors(errors);
    return s;
}

Config
SchemeConfig::toConfig() const
{
    Config c;
    c.set("name", name);
    c.set("offchip", renderComponentName(offchip));
    c.set("offchip_policy", toString(offchip_policy));
    c.set("tau_high", tau_high);
    c.set("tau_low", tau_low);
    c.set("offchip_training_threshold", offchip_training_threshold);
    c.set("offchip_table_scale", offchip_table_scale);
    c.set("l1_filter", renderComponentName(l1_filter));
    c.set("slp_flp_feature", slp_flp_feature);
    c.set("slp_tau_pref", slp_tau_pref);
    c.set("l2_filter", renderComponentName(l2_filter));
    for (const std::string &k : offchip_params.keys())
        c.set("offchip." + k, offchip_params.getString(k));
    for (const std::string &k : l1_filter_params.keys())
        c.set("l1_filter." + k, l1_filter_params.getString(k));
    for (const std::string &k : l2_filter_params.keys())
        c.set("l2_filter." + k, l2_filter_params.getString(k));
    return c;
}

Config
SchemeConfig::offchipBuildConfig() const
{
    Config oc;
    if (!hasOffchip())
        return oc;
    KnobInjector inject{oc, offchipRegistry().knobs(offchip)};
    inject("policy", toString(offchip_policy));
    inject("tau_high", tau_high);
    inject("tau_low", tau_low);
    inject("training_threshold", offchip_training_threshold);
    inject("table_scale_shift", offchip_table_scale);
    oc.merge(offchip_params);
    return oc;
}

Config
SchemeConfig::l1FilterBuildConfig() const
{
    Config fc;
    if (!hasL1Filter())
        return fc;
    KnobInjector inject{fc, filterRegistry().knobs(l1_filter)};
    inject("tau_pref", slp_tau_pref);
    inject("use_flp_feature", slp_flp_feature);
    fc.merge(l1_filter_params);
    return fc;
}

Config
SchemeConfig::l2FilterBuildConfig() const
{
    Config fc;
    if (!hasL2Filter())
        return fc;
    fc.merge(l2_filter_params);
    return fc;
}

// ----------------------------------------------------------- SystemConfig

SystemConfig
SystemConfig::cascadeLake(unsigned cores)
{
    SystemConfig c;
    c.num_cores = cores;
    c.dram_gbps_per_core = cores == 1 ? 12.8 : 3.2;

    c.core.rob_size = 224;
    c.core.fetch_width = 4;
    c.core.retire_width = 4;
    c.core.lq_size = 72;
    c.core.sq_size = 56;
    c.core.mispredict_penalty = 6;
    c.core.spec_latency = 6;

    c.l1i.level = MemLevel::L1D;    // stats-only; L1I has no prefetcher
    c.l1i.level_num = 1;
    c.l1i.sets = 64;
    c.l1i.ways = 8;
    c.l1i.latency = 4;
    c.l1i.mshrs = 10;
    c.l1i.rq_size = 16;
    c.l1i.wq_size = 4;
    c.l1i.pq_size = 4;

    c.l1d.level = MemLevel::L1D;
    c.l1d.level_num = 1;
    c.l1d.sets = 64;        // 32 KB, 8-way
    c.l1d.ways = 8;
    c.l1d.latency = 4;
    c.l1d.mshrs = 10;
    c.l1d.rq_size = 32;
    c.l1d.wq_size = 32;
    c.l1d.pq_size = 16;

    c.l2.level = MemLevel::L2C;
    c.l2.level_num = 2;
    c.l2.sets = 1024;       // 1 MB, 16-way
    c.l2.ways = 16;
    c.l2.latency = 10;
    c.l2.mshrs = 16;
    c.l2.rq_size = 32;
    c.l2.wq_size = 32;
    c.l2.pq_size = 32;

    c.llc.level = MemLevel::LLC;
    c.llc.level_num = 3;
    c.llc.sets = 2048;      // 1.375 MB, 11-way (per core; scaled by cores)
    c.llc.ways = 11;
    c.llc.latency = 40;     // Table III: 36/56 cycles
    c.llc.mshrs = 64;
    c.llc.rq_size = 64;
    c.llc.wq_size = 64;
    c.llc.pq_size = 64;

    c.dtlb.name = "dtlb";
    c.dtlb.entries = 64;
    c.dtlb.ways = 4;
    c.dtlb.latency = 1;

    c.stlb.name = "stlb";
    c.stlb.entries = 1536;
    c.stlb.ways = 12;
    c.stlb.latency = 8;

    c.dram.banks = 8;
    c.dram.blocks_per_row = 128;
    c.dram.t_rp = c.dram.t_rcd = c.dram.t_cas = 24;
    c.dram.rq_size = 64;
    c.dram.wq_size = 64;
    c.dram.spec_buffer_entries = 64;
    return c;
}

namespace
{

unsigned
getU32(const Config &cfg, const std::string &key, unsigned def)
{
    return cfg.getUnsigned32(key, def);
}

void
cacheToConfig(Config &c, const std::string &p, const Cache::Params &cp)
{
    c.set(p + ".sets", cp.sets);
    c.set(p + ".ways", cp.ways);
    c.set(p + ".latency", cp.latency);
    c.set(p + ".mshrs", cp.mshrs);
    c.set(p + ".rq_size", cp.rq_size);
    c.set(p + ".wq_size", cp.wq_size);
    c.set(p + ".pq_size", cp.pq_size);
    c.set(p + ".lookups_per_cycle", cp.lookups_per_cycle);
}

void
cacheFromConfig(const Config &c, const std::string &p, Cache::Params &cp)
{
    cp.sets = getU32(c, p + ".sets", cp.sets);
    cp.ways = getU32(c, p + ".ways", cp.ways);
    cp.latency = getU32(c, p + ".latency", cp.latency);
    cp.mshrs = getU32(c, p + ".mshrs", cp.mshrs);
    cp.rq_size = getU32(c, p + ".rq_size", cp.rq_size);
    cp.wq_size = getU32(c, p + ".wq_size", cp.wq_size);
    cp.pq_size = getU32(c, p + ".pq_size", cp.pq_size);
    cp.lookups_per_cycle
        = getU32(c, p + ".lookups_per_cycle", cp.lookups_per_cycle);
}

void
tlbToConfig(Config &c, const std::string &p, const Tlb::Params &tp)
{
    c.set(p + ".entries", tp.entries);
    c.set(p + ".ways", tp.ways);
    c.set(p + ".latency", tp.latency);
}

void
tlbFromConfig(const Config &c, const std::string &p, Tlb::Params &tp)
{
    tp.entries = getU32(c, p + ".entries", tp.entries);
    tp.ways = getU32(c, p + ".ways", tp.ways);
    tp.latency = getU32(c, p + ".latency", tp.latency);
}

} // namespace

SystemConfig
SystemConfig::fromConfig(const Config &cfg)
{
    unsigned cores = getU32(cfg, "cores", 1);
    if (cores == 0) {
        throw ConfigError("cores = 0: a system needs at least one core "
                          "(multi-core mixes supply one workload per core)");
    }
    SystemConfig c = cascadeLake(cores);

    if (cfg.has("scheme"))
        c.scheme = SchemeConfig::fromName(cfg.getString("scheme"));
    c.scheme = SchemeConfig::fromConfig(cfg.sub("scheme"), c.scheme);

    c.warmup_instrs = cfg.getUnsigned("warmup_instrs", c.warmup_instrs);
    c.sim_instrs = cfg.getUnsigned("sim_instrs", c.sim_instrs);
    c.max_cycles = cfg.getUnsigned("max_cycles", c.max_cycles);
    c.idle_skip = cfg.getBool("idle_skip", c.idle_skip);
    c.dram_gbps_per_core
        = cfg.getDouble("dram_gbps_per_core", c.dram_gbps_per_core);
    c.core_ghz = cfg.getDouble("core_ghz", c.core_ghz);

    c.l1_prefetcher = normalizeComponentName(
        cfg.getString("l1d.prefetcher", c.l1_prefetcher));
    c.l1_pf_table_scale = getU32(cfg, "l1d.prefetcher_table_scale",
                                 c.l1_pf_table_scale);
    c.l2_prefetcher = normalizeComponentName(
        cfg.getString("l2.prefetcher", c.l2_prefetcher));
    c.l1_pf_params.merge(cfg.sub("l1d.prefetcher"));
    c.l2_pf_params.merge(cfg.sub("l2.prefetcher"));
    for (const std::string &pf : {c.l1_prefetcher, c.l2_prefetcher}) {
        if (!pf.empty() && !prefetcherRegistry().contains(pf)) {
            throw ConfigError("unknown prefetcher '" + pf
                              + "'; valid names: "
                              + prefetcherRegistry().namesLine());
        }
    }
    // Prefetcher tuning subtrees: every forwarded key must be a knob the
    // deployed prefetcher declared; a subtree under an empty slot tunes
    // nothing and is rejected as the typo it almost certainly is.
    std::vector<std::string> knob_errors;
    auto check_pf_subtree = [&knob_errors](const std::string &slot,
                                           const std::string &name,
                                           const Config &params) {
        if (name.empty() && !params.empty()) {
            for (const std::string &k : params.keys()) {
                knob_errors.push_back(slot + "." + k + " is set but "
                                      + slot + " = none deploys no "
                                        "prefetcher to consume it");
            }
            return;
        }
        std::vector<std::string> errs = subtreeKnobErrors(
            prefetcherRegistry(), name, params, slot + ".");
        knob_errors.insert(knob_errors.end(), errs.begin(), errs.end());
    };
    check_pf_subtree("l1d.prefetcher", c.l1_prefetcher, c.l1_pf_params);
    check_pf_subtree("l2.prefetcher", c.l2_prefetcher, c.l2_pf_params);
    if (!knob_errors.empty())
        throwConfigErrors(knob_errors);

    c.core.rob_size = getU32(cfg, "core.rob_size", c.core.rob_size);
    c.core.fetch_width = getU32(cfg, "core.fetch_width", c.core.fetch_width);
    c.core.retire_width
        = getU32(cfg, "core.retire_width", c.core.retire_width);
    c.core.lq_size = getU32(cfg, "core.lq_size", c.core.lq_size);
    c.core.sq_size = getU32(cfg, "core.sq_size", c.core.sq_size);
    c.core.load_ports = getU32(cfg, "core.load_ports", c.core.load_ports);
    c.core.mispredict_penalty
        = getU32(cfg, "core.mispredict_penalty", c.core.mispredict_penalty);
    c.core.spec_latency
        = getU32(cfg, "core.spec_latency", c.core.spec_latency);

    cacheFromConfig(cfg, "l1i", c.l1i);
    cacheFromConfig(cfg, "l1d", c.l1d);
    cacheFromConfig(cfg, "l2", c.l2);
    cacheFromConfig(cfg, "llc", c.llc);
    tlbFromConfig(cfg, "dtlb", c.dtlb);
    tlbFromConfig(cfg, "stlb", c.stlb);

    c.dram.banks = getU32(cfg, "dram.banks", c.dram.banks);
    c.dram.blocks_per_row
        = getU32(cfg, "dram.blocks_per_row", c.dram.blocks_per_row);
    c.dram.t_rp = getU32(cfg, "dram.t_rp", c.dram.t_rp);
    c.dram.t_rcd = getU32(cfg, "dram.t_rcd", c.dram.t_rcd);
    c.dram.t_cas = getU32(cfg, "dram.t_cas", c.dram.t_cas);
    c.dram.rq_size = getU32(cfg, "dram.rq_size", c.dram.rq_size);
    c.dram.wq_size = getU32(cfg, "dram.wq_size", c.dram.wq_size);
    c.dram.spec_buffer_entries = getU32(cfg, "dram.spec_buffer_entries",
                                        c.dram.spec_buffer_entries);

    // Reject unknown keys, pointing at what exists. Detection is
    // consumed-key tracking — everything understood was read by a getter
    // or forwarded by a sub() above — so a key can never be silently
    // ignored just because some dump happens to mention it; the known-key
    // set (what toConfig emits, plus the "scheme" preset shorthand) only
    // shapes the suggestions. All offenders are collected into one error.
    std::vector<std::string> stray = cfg.unconsumedKeys();
    if (!stray.empty()) {
        Config known = c.toConfig();
        known.set("scheme", "");
        std::vector<std::string> errors;
        for (const std::string &key : stray) {
            std::string segment = key.substr(0, key.find('.'));
            std::vector<std::string> near;
            for (const std::string &k : known.keys()) {
                if (k.compare(0, segment.size() + 1, segment + ".") == 0
                    || k == segment) {
                    near.push_back(k);
                }
            }
            std::string valid = near.empty()
                ? "valid keys: " + joinNames(known.keys())
                : "valid '" + segment + "' keys: " + joinNames(near);
            errors.push_back("unknown config key '" + key + "'; " + valid);
        }
        throwConfigErrors(errors);
    }
    return c;
}

Config
SystemConfig::toConfig() const
{
    Config c;
    c.set("cores", num_cores);
    c.set("warmup_instrs", warmup_instrs);
    c.set("sim_instrs", sim_instrs);
    c.set("max_cycles", max_cycles);
    c.set("idle_skip", idle_skip);
    c.set("dram_gbps_per_core", dram_gbps_per_core);
    c.set("core_ghz", core_ghz);

    c.set("l1d.prefetcher", renderComponentName(l1_prefetcher));
    c.set("l1d.prefetcher_table_scale", l1_pf_table_scale);
    c.set("l2.prefetcher", renderComponentName(l2_prefetcher));
    for (const std::string &k : l1_pf_params.keys())
        c.set("l1d.prefetcher." + k, l1_pf_params.getString(k));
    for (const std::string &k : l2_pf_params.keys())
        c.set("l2.prefetcher." + k, l2_pf_params.getString(k));

    Config sch = scheme.toConfig();
    for (const std::string &k : sch.keys())
        c.set("scheme." + k, sch.getString(k));

    c.set("core.rob_size", core.rob_size);
    c.set("core.fetch_width", core.fetch_width);
    c.set("core.retire_width", core.retire_width);
    c.set("core.lq_size", core.lq_size);
    c.set("core.sq_size", core.sq_size);
    c.set("core.load_ports", core.load_ports);
    c.set("core.mispredict_penalty", core.mispredict_penalty);
    c.set("core.spec_latency", core.spec_latency);

    cacheToConfig(c, "l1i", l1i);
    cacheToConfig(c, "l1d", l1d);
    cacheToConfig(c, "l2", l2);
    cacheToConfig(c, "llc", llc);
    tlbToConfig(c, "dtlb", dtlb);
    tlbToConfig(c, "stlb", stlb);

    c.set("dram.banks", dram.banks);
    c.set("dram.blocks_per_row", dram.blocks_per_row);
    c.set("dram.t_rp", dram.t_rp);
    c.set("dram.t_rcd", dram.t_rcd);
    c.set("dram.t_cas", dram.t_cas);
    c.set("dram.rq_size", dram.rq_size);
    c.set("dram.wq_size", dram.wq_size);
    c.set("dram.spec_buffer_entries", dram.spec_buffer_entries);
    return c;
}

Config
SystemConfig::l1PrefetcherBuildConfig() const
{
    Config pc;
    if (l1_prefetcher.empty())
        return pc;
    KnobInjector inject{pc, prefetcherRegistry().knobs(l1_prefetcher)};
    inject("table_scale_shift", l1_pf_table_scale);
    pc.merge(l1_pf_params);
    return pc;
}

Config
SystemConfig::l2PrefetcherBuildConfig() const
{
    Config pc;
    if (l2_prefetcher.empty())
        return pc;
    // The PPF-companion tuning (§V-E): with an L2 filter deployed the L2
    // prefetcher runs aggressive and lets the filter prune.
    KnobInjector inject{pc, prefetcherRegistry().knobs(l2_prefetcher)};
    inject("aggressive", scheme.hasL2Filter());
    pc.merge(l2_pf_params);
    return pc;
}

Config
SystemConfig::effectiveConfig() const
{
    Config c = toConfig();
    auto expand = [&c](const std::string &prefix, const KnobSchema *ks,
                       const Config &built) {
        Config eff = ks != nullptr ? ks->defaults() : Config{};
        eff.merge(built);
        eff.erase("name");   // per-cpu stat prefix, injected at build time
        for (const std::string &k : eff.keys())
            c.set(prefix + k, eff.getString(k));
    };
    if (scheme.hasOffchip()) {
        expand("scheme.offchip.", offchipRegistry().knobs(scheme.offchip),
               scheme.offchipBuildConfig());
    }
    if (scheme.hasL1Filter()) {
        expand("scheme.l1_filter.",
               filterRegistry().knobs(scheme.l1_filter),
               scheme.l1FilterBuildConfig());
    }
    if (scheme.hasL2Filter()) {
        expand("scheme.l2_filter.",
               filterRegistry().knobs(scheme.l2_filter),
               scheme.l2FilterBuildConfig());
    }
    if (!l1_prefetcher.empty()) {
        expand("l1d.prefetcher.", prefetcherRegistry().knobs(l1_prefetcher),
               l1PrefetcherBuildConfig());
    }
    if (!l2_prefetcher.empty()) {
        expand("l2.prefetcher.", prefetcherRegistry().knobs(l2_prefetcher),
               l2PrefetcherBuildConfig());
    }
    return c;
}

unsigned
SystemConfig::burstCycles() const
{
    double total_gbps = dram_gbps_per_core * num_cores;
    double ns_per_line = 64.0 / total_gbps;
    auto cycles = static_cast<unsigned>(std::lround(ns_per_line * core_ghz));
    return cycles == 0 ? 1 : cycles;
}

std::string
SystemConfig::description() const
{
    char buf[512];
    std::string out;
    out += "System configuration (Table III)\n";
    std::snprintf(buf, sizeof(buf),
                  "  CPU        : %u core(s), %.1f GHz, 4-wide OoO, "
                  "%u-entry ROB, 6-cycle mispredict refill\n",
                  num_cores, core_ghz, core.rob_size);
    out += buf;
    out += "  Branch pred: hashed-perceptron\n";
    std::snprintf(buf, sizeof(buf),
                  "  L1 DTLB    : %u-entry, %u-way, %ucc\n", dtlb.entries,
                  dtlb.ways, dtlb.latency);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "  L2 TLB     : %u-entry, %u-way, %ucc\n", stlb.entries,
                  stlb.ways, stlb.latency);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "  L1I        : %u KB, %u-way, %ucc, %u MSHRs\n",
                  l1i.sets * l1i.ways * 64 / 1024, l1i.ways, l1i.latency,
                  l1i.mshrs);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "  L1D        : %u KB, %u-way, %ucc, %u MSHRs, "
                  "prefetcher=%s\n",
                  l1d.sets * l1d.ways * 64 / 1024, l1d.ways, l1d.latency,
                  l1d.mshrs, renderComponentName(l1_prefetcher).c_str());
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "  L2C        : %u KB, %u-way, %ucc, %u MSHRs, "
                  "prefetcher=%s\n",
                  l2.sets * l2.ways * 64 / 1024, l2.ways, l2.latency,
                  l2.mshrs, renderComponentName(l2_prefetcher).c_str());
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "  LLC        : %.3f MB/core, %u-way, %ucc, %u MSHRs\n",
                  llc.sets * llc.ways * 64.0 / (1024.0 * 1024.0), llc.ways,
                  llc.latency, llc.mshrs);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "  DRAM       : %.1f GB/s per core, tRP=tRCD=tCAS=%u, "
                  "%u banks, burst=%u cycles\n",
                  dram_gbps_per_core, dram.t_rp, dram.banks, burstCycles());
    out += buf;
    std::snprintf(buf, sizeof(buf), "  Scheme     : %s\n",
                  scheme.name.c_str());
    out += buf;
    return out;
}

} // namespace tlpsim
