#include "trace/trace.hh"

#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "common/config.hh"

namespace tlpsim
{

Trace::Summary
Trace::summarize() const
{
    Summary s;
    std::unordered_set<Addr> pages;
    for (const auto &i : instrs_) {
        ++s.instrs;
        if (i.isLoad()) {
            ++s.loads;
            pages.insert(pageNumber(i.ld_vaddr));
        }
        if (i.isStore()) {
            ++s.stores;
            pages.insert(pageNumber(i.st_vaddr));
        }
        if (i.isBranch()) {
            ++s.branches;
            if (i.taken)
                ++s.taken_branches;
        }
    }
    s.distinct_pages = pages.size();
    s.working_set_mb = static_cast<double>(pages.size()) * kPageSize
        / (1024.0 * 1024.0);
    return s;
}

MemoryTraceSource::MemoryTraceSource(const Trace &trace) : trace_(&trace)
{
    // A ConfigError, not an assert: an empty trace reaches here through
    // user input (a workload recording nothing at tiny scale), and the
    // looping contract (read() always returns >= 1) cannot hold on it.
    if (trace.empty()) {
        throw ConfigError("trace '" + trace.name()
                          + "' is empty: nothing to simulate");
    }
}

std::size_t
MemoryTraceSource::read(TraceInstr *out, std::size_t n)
{
    const std::size_t take = std::min(n, trace_->size() - pos_);
    std::memcpy(out, trace_->data() + pos_, take * sizeof(TraceInstr));
    pos_ += take;
    if (pos_ == trace_->size())
        pos_ = 0;
    return take;
}

TraceReader::TraceReader(TraceSource &source, std::size_t chunk_records)
    : source_(&source),
      buf_(std::max<std::size_t>(1,
                                 std::min<std::size_t>(chunk_records,
                                                       source.size())))
{
}

TraceReader::TraceReader(const Trace &trace, std::size_t chunk_records)
    : owned_(std::make_shared<MemoryTraceSource>(trace)),
      source_(owned_.get()),
      buf_(std::max<std::size_t>(1,
                                 std::min<std::size_t>(chunk_records,
                                                       trace.size())))
{
}

void
TraceReader::refill()
{
    fill_ = source_->read(buf_.data(), buf_.size());
    pos_ = 0;
    if (fill_ == 0) {
        // Sources promise >= 1 record; a zero fill would spin peek()
        // forever, so surface the broken source by name instead.
        throw ConfigError("trace source '" + source_->name()
                          + "' returned no records");
    }
}

} // namespace tlpsim
