#include "trace/trace.hh"

#include <unordered_set>

namespace tlpsim
{

Trace::Summary
Trace::summarize() const
{
    Summary s;
    std::unordered_set<Addr> pages;
    for (const auto &i : instrs_) {
        ++s.instrs;
        if (i.isLoad()) {
            ++s.loads;
            pages.insert(pageNumber(i.ld_vaddr));
        }
        if (i.isStore()) {
            ++s.stores;
            pages.insert(pageNumber(i.st_vaddr));
        }
        if (i.isBranch()) {
            ++s.branches;
            if (i.taken)
                ++s.taken_branches;
        }
    }
    s.distinct_pages = pages.size();
    s.working_set_mb = static_cast<double>(pages.size()) * kPageSize
        / (1024.0 * 1024.0);
    return s;
}

} // namespace tlpsim
