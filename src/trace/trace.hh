/**
 * @file
 * Instruction trace format.
 *
 * tlpsim is trace-driven in the ChampSim style: the core consumes a stream
 * of retired-instruction records carrying the program counter, register
 * dependencies, at most one load and one store address, and branch
 * behaviour. Traces come from two producers behind one streaming
 * abstraction (TraceSource): the in-process workload synthesizers
 * (src/workloads), which materialize a Trace in memory, and the portable
 * on-disk trace files of src/tracefile, which stream hundred-GB traces at
 * a fixed memory footprint. The core never sees the difference — it pulls
 * records through a TraceReader cursor that refills a small chunk buffer
 * from whichever source backs it.
 */

#ifndef TLPSIM_TRACE_TRACE_HH
#define TLPSIM_TRACE_TRACE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace tlpsim
{

/** Logical register id; 0 is the "no register" sentinel. */
using RegId = std::uint8_t;
constexpr RegId kNoReg = 0;
/** Number of architectural registers the recorder rotates through. */
constexpr unsigned kNumRegs = 64;

/** Branch classification carried by trace records. */
enum class BranchKind : std::uint8_t
{
    NotBranch,
    Conditional,
    Direct,        ///< unconditional direct jump/call
    Indirect,      ///< indirect jump/call/return
};

/**
 * One retired instruction. Exactly 32 bytes so large traces stay cheap.
 */
struct TraceInstr
{
    Addr ip = 0;          ///< program counter (virtual)
    Addr ld_vaddr = 0;    ///< load virtual address, 0 = no load
    Addr st_vaddr = 0;    ///< store virtual address, 0 = no store
    RegId src0 = kNoReg;  ///< first source register
    RegId src1 = kNoReg;  ///< second source register
    RegId dst = kNoReg;   ///< destination register
    BranchKind branch = BranchKind::NotBranch;
    bool taken = false;   ///< branch outcome (meaningful if branch != NotBranch)
    std::uint8_t pad[3] = {};

    bool isLoad() const { return ld_vaddr != 0; }
    bool isStore() const { return st_vaddr != 0; }
    bool isBranch() const { return branch != BranchKind::NotBranch; }
};

static_assert(sizeof(TraceInstr) == 32, "trace record must stay compact");

/**
 * An in-memory instruction trace plus identifying metadata.
 */
class Trace
{
  public:
    Trace() = default;
    explicit Trace(std::string name) : name_(std::move(name)) {}

    void reserve(std::size_t n) { instrs_.reserve(n); }
    void push(const TraceInstr &i) { instrs_.push_back(i); }

    const TraceInstr &at(std::size_t i) const { return instrs_[i]; }
    const TraceInstr *data() const { return instrs_.data(); }
    std::size_t size() const { return instrs_.size(); }
    bool empty() const { return instrs_.empty(); }

    const std::string &name() const { return name_; }
    void setName(std::string n) { name_ = std::move(n); }

    /** Simple content summary used by tests and table benches. */
    struct Summary
    {
        std::uint64_t instrs = 0;
        std::uint64_t loads = 0;
        std::uint64_t stores = 0;
        std::uint64_t branches = 0;
        std::uint64_t taken_branches = 0;
        std::uint64_t distinct_pages = 0;  ///< unique data pages touched
        double working_set_mb = 0.0;       ///< distinct_pages * 4 KiB in MiB
    };

    Summary summarize() const;

  private:
    std::string name_;
    std::vector<TraceInstr> instrs_;
};

/**
 * A stream of trace records, repeated forever (ChampSim loops traces that
 * are shorter than the requested simulation length).
 *
 * This is the seam between the frontend and the trace's storage: the
 * in-memory Trace and the chunked on-disk reader (tracefile::
 * FileTraceSource) both implement it, so the Simulator replays a
 * hundred-GB trace file and a synthesized kernel through identical code.
 * The interface is bulk-transfer — one virtual call refills a whole
 * chunk — so per-instruction consumption (TraceReader) stays non-virtual.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Records in one pass of the stream; always > 0. */
    virtual std::uint64_t size() const = 0;

    /** Stream name (the workload name for recorded traces). */
    virtual const std::string &name() const = 0;

    /**
     * Copy the next records of the endless stream into @p out, advancing
     * the stream. Returns how many were copied: at least 1 and at most
     * @p n — a source wraps to its first record rather than returning 0,
     * but may return short at a pass boundary.
     */
    virtual std::size_t read(TraceInstr *out, std::size_t n) = 0;
};

/** TraceSource over a materialized in-memory Trace (shared read-only:
 *  many concurrent sources may stream one Trace, each with its own
 *  position). */
class MemoryTraceSource final : public TraceSource
{
  public:
    explicit MemoryTraceSource(const Trace &trace);

    std::uint64_t size() const override { return trace_->size(); }
    const std::string &name() const override { return trace_->name(); }
    std::size_t read(TraceInstr *out, std::size_t n) override;

  private:
    const Trace *trace_;
    std::size_t pos_ = 0;
};

/**
 * Per-core cursor over a TraceSource: the frontend's peek()/next() pair,
 * backed by a fixed-size chunk buffer the source refills in bulk. The
 * buffer is the *only* materialized window of the stream, so replaying an
 * arbitrarily large trace file holds kChunkRecords records in memory per
 * core, no more.
 */
class TraceReader
{
  public:
    /** Default chunk: 4096 records = 128 KiB per core. */
    static constexpr std::size_t kChunkRecords = 4096;

    explicit TraceReader(TraceSource &source,
                         std::size_t chunk_records = kChunkRecords);

    /** Convenience for tests and single-shot runs: wraps an owned
     *  MemoryTraceSource over @p trace. */
    explicit TraceReader(const Trace &trace,
                         std::size_t chunk_records = kChunkRecords);

    /** Next record without consuming it. */
    const TraceInstr &
    peek()
    {
        if (pos_ == fill_)
            refill();
        return buf_[pos_];
    }

    /** Consume and return the next record. The reference is valid until
     *  the next refill (at most kChunkRecords next() calls); callers that
     *  keep it longer must copy. */
    const TraceInstr &
    next()
    {
        const TraceInstr &i = peek();
        ++pos_;
        ++consumed_;
        return i;
    }

    /** Index of the next record within the source's pass, [0, size()). */
    std::uint64_t position() const { return consumed_ % source_->size(); }

    /** Records consumed since construction (across passes). */
    std::uint64_t consumed() const { return consumed_; }

    TraceSource &source() const { return *source_; }

  private:
    void refill();

    std::shared_ptr<TraceSource> owned_;   ///< set by the Trace ctor only
    TraceSource *source_;
    std::vector<TraceInstr> buf_;
    std::size_t pos_ = 0;
    std::size_t fill_ = 0;
    std::uint64_t consumed_ = 0;
};

} // namespace tlpsim

#endif // TLPSIM_TRACE_TRACE_HH
