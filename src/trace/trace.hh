/**
 * @file
 * Instruction trace format.
 *
 * tlpsim is trace-driven in the ChampSim style: the core consumes a stream
 * of retired-instruction records carrying the program counter, register
 * dependencies, at most one load and one store address, and branch
 * behaviour. Traces are produced in-process by the workload synthesizers
 * (src/workloads) and held in memory; there is no on-disk format because
 * generation is cheap and deterministic.
 */

#ifndef TLPSIM_TRACE_TRACE_HH
#define TLPSIM_TRACE_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace tlpsim
{

/** Logical register id; 0 is the "no register" sentinel. */
using RegId = std::uint8_t;
constexpr RegId kNoReg = 0;
/** Number of architectural registers the recorder rotates through. */
constexpr unsigned kNumRegs = 64;

/** Branch classification carried by trace records. */
enum class BranchKind : std::uint8_t
{
    NotBranch,
    Conditional,
    Direct,        ///< unconditional direct jump/call
    Indirect,      ///< indirect jump/call/return
};

/**
 * One retired instruction. Exactly 32 bytes so large traces stay cheap.
 */
struct TraceInstr
{
    Addr ip = 0;          ///< program counter (virtual)
    Addr ld_vaddr = 0;    ///< load virtual address, 0 = no load
    Addr st_vaddr = 0;    ///< store virtual address, 0 = no store
    RegId src0 = kNoReg;  ///< first source register
    RegId src1 = kNoReg;  ///< second source register
    RegId dst = kNoReg;   ///< destination register
    BranchKind branch = BranchKind::NotBranch;
    bool taken = false;   ///< branch outcome (meaningful if branch != NotBranch)
    std::uint8_t pad[3] = {};

    bool isLoad() const { return ld_vaddr != 0; }
    bool isStore() const { return st_vaddr != 0; }
    bool isBranch() const { return branch != BranchKind::NotBranch; }
};

static_assert(sizeof(TraceInstr) == 32, "trace record must stay compact");

/**
 * An in-memory instruction trace plus identifying metadata.
 */
class Trace
{
  public:
    Trace() = default;
    explicit Trace(std::string name) : name_(std::move(name)) {}

    void reserve(std::size_t n) { instrs_.reserve(n); }
    void push(const TraceInstr &i) { instrs_.push_back(i); }

    const TraceInstr &at(std::size_t i) const { return instrs_[i]; }
    std::size_t size() const { return instrs_.size(); }
    bool empty() const { return instrs_.empty(); }

    const std::string &name() const { return name_; }
    void setName(std::string n) { name_ = std::move(n); }

    /** Simple content summary used by tests and table benches. */
    struct Summary
    {
        std::uint64_t instrs = 0;
        std::uint64_t loads = 0;
        std::uint64_t stores = 0;
        std::uint64_t branches = 0;
        std::uint64_t taken_branches = 0;
        std::uint64_t distinct_pages = 0;  ///< unique data pages touched
        double working_set_mb = 0.0;       ///< distinct_pages * 4 KiB in MiB
    };

    Summary summarize() const;

  private:
    std::string name_;
    std::vector<TraceInstr> instrs_;
};

/**
 * Cursor over a Trace that loops forever (ChampSim repeats traces that are
 * shorter than the requested simulation length).
 */
class TraceReader
{
  public:
    explicit TraceReader(const Trace &trace) : trace_(&trace) {}

    /** Next record without consuming it. */
    const TraceInstr &peek() const { return trace_->at(pos_); }

    const TraceInstr &
    next()
    {
        const TraceInstr &i = trace_->at(pos_);
        if (++pos_ == trace_->size())
            pos_ = 0;
        return i;
    }

    std::size_t position() const { return pos_; }
    const Trace &trace() const { return *trace_; }

  private:
    const Trace *trace_;
    std::size_t pos_ = 0;
};

} // namespace tlpsim

#endif // TLPSIM_TRACE_TRACE_HH
