/**
 * @file
 * Component registries and the deprecated enum-based prefetcher factory.
 *
 * Construction of prefetchers, prefetch filters, and off-chip predictors
 * goes through string-keyed registries (common/registry.hh); the
 * accessors below guarantee the built-in components (next_line, ipcp,
 * berti, spp, ppf, slp, flp, hermes) are registered before first use.
 *
 * The L1Prefetcher/L2Prefetcher enums and makeL1Prefetcher /
 * makeL2Prefetcher predate the registry and survive as thin shims over
 * registry lookups. New code should pass registry names (see
 * SystemConfig::l1_prefetcher) — the enums cannot name components the
 * core headers have never heard of, which is the point of the registry.
 */

#ifndef TLPSIM_PREFETCH_FACTORY_HH
#define TLPSIM_PREFETCH_FACTORY_HH

#include <memory>

#include "common/registry.hh"
#include "common/stats.hh"
#include "prefetch/prefetcher.hh"

namespace tlpsim
{

class OffChipPredictor;

using PrefetcherRegistry = Registry<Prefetcher>;
using FilterRegistry = Registry<PrefetchFilter, StatGroup *>;
using OffchipRegistry = Registry<OffChipPredictor, StatGroup *>;

/** The prefetcher registry, with the built-ins guaranteed registered. */
PrefetcherRegistry &prefetcherRegistry();

/** The prefetch-filter registry (ppf, slp), built-ins registered. */
FilterRegistry &filterRegistry();

/** The off-chip predictor registry (flp, hermes), built-ins registered. */
OffchipRegistry &offchipRegistry();

/**
 * Generated declared-knob reference across all three registries
 * (`tlpsim --knobs`): one block per component listing every knob's name,
 * type, default, and description. @p component filters to one component;
 * unknown names throw ConfigError listing every registered component.
 */
std::string knobReference(const std::string &component = "");

namespace detail
{
// Built-in registration hooks, each defined in its component's .cc and
// called exactly once by the accessors above (static-archive-safe).
void registerNextLinePrefetcher();
void registerIpcpPrefetcher();
void registerBertiPrefetcher();
void registerSppPrefetcher();
void registerPpfFilter();
void registerSlpFilter();
void registerOffchipPredictors();
} // namespace detail

// --- deprecated enum shims ----------------------------------------------

/** [[deprecated]] L1D prefetcher selection; use registry names. */
enum class L1Prefetcher
{
    None,
    NextLine,
    Ipcp,
    Berti,
};

/** [[deprecated]] L2 prefetcher selection; use registry names. */
enum class L2Prefetcher
{
    None,
    Spp,
    SppAggressive,   ///< the PPF-companion tuning (§V-E)
};

const char *toString(L1Prefetcher p);
const char *toString(L2Prefetcher p);

/** Shim: registry lookup of toString(kind) with table_scale_shift set. */
std::unique_ptr<Prefetcher> makeL1Prefetcher(L1Prefetcher kind,
                                             unsigned table_scale_shift = 0);
/** Shim: registry lookup ("spp", aggressive flag for SppAggressive). */
std::unique_ptr<Prefetcher> makeL2Prefetcher(L2Prefetcher kind);

} // namespace tlpsim

#endif // TLPSIM_PREFETCH_FACTORY_HH
