/**
 * @file
 * Prefetcher factory: construct L1D / L2 prefetchers by name, with the
 * optional table-size scaling used by the Fig. 17 "+7KB" designs.
 */

#ifndef TLPSIM_PREFETCH_FACTORY_HH
#define TLPSIM_PREFETCH_FACTORY_HH

#include <memory>

#include "prefetch/prefetcher.hh"

namespace tlpsim
{

/** L1D prefetcher selection (Table III: IPCP or Berti). */
enum class L1Prefetcher
{
    None,
    NextLine,
    Ipcp,
    Berti,
};

/** L2 prefetcher selection (Table III: SPP). */
enum class L2Prefetcher
{
    None,
    Spp,
    SppAggressive,   ///< the PPF-companion tuning (§V-E)
};

const char *toString(L1Prefetcher p);
const char *toString(L2Prefetcher p);

std::unique_ptr<Prefetcher> makeL1Prefetcher(L1Prefetcher kind,
                                             unsigned table_scale_shift = 0);
std::unique_ptr<Prefetcher> makeL2Prefetcher(L2Prefetcher kind);

} // namespace tlpsim

#endif // TLPSIM_PREFETCH_FACTORY_HH
