#include "prefetch/berti.hh"

#include "common/bitops.hh"
#include "prefetch/factory.hh"

namespace tlpsim
{

BertiPrefetcher::BertiPrefetcher() : BertiPrefetcher(Params{}) {}

BertiPrefetcher::BertiPrefetcher(const Params &p)
    : params_(p),
      table_(std::size_t{p.table_entries} << p.table_scale_shift),
      window_(p.initial_window),
      table_index_bits_(log2i(table_.size()))
{
    for (auto &e : table_) {
        e.history.resize(p.history_per_ip);
        e.deltas.resize(p.deltas_per_ip);
    }
}

// tlpsim:hot

BertiPrefetcher::IpEntry *
BertiPrefetcher::entryFor(Addr ip, bool allocate)
{
    std::size_t idx = foldedXor(ip >> 2, table_index_bits_)
        & (table_.size() - 1);
    auto tag = static_cast<std::uint16_t>(bits(ip, 2, 12));
    IpEntry &e = table_[idx];
    if (e.valid && e.tag == tag)
        return &e;
    if (!allocate)
        return nullptr;
    e.tag = tag;
    e.valid = true;
    e.head = 0;
    e.count = 0;
    for (auto &d : e.deltas)
        d = DeltaRec{};
    return &e;
}

void
BertiPrefetcher::scoreDeltas(IpEntry &e, Addr line, Cycle now)
{
    // A delta is *timely* if prefetching line = old.line + delta at the
    // time of the old access would have completed by now: i.e. the old
    // access is at least one timeliness window in the past.
    for (unsigned i = 0; i < e.count; ++i) {
        const HistoryRec &h
            = e.history[(e.head + e.history.size() - 1 - i)
                        % e.history.size()];
        if (now - h.when < window_)
            continue;   // too recent: a prefetch would have been late
        int delta = static_cast<int>(static_cast<std::int64_t>(line)
                                     - static_cast<std::int64_t>(h.line));
        if (delta == 0 || delta > 63 || delta < -63)
            continue;
        // Credit the matching delta entry, or allocate over the weakest.
        DeltaRec *slot = nullptr;
        DeltaRec *weakest = &e.deltas[0];
        for (auto &d : e.deltas) {
            if (d.conf > 0 && d.delta == delta) {
                slot = &d;
                break;
            }
            if (d.conf < weakest->conf)
                weakest = &d;
        }
        if (slot == nullptr) {
            if (weakest->conf == 0) {
                weakest->delta = delta;
                weakest->conf = 1;
            } else {
                --weakest->conf;
            }
        } else if (slot->conf < 8) {
            ++slot->conf;
        }
        break;   // score against the single best (oldest timely) match
    }
}

void
BertiPrefetcher::onAccess(const PrefetchTrigger &trigger,
                          std::vector<PrefetchCandidate> &out)
{
    if (trigger.type != AccessType::Load
        && trigger.type != AccessType::Rfo) {
        return;
    }

    const Addr line = blockNumber(trigger.vaddr);
    const Addr page_first_line = blockNumber(trigger.vaddr & ~kPageMask);
    const Addr page_last_line = page_first_line + kLinesPerPage - 1;

    IpEntry &e = *entryFor(trigger.ip, true);
    scoreDeltas(e, line, trigger.now);

    // Issue the confident timely deltas.
    for (const auto &d : e.deltas) {
        if (d.conf < params_.issue_confidence || d.delta == 0)
            continue;
        std::int64_t t = static_cast<std::int64_t>(line) + d.delta;
        if (t < static_cast<std::int64_t>(page_first_line)
            || t > static_cast<std::int64_t>(page_last_line)) {
            continue;
        }
        out.push_back({static_cast<Addr>(t) << kBlockBits, 1, 0});   // tlpsim:cap (caller-reserved)
    }

    // Record this access.
    e.history[e.head] = {line, trigger.now};
    e.head = (e.head + 1) % e.history.size();
    if (e.count < e.history.size())
        ++e.count;
}

void
BertiPrefetcher::onFill(Addr vaddr, Addr ip, MemLevel served_by,
                        Cycle miss_latency)
{
    (void)vaddr;
    (void)ip;
    if (served_by != MemLevel::Dram || miss_latency == 0)
        return;
    // Track the DRAM round-trip with an EMA: deltas must cover this much
    // latency to be considered timely.
    window_ = (window_ * 7 + miss_latency) / 8;
    if (window_ < 20)
        window_ = 20;
}

// tlpsim:endhot

StorageBudget
BertiPrefetcher::storage() const
{
    StorageBudget b;
    // Per IP entry: tag 12 + history (8 × (16-bit line hash + 12-bit time))
    // + deltas (4 × (7 + 3)).
    std::uint64_t per_entry = 12
        + std::uint64_t{params_.history_per_ip} * 28
        + std::uint64_t{params_.deltas_per_ip} * 10;
    b.add("berti.table", table_.size() * per_entry);
    return b;
}

namespace
{

const KnobSchema &
bertiKnobs()
{
    static const KnobSchema schema = [] {
        const BertiPrefetcher::Params d;
        return KnobSchema{
            {"table_entries", d.table_entries,
             "per-IP delta-tracking table entries"},
            {"history_per_ip", d.history_per_ip,
             "access-history slots kept per IP"},
            {"deltas_per_ip", d.deltas_per_ip,
             "evaluated deltas tracked per IP"},
            {"issue_confidence", d.issue_confidence,
             "confidence (of 8) a delta needs before issuing"},
            {"initial_window", d.initial_window,
             "initial timeliness window (cycles); adapts to miss latency"},
            {"table_scale_shift", d.table_scale_shift,
             "left-shift on table sizes (Fig. 17 \"+7KB Berti\")"},
        };
    }();
    return schema;
}

} // namespace

void
detail::registerBertiPrefetcher()
{
    PrefetcherRegistry::instance().add(
        "berti", bertiKnobs(), [](const Config &cfg) {
            Knobs k(cfg, bertiKnobs(), "prefetcher 'berti'");
            BertiPrefetcher::Params p;
            p.table_entries = k.u32("table_entries");
            p.history_per_ip = k.u32("history_per_ip");
            p.deltas_per_ip = k.u32("deltas_per_ip");
            p.issue_confidence = k.u32("issue_confidence");
            p.initial_window = k.u64("initial_window");
            p.table_scale_shift = k.u32("table_scale_shift");
            return std::make_unique<BertiPrefetcher>(p);
        });
}

} // namespace tlpsim
