#include "prefetch/spp.hh"

#include <cassert>

#include "common/bitops.hh"
#include "prefetch/factory.hh"

namespace tlpsim
{

SppPrefetcher::SppPrefetcher() : SppPrefetcher(Params{}) {}

SppPrefetcher::SppPrefetcher(const Params &p)
    : params_(p), sig_table_(p.signature_table_entries),
      pattern_table_(p.pattern_table_entries)
{
    assert(p.deltas_per_pattern <= kMaxDeltasPerPattern);
    if (params_.aggressive) {
        params_.lookahead_cutoff = 10;
        params_.max_lookahead = 12;
        params_.fill_threshold = 40;
    }
}

// tlpsim:hot

void
SppPrefetcher::onAccess(const PrefetchTrigger &trigger,
                        std::vector<PrefetchCandidate> &out)
{
    // SPP learns from demand accesses and from L1D prefetches passing
    // through the L2 (ChampSim invokes the L2 prefetcher for both), which
    // is what lets the signature path run ahead of streaming access.
    if (trigger.type != AccessType::Load && trigger.type != AccessType::Rfo
        && trigger.type != AccessType::Prefetch) {
        return;
    }

    const Addr page = pageNumber(trigger.paddr);
    const auto offset
        = static_cast<std::uint8_t>(lineOffsetInPage(trigger.paddr));

    // --- Signature table lookup ----------------------------------------
    std::size_t set = page & (sig_table_.size() - 1);
    SigEntry &e = sig_table_[set];
    bool tracked = e.valid && e.page_tag == page;
    if (!tracked) {
        e = SigEntry{page, true, offset, 0, ++lru_clock_};
        return;   // first touch of the page: learn, don't prefetch
    }

    int delta = static_cast<int>(offset) - static_cast<int>(e.last_offset);
    if (delta == 0)
        return;

    // --- Train the pattern table with the observed delta ----------------
    PatternEntry &pt = pattern_table_[e.signature
                                      & (pattern_table_.size() - 1)];
    const unsigned nd = params_.deltas_per_pattern;
    PatternDelta *slot = nullptr;
    PatternDelta *weakest = &pt.deltas[0];
    for (unsigned i = 0; i < nd; ++i) {
        PatternDelta &d = pt.deltas[i];
        if (d.count > 0 && d.delta == delta) {
            slot = &d;
            break;
        }
        if (d.count < weakest->count)
            weakest = &d;
    }
    if (slot == nullptr) {
        slot = weakest;
        slot->delta = delta;
        slot->count = 0;
    }
    if (slot->count == 15) {
        // Saturate: age everything to keep ratios meaningful.
        for (unsigned i = 0; i < nd; ++i)
            pt.deltas[i].count
                = static_cast<std::uint8_t>(pt.deltas[i].count >> 1);
        pt.total = static_cast<std::uint8_t>(pt.total >> 1);
    }
    ++slot->count;
    if (pt.total < 255)
        ++pt.total;

    e.signature = nextSignature(e.signature, delta);
    e.last_offset = offset;
    e.lru = ++lru_clock_;

    // --- Lookahead along the signature path -----------------------------
    std::uint16_t sig = e.signature;
    int lk_offset = offset;
    unsigned path_conf = 100;
    for (unsigned depth = 0; depth < params_.max_lookahead; ++depth) {
        const PatternEntry &p = pattern_table_[sig
                                               & (pattern_table_.size() - 1)];
        if (p.total == 0)
            break;
        const PatternDelta *best = nullptr;
        for (unsigned i = 0; i < nd; ++i) {
            const PatternDelta &d = p.deltas[i];
            if (d.count > 0 && (best == nullptr || d.count > best->count))
                best = &d;
        }
        if (best == nullptr)
            break;
        path_conf = path_conf * best->count
            / std::max<unsigned>(p.total, 1);
        if (path_conf < params_.lookahead_cutoff)
            break;
        lk_offset += best->delta;
        if (lk_offset < 0
            || lk_offset >= static_cast<int>(kLinesPerPage)) {
            break;   // SPP stops at page boundaries
        }
        Addr pf_addr = (page << kPageBits)
            + (static_cast<Addr>(lk_offset) << kBlockBits);
        std::uint8_t fill_level
            = path_conf >= params_.fill_threshold ? 2 : 3;
        out.push_back(   // tlpsim:cap (caller-reserved)
            {pf_addr, fill_level,
             packMeta(path_conf, sig, depth)});
        sig = nextSignature(sig, best->delta);
    }
}

// tlpsim:endhot

StorageBudget
SppPrefetcher::storage() const
{
    StorageBudget b;
    // Signature entry: tag 16 + offset 6 + signature 12 + lru 4.
    b.add("spp.signature_table", sig_table_.size() * std::uint64_t{38});
    // Pattern entry: 4 deltas × (7 + 4) + total 8.
    b.add("spp.pattern_table",
          pattern_table_.size()
              * (std::uint64_t{params_.deltas_per_pattern} * 11 + 8));
    return b;
}

namespace
{

const KnobSchema &
sppKnobs()
{
    static const KnobSchema schema = [] {
        const SppPrefetcher::Params d;
        return KnobSchema{
            {"signature_table_entries", d.signature_table_entries,
             "signature table entries"},
            {"pattern_table_entries", d.pattern_table_entries,
             "pattern table entries"},
            {"deltas_per_pattern", d.deltas_per_pattern,
             "delta slots per pattern entry"},
            {"max_lookahead", d.max_lookahead,
             "maximum lookahead depth per trigger"},
            {"lookahead_cutoff", d.lookahead_cutoff,
             "stop the lookahead below this path confidence (percent)"},
            {"fill_threshold", d.fill_threshold,
             "fill L2 at or above this confidence, else demote to LLC"},
            {"aggressive", d.aggressive,
             "PPF companion mode: prefetch more, let the filter prune"},
        };
    }();
    return schema;
}

} // namespace

void
detail::registerSppPrefetcher()
{
    PrefetcherRegistry::instance().add(
        "spp", sppKnobs(), [](const Config &cfg) {
            Knobs k(cfg, sppKnobs(), "prefetcher 'spp'");
            SppPrefetcher::Params p;
            p.signature_table_entries = k.u32("signature_table_entries");
            p.pattern_table_entries = k.u32("pattern_table_entries");
            p.deltas_per_pattern = k.u32("deltas_per_pattern");
            p.max_lookahead = k.u32("max_lookahead");
            p.lookahead_cutoff = k.u32("lookahead_cutoff");
            p.fill_threshold = k.u32("fill_threshold");
            p.aggressive = k.flag("aggressive");
            return std::make_unique<SppPrefetcher>(p);
        });
}

} // namespace tlpsim
