/**
 * @file
 * IPCP — Instruction Pointer Classification Prefetcher (Pakalapati &
 * Panda, ISCA 2020), the paper's primary L1D prefetcher.
 *
 * Each load IP is classified into one of three classes, checked in
 * priority order, and prefetches are issued for the winning class:
 *   - CS   (constant stride): stable per-IP stride, deep degree;
 *   - CPLX (complex stride): stride predicted from a signature of recent
 *     deltas via the CSPT;
 *   - GS   (global stream): dense region streaming, deepest degree;
 * with a next-line prefetch as the low-confidence fallback. IPCP is
 * deliberately aggressive — the paper's Fig. 5a shows large inaccurate
 * PPKI — and that aggression is what SLP filters.
 */

#ifndef TLPSIM_PREFETCH_IPCP_HH
#define TLPSIM_PREFETCH_IPCP_HH

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace tlpsim
{

class IpcpPrefetcher : public Prefetcher
{
  public:
    struct Params
    {
        unsigned ip_table_entries = 64;
        unsigned cspt_entries = 128;
        unsigned region_entries = 8;
        /** Lines in a tracked GS region. */
        unsigned region_lines = 32;
        /** Dense-region threshold for GS classification. */
        unsigned gs_dense_threshold = 24;
        unsigned cs_degree = 4;
        unsigned cplx_degree = 3;
        unsigned gs_degree = 6;
        /** Table-size shift for the Fig. 17 "+7KB IPCP" design. */
        unsigned table_scale_shift = 0;
    };

    IpcpPrefetcher();
    explicit IpcpPrefetcher(const Params &p);

    const char *name() const override { return "ipcp"; }

    void onAccess(const PrefetchTrigger &trigger,
                  std::vector<PrefetchCandidate> &out) override;

    StorageBudget storage() const override;

  private:
    struct IpEntry
    {
        std::uint16_t tag = 0;
        bool valid = false;
        Addr last_line = 0;        ///< last accessed line number
        int stride = 0;
        std::uint8_t conf = 0;     ///< 2-bit stride confidence
        std::uint16_t signature = 0;
    };

    struct CsptEntry
    {
        int stride = 0;
        std::uint8_t conf = 0;
    };

    struct Region
    {
        Addr base_line = 0;        ///< region-aligned line number
        std::uint64_t touched = 0; ///< bitmap of touched lines
        bool valid = false;
        std::uint64_t lru = 0;
    };

    Params params_;
    std::vector<IpEntry> ip_table_;
    std::vector<CsptEntry> cspt_;
    std::vector<Region> regions_;
    /** log2(ip_table_.size()), fixed at construction (used per access). */
    unsigned ip_index_bits_ = 0;
    std::uint64_t lru_clock_ = 0;
};

} // namespace tlpsim

#endif // TLPSIM_PREFETCH_IPCP_HH
