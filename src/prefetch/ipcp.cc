#include "prefetch/ipcp.hh"

#include "common/bitops.hh"
#include "prefetch/factory.hh"

namespace tlpsim
{

IpcpPrefetcher::IpcpPrefetcher() : IpcpPrefetcher(Params{}) {}

IpcpPrefetcher::IpcpPrefetcher(const Params &p)
    : params_(p),
      ip_table_(std::size_t{p.ip_table_entries} << p.table_scale_shift),
      cspt_(std::size_t{p.cspt_entries} << p.table_scale_shift),
      regions_(p.region_entries),
      ip_index_bits_(log2i(ip_table_.size()))
{
}

// tlpsim:hot

void
IpcpPrefetcher::onAccess(const PrefetchTrigger &trigger,
                         std::vector<PrefetchCandidate> &out)
{
    if (trigger.type != AccessType::Load
        && trigger.type != AccessType::Rfo) {
        return;
    }

    const Addr line = blockNumber(trigger.vaddr);
    const Addr page_first_line = blockNumber(trigger.vaddr & ~kPageMask);
    const Addr page_last_line = page_first_line + kLinesPerPage - 1;

    // --- Region tracking for GS classification -------------------------
    Addr region_base = line & ~Addr{params_.region_lines - 1};
    Region *region = nullptr;
    for (auto &r : regions_) {
        if (r.valid && r.base_line == region_base) {
            region = &r;
            break;
        }
    }
    if (region == nullptr) {
        region = &regions_[0];
        for (auto &r : regions_) {
            if (!r.valid) {
                region = &r;
                break;
            }
            if (r.lru < region->lru)
                region = &r;
        }
        *region = Region{region_base, 0, true, 0};
    }
    region->touched |= std::uint64_t{1} << (line - region_base);
    region->lru = ++lru_clock_;
    unsigned density = static_cast<unsigned>(
        __builtin_popcountll(region->touched));

    // --- Per-IP stride tracking ----------------------------------------
    std::size_t idx = foldedXor(trigger.ip >> 2, ip_index_bits_)
        & (ip_table_.size() - 1);
    auto tag = static_cast<std::uint16_t>(bits(trigger.ip, 2, 10));
    IpEntry &e = ip_table_[idx];
    if (!e.valid || e.tag != tag) {
        e = IpEntry{tag, true, line, 0, 0, 0};
        // Cold IP: fall back to next-line.
        if (line < page_last_line)
            out.push_back({(line + 1) << kBlockBits, 1, 0});   // tlpsim:cap (caller-reserved)
        return;
    }

    int delta = static_cast<int>(static_cast<std::int64_t>(line)
                                 - static_cast<std::int64_t>(e.last_line));
    if (delta == 0)
        return;   // same line: nothing to learn or prefetch

    // Train CSPT with the signature that *preceded* this delta.
    std::size_t cspt_idx = e.signature & (cspt_.size() - 1);
    CsptEntry &ce = cspt_[cspt_idx];
    if (ce.stride == delta) {
        if (ce.conf < 3)
            ++ce.conf;
    } else {
        if (ce.conf > 0)
            --ce.conf;
        else
            ce.stride = delta;
    }

    // Train the per-IP constant stride.
    if (delta == e.stride) {
        if (e.conf < 3)
            ++e.conf;
    } else {
        if (e.conf > 0)
            --e.conf;
        else
            e.stride = delta;
    }

    std::uint16_t new_sig = static_cast<std::uint16_t>(
        ((e.signature << 3) ^ static_cast<std::uint16_t>(delta & 0x3f))
        & 0xfff);
    e.signature = new_sig;
    e.last_line = line;

    // --- Classification (priority: CS > CPLX > GS > NL) -----------------
    if (e.conf >= 2 && e.stride != 0) {
        for (unsigned d = 1; d <= params_.cs_degree; ++d) {
            std::int64_t t = static_cast<std::int64_t>(line)
                + static_cast<std::int64_t>(d) * e.stride;
            if (t < static_cast<std::int64_t>(page_first_line)
                || t > static_cast<std::int64_t>(page_last_line)) {
                break;
            }
            out.push_back({static_cast<Addr>(t) << kBlockBits, 1, 0});   // tlpsim:cap (caller-reserved)
        }
        return;
    }

    // CPLX: walk the CSPT chain from the current signature.
    std::uint16_t sig = new_sig;
    std::int64_t t = static_cast<std::int64_t>(line);
    bool cplx_issued = false;
    for (unsigned d = 0; d < params_.cplx_degree; ++d) {
        const CsptEntry &c = cspt_[sig & (cspt_.size() - 1)];
        if (c.conf < 2 || c.stride == 0)
            break;
        t += c.stride;
        if (t < static_cast<std::int64_t>(page_first_line)
            || t > static_cast<std::int64_t>(page_last_line)) {
            break;
        }
        out.push_back({static_cast<Addr>(t) << kBlockBits, 1, 0});   // tlpsim:cap (caller-reserved)
        cplx_issued = true;
        sig = static_cast<std::uint16_t>(
            ((sig << 3) ^ static_cast<std::uint16_t>(c.stride & 0x3f))
            & 0xfff);
    }
    if (cplx_issued)
        return;

    // GS: dense region → deep forward stream.
    if (density >= params_.gs_dense_threshold) {
        for (unsigned d = 1; d <= params_.gs_degree; ++d) {
            Addr tl = line + d;
            if (tl > page_last_line)
                break;
            out.push_back({tl << kBlockBits, 1, 0});   // tlpsim:cap (caller-reserved)
        }
        return;
    }

    // NL fallback.
    if (line < page_last_line)
        out.push_back({(line + 1) << kBlockBits, 1, 0});   // tlpsim:cap (caller-reserved)
}

// tlpsim:endhot

StorageBudget
IpcpPrefetcher::storage() const
{
    StorageBudget b;
    // IP entry: tag 10 + line 16 + stride 7 + conf 2 + signature 12 bits.
    b.add("ipcp.ip_table", ip_table_.size() * std::uint64_t{47});
    // CSPT entry: stride 7 + conf 2.
    b.add("ipcp.cspt", cspt_.size() * std::uint64_t{9});
    b.add("ipcp.regions", regions_.size()
          * std::uint64_t{params_.region_lines + 26});
    return b;
}

namespace
{

const KnobSchema &
ipcpKnobs()
{
    static const KnobSchema schema = [] {
        const IpcpPrefetcher::Params d;
        return KnobSchema{
            {"ip_table_entries", d.ip_table_entries,
             "IP classification table entries"},
            {"cspt_entries", d.cspt_entries,
             "complex-stride prediction table entries"},
            {"region_entries", d.region_entries,
             "tracked global-stream regions"},
            {"region_lines", d.region_lines,
             "lines in a tracked GS region"},
            {"gs_dense_threshold", d.gs_dense_threshold,
             "dense-region threshold for GS classification"},
            {"cs_degree", d.cs_degree, "constant-stride prefetch degree"},
            {"cplx_degree", d.cplx_degree,
             "complex-stride prefetch degree"},
            {"gs_degree", d.gs_degree, "global-stream prefetch degree"},
            {"table_scale_shift", d.table_scale_shift,
             "left-shift on table sizes (Fig. 17 \"+7KB IPCP\")"},
        };
    }();
    return schema;
}

} // namespace

void
detail::registerIpcpPrefetcher()
{
    PrefetcherRegistry::instance().add(
        "ipcp", ipcpKnobs(), [](const Config &cfg) {
            Knobs k(cfg, ipcpKnobs(), "prefetcher 'ipcp'");
            IpcpPrefetcher::Params p;
            p.ip_table_entries = k.u32("ip_table_entries");
            p.cspt_entries = k.u32("cspt_entries");
            p.region_entries = k.u32("region_entries");
            p.region_lines = k.u32("region_lines");
            p.gs_dense_threshold = k.u32("gs_dense_threshold");
            p.cs_degree = k.u32("cs_degree");
            p.cplx_degree = k.u32("cplx_degree");
            p.gs_degree = k.u32("gs_degree");
            p.table_scale_shift = k.u32("table_scale_shift");
            return std::make_unique<IpcpPrefetcher>(p);
        });
}

} // namespace tlpsim
