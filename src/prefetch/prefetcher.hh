/**
 * @file
 * Hardware prefetcher and prefetch-filter interfaces.
 *
 * A Prefetcher is attached to one cache. On every demand access the cache
 * hands it a PrefetchTrigger and collects candidates; candidates then pass
 * through the cache's PrefetchFilter (SLP at L1D, PPF at L2) before
 * entering the prefetch queue. L1D prefetchers emit virtual addresses
 * (translated by the cache); L2 prefetchers emit physical addresses.
 */

#ifndef TLPSIM_PREFETCH_PREFETCHER_HH
#define TLPSIM_PREFETCH_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "common/storage.hh"
#include "common/types.hh"
#include "mem/packet.hh"

namespace tlpsim
{

/** Demand access information handed to prefetchers and filters. */
struct PrefetchTrigger
{
    Addr vaddr = 0;
    Addr paddr = 0;
    Addr ip = 0;
    AccessType type = AccessType::Load;
    bool cache_hit = false;
    /** The hit (if any) was on a prefetched block. */
    bool prefetch_hit = false;
    /** FLP/Hermes off-chip prediction bit of this demand (SLP feature). */
    bool offchip_pred = false;
    std::uint8_t core = 0;
    Cycle now = 0;
};

/** One prefetch the prefetcher wants issued. */
struct PrefetchCandidate
{
    /** Virtual address for L1D prefetchers, physical for L2 prefetchers. */
    Addr addr = 0;
    /** Lowest cache level to allocate the fill into (1=L1, 2=L2, 3=LLC). */
    std::uint8_t fill_level = 1;
    /** Prefetcher-private (e.g. SPP signature+confidence). */
    std::uint32_t metadata = 0;
};

class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    virtual const char *name() const = 0;

    /** Demand access notification; append candidates to @p out. */
    virtual void onAccess(const PrefetchTrigger &trigger,
                          std::vector<PrefetchCandidate> &out) = 0;

    /**
     * Fill notification for a demand miss that just returned: Berti uses
     * the observed miss latency to pick *timely* deltas.
     */
    virtual void
    onFill(Addr vaddr, Addr ip, MemLevel served_by, Cycle miss_latency)
    {
        (void)vaddr; (void)ip; (void)served_by; (void)miss_latency;
    }

    /** Hardware cost of the prefetcher's tables. */
    virtual StorageBudget storage() const { return {}; }
};

/**
 * Adaptive prefetch filter (the paper's SLP; the PPF baseline).
 *
 * The filter sees each candidate after translation and may drop it or
 * demote its fill level. Training hooks mirror the information real
 * implementations use.
 */
class PrefetchFilter
{
  public:
    virtual ~PrefetchFilter() = default;

    virtual const char *name() const = 0;

    /**
     * Decide the fate of a candidate. Return false to drop it. May lower
     * @p fill_level (PPF's two-threshold fill/LLC decision) and fills
     * @p meta with training metadata to be carried by the packet.
     * @p pf_metadata is the candidate's prefetcher-private word (SPP
     * signature/confidence/depth for PPF's features).
     */
    virtual bool allow(const PrefetchTrigger &trigger, Addr pf_vaddr,
                       Addr pf_paddr, std::uint32_t pf_metadata,
                       std::uint8_t &fill_level, PredictionMeta &meta) = 0;

    /** A filtered-through prefetch completed; @p pkt carries its meta. */
    virtual void
    onPrefetchFill(const Packet &pkt)
    {
        (void)pkt;
    }

    /** A demand access hit a prefetched block (prefetch was useful). */
    virtual void
    onDemandHitPrefetched(Addr paddr, Addr ip)
    {
        (void)paddr; (void)ip;
    }

    /** A prefetched block was evicted unused (prefetch was useless). */
    virtual void
    onPrefetchedEvictUnused(Addr paddr)
    {
        (void)paddr;
    }

    /** A demand access missed (PPF checks its reject history here). */
    virtual void
    onDemandMiss(Addr paddr, Addr ip)
    {
        (void)paddr; (void)ip;
    }

    virtual StorageBudget storage() const { return {}; }
};

} // namespace tlpsim

#endif // TLPSIM_PREFETCH_PREFETCHER_HH
