/**
 * @file
 * Berti — accurate local-delta L1D prefetcher (Navarro-Torres et al.,
 * MICRO 2022), the paper's second L1D prefetcher.
 *
 * Berti learns, per load IP, the set of *timely* local deltas: deltas to
 * earlier accesses far enough in the past that a prefetch launched then
 * would have beaten the demand. It issues few, highly accurate prefetches
 * — the foil to IPCP's aggression in the paper's evaluation.
 *
 * This implementation keeps per-IP access history with timestamps; when a
 * demand miss completes, the observed latency defines the timeliness
 * window used to score candidate deltas.
 */

#ifndef TLPSIM_PREFETCH_BERTI_HH
#define TLPSIM_PREFETCH_BERTI_HH

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace tlpsim
{

class BertiPrefetcher : public Prefetcher
{
  public:
    struct Params
    {
        unsigned table_entries = 64;   ///< per-IP tracking entries
        unsigned history_per_ip = 8;
        unsigned deltas_per_ip = 4;
        /** Confidence (out of 8) a delta needs before being issued. */
        unsigned issue_confidence = 4;
        /** Initial timeliness window; adapts to observed miss latency. */
        Cycle initial_window = 60;
        unsigned table_scale_shift = 0;
    };

    BertiPrefetcher();
    explicit BertiPrefetcher(const Params &p);

    const char *name() const override { return "berti"; }

    void onAccess(const PrefetchTrigger &trigger,
                  std::vector<PrefetchCandidate> &out) override;

    void onFill(Addr vaddr, Addr ip, MemLevel served_by,
                Cycle miss_latency) override;

    StorageBudget storage() const override;

    Cycle timelinessWindow() const { return window_; }

  private:
    struct HistoryRec
    {
        Addr line = 0;
        Cycle when = 0;
    };

    struct DeltaRec
    {
        int delta = 0;
        std::uint8_t conf = 0;   ///< 0..8
    };

    struct IpEntry
    {
        std::uint16_t tag = 0;
        bool valid = false;
        std::vector<HistoryRec> history;   ///< ring, newest at head_
        unsigned head = 0;
        unsigned count = 0;
        std::vector<DeltaRec> deltas;
    };

    IpEntry *entryFor(Addr ip, bool allocate);
    void scoreDeltas(IpEntry &e, Addr line, Cycle now);

    Params params_;
    std::vector<IpEntry> table_;
    Cycle window_;
    /** log2(table_.size()), fixed at construction (used per access). */
    unsigned table_index_bits_ = 0;
};

} // namespace tlpsim

#endif // TLPSIM_PREFETCH_BERTI_HH
