#include "prefetch/next_line.hh"

#include "prefetch/factory.hh"

namespace tlpsim
{

namespace
{

const KnobSchema &
nextLineKnobs()
{
    static const KnobSchema schema = [] {
        const NextLinePrefetcher::Params d;
        return KnobSchema{
            {"degree", d.degree, "lines prefetched ahead of each access"},
        };
    }();
    return schema;
}

} // namespace

void
detail::registerNextLinePrefetcher()
{
    PrefetcherRegistry::instance().add(
        "next_line", nextLineKnobs(), [](const Config &cfg) {
            Knobs k(cfg, nextLineKnobs(), "prefetcher 'next_line'");
            NextLinePrefetcher::Params p;
            p.degree = k.u32("degree");
            return std::make_unique<NextLinePrefetcher>(p);
        });
}

} // namespace tlpsim
