#include "prefetch/next_line.hh"

#include "prefetch/factory.hh"

namespace tlpsim
{

namespace
{

const KnobSchema &
nextLineKnobs()
{
    static const KnobSchema schema{
        {"degree", 1u, "lines prefetched ahead of each access"},
    };
    return schema;
}

} // namespace

void
detail::registerNextLinePrefetcher()
{
    PrefetcherRegistry::instance().add(
        "next_line", nextLineKnobs(), [](const Config &cfg) {
            Knobs k(cfg, nextLineKnobs(), "prefetcher 'next_line'");
            return std::make_unique<NextLinePrefetcher>(k.u32("degree"));
        });
}

} // namespace tlpsim
