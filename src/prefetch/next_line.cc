#include "prefetch/next_line.hh"

#include "prefetch/factory.hh"

namespace tlpsim
{

void
detail::registerNextLinePrefetcher()
{
    PrefetcherRegistry::instance().add("next_line", [](const Config &cfg) {
        auto degree = cfg.getUnsigned32("degree", 1);
        return std::make_unique<NextLinePrefetcher>(degree);
    });
}

} // namespace tlpsim
