/**
 * @file
 * Trivial next-line prefetcher: the simplest coverage baseline, used by
 * tests and the quickstart example.
 */

#ifndef TLPSIM_PREFETCH_NEXT_LINE_HH
#define TLPSIM_PREFETCH_NEXT_LINE_HH

#include "prefetch/prefetcher.hh"

namespace tlpsim
{

class NextLinePrefetcher : public Prefetcher
{
  public:
    struct Params
    {
        /** Lines prefetched ahead of each access. */
        unsigned degree = 1;
    };

    NextLinePrefetcher() : NextLinePrefetcher(Params{}) {}
    explicit NextLinePrefetcher(const Params &p) : degree_(p.degree) {}
    explicit NextLinePrefetcher(unsigned degree)
        : NextLinePrefetcher(Params{degree})
    {
    }

    const char *name() const override { return "next_line"; }

    // tlpsim:hot
    void
    onAccess(const PrefetchTrigger &trigger,
             std::vector<PrefetchCandidate> &out) override
    {
        if (trigger.type != AccessType::Load
            && trigger.type != AccessType::Rfo) {
            return;
        }
        for (unsigned d = 1; d <= degree_; ++d) {
            out.push_back(   // tlpsim:cap (caller-reserved cand_buf)
                {blockAlign(trigger.vaddr) + d * kBlockSize, 1, 0});
        }
    }
    // tlpsim:endhot

    StorageBudget storage() const override { return {}; }

  private:
    unsigned degree_;
};

} // namespace tlpsim

#endif // TLPSIM_PREFETCH_NEXT_LINE_HH
