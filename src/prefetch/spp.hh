/**
 * @file
 * SPP — Signature Path Prefetcher (Kim et al., MICRO 2016), the L2
 * prefetcher of the paper's baseline (Table III).
 *
 * Per-page signatures compress recent delta history; a pattern table maps
 * signatures to likely next deltas with confidence; lookahead walks the
 * signature chain issuing prefetches while the compounded path confidence
 * stays above threshold. High-confidence prefetches fill L2, low ones are
 * demoted to LLC-only — the fill decision PPF later overrides.
 *
 * The "aggressive" configuration (deeper lookahead, lower cutoffs) is the
 * SPP tuning the paper uses when PPF is present (§V-E).
 */

#ifndef TLPSIM_PREFETCH_SPP_HH
#define TLPSIM_PREFETCH_SPP_HH

#include <array>
#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace tlpsim
{

class SppPrefetcher : public Prefetcher
{
  public:
    struct Params
    {
        unsigned signature_table_entries = 256;
        unsigned pattern_table_entries = 512;
        unsigned deltas_per_pattern = 4;
        unsigned max_lookahead = 8;
        /** Stop the lookahead below this path confidence (percent). */
        unsigned lookahead_cutoff = 25;
        /** Fill L2 at or above this confidence, else demote to LLC. */
        unsigned fill_threshold = 60;
        /** PPF companion mode: prefetch more, let the filter prune. */
        bool aggressive = false;
    };

    SppPrefetcher();
    explicit SppPrefetcher(const Params &p);

    const char *name() const override { return "spp"; }

    void onAccess(const PrefetchTrigger &trigger,
                  std::vector<PrefetchCandidate> &out) override;

    StorageBudget storage() const override;

    /** Confidence (0..100) encoded in candidate metadata (PPF feature). */
    static unsigned metaConfidence(std::uint32_t metadata)
    {
        return metadata & 0x7f;
    }
    static std::uint16_t metaSignature(std::uint32_t metadata)
    {
        return static_cast<std::uint16_t>((metadata >> 7) & 0xfff);
    }
    static unsigned metaDepth(std::uint32_t metadata)
    {
        return (metadata >> 19) & 0xf;
    }
    static std::uint32_t
    packMeta(unsigned conf, std::uint16_t sig, unsigned depth)
    {
        return (conf & 0x7f) | (std::uint32_t{sig} & 0xfff) << 7
            | (std::uint32_t{depth} & 0xf) << 19;
    }

  private:
    struct SigEntry
    {
        Addr page_tag = 0;
        bool valid = false;
        std::uint8_t last_offset = 0;
        std::uint16_t signature = 0;
        std::uint64_t lru = 0;
    };

    struct PatternDelta
    {
        int delta = 0;
        std::uint8_t count = 0;
    };

    /** Delta slots live inline (bounded by kMaxDeltasPerPattern, only
     *  the first deltas_per_pattern are used): the per-access train +
     *  lookahead scans stay within the entry's own cache lines instead
     *  of chasing a heap vector per pattern-table probe. */
    static constexpr unsigned kMaxDeltasPerPattern = 8;

    struct PatternEntry
    {
        std::array<PatternDelta, kMaxDeltasPerPattern> deltas{};
        std::uint8_t total = 0;
    };

    static std::uint16_t
    nextSignature(std::uint16_t sig, int delta)
    {
        return static_cast<std::uint16_t>(
            ((sig << 3) ^ static_cast<std::uint16_t>(delta & 0x7f)) & 0xfff);
    }

    Params params_;
    std::vector<SigEntry> sig_table_;
    std::vector<PatternEntry> pattern_table_;
    std::uint64_t lru_clock_ = 0;
};

} // namespace tlpsim

#endif // TLPSIM_PREFETCH_SPP_HH
