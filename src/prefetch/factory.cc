#include "prefetch/factory.hh"

#include "prefetch/berti.hh"
#include "prefetch/ipcp.hh"
#include "prefetch/next_line.hh"
#include "prefetch/spp.hh"

namespace tlpsim
{

const char *
toString(L1Prefetcher p)
{
    switch (p) {
      case L1Prefetcher::None: return "no";
      case L1Prefetcher::NextLine: return "next_line";
      case L1Prefetcher::Ipcp: return "ipcp";
      case L1Prefetcher::Berti: return "berti";
    }
    return "?";
}

const char *
toString(L2Prefetcher p)
{
    switch (p) {
      case L2Prefetcher::None: return "no";
      case L2Prefetcher::Spp: return "spp";
      case L2Prefetcher::SppAggressive: return "spp_aggressive";
    }
    return "?";
}

std::unique_ptr<Prefetcher>
makeL1Prefetcher(L1Prefetcher kind, unsigned table_scale_shift)
{
    switch (kind) {
      case L1Prefetcher::None:
        return nullptr;
      case L1Prefetcher::NextLine:
        return std::make_unique<NextLinePrefetcher>();
      case L1Prefetcher::Ipcp: {
        IpcpPrefetcher::Params p;
        p.table_scale_shift = table_scale_shift;
        return std::make_unique<IpcpPrefetcher>(p);
      }
      case L1Prefetcher::Berti: {
        BertiPrefetcher::Params p;
        p.table_scale_shift = table_scale_shift;
        return std::make_unique<BertiPrefetcher>(p);
      }
    }
    return nullptr;
}

std::unique_ptr<Prefetcher>
makeL2Prefetcher(L2Prefetcher kind)
{
    switch (kind) {
      case L2Prefetcher::None:
        return nullptr;
      case L2Prefetcher::Spp:
        return std::make_unique<SppPrefetcher>();
      case L2Prefetcher::SppAggressive: {
        SppPrefetcher::Params p;
        p.aggressive = true;
        return std::make_unique<SppPrefetcher>(p);
      }
    }
    return nullptr;
}

} // namespace tlpsim
