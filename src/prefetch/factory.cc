#include "prefetch/factory.hh"

#include <mutex>

namespace tlpsim
{

namespace
{

/** Register every built-in component exactly once. */
void
ensureBuiltins()
{
    static std::once_flag once;
    std::call_once(once, [] {
        PrefetcherRegistry::instance().setKind("prefetcher");
        FilterRegistry::instance().setKind("prefetch filter");
        OffchipRegistry::instance().setKind("off-chip predictor");
        detail::registerNextLinePrefetcher();
        detail::registerIpcpPrefetcher();
        detail::registerBertiPrefetcher();
        detail::registerSppPrefetcher();
        detail::registerPpfFilter();
        detail::registerSlpFilter();
        detail::registerOffchipPredictors();
    });
}

} // namespace

PrefetcherRegistry &
prefetcherRegistry()
{
    ensureBuiltins();
    return PrefetcherRegistry::instance();
}

FilterRegistry &
filterRegistry()
{
    ensureBuiltins();
    return FilterRegistry::instance();
}

OffchipRegistry &
offchipRegistry()
{
    ensureBuiltins();
    return OffchipRegistry::instance();
}

std::string
knobReference(const std::string &component)
{
    ensureBuiltins();
    std::string out;
    bool found = false;
    auto sweep = [&](const auto &reg) {
        for (const std::string &name : reg.names()) {
            if (!component.empty() && name != component)
                continue;
            if (!out.empty())
                out += "\n";
            out += reg.kind() + " " + name + "\n";
            if (const KnobSchema *ks = reg.knobs(name); ks != nullptr)
                out += ks->reference();
            else
                out += "  (knobs not declared)\n";
            found = true;
        }
    };
    sweep(prefetcherRegistry());
    sweep(filterRegistry());
    sweep(offchipRegistry());
    if (!component.empty() && !found) {
        throw ConfigError(
            "unknown component '" + component + "'; valid names: "
            + prefetcherRegistry().namesLine() + ", "
            + filterRegistry().namesLine() + ", "
            + offchipRegistry().namesLine());
    }
    return out;
}

const char *
toString(L1Prefetcher p)
{
    switch (p) {
      case L1Prefetcher::None: return "no";
      case L1Prefetcher::NextLine: return "next_line";
      case L1Prefetcher::Ipcp: return "ipcp";
      case L1Prefetcher::Berti: return "berti";
    }
    return "?";
}

const char *
toString(L2Prefetcher p)
{
    switch (p) {
      case L2Prefetcher::None: return "no";
      case L2Prefetcher::Spp: return "spp";
      case L2Prefetcher::SppAggressive: return "spp_aggressive";
    }
    return "?";
}

std::unique_ptr<Prefetcher>
makeL1Prefetcher(L1Prefetcher kind, unsigned table_scale_shift)
{
    if (kind == L1Prefetcher::None)
        return nullptr;
    const char *name = toString(kind);
    Config cfg;
    // Not every L1 prefetcher has tables to scale (next_line): only pass
    // the knob where it is declared, matching the Simulator's injection.
    const KnobSchema *ks = prefetcherRegistry().knobs(name);
    if (ks != nullptr && ks->contains("table_scale_shift"))
        cfg.set("table_scale_shift", table_scale_shift);
    return prefetcherRegistry().build(name, cfg);
}

std::unique_ptr<Prefetcher>
makeL2Prefetcher(L2Prefetcher kind)
{
    if (kind == L2Prefetcher::None)
        return nullptr;
    Config cfg;
    cfg.set("aggressive", kind == L2Prefetcher::SppAggressive);
    return prefetcherRegistry().build("spp", cfg);
}

} // namespace tlpsim
