#include "prefetch/factory.hh"

#include <mutex>

namespace tlpsim
{

namespace
{

/** Register every built-in component exactly once. */
void
ensureBuiltins()
{
    static std::once_flag once;
    std::call_once(once, [] {
        PrefetcherRegistry::instance().setKind("prefetcher");
        FilterRegistry::instance().setKind("prefetch filter");
        OffchipRegistry::instance().setKind("off-chip predictor");
        detail::registerNextLinePrefetcher();
        detail::registerIpcpPrefetcher();
        detail::registerBertiPrefetcher();
        detail::registerSppPrefetcher();
        detail::registerPpfFilter();
        detail::registerSlpFilter();
        detail::registerOffchipPredictors();
    });
}

} // namespace

PrefetcherRegistry &
prefetcherRegistry()
{
    ensureBuiltins();
    return PrefetcherRegistry::instance();
}

FilterRegistry &
filterRegistry()
{
    ensureBuiltins();
    return FilterRegistry::instance();
}

OffchipRegistry &
offchipRegistry()
{
    ensureBuiltins();
    return OffchipRegistry::instance();
}

const char *
toString(L1Prefetcher p)
{
    switch (p) {
      case L1Prefetcher::None: return "no";
      case L1Prefetcher::NextLine: return "next_line";
      case L1Prefetcher::Ipcp: return "ipcp";
      case L1Prefetcher::Berti: return "berti";
    }
    return "?";
}

const char *
toString(L2Prefetcher p)
{
    switch (p) {
      case L2Prefetcher::None: return "no";
      case L2Prefetcher::Spp: return "spp";
      case L2Prefetcher::SppAggressive: return "spp_aggressive";
    }
    return "?";
}

std::unique_ptr<Prefetcher>
makeL1Prefetcher(L1Prefetcher kind, unsigned table_scale_shift)
{
    if (kind == L1Prefetcher::None)
        return nullptr;
    Config cfg;
    cfg.set("table_scale_shift", table_scale_shift);
    return prefetcherRegistry().build(toString(kind), cfg);
}

std::unique_ptr<Prefetcher>
makeL2Prefetcher(L2Prefetcher kind)
{
    if (kind == L2Prefetcher::None)
        return nullptr;
    Config cfg;
    cfg.set("aggressive", kind == L2Prefetcher::SppAggressive);
    return prefetcherRegistry().build("spp", cfg);
}

} // namespace tlpsim
