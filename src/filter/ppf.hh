/**
 * @file
 * PPF — Perceptron-based Prefetch Filter (Bhatia et al., ISCA 2019), the
 * state-of-the-art prefetch filter the paper compares against.
 *
 * PPF sits at the L2 on top of SPP. Every SPP candidate is scored by a
 * perceptron over SPP-visible features (PC, address bits, deltas,
 * signature, path confidence, depth); two thresholds decide between
 * prefetch-into-L2, demote-to-LLC, and reject. Issued and rejected
 * candidates are remembered in small direct-mapped recording tables so
 * later demand traffic can supply the training labels:
 *   - demand hit on a prefetched block  → the accept was right;
 *   - prefetched block evicted unused   → the accept was wrong;
 *   - demand miss matching a rejection  → the reject was wrong.
 *
 * Per the paper (§II-B), PPF costs ~40 KB — an order of magnitude more
 * than the whole of TLP — which bench/table2_storage reproduces.
 */

#ifndef TLPSIM_FILTER_PPF_HH
#define TLPSIM_FILTER_PPF_HH

#include <string>
#include <vector>

#include "common/stats.hh"
#include "offchip/perceptron.hh"
#include "prefetch/prefetcher.hh"

namespace tlpsim
{

class Ppf : public PrefetchFilter
{
  public:
    struct Params
    {
        std::string name = "ppf";
        int tau_accept = 0;      ///< sum ≥ this: prefetch into L2
        int tau_reject = -16;    ///< sum < this: drop entirely
        int training_threshold = 32;
        unsigned prefetch_table_entries = 1024;
        unsigned reject_table_entries = 1024;
    };

    Ppf(const Params &p, StatGroup *stats);

    const char *name() const override { return "ppf"; }

    bool allow(const PrefetchTrigger &trigger, Addr pf_vaddr, Addr pf_paddr,
               std::uint32_t pf_metadata, std::uint8_t &fill_level,
               PredictionMeta &meta) override;

    void onDemandHitPrefetched(Addr paddr, Addr ip) override;
    void onPrefetchedEvictUnused(Addr paddr) override;
    void onDemandMiss(Addr paddr, Addr ip) override;

    StorageBudget storage() const override;

  private:
    /** Feature-index snapshot parked in a recording table. */
    struct Record
    {
        Addr block = 0;
        bool valid = false;
        std::array<std::uint16_t, kMaxFeatures> index{};
        std::int16_t sum = 0;
    };

    void computeIndices(const PrefetchTrigger &trigger, Addr pf_paddr,
                        std::uint32_t pf_metadata, std::uint16_t *out) const;
    Record *findRecord(std::vector<Record> &table, Addr paddr);
    void insertRecord(std::vector<Record> &table, Addr paddr,
                      const std::uint16_t *index, int sum);

    Params params_;
    HashedPerceptron perceptron_;
    std::vector<Record> prefetch_table_;
    std::vector<Record> reject_table_;

    Counter *accepted_l2_;
    Counter *demoted_llc_;
    Counter *rejected_;
    Counter *train_useful_;
    Counter *train_useless_;
    Counter *train_missed_reject_;
};

} // namespace tlpsim

#endif // TLPSIM_FILTER_PPF_HH
