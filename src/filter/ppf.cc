#include "filter/ppf.hh"

#include "common/bitops.hh"
#include "prefetch/factory.hh"
#include "prefetch/spp.hh"

namespace tlpsim
{

namespace
{

/** PPF's nine features, all derivable from SPP-visible state. */
constexpr unsigned kNumPpfFeatures = 9;

std::vector<HashedPerceptron::TableSpec>
ppfTables()
{
    // 4096-entry tables of 5-bit weights ≈ the paper's ~40 KB budget.
    return {
        {"ppf.base_addr", 4096},   {"ppf.line_offset", 4096},
        {"ppf.page_addr", 4096},   {"ppf.pc", 4096},
        {"ppf.pc_xor_delta", 4096}, {"ppf.pc_xor_offset", 4096},
        {"ppf.signature", 4096},   {"ppf.confidence", 4096},
        {"ppf.depth_xor_offset", 4096},
    };
}

} // namespace

Ppf::Ppf(const Params &p, StatGroup *stats)
    : params_(p),
      perceptron_(p.name, ppfTables(), p.training_threshold),
      prefetch_table_(p.prefetch_table_entries),
      reject_table_(p.reject_table_entries),
      accepted_l2_(stats->counter(p.name + ".accepted_l2")),
      demoted_llc_(stats->counter(p.name + ".demoted_llc")),
      rejected_(stats->counter(p.name + ".rejected")),
      train_useful_(stats->counter(p.name + ".train_useful")),
      train_useless_(stats->counter(p.name + ".train_useless")),
      train_missed_reject_(stats->counter(p.name + ".train_missed_reject"))
{
}

void
Ppf::computeIndices(const PrefetchTrigger &trigger, Addr pf_paddr,
                    std::uint32_t pf_metadata, std::uint16_t *out) const
{
    unsigned conf = SppPrefetcher::metaConfidence(pf_metadata);
    std::uint16_t sig = SppPrefetcher::metaSignature(pf_metadata);
    unsigned depth = SppPrefetcher::metaDepth(pf_metadata);

    Addr line = blockNumber(pf_paddr);
    std::int64_t delta = static_cast<std::int64_t>(blockNumber(pf_paddr))
        - static_cast<std::int64_t>(blockNumber(trigger.paddr));
    std::uint64_t values[kNumPpfFeatures] = {
        line,
        lineOffsetInPage(pf_paddr),
        pageNumber(pf_paddr),
        trigger.ip,
        trigger.ip ^ static_cast<std::uint64_t>(delta),
        trigger.ip ^ lineOffsetInPage(pf_paddr),
        sig,
        conf,
        (std::uint64_t{depth} << 6) ^ lineOffsetInPage(pf_paddr),
    };
    for (unsigned t = 0; t < kNumPpfFeatures; ++t)
        out[t] = perceptron_.indexFor(t, values[t]);
}

bool
Ppf::allow(const PrefetchTrigger &trigger, Addr pf_vaddr, Addr pf_paddr,
           std::uint32_t pf_metadata, std::uint8_t &fill_level,
           PredictionMeta &meta)
{
    (void)pf_vaddr;
    std::uint16_t index[kNumPpfFeatures];
    computeIndices(trigger, pf_paddr, pf_metadata, index);
    int sum = perceptron_.predict(index, kNumPpfFeatures);

    meta.valid = false;   // PPF keeps its own records; packets carry none

    if (sum < params_.tau_reject) {
        rejected_->add();
        insertRecord(reject_table_, pf_paddr, index, sum);
        return false;
    }
    insertRecord(prefetch_table_, pf_paddr, index, sum);
    if (sum >= params_.tau_accept) {
        accepted_l2_->add();
        // keep the prefetcher's requested fill level (L2 or better)
    } else {
        demoted_llc_->add();
        fill_level = 3;   // low confidence: stash in the LLC only
    }
    return true;
}

Ppf::Record *
Ppf::findRecord(std::vector<Record> &table, Addr paddr)
{
    Record &r = table[blockNumber(paddr) & (table.size() - 1)];
    if (r.valid && r.block == blockNumber(paddr))
        return &r;
    return nullptr;
}

void
Ppf::insertRecord(std::vector<Record> &table, Addr paddr,
                  const std::uint16_t *index, int sum)
{
    Record &r = table[blockNumber(paddr) & (table.size() - 1)];
    r.block = blockNumber(paddr);
    r.valid = true;
    std::copy(index, index + kNumPpfFeatures, r.index.begin());
    r.sum = static_cast<std::int16_t>(sum);
}

void
Ppf::onDemandHitPrefetched(Addr paddr, Addr ip)
{
    (void)ip;
    if (Record *r = findRecord(prefetch_table_, paddr)) {
        train_useful_->add();
        perceptron_.train(r->index.data(), kNumPpfFeatures, r->sum, true,
                          params_.tau_accept);
        r->valid = false;
    }
}

void
Ppf::onPrefetchedEvictUnused(Addr paddr)
{
    if (Record *r = findRecord(prefetch_table_, paddr)) {
        train_useless_->add();
        perceptron_.train(r->index.data(), kNumPpfFeatures, r->sum, false,
                          params_.tau_accept);
        r->valid = false;
    }
}

void
Ppf::onDemandMiss(Addr paddr, Addr ip)
{
    (void)ip;
    if (Record *r = findRecord(reject_table_, paddr)) {
        // We rejected a prefetch that demand traffic wanted: train
        // strongly toward accepting.
        train_missed_reject_->add();
        perceptron_.train(r->index.data(), kNumPpfFeatures, r->sum, true,
                          params_.tau_accept);
        r->valid = false;
    }
}

StorageBudget
Ppf::storage() const
{
    StorageBudget b;
    b.merge(perceptron_.storage(), "");
    // Recording tables: block tag (~26 bits) + 9 indices × 12 bits + sum.
    std::uint64_t per_record = 26 + kNumPpfFeatures * 12 + 10;
    b.add(params_.name + ".prefetch_table",
          prefetch_table_.size() * per_record);
    b.add(params_.name + ".reject_table", reject_table_.size() * per_record);
    return b;
}

namespace
{

const KnobSchema &
ppfKnobs()
{
    static const KnobSchema schema = [] {
        const Ppf::Params d;
        return KnobSchema{
            {"name", d.name, "stat-counter prefix (per-cpu by default)"},
            {"tau_accept", d.tau_accept,
             "perceptron sum >= this: prefetch fills L2"},
            {"tau_reject", d.tau_reject,
             "perceptron sum < this: prefetch dropped entirely"},
            {"training_threshold", d.training_threshold,
             "train while |sum| is below this magnitude"},
            {"prefetch_table_entries", d.prefetch_table_entries,
             "issued-prefetch recording table entries"},
            {"reject_table_entries", d.reject_table_entries,
             "rejected-prefetch recording table entries"},
        };
    }();
    return schema;
}

} // namespace

void
detail::registerPpfFilter()
{
    FilterRegistry::instance().add(
        "ppf", ppfKnobs(), [](const Config &cfg, StatGroup *stats) {
            Knobs k(cfg, ppfKnobs(), "prefetch filter 'ppf'");
            Ppf::Params p;
            p.name = k.str("name");
            p.tau_accept = k.i32("tau_accept");
            p.tau_reject = k.i32("tau_reject");
            p.training_threshold = k.i32("training_threshold");
            p.prefetch_table_entries = k.u32("prefetch_table_entries");
            p.reject_table_entries = k.u32("reject_table_entries");
            return std::make_unique<Ppf>(p, stats);
        });
}

} // namespace tlpsim
