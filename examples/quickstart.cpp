/**
 * @file
 * Quickstart: build a workload trace, simulate the Table III baseline and
 * TLP on a single core, and print the headline metrics (IPC, MPKI, DRAM
 * transactions, prefetch accuracy).
 *
 * This is the 60-second tour of the public API:
 *   1. pick a workload        (tlpsim::workloads)
 *   2. pick a configuration   (tlpsim::SystemConfig / SchemeConfig)
 *   3. run                    (tlpsim::experiment::runSingleCore)
 *   4. read the results       (tlpsim::SimResult)
 */

#include <cstdio>

#include "sim/experiment.hh"

using namespace tlpsim;

int
main()
{
    // 1. Workloads: use the tiny set so the example finishes in seconds.
    auto specs = workloads::singleCoreWorkloads(workloads::SetSize::Tiny);
    const auto &workload = specs.front();   // bfs on a Kronecker graph
    std::printf("workload: %s (%s suite)\n", workload.name.c_str(),
                toString(workload.suite));

    // 2. Configuration: Cascade Lake-like single core with IPCP at L1D.
    SystemConfig cfg = SystemConfig::cascadeLake(1);
    cfg.warmup_instrs = 50'000;
    cfg.sim_instrs = 200'000;
    cfg.l1_prefetcher = "ipcp";   // registry name (see prefetcherRegistry())

    // 3/4. Run baseline vs TLP and compare.
    cfg.scheme = SchemeConfig::baseline();
    SimResult base = experiment::runSingleCore(workload, cfg);

    cfg.scheme = SchemeConfig::tlp();
    SimResult tlp = experiment::runSingleCore(workload, cfg);

    std::printf("\n%-28s %12s %12s\n", "metric", "baseline", "tlp");
    std::printf("%-28s %12.3f %12.3f\n", "IPC", base.ipc[0], tlp.ipc[0]);
    std::printf("%-28s %12.1f %12.1f\n", "L1D MPKI", base.mpki("l1d"),
                tlp.mpki("l1d"));
    std::printf("%-28s %12.1f %12.1f\n", "L2C MPKI", base.mpki("l2c"),
                tlp.mpki("l2c"));
    std::printf("%-28s %12.1f %12.1f\n", "LLC MPKI", base.mpki("llc"),
                tlp.mpki("llc"));
    std::printf("%-28s %12llu %12llu\n", "DRAM transactions",
                static_cast<unsigned long long>(base.dramTransactions()),
                static_cast<unsigned long long>(tlp.dramTransactions()));
    std::printf("%-28s %11.1f%% %11.1f%%\n", "L1D prefetch accuracy",
                base.l1dPrefetchAccuracy() * 100.0,
                tlp.l1dPrefetchAccuracy() * 100.0);
    std::printf("%-28s %12s %11.1f%%\n", "speedup", "-",
                experiment::percentDelta(tlp.ipc[0], base.ipc[0]));
    return 0;
}
