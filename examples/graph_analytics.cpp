/**
 * @file
 * Graph-analytics scenario: the workload class that motivates the paper.
 *
 * Runs BFS and PageRank on a Kronecker (power-law) graph under the
 * baseline, Hermes, and TLP, and reports the metrics the paper's intro
 * leads with: DRAM transactions, prefetch accuracy, and speedup. Also
 * shows how to drive the workload layer directly (build your own graph,
 * record your own trace) instead of using the named workload sets.
 */

#include <cstdio>

#include "sim/experiment.hh"
#include "workloads/gap_kernels.hh"
#include "workloads/graph.hh"

using namespace tlpsim;
using namespace tlpsim::workloads;

int
main()
{
    // Build a power-law graph directly (2^14 vertices keeps this example
    // fast; bump the scale to see DRAM pressure grow).
    std::printf("building kron graph (2^14 vertices)...\n");
    Graph graph = makeGraph(GraphKind::Kron, 14, 8, 42);
    std::printf("  %u vertices, %llu directed edges, max degree %llu\n",
                graph.numVertices(),
                static_cast<unsigned long long>(graph.numEdges()),
                static_cast<unsigned long long>(graph.maxDegree()));

    for (GapKernel kernel : {GapKernel::Bfs, GapKernel::Pr}) {
        // Record the kernel into a trace by hand.
        Trace trace(toString(kernel));
        TraceRecorder::Options opt;
        opt.max_instrs = 400'000;
        TraceRecorder rec(trace, opt);
        recordGapKernel(kernel, graph, rec, 7);
        auto s = trace.summarize();
        std::printf("\n== %s: %llu instrs, %llu loads, %.1f MB touched\n",
                    toString(kernel),
                    static_cast<unsigned long long>(s.instrs),
                    static_cast<unsigned long long>(s.loads),
                    s.working_set_mb);

        SystemConfig cfg = SystemConfig::cascadeLake(1);
        cfg.warmup_instrs = 80'000;
        cfg.sim_instrs = 250'000;

        std::printf("  %-10s %8s %10s %8s %9s\n", "scheme", "IPC",
                    "DRAM txns", "pf acc", "speedup");
        double base_ipc = 0.0;
        for (const SchemeConfig &scheme :
             {SchemeConfig::baseline(), SchemeConfig::hermes(),
              SchemeConfig::tlp()}) {
            cfg.scheme = scheme;
            Simulator sim(cfg, {&trace});
            SimResult r = sim.run();
            if (scheme.name == "baseline")
                base_ipc = r.ipc[0];
            std::printf("  %-10s %8.3f %10llu %7.1f%% %+8.1f%%\n",
                        scheme.name.c_str(), r.ipc[0],
                        static_cast<unsigned long long>(
                            r.dramTransactions()),
                        r.l1dPrefetchAccuracy() * 100.0,
                        experiment::percentDelta(r.ipc[0], base_ipc));
        }
    }
    return 0;
}
