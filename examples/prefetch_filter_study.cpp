/**
 * @file
 * Prefetch-filtering study: watch SLP work.
 *
 * Runs an irregular pointer-heavy workload (deepsjeng-like transposition
 * table) and a regular streaming workload (lbm-like stencil) with IPCP at
 * L1D, comparing no filter vs SLP. Prints the filter's own view: how many
 * candidates it allowed/dropped, its training accuracy, and what that did
 * to prefetch usefulness and DRAM traffic — Finding 4 in action, plus the
 * streaming case where a good filter must get out of the way.
 */

#include <cstdio>

#include "sim/experiment.hh"

using namespace tlpsim;
using namespace tlpsim::workloads;

int
main()
{
    for (SpecKernel kernel :
         {SpecKernel::DeepsjengTt, SpecKernel::LbmStencil}) {
        WorkloadSpec w;
        w.name = toString(kernel);
        w.suite = Suite::Spec;
        w.record = [kernel](TraceRecorder &rec, std::uint64_t seed) {
            recordSpecKernel(kernel, rec, seed, 2);
        };

        std::printf("\n==== workload: %s ====\n", w.name.c_str());
        SystemConfig cfg = SystemConfig::cascadeLake(1);
        cfg.warmup_instrs = 80'000;
        cfg.sim_instrs = 250'000;

        for (bool use_slp : {false, true}) {
            cfg.scheme = use_slp ? SchemeConfig::tlp()
                                 : SchemeConfig::baseline();
            SimResult r = experiment::runSingleCore(w, cfg);

            std::printf("\n  [%s]\n", use_slp ? "TLP (SLP filter on)"
                                              : "baseline (no filter)");
            std::printf("    IPC                 : %.3f\n", r.ipc[0]);
            std::printf("    DRAM transactions   : %llu\n",
                        static_cast<unsigned long long>(
                            r.dramTransactions()));
            std::printf("    L1D pf issued       : %llu\n",
                        static_cast<unsigned long long>(
                            r.stat("cpu0.l1d.pf_issued")));
            std::printf("    L1D pf useful       : %llu\n",
                        static_cast<unsigned long long>(
                            r.stat("cpu0.l1d.pf_useful")));
            std::printf("    L1D pf useless      : %llu\n",
                        static_cast<unsigned long long>(
                            r.stat("cpu0.l1d.pf_useless")));
            std::printf("    L1D pf accuracy     : %.1f%%\n",
                        r.l1dPrefetchAccuracy() * 100.0);
            if (use_slp) {
                std::printf("    SLP allowed/dropped : %llu / %llu "
                            "(+%llu probation)\n",
                            static_cast<unsigned long long>(
                                r.stat("cpu0.slp.allowed")),
                            static_cast<unsigned long long>(
                                r.stat("cpu0.slp.dropped")),
                            static_cast<unsigned long long>(
                                r.stat("cpu0.slp.probation")));
                std::printf("    SLP train right/wrong: %llu / %llu\n",
                            static_cast<unsigned long long>(
                                r.stat("cpu0.slp.train_correct")),
                            static_cast<unsigned long long>(
                                r.stat("cpu0.slp.train_wrong")));
            }
        }
    }
    std::printf("\ntakeaway: on the irregular table workload SLP drops "
                "most prefetches (they'd come from DRAM and miss), "
                "cutting DRAM traffic; on the stream it learns the "
                "prefetches are serviced on-chip and lets them "
                "through.\n");
    return 0;
}
