/**
 * @file
 * Off-chip predictor playground: drive an FLP instance by hand, outside
 * the simulator, and watch its confusion matrix evolve.
 *
 * A synthetic load stream mixes three behaviours: a pointer-chase PC that
 * always misses to DRAM, a hot-loop PC that always hits, and a "warming"
 * PC that starts off-chip and becomes cache-resident halfway through —
 * showing the perceptron adapt. Demonstrates the raw predictor API
 * (predictLoad / train) and the selective-delay decision split.
 */

#include <cstdio>

#include "common/rng.hh"
#include "common/stats.hh"
#include "offchip/offchip_predictor.hh"

using namespace tlpsim;

int
main()
{
    StatGroup stats("playground");
    OffChipPredictor::Params params;
    params.name = "flp";
    params.policy = OffchipPolicy::Selective;
    params.tau_high = 30;
    params.tau_low = 8;
    OffChipPredictor flp(params, &stats);

    Rng rng(99);
    constexpr Addr kChasePc = 0x401000;
    constexpr Addr kHotPc = 0x402000;
    constexpr Addr kWarmPc = 0x403000;
    constexpr int kPhase = 20'000;

    struct Window
    {
        int tp = 0, fp = 0, tn = 0, fn = 0, now = 0, delayed = 0;
        void
        report(const char *label)
        {
            int total = tp + fp + tn + fn;
            std::printf("  %-18s acc=%5.1f%%  spec_now=%5d delayed=%5d  "
                        "(tp=%d fp=%d tn=%d fn=%d)\n",
                        label,
                        total ? 100.0 * (tp + tn) / total : 0.0, now,
                        delayed, tp, fp, tn, fn);
            *this = Window{};
        }
    } win;

    std::printf("phase 1: chase PC off-chip, hot PC on-chip, warm PC "
                "off-chip\n");
    for (int i = 0; i < 2 * kPhase; ++i) {
        if (i == kPhase) {
            win.report("end of phase 1:");
            std::printf("phase 2: warm PC becomes cache-resident\n");
        }
        Addr pc;
        bool offchip;
        switch (rng.below(3)) {
          case 0:
            pc = kChasePc;
            offchip = true;
            break;
          case 1:
            pc = kHotPc;
            offchip = false;
            break;
          default:
            pc = kWarmPc;
            offchip = i < kPhase;   // flips at the phase boundary
        }
        Addr va = (Addr{1} << 32) + rng.below(1 << 18) * 64;
        auto d = flp.predictLoad(pc, va);
        flp.train(d.meta, offchip);
        win.tp += d.predicted_offchip && offchip;
        win.fp += d.predicted_offchip && !offchip;
        win.tn += !d.predicted_offchip && !offchip;
        win.fn += !d.predicted_offchip && offchip;
        win.now += d.spec_now;
        win.delayed += d.delayed_flag;
    }
    win.report("end of phase 2:");

    std::printf("\npredictor storage:\n%s",
                flp.storage().toTable("FLP budget (paper: 3.21 KB)")
                    .c_str());
    std::printf("\ntakeaway: high-confidence chase loads fire immediate "
                "speculative requests; ambiguous ones get the delayed "
                "flag (resolved at L1D miss); the phase flip is "
                "relearned within a few thousand loads.\n");
    return 0;
}
