#!/usr/bin/env python3
"""CI perf-regression gate over bench/perf_smoke.

Runs perf_smoke several times (default 3), takes the median of the
single-worker throughput metric (sim_kcycles_per_s_jobs1 — the jobs=N
number depends on the runner's core count and is tracked separately by
the CI summary), and compares it against the committed baseline in
bench/perf_baseline.json. A drop of more than the baseline's tolerance
(default 10%) fails the gate with a non-zero exit.

The gate prints an old-vs-new table to stdout and, when running under
GitHub Actions ($GITHUB_STEP_SUMMARY set), appends the same table to the
job summary. Host metadata recorded by perf_smoke (compiler, build type,
hardware threads) is compared against the baseline's record: mismatches
are surfaced as warnings, not failures, since a toolchain bump is the
usual legitimate reason for a baseline refresh.

Refresh the baseline (see README):   python3 tools/perf_gate.py --update
Negative self-test hook:             --scale 0.8 emulates a 25% slowdown
(measured value is multiplied by the factor before comparison), so CI can
prove the gate still fails on a seeded regression.
"""

import argparse
import json
import os
import statistics
import subprocess
import sys

METRIC = "sim_kcycles_per_s_jobs1"
META_KEYS = ("compiler", "build_type", "hw_threads")


def run_once(bench, cwd):
    """Run perf_smoke once and return its parsed JSON record."""
    proc = subprocess.run([bench], cwd=cwd, stdout=subprocess.PIPE,
                          stderr=subprocess.DEVNULL, check=False)
    if proc.returncode != 0:
        sys.exit("perf_gate: %s exited %d" % (bench, proc.returncode))
    # The JSON record is the last non-empty stdout line (perf_smoke also
    # writes BENCH_sweep.json, but parsing stdout keeps the gate
    # independent of the working directory).
    lines = [l for l in proc.stdout.decode().splitlines() if l.strip()]
    if not lines:
        sys.exit("perf_gate: %s produced no output" % bench)
    try:
        rec = json.loads(lines[-1])
    except ValueError:
        sys.exit("perf_gate: could not parse perf_smoke JSON: %r"
                 % lines[-1])
    if not rec.get("identical_stats", False):
        sys.exit("perf_gate: perf_smoke reported non-identical stats")
    return rec


def emit(table):
    print(table)
    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a") as f:
            f.write(table + "\n")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--bench", default="./build/perf_smoke",
                    help="perf_smoke binary (default ./build/perf_smoke)")
    ap.add_argument("--baseline", default="bench/perf_baseline.json",
                    help="committed baseline file")
    ap.add_argument("--runs", type=int, default=3,
                    help="runs to take the median over (default 3)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from this host's median "
                         "instead of gating")
    ap.add_argument("--scale", type=float, default=1.0,
                    help="multiply the measured median by this factor "
                         "before comparing (negative self-test hook)")
    args = ap.parse_args()

    records = [run_once(args.bench, os.getcwd())
               for _ in range(max(1, args.runs))]
    values = [float(r[METRIC]) for r in records]
    median = statistics.median(values) * args.scale
    meta = {k: records[-1].get(k) for k in META_KEYS}

    if args.update:
        baseline = {
            "metric": METRIC,
            "value": round(median, 1),
            "tolerance_pct": 10,
            "runs": len(values),
            "recorded": meta,
        }
        with open(args.baseline, "w") as f:
            json.dump(baseline, f, indent=2)
            f.write("\n")
        print("perf_gate: baseline updated: %s = %.1f (%s)"
              % (METRIC, median, args.baseline))
        return 0

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
    except OSError as e:
        sys.exit("perf_gate: cannot read baseline %s: %s"
                 % (args.baseline, e))
    old = float(baseline["value"])
    tol = float(baseline.get("tolerance_pct", 10))
    floor = old * (1.0 - tol / 100.0)
    ratio = median / old if old else 0.0
    ok = median >= floor

    for k in META_KEYS:
        want = baseline.get("recorded", {}).get(k)
        got = meta.get(k)
        if want is not None and got != want:
            print("perf_gate: warning: %s differs from baseline "
                  "(%r vs %r) — numbers may not be comparable; refresh "
                  "with --update if the toolchain change is deliberate"
                  % (k, got, want), file=sys.stderr)

    scaled = " (scaled x%.2f)" % args.scale if args.scale != 1.0 else ""
    table = "\n".join([
        "## perf gate — %s" % METRIC,
        "",
        "| | baseline | measured%s | ratio | floor (-%d%%) |" % (scaled,
                                                                 tol),
        "|---|---|---|---|---|",
        "| kcycles/s | %.1f | %.1f | %.2fx | %.1f |"
        % (old, median, ratio, floor),
        "",
        "runs: %s → median %.1f — **%s**"
        % (", ".join("%.1f" % v for v in values), median,
           "PASS" if ok else "FAIL: >%d%% regression" % tol),
    ])
    emit(table)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
