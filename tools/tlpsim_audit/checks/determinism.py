"""determinism — ban nondeterminism sources in simulation code.

The paper's tables are only reproducible because every design point is
bit-identical across jobs, shards, and store resumes. This checker bans
the constructs that silently break that contract:

  * wall-clock and OS entropy reads: time()/clock()/gettimeofday/
    clock_gettime, system_clock/steady_clock/high_resolution_clock,
    rand()/srand/random_device, getrandom, /dev/urandom;
  * pointer-keyed ordered containers (std::map/set over T*): iteration
    order follows allocation addresses, which ASLR reshuffles per run;
  * iteration over std::unordered_map/unordered_set: bucket order is
    implementation- and size-history-dependent, so any result-affecting
    walk must go through a sorted snapshot instead.

Scope: every .cc/.hh under src/ except the non-simulation surfaces
(src/cli/, src/store/ — drivers and persistence tooling may read
clocks; the watchdog in src/common/ carries explicit waivers instead,
because it lives in a module simulation code links). Deterministic
seeded PRNGs (common/rng.hh, std::mt19937 with a fixed seed) are
allowed: the hazard is entropy, not pseudo-randomness.
"""

import re

from ..findings import Finding, Report

EXEMPT_PREFIXES = ("src/cli/", "src/store/")

CHECK = "determinism"

# (regex over code-only text, message)
BANNED = [
    (re.compile(r"\b(?:std\s*::\s*)?s?rand\s*\("),
     "rand()/srand() is seeded per-process; use common/rng.hh"),
    (re.compile(r"\brandom_device\b"),
     "std::random_device reads OS entropy; use common/rng.hh with a "
     "fixed seed"),
    (re.compile(r"\b(?:system|steady|high_resolution)_clock\b"),
     "wall-clock read in simulation code; simulated time must come "
     "from the core's cycle counter"),
    (re.compile(r"\b(?:time|clock)\s*\(\s*(?:NULL|nullptr)?\s*\)"),
     "time()/clock() reads wall-clock time; simulated time must come "
     "from the core's cycle counter"),
    (re.compile(r"\b(?:gettimeofday|clock_gettime|getrandom)\s*\("),
     "OS time/entropy syscall in simulation code"),
]

URANDOM_RE = re.compile(r"/dev/u?random")

PTR_KEYED_RE = re.compile(
    r"\bstd\s*::\s*(?:multi)?(?:map|set)\s*<\s*(?:const\s+)?"
    r"[A-Za-z_][\w:]*\s*\*")

UNORDERED_DECL_RE = re.compile(
    r"\b(?:std\s*::\s*)?unordered_(?:multi)?(?:map|set)\s*<")
# `unordered_map<...> name;` / `... name{...};` / `... name = ...;`
UNORDERED_NAME_RE = re.compile(r">\s*(\w+)\s*(?:[;{=(]|$)")

RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;]*?):([^;)]*)\)")


def _unordered_vars(code):
    """Names declared in this file with an unordered container type."""
    names = set()
    for m in UNORDERED_DECL_RE.finditer(code):
        # Walk the template argument list to its closing '>'.
        i = m.end() - 1
        depth = 0
        while i < len(code):
            if code[i] == "<":
                depth += 1
            elif code[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        tail = code[i:i + 200]
        nm = UNORDERED_NAME_RE.match(tail)
        if nm:
            names.add(nm.group(1))
    return names


def run(project, files):
    report = Report()
    scanned = 0
    for rel, sf in sorted(files.items()):
        if not rel.startswith("src/"):
            continue
        if any(rel.startswith(p) for p in EXEMPT_PREFIXES):
            continue
        scanned += 1
        unordered = _unordered_vars(sf.code)
        for lineno, code in enumerate(sf.code_lines, start=1):
            raw = sf.lines[lineno - 1]
            for pattern, message in BANNED:
                if pattern.search(code):
                    report.add(Finding(CHECK, rel, lineno, message))
            if URANDOM_RE.search(raw):
                report.add(Finding(
                    CHECK, rel, lineno,
                    "/dev/(u)random read in simulation code"))
            if PTR_KEYED_RE.search(code):
                report.add(Finding(
                    CHECK, rel, lineno,
                    "pointer-keyed ordered container: iteration order "
                    "follows allocation addresses, which ASLR "
                    "reshuffles per run; key by a stable id instead"))
            for m in RANGE_FOR_RE.finditer(code):
                expr = m.group(2).strip().lstrip("&*").strip()
                root_var = re.split(r"[.\->\[(]", expr, maxsplit=1)[0] \
                    .strip()
                if root_var in unordered:
                    report.add(Finding(
                        CHECK, rel, lineno,
                        f"iteration over unordered container "
                        f"'{root_var}': bucket order is not "
                        f"deterministic; iterate a sorted snapshot, or "
                        f"waive if provably order-insensitive"))
            for name in unordered:
                if re.search(rf"\b{re.escape(name)}\s*\.\s*begin\s*\(",
                             code):
                    report.add(Finding(
                        CHECK, rel, lineno,
                        f"iterator walk over unordered container "
                        f"'{name}': bucket order is not deterministic; "
                        f"iterate a sorted snapshot, or waive if "
                        f"provably order-insensitive"))
    report.summary["determinism"] = {"files_scanned": scanned}
    return report
