"""layering — enforce the module include DAG + self-contained headers.

A future sharded simulator gets carved along module boundaries, which
only works while the boundaries are real. The first half of this
checker enforces the declared DAG over `#include "module/..."` edges:

    common <- {mem, trace, tlb, store}
           <- {prefetch, tracefile}
           <- {cache, offchip, workloads}
           <- {filter, core}
           <- sim
           <- cli

(ALLOWED below is the authoritative edge set; store is a leaf on
common that sim and cli may use — the Runner persists through it.)
Upward or sideways includes and modules absent from the DAG are
findings; the declared DAG itself is verified acyclic on every run, so
nobody can "fix" a finding by declaring a cycle.

The second half compiles every .hh under src/ standalone
(`<compiler> -fsyntax-only -x c++ header.hh` with the database's -std
and -I flags): a header that leans on its includer's includes breaks
refactors exactly when a module is moved across the DAG.
"""

import re
import subprocess
from concurrent.futures import ThreadPoolExecutor

from ..findings import Finding, Report

CHECK = "layering"

# module -> modules it may include (its own module is always allowed).
ALLOWED = {
    "common": set(),
    "mem": {"common"},
    "trace": {"common"},
    "tlb": {"common"},
    "store": {"common"},
    "prefetch": {"common", "mem"},
    "cache": {"common", "mem", "prefetch"},
    "offchip": {"common", "mem", "prefetch"},
    "filter": {"common", "mem", "prefetch", "offchip"},
    "tracefile": {"common", "trace"},
    "workloads": {"common", "trace", "tracefile"},
    "core": {"common", "mem", "offchip", "tlb", "trace"},
    "sim": {"common", "cache", "core", "filter", "mem", "offchip",
            "prefetch", "store", "tlb", "trace", "tracefile",
            "workloads"},
    "cli": {"common", "cache", "core", "filter", "mem", "offchip",
            "prefetch", "sim", "store", "tlb", "trace", "tracefile",
            "workloads"},
}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')


def _assert_acyclic():
    """Defensive: the *declared* DAG must itself be a DAG."""
    state = {}

    def visit(node, stack):
        state[node] = "visiting"
        for dep in ALLOWED.get(node, ()):
            if state.get(dep) == "visiting":
                raise AssertionError(
                    f"layering: declared module graph has a cycle "
                    f"through {' -> '.join(stack + [node, dep])}")
            if dep not in state:
                visit(dep, stack + [node])
        state[node] = "done"

    for node in ALLOWED:
        if node not in state:
            visit(node, [])


def _module_of(rel):
    parts = rel.split("/")
    if len(parts) >= 3 and parts[0] == "src":
        return parts[1]
    return None


def _check_includes(files, report):
    for rel, sf in sorted(files.items()):
        module = _module_of(rel)
        if module is None:
            continue
        if module not in ALLOWED:
            report.add(Finding(
                CHECK, rel, 1,
                f"module '{module}' is not in the declared DAG; add it "
                f"to layering.ALLOWED with its permitted dependencies"))
            continue
        for lineno, code in enumerate(sf.keep_lines, start=1):
            m = INCLUDE_RE.match(code)
            if not m or "/" not in m.group(1):
                continue
            target = m.group(1).split("/")[0]
            if target == module or target in ALLOWED[module]:
                continue
            if target not in ALLOWED:
                report.add(Finding(
                    CHECK, rel, lineno,
                    f"include of unknown module '{target}' "
                    f"(not in the declared DAG)"))
            else:
                report.add(Finding(
                    CHECK, rel, lineno,
                    f"module '{module}' may not include "
                    f"'{m.group(1)}': declared deps are "
                    f"{{{', '.join(sorted(ALLOWED[module])) or 'none'}}}"
                    f"; either invert the dependency or widen the DAG "
                    f"deliberately in layering.ALLOWED"))


FIRST_ERROR_RE = re.compile(r"^(.*?):(\d+):(?:\d+:)?\s*(?:fatal )?error:"
                            r"\s*(.*)$", re.M)


def _compile_header(project, header):
    cmd = [project.compiler]
    if project.std_flag:
        cmd.append(project.std_flag)
    for inc in project.include_dirs:
        cmd += ["-I", str(inc)]
    cmd += ["-fsyntax-only", "-x", "c++", str(header)]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode == 0:
        return None
    rel = project.rel(header)
    m = FIRST_ERROR_RE.search(proc.stderr)
    line = 1
    detail = proc.stderr.strip().splitlines()[:1]
    detail = detail[0] if detail else "compiler error"
    if m:
        detail = m.group(3)
        # Anchor to the header's own line when the error is in it.
        if project.rel(m.group(1)) == rel:
            line = int(m.group(2))
    return Finding(
        CHECK, rel, line,
        f"header is not self-contained "
        f"({project.compiler} -fsyntax-only): {detail}")


def _check_headers(project, files, report):
    headers = [project.root / rel for rel in sorted(files)
               if rel.endswith(".hh")]
    with ThreadPoolExecutor() as pool:
        for finding in pool.map(
                lambda h: _compile_header(project, h), headers):
            if finding:
                report.add(finding)
    return len(headers)


def run(project, files):
    _assert_acyclic()
    report = Report()
    _check_includes(files, report)
    compiled = _check_headers(project, files, report)
    report.summary["layering"] = {
        "modules": sorted(ALLOWED),
        "headers_compiled": compiled,
    }
    return report
