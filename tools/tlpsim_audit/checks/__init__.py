"""Checker registry for tlpsim-audit.

Each checker module exposes `run(project, files) -> Report`, where
`files` is {root-relative-path: SourceFile} for every .cc/.hh under
src/. Adding a check: write the module, add it to CHECKERS, document it
in the README's check catalog, and give it a pass + seeded-violation
fixture in selftest.py (the CI audit job refuses a checker whose seeded
violation does not fail).
"""

from . import determinism, layering, reset_audit, schema_drift

CHECKERS = {
    "determinism": determinism.run,
    "layering": layering.run,
    "schema": schema_drift.run,
    "reset": reset_audit.run,
}
