"""reset — registry-built components must fully initialize their state.

The Runner memoizes design points and reuses component instances'
*classes* across points: a component is rebuilt per simulation, so any
scalar data member that is neither brace-initialized at its declaration
(NSDMI) nor set in a constructor init list starts as whatever the
allocator left behind — a bug that only shows under particular
allocation histories, i.e. exactly the nondeterminism this suite
exists to kill.

Scope: every class a registry builder constructs (discovered via
`make_unique<Class>` in the TUs that call `Registry::instance().add`),
plus the nested structs declared inside those classes — table entries
live in pooled vectors and are reset by assignment, so a field without
an NSDMI default resurrects stale state on reuse (`e = IpEntry{};`
only resets what the struct initializes).

Scalar means: arithmetic types and their aliases (Addr, Cycle,
(u)intN_t, size_t), enums declared anywhere under src/, and raw
pointers. Members of class type are skipped — their default
constructors run unconditionally.
"""

import re

from ..findings import Finding, Report

CHECK = "reset"

ADD_SITE_RE = re.compile(r"Registry\s*::\s*instance\s*\(\)\s*\.\s*add\s*\(")
MAKE_UNIQUE_RE = re.compile(r"\bmake_unique\s*<\s*([\w:]+)\s*>")
ENUM_RE = re.compile(r"\benum\s+(?:class\s+|struct\s+)?(\w+)")

SCALAR_TYPES = {
    "bool", "char", "short", "int", "long", "unsigned", "signed",
    "float", "double", "size_t", "std::size_t", "ptrdiff_t",
    "std::ptrdiff_t", "Addr", "Cycle", "Tick",
}
SCALAR_TYPES |= {
    f"{ns}{base}{w}_t"
    for ns in ("", "std::")
    for base in ("int", "uint", "int_fast", "uint_fast",
                 "int_least", "uint_least")
    for w in (8, 16, 32, 64)
}

MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?([\w:]+(?:\s*<[^;()]*>)?(?:\s+[\w:]+)*?"
    r"(?:\s*\*+\s*|\s+))(\w+)(\s*\[[^\]]*\])?\s*(=[^;]*|\{[^;]*\})?;",
    re.M)

KEYWORD_STOP = {"return", "using", "typedef", "static", "constexpr",
                "friend", "public", "private", "protected", "case",
                "goto", "delete", "new", "throw", "else", "extern"}


def _matched_braces(code, open_pos):
    depth = 0
    for i in range(open_pos, len(code)):
        c = code[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return open_pos + 1, i
    return None


def _line_of(code, pos):
    return code.count("\n", 0, pos) + 1


def _strip_templates(text):
    """Blank template argument lists so member parsing sees flat decls."""
    out, depth = [], 0
    for c in text:
        if c == "<":
            depth += 1
            out.append("<")
        elif c == ">":
            depth = max(0, depth - 1)
            out.append(">")
        else:
            out.append(" " if depth and c != "\n" else c)
    return "".join(out)


def _built_classes(files):
    """Classes constructed by registry builders, with the build site."""
    classes = {}
    for rel, sf in sorted(files.items()):
        if not rel.endswith(".cc"):
            continue
        code = sf.keep
        if not ADD_SITE_RE.search(code):
            continue
        for m in MAKE_UNIQUE_RE.finditer(code):
            cls = m.group(1).split("::")[-1]
            classes.setdefault(cls, (rel, _line_of(code, m.start())))
    return classes


def _enums(files):
    names = set()
    for _, sf in files.items():
        names.update(ENUM_RE.findall(sf.keep))
    return names


def _is_scalar(type_text, enums):
    t = type_text.strip()
    if "*" in t:
        return True
    t = re.sub(r"\b(const|volatile|mutable)\b", " ", t).strip()
    t = re.sub(r"\s+", " ", t)
    if t in SCALAR_TYPES or all(
            w in SCALAR_TYPES or w in ("long", "unsigned", "signed",
                                       "short", "int", "char", "double")
            for w in t.split()):
        return True
    return t.split("::")[-1] in enums


def _body_statements(body):
    """Top-level statements of a class body: (text, offset) pairs,
    with nested brace blocks blanked (so methods/ nested types don't
    leak member-looking lines) but nested struct bodies returned
    separately as (name, inner, inner_offset)."""
    stmts = []
    nested = []
    i, start, n = 0, 0, len(body)
    while i < n:
        c = body[i]
        if c == "{":
            span = _matched_braces(body, i)
            if span is None:
                break
            head = body[start:i]
            sm = re.search(r"\b(?:struct|class)\s+(\w+)\s*(?::[^{]*)?$",
                           head)
            if sm:
                nested.append((sm.group(1), body[span[0]:span[1]],
                               span[0]))
            # Blank the block, keep line structure.
            blanked = re.sub(r"[^\n]", " ", body[i:span[1] + 1])
            body = body[:i] + blanked + body[span[1] + 1:]
            i = span[1] + 1
        elif c == ";":
            stmts.append((body[start:i + 1], start))
            start = i + 1
            i += 1
        else:
            i += 1
    return stmts, nested


def _members(body_text, base_offset):
    """Member declarations in a (possibly blanked) class/struct body:
    [(type, name, has_init, offset)]."""
    out = []
    flat = _strip_templates(body_text)
    # Access labels would otherwise be swallowed into the member type.
    flat = re.sub(r"\b(public|private|protected)\s*:",
                  lambda m: " " * len(m.group(0)), flat)
    for m in MEMBER_RE.finditer(flat):
        type_text, name, _array, init = (m.group(1), m.group(2),
                                         m.group(3), m.group(4))
        first_word = type_text.strip().split()[0].split("::")[0] \
            if type_text.strip() else ""
        if first_word in KEYWORD_STOP or name in KEYWORD_STOP:
            continue
        stmt = m.group(0)
        if "(" in stmt or ")" in stmt:
            continue  # function/ctor declaration
        # Anchor at the type, not the match start: the leading \s* can
        # swallow newlines and skew the reported line.
        out.append((m.group(1), name, init is not None,
                    base_offset + m.start(1)))
    return out


def _ctor_initialized(files, cls):
    """Names initialized in any constructor init list of @p cls
    (declaration-site or out-of-line `Cls::Cls(...) : a(..), b{..}`)."""
    inited = set()
    pattern = re.compile(
        rf"\b(?:{re.escape(cls)}\s*::\s*)?{re.escape(cls)}\s*\(")
    for _, sf in sorted(files.items()):
        code = sf.keep
        for m in pattern.finditer(code):
            # Find the end of the parameter list.
            depth, i = 0, m.end() - 1
            while i < len(code):
                if code[i] == "(":
                    depth += 1
                elif code[i] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            tail = code[i + 1:i + 1000]
            cm = re.match(r"\s*:\s*", tail)
            if not cm:
                continue
            # Walk init-list items up to the body brace.
            j = cm.end()
            while j < len(tail):
                im = re.match(r"\s*(\w+)\s*[({]", tail[j:])
                if not im:
                    break
                name = im.group(1)
                open_c = tail[j + im.end() - 1]
                close_c = ")" if open_c == "(" else "}"
                depth2, k = 0, j + im.end() - 1
                while k < len(tail):
                    if tail[k] == open_c:
                        depth2 += 1
                    elif tail[k] == close_c:
                        depth2 -= 1
                        if depth2 == 0:
                            break
                    k += 1
                if name != cls:  # delegating ctor target isn't a member
                    inited.add(name)
                j = k + 1
                nm = re.match(r"\s*,", tail[j:])
                if not nm:
                    break
                j += nm.end()
    return inited


def _audit_class(cls, site, files, enums, report):
    for rel, sf in sorted(files.items()):
        if not rel.endswith((".hh", ".h")):
            continue
        code = sf.keep
        cm = re.search(rf"\bclass\s+{re.escape(cls)}\b[^;{{]*\{{", code)
        if not cm:
            continue
        span = _matched_braces(code, cm.end() - 1)
        if not span:
            continue
        body = code[span[0]:span[1]]
        stmts, nested = _body_statements(body)
        ctor_inited = _ctor_initialized(files, cls)
        checked = 0
        flat_members = []
        for s, o in stmts:
            flat_members.extend(_members(s, o))
        for type_text, name, has_init, off in flat_members:
            if not _is_scalar(type_text, enums):
                continue
            checked += 1
            if has_init or name in ctor_inited:
                continue
            line = _line_of(code, span[0] + off)
            report.add(Finding(
                CHECK, rel, line,
                f"{cls}::{name} ({type_text.strip()}) has no NSDMI and "
                f"appears in no constructor init list; a rebuilt "
                f"component would start from stale memory "
                f"(built by the registry at {site[0]}:{site[1]})"))
        for nname, nbody, noff in nested:
            nstmts, _ = _body_statements(nbody)
            for s, o in nstmts:
                for type_text, name, has_init, off in _members(s, o):
                    if not _is_scalar(type_text, enums):
                        continue
                    checked += 1
                    if has_init:
                        continue
                    line = _line_of(code, span[0] + noff + off)
                    report.add(Finding(
                        CHECK, rel, line,
                        f"{cls}::{nname}::{name} "
                        f"({type_text.strip()}) has no NSDMI; pooled "
                        f"entries are reset by assignment, so an "
                        f"uninitialized field resurrects stale state "
                        f"on reuse"))
        return checked
    report.add(Finding(
        CHECK, site[0], site[1],
        f"registry-built class '{cls}' has no class definition in any "
        f"src/ header this audit can see"))
    return 0


def run(project, files):
    report = Report()
    enums = _enums(files)
    classes = _built_classes(files)
    checked = {}
    for cls, site in sorted(classes.items()):
        checked[cls] = _audit_class(cls, site, files, enums, report)
    report.summary["reset"] = {"classes": checked}
    return report
