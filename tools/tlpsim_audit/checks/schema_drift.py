"""schema — cross-check Params structs against registered KnobSchemas.

Every registered component pairs a `Params` struct (the C++ defaults)
with a `KnobSchema` (the declared, sweepable knob set). The runtime
already validates *configs* against the schema; what nothing checked
until now is the pair itself. Each Athena-style backend the ROADMAP
adds brings one more pair, so drift risk grows with the registry:

  * a Params field with no knob is untunable and invisible to --knobs;
  * a schema default written as a literal (instead of `d.<field>` off a
    default-constructed Params) can silently diverge from the struct
    initializer — the --knobs reference and the fingerprint expansion
    then lie about what a sweep actually ran;
  * a knob the builder never extracts is accepted from configs and
    silently dropped.

The checker lexically parses the registration idiom
(`<X>Registry::instance().add("name", <schema-fn>(), ...)`, schema
entries `{"knob", d.field, "desc"(, {choices})}`, extraction
`p.field = k.<ty>("knob")`), which is exactly the idiom the README
tells new backends to follow — a backend the checker cannot parse is
itself a finding, so the idiom stays uniform.

It also validates the shipped presets (configs/*.conf): component
slots must name registered components, subtree knob keys
(`scheme.offchip.<k>`, ...) must be declared by the named component's
schema, and `scheme.offchip_policy` values must be among the declared
choices.
"""

import re
from pathlib import Path

from ..findings import Finding, Report

CHECK = "schema"

ADD_RE = re.compile(
    r"(\w+)Registry\s*::\s*instance\s*\(\)\s*\.\s*add\s*\(\s*"
    r'"(\w+)"\s*,\s*(\w+)\s*\(\)')
SCHEMA_PARAMS_RE = re.compile(
    r"(?:const\s+)?([\w:]+)::Params\s*[&]?\s*d\b")
EXTRACT_RE = re.compile(
    r"\bk\s*\.\s*(str|i32|u32|u64|num|flag)\s*\(\s*\"(\w+)\"\s*\)")
ASSIGN_RE = re.compile(
    r"\bp\s*\.\s*(\w+)\s*=\s*[^;]*?"
    r"k\s*\.\s*(?:str|i32|u32|u64|num|flag)\s*\(\s*\"(\w+)\"\s*\)")
FIELD_RE = re.compile(
    r"^\s*([\w:<>,\s]+?[\w:>])\s+(\w+)\s*(=[^;]*|\{[^;]*\})?\s*;",
    re.M)
DEFAULT_FIELD_REF_RE = re.compile(r"\bd\s*\.\s*(\w+)\b")


def _line_of(code, pos):
    return code.count("\n", 0, pos) + 1


def _matched_braces(code, open_pos):
    """Return (inner_start, inner_end) of the {...} starting at
    @p open_pos, or None when unbalanced."""
    depth = 0
    for i in range(open_pos, len(code)):
        c = code[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return open_pos + 1, i
    return None


def _split_top_level(text, sep=","):
    """Split @p text on @p sep at bracket depth zero."""
    parts, depth, start = [], 0, 0
    for i, c in enumerate(text):
        if c in "{(<[":
            depth += 1
        elif c in "})>]":
            depth -= 1
        elif c == sep and depth == 0:
            parts.append(text[start:i])
            start = i + 1
    parts.append(text[start:])
    return [p.strip() for p in parts]


def _function_body(code, fn_name):
    """The brace-matched body of function @p fn_name in @p code (first
    definition wins), plus the offset of its opening brace."""
    for m in re.finditer(rf"\b{re.escape(fn_name)}\s*\(", code):
        # Skip the parameter list, then expect '{' (possibly after
        # lambda-wrapping noise we step over via brace matching).
        close = code.find(")", m.end() - 1)
        if close < 0:
            continue
        brace = code.find("{", close)
        semi = code.find(";", close)
        if brace < 0 or (0 <= semi < brace):
            continue  # declaration, not definition
        span = _matched_braces(code, brace)
        if span:
            return code[span[0]:span[1]], brace
    return None, None


def _schema_entries(body, body_offset, code):
    """Parse `{"knob", default, "desc"(, {choices})}` entries out of a
    KnobSchema body. Returns [(knob, default_expr, choices, line)]."""
    entries = []
    i = 0
    while True:
        k = re.compile(r'\{\s*"').search(body, i)
        if not k:
            break
        span = _matched_braces(body, k.start())
        if not span:
            break
        inner = body[span[0]:span[1]]
        i = span[1] + 1
        parts = _split_top_level(inner)
        if len(parts) < 2 or not parts[0].startswith('"'):
            continue
        knob = parts[0].strip().strip('"').strip()
        default_expr = parts[1].strip()
        choices = []
        for extra in parts[2:]:
            if extra.startswith("{"):
                choices = [c.strip().strip('"')
                           for c in _split_top_level(extra[1:-1])]
        entries.append((knob, default_expr, choices,
                        _line_of(code, body_offset + k.start())))
    return entries


def _params_fields(files, cls):
    """Fields of `struct Params` inside class @p cls, from whichever
    header declares it. Returns ({field: initializer-or-None}, rel,
    line) or (None, None, None)."""
    simple = cls.split("::")[-1]
    for rel, sf in sorted(files.items()):
        if not rel.endswith((".hh", ".h")):
            continue
        code = sf.keep
        cm = re.search(rf"\b(?:class|struct)\s+{re.escape(simple)}\b"
                       r"[^;{]*\{", code)
        if not cm:
            continue
        cspan = _matched_braces(code, cm.end() - 1)
        if not cspan:
            continue
        body = code[cspan[0]:cspan[1]]
        pm = re.search(r"\bstruct\s+Params\s*\{", body)
        if not pm:
            continue
        pspan = _matched_braces(body, pm.end() - 1)
        if not pspan:
            continue
        pbody = body[pspan[0]:pspan[1]]
        fields = {}
        for fm in FIELD_RE.finditer(pbody):
            ftype, name, init = fm.group(1).strip(), fm.group(2), \
                fm.group(3)
            if ftype.split()[-1] in ("struct", "class", "enum",
                                     "return", "using"):
                continue
            init_text = None
            if init:
                init_text = init.lstrip("=").strip().strip("{}").strip()
            fields[name] = init_text
        line = _line_of(code, cm.end() - 1 + pm.start())
        return fields, rel, line
    return None, None, None


REGISTRY_KIND = {
    "Prefetcher": "prefetcher",
    "Filter": "filter",
    "Offchip": "offchip",
}


def _discover_components(files):
    """All `<X>Registry::instance().add("name", schemaFn(), ...)` sites.

    Returns [{name, kind, schema_fn, rel, line, code, sf}]."""
    out = []
    for rel, sf in sorted(files.items()):
        if not rel.endswith(".cc"):
            continue
        for m in ADD_RE.finditer(sf.keep):
            out.append({
                "registry": m.group(1),
                "kind": REGISTRY_KIND.get(m.group(1), m.group(1)),
                "name": m.group(2),
                "schema_fn": m.group(3),
                "rel": rel,
                "line": _line_of(sf.keep, m.start()),
                "sf": sf,
            })
    return out


_NOT_CALLEES = {"return", "if", "while", "for", "switch", "sizeof",
                "KnobSchema", "KnobSpec", "static_cast", "toString"}


def _resolve_entries(code, fn, seen=None):
    """Schema entries of @p fn, following one level of helper calls
    (the offchip idiom: flpKnobs() -> offchipKnobSchema(d)). Returns
    (entries, outer_body) — entries None when @p fn has no definition
    here, empty when defined but unparsable."""
    seen = set() if seen is None else seen
    if fn in seen:
        return None, None
    seen.add(fn)
    body, offset = _function_body(code, fn)
    if body is None:
        return None, None
    entries = _schema_entries(body, offset, code)
    if entries:
        return entries, body
    for cm in re.finditer(r"\b(\w+)\s*\(", body):
        callee = cm.group(1)
        if callee in _NOT_CALLEES:
            continue
        sub, _ = _resolve_entries(code, callee, seen)
        if sub:
            return sub, body
    return [], body


def _audit_component(comp, files, report):
    sf, rel = comp["sf"], comp["rel"]
    code = sf.keep
    entries, body = _resolve_entries(code, comp["schema_fn"])
    if entries is None:
        report.add(Finding(
            CHECK, rel, comp["line"],
            f"component '{comp['name']}': schema function "
            f"'{comp['schema_fn']}' is not defined in this translation "
            f"unit; keep schema, builder, and registration together so "
            f"they can be audited"))
        return None

    if not entries:
        report.add(Finding(
            CHECK, rel, comp["line"],
            f"component '{comp['name']}': no parsable "
            f"{{\"knob\", default, \"desc\"}} entries in "
            f"'{comp['schema_fn']}'"))
        return None

    pm = SCHEMA_PARAMS_RE.search(body) or SCHEMA_PARAMS_RE.search(
        # offchip idiom: the entry list lives in a helper taking
        # `const X::Params &d`; find it through the call chain.
        code)
    params_cls = pm.group(1) if pm else None
    fields, fields_rel, fields_line = (None, None, None)
    if params_cls:
        fields, fields_rel, fields_line = _params_fields(files,
                                                         params_cls)

    extracted = {k for _, k in EXTRACT_RE.findall(code)}
    knob_to_field = dict()
    for fm in ASSIGN_RE.finditer(code):
        knob_to_field[fm.group(2)] = fm.group(1)

    knob_names = set()
    for knob, default_expr, choices, line in entries:
        knob_names.add(knob)
        ref = DEFAULT_FIELD_REF_RE.search(default_expr)
        if ref:
            if fields is not None and ref.group(1) not in fields:
                report.add(Finding(
                    CHECK, rel, line,
                    f"component '{comp['name']}': knob '{knob}' "
                    f"default reads d.{ref.group(1)}, which is not a "
                    f"field of {params_cls}::Params"))
        else:
            # Literal default. With a Params struct in play this is the
            # classic drift vector: the schema stops tracking the code.
            if fields is not None:
                field = knob_to_field.get(knob, knob)
                hint = (f"compare {params_cls}::Params.{field}"
                        if field in fields else
                        f"no matching {params_cls}::Params field "
                        f"either")
                report.add(Finding(
                    CHECK, rel, line,
                    f"component '{comp['name']}': knob '{knob}' "
                    f"default is the literal '{default_expr}' instead "
                    f"of being rendered from a default-constructed "
                    f"Params ({hint}); literals drift silently when "
                    f"the struct initializer changes"))
            elif params_cls is None:
                report.add(Finding(
                    CHECK, rel, line,
                    f"component '{comp['name']}': knob '{knob}' "
                    f"default is the literal '{default_expr}' and the "
                    f"component declares no Params struct; declare one "
                    f"so the schema default is rendered from the same "
                    f"value the constructor uses"))
        if knob not in extracted:
            report.add(Finding(
                CHECK, rel, line,
                f"component '{comp['name']}': knob '{knob}' is "
                f"declared but never extracted (no k.<type>(\"{knob}\") "
                f"in this translation unit): configs setting it are "
                f"accepted and silently ignored"))

    for knob in sorted(extracted - knob_names):
        # Knobs::expect throws at build time for this, but only when
        # the component is actually built; catch it statically.
        report.add(Finding(
            CHECK, rel, comp["line"],
            f"component '{comp['name']}': builder extracts undeclared "
            f"knob '{knob}'"))

    if fields is not None:
        covered = set(knob_to_field.values())
        for _, default_expr, _, _ in entries:
            ref = DEFAULT_FIELD_REF_RE.search(default_expr)
            if ref:
                covered.add(ref.group(1))
        for field in sorted(set(fields) - covered):
            report.add(Finding(
                CHECK, fields_rel, fields_line,
                f"component '{comp['name']}': {params_cls}::Params."
                f"{field} has no declared knob; it cannot be swept and "
                f"is invisible to --knobs (declare it, or waive with "
                f"the reason it must stay internal)"))

    return {
        "name": comp["name"],
        "kind": comp["kind"],
        "knobs": sorted(knob_names),
        "choices": {e[0]: e[2] for e in entries if e[2]},
        "params": params_cls,
    }


# Preset slot key -> registry kind its value must be registered in.
SLOT_KINDS = {
    "scheme.offchip": "offchip",
    "scheme.l1_filter": "filter",
    "scheme.l2_filter": "filter",
    "l1d.prefetcher": "prefetcher",
    "l2.prefetcher": "prefetcher",
}


def _audit_presets(project, components, report):
    by_name = {}
    for c in components:
        if c:
            by_name[(c["kind"], c["name"])] = c
    presets = sorted((project.root / "configs").glob("*.conf"))
    for preset in presets:
        rel = project.rel(preset)
        slot_values = {}
        keyvals = []
        for lineno, raw in enumerate(
                preset.read_text(encoding="utf-8").splitlines(),
                start=1):
            line = raw.split("#", 1)[0].strip()
            if "=" not in line:
                continue
            key, value = (s.strip() for s in line.split("=", 1))
            keyvals.append((key, value, lineno))
            if key in SLOT_KINDS:
                slot_values[key] = (value, lineno)

        for key, (value, lineno) in slot_values.items():
            kind = SLOT_KINDS[key]
            # "none"/"no" are the documented empty-slot sentinels
            # (SystemConfig's emptyableName).
            if value in ("none", "no"):
                continue
            if value and (kind, value) not in by_name:
                known = sorted(n for k, n in by_name if k == kind)
                report.add(Finding(
                    CHECK, rel, lineno,
                    f"preset names unregistered {kind} '{value}' for "
                    f"{key}; registered: {', '.join(known)}"))

        for key, value, lineno in keyvals:
            for slot, kind in SLOT_KINDS.items():
                if not key.startswith(slot + "."):
                    continue
                knob = key[len(slot) + 1:]
                name = slot_values.get(slot, ("", 0))[0]
                comp = by_name.get((kind, name))
                if comp is None:
                    report.add(Finding(
                        CHECK, rel, lineno,
                        f"preset tunes {key} but names no registered "
                        f"{kind} in {slot}"))
                elif knob not in comp["knobs"]:
                    report.add(Finding(
                        CHECK, rel, lineno,
                        f"preset key {key}: '{knob}' is not a declared "
                        f"knob of {kind} '{name}' "
                        f"(declared: {', '.join(comp['knobs'])})"))
            if key == "scheme.offchip_policy":
                name = slot_values.get("scheme.offchip", ("", 0))[0]
                comp = by_name.get(("offchip", name))
                choices = (comp or {}).get("choices", {}).get("policy")
                if choices and value not in choices:
                    report.add(Finding(
                        CHECK, rel, lineno,
                        f"preset sets scheme.offchip_policy={value}, "
                        f"not among the declared choices "
                        f"{{{', '.join(choices)}}}"))
    return [project.rel(p) for p in presets]


def run(project, files):
    report = Report()
    discovered = _discover_components(files)
    audited = [_audit_component(c, files, report) for c in discovered]
    preset_files = _audit_presets(project, audited, report)
    report.summary["schema"] = {
        "components": sorted(
            f"{c['kind']}:{c['name']}" for c in audited if c),
        "presets": preset_files,
    }
    return report
