"""tlpsim-audit — semantic static-analysis suite for tlpsim.

Four repo-specific checkers driven by the exported compilation database
(build/compile_commands.json), each expressing an invariant the paper's
figures depend on but that generic lint (clang-tidy, -Werror) cannot:

  determinism  no nondeterminism sources in simulation code: wall-clock
               reads, rand()/random_device, pointer-keyed ordered
               containers, iteration over unordered containers.
  layering     the module include graph is the declared DAG
               (common <- {mem,trace,tlb,prefetch,cache,offchip,filter,
               tracefile,workloads,core} <- sim <- cli, with store a
               leaf both sim and cli may use), and every header under
               src/ compiles standalone.
  schema       no drift between a component's Params struct and its
               registered KnobSchema: every field has a knob, every
               knob has a field, defaults are rendered from the
               default-constructed Params (never literals), and the
               shipped presets only name registered components/knobs.
  reset        every registry-built component initializes each scalar
               data member at its declaration (NSDMI) or in a
               constructor init list, so memoized Runner reuse can
               never observe stale state.

Any finding can be waived at the offending line (or the line above)
with

    // tlpsim:waive(<check>) <reason>

where <reason> is mandatory: a reason-less waiver is itself a finding.

The suite is dependency-free Python over the compilation database: it
runs in minimal containers (the dev image has neither libclang nor the
clang python bindings), and the self-contained-header check invokes the
same compiler the compilation database records, so its verdicts track
the real build. CI pins and echoes the toolchain versions so baseline
drift cannot come from silent upgrades.

Run it:

    python3 -m tools.tlpsim_audit --compdb build/compile_commands.json --werror
"""

__version__ = "1.0"

CHECKS = ("determinism", "layering", "schema", "reset")
