"""CLI driver: load the compilation database, run checkers, report.

    python3 -m tools.tlpsim_audit [--compdb build/compile_commands.json]
        [--root DIR] [--checks determinism,layering,schema,reset]
        [--json FILE] [--werror] [--show-waived] [--list-checks]

Exit status: 0 clean (or findings without --werror — they still
print), 1 findings under --werror, 2 usage/environment errors.
"""

import argparse
import sys
from pathlib import Path

from . import CHECKS, __version__, compdb
from .checks import CHECKERS
from .findings import (Finding, Report, apply_waivers, render_json,
                       render_text)
from .source import SourceFile


def load_sources(project):
    files = {}
    for path in project.source_files():
        files[project.rel(path)] = SourceFile(path)
    return files


def waiver_hygiene(files):
    """Reason-less waivers and waivers naming unknown checks are
    findings themselves — the audit trail must stay meaningful."""
    report = Report()
    for rel, sf in sorted(files.items()):
        for line, entries in sorted(sf.waivers.items()):
            for check, reason in entries:
                # Each waiver is recorded on its own line and possibly
                # echoed onto the next code line; only report the
                # declaration site.
                if "tlpsim:waive" not in (sf.lines[line - 1]
                                          if line <= len(sf.lines)
                                          else ""):
                    continue
                if check not in CHECKS:
                    report.add(Finding(
                        "waiver", rel, line,
                        f"waiver names unknown check '{check}' "
                        f"(known: {', '.join(CHECKS)})"))
                elif not reason.strip():
                    report.add(Finding(
                        "waiver", rel, line,
                        f"waiver for '{check}' carries no reason; "
                        f"write `// tlpsim:waive({check}) <why>`"))
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="tlpsim-audit",
        description="semantic static analysis for tlpsim "
                    "(determinism, layering, schema-drift, reset)")
    parser.add_argument("--compdb",
                        default="build/compile_commands.json",
                        help="compilation database "
                             "(default: %(default)s)")
    parser.add_argument("--root", default=None,
                        help="repo root override (default: inferred "
                             "from the database's src/ paths)")
    parser.add_argument("--checks", default=",".join(CHECKS),
                        help="comma-separated subset of: "
                             + ", ".join(CHECKS))
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="write the machine-readable report here")
    parser.add_argument("--werror", action="store_true",
                        help="exit 1 when any unwaived finding remains")
    parser.add_argument("--show-waived", action="store_true",
                        help="print waived findings too")
    parser.add_argument("--list-checks", action="store_true")
    parser.add_argument("--version", action="version",
                        version=f"tlpsim-audit {__version__}")
    args = parser.parse_args(argv)

    if args.list_checks:
        for c in CHECKS:
            print(c)
        return 0

    selected = [c.strip() for c in args.checks.split(",") if c.strip()]
    unknown = [c for c in selected if c not in CHECKERS]
    if unknown:
        print(f"tlpsim-audit: unknown check(s): {', '.join(unknown)} "
              f"(known: {', '.join(CHECKS)})", file=sys.stderr)
        return 2

    project = compdb.load(args.compdb, root=args.root)
    files = load_sources(project)

    report = Report()
    for check in selected:
        report.extend(CHECKERS[check](project, files))
    report.extend(waiver_hygiene(files))

    waivers_by_file = {rel: sf.waivers for rel, sf in files.items()}
    apply_waivers(report.findings, waivers_by_file)
    report.sort()

    text = render_text(report, show_waived=args.show_waived)
    if text:
        print(text)
    if args.json:
        Path(args.json).write_text(render_json(report, selected) + "\n",
                                   encoding="utf-8")

    active, waived = report.active(), report.waived()
    print(f"tlpsim-audit: {len(active)} finding(s), "
          f"{len(waived)} waived, checks: {', '.join(selected)}",
          file=sys.stderr)
    if active and args.werror:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
