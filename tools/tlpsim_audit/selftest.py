"""Negative self-tests: every checker must catch its seeded violation.

A linter that silently stops matching is worse than no linter — CI
goes green while the property it guarded erodes. This module embeds,
for each checker, one fixture carrying deliberate violations and one
clean fixture, materializes them into a throwaway project (sources +
compilation database), runs the real CLI driver in-process, and
asserts:

  * the violation run exits 1 under --werror,
  * each expected finding names the exact file and line (lines are
    resolved from markers in the fixture text, so fixtures can be
    edited without recounting),
  * the clean run exits 0 with no findings,
  * waiver syntax suppresses a finding, and waiver hygiene (unknown
    check, missing reason) is itself enforced.

Run as:  python3 -m tools.tlpsim_audit.selftest [--only SUBSTR] [-v]

Exit status: 0 all fixtures behave, 1 any assertion failed.
"""

import argparse
import contextlib
import io
import json
import shutil
import sys
import tempfile
from pathlib import Path

from .__main__ import main as audit_main

ANCHOR_CC = "int fixture_anchor() { return 0; }\n"

DETERMINISM_BAD = """\
#include <cstdlib>
#include <map>
#include <unordered_map>

namespace fixture
{

std::unordered_map<int, int> table;
std::map<char *, int> by_ptr;

int
tick()
{
    int sum = 0;
    for (auto &kv : table) {
        sum += kv.second;
    }
    return sum + rand();
}

} // namespace fixture
"""

DETERMINISM_GOOD = """\
#include <map>

namespace fixture
{

std::map<int, int> table;

int
tick()
{
    int sum = 0;
    for (auto &kv : table) {
        sum += kv.second;
    }
    return sum;
}

} // namespace fixture
"""

DETERMINISM_WAIVED = """\
#include <cstdlib>

namespace fixture
{

int
tick()
{
    // tlpsim:waive(determinism) fixture: exercising waiver syntax
    return rand();
}

} // namespace fixture
"""

WAIVER_HYGIENE = """\
namespace fixture
{

// tlpsim:waive(bogus) no such check exists
int a = 1;

// tlpsim:waive(determinism)
int b = 2;

} // namespace fixture
"""

LAYERING_UTIL_BAD = """\
#ifndef FIXTURE_COMMON_UTIL_HH
#define FIXTURE_COMMON_UTIL_HH

#include "sim/runner.hh"

#endif
"""

LAYERING_RUNNER = """\
#ifndef FIXTURE_SIM_RUNNER_HH
#define FIXTURE_SIM_RUNNER_HH

inline int run() { return 0; }

#endif
"""

LAYERING_BROKEN = """\
#ifndef FIXTURE_MEM_BROKEN_HH
#define FIXTURE_MEM_BROKEN_HH

inline unsigned long widthOf() { return sizeof(Widget); }

#endif
"""

LAYERING_UTIL_GOOD = """\
#ifndef FIXTURE_COMMON_UTIL_HH
#define FIXTURE_COMMON_UTIL_HH

inline int util() { return 0; }

#endif
"""

LAYERING_RUNNER_GOOD = """\
#ifndef FIXTURE_SIM_RUNNER_HH
#define FIXTURE_SIM_RUNNER_HH

#include "common/util.hh"

inline int run() { return util(); }

#endif
"""

SCHEMA_HH = """\
#ifndef FIXTURE_PREFETCH_THING_HH
#define FIXTURE_PREFETCH_THING_HH

class ThingPrefetcher
{
  public:
    struct Params
    {
        unsigned degree = 1;
        unsigned stride = 4;
        unsigned hidden = 7;
    };

    explicit ThingPrefetcher(const Params &p) : degree_(p.degree) {}

  private:
    unsigned degree_;
};

#endif
"""

SCHEMA_CC_BAD = """\
#include "prefetch/thing.hh"

namespace
{

const KnobSchema &
thingKnobs()
{
    static const KnobSchema schema = [] {
        const ThingPrefetcher::Params d;
        return KnobSchema{
            {"degree", d.degree, "lines ahead"},
            {"stride", 4u, "literal default: the drift vector"},
            {"ghost", 1u, "declared but never extracted"},
        };
    }();
    return schema;
}

} // namespace

void
registerThing()
{
    PrefetcherRegistry::instance().add(
        "thing", thingKnobs(), [](const Config &cfg) {
            Knobs k(cfg, thingKnobs(), "prefetcher 'thing'");
            ThingPrefetcher::Params p;
            p.degree = k.u32("degree");
            p.stride = k.u32("bonus");
            return std::make_unique<ThingPrefetcher>(p);
        });
}
"""

SCHEMA_CONF_BAD = """\
l1d.prefetcher = thing
l1d.prefetcher.degree = 2
l1d.prefetcher.mystery = 3
l2.prefetcher = nosuch
"""

SCHEMA_HH_GOOD = """\
#ifndef FIXTURE_PREFETCH_THING_HH
#define FIXTURE_PREFETCH_THING_HH

class ThingPrefetcher
{
  public:
    struct Params
    {
        unsigned degree = 1;
    };

    explicit ThingPrefetcher(const Params &p) : degree_(p.degree) {}

  private:
    unsigned degree_;
};

#endif
"""

SCHEMA_CC_GOOD = """\
#include "prefetch/thing.hh"

namespace
{

const KnobSchema &
thingKnobs()
{
    static const KnobSchema schema = [] {
        const ThingPrefetcher::Params d;
        return KnobSchema{
            {"degree", d.degree, "lines ahead"},
        };
    }();
    return schema;
}

} // namespace

void
registerThing()
{
    PrefetcherRegistry::instance().add(
        "thing", thingKnobs(), [](const Config &cfg) {
            Knobs k(cfg, thingKnobs(), "prefetcher 'thing'");
            ThingPrefetcher::Params p;
            p.degree = k.u32("degree");
            return std::make_unique<ThingPrefetcher>(p);
        });
}
"""

SCHEMA_CONF_GOOD = """\
l1d.prefetcher = thing
l1d.prefetcher.degree = 2
"""

RESET_HH_BAD = """\
#ifndef FIXTURE_PREFETCH_THING_HH
#define FIXTURE_PREFETCH_THING_HH

class ThingPrefetcher
{
  public:
    ThingPrefetcher() : armed_(false) {}

    struct Entry
    {
        int age;
        bool valid = false;
    };

  private:
    unsigned count_;
    unsigned ok_ = 0;
    bool armed_;
};

#endif
"""

RESET_HH_GOOD = """\
#ifndef FIXTURE_PREFETCH_THING_HH
#define FIXTURE_PREFETCH_THING_HH

class ThingPrefetcher
{
  public:
    ThingPrefetcher() : armed_(false) {}

    struct Entry
    {
        int age = 0;
        bool valid = false;
    };

  private:
    unsigned count_ = 0;
    bool armed_;
};

#endif
"""

RESET_CC = """\
#include "prefetch/thing.hh"

void
registerThing()
{
    PrefetcherRegistry::instance().add(
        "thing", thingKnobs(), [](const Config &cfg) {
            return std::make_unique<ThingPrefetcher>();
        });
}
"""

# Each fixture: files are materialized under a throwaway root, every
# .cc gets a compilation-database entry, the CLI driver runs with
# --werror on `checks`. `expect` rows are (file, line-marker, finding
# substring): the marker's first occurrence resolves the line number
# the finding must carry. `forbid` substrings must not appear at all.
FIXTURES = [
    {
        "name": "determinism-violation",
        "checks": "determinism",
        "files": {
            "src/core/clock_use.cc": DETERMINISM_BAD,
        },
        "expect": [
            ("src/core/clock_use.cc", "std::map<char *, int>",
             "pointer-keyed ordered container"),
            ("src/core/clock_use.cc", "for (auto &kv : table)",
             "unordered container 'table'"),
            ("src/core/clock_use.cc", "return sum + rand();",
             "rand()/srand() is seeded per-process"),
        ],
        "exit": 1,
        "json": True,
    },
    {
        "name": "determinism-clean",
        "checks": "determinism",
        "files": {
            "src/core/clock_use.cc": DETERMINISM_GOOD,
        },
        "expect": [],
        "exit": 0,
    },
    {
        "name": "determinism-waived",
        "checks": "determinism",
        "args": ["--show-waived"],
        "files": {
            "src/core/clock_use.cc": DETERMINISM_WAIVED,
        },
        "expect": [
            ("src/core/clock_use.cc", "return rand();",
             "waived: [determinism]"),
        ],
        "exit": 0,
    },
    {
        "name": "waiver-hygiene",
        "checks": "determinism",
        "files": {
            "src/core/waivers.cc": WAIVER_HYGIENE,
        },
        "expect": [
            ("src/core/waivers.cc", "tlpsim:waive(bogus)",
             "unknown check 'bogus'"),
            ("src/core/waivers.cc", "// tlpsim:waive(determinism)",
             "carries no reason"),
        ],
        "exit": 1,
    },
    {
        "name": "layering-violation",
        "checks": "layering",
        "files": {
            "src/common/anchor.cc": ANCHOR_CC,
            "src/common/util.hh": LAYERING_UTIL_BAD,
            "src/sim/runner.hh": LAYERING_RUNNER,
            "src/mem/broken.hh": LAYERING_BROKEN,
        },
        "expect": [
            ("src/common/util.hh", '#include "sim/runner.hh"',
             "module 'common' may not include 'sim/runner.hh'"),
            ("src/mem/broken.hh", "sizeof(Widget)",
             "header is not self-contained"),
        ],
        "exit": 1,
    },
    {
        "name": "layering-clean",
        "checks": "layering",
        "files": {
            "src/common/anchor.cc": ANCHOR_CC,
            "src/common/util.hh": LAYERING_UTIL_GOOD,
            "src/sim/runner.hh": LAYERING_RUNNER_GOOD,
        },
        "expect": [],
        "exit": 0,
    },
    {
        "name": "schema-violation",
        "checks": "schema",
        "files": {
            "src/prefetch/thing.hh": SCHEMA_HH,
            "src/prefetch/thing.cc": SCHEMA_CC_BAD,
            "configs/fixture.conf": SCHEMA_CONF_BAD,
        },
        "expect": [
            ("src/prefetch/thing.cc", '{"stride", 4u,',
             "default is the literal '4u'"),
            ("src/prefetch/thing.cc", '{"ghost", 1u,',
             "declared but never extracted"),
            ("src/prefetch/thing.cc", "PrefetcherRegistry::instance()",
             "builder extracts undeclared knob 'bonus'"),
            ("src/prefetch/thing.hh", "struct Params",
             "Params.hidden has no declared knob"),
            ("configs/fixture.conf", "l1d.prefetcher.mystery",
             "'mystery' is not a declared knob"),
            ("configs/fixture.conf", "l2.prefetcher = nosuch",
             "unregistered prefetcher 'nosuch'"),
        ],
        "exit": 1,
    },
    {
        "name": "schema-clean",
        "checks": "schema",
        "files": {
            "src/prefetch/thing.hh": SCHEMA_HH_GOOD,
            "src/prefetch/thing.cc": SCHEMA_CC_GOOD,
            "configs/fixture.conf": SCHEMA_CONF_GOOD,
        },
        "expect": [],
        "exit": 0,
    },
    {
        "name": "reset-violation",
        "checks": "reset",
        "files": {
            "src/prefetch/thing.hh": RESET_HH_BAD,
            "src/prefetch/thing.cc": RESET_CC,
        },
        "expect": [
            ("src/prefetch/thing.hh", "unsigned count_;",
             "no NSDMI and appears in no constructor init list"),
            ("src/prefetch/thing.hh", "int age;",
             "pooled entries are reset by assignment"),
        ],
        "forbid": ["armed_", "ok_", "valid"],
        "exit": 1,
    },
    {
        "name": "reset-clean",
        "checks": "reset",
        "files": {
            "src/prefetch/thing.hh": RESET_HH_GOOD,
            "src/prefetch/thing.cc": RESET_CC,
        },
        "expect": [],
        "exit": 0,
    },
]


def _compiler():
    for cxx in ("c++", "g++", "clang++"):
        path = shutil.which(cxx)
        if path:
            return path
    raise SystemExit("tlpsim-audit selftest: no C++ compiler on PATH "
                     "(need one for the self-contained-header check)")


def _line_with(content, marker):
    for i, line in enumerate(content.splitlines(), start=1):
        if marker in line:
            return i
    raise AssertionError(f"fixture marker {marker!r} not found")


def materialize(fixture, root, cxx):
    """Write fixture files + a compilation database under @p root."""
    root = Path(root)
    for rel, content in fixture["files"].items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content, encoding="utf-8")
    entries = [
        {
            "directory": str(root),
            "file": rel,
            "command": f"{cxx} -std=c++20 -I src -c {rel}",
        }
        for rel in fixture["files"]
        if rel.endswith(".cc")
    ]
    compdb = root / "compile_commands.json"
    compdb.write_text(json.dumps(entries, indent=2), encoding="utf-8")
    return compdb


def run_fixture(fixture, cxx=None):
    """Run the CLI driver on @p fixture. Returns (exit, output)."""
    cxx = cxx or _compiler()
    with tempfile.TemporaryDirectory(prefix="tlpsim_audit_") as tmp:
        compdb = materialize(fixture, tmp, cxx)
        argv = ["--compdb", str(compdb), "--root", tmp,
                "--checks", fixture["checks"], "--werror"]
        argv += fixture.get("args", [])
        if fixture.get("json"):
            argv += ["--json", str(Path(tmp) / "report.json")]
        out = io.StringIO()
        with contextlib.redirect_stdout(out), \
                contextlib.redirect_stderr(out):
            code = audit_main(argv)
        output = out.getvalue()
        if fixture.get("json"):
            report = json.loads(
                (Path(tmp) / "report.json").read_text(encoding="utf-8"))
            for key in ("version", "checks", "findings", "summary"):
                assert key in report, \
                    f"JSON report missing key {key!r}"
        return code, output


def check_fixture(fixture, cxx, verbose=False):
    """Run + assert one fixture. Returns a list of failure strings."""
    code, output = run_fixture(fixture, cxx)
    failures = []
    if code != fixture["exit"]:
        failures.append(
            f"{fixture['name']}: exit {code}, expected "
            f"{fixture['exit']}")
    for rel, marker, substring in fixture["expect"]:
        line = _line_with(fixture["files"][rel], marker)
        hit = any(f"{rel}:{line}:" in ln and substring in ln
                  for ln in output.splitlines())
        if not hit:
            failures.append(
                f"{fixture['name']}: no finding at {rel}:{line} "
                f"containing {substring!r}")
    if not fixture["expect"]:
        active = [ln for ln in output.splitlines()
                  if ": error: [" in ln]
        if active:
            failures.append(
                f"{fixture['name']}: expected clean, found: "
                f"{'; '.join(active)}")
    for substring in fixture.get("forbid", ()):
        for ln in output.splitlines():
            if ": error: [" in ln and substring in ln:
                failures.append(
                    f"{fixture['name']}: forbidden {substring!r} "
                    f"in: {ln.strip()}")
    if verbose or failures:
        sys.stderr.write(f"--- {fixture['name']} (exit {code}) ---\n")
        sys.stderr.write(output if output.endswith("\n")
                         else output + "\n")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="tlpsim-audit selftest",
        description="seeded-violation self-tests for every checker")
    parser.add_argument("--only", default="",
                        help="run fixtures whose name contains this")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print each fixture's audit output")
    parser.add_argument("--list", action="store_true")
    args = parser.parse_args(argv)

    selected = [f for f in FIXTURES if args.only in f["name"]]
    if args.list:
        for f in selected:
            print(f["name"])
        return 0
    if not selected:
        print(f"selftest: no fixture matches {args.only!r}",
              file=sys.stderr)
        return 1

    cxx = _compiler()
    failures = []
    for fixture in selected:
        failures.extend(check_fixture(fixture, cxx, args.verbose))

    if failures:
        for f in failures:
            print(f"FAIL {f}", file=sys.stderr)
        print(f"selftest: {len(failures)} assertion(s) failed over "
              f"{len(selected)} fixture(s)", file=sys.stderr)
        return 1
    print(f"selftest: {len(selected)} fixture(s) ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
