"""Lightweight C++ source model: comment/string stripping + waivers.

The checkers match constructs lexically, so every one of them starts
from comment-stripped text. Two forms are produced, line structure
preserved exactly (a finding's line number indexes the original file):

  * code_lines — comments AND string/char literal contents blanked.
    What the determinism checker scans: an identifier inside a string
    or comment must never trip a ban.
  * keep_lines — comments blanked, string contents kept. What the
    layering/schema/reset checkers scan: include paths and knob names
    are string literals.

Waiver comments are collected while stripping:

    // tlpsim:waive(<check>) <reason>

A waiver covers the line it sits on; when the line holds nothing but
the comment, it covers the next non-blank source line instead (so a
long offending line can carry its waiver above itself). A waiver whose
<reason> is empty is recorded with reason "" — the driver turns that
into a finding of its own, because an unexplained waiver is exactly the
kind of rot this suite exists to prevent.
"""

import re
from pathlib import Path

WAIVE_RE = re.compile(r"tlpsim:waive\((\w+)\)\s*(.*?)\s*(?:\*/.*)?$")


class SourceFile:
    """One parsed file: original, code-only, and string-kept lines."""

    def __init__(self, path, text=None):
        self.path = Path(path)
        self.text = (
            text
            if text is not None
            else self.path.read_text(encoding="utf-8", errors="replace")
        )
        self.lines = self.text.splitlines()
        self.code_lines, self.keep_lines, comment_lines = \
            _strip(self.lines)
        # line -> [(check, reason)]
        self.waivers = _collect_waivers(comment_lines, self.code_lines)

    @property
    def code(self):
        """Comments and literal contents blanked."""
        return "\n".join(self.code_lines)

    @property
    def keep(self):
        """Comments blanked, string contents kept."""
        return "\n".join(self.keep_lines)


class _Emit:
    """Per-line triple accumulator (code, keep, comment)."""

    def __init__(self):
        self.code, self.keep, self.comment = [], [], []

    def put(self, text, *, code=False, keep=False, comment=False):
        pad = " " * len(text)
        self.code.append(text if code else pad)
        self.keep.append(text if keep else pad)
        self.comment.append(text if comment else pad)


def _strip(lines):
    code_out, keep_out, comment_out = [], [], []
    state = "code"  # code | block_comment | raw_string
    raw_delim = ""
    for line in lines:
        out = _Emit()
        i, n = 0, len(line)
        while i < n:
            c = line[i]
            if state == "block_comment":
                end = line.find("*/", i)
                if end < 0:
                    out.put(line[i:], comment=True)
                    i = n
                else:
                    out.put(line[i:end + 2], comment=True)
                    state = "code"
                    i = end + 2
            elif state == "raw_string":
                stop = line.find(')' + raw_delim + '"', i)
                if stop < 0:
                    out.put(line[i:], keep=True)
                    i = n
                else:
                    end = stop + len(raw_delim) + 2
                    out.put(line[i:end], keep=True)
                    state = "code"
                    i = end
            elif c == "/" and line[i:i + 2] == "//":
                out.put(line[i:], comment=True)
                i = n
            elif c == "/" and line[i:i + 2] == "/*":
                out.put("/*", comment=True)
                state = "block_comment"
                i += 2
            elif c == "R" and (m := re.match(r'R"([^()\s\\]{0,16})\(',
                                             line[i:])):
                raw_delim = m.group(1)
                opener = 'R"' + raw_delim + "("
                out.put(opener, code=True, keep=True)
                i += len(opener)
                state = "raw_string"
            elif c in ('"', "'"):
                quote = c
                out.put(quote, code=True, keep=True)
                i += 1
                while i < n:
                    if line[i] == "\\":
                        out.put(line[i:i + 2], keep=True)
                        i += 2
                        continue
                    if line[i] == quote:
                        out.put(quote, code=True, keep=True)
                        i += 1
                        break
                    out.put(line[i], keep=True)
                    i += 1
            else:
                out.put(c, code=True, keep=True)
                i += 1
        code_out.append("".join(out.code))
        keep_out.append("".join(out.keep))
        comment_out.append("".join(out.comment))
    return code_out, keep_out, comment_out


def _collect_waivers(comment_lines, code_lines):
    waivers = {}
    for idx, comment in enumerate(comment_lines, start=1):
        m = WAIVE_RE.search(comment)
        if not m:
            continue
        check, reason = m.group(1), m.group(2)
        entry = (check, reason)
        waivers.setdefault(idx, []).append(entry)
        if code_lines[idx - 1].strip() == "":
            # Comment-only line: also cover the next non-blank code line.
            for j in range(idx, len(code_lines)):
                if code_lines[j].strip() != "":
                    waivers.setdefault(j + 1, []).append(entry)
                    break
    return waivers
