"""Finding model, waiver application, and report rendering."""

import json
from dataclasses import dataclass, field


@dataclass
class Finding:
    """One checker verdict, anchored to a file and line.

    `file` is repo-root-relative so output and JSON are stable across
    checkouts; `line` is 1-based. `waived` findings are kept (they feed
    the JSON report and the waiver-hygiene summary) but do not fail the
    run.
    """

    check: str
    file: str
    line: int
    message: str
    waived: bool = False
    waive_reason: str = ""

    def key(self):
        return (self.file, self.line, self.check, self.message)


@dataclass
class Report:
    findings: list = field(default_factory=list)
    # Checker-specific context for machine consumers (component lists,
    # preset lists, header counts, ...).
    summary: dict = field(default_factory=dict)

    def add(self, finding):
        self.findings.append(finding)

    def extend(self, other):
        self.findings.extend(other.findings)
        self.summary.update(other.summary)

    def active(self):
        return [f for f in self.findings if not f.waived]

    def waived(self):
        return [f for f in self.findings if f.waived]

    def sort(self):
        self.findings.sort(key=Finding.key)


def apply_waivers(findings, waivers_by_file):
    """Mark findings covered by a `tlpsim:waive(<check>)` comment.

    @p waivers_by_file maps root-relative path -> {line: [(check,
    reason)]}, where `line` is the line the waiver covers (the waiver's
    own line, and — for a comment-only line — the next code line; see
    source.SourceFile.waivers).
    """
    for f in findings:
        for check, reason in waivers_by_file.get(f.file, {}).get(f.line, []):
            if check == f.check:
                f.waived = True
                f.waive_reason = reason
    return findings


def render_text(report, show_waived=False):
    lines = []
    for f in report.findings:
        if f.waived and not show_waived:
            continue
        tag = "waived" if f.waived else "error"
        lines.append(f"{f.file}:{f.line}: {tag}: [{f.check}] {f.message}")
    return "\n".join(lines)


def render_json(report, checks_run):
    return json.dumps(
        {
            "version": 1,
            "checks": list(checks_run),
            "findings": [
                {
                    "check": f.check,
                    "file": f.file,
                    "line": f.line,
                    "message": f.message,
                    "waived": f.waived,
                    "waive_reason": f.waive_reason,
                }
                for f in report.findings
            ],
            "summary": report.summary,
        },
        indent=2,
        sort_keys=True,
    )
