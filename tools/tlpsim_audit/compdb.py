"""Compilation-database access and project layout.

The compilation database (CMAKE_EXPORT_COMPILE_COMMANDS) is the ground
truth for three things the checkers need:

  * which translation units the build actually compiles (a dead file
    should neither hide a violation nor invent one),
  * the compiler and flags (-std, -I) the self-contained-header check
    must replay so its verdicts track the real build,
  * the repo root, derived from the source paths, so findings render
    root-relative and fixtures can live anywhere.

Only entries whose file lives under `<root>/src/` participate; tests,
benches, and examples are compiled by the same database but are not
simulation code.
"""

import json
import shlex
from dataclasses import dataclass
from pathlib import Path


@dataclass
class CompileCommand:
    file: Path          # absolute, resolved
    directory: Path
    args: list          # argv, compiler first


@dataclass
class Project:
    root: Path          # directory containing src/
    commands: list      # CompileCommands under root/src
    compiler: str       # from the first src entry
    std_flag: str       # e.g. -std=gnu++20 (or "" when unspecified)
    include_dirs: list  # absolute -I paths

    def src_dir(self):
        return self.root / "src"

    def rel(self, path):
        """Root-relative POSIX form of @p path (for stable output)."""
        try:
            return Path(path).resolve().relative_to(self.root).as_posix()
        except ValueError:
            return Path(path).as_posix()

    def source_files(self, suffixes=(".cc", ".hh")):
        """Every src/ file with one of @p suffixes, sorted for stable
        output. Globbed rather than taken from the database so headers
        (never TUs) are covered too; TU membership checks use
        `commands`."""
        out = []
        for suffix in suffixes:
            out.extend(self.src_dir().rglob(f"*{suffix}"))
        return sorted(set(out))


def _parse_args(entry):
    if "arguments" in entry:
        return list(entry["arguments"])
    return shlex.split(entry["command"])


def load(compdb_path, root=None):
    """Load @p compdb_path into a Project.

    @p root overrides root inference (fixtures use this); by default the
    root is the parent of the src/ directory the first entry lives in.
    """
    compdb_path = Path(compdb_path)
    try:
        entries = json.loads(compdb_path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise SystemExit(
            f"tlpsim-audit: no compilation database at {compdb_path} "
            f"(configure with cmake first: it exports "
            f"compile_commands.json)")
    except json.JSONDecodeError as e:
        raise SystemExit(
            f"tlpsim-audit: {compdb_path} is not valid JSON: {e}")

    commands = []
    for entry in entries:
        directory = Path(entry["directory"])
        file = Path(entry["file"])
        if not file.is_absolute():
            file = directory / file
        commands.append(CompileCommand(file=file.resolve(),
                                       directory=directory,
                                       args=_parse_args(entry)))

    if root is None:
        for cmd in commands:
            parts = cmd.file.parts
            if "src" in parts[:-1]:
                # Last "src" path component (not the filename): root is
                # everything before it.
                idx = len(parts) - 2 - parts[:-1][::-1].index("src")
                root = Path(*parts[:idx])
                break
        else:
            raise SystemExit(
                "tlpsim-audit: no entry under a src/ directory in "
                f"{compdb_path}; pass --root explicitly")
    root = Path(root).resolve()

    src_commands = [c for c in commands
                    if _is_under(c.file, root / "src")]
    if not src_commands:
        raise SystemExit(
            f"tlpsim-audit: no translation units under {root / 'src'} "
            f"in {compdb_path}")

    ref = src_commands[0]
    compiler = ref.args[0]
    std_flag = next((a for a in ref.args if a.startswith("-std=")), "")
    include_dirs = []
    args = ref.args
    for i, a in enumerate(args):
        if a == "-I" and i + 1 < len(args):
            include_dirs.append(_absolute(args[i + 1], ref.directory))
        elif a.startswith("-I") and len(a) > 2:
            include_dirs.append(_absolute(a[2:], ref.directory))
        elif a.startswith("-isystem") and i + 1 < len(args) \
                and a == "-isystem":
            include_dirs.append(_absolute(args[i + 1], ref.directory))
    if not include_dirs:
        include_dirs = [root / "src"]

    return Project(root=root, commands=src_commands, compiler=compiler,
                   std_flag=std_flag, include_dirs=include_dirs)


def _absolute(path, directory):
    p = Path(path)
    return (p if p.is_absolute() else directory / p).resolve()


def _is_under(path, parent):
    try:
        path.relative_to(parent)
        return True
    except ValueError:
        return False
