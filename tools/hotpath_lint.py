#!/usr/bin/env python3
"""Hot-path allocation lint for tlpsim.

Scans C++ sources for regions bracketed by `// tlpsim:hot` and
`// tlpsim:endhot` markers and rejects constructs that touch the
allocator (or are otherwise banned) on the per-cycle path:

  * `new` / `make_unique` / `make_shared`
  * `std::function` (type-erased callables allocate and indirect-call;
    the codebase uses direct virtual interfaces instead)
  * node-based containers (`std::deque`, `std::map`, `std::list`, ...)
  * string construction (`std::string(...)`, `std::to_string`,
    `ostringstream`, string concatenation is caught via the above)
  * container growth (`push_back` / `emplace_back` / `resize` /
    `reserve` / `insert` / `emplace`) -- unless the line carries a
    `tlpsim:cap` waiver comment asserting the container's capacity is
    reserved up front or recycled (e.g. a Ring, a pooled vector).

Unbalanced or nested markers are themselves errors, so a region can't
be silently left open or never closed.

Any file containing a hot region is additionally held to a header
budget: its transitive `#include "..."` closure may only reach headers
under the declared hot-safe allowlist (HOT_SAFE_PREFIXES /
HOT_SAFE_HEADERS below). Inline code in an included header runs on the
hot path just as surely as the region's own lines, so pulling in, say,
`sim/` or `store/` headers is a violation even when no symbol from
them appears between the markers. Violations report the full include
chain from the hot-region file to the offender, so the fix (break the
chain, or deliberately extend the allowlist) is obvious.

This is a complement to the dynamic check in
tests/test_hotpath_alloc.cpp: the lint catches banned constructs at
review time even on paths a short simulation doesn't exercise.

Usage:
    tools/hotpath_lint.py [paths...]
With no arguments, scans the default hot directories under src/.
Exits 0 if clean, 1 if any violation (or marker error) was found.
"""

import re
import sys
from collections import deque
from pathlib import Path

DEFAULT_DIRS = [
    "src/core",
    "src/cache",
    "src/offchip",
    "src/prefetch",
    "src/mem",
]

HOT_MARK = "tlpsim:hot"
END_MARK = "tlpsim:endhot"
WAIVER = "tlpsim:cap"

# (regex, message, waivable)
BANNED = [
    (re.compile(r"\bnew\b"), "operator new in hot region", False),
    (re.compile(r"\bmake_(unique|shared)\b"),
     "heap allocation (make_unique/make_shared) in hot region", False),
    (re.compile(r"\bstd::function\b"),
     "std::function in hot region (use a direct virtual interface)", False),
    (re.compile(r"\bstd::(deque|list|map|multimap|set|multiset"
                r"|unordered_map|unordered_set|unordered_multimap"
                r"|unordered_multiset)\b"),
     "node-based container in hot region (use FlatTable/Ring/vector)",
     False),
    (re.compile(r"\bstd::string\s*\(|\bstd::to_string\b"
                r"|\bostringstream\b|\bstringstream\b"),
     "string construction in hot region", False),
    (re.compile(r"\.(push_back|emplace_back|resize|reserve|insert"
                r"|emplace)\s*\("),
     "container growth in hot region (waive with `// tlpsim:cap` once "
     "capacity is reserved or pooled)", True),
]

SUFFIXES = {".cc", ".cpp", ".cxx", ".hh", ".hpp", ".h"}

# Hot-safe header allowlist (src/-relative include paths). A TU with a
# hot region may only reach these transitively; everything else —
# drivers, persistence, workload synthesis — stays off the per-cycle
# path. Extend deliberately, not to silence a finding: a header is
# hot-safe when its inline code allocates nothing per call.
HOT_SAFE_PREFIXES = (
    "common/",
    "core/",
    "cache/",
    "mem/",
    "prefetch/",
    "offchip/",
    "tlb/",
    "trace/",
)
HOT_SAFE_HEADERS = set()

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')


def split_comment(line: str):
    """Return (code, comment) around the first `//` outside a string.

    Good enough for this codebase: no multi-line raw strings on the hot
    path, and block comments are handled by the caller's state.
    """
    in_str = None
    i = 0
    while i < len(line):
        c = line[i]
        if in_str:
            if c == "\\":
                i += 2
                continue
            if c == in_str:
                in_str = None
        elif c in ("\"", "'"):
            in_str = c
        elif c == "/" and line[i:i + 2] == "//":
            return line[:i], line[i:]
        i += 1
    return line, ""


def lint_file(path: Path):
    errors = []
    in_hot = False
    hot_open_line = 0
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except UnicodeDecodeError:
        return errors

    for lineno, raw in enumerate(lines, start=1):
        code, comment = split_comment(raw)

        if END_MARK in comment:
            if not in_hot:
                errors.append((lineno,
                               f"`{END_MARK}` without a matching "
                               f"`{HOT_MARK}`"))
            in_hot = False
            continue
        if HOT_MARK in comment:
            if in_hot:
                errors.append((lineno,
                               f"nested `{HOT_MARK}` (previous region "
                               f"opened at line {hot_open_line})"))
            in_hot = True
            hot_open_line = lineno
            continue

        if not in_hot:
            continue

        waived = WAIVER in comment
        for pattern, message, waivable in BANNED:
            if pattern.search(code):
                if waivable and waived:
                    continue
                errors.append((lineno, message))

    if in_hot:
        errors.append((hot_open_line,
                       f"`{HOT_MARK}` region never closed with "
                       f"`{END_MARK}`"))
    return errors


def project_includes(path: Path):
    """All `#include "..."` directives in @p path: [(lineno, target)]."""
    out = []
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except (UnicodeDecodeError, OSError):
        return out
    for lineno, raw in enumerate(lines, start=1):
        m = INCLUDE_RE.match(raw)
        if m:
            out.append((lineno, m.group(1)))
    return out


def src_root_of(path: Path):
    """The src/ directory @p path lives under, or None."""
    parts = path.resolve().parts
    if "src" in parts[:-1]:
        idx = len(parts) - 2 - parts[:-1][::-1].index("src")
        return Path(*parts[:idx + 1])
    return None


def hot_safe(include_path: str):
    return (include_path in HOT_SAFE_HEADERS
            or include_path.startswith(HOT_SAFE_PREFIXES))


def lint_transitive(path: Path, src_root: Path):
    """Walk the project-include closure of hot-region file @p path and
    flag every header outside the hot-safe allowlist, with the include
    chain that reaches it. Returns [(file, lineno, message)]."""
    errors = []
    seen = set()
    queue = deque((path, lineno, inc, [path.name])
                  for lineno, inc in project_includes(path))
    while queue:
        from_path, lineno, inc, chain = queue.popleft()
        if inc in seen:
            continue
        seen.add(inc)
        if not hot_safe(inc):
            errors.append((from_path, lineno,
                           f"hot-region TU transitively pulls "
                           f"non-hot-safe header '{inc}' "
                           f"(chain: {' -> '.join(chain + [inc])}); "
                           f"break the chain, or extend the allowlist "
                           f"in tools/hotpath_lint.py only if the "
                           f"header is allocation-free per call"))
            continue
        target = src_root / inc
        if not target.is_file():
            continue
        for l2, inc2 in project_includes(target):
            queue.append((target, l2, inc2, chain + [inc]))
    return errors


def has_hot_region(path: Path):
    try:
        text = path.read_text(encoding="utf-8", errors="ignore")
    except OSError:
        return False
    return any(HOT_MARK in line and END_MARK not in line
               for line in text.splitlines())


def collect(paths):
    files = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(sorted(f for f in p.rglob("*")
                                if f.suffix in SUFFIXES))
        elif p.is_file():
            files.append(p)
        else:
            print(f"hotpath_lint: no such path: {p}", file=sys.stderr)
            return None
    return files


def main(argv):
    args = argv[1:]
    if args:
        targets = args
    else:
        root = Path(__file__).resolve().parent.parent
        targets = [root / d for d in DEFAULT_DIRS]

    files = collect(targets)
    if files is None:
        return 2

    total = 0
    regions = 0
    closures = 0
    for f in files:
        text_errors = lint_file(f)
        regions += sum(1 for line in f.read_text(encoding="utf-8",
                                                 errors="ignore")
                       .splitlines()
                       if HOT_MARK in line and END_MARK not in line)
        for lineno, message in text_errors:
            print(f"{f}:{lineno}: error: {message}")
            total += 1
        if has_hot_region(f):
            src_root = src_root_of(f)
            if src_root is not None:
                closures += 1
                for where, lineno, message in lint_transitive(f,
                                                              src_root):
                    print(f"{where}:{lineno}: error: {message}")
                    total += 1

    if total:
        print(f"hotpath_lint: {total} violation(s)", file=sys.stderr)
        return 1
    print(f"hotpath_lint: clean ({len(files)} files, "
          f"{regions} hot region(s), {closures} include closure(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
