/**
 * @file
 * google-benchmark microbenchmarks for the predictor hardware models:
 * lookup/train throughput of the FLP and SLP perceptrons, the PPF filter,
 * the branch predictor, and the page buffer — the structures TLP adds to
 * the 6-cycle prediction path.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "common/stats.hh"
#include "core/branch_pred.hh"
#include "filter/ppf.hh"
#include "offchip/offchip_predictor.hh"
#include "offchip/page_buffer.hh"
#include "offchip/slp.hh"

using namespace tlpsim;

static void
BM_FlpPredict(benchmark::State &state)
{
    StatGroup stats("b");
    OffChipPredictor::Params p;
    p.policy = OffchipPolicy::Selective;
    OffChipPredictor pred(p, &stats);
    Rng rng(1);
    for (auto _ : state) {
        auto d = pred.predictLoad(0x400000 + rng.below(64) * 4,
                                  (Addr{1} << 32) + rng.below(1 << 20) * 8);
        benchmark::DoNotOptimize(d.predicted_offchip);
    }
}
BENCHMARK(BM_FlpPredict);

static void
BM_FlpPredictAndTrain(benchmark::State &state)
{
    StatGroup stats("b");
    OffChipPredictor::Params p;
    p.policy = OffchipPolicy::Selective;
    OffChipPredictor pred(p, &stats);
    Rng rng(1);
    for (auto _ : state) {
        auto d = pred.predictLoad(0x400000 + rng.below(64) * 4,
                                  (Addr{1} << 32) + rng.below(1 << 20) * 8);
        pred.train(d.meta, rng.chance(0.4));
    }
}
BENCHMARK(BM_FlpPredictAndTrain);

static void
BM_SlpFilter(benchmark::State &state)
{
    StatGroup stats("b");
    Slp slp({}, &stats);
    Rng rng(2);
    PrefetchTrigger trig;
    trig.ip = 0x400100;
    trig.type = AccessType::Load;
    for (auto _ : state) {
        PredictionMeta meta;
        std::uint8_t fl = 1;
        trig.offchip_pred = rng.chance(0.3);
        bool ok = slp.allow(trig, 0, rng.below(1 << 24) * 64, 0, fl, meta);
        benchmark::DoNotOptimize(ok);
    }
}
BENCHMARK(BM_SlpFilter);

static void
BM_PpfFilter(benchmark::State &state)
{
    StatGroup stats("b");
    Ppf ppf({}, &stats);
    Rng rng(3);
    PrefetchTrigger trig;
    trig.ip = 0x400100;
    trig.type = AccessType::Load;
    for (auto _ : state) {
        PredictionMeta meta;
        std::uint8_t fl = 2;
        bool ok = ppf.allow(trig, 0, rng.below(1 << 24) * 64,
                            rng.below(1 << 20), fl, meta);
        benchmark::DoNotOptimize(ok);
    }
}
BENCHMARK(BM_PpfFilter);

static void
BM_BranchPredict(benchmark::State &state)
{
    StatGroup stats("b");
    BranchPredictor bp(&stats);
    Rng rng(4);
    for (auto _ : state) {
        bool ok = bp.predictAndTrain(0x400000 + rng.below(256) * 4,
                                     rng.chance(0.6));
        benchmark::DoNotOptimize(ok);
    }
}
BENCHMARK(BM_BranchPredict);

static void
BM_PageBuffer(benchmark::State &state)
{
    PageBuffer pb;
    Rng rng(5);
    for (auto _ : state) {
        bool first = pb.firstAccess(rng.below(1 << 20) * 64);
        benchmark::DoNotOptimize(first);
    }
}
BENCHMARK(BM_PageBuffer);

BENCHMARK_MAIN();
