/**
 * @file
 * In-tree hot-loop profiler: runs the perf_smoke sweep (tiny workload
 * set × three schemes, fixed scale) single-threaded with a
 * HotloopProfile attached and reports per-subsystem cycle attribution —
 * where the simulator's wall time actually goes, subsystem by subsystem,
 * plus the idle-skip elision rate. CI runs this on the perf runner and
 * uploads the report (stdout + BENCH_profile.json) as a build artifact;
 * locally it directs hot-loop work the same way.
 *
 * Attribution uses TSC deltas around each component family's tick, so
 * absolute wall time is perturbed (~2 timestamp reads per family per
 * cycle) but relative shares stay honest. Simulated results are
 * unaffected — the profile only observes.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "sim/hotloop_profile.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

using namespace tlpsim;

int
main()
{
    auto ws = workloads::singleCoreWorkloads(workloads::SetSize::Tiny);
    const char *schemes[] = {"baseline", "hermes", "tlp"};

    HotloopProfile total;
    HotloopProfile per_scheme[3];

    for (int s = 0; s < 3; ++s) {
        for (const auto &w : ws) {
            Trace t = workloads::buildTrace(w, 50'000, 0);
            SystemConfig cfg = SystemConfig::cascadeLake(1);
            cfg.warmup_instrs = 10'000;
            cfg.sim_instrs = 40'000;
            cfg.scheme = SchemeConfig::fromName(schemes[s]);
            Simulator sim(cfg, std::vector<const Trace *>{&t});
            HotloopProfile p;
            sim.setProfile(&p);
            sim.run();
            per_scheme[s].merge(p);
            total.merge(p);
        }
    }

    std::printf("=============================================------------\n");
    std::printf("tlpsim hot-loop profile: tiny set x {baseline,hermes,tlp}\n");
    std::printf("attribution = TSC share per subsystem family\n");
    std::printf("==========================================================\n");

    auto report = [](const char *name, const HotloopProfile &p) {
        const double tot = static_cast<double>(p.total());
        std::printf("\n--- %s ---\n", name);
        std::printf("%-12s %10s %14s %10s\n", "subsystem", "share",
                    "tsc_ticks", "calls(M)");
        for (int s = 0; s < HotloopProfile::kNumSubsystems; ++s) {
            std::printf("%-12s %9.1f%% %14llu %10.2f\n",
                        HotloopProfile::name(s),
                        tot > 0 ? 100.0 * static_cast<double>(p.ticks[s]) / tot
                                : 0.0,
                        static_cast<unsigned long long>(p.ticks[s]),
                        static_cast<double>(p.calls[s]) / 1e6);
        }
        const double cycles = static_cast<double>(p.stepped_cycles
                                                  + p.skipped_cycles);
        std::printf("cycles: stepped=%llu skipped=%llu (%.1f%% elided)\n",
                    static_cast<unsigned long long>(p.stepped_cycles),
                    static_cast<unsigned long long>(p.skipped_cycles),
                    cycles > 0
                        ? 100.0 * static_cast<double>(p.skipped_cycles) / cycles
                        : 0.0);
    };

    for (int s = 0; s < 3; ++s)
        report(schemes[s], per_scheme[s]);
    report("TOTAL", total);

    // Machine-readable mirror for the CI artifact.
    if (FILE *f = std::fopen("BENCH_profile.json", "w")) {
        std::fprintf(f, "{\"bench\": \"profile_hotloop\",");
        const double tot = static_cast<double>(total.total());
        for (int s = 0; s < HotloopProfile::kNumSubsystems; ++s) {
            std::fprintf(
                f, " \"%s_share\": %.4f,", HotloopProfile::name(s),
                tot > 0 ? static_cast<double>(total.ticks[s]) / tot : 0.0);
        }
        std::fprintf(
            f, " \"stepped_cycles\": %llu, \"skipped_cycles\": %llu}\n",
            static_cast<unsigned long long>(total.stepped_cycles),
            static_cast<unsigned long long>(total.skipped_cycles));
        std::fclose(f);
    }
    return 0;
}
