/**
 * @file
 * Figure 1: MPKI of L1D / L2C / LLC across SPEC and GAP workloads on the
 * baseline system (IPCP at L1D, SPP at L2, no off-chip prediction).
 */

#include "bench_common.hh"

using namespace tlpsim;
using namespace tlpsim::bench;

int
main()
{
    printBanner("Figure 1 — cache MPKI of modern workloads",
                "Fig. 1 (L1D/L2C/LLC MPKI, SPEC vs GAP)");

    auto ws = benchWorkloads();
    SystemConfig cfg = benchConfig();
    prewarm(ws, {cfg});

    TablePrinter tp({"workload", "suite", "L1D MPKI", "L2C MPKI",
                     "LLC MPKI"});
    tp.printHeader("Figure 1: misses per kilo instruction");

    struct Acc
    {
        double l1d = 0, l2c = 0, llc = 0;
        int n = 0;
    } by_suite[2], all;

    for (const auto &w : ws) {
        const SimResult &r = run(w, cfg);
        tp.printRow({w.name, toString(w.suite),
                     TablePrinter::fmt(r.mpki("l1d"), 1),
                     TablePrinter::fmt(r.mpki("l2c"), 1),
                     TablePrinter::fmt(r.mpki("llc"), 1)});
        Acc &a = by_suite[w.suite == workloads::Suite::Gap ? 1 : 0];
        for (Acc *acc : {&a, &all}) {
            acc->l1d += r.mpki("l1d");
            acc->l2c += r.mpki("l2c");
            acc->llc += r.mpki("llc");
            acc->n += 1;
        }
    }
    tp.printSeparator();
    const char *names[] = {"AVG SPEC", "AVG GAP"};
    for (int s = 0; s < 2; ++s) {
        if (by_suite[s].n == 0)
            continue;
        tp.printRow({names[s], "",
                     TablePrinter::fmt(by_suite[s].l1d / by_suite[s].n, 1),
                     TablePrinter::fmt(by_suite[s].l2c / by_suite[s].n, 1),
                     TablePrinter::fmt(by_suite[s].llc / by_suite[s].n, 1)});
    }
    tp.printRow({"AVG ALL", "", TablePrinter::fmt(all.l1d / all.n, 1),
                 TablePrinter::fmt(all.l2c / all.n, 1),
                 TablePrinter::fmt(all.llc / all.n, 1)});
    std::printf("\npaper shape: L1D >> L2C >> LLC; GAP misses more than "
                "SPEC; a large fraction of L1D misses reach DRAM.\n");
    return 0;
}
