/**
 * @file
 * Figure 3: increase in DRAM transactions due to Hermes in the 4-core
 * context, across SPEC and GAP workload mixes.
 */

#include "bench_common.hh"

using namespace tlpsim;
using namespace tlpsim::bench;

int
main()
{
    printBanner("Figure 3 — Hermes DRAM pressure, 4-core mixes",
                "Fig. 3 (ΔDRAM txns, multi-core)");

    auto ws = benchWorkloads();
    auto mixes = benchMixSet(ws);
    SystemConfig base_cfg = benchConfigMc();
    SystemConfig hermes_cfg = benchConfigMc("ipcp",
                                            SchemeConfig::hermes());
    prewarmMixes(ws, mixes, {base_cfg, hermes_cfg});

    TablePrinter tp({"mix", "suite", "dram_base", "dram_hermes",
                     "increase"}, 18);
    tp.printHeader("Figure 3: DRAM transaction increase from Hermes "
                   "(4-core)");
    SuiteSummary delta;
    for (const auto &mix : mixes) {
        const SimResult &b = runMixCached(ws, mix, base_cfg);
        const SimResult &h = runMixCached(ws, mix, hermes_cfg);
        double pct = experiment::percentDelta(
            static_cast<double>(h.dramTransactions()),
            static_cast<double>(b.dramTransactions()));
        delta.add(mix.suite, pct);
        tp.printRow({mix.name, toString(mix.suite),
                     std::to_string(b.dramTransactions()),
                     std::to_string(h.dramTransactions()),
                     TablePrinter::fmtPct(pct)});
    }
    tp.printSeparator();
    tp.printRow({"AVG SPEC", "", "", "",
                 TablePrinter::fmtPct(delta.specMean())});
    tp.printRow({"AVG GAP", "", "", "",
                 TablePrinter::fmtPct(delta.gapMean())});
    tp.printRow({"AVG ALL", "", "", "",
                 TablePrinter::fmtPct(delta.allMean())});
    std::printf("\npaper shape: Hermes increases multi-core DRAM traffic, "
                "more for GAP mixes than SPEC mixes (paper: +9.6%% GAP vs "
                "+2.2%% SPEC).\n");
    return 0;
}
