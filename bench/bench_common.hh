/**
 * @file
 * Shared scaffolding for the figure/table benches.
 *
 * Every bench regenerates one or more of the paper's tables/figures as
 * labelled text tables. Scale knobs (all optional):
 *   TLPSIM_SET=tiny|small|full   workload set (default small)
 *   TLPSIM_WARMUP / TLPSIM_INSTRS  per-core instruction counts
 *   TLPSIM_MIXES                 4-core mixes per suite
 *
 * Simulation results are cached per (workload|mix, config) within the
 * process so benches that print several figures from the same runs (e.g.
 * Figs. 10/11/12) simulate each design point once.
 */

#ifndef TLPSIM_BENCH_BENCH_COMMON_HH
#define TLPSIM_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "sim/experiment.hh"

namespace tlpsim::bench
{

using experiment::TablePrinter;

/** Default bench scale: small enough for a laptop sweep. */
inline InstrCount
benchWarmup()
{
    return experiment::envWarmup(50'000);
}

inline InstrCount
benchInstrs()
{
    return experiment::envInstrs(250'000);
}

inline int
benchMixes()
{
    return experiment::envMixes(2);
}

inline std::vector<workloads::WorkloadSpec>
benchWorkloads()
{
    return workloads::singleCoreWorkloads(workloads::setSizeFromEnv());
}

/** Single-core config at bench scale. */
inline SystemConfig
benchConfig(L1Prefetcher pf = L1Prefetcher::Ipcp,
            const SchemeConfig &scheme = SchemeConfig::baseline())
{
    SystemConfig cfg = SystemConfig::cascadeLake(1);
    cfg.warmup_instrs = benchWarmup();
    cfg.sim_instrs = benchInstrs();
    cfg.l1_prefetcher = pf;
    cfg.scheme = scheme;
    return cfg;
}

/** 4-core config at bench scale. */
inline SystemConfig
benchConfigMc(L1Prefetcher pf = L1Prefetcher::Ipcp,
              const SchemeConfig &scheme = SchemeConfig::baseline())
{
    SystemConfig cfg = SystemConfig::cascadeLake(4);
    cfg.warmup_instrs = benchWarmup();
    cfg.sim_instrs = benchInstrs();
    cfg.l1_prefetcher = pf;
    cfg.scheme = scheme;
    return cfg;
}

/** Config fingerprint for the run cache. */
inline std::string
cfgKey(const SystemConfig &cfg)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%s|%s|%u|%.2f|%u|%u",
                  cfg.scheme.name.c_str(), toString(cfg.l1_prefetcher),
                  cfg.num_cores, cfg.dram_gbps_per_core,
                  cfg.l1_pf_table_scale, cfg.scheme.offchip_table_scale);
    return buf;
}

/** Run (or fetch) a cached single-core simulation. */
inline const SimResult &
run(const workloads::WorkloadSpec &w, const SystemConfig &cfg)
{
    static std::map<std::string, SimResult> cache;
    std::string key = w.name + "|" + cfgKey(cfg);
    auto it = cache.find(key);
    if (it == cache.end()) {
        std::fprintf(stderr, "  [sim] %-22s %s\n", w.name.c_str(),
                     cfgKey(cfg).c_str());
        it = cache.emplace(key, experiment::runSingleCore(w, cfg)).first;
    }
    return it->second;
}

/** Run (or fetch) a cached 4-core mix simulation. */
inline const SimResult &
runMixCached(const std::vector<workloads::WorkloadSpec> &all,
             const workloads::Mix &mix, const SystemConfig &cfg)
{
    static std::map<std::string, SimResult> cache;
    std::string key = mix.name + "|" + cfgKey(cfg);
    auto it = cache.find(key);
    if (it == cache.end()) {
        std::fprintf(stderr, "  [sim] %-22s %s\n", mix.name.c_str(),
                     cfgKey(cfg).c_str());
        it = cache.emplace(key, experiment::runMix(all, mix, cfg)).first;
    }
    return it->second;
}

/** Per-suite + overall geometric-mean summary of per-workload percents. */
struct SuiteSummary
{
    std::vector<double> spec;
    std::vector<double> gap;

    void
    add(workloads::Suite suite, double pct)
    {
        (suite == workloads::Suite::Spec ? spec : gap).push_back(pct);
    }

    double specMean() const { return experiment::geomeanSpeedupPct(spec); }
    double gapMean() const { return experiment::geomeanSpeedupPct(gap); }

    double
    allMean() const
    {
        std::vector<double> all = spec;
        all.insert(all.end(), gap.begin(), gap.end());
        return experiment::geomeanSpeedupPct(all);
    }
};

inline void
printBanner(const char *what, const char *paper_ref)
{
    std::printf("================================================="
                "=============\n");
    std::printf("tlpsim bench: %s\n", what);
    std::printf("reproduces  : %s\n", paper_ref);
    std::printf("scale       : warmup=%llu sim=%llu per core "
                "(TLPSIM_WARMUP/TLPSIM_INSTRS to change)\n",
                static_cast<unsigned long long>(benchWarmup()),
                static_cast<unsigned long long>(benchInstrs()));
    std::printf("================================================="
                "=============\n");
}

} // namespace tlpsim::bench

#endif // TLPSIM_BENCH_BENCH_COMMON_HH
