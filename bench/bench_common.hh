/**
 * @file
 * Shared scaffolding for the figure/table benches.
 *
 * Every bench regenerates one or more of the paper's tables/figures as
 * labelled text tables. Scale knobs (all optional):
 *   TLPSIM_SET=tiny|small|full   workload set (default small)
 *   TLPSIM_WARMUP / TLPSIM_INSTRS  per-core instruction counts
 *   TLPSIM_MIXES                 4-core mixes per suite
 *
 * Simulation results are cached per (workload|mix, config) within the
 * process so benches that print several figures from the same runs (e.g.
 * Figs. 10/11/12) simulate each design point once.
 *
 * Simulations are sharded across TLPSIM_JOBS worker threads (default:
 * all hardware threads) by the experiment Runner. Benches submit their
 * full design-point grid up front (prewarm*) and then render tables with
 * run()/runMixCached(), which block on the corresponding jobs; tables are
 * bit-identical regardless of the worker count.
 *
 * Measurement semantics are per core (ChampSim-style): every per-core
 * metric a figure prints — IPC, MPKI, PPKI, prefetch accuracy — covers
 * that core's own warmup-to-target window, so heterogeneous mixes report
 * physically plausible per-core numbers (see SimResult). Shared-structure
 * stats (LLC, DRAM) span first-window-open to last-window-close.
 */

#ifndef TLPSIM_BENCH_BENCH_COMMON_HH
#define TLPSIM_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/runner.hh"

namespace tlpsim::bench
{

using experiment::TablePrinter;

/** Default bench scale: small enough for a laptop sweep. */
inline InstrCount
benchWarmup()
{
    return experiment::envWarmup(50'000);
}

inline InstrCount
benchInstrs()
{
    return experiment::envInstrs(250'000);
}

inline int
benchMixes()
{
    return experiment::envMixes(2);
}

inline std::vector<workloads::WorkloadSpec>
benchWorkloads()
{
    return workloads::singleCoreWorkloads(workloads::setSizeFromEnv());
}

/** The shared multi-core mix set (Figs. 3/13/15/16): the paper's recipe
 *  over the bench workload set, fixed seed so every mix bench and the
 *  tlpsim CLI agree on what "the mixes" are. */
inline std::vector<workloads::Mix>
benchMixSet(const std::vector<workloads::WorkloadSpec> &ws,
            int mixes_per_suite = benchMixes(), unsigned cores = 4)
{
    return workloads::makeMixes(ws, mixes_per_suite, 1234, cores);
}

/**
 * The one place bench scale knobs are applied: Table III system for
 * @p cores with the bench warmup/instruction counts, an L1D prefetcher
 * picked by registry name, and a scheme preset (SchemeConfig::fromName
 * for the paper's named design points).
 */
inline SystemConfig
benchSystem(unsigned cores, const std::string &l1_pf = "ipcp",
            const SchemeConfig &scheme = SchemeConfig::baseline())
{
    SystemConfig cfg = SystemConfig::cascadeLake(cores);
    cfg.warmup_instrs = benchWarmup();
    cfg.sim_instrs = benchInstrs();
    cfg.l1_prefetcher = l1_pf;
    cfg.scheme = scheme;
    return cfg;
}

/** Single-core config at bench scale. */
inline SystemConfig
benchConfig(const std::string &l1_pf = "ipcp",
            const SchemeConfig &scheme = SchemeConfig::baseline())
{
    return benchSystem(1, l1_pf, scheme);
}

/** 4-core config at bench scale. */
inline SystemConfig
benchConfigMc(const std::string &l1_pf = "ipcp",
              const SchemeConfig &scheme = SchemeConfig::baseline())
{
    return benchSystem(4, l1_pf, scheme);
}

/** Run (or fetch) a single-core simulation through the shared runner. */
inline const SimResult &
run(const workloads::WorkloadSpec &w, const SystemConfig &cfg)
{
    return experiment::defaultRunner().single(w, cfg);
}

/** Run (or fetch) a 4-core mix simulation through the shared runner. */
inline const SimResult &
runMixCached(const std::vector<workloads::WorkloadSpec> &all,
             const workloads::Mix &mix, const SystemConfig &cfg)
{
    return experiment::defaultRunner().mix(all, mix, cfg);
}

/** Queue every (workload × config) design point without waiting. */
inline void
prewarm(const std::vector<workloads::WorkloadSpec> &ws,
        const std::vector<SystemConfig> &cfgs)
{
    for (const auto &cfg : cfgs) {
        for (const auto &w : ws)
            experiment::defaultRunner().submitSingle(w, cfg);
    }
}

/** Queue every (mix × config) design point without waiting. */
inline void
prewarmMixes(const std::vector<workloads::WorkloadSpec> &all,
             const std::vector<workloads::Mix> &mixes,
             const std::vector<SystemConfig> &cfgs)
{
    for (const auto &cfg : cfgs) {
        for (const auto &mix : mixes)
            experiment::defaultRunner().submitMix(all, mix, cfg);
    }
}

/** Queue the isolated single-core runs the weighted-speedup metric needs
 *  for each slot of each mix. */
inline void
prewarmMixSingles(const std::vector<workloads::WorkloadSpec> &all,
                  const std::vector<workloads::Mix> &mixes,
                  const SystemConfig &sc_cfg)
{
    for (const auto &mix : mixes) {
        for (int idx : mix.workload_index)
            experiment::defaultRunner().submitSingle(
                all[static_cast<std::size_t>(idx)], sc_cfg);
    }
}

/** Isolated per-slot IPCs of @p mix under @p sc_cfg — the denominator of
 *  the paper's weighted-speedup metric (§V-D). */
inline std::vector<double>
mixSingleIpcs(const std::vector<workloads::WorkloadSpec> &all,
              const workloads::Mix &mix, const SystemConfig &sc_cfg)
{
    std::vector<double> out;
    for (int idx : mix.workload_index)
        out.push_back(run(all[static_cast<std::size_t>(idx)], sc_cfg).ipc[0]);
    return out;
}

/** Per-suite + overall geometric-mean summary of per-workload percents. */
struct SuiteSummary
{
    std::vector<double> spec;
    std::vector<double> gap;

    void
    add(workloads::Suite suite, double pct)
    {
        (suite == workloads::Suite::Spec ? spec : gap).push_back(pct);
    }

    double specMean() const { return experiment::geomeanSpeedupPct(spec); }
    double gapMean() const { return experiment::geomeanSpeedupPct(gap); }

    double
    allMean() const
    {
        std::vector<double> all = spec;
        all.insert(all.end(), gap.begin(), gap.end());
        return experiment::geomeanSpeedupPct(all);
    }
};

inline void
printBanner(const char *what, const char *paper_ref)
{
    std::printf("================================================="
                "=============\n");
    std::printf("tlpsim bench: %s\n", what);
    std::printf("reproduces  : %s\n", paper_ref);
    std::printf("scale       : warmup=%llu sim=%llu per core "
                "(TLPSIM_WARMUP/TLPSIM_INSTRS to change)\n",
                static_cast<unsigned long long>(benchWarmup()),
                static_cast<unsigned long long>(benchInstrs()));
    std::printf("jobs        : %u (TLPSIM_JOBS to change)\n",
                experiment::defaultRunner().jobs());
    std::printf("================================================="
                "=============\n");
}

} // namespace tlpsim::bench

#endif // TLPSIM_BENCH_BENCH_COMMON_HH
