/**
 * @file
 * The multi-core headline evaluation:
 *   Figure 13: 4-core weighted speedup of PPF / Hermes / Hermes+PPF / TLP
 *              over baseline, for IPCP (13a) and Berti (13b);
 *   Figure 14: increase in DRAM transactions, same design points.
 *
 * Weighted speedup follows §V-D: per-slot IPC_shared / IPC_single
 * (isolated baseline run), summed, normalized to the baseline mix.
 */

#include "bench_common.hh"

using namespace tlpsim;
using namespace tlpsim::bench;

namespace
{

void
evaluatePrefetcher(const std::vector<workloads::WorkloadSpec> &ws,
                   const std::vector<workloads::Mix> &mixes,
                   const std::string &pf, const char *tag)
{
    auto schemes = SchemeConfig::paperSchemes();
    SystemConfig mc_base = benchConfigMc(pf);
    SystemConfig sc_base = benchConfig(pf);

    TablePrinter tp({"mix", "suite", "ppf", "hermes", "hermes+ppf",
                     "tlp"}, 16);
    tp.printHeader(std::string("Figure 13") + tag
                   + ": weighted speedup over baseline (%)");
    std::map<std::string, SuiteSummary> ws_summary;
    std::map<std::string, std::vector<double>> dram_deltas;

    for (const auto &mix : mixes) {
        const SimResult &b = runMixCached(ws, mix, mc_base);
        auto singles = mixSingleIpcs(ws, mix, sc_base);
        std::vector<std::string> row{mix.name, toString(mix.suite)};
        for (const auto &s : schemes) {
            const SimResult &r = runMixCached(ws, mix,
                                              benchConfigMc(pf, s));
            double pct = experiment::weightedSpeedupPct(r, b, singles);
            ws_summary[s.name].add(mix.suite, pct);
            row.push_back(TablePrinter::fmtPct(pct));
            dram_deltas[s.name].push_back(experiment::percentDelta(
                static_cast<double>(r.dramTransactions()),
                static_cast<double>(b.dramTransactions())));
        }
        tp.printRow(row);
    }
    tp.printSeparator();
    std::vector<std::string> gm{"GEOMEAN", ""};
    for (const auto &s : schemes)
        gm.push_back(TablePrinter::fmtPct(ws_summary[s.name].allMean()));
    tp.printRow(gm);

    TablePrinter tp14({"metric", "ppf", "hermes", "hermes+ppf", "tlp"},
                      16);
    tp14.printHeader(std::string("Figure 14") + tag
                     + ": DRAM transaction increase over baseline (%)");
    std::vector<std::string> row{"ARITH MEAN"};
    for (const auto &s : schemes) {
        double sum = 0;
        for (double d : dram_deltas[s.name])
            sum += d;
        row.push_back(TablePrinter::fmtPct(
            sum / static_cast<double>(dram_deltas[s.name].size())));
    }
    tp14.printRow(row);
}

} // namespace

int
main()
{
    printBanner("Figures 13 & 14 — multi-core evaluation",
                "Fig. 13 (weighted speedup) and Fig. 14 (ΔDRAM), 4-core; "
                "(a)=IPCP, (b)=Berti");

    auto ws = benchWorkloads();
    auto mixes = benchMixSet(ws);
    // Queue both prefetchers' full grids before rendering anything.
    for (const char *pf : {"ipcp", "berti"}) {
        std::vector<SystemConfig> grid{benchConfigMc(pf)};
        for (const auto &s : SchemeConfig::paperSchemes())
            grid.push_back(benchConfigMc(pf, s));
        prewarmMixes(ws, mixes, grid);
        prewarmMixSingles(ws, mixes, benchConfig(pf));
    }
    evaluatePrefetcher(ws, mixes, "ipcp", "a (IPCP)");
    evaluatePrefetcher(ws, mixes, "berti", "b (Berti)");

    std::printf("\npaper shape: TLP clearly wins the weighted-speedup "
                "geomean (paper: +11.5%% IPCP / +11.8%% Berti) and is the "
                "only design point that reduces DRAM transactions.\n");
    return 0;
}
