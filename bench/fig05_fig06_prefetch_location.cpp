/**
 * @file
 * Figure 5: PPKI of *inaccurate* L1D prefetches by serve level (L2C / LLC
 *           / DRAM), for IPCP and Berti.
 * Figure 6: same for *accurate* prefetches.
 *
 * Together they reproduce Finding 4: prefetches served from DRAM are
 * overwhelmingly useless — off-chip prediction can drive L1D filtering.
 */

#include "bench_common.hh"

using namespace tlpsim;
using namespace tlpsim::bench;

namespace
{

void
printFigure(const char *title, const std::vector<workloads::WorkloadSpec> &ws,
            const std::string &pf, bool accurate)
{
    SystemConfig cfg = benchConfig(pf);
    TablePrinter tp({"workload", "from L2C", "from LLC", "from DRAM",
                     "total PPKI"});
    tp.printHeader(title);
    const char *kind = accurate ? "pf_useful_from_" : "pf_useless_from_";
    double sums[3] = {};
    int n = 0;
    for (const auto &w : ws) {
        const SimResult &r = run(w, cfg);
        double l2 = r.ppki(std::string("l1d.") + kind + "l2c");
        double llc = r.ppki(std::string("l1d.") + kind + "llc");
        double dram = r.ppki(std::string("l1d.") + kind + "dram");
        tp.printRow({w.name, TablePrinter::fmt(l2, 1),
                     TablePrinter::fmt(llc, 1), TablePrinter::fmt(dram, 1),
                     TablePrinter::fmt(l2 + llc + dram, 1)});
        sums[0] += l2;
        sums[1] += llc;
        sums[2] += dram;
        ++n;
    }
    tp.printSeparator();
    tp.printRow({"AVG", TablePrinter::fmt(sums[0] / n, 1),
                 TablePrinter::fmt(sums[1] / n, 1),
                 TablePrinter::fmt(sums[2] / n, 1),
                 TablePrinter::fmt((sums[0] + sums[1] + sums[2]) / n, 1)});
}

} // namespace

int
main()
{
    printBanner("Figures 5 & 6 — where L1D prefetches are served from",
                "Fig. 5 (inaccurate PPKI) and Fig. 6 (accurate PPKI), "
                "IPCP and Berti");

    auto ws = benchWorkloads();
    prewarm(ws, {benchConfig("ipcp"),
                 benchConfig("berti")});
    printFigure("Figure 5a: INACCURATE IPCP prefetches (PPKI by level)",
                ws, "ipcp", false);
    printFigure("Figure 5b: INACCURATE Berti prefetches (PPKI by level)",
                ws, "berti", false);
    printFigure("Figure 6a: ACCURATE IPCP prefetches (PPKI by level)",
                ws, "ipcp", true);
    printFigure("Figure 6b: ACCURATE Berti prefetches (PPKI by level)",
                ws, "berti", true);

    std::printf("\npaper shape: the DRAM column dominates Fig. 5 (useless "
                "prefetches mostly come from DRAM), while Fig. 6's DRAM "
                "column is much smaller; IPCP issues far more than "
                "Berti.\n");
    return 0;
}
