/**
 * @file
 * Table II: storage overhead of TLP, regenerated from the live component
 * configuration (perceptron tables, page buffers, LQ/MSHR metadata) — and
 * contrasted with PPF's budget for the §II-B comparison.
 */

#include <cstdio>

#include "bench_common.hh"
#include "filter/ppf.hh"

using namespace tlpsim;

int
main()
{
    tlpsim::bench::printBanner("Table II — TLP storage overhead",
                               "Table II (6.98 KB breakdown)");

    StorageBudget tlp = Simulator::tlpStorageBudget();
    std::printf("%s\n", tlp.toTable("Table II: TLP storage").c_str());

    StatGroup scratch("s");
    Ppf ppf({}, &scratch);
    std::printf("%s\n",
                ppf.storage()
                    .toTable("For contrast: PPF storage (paper: ~40 KB)")
                    .c_str());

    std::printf("paper: FLP 3.21 KB + SLP 3.29 KB + LQ metadata 0.42 KB + "
                "MSHR metadata 0.06 KB = 6.98 KB total.\n");
    return 0;
}
