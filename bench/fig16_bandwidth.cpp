/**
 * @file
 * Figure 16: sensitivity to per-core DRAM bandwidth (1.6 → 25.6 GB/s) in
 * the 4-core context: (a) geomean weighted speedup, (b) ΔDRAM
 * transactions, for PPF / Hermes / Hermes+PPF / TLP.
 */

#include "bench_common.hh"

using namespace tlpsim;
using namespace tlpsim::bench;

int
main()
{
    printBanner("Figure 16 — DRAM bandwidth sensitivity",
                "Fig. 16a (speedup) and 16b (ΔDRAM) at 1.6–25.6 GB/s per "
                "core, 4-core, IPCP");

    auto ws = benchWorkloads();
    // Bandwidth sweeps are 5x the simulations of the other multi-core
    // figures; use half the mixes by default.
    int mix_count = std::max(1, benchMixes() / 2);
    auto mixes = benchMixSet(ws, mix_count);
    auto schemes = SchemeConfig::paperSchemes();

    std::vector<SystemConfig> grid;
    for (double gbps : {1.6, 3.2, 6.4, 12.8, 25.6}) {
        SystemConfig mc_base = benchConfigMc();
        mc_base.dram_gbps_per_core = gbps;
        grid.push_back(mc_base);
        for (const auto &s : schemes) {
            SystemConfig mc_scheme = benchConfigMc("ipcp", s);
            mc_scheme.dram_gbps_per_core = gbps;
            grid.push_back(mc_scheme);
        }
    }
    prewarmMixes(ws, mixes, grid);
    prewarmMixSingles(ws, mixes, benchConfig());

    TablePrinter tp({"GB/s/core", "ppf", "hermes", "hermes+ppf", "tlp"},
                    16);
    tp.printHeader("Figure 16a: geomean weighted speedup (%) vs bandwidth");
    TablePrinter tp_b({"GB/s/core", "ppf", "hermes", "hermes+ppf", "tlp"},
                      16);
    std::vector<std::vector<std::string>> dram_rows;

    for (double gbps : {1.6, 3.2, 6.4, 12.8, 25.6}) {
        SystemConfig mc_base = benchConfigMc();
        mc_base.dram_gbps_per_core = gbps;
        SystemConfig sc_base = benchConfig();

        std::vector<std::string> row{TablePrinter::fmt(gbps, 1)};
        std::vector<std::string> drow{TablePrinter::fmt(gbps, 1)};
        for (const auto &s : schemes) {
            SuiteSummary summary;
            double dsum = 0;
            int dn = 0;
            SystemConfig mc_scheme = benchConfigMc("ipcp", s);
            mc_scheme.dram_gbps_per_core = gbps;
            for (const auto &mix : mixes) {
                const SimResult &b = runMixCached(ws, mix, mc_base);
                auto singles = mixSingleIpcs(ws, mix, sc_base);
                const SimResult &r = runMixCached(ws, mix, mc_scheme);
                summary.add(mix.suite,
                            experiment::weightedSpeedupPct(r, b, singles));
                dsum += experiment::percentDelta(
                    static_cast<double>(r.dramTransactions()),
                    static_cast<double>(b.dramTransactions()));
                ++dn;
            }
            row.push_back(TablePrinter::fmtPct(summary.allMean()));
            drow.push_back(TablePrinter::fmtPct(dsum / dn));
        }
        tp.printRow(row);
        dram_rows.push_back(drow);
    }

    tp_b.printHeader("Figure 16b: DRAM transaction increase (%) vs "
                     "bandwidth");
    for (const auto &r : dram_rows)
        tp_b.printRow(r);

    std::printf("\npaper shape: TLP's advantage is largest when bandwidth "
                "is scarce (paper: +21.2%% at 1.6 GB/s vs +6.9%% at 25.6) "
                "and it reduces DRAM transactions at every point.\n");
    return 0;
}
