/**
 * @file
 * Figure 2: increase in DRAM transactions due to Hermes (single-core).
 * Figure 4: where the block actually lives when Hermes predicts off-chip
 *           (L1D / L2C / LLC / DRAM breakdown of speculative requests).
 */

#include "bench_common.hh"

using namespace tlpsim;
using namespace tlpsim::bench;

int
main()
{
    printBanner("Figures 2 & 4 — Hermes DRAM pressure and prediction "
                "outcome",
                "Fig. 2 (ΔDRAM txns) and Fig. 4 (prediction breakdown)");

    auto ws = benchWorkloads();
    SystemConfig base_cfg = benchConfig();
    SystemConfig hermes_cfg = benchConfig("ipcp",
                                          SchemeConfig::hermes());
    prewarm(ws, {base_cfg, hermes_cfg});

    TablePrinter tp2({"workload", "suite", "dram_base", "dram_hermes",
                      "increase"});
    tp2.printHeader("Figure 2: DRAM transaction increase from Hermes");
    SuiteSummary delta;
    for (const auto &w : ws) {
        const SimResult &b = run(w, base_cfg);
        const SimResult &h = run(w, hermes_cfg);
        double pct = experiment::percentDelta(
            static_cast<double>(h.dramTransactions()),
            static_cast<double>(b.dramTransactions()));
        delta.add(w.suite, pct);
        tp2.printRow({w.name, toString(w.suite),
                      std::to_string(b.dramTransactions()),
                      std::to_string(h.dramTransactions()),
                      TablePrinter::fmtPct(pct)});
    }
    tp2.printSeparator();
    tp2.printRow({"AVG SPEC", "", "", "",
                  TablePrinter::fmtPct(delta.specMean())});
    tp2.printRow({"AVG GAP", "", "", "",
                  TablePrinter::fmtPct(delta.gapMean())});
    tp2.printRow({"AVG ALL", "", "", "",
                  TablePrinter::fmtPct(delta.allMean())});
    std::printf("\npaper shape: Hermes *increases* DRAM transactions "
                "(paper: +5.2%% SPEC, +6.6%% GAP single-core).\n");

    TablePrinter tp4({"workload", "in L1D", "in L2C", "in LLC",
                      "in DRAM"});
    tp4.printHeader("Figure 4: location of block upon off-chip prediction "
                    "(% of speculative requests)");
    double sums[4] = {};
    int n = 0;
    for (const auto &w : ws) {
        const SimResult &h = run(w, hermes_cfg);
        double c[4] = {
            static_cast<double>(h.stat("oracle.spec_block_in_l1d")),
            static_cast<double>(h.stat("oracle.spec_block_in_l2c")),
            static_cast<double>(h.stat("oracle.spec_block_in_llc")),
            static_cast<double>(h.stat("oracle.spec_block_in_dram")),
        };
        double total = c[0] + c[1] + c[2] + c[3];
        if (total == 0)
            continue;
        std::vector<std::string> row{w.name};
        for (int i = 0; i < 4; ++i) {
            row.push_back(TablePrinter::fmt(c[i] / total * 100.0, 1) + "%");
            sums[i] += c[i] / total * 100.0;
        }
        ++n;
        tp4.printRow(row);
    }
    tp4.printSeparator();
    if (n > 0) {
        tp4.printRow({"AVG", TablePrinter::fmt(sums[0] / n, 1) + "%",
                      TablePrinter::fmt(sums[1] / n, 1) + "%",
                      TablePrinter::fmt(sums[2] / n, 1) + "%",
                      TablePrinter::fmt(sums[3] / n, 1) + "%"});
    }
    std::printf("\npaper shape: ~58%% of predictions are truly off-chip; "
                "a significant share of the wrong ones sit in the L1D — "
                "the motivation for FLP's selective delay.\n");
    return 0;
}
