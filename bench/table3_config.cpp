/**
 * @file
 * Table III: the simulated system configuration, printed from the live
 * SystemConfig defaults (single-core and 4-core variants).
 */

#include <cstdio>

#include "bench_common.hh"

using namespace tlpsim;

int
main()
{
    tlpsim::bench::printBanner("Table III — system configuration",
                               "Table III (Cascade Lake-like baseline)");

    std::printf("%s\n", SystemConfig::cascadeLake(1).description().c_str());
    std::printf("%s\n", SystemConfig::cascadeLake(4).description().c_str());
    return 0;
}
