/**
 * @file
 * Figure 17: designs enhanced with TLP's 7 KB storage budget — IPCP+7KB,
 * Berti+7KB (4x prefetcher tables) and Hermes+7KB (4x weight tables) vs
 * TLP, single-core speedups.
 */

#include "bench_common.hh"

using namespace tlpsim;
using namespace tlpsim::bench;

namespace
{

double
geomeanSpeedup(const std::vector<workloads::WorkloadSpec> &ws,
               const SystemConfig &cfg, const SystemConfig &base_cfg)
{
    std::vector<double> pcts;
    for (const auto &w : ws) {
        const SimResult &b = run(w, base_cfg);
        const SimResult &r = run(w, cfg);
        pcts.push_back(experiment::percentDelta(r.ipc[0], b.ipc[0]));
    }
    return experiment::geomeanSpeedupPct(pcts);
}

} // namespace

int
main()
{
    printBanner("Figure 17 — spending TLP's 7KB differently",
                "Fig. 17 (IPCP/Berti/Hermes enhanced with +7 KB vs TLP, "
                "single-core)");

    auto ws = benchWorkloads();

    for (const char *pf : {"ipcp", "berti"}) {
        SystemConfig big = benchConfig(pf);
        big.l1_pf_table_scale = 2;
        prewarm(ws, {benchConfig(pf), big,
                     benchConfig(pf, SchemeConfig::hermesPlus7kb()),
                     benchConfig(pf, SchemeConfig::tlp())});
    }

    for (const char *pf : {"ipcp", "berti"}) {
        SystemConfig base_cfg = benchConfig(pf);

        SystemConfig pf_big = benchConfig(pf);
        pf_big.l1_pf_table_scale = 2;   // 4x tables ≈ +7 KB

        SystemConfig hermes_big
            = benchConfig(pf, SchemeConfig::hermesPlus7kb());
        SystemConfig tlp = benchConfig(pf, SchemeConfig::tlp());

        TablePrinter tp({"design", "gm speedup"}, 24);
        tp.printHeader(std::string("Figure 17 (" ) + pf
                       + " at L1D): geomean speedup over baseline");
        tp.printRow({std::string(pf) + "+7KB",
                     TablePrinter::fmtPct(
                         geomeanSpeedup(ws, pf_big, base_cfg))});
        tp.printRow({"hermes+7KB",
                     TablePrinter::fmtPct(
                         geomeanSpeedup(ws, hermes_big, base_cfg))});
        tp.printRow({"tlp",
                     TablePrinter::fmtPct(
                         geomeanSpeedup(ws, tlp, base_cfg))});
    }

    std::printf("\npaper shape: extra table capacity alone buys little — "
                "TLP's gains come from the mechanism, not the storage.\n");
    return 0;
}
