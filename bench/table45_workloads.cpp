/**
 * @file
 * Table IV: graph-kernel characteristics; Table V: input-graph sizes —
 * regenerated from the kernel traits table and the synthetic graph
 * generators at the current bench scale.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace tlpsim;
using namespace tlpsim::bench;
using namespace tlpsim::workloads;

int
main()
{
    printBanner("Tables IV & V — GAP kernels and input graphs",
                "Table IV (kernel traits), Table V (graph sizes)");

    TablePrinter tp4({"kernel", "irreg elem", "style", "frontier"}, 16);
    tp4.printHeader("Table IV: graph kernels");
    for (GapKernel k : kAllGapKernels) {
        auto t = gapKernelTraits(k);
        tp4.printRow({t.name, t.irreg_elem_size, t.execution_style,
                      t.uses_frontier ? "Yes" : "No"});
    }

    auto p = scaleParams(setSizeFromEnv());
    TablePrinter tp5({"graph", "vertices (M)", "edges (M)", "avg deg",
                      "max deg"}, 15);
    tp5.printHeader("Table V: input graphs (synthetic, at bench scale)");
    for (GraphKind gk : p.graphs) {
        auto gp = GraphCache::get(gk, p.graph_scale, p.graph_degree, 42);
        const Graph &g = *gp;
        tp5.printRow({toString(gk),
                      TablePrinter::fmt(g.numVertices() / 1e6, 2),
                      TablePrinter::fmt(
                          static_cast<double>(g.numEdges()) / 1e6, 1),
                      TablePrinter::fmt(g.avgDegree(), 1),
                      std::to_string(g.maxDegree())});
    }
    std::printf("\npaper scale is 24-134M vertices; the synthetic graphs "
                "preserve each class's degree distribution at laptop "
                "scale (power-law skew for kron/twitter/web, uniform for "
                "urand, constant low degree for road).\n");
    return 0;
}
