/**
 * @file
 * Figure 15: performance contribution of each TLP component, 4-core with
 * IPCP: FLP (no delay), SLP alone, TSP, Delayed TSP, Selective TSP, TLP.
 */

#include "bench_common.hh"

using namespace tlpsim;
using namespace tlpsim::bench;

int
main()
{
    printBanner("Figure 15 — TLP component ablation",
                "Fig. 15 (FLP / SLP / TSP / Delayed TSP / Selective TSP / "
                "TLP, 4-core, IPCP)");

    auto ws = benchWorkloads();
    auto mixes = benchMixSet(ws);
    auto schemes = SchemeConfig::ablationSchemes();
    SystemConfig mc_base = benchConfigMc();
    SystemConfig sc_base = benchConfig();

    std::vector<SystemConfig> grid{mc_base};
    for (const auto &s : schemes)
        grid.push_back(benchConfigMc("ipcp", s));
    prewarmMixes(ws, mixes, grid);
    prewarmMixSingles(ws, mixes, sc_base);

    TablePrinter tp({"scheme", "weighted speedup", "dram delta"}, 20);
    tp.printHeader("Figure 15: geomean weighted speedup by component");

    for (const auto &s : schemes) {
        SuiteSummary summary;
        std::vector<double> dram;
        for (const auto &mix : mixes) {
            const SimResult &b = runMixCached(ws, mix, mc_base);
            auto singles = mixSingleIpcs(ws, mix, sc_base);
            const SimResult &r = runMixCached(
                ws, mix, benchConfigMc("ipcp", s));
            summary.add(mix.suite,
                        experiment::weightedSpeedupPct(r, b, singles));
            dram.push_back(experiment::percentDelta(
                static_cast<double>(r.dramTransactions()),
                static_cast<double>(b.dramTransactions())));
        }
        double dsum = 0;
        for (double d : dram)
            dsum += d;
        tp.printRow({s.name, TablePrinter::fmtPct(summary.allMean()),
                     TablePrinter::fmtPct(
                         dsum / static_cast<double>(dram.size()))});
    }
    std::printf("\npaper shape: compounding components compound gains "
                "(paper: FLP 2.9%% < SLP 6.9%% < TSP 8.4%% < Delayed TSP "
                "10.2%% < Selective TSP 11.4%% <= TLP 11.5%%).\n");
    return 0;
}
