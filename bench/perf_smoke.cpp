/**
 * @file
 * Perf smoke test for the parallel experiment engine: times a small fixed
 * sweep (tiny workload set × three schemes) sequentially and with
 * TLPSIM_JOBS workers, verifies the two phases produce bit-identical
 * per-workload stats, and emits machine-readable JSON (stdout and
 * BENCH_sweep.json) so the perf trajectory can be tracked across PRs.
 *
 * The sweep scale is fixed — independent of TLPSIM_WARMUP/TLPSIM_INSTRS —
 * so numbers are comparable between runs; only TLPSIM_JOBS (parallel
 * worker count, default hardware_concurrency) is honoured.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "workloads/workload.hh"

using namespace tlpsim;
using namespace tlpsim::experiment;

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

struct SweepResult
{
    double wall_s = 0.0;
    std::uint64_t total_cycles = 0;
    std::vector<SimResult> results;
};

SweepResult
runSweep(unsigned jobs, const std::vector<workloads::WorkloadSpec> &ws,
         const std::vector<SystemConfig> &grid)
{
    Runner runner(jobs);
    Clock::time_point start = Clock::now();
    for (const auto &cfg : grid) {
        for (const auto &w : ws)
            runner.submitSingle(w, cfg);
    }
    SweepResult out;
    for (const auto &cfg : grid) {
        for (const auto &w : ws) {
            const SimResult &r = runner.single(w, cfg);
            for (Cycle c : r.window_cycles)
                out.total_cycles += c;
            out.results.push_back(r);
        }
    }
    out.wall_s = secondsSince(start);
    return out;
}

} // namespace

int
main()
{
    auto ws = workloads::singleCoreWorkloads(workloads::SetSize::Tiny);
    std::vector<SystemConfig> grid;
    for (const SchemeConfig &s :
         {SchemeConfig::baseline(), SchemeConfig::hermes(),
          SchemeConfig::tlp()}) {
        SystemConfig cfg = SystemConfig::cascadeLake(1);
        cfg.warmup_instrs = 10'000;
        cfg.sim_instrs = 40'000;
        cfg.scheme = s;
        grid.push_back(cfg);
    }

    // Record every trace first so both timed phases measure simulation
    // throughput, not (once-per-process) trace construction.
    std::fprintf(stderr, "[perf_smoke] building %zu traces...\n", ws.size());
    for (const auto &w : ws)
        cachedTrace(w, grid.front().warmup_instrs + grid.front().sim_instrs);

    unsigned jobs_n = jobsFromEnv();
    std::fprintf(stderr, "[perf_smoke] sweep: %zu workloads x %zu schemes, "
                 "jobs 1 vs %u\n", ws.size(), grid.size(), jobs_n);

    SweepResult seq = runSweep(1, ws, grid);
    SweepResult par = runSweep(jobs_n, ws, grid);

    bool identical = seq.results.size() == par.results.size();
    for (std::size_t i = 0; identical && i < seq.results.size(); ++i) {
        identical = seq.results[i].stats == par.results[i].stats
            && seq.results[i].window_cycles == par.results[i].window_cycles;
    }

    double speedup = par.wall_s > 0.0 ? seq.wall_s / par.wall_s : 0.0;
    unsigned hw = std::thread::hardware_concurrency();

    // Host/toolchain metadata: throughput numbers are only comparable
    // between runs that share these, so the JSON carries them and the
    // perf gate (tools/perf_gate.py) surfaces baseline mismatches.
#if defined(__clang__)
    const char *compiler = "clang " __VERSION__;
#elif defined(__GNUC__)
    const char *compiler = "gcc " __VERSION__;
#else
    const char *compiler = "unknown";
#endif
#ifndef TLPSIM_BUILD_TYPE
#define TLPSIM_BUILD_TYPE ""
#endif
    const char *build_type = TLPSIM_BUILD_TYPE[0] != '\0'
        ? TLPSIM_BUILD_TYPE
#ifdef NDEBUG
        : "release-like";
#else
        : "debug-like";
#endif

    char json[768];
    std::snprintf(
        json, sizeof(json),
        "{\"bench\": \"perf_smoke\", \"workloads\": %zu, \"schemes\": %zu, "
        "\"design_points\": %zu, \"jobs\": %u, \"hw_threads\": %u, "
        "\"compiler\": \"%s\", \"build_type\": \"%s\", "
        "\"wall_s_jobs1\": %.3f, \"wall_s_jobsN\": %.3f, "
        "\"speedup\": %.2f, "
        "\"sim_kcycles_per_s_jobs1\": %.1f, "
        "\"sim_kcycles_per_s_jobsN\": %.1f, "
        "\"identical_stats\": %s}",
        ws.size(), grid.size(), ws.size() * grid.size(), jobs_n, hw,
        compiler, build_type,
        seq.wall_s, par.wall_s, speedup,
        seq.wall_s > 0 ? seq.total_cycles / seq.wall_s / 1e3 : 0.0,
        par.wall_s > 0 ? par.total_cycles / par.wall_s / 1e3 : 0.0,
        identical ? "true" : "false");

    std::printf("%s\n", json);
    if (FILE *f = std::fopen("BENCH_sweep.json", "w")) {
        std::fprintf(f, "%s\n", json);
        std::fclose(f);
    }

    if (!identical) {
        std::fprintf(stderr, "[perf_smoke] FAIL: parallel sweep diverged "
                     "from sequential sweep\n");
        return 1;
    }
    return 0;
}
