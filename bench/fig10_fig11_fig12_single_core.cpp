/**
 * @file
 * The single-core headline evaluation:
 *   Figure 10: speedup of PPF / Hermes / Hermes+PPF / TLP over baseline,
 *              for IPCP (10a) and Berti (10b) at L1D;
 *   Figure 11: increase in DRAM transactions, same design points;
 *   Figure 12: L1D prefetcher accuracy under each scheme.
 *
 * One simulation per (workload, scheme, prefetcher); the three figures
 * are different projections of the same runs.
 */

#include "bench_common.hh"

using namespace tlpsim;
using namespace tlpsim::bench;

namespace
{

void
evaluatePrefetcher(const std::vector<workloads::WorkloadSpec> &ws,
                   const std::string &pf, const char *tag)
{
    auto schemes = SchemeConfig::paperSchemes();
    SystemConfig base_cfg = benchConfig(pf);

    // --- Figure 10: speedup ------------------------------------------------
    {
        TablePrinter tp({"workload", "suite", "ppf", "hermes",
                         "hermes+ppf", "tlp"});
        tp.printHeader(std::string("Figure 10") + tag
                       + ": speedup over baseline (%)");
        std::map<std::string, SuiteSummary> summary;
        for (const auto &w : ws) {
            const SimResult &b = run(w, base_cfg);
            std::vector<std::string> row{w.name, toString(w.suite)};
            for (const auto &s : schemes) {
                const SimResult &r = run(w, benchConfig(pf, s));
                double pct = experiment::percentDelta(r.ipc[0], b.ipc[0]);
                summary[s.name].add(w.suite, pct);
                row.push_back(TablePrinter::fmtPct(pct));
            }
            tp.printRow(row);
        }
        tp.printSeparator();
        for (const char *agg : {"SPEC", "GAP", "GEOMEAN"}) {
            std::vector<std::string> row{std::string("GM ") + agg, ""};
            for (const auto &s : schemes) {
                SuiteSummary &sum = summary[s.name];
                double v = agg[0] == 'S' ? sum.specMean()
                    : (agg[0] == 'G' && agg[1] == 'A' ? sum.gapMean()
                                                      : sum.allMean());
                row.push_back(TablePrinter::fmtPct(v));
            }
            tp.printRow(row);
        }
    }

    // --- Figure 11: DRAM transaction increase -------------------------------
    {
        TablePrinter tp({"workload", "suite", "ppf", "hermes",
                         "hermes+ppf", "tlp"});
        tp.printHeader(std::string("Figure 11") + tag
                       + ": DRAM transaction increase over baseline (%)");
        std::map<std::string, std::vector<double>> deltas;
        for (const auto &w : ws) {
            const SimResult &b = run(w, base_cfg);
            std::vector<std::string> row{w.name, toString(w.suite)};
            for (const auto &s : schemes) {
                const SimResult &r = run(w, benchConfig(pf, s));
                double pct = experiment::percentDelta(
                    static_cast<double>(r.dramTransactions()),
                    static_cast<double>(b.dramTransactions()));
                deltas[s.name].push_back(pct);
                row.push_back(TablePrinter::fmtPct(pct));
            }
            tp.printRow(row);
        }
        tp.printSeparator();
        std::vector<std::string> row{"ARITH MEAN", ""};
        for (const auto &s : schemes) {
            double sum = 0;
            for (double d : deltas[s.name])
                sum += d;
            row.push_back(TablePrinter::fmtPct(
                sum / static_cast<double>(deltas[s.name].size())));
        }
        tp.printRow(row);
    }

    // --- Figure 12: prefetcher accuracy --------------------------------------
    {
        TablePrinter tp({"scheme", "SPEC acc", "GAP acc", "ALL acc"});
        tp.printHeader(std::string("Figure 12") + tag
                       + ": L1D prefetcher accuracy (%)");
        auto with_base = schemes;
        with_base.insert(with_base.begin(), SchemeConfig::baseline());
        for (const auto &s : with_base) {
            double acc[3] = {};
            int n[3] = {};
            for (const auto &w : ws) {
                const SimResult &r = run(w, benchConfig(pf, s));
                int suite = w.suite == workloads::Suite::Gap ? 1 : 0;
                acc[suite] += r.l1dPrefetchAccuracy() * 100.0;
                acc[2] += r.l1dPrefetchAccuracy() * 100.0;
                ++n[suite];
                ++n[2];
            }
            tp.printRow({s.name,
                         TablePrinter::fmt(n[0] ? acc[0] / n[0] : 0, 1),
                         TablePrinter::fmt(n[1] ? acc[1] / n[1] : 0, 1),
                         TablePrinter::fmt(n[2] ? acc[2] / n[2] : 0, 1)});
        }
    }
}

} // namespace

int
main()
{
    printBanner("Figures 10, 11, 12 — single-core evaluation",
                "Fig. 10 (speedup), Fig. 11 (ΔDRAM), Fig. 12 (accuracy); "
                "(a)=IPCP, (b)=Berti");

    auto ws = benchWorkloads();
    // Queue both prefetchers' full grids before rendering anything.
    for (const char *pf : {"ipcp", "berti"}) {
        std::vector<SystemConfig> grid{benchConfig(pf)};
        for (const auto &s : SchemeConfig::paperSchemes())
            grid.push_back(benchConfig(pf, s));
        prewarm(ws, grid);
    }
    evaluatePrefetcher(ws, "ipcp", "a (IPCP)");
    evaluatePrefetcher(ws, "berti", "b (Berti)");

    std::printf("\npaper shape: TLP wins the speedup geomean and is the "
                "only scheme that *reduces* DRAM transactions; TLP gives "
                "the highest prefetcher accuracy; GAP gains exceed "
                "SPEC.\n");
    return 0;
}
