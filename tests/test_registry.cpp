/**
 * The component registry: listings, error messages, out-of-tree
 * registration, and the equivalence guarantee — every deprecated enum
 * shim constructs a component that behaves identically (same name(),
 * same candidates/decisions, same stats after a fixed trigger sequence)
 * to its registry-built counterpart.
 */

#include <gtest/gtest.h>

#include "filter/ppf.hh"
#include "offchip/offchip_predictor.hh"
#include "offchip/slp.hh"
#include "prefetch/factory.hh"
#include "prefetch/next_line.hh"
#include "prefetch/spp.hh"

using namespace tlpsim;

namespace
{

/** A fixed, deterministic demand-access sequence: strided loads from a
 *  few IPs plus an irregular tail, enough to exercise every prefetcher's
 *  training path. */
std::vector<PrefetchTrigger>
triggerSequence()
{
    std::vector<PrefetchTrigger> seq;
    Cycle now = 100;
    for (unsigned i = 0; i < 64; ++i) {
        PrefetchTrigger t;
        t.ip = 0x400100 + (i % 3) * 8;
        t.vaddr = 0x10000 + i * 64 * (1 + i % 3);
        t.paddr = 0x90000 + i * 64 * (1 + i % 3);
        t.type = AccessType::Load;
        t.cache_hit = i % 4 != 0;
        t.now = now;
        now += 7;
        seq.push_back(t);
    }
    for (unsigned i = 0; i < 16; ++i) {
        PrefetchTrigger t;
        t.ip = 0x400200;
        t.vaddr = 0x40000 + (i * 2654435761u) % 0x8000;
        t.paddr = 0xa0000 + (i * 2654435761u) % 0x8000;
        t.type = AccessType::Load;
        t.now = now;
        now += 11;
        seq.push_back(t);
    }
    return seq;
}

/** Drive both prefetchers through the same sequence; candidates must be
 *  identical call by call. */
void
expectSameCandidates(Prefetcher &a, Prefetcher &b)
{
    std::vector<PrefetchCandidate> ca;
    std::vector<PrefetchCandidate> cb;
    unsigned call = 0;
    for (const PrefetchTrigger &t : triggerSequence()) {
        ca.clear();
        cb.clear();
        a.onAccess(t, ca);
        b.onAccess(t, cb);
        ASSERT_EQ(ca.size(), cb.size()) << "call " << call;
        for (std::size_t i = 0; i < ca.size(); ++i) {
            EXPECT_EQ(ca[i].addr, cb[i].addr) << "call " << call;
            EXPECT_EQ(ca[i].fill_level, cb[i].fill_level) << "call " << call;
            EXPECT_EQ(ca[i].metadata, cb[i].metadata) << "call " << call;
        }
        if (!t.cache_hit) {
            a.onFill(t.vaddr, t.ip, MemLevel::Dram, 120);
            b.onFill(t.vaddr, t.ip, MemLevel::Dram, 120);
        }
        ++call;
    }
}

} // namespace

// --- registry surface -------------------------------------------------------

TEST(Registry, BuiltinsAreRegistered)
{
    for (const char *name : {"next_line", "ipcp", "berti", "spp"})
        EXPECT_TRUE(prefetcherRegistry().contains(name)) << name;
    for (const char *name : {"ppf", "slp"})
        EXPECT_TRUE(filterRegistry().contains(name)) << name;
    for (const char *name : {"flp", "hermes"})
        EXPECT_TRUE(offchipRegistry().contains(name)) << name;
}

TEST(Registry, UnknownNameListsValidNames)
{
    try {
        prefetcherRegistry().build("stride_wizard", Config{});
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("stride_wizard"), std::string::npos) << msg;
        EXPECT_NE(msg.find("berti"), std::string::npos) << msg;
        EXPECT_NE(msg.find("ipcp"), std::string::npos) << msg;
        EXPECT_NE(msg.find("next_line"), std::string::npos) << msg;
        EXPECT_NE(msg.find("spp"), std::string::npos) << msg;
    }
}

TEST(Registry, DuplicateRegistrationIsRejected)
{
    EXPECT_THROW(prefetcherRegistry().add(
                     "ipcp", [](const Config &) -> std::unique_ptr<Prefetcher>
                     { return nullptr; }),
                 ConfigError);
}

TEST(Registry, OutOfTreeComponentDropsIn)
{
    // The extensibility story: a new backend is one registration away.
    if (!prefetcherRegistry().contains("test_next_line_x4")) {
        prefetcherRegistry().add("test_next_line_x4", [](const Config &cfg) {
            auto degree
                = static_cast<unsigned>(cfg.getUnsigned("degree", 4));
            return std::make_unique<NextLinePrefetcher>(degree);
        });
    }
    auto pf = prefetcherRegistry().build("test_next_line_x4", Config{});
    ASSERT_NE(pf, nullptr);
    PrefetchTrigger t;
    t.vaddr = 0x1000;
    t.type = AccessType::Load;
    std::vector<PrefetchCandidate> out;
    pf->onAccess(t, out);
    EXPECT_EQ(out.size(), 4u);
}

TEST(Registry, BuilderConfigOverridesParams)
{
    Config cfg;
    cfg.set("cs_degree", 1);
    cfg.set("table_scale_shift", 1);
    auto pf = prefetcherRegistry().build("ipcp", cfg);
    ASSERT_NE(pf, nullptr);
    // A scaled IPCP has strictly more table storage than the default.
    auto base = prefetcherRegistry().build("ipcp", Config{});
    EXPECT_GT(pf->storage().totalBits(), base->storage().totalBits());
}

// --- enum shim == registry equivalence --------------------------------------

TEST(RegistryEquivalence, L1PrefetcherShims)
{
    for (L1Prefetcher kind : {L1Prefetcher::NextLine, L1Prefetcher::Ipcp,
                              L1Prefetcher::Berti}) {
        for (unsigned scale : {0u, 2u}) {
            auto shim = makeL1Prefetcher(kind, scale);
            Config cfg;
            // Only prefetchers that declare the knob take it (next_line
            // has no tables to scale); the shim filters identically.
            const KnobSchema *ks
                = prefetcherRegistry().knobs(toString(kind));
            ASSERT_NE(ks, nullptr) << toString(kind);
            if (ks->contains("table_scale_shift"))
                cfg.set("table_scale_shift", scale);
            auto reg = prefetcherRegistry().build(toString(kind), cfg);
            ASSERT_NE(shim, nullptr);
            ASSERT_NE(reg, nullptr);
            EXPECT_STREQ(shim->name(), reg->name());
            EXPECT_EQ(shim->storage().totalBits(),
                      reg->storage().totalBits())
                << toString(kind) << " scale " << scale;
            expectSameCandidates(*shim, *reg);
        }
    }
    EXPECT_EQ(makeL1Prefetcher(L1Prefetcher::None), nullptr);
}

TEST(RegistryEquivalence, L2PrefetcherShims)
{
    {
        auto shim = makeL2Prefetcher(L2Prefetcher::Spp);
        auto reg = prefetcherRegistry().build("spp", Config{});
        EXPECT_STREQ(shim->name(), reg->name());
        EXPECT_EQ(shim->storage().totalBits(), reg->storage().totalBits());
        expectSameCandidates(*shim, *reg);
    }
    {
        auto shim = makeL2Prefetcher(L2Prefetcher::SppAggressive);
        Config cfg;
        cfg.set("aggressive", true);
        auto reg = prefetcherRegistry().build("spp", cfg);
        expectSameCandidates(*shim, *reg);
    }
    EXPECT_EQ(makeL2Prefetcher(L2Prefetcher::None), nullptr);
}

TEST(RegistryEquivalence, PpfFilter)
{
    StatGroup sa("a");
    StatGroup sb("b");
    Ppf::Params p;
    p.name = "f";
    Ppf direct(p, &sa);
    Config cfg;
    cfg.set("name", "f");
    auto reg = filterRegistry().build("ppf", cfg, &sb);
    ASSERT_NE(reg, nullptr);
    EXPECT_STREQ(direct.name(), reg->name());
    EXPECT_EQ(direct.storage().totalBits(), reg->storage().totalBits());

    for (const PrefetchTrigger &t : triggerSequence()) {
        Addr pf_paddr = t.paddr + 128;
        std::uint32_t meta32 = SppPrefetcher::packMeta(
            60 + t.paddr % 40, static_cast<std::uint16_t>(t.ip), 1);
        std::uint8_t fl_a = 2;
        std::uint8_t fl_b = 2;
        PredictionMeta ma;
        PredictionMeta mb;
        bool ra = direct.allow(t, 0, pf_paddr, meta32, fl_a, ma);
        bool rb = reg->allow(t, 0, pf_paddr, meta32, fl_b, mb);
        EXPECT_EQ(ra, rb);
        EXPECT_EQ(fl_a, fl_b);
        // Training hooks: alternate useful / useless / missed-reject.
        if (t.paddr % 3 == 0) {
            direct.onDemandHitPrefetched(pf_paddr, t.ip);
            reg->onDemandHitPrefetched(pf_paddr, t.ip);
        } else if (t.paddr % 3 == 1) {
            direct.onPrefetchedEvictUnused(pf_paddr);
            reg->onPrefetchedEvictUnused(pf_paddr);
        } else {
            direct.onDemandMiss(pf_paddr, t.ip);
            reg->onDemandMiss(pf_paddr, t.ip);
        }
    }
    EXPECT_EQ(sa.dump(), sb.dump());
}

TEST(RegistryEquivalence, SlpFilter)
{
    StatGroup sa("a");
    StatGroup sb("b");
    Slp::Params p;
    p.name = "f";
    Slp direct(p, &sa);
    Config cfg;
    cfg.set("name", "f");
    auto reg = filterRegistry().build("slp", cfg, &sb);
    ASSERT_NE(reg, nullptr);
    EXPECT_STREQ(direct.name(), reg->name());
    EXPECT_EQ(direct.storage().totalBits(), reg->storage().totalBits());

    for (const PrefetchTrigger &t : triggerSequence()) {
        Addr pf_vaddr = t.vaddr + 128;
        Addr pf_paddr = t.paddr + 128;
        std::uint8_t fl_a = 1;
        std::uint8_t fl_b = 1;
        PredictionMeta ma;
        PredictionMeta mb;
        bool ra = direct.allow(t, pf_vaddr, pf_paddr, 0, fl_a, ma);
        bool rb = reg->allow(t, pf_vaddr, pf_paddr, 0, fl_b, mb);
        EXPECT_EQ(ra, rb);
        EXPECT_EQ(ma.predicted_offchip, mb.predicted_offchip);
        if (ra) {
            Packet fill;
            fill.paddr = pf_paddr;
            fill.pred_meta = ma;
            fill.served_by
                = t.paddr % 2 == 0 ? MemLevel::Dram : MemLevel::L2C;
            direct.onPrefetchFill(fill);
            fill.pred_meta = mb;
            reg->onPrefetchFill(fill);
        }
    }
    EXPECT_EQ(sa.dump(), sb.dump());
}

TEST(RegistryEquivalence, OffchipPredictors)
{
    for (const char *name : {"flp", "hermes"}) {
        StatGroup sa("a");
        StatGroup sb("b");
        OffChipPredictor::Params p;
        p.name = "pred";
        if (std::string(name) == "hermes") {
            p.policy = OffchipPolicy::Immediate;
            p.tau_high = 4;
        }
        OffChipPredictor direct(p, &sa);
        Config cfg;
        cfg.set("name", "pred");
        auto reg = offchipRegistry().build(name, cfg, &sb);
        ASSERT_NE(reg, nullptr);
        EXPECT_EQ(direct.storage().totalBits(), reg->storage().totalBits());

        for (const PrefetchTrigger &t : triggerSequence()) {
            auto da = direct.predictLoad(t.ip, t.vaddr);
            auto db = reg->predictLoad(t.ip, t.vaddr);
            EXPECT_EQ(da.spec_now, db.spec_now) << name;
            EXPECT_EQ(da.delayed_flag, db.delayed_flag) << name;
            EXPECT_EQ(da.predicted_offchip, db.predicted_offchip) << name;
            bool went_offchip = t.paddr % 2 == 0;
            direct.train(da.meta, went_offchip);
            reg->train(db.meta, went_offchip);
        }
        EXPECT_EQ(sa.dump(), sb.dump()) << name;
    }
}

// The "hermes" registration differs from "flp" only in its defaults —
// explicit config wins, so a fully-specified subtree builds identical
// predictors under either name (what the Simulator relies on).
TEST(RegistryEquivalence, HermesDefaultsAreImmediate)
{
    StatGroup s("s");
    auto hermes = offchipRegistry().build("hermes", Config{}, &s);
    EXPECT_EQ(hermes->params().policy, OffchipPolicy::Immediate);
    EXPECT_EQ(hermes->params().tau_high, 4);
    StatGroup s2("s2");
    auto flp = offchipRegistry().build("flp", Config{}, &s2);
    EXPECT_EQ(flp->params().policy, OffchipPolicy::Selective);
}
