/**
 * Tests for the on-disk trace subsystem: the .tlt v1 format round trip,
 * bounded-memory streaming replay (including multi-pass wrap), every
 * malformed-file class (bad magic, unsupported version, truncation,
 * checksum and count mismatch) surfacing as a ConfigError that names the
 * file and byte offset, the ChampSim record mapping and converter, and
 * the workload-layer integration — "file:" resolution with content-hash
 * identities and a file-backed simulation bit-identical to the in-binary
 * kernel it was recorded from.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/runner.hh"
#include "tracefile/champsim.hh"
#include "tracefile/file_source.hh"
#include "tracefile/format.hh"
#include "workloads/workload.hh"

using namespace tlpsim;
using namespace tlpsim::tracefile;
namespace fs = std::filesystem;

namespace
{

/** Fresh per-test scratch path under the gtest temp root. */
std::string
scratchPath(const std::string &name)
{
    fs::path p = fs::path(::testing::TempDir()) / ("tlpsim_tf_" + name);
    fs::remove_all(p);
    return p.string();
}

std::vector<unsigned char>
readAllBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

void
writeAllBytes(const std::string &path, const std::vector<unsigned char> &b)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(b.data()),
              static_cast<std::streamsize>(b.size()));
}

/** A small trace exercising every record field. */
Trace
sampleTrace(std::size_t n = 10)
{
    Trace t("sample");
    for (std::size_t i = 0; i < n; ++i) {
        TraceInstr in;
        in.ip = 0x400000 + 4 * i;
        in.ld_vaddr = (i % 3 == 0) ? 0x7f0000000000ull + 64 * i : 0;
        in.st_vaddr = (i % 4 == 1) ? 0x7f8000000000ull + 64 * i : 0;
        in.src0 = static_cast<RegId>(i % kNumRegs);
        in.src1 = static_cast<RegId>((i * 7) % kNumRegs);
        in.dst = static_cast<RegId>((i * 13) % kNumRegs);
        in.branch = static_cast<BranchKind>(i % 4);
        in.taken = (i % 2) == 1;
        t.push(in);
    }
    return t;
}

void
expectSameInstr(const TraceInstr &a, const TraceInstr &b)
{
    EXPECT_EQ(a.ip, b.ip);
    EXPECT_EQ(a.ld_vaddr, b.ld_vaddr);
    EXPECT_EQ(a.st_vaddr, b.st_vaddr);
    EXPECT_EQ(a.src0, b.src0);
    EXPECT_EQ(a.src1, b.src1);
    EXPECT_EQ(a.dst, b.dst);
    EXPECT_EQ(a.branch, b.branch);
    EXPECT_EQ(a.taken, b.taken);
}

/** Expect fn() to throw ConfigError whose message contains every
 *  fragment (the file path plus the offset-naming phrase). */
template <typename Fn>
void
expectConfigError(Fn fn, const std::vector<std::string> &fragments)
{
    try {
        fn();
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        const std::string msg = e.what();
        for (const std::string &frag : fragments) {
            EXPECT_NE(msg.find(frag), std::string::npos)
                << "message '" << msg << "' lacks '" << frag << "'";
        }
    }
}

} // namespace

// ---------------------------------------------------------------- format

TEST(TraceFile, RoundTripPreservesEveryField)
{
    const std::string path = scratchPath("roundtrip.tlt");
    Trace t = sampleTrace(10);
    writeTraceFile(path, t, /*suite=*/1);

    TraceFileInfo info = verifyFile(path);
    EXPECT_EQ(info.name, "sample");
    EXPECT_EQ(info.version, 1u);
    EXPECT_EQ(info.suite, 1u);
    EXPECT_EQ(info.record_count, 10u);
    EXPECT_EQ(info.file_size,
              kFixedHeaderSize + 6 /*"sample"*/ + 10 * kRecordSize
                  + kFooterSize);

    FileTraceSource src(path);
    EXPECT_EQ(src.size(), 10u);
    EXPECT_EQ(src.name(), "sample");
    TraceInstr out[16];
    std::size_t got = src.read(out, 16);
    EXPECT_EQ(got, 10u);   // short at the pass boundary, never 0
    for (std::size_t i = 0; i < 10; ++i)
        expectSameInstr(out[i], t.at(i));
}

TEST(TraceFile, EncodeDecodeIsByteStableAndLittleEndian)
{
    TraceInstr in;
    in.ip = 0x0102030405060708ull;
    in.ld_vaddr = 0x1112131415161718ull;
    in.branch = BranchKind::Conditional;
    in.taken = true;
    unsigned char img[kRecordSize];
    encodeRecord(in, img);
    EXPECT_EQ(img[0], 0x08);   // least-significant byte first
    EXPECT_EQ(img[7], 0x01);
    EXPECT_EQ(img[8], 0x18);
    expectSameInstr(decodeRecord(img), in);

    // An out-of-range branch byte must clamp, not forge an enum value.
    img[27] = 0xee;
    EXPECT_EQ(decodeRecord(img).branch, BranchKind::NotBranch);
}

TEST(TraceFile, StreamingWrapsAcrossPassesLikeMemory)
{
    const std::string path = scratchPath("wrap.tlt");
    Trace t = sampleTrace(7);
    writeTraceFile(path, t, 0);

    // A 3-record chunk forces refills inside a pass and a seek at each
    // pass boundary; 2.5 passes must replay the memory stream exactly.
    FileTraceSource fsrc(path, /*chunk_records=*/3);
    EXPECT_EQ(fsrc.chunkBytes(), 3 * kRecordSize);
    TraceReader file_r(fsrc, 3);
    TraceReader mem_r(t, 3);
    for (std::size_t i = 0; i < 7 * 2 + 3; ++i) {
        EXPECT_EQ(file_r.position(), mem_r.position());
        expectSameInstr(file_r.next(), mem_r.next());
    }
    EXPECT_EQ(file_r.consumed(), 17u);
}

TEST(TraceFile, ChunkNeverExceedsOnePassOfTinyTraces)
{
    const std::string path = scratchPath("tiny.tlt");
    writeTraceFile(path, sampleTrace(2), 0);
    FileTraceSource src(path);   // default chunk is 4096 records
    EXPECT_EQ(src.chunkBytes(), 2 * kRecordSize);
}

TEST(TraceFile, WriterRefusesEmptyTraceAndLeavesNoFile)
{
    const std::string path = scratchPath("empty.tlt");
    {
        TraceFileWriter w(path, {"nothing", 0});
        expectConfigError([&] { w.finish(); }, {path, "empty"});
    }
    // Neither the final name nor the temp file survives.
    EXPECT_FALSE(fs::exists(path));
    EXPECT_FALSE(fs::exists(path + ".tmp"));
}

// ------------------------------------------------------- malformed files

TEST(TraceFile, BadMagicNamesFileAndOffset)
{
    const std::string path = scratchPath("badmagic.tlt");
    writeTraceFile(path, sampleTrace(), 0);
    auto bytes = readAllBytes(path);
    bytes[0] = 'X';
    writeAllBytes(path, bytes);
    expectConfigError([&] { readInfo(path); },
                      {path, "bad magic at byte 0"});
}

TEST(TraceFile, UnsupportedVersionNamesBothVersions)
{
    const std::string path = scratchPath("version.tlt");
    writeTraceFile(path, sampleTrace(), 0);
    auto bytes = readAllBytes(path);
    bytes[8] = 9;   // version u32 LE at byte 8
    writeAllBytes(path, bytes);
    expectConfigError(
        [&] { readInfo(path); },
        {path, "unsupported format version 9 at byte 8", "version 1"});
}

TEST(TraceFile, TailTruncationLosesTheFooter)
{
    const std::string path = scratchPath("chopped.tlt");
    writeTraceFile(path, sampleTrace(), 0);
    auto bytes = readAllBytes(path);
    bytes.resize(bytes.size() - 5);   // cut mid-footer
    writeAllBytes(path, bytes);
    expectConfigError([&] { readInfo(path); },
                      {path, "bad footer magic", "truncated"});
}

TEST(TraceFile, MidRecordCutNamesTheRecord)
{
    const std::string path = scratchPath("midrecord.tlt");
    writeTraceFile(path, sampleTrace(10), 0);
    auto bytes = readAllBytes(path);
    // Splice 10 bytes out of the record region, keeping the footer: the
    // region is no longer a whole number of records.
    const std::size_t footer_at = bytes.size() - kFooterSize;
    bytes.erase(bytes.begin() + static_cast<std::ptrdiff_t>(footer_at - 10),
                bytes.begin() + static_cast<std::ptrdiff_t>(footer_at));
    writeAllBytes(path, bytes);
    expectConfigError([&] { readInfo(path); },
                      {path, "truncated mid-record", "22 bytes into"});
}

TEST(TraceFile, WholeRecordLossIsACountMismatch)
{
    const std::string path = scratchPath("count.tlt");
    writeTraceFile(path, sampleTrace(10), 0);
    auto bytes = readAllBytes(path);
    const std::size_t footer_at = bytes.size() - kFooterSize;
    bytes.erase(
        bytes.begin() + static_cast<std::ptrdiff_t>(footer_at - kRecordSize),
        bytes.begin() + static_cast<std::ptrdiff_t>(footer_at));
    writeAllBytes(path, bytes);
    expectConfigError(
        [&] { readInfo(path); },
        {path, "record count mismatch", "declares 10", "holds 9"});
}

TEST(TraceFile, PayloadCorruptionFailsTheChecksum)
{
    const std::string path = scratchPath("corrupt.tlt");
    writeTraceFile(path, sampleTrace(10), 0);
    auto bytes = readAllBytes(path);
    bytes[kFixedHeaderSize + 6 + 40] ^= 0x01;   // one bit, mid-payload
    writeAllBytes(path, bytes);

    // Structure is intact...
    EXPECT_NO_THROW(readInfo(path));
    // ...but the up-front verification pass catches it,
    expectConfigError([&] { verifyFile(path); },
                      {path, "checksum mismatch", "computed"});
    // and so does a streaming replay at the end of its first pass.
    FileTraceSource src(path);
    TraceInstr out[16];
    expectConfigError(
        [&] {
            for (int i = 0; i < 4; ++i)
                src.read(out, 4);
        },
        {path, "checksum mismatch"});
}

// --------------------------------------------------------------- champsim

namespace
{

void
putU64LE(unsigned char *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<unsigned char>(v >> (8 * i));
}

struct ChampSimFields
{
    std::uint64_t ip = 0x400000;
    bool is_branch = false;
    bool taken = false;
    std::uint8_t dest_regs[2] = {0, 0};
    std::uint8_t src_regs[4] = {0, 0, 0, 0};
    std::uint64_t dest_mem[2] = {0, 0};
    std::uint64_t src_mem[4] = {0, 0, 0, 0};
};

std::vector<unsigned char>
champsimRecord(const ChampSimFields &f)
{
    std::vector<unsigned char> b(kChampSimRecordSize, 0);
    putU64LE(b.data(), f.ip);
    b[8] = f.is_branch ? 1 : 0;
    b[9] = f.taken ? 1 : 0;
    b[10] = f.dest_regs[0];
    b[11] = f.dest_regs[1];
    for (int i = 0; i < 4; ++i)
        b[12 + i] = f.src_regs[i];
    for (int i = 0; i < 2; ++i)
        putU64LE(b.data() + 16 + 8 * i, f.dest_mem[i]);
    for (int i = 0; i < 4; ++i)
        putU64LE(b.data() + 32 + 8 * i, f.src_mem[i]);
    return b;
}

} // namespace

TEST(ChampSim, MemoryOperandsMapToFirstNonzero)
{
    ChampSimFields f;
    f.src_mem[1] = 0x1000;   // slot 0 empty: the scan skips zeros
    f.dest_mem[0] = 0x2000;
    TraceInstr i = decodeChampSimRecord(champsimRecord(f).data());
    EXPECT_EQ(i.ld_vaddr, 0x1000u);
    EXPECT_EQ(i.st_vaddr, 0x2000u);
    EXPECT_EQ(i.branch, BranchKind::NotBranch);
    EXPECT_TRUE(i.isLoad());
    EXPECT_TRUE(i.isStore());
}

TEST(ChampSim, RegistersRenumberIntoTlpsimSpace)
{
    ChampSimFields f;
    f.src_regs[0] = 1;
    f.src_regs[1] = 200;
    f.dest_regs[0] = 64;
    TraceInstr i = decodeChampSimRecord(champsimRecord(f).data());
    EXPECT_EQ(i.src0, 1);            // (1-1)%63+1
    EXPECT_EQ(i.src1, (200 - 1) % 63 + 1);
    EXPECT_EQ(i.dst, 1);             // (64-1)%63+1 wraps but stays nonzero
    EXPECT_NE(i.src1, kNoReg);
}

TEST(ChampSim, BranchKindRecoveredFromRegisterReads)
{
    // Reads FLAGS -> conditional.
    ChampSimFields cond;
    cond.is_branch = true;
    cond.taken = true;
    cond.src_regs[0] = kChampSimRegIP;
    cond.src_regs[1] = kChampSimRegFlags;
    TraceInstr c = decodeChampSimRecord(champsimRecord(cond).data());
    EXPECT_EQ(c.branch, BranchKind::Conditional);
    EXPECT_TRUE(c.taken);

    // Reads a general register (a target pointer) -> indirect.
    ChampSimFields ind;
    ind.is_branch = true;
    ind.taken = true;
    ind.src_regs[0] = 3;
    TraceInstr i = decodeChampSimRecord(champsimRecord(ind).data());
    EXPECT_EQ(i.branch, BranchKind::Indirect);

    // Reads only IP/SP -> direct jump or call.
    ChampSimFields dir;
    dir.is_branch = true;
    dir.taken = true;
    dir.src_regs[0] = kChampSimRegIP;
    dir.src_regs[1] = kChampSimRegSP;
    TraceInstr d = decodeChampSimRecord(champsimRecord(dir).data());
    EXPECT_EQ(d.branch, BranchKind::Direct);
}

TEST(ChampSim, ConvertsRawFileEndToEnd)
{
    const std::string in_path = scratchPath("cs.trace");
    const std::string out_path = scratchPath("cs.tlt");
    std::vector<unsigned char> raw;
    for (int i = 0; i < 5; ++i) {
        ChampSimFields f;
        f.ip = 0x400000 + 4u * static_cast<unsigned>(i);
        f.src_mem[0] = (i % 2 == 0) ? 0x10000 + 64u * static_cast<unsigned>(i)
                                    : 0;
        f.is_branch = i == 4;
        f.taken = i == 4;
        f.src_regs[0] = kChampSimRegFlags;
        auto rec = champsimRecord(f);
        raw.insert(raw.end(), rec.begin(), rec.end());
    }
    writeAllBytes(in_path, raw);

    ChampSimConvertOptions opt;
    ChampSimConvertStats stats = convertChampSim(in_path, out_path, opt);
    EXPECT_EQ(stats.records, 5u);
    EXPECT_EQ(stats.loads, 3u);
    EXPECT_EQ(stats.branches, 1u);
    // Default name: input basename with the ".trace" suffix stripped.
    EXPECT_EQ(stats.name, "tlpsim_tf_cs");

    TraceFileInfo info = verifyFile(out_path);
    EXPECT_EQ(info.record_count, 5u);
    EXPECT_EQ(info.name, "tlpsim_tf_cs");

    FileTraceSource src(out_path);
    TraceInstr out[8];
    ASSERT_EQ(src.read(out, 8), 5u);
    EXPECT_EQ(out[0].ip, 0x400000u);
    EXPECT_EQ(out[4].branch, BranchKind::Conditional);
}

TEST(ChampSim, TruncatedInputIsAnErrorNotATrace)
{
    const std::string in_path = scratchPath("cut.trace");
    const std::string out_path = scratchPath("cut.tlt");
    auto rec = champsimRecord(ChampSimFields{});
    std::vector<unsigned char> raw(rec);
    raw.insert(raw.end(), rec.begin(), rec.begin() + 20);   // 1.3 records
    writeAllBytes(in_path, raw);
    expectConfigError(
        [&] {
            convertChampSim(in_path, out_path, ChampSimConvertOptions{});
        },
        {in_path, "20 bytes into", "record #1"});
    EXPECT_FALSE(fs::exists(out_path));   // no half-written output
}

TEST(ChampSim, LimitStopsEarly)
{
    const std::string in_path = scratchPath("lim.trace");
    const std::string out_path = scratchPath("lim.tlt");
    std::vector<unsigned char> raw;
    for (int i = 0; i < 9; ++i) {
        auto rec = champsimRecord(ChampSimFields{});
        raw.insert(raw.end(), rec.begin(), rec.end());
    }
    writeAllBytes(in_path, raw);
    ChampSimConvertOptions opt;
    opt.limit = 4;
    EXPECT_EQ(convertChampSim(in_path, out_path, opt).records, 4u);
    EXPECT_EQ(readInfo(out_path).record_count, 4u);
}

TEST(ChampSim, CustomDecompressorStreamsRecords)
{
    const std::string in_path = scratchPath("pipe.trace");
    const std::string out_path = scratchPath("pipe.tlt");
    std::vector<unsigned char> raw;
    for (int i = 0; i < 5; ++i) {
        auto rec = champsimRecord(ChampSimFields{});
        raw.insert(raw.end(), rec.begin(), rec.end());
    }
    writeAllBytes(in_path, raw);
    ChampSimConvertOptions opt;
    opt.decompress_cmd = "cat --";
    EXPECT_EQ(convertChampSim(in_path, out_path, opt).records, 5u);
    EXPECT_EQ(readInfo(out_path).record_count, 5u);
}

TEST(ChampSim, KilledDecompressorIsAnErrorNamingTheCommand)
{
    // The child dies of SIGKILL having written nothing: the stream looks
    // like a clean (if empty) EOF, so only the wait status can tell the
    // converter the producer was killed. The shell's kill builtin kills
    // the popen'd shell itself (a wrapped command would be reaped by the
    // shell and show up as exit 137, not a signal); the trailing `#`
    // comments out the appended path.
    const std::string in_path = scratchPath("killed.trace");
    const std::string out_path = scratchPath("killed.tlt");
    writeAllBytes(in_path, champsimRecord(ChampSimFields{}));
    ChampSimConvertOptions opt;
    opt.decompress_cmd = "kill -KILL $$ #";
    expectConfigError(
        [&] { convertChampSim(in_path, out_path, opt); },
        {in_path, "kill -KILL", "killed by signal 9"});
}

TEST(ChampSim, FailingDecompressorExitStatusSurfaces)
{
    // The child emits every record, then exits nonzero — the output
    // alone is a perfectly valid trace, so the exit status must still
    // fail the conversion.
    const std::string in_path = scratchPath("exit3.trace");
    const std::string out_path = scratchPath("exit3.tlt");
    writeAllBytes(in_path, champsimRecord(ChampSimFields{}));
    ChampSimConvertOptions opt;
    opt.decompress_cmd = "sh -c 'cat \"$0\"; exit 3'";
    expectConfigError(
        [&] { convertChampSim(in_path, out_path, opt); },
        {in_path, "exit 3", "exited with status 3", "corrupt archive"});
}

// ------------------------------------------------- workload integration

TEST(FileWorkloads, ResolveAppendsVerifiedSpecWithContentIdentity)
{
    const std::string path = scratchPath("wl.tlt");
    writeTraceFile(path, sampleTrace(8), /*suite=*/1);

    auto ws = workloads::singleCoreWorkloads(workloads::SetSize::Tiny);
    const std::size_t before = ws.size();
    auto idx = workloads::resolveWorkloadIndices(
        ws, {"file:" + path, ws[0].name, "file:" + path}, "test");
    ASSERT_EQ(idx.size(), 3u);
    EXPECT_EQ(idx[0], idx[2]);   // same path resolves once
    EXPECT_EQ(ws.size(), before + 1);

    const auto &w = ws[static_cast<std::size_t>(idx[0])];
    EXPECT_TRUE(w.isFile());
    EXPECT_EQ(w.name, "sample");
    EXPECT_EQ(w.suite, workloads::Suite::Gap);
    EXPECT_EQ(w.pointName().rfind("tracefile:v1:", 0), 0u);
    EXPECT_EQ(w.pointName(), w.identity);

    // The content hash — not the path — keys design points.
    SystemConfig cfg = SystemConfig::cascadeLake(1);
    EXPECT_NE(experiment::singlePointKey(w, cfg).find(w.identity),
              std::string::npos);
}

TEST(FileWorkloads, PlainNamesNeverMatchFileSpecs)
{
    const std::string path = scratchPath("shadow.tlt");
    Trace t = sampleTrace(4);
    t.setName("mcf_pchase");   // collides with an in-binary kernel
    writeTraceFile(path, t, 0);

    auto ws = workloads::singleCoreWorkloads(workloads::SetSize::Tiny);
    auto idx = workloads::resolveWorkloadIndices(
        ws, {"file:" + path, "mcf_pchase"}, "test");
    ASSERT_EQ(idx.size(), 2u);
    EXPECT_NE(idx[0], idx[1]);
    EXPECT_FALSE(ws[static_cast<std::size_t>(idx[1])].isFile());
}

TEST(FileWorkloads, ResolutionCollectsFileAndNameErrorsTogether)
{
    const std::string bad = scratchPath("bad.tlt");
    writeAllBytes(bad, {'n', 'o', 'p', 'e'});
    auto ws = workloads::singleCoreWorkloads(workloads::SetSize::Tiny);
    expectConfigError(
        [&] {
            workloads::resolveWorkloadIndices(
                ws, {"file:" + bad, "bogus_name"}, "--workload");
        },
        {bad, "truncated", "bogus_name", "file:PATH"});
}

TEST(FileWorkloads, FileBackedSpecCannotBeRecorded)
{
    const std::string path = scratchPath("norec.tlt");
    writeTraceFile(path, sampleTrace(4), 0);
    workloads::WorkloadSpec w = workloads::fileTraceWorkload(path);
    expectConfigError([&] { workloads::buildTrace(w, 100, 7); },
                      {"file-backed", path});
}

TEST(FileWorkloads, ReplayIsBitIdenticalToInBinaryKernel)
{
    auto ws = workloads::singleCoreWorkloads(workloads::SetSize::Tiny);
    const auto &kernel = ws[0];

    SystemConfig cfg = SystemConfig::cascadeLake(1);
    cfg.warmup_instrs = 2'000;
    cfg.sim_instrs = 5'000;

    // Dump exactly the stream a simulation consumes (warmup + sim,
    // default seed), then replay it from disk.
    const std::string path = scratchPath("replay.tlt");
    const Trace &trace = experiment::cachedTrace(
        kernel, cfg.warmup_instrs + cfg.sim_instrs);
    writeTraceFile(path, trace,
                   kernel.suite == workloads::Suite::Gap ? 1 : 0);
    workloads::WorkloadSpec file_w = workloads::fileTraceWorkload(path);

    SimResult mem = experiment::runSingleCore(kernel, cfg);
    SimResult file = experiment::runSingleCore(file_w, cfg);

    EXPECT_EQ(mem.scheme, file.scheme);
    EXPECT_EQ(mem.instrs, file.instrs);
    EXPECT_EQ(mem.ipc, file.ipc);   // element-wise ==: bit-exact
    EXPECT_EQ(mem.warmup_end_cycle, file.warmup_end_cycle);
    EXPECT_EQ(mem.window_cycles, file.window_cycles);
    EXPECT_EQ(mem.stats, file.stats);
}
