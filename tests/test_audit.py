#!/usr/bin/env python3
"""Golden-output tests for tlpsim-audit (ctest: test_audit, -L audit).

The selftest module (tools/tlpsim_audit/selftest.py) asserts that each
checker *finds* its seeded violation; this test pins down the rendered
finding text itself — the exact `file:line: error: [check] message`
lines a developer and the CI log will read. One passing and one
seeded-violation fixture per checker, plus the waiver fixture (the
`// tlpsim:waive(<check>) <reason>` syntax must keep suppressing, and
keep rendering as `waived:` under --show-waived).

Line numbers in the goldens are resolved from source markers in the
fixtures, so editing a fixture cannot silently desynchronize the
expected line.
"""

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT))

from tools.tlpsim_audit import selftest  # noqa: E402


def fixture(name):
    return next(f for f in selftest.FIXTURES if f["name"] == name)


def line_with(fx, rel, marker):
    return selftest._line_with(fx["files"][rel], marker)


def golden_cases():
    """[(fixture, expected_exit, [exact output lines])]."""
    cases = []

    fx = fixture("determinism-violation")
    rand_line = line_with(fx, "src/core/clock_use.cc",
                          "return sum + rand();")
    ptr_line = line_with(fx, "src/core/clock_use.cc",
                         "std::map<char *, int>")
    cases.append((fx, 1, [
        f"src/core/clock_use.cc:{rand_line}: error: [determinism] "
        f"rand()/srand() is seeded per-process; use common/rng.hh",
        f"src/core/clock_use.cc:{ptr_line}: error: [determinism] "
        f"pointer-keyed ordered container: iteration order follows "
        f"allocation addresses, which ASLR reshuffles per run; key by "
        f"a stable id instead",
    ]))
    cases.append((fixture("determinism-clean"), 0, []))

    fx = fixture("determinism-waived")
    waived_line = line_with(fx, "src/core/clock_use.cc",
                            "return rand();")
    cases.append((fx, 0, [
        f"src/core/clock_use.cc:{waived_line}: waived: [determinism] "
        f"rand()/srand() is seeded per-process; use common/rng.hh",
    ]))

    fx = fixture("layering-violation")
    inc_line = line_with(fx, "src/common/util.hh",
                         '#include "sim/runner.hh"')
    cases.append((fx, 1, [
        f"src/common/util.hh:{inc_line}: error: [layering] "
        f"module 'common' may not include 'sim/runner.hh': declared "
        f"deps are {{none}}; either invert the dependency or widen the "
        f"DAG deliberately in layering.ALLOWED",
    ]))
    cases.append((fixture("layering-clean"), 0, []))

    fx = fixture("schema-violation")
    stride_line = line_with(fx, "src/prefetch/thing.cc",
                            '{"stride", 4u,')
    cases.append((fx, 1, [
        f"src/prefetch/thing.cc:{stride_line}: error: [schema] "
        f"component 'thing': knob 'stride' default is the literal "
        f"'4u' instead of being rendered from a default-constructed "
        f"Params (compare ThingPrefetcher::Params.stride); literals "
        f"drift silently when the struct initializer changes",
    ]))
    cases.append((fixture("schema-clean"), 0, []))

    fx = fixture("reset-violation")
    count_line = line_with(fx, "src/prefetch/thing.hh",
                           "unsigned count_;")
    site_line = line_with(fx, "src/prefetch/thing.cc",
                          "make_unique<ThingPrefetcher>")
    cases.append((fx, 1, [
        f"src/prefetch/thing.hh:{count_line}: error: [reset] "
        f"ThingPrefetcher::count_ (unsigned) has no NSDMI and appears "
        f"in no constructor init list; a rebuilt component would start "
        f"from stale memory (built by the registry at "
        f"src/prefetch/thing.cc:{site_line})",
    ]))
    cases.append((fixture("reset-clean"), 0, []))

    return cases


def main():
    failures = []
    cxx = selftest._compiler()
    cases = golden_cases()
    for fx, expected_exit, goldens in cases:
        code, output = selftest.run_fixture(fx, cxx)
        out_lines = output.splitlines()
        if code != expected_exit:
            failures.append(f"{fx['name']}: exit {code}, expected "
                            f"{expected_exit}")
        for golden in goldens:
            if golden not in out_lines:
                failures.append(
                    f"{fx['name']}: missing golden line:\n"
                    f"  expected: {golden}\n"
                    f"  got:\n" + "\n".join(
                        f"    {ln}" for ln in out_lines))
        if not goldens and expected_exit == 0:
            noisy = [ln for ln in out_lines if ": error: [" in ln]
            if noisy:
                failures.append(f"{fx['name']}: expected no findings, "
                                f"got: {'; '.join(noisy)}")

    if failures:
        for f in failures:
            print(f"FAIL {f}", file=sys.stderr)
        print(f"test_audit: {len(failures)} failure(s) over "
              f"{len(cases)} case(s)", file=sys.stderr)
        return 1
    print(f"test_audit: {len(cases)} golden case(s) ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
