/**
 * Core model tests: IPC sanity under known dataflow patterns, branch
 * mispredict stalls, store-to-load forwarding, TLB walk plumbing, and the
 * off-chip prediction hook points.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"

#include "core/core.hh"
#include "mem/dram.hh"
#include "test_util.hh"
#include "tlb/page_table.hh"
#include "tlb/tlb.hh"
#include "trace/trace.hh"
#include "workloads/recorder.hh"

using namespace tlpsim;
using namespace tlpsim::test;

namespace
{

/** Minimal single-core rig: core + mock L1I/L1D/walk backends. */
struct CoreRig
{
    explicit CoreRig(const Trace &trace, Cycle l1d_latency = 4,
                     OffChipPredictor *offchip = nullptr,
                     DramController *dram = nullptr)
        : stats("t"), l1i(1, MemLevel::L1D), l1d(l1d_latency, MemLevel::L1D),
          walk(20, MemLevel::L2C), dtlb({"dtlb", 64, 4, 1}, &stats),
          stlb({"stlb", 1536, 12, 8}, &stats), tlbs(&dtlb, &stlb),
          reader(trace)
    {
        Core::Params cp;
        cp.name = "cpu0";
        Core::Ports ports;
        ports.trace = &reader;
        ports.l1i = &l1i_always_hit;
        ports.l1d = &l1d;
        ports.walk_target = &walk;
        ports.tlbs = &tlbs;
        ports.page_table = &pt;
        ports.dram = dram;
        ports.offchip = offchip;
        core = std::make_unique<Core>(cp, ports, &stats);
    }

    /** Run until @p instrs retire; returns cycles taken. */
    Cycle
    runUntil(InstrCount instrs, Cycle max_cycles = 2'000'000)
    {
        Cycle c = 0;
        while (core->retired() < instrs && c < max_cycles) {
            core->tick(c);
            l1i.tick(c);
            l1d.tick(c);
            walk.tick(c);
            ++c;
        }
        return c;
    }

    /** L1I that always hits (isolates data-side behaviour). */
    struct AlwaysHit : MemoryBackend
    {
        bool sendRead(const Packet &) override { return true; }
        bool sendWrite(const Packet &) override { return true; }
        bool probe(Addr) const override { return true; }
        void tick(Cycle) override {}
    } l1i_always_hit;

    StatGroup stats;
    MockBackend l1i;
    MockBackend l1d;
    MockBackend walk;
    PageTable pt;
    Tlb dtlb;
    Tlb stlb;
    TranslationStack tlbs;
    TraceReader reader;
    std::unique_ptr<Core> core;
};

Trace
makeTrace(const std::function<void(workloads::TraceRecorder &)> &fn,
          std::uint64_t n = 10'000)
{
    Trace t("t");
    workloads::TraceRecorder rec(t, {n, Addr{1} << 32});
    fn(rec);
    return t;
}

} // namespace

TEST(Core, IndependentAluRunsAtFetchWidth)
{
    Trace t = makeTrace([](auto &rec) {
        while (!rec.full())
            rec.alu();
    });
    CoreRig rig(t);
    Cycle c = rig.runUntil(8000);
    double ipc = 8000.0 / static_cast<double>(c);
    EXPECT_GT(ipc, 3.5);   // 4-wide
    EXPECT_LE(ipc, 4.05);
}

TEST(Core, DependentChainRunsAtOneIpc)
{
    Trace t = makeTrace([](auto &rec) {
        RegId r = rec.alu();
        while (!rec.full())
            r = rec.alu(r);   // serial dependence
    });
    CoreRig rig(t);
    Cycle c = rig.runUntil(8000);
    double ipc = 8000.0 / static_cast<double>(c);
    EXPECT_GT(ipc, 0.9);
    EXPECT_LT(ipc, 1.1);
}

TEST(Core, LoadLatencyBoundsDependentChain)
{
    // Serial chain of dependent loads: IPC ≈ 1 / (L1D latency + overhead).
    Trace t = makeTrace([](auto &rec) {
        Addr a = Addr{1} << 32;
        RegId r = kNoReg;
        while (!rec.full())
            r = rec.load(a, r);
    });
    CoreRig rig(t, 8);
    Cycle c = rig.runUntil(2000);
    double cpi = static_cast<double>(c) / 2000.0;
    EXPECT_GT(cpi, 7.0);    // at least the L1D latency per load
    EXPECT_LT(cpi, 14.0);
}

TEST(Core, MispredictsThrottleFetch)
{
    // Random branches: every mispredict stalls fetch until resolution.
    Trace biased = makeTrace([](auto &rec) {
        while (!rec.full()) {
            rec.branch(true);
            rec.ops(3);
        }
    });
    Trace random = makeTrace([](auto &rec) {
        Rng rng(4);
        while (!rec.full()) {
            rec.branch(rng.chance(0.5));
            rec.ops(3);
        }
    });
    CoreRig rig_biased(biased);
    CoreRig rig_random(random);
    Cycle cb = rig_biased.runUntil(8000);
    Cycle cr = rig_random.runUntil(8000);
    EXPECT_GT(cr, cb * 2);   // mispredicts must cost real time
}

TEST(Core, StoreToLoadForwardingSkipsCache)
{
    Trace t = makeTrace([](auto &rec) {
        Addr a = Addr{1} << 32;
        while (!rec.full()) {
            RegId v = rec.alu();
            rec.store(a, v);
            rec.load(a);      // forwarded from the pending store
        }
    });
    CoreRig rig(t, 100);      // L1D painfully slow: forwarding must bypass
    rig.runUntil(3000);
    EXPECT_GT(rig.stats.get("cpu0.forwarded_loads"), 800u);
}

TEST(Core, PageWalksGoToWalkTarget)
{
    Trace t = makeTrace([](auto &rec) {
        Addr a = Addr{1} << 32;
        std::uint64_t i = 0;
        while (!rec.full()) {
            rec.load(a + (i * 5) * kPageSize);   // new page every load
            ++i;
        }
    });
    CoreRig rig(t);
    rig.runUntil(500);
    EXPECT_GT(rig.stats.get("cpu0.page_walks"), 50u);
    EXPECT_FALSE(rig.walk.reads.empty());
    for (const auto &p : rig.walk.reads)
        EXPECT_EQ(p.type, AccessType::Translation);
}

TEST(Core, TlbHitsAfterWalk)
{
    Trace t = makeTrace([](auto &rec) {
        Addr a = Addr{1} << 32;
        while (!rec.full())
            rec.load(a);   // one page forever
    });
    CoreRig rig(t);
    rig.runUntil(5000);
    EXPECT_LE(rig.stats.get("cpu0.page_walks"), 1u);
    EXPECT_GT(rig.stats.get("dtlb.hit"), 4000u);
}

TEST(Core, StoresWriteThroughAtRetire)
{
    Trace t = makeTrace([](auto &rec) {
        Addr a = Addr{1} << 32;
        std::uint64_t i = 0;
        while (!rec.full()) {
            rec.store(a + (i % 64) * 64);
            rec.ops(2);
            ++i;
        }
    });
    CoreRig rig(t);
    rig.runUntil(3000);
    EXPECT_GT(rig.l1d.writes.size(), 500u);
    for (const auto &w : rig.l1d.writes)
        EXPECT_EQ(w.type, AccessType::Rfo);
}

TEST(Core, OffchipImmediateFiresSpecToDram)
{
    StatGroup dstats("d");
    DramController::Params dp;
    DramController dram(dp, &dstats);

    StatGroup ostats("o");
    OffChipPredictor::Params op;
    op.policy = OffchipPolicy::Immediate;
    op.tau_high = -100;   // fire on every load regardless of training
    OffChipPredictor offchip(op, &ostats);

    Trace t = makeTrace([](auto &rec) {
        Addr a = Addr{1} << 32;
        std::uint64_t i = 0;
        while (!rec.full()) {
            rec.load(a + (i++ % 512) * 64);
            rec.ops(3);
        }
    });
    CoreRig rig(t, 4, &offchip, &dram);
    Cycle c = 0;
    while (rig.core->retired() < 2000 && c < 200'000) {
        rig.core->tick(c);
        rig.l1d.tick(c);
        rig.walk.tick(c);
        dram.tick(c);
        ++c;
    }
    EXPECT_GT(rig.stats.get("cpu0.spec_from_core"), 100u);
    // The 64-entry spec buffer throttles issue while lines are in flight,
    // so issued < fired-from-core, but a healthy stream must get through.
    EXPECT_GT(dstats.get("dram.spec_issued"), 50u);
}

TEST(Core, DelayedFlagTagsPackets)
{
    StatGroup ostats("o");
    OffChipPredictor::Params op;
    op.policy = OffchipPolicy::AlwaysDelay;
    op.tau_low = -100;   // flag every load
    OffChipPredictor offchip(op, &ostats);

    Trace t = makeTrace([](auto &rec) {
        Addr a = Addr{1} << 32;
        std::uint64_t i = 0;
        while (!rec.full())
            rec.load(a + (i++ % 512) * 64);
    });
    CoreRig rig(t, 4, &offchip, nullptr);
    rig.runUntil(500);
    int flagged = 0;
    for (const auto &p : rig.l1d.reads)
        flagged += p.delayed_offchip_flag;
    EXPECT_GT(flagged, 100);
    EXPECT_EQ(rig.stats.get("cpu0.spec_from_core"), 0u);
}

TEST(Core, TrainsOffchipOnDemandReturnOnly)
{
    StatGroup ostats("o");
    OffChipPredictor::Params op;
    op.policy = OffchipPolicy::Immediate;
    op.tau_high = 1000;   // never fire; we only check training plumbing
    OffChipPredictor offchip(op, &ostats);

    Trace t = makeTrace([](auto &rec) {
        Addr a = Addr{1} << 32;
        std::uint64_t i = 0;
        while (!rec.full())
            rec.load(a + (i++ % 512) * 64);
    });
    CoreRig rig(t, 4, &offchip, nullptr);
    rig.runUntil(1000);
    EXPECT_GT(ostats.get("flp.train_correct")
                  + ostats.get("flp.train_wrong"),
              800u);
}

TEST(Core, RetiredMonotonicAndExact)
{
    Trace t = makeTrace([](auto &rec) {
        while (!rec.full())
            rec.alu();
    }, 100);
    CoreRig rig(t);
    InstrCount last = 0;
    for (Cycle c = 0; c < 1000; ++c) {
        rig.core->tick(c);
        rig.l1d.tick(c);
        EXPECT_GE(rig.core->retired(), last);
        EXPECT_LE(rig.core->retired() - last, 4u);   // retire width
        last = rig.core->retired();
    }
    EXPECT_GT(last, 900u);
}
