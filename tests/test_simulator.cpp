/**
 * Integration tests: full-system simulations on tiny workloads, scheme
 * behaviour (TLP vs Hermes vs baseline), multi-core runs, determinism,
 * the experiment helpers, and the Table II storage budget.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

using namespace tlpsim;
using namespace tlpsim::experiment;

namespace
{

SystemConfig
tinyConfig(unsigned cores = 1)
{
    SystemConfig cfg = SystemConfig::cascadeLake(cores);
    cfg.warmup_instrs = 20'000;
    cfg.sim_instrs = 60'000;
    return cfg;
}

const workloads::WorkloadSpec &
tinyWorkload(const char *name)
{
    static auto specs
        = workloads::singleCoreWorkloads(workloads::SetSize::Tiny);
    for (const auto &w : specs) {
        if (w.name == name)
            return w;
    }
    return specs.front();
}

} // namespace

TEST(Simulator, RunsToCompletion)
{
    SimResult r = runSingleCore(tinyWorkload("mcf_pchase"), tinyConfig());
    EXPECT_FALSE(r.hit_cycle_cap);
    EXPECT_GT(r.ipc[0], 0.0);
    EXPECT_GE(r.stat("cpu0.instrs"), 60'000u);
    EXPECT_LT(r.stat("cpu0.instrs"), 60'008u);
}

TEST(Simulator, Deterministic)
{
    SimResult a = runSingleCore(tinyWorkload("bfs.kron"), tinyConfig());
    SimResult b = runSingleCore(tinyWorkload("bfs.kron"), tinyConfig());
    EXPECT_EQ(a.window_cycles[0], b.window_cycles[0]);
    EXPECT_EQ(a.warmup_end_cycle[0], b.warmup_end_cycle[0]);
    EXPECT_EQ(a.dramTransactions(), b.dramTransactions());
    EXPECT_EQ(a.stats, b.stats);
}

TEST(Simulator, MpkiOrderingMatchesHierarchy)
{
    // Fig. 1's structural property: L1D MPKI >= L2C MPKI >= LLC MPKI.
    SimResult r = runSingleCore(tinyWorkload("mcf_pchase"), tinyConfig());
    EXPECT_GE(r.mpki("l1d"), r.mpki("l2c"));
    EXPECT_GE(r.mpki("l2c"), r.mpki("llc"));
    EXPECT_GT(r.mpki("l1d"), 1.0);
}

TEST(Simulator, PointerChaseIsDramBound)
{
    SimResult r = runSingleCore(tinyWorkload("mcf_pchase"), tinyConfig());
    EXPECT_GT(r.mpki("llc"), 50.0);
    EXPECT_GT(r.dramTransactions(), 1000u);
}

TEST(Simulator, HermesIssuesSpeculativeRequests)
{
    SystemConfig cfg = tinyConfig();
    cfg.scheme = SchemeConfig::hermes();
    SimResult r = runSingleCore(tinyWorkload("mcf_pchase"), cfg);
    EXPECT_GT(r.stat("dram.spec_issued"), 1000u);
    // On a pure pointer chase nearly every prediction is correct, so
    // speculative fetches merge with demands instead of adding traffic.
    EXPECT_GT(r.stat("dram.spec_consumed")
                  + r.stat("dram.spec_merged_inflight"),
              r.stat("dram.spec_issued") / 2);
}

TEST(Simulator, HermesSpeedsUpPointerChase)
{
    SystemConfig cfg = tinyConfig();
    SimResult base = runSingleCore(tinyWorkload("mcf_pchase"), cfg);
    cfg.scheme = SchemeConfig::hermes();
    SimResult hermes = runSingleCore(tinyWorkload("mcf_pchase"), cfg);
    EXPECT_GT(hermes.ipc[0], base.ipc[0]);
}

TEST(Simulator, TlpReducesDramTransactionsOnChase)
{
    // The headline claim at tiny scale: TLP cuts DRAM traffic on
    // irregular workloads by filtering useless L1D prefetches.
    SystemConfig cfg = tinyConfig();
    SimResult base = runSingleCore(tinyWorkload("mcf_pchase"), cfg);
    cfg.scheme = SchemeConfig::tlp();
    SimResult tlp = runSingleCore(tinyWorkload("mcf_pchase"), cfg);
    EXPECT_LT(tlp.dramTransactions(), base.dramTransactions());
    EXPECT_GT(tlp.ipc[0], base.ipc[0] * 0.95);
}

TEST(Simulator, TlpDropsPrefetchesViaSlp)
{
    SystemConfig cfg = tinyConfig();
    cfg.scheme = SchemeConfig::tlp();
    SimResult r = runSingleCore(tinyWorkload("mcf_pchase"), cfg);
    EXPECT_GT(r.stat("cpu0.slp.dropped"), 100u);
    EXPECT_GT(r.stat("cpu0.l1d.pf_filtered"), 100u);
}

TEST(Simulator, SchemesAreConfigsNotForks)
{
    // Every named scheme must build and run.
    for (const auto &scheme : SchemeConfig::ablationSchemes()) {
        SystemConfig cfg = tinyConfig();
        cfg.sim_instrs = 20'000;
        cfg.scheme = scheme;
        SimResult r = runSingleCore(tinyWorkload("bfs.road"), cfg);
        EXPECT_FALSE(r.hit_cycle_cap) << scheme.name;
        EXPECT_GT(r.ipc[0], 0.0) << scheme.name;
    }
}

TEST(Simulator, OracleCountsSpecBlockLocation)
{
    SystemConfig cfg = tinyConfig();
    cfg.scheme = SchemeConfig::hermes();
    SimResult r = runSingleCore(tinyWorkload("mcf_pchase"), cfg);
    std::uint64_t total = r.stat("oracle.spec_block_in_l1d")
        + r.stat("oracle.spec_block_in_l2c")
        + r.stat("oracle.spec_block_in_llc")
        + r.stat("oracle.spec_block_in_dram");
    EXPECT_GT(total, 0u);
    // Pointer chase: the vast majority of predictions are truly off-chip.
    EXPECT_GT(r.stat("oracle.spec_block_in_dram"), total / 2);
}

TEST(Simulator, UncappedRunReportsNominalInstrs)
{
    SimResult r = runSingleCore(tinyWorkload("mcf_pchase"), tinyConfig());
    ASSERT_FALSE(r.hit_cycle_cap);
    ASSERT_EQ(r.instrs.size(), 1u);
    EXPECT_EQ(r.instrs[0], r.sim_instrs);
    EXPECT_EQ(r.totalInstrs(), r.sim_instrs);
}

// The cycle-cap accounting regression: metrics used to divide by the
// nominal sim_instrs even when the cap cut the measurement short, so
// MPKI/PPKI/IPC of exactly the capped runs were silently deflated by
// the fraction of instructions that never executed.
TEST(Simulator, CycleCapUsesMeasuredInstrsAsDenominator)
{
    SystemConfig cfg = tinyConfig();
    cfg.warmup_instrs = 500;     // ~22k cycles at mcf's ~0.02 IPC
    cfg.sim_instrs = 500'000;    // unreachable within the cap
    cfg.max_cycles = 120'000;    // plenty for warmup, a sliver of measure
    SimResult r = runSingleCore(tinyWorkload("mcf_pchase"), cfg);

    ASSERT_TRUE(r.hit_cycle_cap);
    ASSERT_EQ(r.instrs.size(), 1u);
    EXPECT_GT(r.instrs[0], 0u);
    EXPECT_LT(r.instrs[0], r.sim_instrs);

    // The measured count is what the (reset-at-measure-start) retired
    // counter saw, and every per-instruction metric divides by it.
    EXPECT_EQ(r.instrs[0], r.stat("cpu0.instrs"));
    EXPECT_EQ(r.totalInstrs(), r.instrs[0]);
    double kilo = static_cast<double>(r.instrs[0]) / 1000.0;
    double l1d_misses = static_cast<double>(r.stat("cpu0.l1d.load_miss")
                                            + r.stat("cpu0.l1d.rfo_miss"));
    EXPECT_NEAR(r.mpki("l1d"), l1d_misses / kilo, 1e-9);
    EXPECT_NEAR(r.ipc[0],
                static_cast<double>(r.instrs[0])
                    / static_cast<double>(r.window_cycles[0]),
                1e-12);
    // The old bug: ~0.03 true IPC reported as sim_instrs/cycles ≈ 6+.
    EXPECT_LT(r.ipc[0], 1.0);
}

// The degenerate-window regression (per-core measurement windows): under
// the old global warmup barrier the fast core of a heterogeneous mix
// retired warmup + sim_instrs while the slow core was still warming up,
// so its "measurement window" was ~1 cycle and its IPC read as
// ~sim_instrs — silently corrupting the weighted-speedup numerator of
// exactly the paper's headline multi-core figures.
TEST(Simulator, FastSlowMixWindowsArePhysicallyPlausible)
{
    auto specs = workloads::singleCoreWorkloads(workloads::SetSize::Tiny);
    // libq_stream retires ~2 orders of magnitude faster than the
    // pointer-chasing mcf_pchase.
    workloads::Mix mix = workloads::mixFromNames(
        specs, {"libq_stream", "mcf_pchase"}, "test");
    SystemConfig cfg = tinyConfig(2);
    cfg.warmup_instrs = 5'000;
    cfg.sim_instrs = 20'000;
    SimResult r = runMix(specs, mix, cfg);

    ASSERT_FALSE(r.hit_cycle_cap);
    ASSERT_EQ(r.ipc.size(), 2u);
    for (unsigned c = 0; c < 2; ++c) {
        // A 4-wide core physically cannot retire sim_instrs in fewer
        // than sim_instrs / 4 cycles; the old semantics reported the
        // fast core's window as ~1 cycle here.
        EXPECT_GE(r.window_cycles[c], r.sim_instrs / 4) << "core " << c;
        EXPECT_LE(r.ipc[c], 4.0) << "core " << c;
        EXPECT_EQ(r.instrs[c], r.sim_instrs) << "core " << c;
        EXPECT_GT(r.warmup_end_cycle[c], 0u) << "core " << c;
    }
    EXPECT_NEAR(r.ipcMax(), r.ipc[0], 1e-12);
    // The mix really is heterogeneous: the fast core warms up first and
    // sustains the higher IPC inside its own window.
    EXPECT_LT(r.warmup_end_cycle[0], r.warmup_end_cycle[1]);
    EXPECT_GT(r.ipc[0], r.ipc[1]);
    // Windowed per-core stats: the fast core's instruction counter only
    // covers its own window, so it brackets sim_instrs by at most the
    // retire-width overshoot at each boundary.
    EXPECT_GE(r.stat("cpu0.instrs"), r.sim_instrs - 3);
    EXPECT_LE(r.stat("cpu0.instrs"), r.sim_instrs + 3);
    EXPECT_EQ(r.totalInstrs(), 2 * r.sim_instrs);
}

// The auto hang bound must also cover the case where warmup itself hits
// the cap: the result is a clean hit_cycle_cap with zero-instruction
// windows, not garbage from a measurement window that never opened.
TEST(Simulator, CapDuringWarmupReportsZerosNotGarbage)
{
    SystemConfig cfg = tinyConfig();
    cfg.warmup_instrs = 50'000;   // ~2.2M cycles at mcf's ~0.02 IPC
    cfg.sim_instrs = 50'000;
    cfg.max_cycles = 2'000;       // fires long before warmup completes
    SimResult r = runSingleCore(tinyWorkload("mcf_pchase"), cfg);

    ASSERT_TRUE(r.hit_cycle_cap);
    ASSERT_EQ(r.instrs.size(), 1u);
    EXPECT_EQ(r.instrs[0], 0u);
    EXPECT_EQ(r.window_cycles[0], 0u);
    EXPECT_EQ(r.warmup_end_cycle[0], 0u);   // window never opened
    EXPECT_EQ(r.ipc[0], 0.0);
    EXPECT_EQ(r.totalInstrs(), 0u);
    // Per-instruction metrics degrade to 0, never divide-by-nominal.
    EXPECT_EQ(r.mpki("l1d"), 0.0);
    // Every stat window (per-core and shared) is empty: zero deltas,
    // not whole-warmup counts.
    EXPECT_EQ(r.stat("cpu0.instrs"), 0u);
    EXPECT_EQ(r.dramTransactions(), 0u);
}

// A cap in the middle of a heterogeneous mix: the fast core's window
// closed normally, the slow core's was truncated — the aggregate
// instruction total must sum what was measured, not 2 * sim_instrs.
TEST(Simulator, CapMidMixSumsMeasuredInstrs)
{
    auto specs = workloads::singleCoreWorkloads(workloads::SetSize::Tiny);
    workloads::Mix mix = workloads::mixFromNames(
        specs, {"libq_stream", "mcf_pchase"}, "test");
    SystemConfig cfg = tinyConfig(2);
    cfg.warmup_instrs = 500;      // mcf warms in ~25k cycles
    cfg.sim_instrs = 50'000;      // mcf cannot measure 50k within the cap
    cfg.max_cycles = 200'000;
    SimResult r = runMix(specs, mix, cfg);

    ASSERT_TRUE(r.hit_cycle_cap);
    EXPECT_EQ(r.instrs[0], r.sim_instrs);          // closed normally
    EXPECT_GT(r.instrs[1], 0u);                    // truncated window
    EXPECT_LT(r.instrs[1], r.sim_instrs);
    EXPECT_EQ(r.totalInstrs(), r.instrs[0] + r.instrs[1]);
    EXPECT_GT(r.warmup_end_cycle[1], 0u);
    EXPECT_EQ(r.window_cycles[1],
              cfg.max_cycles - r.warmup_end_cycle[1]);
    EXPECT_LE(r.ipcMax(), 4.0);
}

TEST(Simulator, MismatchedTraceCountIsConfigErrorNotCrash)
{
    auto specs = workloads::singleCoreWorkloads(workloads::SetSize::Tiny);
    const Trace &t = cachedTrace(specs.front(), 10'000);
    SystemConfig cfg = tinyConfig(4);
    try {
        // 2 traces for 4 cores
        Simulator sim(cfg, std::vector<const Trace *>{&t, &t});
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("cores = 4"), std::string::npos) << msg;
        EXPECT_NE(msg.find("2 trace"), std::string::npos) << msg;
    }
}

TEST(Experiment, MixWidthMustMatchCores)
{
    auto specs = workloads::singleCoreWorkloads(workloads::SetSize::Tiny);
    workloads::Mix mix;
    mix.name = "narrow";
    mix.suite = workloads::Suite::Gap;
    mix.homogeneous = true;
    mix.workload_index = {0, 0};

    SystemConfig cfg = tinyConfig(4);
    try {
        runMix(specs, mix, cfg);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("narrow"), std::string::npos) << msg;
        EXPECT_NE(msg.find("cores = 4"), std::string::npos) << msg;
    }
    // The same mix on a matching system runs fine.
    cfg = tinyConfig(2);
    cfg.sim_instrs = 20'000;
    SimResult r = runMix(specs, mix, cfg);
    EXPECT_EQ(r.num_cores, 2u);
    ASSERT_EQ(r.ipc.size(), 2u);
    EXPECT_GT(r.ipc[0], 0.0);
}

TEST(Simulator, MultiCoreRunsAllCores)
{
    auto specs = workloads::singleCoreWorkloads(workloads::SetSize::Tiny);
    workloads::Mix mix;
    mix.name = "test";
    mix.suite = workloads::Suite::Gap;
    mix.homogeneous = true;
    mix.workload_index = {0, 0, 0, 0};

    SystemConfig cfg = tinyConfig(4);
    cfg.sim_instrs = 30'000;
    SimResult r = runMix(specs, mix, cfg);
    ASSERT_EQ(r.ipc.size(), 4u);
    for (unsigned c = 0; c < 4; ++c) {
        EXPECT_GT(r.ipc[c], 0.0);
        std::uint64_t n = r.stat("cpu" + std::to_string(c) + ".instrs");
        // Each core's stats cover exactly its own measurement window
        // (co-runners keep running outside it, per the paper's
        // methodology, without polluting the windowed counts), so the
        // per-core instruction count brackets the target only by the
        // 4-wide retire overshoot at either window boundary.
        EXPECT_GE(n, 30'000u - 3);
        EXPECT_LE(n, 30'000u + 3);
    }
}

TEST(Simulator, MultiCoreSharedLlcContention)
{
    // The same workload must run slower per-core with 4 co-runners than
    // alone (shared LLC + 3.2 GB/s/core DRAM vs 12.8 solo).
    auto specs = workloads::singleCoreWorkloads(workloads::SetSize::Tiny);
    const auto &w = tinyWorkload("mcf_pchase");
    SystemConfig cfg1 = tinyConfig(1);
    cfg1.sim_instrs = 30'000;
    SimResult solo = runSingleCore(w, cfg1);

    workloads::Mix mix;
    mix.suite = workloads::Suite::Spec;
    mix.homogeneous = true;
    int wi = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (specs[i].name == w.name)
            wi = static_cast<int>(i);
    }
    mix.workload_index = {wi, wi, wi, wi};
    SystemConfig cfg4 = tinyConfig(4);
    cfg4.sim_instrs = 30'000;
    SimResult shared = runMix(specs, mix, cfg4);
    EXPECT_LT(shared.ipc[0], solo.ipc[0]);
}

TEST(Simulator, IdleSkipOnVsOffBitIdentical)
{
    // The event-driven idle skip (run()'s skipIdle after every step)
    // must be invisible in every result field: same stats map, same
    // per-core windows, at Fig. 10 scale — while actually eliding a
    // nontrivial share of cycles on a DRAM-bound workload.
    Trace trace
        = workloads::buildTrace(tinyWorkload("mcf_pchase"), 80'000, 1);
    for (const SchemeConfig &s :
         {SchemeConfig::baseline(), SchemeConfig::tlp()}) {
        SystemConfig on = tinyConfig();
        on.scheme = s;
        SystemConfig off = on;
        off.idle_skip = false;

        Simulator sim_on(on, std::vector<const Trace *>{&trace});
        Simulator sim_off(off, std::vector<const Trace *>{&trace});
        SimResult a = sim_on.run();
        SimResult b = sim_off.run();

        EXPECT_GT(sim_on.idleSkippedCycles(), 0u) << s.name;
        EXPECT_EQ(sim_off.idleSkippedCycles(), 0u) << s.name;
        EXPECT_EQ(a.stats, b.stats) << s.name;
        EXPECT_EQ(a.window_cycles, b.window_cycles) << s.name;
        EXPECT_EQ(a.warmup_end_cycle, b.warmup_end_cycle) << s.name;
        EXPECT_EQ(a.ipc, b.ipc) << s.name;
    }
}

TEST(Simulator, IdleSkipBitIdenticalOnMultiCoreMix)
{
    // Fig. 13-style heterogeneous 2-core point: per-core windows and
    // shared-structure stats must survive the skip unchanged too (the
    // skip replays each core's stall counters over the elided span).
    auto specs = workloads::singleCoreWorkloads(workloads::SetSize::Tiny);
    int wa = 0, wb = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (specs[i].name == "mcf_pchase")
            wa = static_cast<int>(i);
        if (specs[i].name == "bfs.kron")
            wb = static_cast<int>(i);
    }
    workloads::Mix mix;
    mix.name = "skiptest";
    mix.suite = workloads::Suite::Spec;
    mix.homogeneous = false;
    mix.workload_index = {wa, wb};

    SystemConfig on = tinyConfig(2);
    on.sim_instrs = 30'000;
    on.scheme = SchemeConfig::tlp();
    SystemConfig off = on;
    off.idle_skip = false;

    SimResult a = runMix(specs, mix, on);
    SimResult b = runMix(specs, mix, off);
    EXPECT_EQ(a.stats, b.stats);
    EXPECT_EQ(a.window_cycles, b.window_cycles);
    EXPECT_EQ(a.warmup_end_cycle, b.warmup_end_cycle);
    EXPECT_EQ(a.ipc, b.ipc);
}

TEST(Simulator, DramWaitAdvancesClockInOneStep)
{
    // When every core is stalled behind an outstanding DRAM read and
    // the caches are drained, nextEventCycle() names the completion
    // cycle and ONE skipIdle() call must jump the clock straight there
    // — the mechanism that turns a DRAM round-trip's worth of no-op
    // ticks into a single bounded-work step.
    Trace trace
        = workloads::buildTrace(tinyWorkload("mcf_pchase"), 4'000, 1);
    SystemConfig cfg = SystemConfig::cascadeLake(1);
    Simulator sim(cfg, std::vector<const Trace *>{&trace});

    bool exercised = false;
    for (int i = 0; i < 200'000 && !exercised; ++i) {
        sim.step();
        const Cycle now = sim.cycle();
        const Cycle next = sim.nextEventCycle();
        // Only a DRAM-latency-sized gap counts: short stalls can come
        // from cache MSHR timing, but a pointer chase's load-to-load
        // dependence parks the whole system for tens of cycles at a
        // time while DRAM works.
        if (next < now + 10)
            continue;
        const Cycle skipped = sim.skipIdle(next + 1000);
        EXPECT_EQ(skipped, next - now);
        EXPECT_EQ(sim.cycle(), next);
        EXPECT_GE(sim.idleSkippedCycles(), skipped);
        exercised = true;
    }
    EXPECT_TRUE(exercised)
        << "no multi-cycle quiet window found on a pointer chase";
}

TEST(Simulator, TableIIStorageBudget)
{
    StorageBudget b = Simulator::tlpStorageBudget();
    // Paper: TLP requires ~7 KB total.
    EXPECT_NEAR(b.totalKilobytes(), 7.0, 1.0);
}

TEST(Simulator, BandwidthKnobChangesBurst)
{
    SystemConfig cfg = SystemConfig::cascadeLake(4);
    cfg.dram_gbps_per_core = 1.6;
    unsigned slow = cfg.burstCycles();
    cfg.dram_gbps_per_core = 25.6;
    unsigned fast = cfg.burstCycles();
    EXPECT_GT(slow, fast * 8);
}

TEST(Simulator, DescriptionMentionsKeyParameters)
{
    SystemConfig cfg = SystemConfig::cascadeLake(1);
    std::string d = cfg.description();
    EXPECT_NE(d.find("224"), std::string::npos);
    EXPECT_NE(d.find("ipcp"), std::string::npos);
    EXPECT_NE(d.find("12.8"), std::string::npos);
}

// --- experiment helpers -----------------------------------------------------

TEST(Experiment, PercentDelta)
{
    EXPECT_NEAR(percentDelta(110.0, 100.0), 10.0, 1e-9);
    EXPECT_NEAR(percentDelta(90.0, 100.0), -10.0, 1e-9);
    EXPECT_DOUBLE_EQ(percentDelta(5.0, 0.0), 0.0);
}

TEST(Experiment, GeomeanSpeedup)
{
    EXPECT_NEAR(geomeanSpeedupPct({10.0, 10.0}), 10.0, 1e-9);
    EXPECT_NEAR(geomeanSpeedupPct({0.0, 0.0, 0.0}), 0.0, 1e-9);
    // geomean of +21% and 0%: sqrt(1.21) - 1 = 10%.
    EXPECT_NEAR(geomeanSpeedupPct({21.0, 0.0}), 10.0, 1e-6);
    EXPECT_EQ(geomeanSpeedupPct({}), 0.0);
}

TEST(Experiment, WeightedSpeedupAgainstBaseline)
{
    SimResult scheme;
    scheme.ipc = {1.2, 1.2, 1.2, 1.2};
    SimResult base;
    base.ipc = {1.0, 1.0, 1.0, 1.0};
    std::vector<double> single = {2.0, 2.0, 2.0, 2.0};
    EXPECT_NEAR(weightedSpeedupPct(scheme, base, single), 20.0, 1e-9);
}

TEST(Experiment, WeightedSpeedupIsAnyWidthButRejectsMismatch)
{
    // Mixes are any-width since the mix generalization: a 2-slot mix
    // works as well as the paper's 4-slot ones...
    SimResult scheme;
    scheme.ipc = {1.1, 1.1};
    SimResult base;
    base.ipc = {1.0, 1.0};
    EXPECT_NEAR(weightedSpeedupPct(scheme, base, {2.0, 2.0}), 10.0, 1e-9);

    // ...but mismatched slot counts are a caller bug (scheme vs baseline
    // vs ipc_single from different mixes) and must throw, not silently
    // index the vectors out of step.
    try {
        weightedSpeedupPct(scheme, base, {2.0, 2.0, 2.0, 2.0});
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("2"), std::string::npos) << msg;
        EXPECT_NE(msg.find("4"), std::string::npos) << msg;
    }
    SimResult narrow_base;
    narrow_base.ipc = {1.0};
    EXPECT_THROW(weightedSpeedupPct(scheme, narrow_base, {2.0, 2.0}),
                 ConfigError);
}

TEST(Experiment, TraceCacheReturnsSameObject)
{
    auto specs = workloads::singleCoreWorkloads(workloads::SetSize::Tiny);
    const Trace &a = cachedTrace(specs.front(), 10'000);
    const Trace &b = cachedTrace(specs.front(), 10'000);
    EXPECT_EQ(&a, &b);
    const Trace &c = cachedTrace(specs.front(), 20'000);
    EXPECT_NE(&a, &c);
}

TEST(Experiment, EnvKnobsFallBack)
{
    unsetenv("TLPSIM_INSTRS");
    EXPECT_EQ(envInstrs(123), 123u);
    setenv("TLPSIM_INSTRS", "456", 1);
    EXPECT_EQ(envInstrs(123), 456u);
    unsetenv("TLPSIM_INSTRS");
    unsetenv("TLPSIM_MIXES");
    EXPECT_EQ(envMixes(3), 3);
}

TEST(Experiment, TablePrinterFormats)
{
    EXPECT_EQ(TablePrinter::fmt(1.234, 2), "1.23");
    EXPECT_EQ(TablePrinter::fmtPct(5.0, 1), "+5.0%");
    EXPECT_EQ(TablePrinter::fmtPct(-2.5, 1), "-2.5%");
}
