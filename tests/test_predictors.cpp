/**
 * Tests for the neural machinery: hashed perceptron, page buffer, feature
 * extraction, the FLP/Hermes off-chip predictor (all three policies), SLP
 * filtering/training, PPF, and the branch predictor.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"

#include "core/branch_pred.hh"
#include "filter/ppf.hh"
#include "offchip/feature.hh"
#include "offchip/offchip_predictor.hh"
#include "offchip/page_buffer.hh"
#include "offchip/perceptron.hh"
#include "offchip/slp.hh"
#include "prefetch/spp.hh"

using namespace tlpsim;

// --- HashedPerceptron ------------------------------------------------------

TEST(Perceptron, StartsAtZero)
{
    HashedPerceptron p("p", {{"a", 64}, {"b", 64}}, 10);
    std::uint16_t idx[2] = {3, 7};
    EXPECT_EQ(p.predict(idx, 2), 0);
}

TEST(Perceptron, TrainsTowardPositive)
{
    HashedPerceptron p("p", {{"a", 64}, {"b", 64}}, 10);
    std::uint16_t idx[2] = {3, 7};
    for (int i = 0; i < 40; ++i)
        p.train(idx, 2, p.predict(idx, 2), true, 0);
    EXPECT_GE(p.predict(idx, 2), 10);
}

TEST(Perceptron, StopsTrainingWhenConfident)
{
    HashedPerceptron p("p", {{"a", 64}}, 4);
    std::uint16_t idx[1] = {3};
    for (int i = 0; i < 100; ++i)
        p.train(idx, 1, p.predict(idx, 1), true, 0);
    // With a 5-bit weight the cap is 15, but training stops at threshold+.
    EXPECT_LE(p.predict(idx, 1), 5);
    EXPECT_GE(p.predict(idx, 1), 4);
}

TEST(Perceptron, MispredictAlwaysTrains)
{
    HashedPerceptron p("p", {{"a", 64}}, 2);
    std::uint16_t idx[1] = {5};
    for (int i = 0; i < 30; ++i)
        p.train(idx, 1, p.predict(idx, 1), true, 0);
    int high = p.predict(idx, 1);
    for (int i = 0; i < 60; ++i)
        p.train(idx, 1, p.predict(idx, 1), false, 0);
    EXPECT_LT(p.predict(idx, 1), high);
    EXPECT_LE(p.predict(idx, 1), 0);
}

TEST(Perceptron, IndexForStaysInRange)
{
    HashedPerceptron p("p", {{"a", 128}}, 10);
    for (std::uint64_t v : {0ULL, 0x1234ULL, ~0ULL, 0xdeadbeefcafeULL})
        EXPECT_LT(p.indexFor(0, v), 128u);
}

TEST(Perceptron, ResetClearsWeights)
{
    HashedPerceptron p("p", {{"a", 64}}, 10);
    std::uint16_t idx[1] = {1};
    p.nudge(idx, 1, true);
    EXPECT_GT(p.predict(idx, 1), 0);
    p.reset();
    EXPECT_EQ(p.predict(idx, 1), 0);
}

TEST(Perceptron, StorageMatchesTableGeometry)
{
    HashedPerceptron p("p", {{"a", 1024}, {"b", 128}}, 10);
    EXPECT_EQ(p.storage().totalBits(), (1024u + 128u) * 5u);
}

// --- PageBuffer --------------------------------------------------------------

TEST(PageBuffer, FirstAccessSemantics)
{
    PageBuffer pb;
    EXPECT_TRUE(pb.firstAccess(0x1000));    // new page, new line
    EXPECT_FALSE(pb.firstAccess(0x1008));   // same line
    EXPECT_TRUE(pb.firstAccess(0x1040));    // same page, new line
    EXPECT_FALSE(pb.firstAccess(0x1040));
}

TEST(PageBuffer, EvictionForgetsOldPages)
{
    PageBuffer::Params p;
    p.entries = 4;
    p.ways = 2;
    PageBuffer pb(p);
    EXPECT_TRUE(pb.firstAccess(0x0000));
    // Flood one set with conflicting pages (stride = sets * page = 2 pages).
    for (Addr i = 1; i <= 8; ++i)
        pb.firstAccess(i * 2 * kPageSize);
    // The original page was evicted: first access again.
    EXPECT_TRUE(pb.firstAccess(0x0000));
}

TEST(PageBuffer, StorageBudgetIsTableII)
{
    PageBuffer pb;
    // Paper: 0.63 KB page buffer. Ours is ~0.80 KB with explicit tags.
    EXPECT_NEAR(pb.storage().totalKilobytes(), 0.7, 0.2);
}

// --- Features -----------------------------------------------------------------

TEST(Features, ValuesDependOnTheRightInputs)
{
    FeatureContext a;
    a.pc = 0x400100;
    a.addr = 0x12345678;
    a.first_access = false;
    a.last_pcs_hash = 0x99;

    FeatureContext b = a;
    b.first_access = true;
    EXPECT_NE(featureValue(FeatureKind::PcFirstAccess, a),
              featureValue(FeatureKind::PcFirstAccess, b));
    EXPECT_EQ(featureValue(FeatureKind::PcXorLineOffset, a),
              featureValue(FeatureKind::PcXorLineOffset, b));

    FeatureContext c = a;
    c.addr += 64;   // next line: line offset changes, byte offset same
    EXPECT_NE(featureValue(FeatureKind::PcXorLineOffset, a),
              featureValue(FeatureKind::PcXorLineOffset, c));
    EXPECT_EQ(featureValue(FeatureKind::PcXorByteOffset, a),
              featureValue(FeatureKind::PcXorByteOffset, c));
}

TEST(Features, FlpPredFeatureSeparatesPredictionBit)
{
    FeatureContext a;
    a.addr = 0x1040;
    a.flp_pred = false;
    FeatureContext b = a;
    b.flp_pred = true;
    EXPECT_NE(featureValue(FeatureKind::FlpPredLineOffset, a),
              featureValue(FeatureKind::FlpPredLineOffset, b));
}

TEST(Features, LegacySetMatchesTableI)
{
    auto f = legacyHermesFeatures();
    ASSERT_EQ(f.size(), 5u);
    EXPECT_EQ(f[4], FeatureKind::Last4LoadPcs);
    auto s = slpFeatures(true);
    ASSERT_EQ(s.size(), 6u);
    EXPECT_EQ(s[5], FeatureKind::FlpPredLineOffset);
    EXPECT_EQ(slpFeatures(false).size(), 5u);
}

TEST(Features, TableSizesMatchPaperBudget)
{
    auto tables = featureTables(legacyHermesFeatures());
    std::uint64_t bits = 0;
    for (const auto &t : tables)
        bits += t.entries * 5;
    // Paper: FLP weight tables 2.58 KB.
    EXPECT_NEAR(static_cast<double>(bits) / 8192.0, 2.58, 0.15);
}

TEST(Features, LoadPcHistoryChanges)
{
    LoadPcHistory h;
    auto h0 = h.hash();
    h.push(0x400100);
    auto h1 = h.hash();
    h.push(0x400200);
    auto h2 = h.hash();
    EXPECT_NE(h0, h1);
    EXPECT_NE(h1, h2);
}

// --- OffChipPredictor ----------------------------------------------------------

namespace
{

/** Teach the predictor that ip_off loads go off-chip, ip_on loads don't. */
void
trainPattern(OffChipPredictor &p, int rounds, Addr ip_off, Addr ip_on)
{
    Addr a = 0x100000000;
    for (int i = 0; i < rounds; ++i) {
        auto d1 = p.predictLoad(ip_off, a);
        p.train(d1.meta, true);
        auto d2 = p.predictLoad(ip_on, a + 0x40000);
        p.train(d2.meta, false);
        a += 64;
    }
}

} // namespace

TEST(OffChip, NonePolicyNeverPredicts)
{
    StatGroup stats("t");
    OffChipPredictor::Params p;
    p.policy = OffchipPolicy::None;
    OffChipPredictor pred(p, &stats);
    auto d = pred.predictLoad(0x400100, 0x100000000);
    EXPECT_FALSE(d.predicted_offchip);
    EXPECT_FALSE(d.meta.valid);
}

TEST(OffChip, LearnsPcCorrelation)
{
    StatGroup stats("t");
    OffChipPredictor::Params p;
    p.policy = OffchipPolicy::Immediate;
    p.tau_high = 8;
    OffChipPredictor pred(p, &stats);
    trainPattern(pred, 200, 0x400100, 0x400200);

    auto off = pred.predictLoad(0x400100, 0x200000000);
    auto on = pred.predictLoad(0x400200, 0x200100000);
    EXPECT_TRUE(off.predicted_offchip);
    EXPECT_TRUE(off.spec_now);
    EXPECT_FALSE(on.predicted_offchip);
}

TEST(OffChip, SelectivePolicySplitsByConfidence)
{
    StatGroup stats("t");
    OffChipPredictor::Params p;
    p.policy = OffchipPolicy::Selective;
    p.tau_high = 1000;   // unreachable: everything positive is delayed
    p.tau_low = 8;
    OffChipPredictor pred(p, &stats);
    trainPattern(pred, 200, 0x400100, 0x400200);

    auto d = pred.predictLoad(0x400100, 0x200000000);
    EXPECT_TRUE(d.predicted_offchip);
    EXPECT_FALSE(d.spec_now);
    EXPECT_TRUE(d.delayed_flag);
}

TEST(OffChip, SelectiveHighConfidenceFiresNow)
{
    StatGroup stats("t");
    OffChipPredictor::Params p;
    p.policy = OffchipPolicy::Selective;
    p.tau_high = 20;
    p.tau_low = 4;
    OffChipPredictor pred(p, &stats);
    trainPattern(pred, 300, 0x400100, 0x400200);

    auto d = pred.predictLoad(0x400100, 0x200000000);
    EXPECT_TRUE(d.spec_now);
    EXPECT_FALSE(d.delayed_flag);
}

TEST(OffChip, AlwaysDelayNeverFiresNow)
{
    StatGroup stats("t");
    OffChipPredictor::Params p;
    p.policy = OffchipPolicy::AlwaysDelay;
    p.tau_low = 4;
    OffChipPredictor pred(p, &stats);
    trainPattern(pred, 300, 0x400100, 0x400200);

    auto d = pred.predictLoad(0x400100, 0x200000000);
    EXPECT_TRUE(d.predicted_offchip);
    EXPECT_FALSE(d.spec_now);
    EXPECT_TRUE(d.delayed_flag);
}

TEST(OffChip, RetrainsWhenBehaviorFlips)
{
    StatGroup stats("t");
    OffChipPredictor::Params p;
    p.policy = OffchipPolicy::Immediate;
    p.tau_high = 8;
    OffChipPredictor pred(p, &stats);
    trainPattern(pred, 200, 0x400100, 0x400200);
    EXPECT_TRUE(pred.predictLoad(0x400100, 0x300000000).predicted_offchip);

    // The phase changes: the "off-chip" PC becomes cache-resident.
    for (int i = 0; i < 300; ++i) {
        auto d = pred.predictLoad(0x400100,
                                  0x300000000 + static_cast<Addr>(i) * 64);
        pred.train(d.meta, false);
    }
    EXPECT_FALSE(pred.predictLoad(0x400100, 0x310000000).predicted_offchip);
}

TEST(OffChip, StorageNearPaperBudget)
{
    StatGroup stats("t");
    OffChipPredictor::Params p;
    OffChipPredictor pred(p, &stats);
    // Paper Table II: FLP = 3.21 KB (tables + page buffer).
    EXPECT_NEAR(pred.storage().totalKilobytes(), 3.21, 0.4);
}

// --- SLP -----------------------------------------------------------------------

namespace
{

PrefetchTrigger
slpTrigger(Addr ip, bool flp_pred = false)
{
    PrefetchTrigger t;
    t.ip = ip;
    t.vaddr = 0x100000000;
    t.paddr = 0x5000;
    t.type = AccessType::Load;
    t.offchip_pred = flp_pred;
    return t;
}

Packet
slpFill(const PredictionMeta &meta, MemLevel served)
{
    Packet p;
    p.type = AccessType::Prefetch;
    p.pred_meta = meta;
    p.served_by = served;
    return p;
}

} // namespace

TEST(Slp, InitiallyAllowsEverything)
{
    StatGroup stats("t");
    Slp slp({}, &stats);
    PredictionMeta meta;
    std::uint8_t fl = 1;
    EXPECT_TRUE(slp.allow(slpTrigger(0x400100), 0x100000000, 0x5000, 0, fl,
                          meta));
    EXPECT_TRUE(meta.valid);
    EXPECT_FALSE(meta.predicted_offchip);
}

TEST(Slp, LearnsToDropOffchipPrefetches)
{
    StatGroup stats("t");
    Slp::Params sp;
    sp.tau_pref = 8;
    sp.probation_period = 0;   // isolate the learning behaviour
    Slp slp(sp, &stats);

    Addr pa = 0x5000;
    int dropped = 0;
    for (int i = 0; i < 400; ++i) {
        PredictionMeta meta;
        std::uint8_t fl = 1;
        bool ok = slp.allow(slpTrigger(0x400100), 0x100000000, pa, 0, fl,
                            meta);
        if (ok)
            slp.onPrefetchFill(slpFill(meta, MemLevel::Dram));
        else
            ++dropped;
        pa += 64;
    }
    EXPECT_GT(dropped, 200);
    EXPECT_GT(stats.get("slp.dropped"), 200u);
}

TEST(Slp, KeepsAllowingOnchipPrefetches)
{
    StatGroup stats("t");
    Slp::Params sp;
    sp.probation_period = 0;
    Slp slp(sp, &stats);

    Addr pa = 0x5000;
    int dropped = 0;
    for (int i = 0; i < 400; ++i) {
        PredictionMeta meta;
        std::uint8_t fl = 1;
        bool ok = slp.allow(slpTrigger(0x400200), 0x100000000, pa, 0, fl,
                            meta);
        if (ok)
            slp.onPrefetchFill(slpFill(meta, MemLevel::L2C));
        else
            ++dropped;
        pa += 64;
    }
    EXPECT_EQ(dropped, 0);
}

TEST(Slp, ProbationKeepsTrainingAlive)
{
    StatGroup stats("t");
    Slp::Params sp;
    sp.tau_pref = 8;
    sp.probation_period = 16;
    Slp slp(sp, &stats);

    // Phase 1: prefetches go off-chip, SLP learns to drop.
    Addr pa = 0x5000;
    for (int i = 0; i < 300; ++i) {
        PredictionMeta meta;
        std::uint8_t fl = 1;
        if (slp.allow(slpTrigger(0x400100), 0x100000000, pa, 0, fl, meta))
            slp.onPrefetchFill(slpFill(meta, MemLevel::Dram));
        pa += 64;
    }
    // Phase 2: behaviour flips to on-chip; probation lets samples through
    // and the filter must recover.
    int allowed_tail = 0;
    for (int i = 0; i < 2000; ++i) {
        PredictionMeta meta;
        std::uint8_t fl = 1;
        if (slp.allow(slpTrigger(0x400100), 0x100000000, pa, 0, fl, meta)) {
            slp.onPrefetchFill(slpFill(meta, MemLevel::L2C));
            if (i >= 1500)
                ++allowed_tail;
        }
        pa += 64;
    }
    EXPECT_GT(allowed_tail, 400);   // mostly allowed again at the end
    EXPECT_GT(stats.get("slp.probation"), 0u);
}

TEST(Slp, FlpFeatureChangesDecisionSurface)
{
    StatGroup stats("t");
    Slp::Params sp;
    sp.probation_period = 0;
    Slp slp(sp, &stats);

    // Train: flp_pred=1 prefetches off-chip, flp_pred=0 on-chip, same PC.
    Addr pa = 0x5000;
    for (int i = 0; i < 500; ++i) {
        PredictionMeta meta;
        std::uint8_t fl = 1;
        bool pred = (i & 1) == 0;
        if (slp.allow(slpTrigger(0x400100, pred), 0x100000000, pa, 0, fl,
                      meta)) {
            slp.onPrefetchFill(
                slpFill(meta, pred ? MemLevel::Dram : MemLevel::L2C));
        }
        // Reuse a small set of physical lines so offsets repeat.
        pa = 0x5000 + ((pa + 64) & 0xfff);
    }
    PredictionMeta m1;
    PredictionMeta m2;
    std::uint8_t fl = 1;
    slp.allow(slpTrigger(0x400100, true), 0x100000000, 0x5040, 0, fl, m1);
    slp.allow(slpTrigger(0x400100, false), 0x100000000, 0x5040, 0, fl, m2);
    EXPECT_GT(m1.confidence, m2.confidence);
}

TEST(Slp, StorageNearPaperBudget)
{
    StatGroup stats("t");
    Slp slp({}, &stats);
    // Paper Table II: SLP = 3.29 KB.
    EXPECT_NEAR(slp.storage().totalKilobytes(), 3.29, 0.4);
}

// --- PPF -----------------------------------------------------------------------

TEST(Ppf, AcceptsByDefaultAtL2)
{
    StatGroup stats("t");
    Ppf ppf({}, &stats);
    PredictionMeta meta;
    std::uint8_t fl = 2;
    EXPECT_TRUE(ppf.allow(slpTrigger(0x400100), 0, 0x5000,
                          SppPrefetcher::packMeta(80, 0x123, 1), fl, meta));
    EXPECT_EQ(fl, 2);
}

TEST(Ppf, TrainsToRejectUselessPrefetches)
{
    StatGroup stats("t");
    Ppf::Params pp;
    pp.tau_reject = -8;
    Ppf ppf(pp, &stats);

    Addr pa = 0x5000;
    int rejected = 0;
    for (int i = 0; i < 600; ++i) {
        PredictionMeta meta;
        std::uint8_t fl = 2;
        bool ok = ppf.allow(slpTrigger(0x400100), 0, pa, 0, fl, meta);
        if (ok)
            ppf.onPrefetchedEvictUnused(pa);   // every prefetch useless
        else
            ++rejected;
        pa = 0x5000 + ((pa + 64) & 0x7fff);
    }
    EXPECT_GT(rejected, 100);
}

TEST(Ppf, DemotesMidConfidenceToLlc)
{
    StatGroup stats("t");
    Ppf::Params pp;
    pp.tau_accept = 4;
    pp.tau_reject = -100;   // never reject outright
    Ppf ppf(pp, &stats);

    // Drive weights slightly negative.
    Addr pa = 0x5000;
    for (int i = 0; i < 40; ++i) {
        PredictionMeta meta;
        std::uint8_t fl = 2;
        if (ppf.allow(slpTrigger(0x400100), 0, pa, 0, fl, meta))
            ppf.onPrefetchedEvictUnused(pa);
        pa += 64;
    }
    PredictionMeta meta;
    std::uint8_t fl = 2;
    ASSERT_TRUE(ppf.allow(slpTrigger(0x400100), 0, pa, 0, fl, meta));
    EXPECT_EQ(fl, 3);   // demoted to LLC fill
    EXPECT_GT(stats.get("ppf.demoted_llc"), 0u);
}

TEST(Ppf, RejectRecoveryViaDemandMiss)
{
    StatGroup stats("t");
    Ppf::Params pp;
    pp.tau_reject = -4;
    Ppf ppf(pp, &stats);

    // Teach it to reject this stream.
    Addr pa = 0x5000;
    for (int i = 0; i < 200; ++i) {
        PredictionMeta meta;
        std::uint8_t fl = 2;
        if (ppf.allow(slpTrigger(0x400100), 0, pa, 0, fl, meta))
            ppf.onPrefetchedEvictUnused(pa);
        pa += 64;
    }
    // Rejections recorded; demand misses on those addresses must push the
    // perceptron back toward accepting.
    std::uint64_t before = stats.get("ppf.train_missed_reject");
    PredictionMeta meta;
    std::uint8_t fl = 2;
    Addr target = pa;
    if (!ppf.allow(slpTrigger(0x400100), 0, target, 0, fl, meta)) {
        ppf.onDemandMiss(target, 0x400100);
        EXPECT_EQ(stats.get("ppf.train_missed_reject"), before + 1);
    }
}

TEST(Ppf, UsefulPrefetchTrainsPositive)
{
    StatGroup stats("t");
    Ppf ppf({}, &stats);
    PredictionMeta meta;
    std::uint8_t fl = 2;
    ASSERT_TRUE(ppf.allow(slpTrigger(0x400100), 0, 0x9000, 0, fl, meta));
    ppf.onDemandHitPrefetched(0x9000, 0x400100);
    EXPECT_EQ(stats.get("ppf.train_useful"), 1u);
}

TEST(Ppf, StorageIsAnOrderOfMagnitudeAboveTlp)
{
    StatGroup stats("t");
    Ppf ppf({}, &stats);
    // Paper §II-B: PPF ≈ 40 KB, vs 7 KB for all of TLP.
    EXPECT_GT(ppf.storage().totalKilobytes(), 25.0);
}

// --- Branch predictor -------------------------------------------------------

TEST(Bpred, LearnsBiasedBranches)
{
    StatGroup stats("t");
    BranchPredictor bp(&stats);
    int correct = 0;
    for (int i = 0; i < 2000; ++i)
        correct += bp.predictAndTrain(0x400100, true);
    EXPECT_GT(correct, 1900);
}

TEST(Bpred, LearnsAlternatingPattern)
{
    StatGroup stats("t");
    BranchPredictor bp(&stats);
    int correct_tail = 0;
    for (int i = 0; i < 4000; ++i) {
        bool taken = (i & 1) != 0;
        bool ok = bp.predictAndTrain(0x400104, taken);
        if (i >= 3000)
            correct_tail += ok;
    }
    EXPECT_GT(correct_tail, 900);   // history-based: near perfect
}

TEST(Bpred, LearnsLoopExitPattern)
{
    StatGroup stats("t");
    BranchPredictor bp(&stats);
    int correct_tail = 0;
    int total_tail = 0;
    for (int iter = 0; iter < 600; ++iter) {
        for (int i = 0; i < 8; ++i) {
            bool taken = i != 7;   // 7 taken, 1 not-taken (loop exit)
            bool ok = bp.predictAndTrain(0x400108, taken);
            if (iter >= 500) {
                correct_tail += ok;
                ++total_tail;
            }
        }
    }
    EXPECT_GT(correct_tail, total_tail * 9 / 10);
}

TEST(Bpred, RandomBranchesNearChance)
{
    StatGroup stats("t");
    BranchPredictor bp(&stats);
    Rng rng(5);
    int correct = 0;
    for (int i = 0; i < 4000; ++i)
        correct += bp.predictAndTrain(0x40010c, rng.chance(0.5));
    EXPECT_GT(correct, 1500);
    EXPECT_LT(correct, 2600);
}
