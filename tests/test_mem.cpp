/** Tests for the page table, TLBs, cache model, and DRAM controller. */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "common/stats.hh"
#include "mem/dram.hh"
#include "test_util.hh"
#include "tlb/page_table.hh"
#include "tlb/tlb.hh"

using namespace tlpsim;
using namespace tlpsim::test;

// --- Page table -------------------------------------------------------------

TEST(PageTable, FirstTouchAllocatesStable)
{
    PageTable pt;
    Addr p1 = pt.translate(0, 0x100001234);
    Addr p2 = pt.translate(0, 0x100001abc);
    EXPECT_EQ(pageNumber(p1), pageNumber(p2));
    EXPECT_EQ(p1 & kPageMask, 0x234u);
    EXPECT_EQ(p2 & kPageMask, 0xabcu);
    EXPECT_EQ(pt.translate(0, 0x100001234), p1);
}

TEST(PageTable, DistinctPagesGetDistinctFrames)
{
    PageTable pt;
    Addr a = pt.translate(0, 0x100000000);
    Addr b = pt.translate(0, 0x100002000);
    EXPECT_NE(pageNumber(a), pageNumber(b));
}

TEST(PageTable, AsidsAreIsolated)
{
    PageTable pt;
    Addr a = pt.translate(0, 0x100000000);
    Addr b = pt.translate(1, 0x100000000);
    EXPECT_NE(pageNumber(a), pageNumber(b));
}

TEST(PageTable, NeverAllocatesFrameZero)
{
    PageTable pt;
    for (int i = 0; i < 100; ++i) {
        Addr p = pt.translate(0, 0x100000000 + static_cast<Addr>(i) * kPageSize);
        EXPECT_NE(pageNumber(p), 0u);
    }
    EXPECT_EQ(pt.allocatedFrames(), 100u);
}

TEST(PageTable, PteAddressesContiguousForContiguousPages)
{
    PageTable pt;
    Addr a = pt.pteAddress(0, 0x100000000);
    Addr b = pt.pteAddress(0, 0x100001000);
    EXPECT_EQ(b - a, 8u);
}

// --- TLB ---------------------------------------------------------------------

TEST(Tlb, MissThenHit)
{
    StatGroup stats("t");
    Tlb tlb({"dtlb", 64, 4, 1}, &stats);
    EXPECT_FALSE(tlb.lookup(0x100000000));
    tlb.install(0x100000000);
    EXPECT_TRUE(tlb.lookup(0x100000123));   // same page
    EXPECT_FALSE(tlb.lookup(0x100002000));  // other page
    EXPECT_EQ(stats.get("dtlb.hit"), 1u);
    EXPECT_EQ(stats.get("dtlb.miss"), 2u);
}

TEST(Tlb, LruEvictionWithinSet)
{
    StatGroup stats("t");
    Tlb tlb({"t", 8, 2, 1}, &stats);   // 4 sets x 2 ways
    // Three pages mapping to the same set (stride = sets * page).
    Addr p0 = 0x100000000;
    Addr p1 = p0 + 4 * kPageSize;
    Addr p2 = p0 + 8 * kPageSize;
    tlb.install(p0);
    tlb.install(p1);
    tlb.lookup(p0);        // make p1 the LRU
    tlb.install(p2);       // evicts p1
    EXPECT_TRUE(tlb.lookup(p0));
    EXPECT_FALSE(tlb.lookup(p1));
    EXPECT_TRUE(tlb.lookup(p2));
}

TEST(TranslationStack, LatencyComposition)
{
    StatGroup stats("t");
    Tlb dtlb({"dtlb", 64, 4, 1}, &stats);
    Tlb stlb({"stlb", 1536, 12, 8}, &stats);
    TranslationStack ts(&dtlb, &stlb);

    auto r1 = ts.lookup(0x100000000);
    EXPECT_TRUE(r1.needs_walk);
    ts.fill(0x100000000);
    auto r2 = ts.lookup(0x100000000);
    EXPECT_FALSE(r2.needs_walk);
    EXPECT_EQ(r2.latency, 1u);   // DTLB hit

    // Evict from DTLB by filling many conflicting pages, keep STLB.
    for (int i = 1; i <= 64; ++i)
        ts.fill(0x100000000 + static_cast<Addr>(i) * 16 * kPageSize);
    auto r3 = ts.lookup(0x100000000);
    if (!r3.needs_walk) {
        EXPECT_GE(r3.latency, 1u);
    }
    EXPECT_EQ(ts.missLatency(), 9u);
}

// --- Cache -------------------------------------------------------------------

namespace
{

Cache::Params
smallCache(const std::string &name = "c", unsigned level_num = 1)
{
    Cache::Params p;
    p.name = name;
    p.level = level_num == 1 ? MemLevel::L1D
                             : (level_num == 2 ? MemLevel::L2C
                                               : MemLevel::LLC);
    p.level_num = level_num;
    p.sets = 16;
    p.ways = 4;
    p.latency = 4;
    p.mshrs = 8;
    p.rq_size = 16;
    p.wq_size = 16;
    p.pq_size = 8;
    return p;
}

} // namespace

TEST(Cache, MissGoesToLowerThenHits)
{
    StatGroup stats("t");
    MockBackend lower(20, MemLevel::Dram);
    Cache c(smallCache(), &lower, &stats);
    MockClient client;

    ASSERT_TRUE(c.sendRead(makeLoad(0x1000, &client, 0)));
    runFor(0, 40, c, lower);
    ASSERT_EQ(client.returns.size(), 1u);
    EXPECT_EQ(client.returns[0].served_by, MemLevel::Dram);
    EXPECT_EQ(stats.get("c.load_miss"), 1u);
    EXPECT_EQ(lower.reads.size(), 1u);

    // Second access to the same block: hit, no new lower-level read.
    ASSERT_TRUE(c.sendRead(makeLoad(0x1000, &client, 40)));
    runFor(40, 10, c, lower);
    ASSERT_EQ(client.returns.size(), 2u);
    EXPECT_EQ(client.returns[1].served_by, MemLevel::L1D);
    EXPECT_EQ(stats.get("c.load_hit"), 1u);
    EXPECT_EQ(lower.reads.size(), 1u);
}

TEST(Cache, HitLatencyCharged)
{
    StatGroup stats("t");
    MockBackend lower(20);
    Cache c(smallCache(), &lower, &stats);
    MockClient client;

    c.sendRead(makeLoad(0x1000, &client, 0));
    runFor(0, 40, c, lower);
    client.returns.clear();
    c.sendRead(makeLoad(0x1000, &client, 100));
    // Latency is 4: not returned before cycle 104.
    runFor(100, 4, c, lower);
    EXPECT_TRUE(client.returns.empty());
    runFor(104, 2, c, lower);
    EXPECT_EQ(client.returns.size(), 1u);
}

TEST(Cache, MshrMergesSameBlock)
{
    StatGroup stats("t");
    MockBackend lower(30);
    Cache c(smallCache(), &lower, &stats);
    MockClient client;

    c.sendRead(makeLoad(0x1000, &client, 0));
    c.sendRead(makeLoad(0x1020, &client, 0));   // same block
    runFor(0, 60, c, lower);
    EXPECT_EQ(client.returns.size(), 2u);
    EXPECT_EQ(lower.reads.size(), 1u);          // one downstream fetch
    EXPECT_EQ(stats.get("c.mshr_merge"), 1u);
}

TEST(Cache, MshrLimitStallsRq)
{
    StatGroup stats("t");
    MockBackend lower(1000);   // never returns within the test window
    Cache::Params p = smallCache();
    p.mshrs = 2;
    Cache c(p, &lower, &stats);
    MockClient client;

    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(c.sendRead(makeLoad(0x1000 + static_cast<Addr>(i) * 0x1000,
                                        &client, 0)));
    runFor(0, 50, c, lower);
    EXPECT_EQ(lower.reads.size(), 2u);   // capped by MSHRs
    EXPECT_EQ(c.mshrsInUse(), 2u);
}

TEST(Cache, LruEviction)
{
    StatGroup stats("t");
    MockBackend lower(10);
    Cache::Params p = smallCache();
    p.sets = 1;
    p.ways = 2;
    Cache c(p, &lower, &stats);
    MockClient client;

    Cycle t = 0;
    for (Addr a : {0x1000, 0x2000}) {
        c.sendRead(makeLoad(a, &client, t));
        t = runFor(t, 30, c, lower);
    }
    // Touch 0x1000 so 0x2000 becomes LRU; then fetch a third block.
    c.sendRead(makeLoad(0x1000, &client, t));
    t = runFor(t, 10, c, lower);
    c.sendRead(makeLoad(0x3000, &client, t));
    t = runFor(t, 30, c, lower);
    EXPECT_TRUE(c.probe(0x1000));
    EXPECT_FALSE(c.probe(0x2000));
    EXPECT_TRUE(c.probe(0x3000));
}

TEST(Cache, WritebackOnDirtyEviction)
{
    StatGroup stats("t");
    MockBackend lower(10);
    Cache::Params p = smallCache();
    p.sets = 1;
    p.ways = 1;
    Cache c(p, &lower, &stats);
    MockClient client;

    // Store to 0x1000 (RFO miss -> fill dirty), then load 0x2000 evicts it.
    Packet w = makeLoad(0x1000, nullptr, 0);
    w.type = AccessType::Rfo;
    c.sendWrite(w);
    Cycle t = runFor(0, 30, c, lower);
    c.sendRead(makeLoad(0x2000, &client, t));
    runFor(t, 30, c, lower);
    ASSERT_EQ(lower.writes.size(), 1u);
    EXPECT_EQ(blockNumber(lower.writes[0].paddr), blockNumber(0x1000));
    EXPECT_EQ(lower.writes[0].type, AccessType::Writeback);
    EXPECT_EQ(stats.get("c.writebacks"), 1u);
}

TEST(Cache, WritebackMissAllocatesWithoutFetch)
{
    StatGroup stats("t");
    MockBackend lower(10);
    Cache c(smallCache("l2", 2), &lower, &stats);

    Packet wb = makeLoad(0x5000, nullptr, 0);
    wb.type = AccessType::Writeback;
    c.sendWrite(wb);
    runFor(0, 10, c, lower);
    EXPECT_TRUE(c.probe(0x5000));
    EXPECT_TRUE(lower.reads.empty());   // no fetch for writeback fills
    EXPECT_EQ(stats.get("l2.wb_miss"), 1u);
}

TEST(Cache, ProbeDoesNotAllocateOrTouch)
{
    StatGroup stats("t");
    MockBackend lower(10);
    Cache c(smallCache(), &lower, &stats);
    EXPECT_FALSE(c.probe(0x1000));
    EXPECT_TRUE(lower.reads.empty());
}

TEST(Cache, PrefetchFillsAndIsTrackedUseful)
{
    StatGroup stats("t");
    MockBackend lower(10, MemLevel::Dram);
    Cache c(smallCache(), &lower, &stats);
    MockClient client;

    Packet pf = makeLoad(0x4000, nullptr, 0);
    pf.type = AccessType::Prefetch;
    pf.fill_level = 1;
    ASSERT_TRUE(c.sendPrefetch(pf));
    Cycle t = runFor(0, 30, c, lower);
    EXPECT_TRUE(c.probe(0x4000));

    // Demand hit on the prefetched block makes it useful (from DRAM).
    c.sendRead(makeLoad(0x4000, &client, t));
    runFor(t, 10, c, lower);
    EXPECT_EQ(stats.get("c.pf_useful"), 1u);
    EXPECT_EQ(stats.get("c.pf_useful_from_dram"), 1u);
}

TEST(Cache, PrefetchedEvictUnusedCountsUseless)
{
    StatGroup stats("t");
    MockBackend lower(10, MemLevel::Dram);
    Cache::Params p = smallCache();
    p.sets = 1;
    p.ways = 1;
    Cache c(p, &lower, &stats);
    MockClient client;

    Packet pf = makeLoad(0x4000, nullptr, 0);
    pf.type = AccessType::Prefetch;
    ASSERT_TRUE(c.sendPrefetch(pf));
    Cycle t = runFor(0, 30, c, lower);
    c.sendRead(makeLoad(0x8000, &client, t));   // evicts the prefetch
    runFor(t, 30, c, lower);
    EXPECT_EQ(stats.get("c.pf_useless"), 1u);
    EXPECT_EQ(stats.get("c.pf_useless_from_dram"), 1u);
}

TEST(Cache, LatePrefetchPromotedByDemand)
{
    StatGroup stats("t");
    MockBackend lower(50, MemLevel::Dram);
    Cache c(smallCache(), &lower, &stats);
    MockClient client;

    Packet pf = makeLoad(0x4000, nullptr, 0);
    pf.type = AccessType::Prefetch;
    ASSERT_TRUE(c.sendPrefetch(pf));
    runFor(0, 10, c, lower);
    // Demand arrives while the prefetch is still in flight.
    c.sendRead(makeLoad(0x4000, &client, 10));
    runFor(10, 80, c, lower);
    ASSERT_EQ(client.returns.size(), 1u);
    EXPECT_EQ(client.returns[0].served_by, MemLevel::Dram);
    EXPECT_EQ(stats.get("c.pf_late"), 1u);
    EXPECT_EQ(stats.get("c.pf_useful"), 1u);
}

TEST(Cache, PassThroughPrefetchDoesNotAllocate)
{
    StatGroup stats("t");
    MockBackend lower(10, MemLevel::Dram);
    Cache c(smallCache("l2", 2), &lower, &stats);

    Packet pf = makeLoad(0x4000, nullptr, 0);
    pf.type = AccessType::Prefetch;
    pf.fill_level = 3;   // LLC-only prefetch passing through the L2
    ASSERT_TRUE(c.sendPrefetch(pf));
    runFor(0, 30, c, lower);
    EXPECT_FALSE(c.probe(0x4000));
    EXPECT_EQ(lower.prefetches.size(), 1u);
}

TEST(Cache, RqFullRejects)
{
    StatGroup stats("t");
    MockBackend lower(10);
    Cache::Params p = smallCache();
    p.rq_size = 2;
    Cache c(p, &lower, &stats);
    MockClient client;
    EXPECT_TRUE(c.sendRead(makeLoad(0x1000, &client, 0)));
    EXPECT_TRUE(c.sendRead(makeLoad(0x2000, &client, 0)));
    EXPECT_FALSE(c.sendRead(makeLoad(0x3000, &client, 0)));
}

TEST(Cache, DelayedSpecIssuedOnFlaggedLoadMiss)
{
    StatGroup stats("t");
    MockBackend lower(30);
    DramController::Params dp;
    dp.name = "dram";
    DramController dram(dp, &stats);

    Cache::Params p = smallCache();
    p.spec_dram = &dram;
    p.spec_latency = 6;
    struct CountingObserver : SpecIssueObserver
    {
        int calls = 0;
        void onSpecIssued(const Packet &) override { ++calls; }
    } observer;
    p.spec_observer = &observer;
    Cache c(p, &lower, &stats);
    MockClient client;

    Packet ld = makeLoad(0x1000, &client, 0);
    ld.delayed_offchip_flag = true;
    c.sendRead(ld);
    runFor(0, 60, c, lower, dram);
    EXPECT_EQ(stats.get("c.spec_delayed_issued"), 1u);
    EXPECT_EQ(stats.get("dram.spec_issued"), 1u);
    EXPECT_EQ(observer.calls, 1);

    // A flagged load that *hits* must not trigger speculation.
    Packet ld2 = makeLoad(0x1000, &client, 70);
    ld2.delayed_offchip_flag = true;
    c.sendRead(ld2);
    runFor(70, 20, c, lower, dram);
    EXPECT_EQ(stats.get("c.spec_delayed_issued"), 1u);
}

// --- DRAM ---------------------------------------------------------------------

namespace
{

DramController::Params
dramParams()
{
    DramController::Params p;
    p.name = "dram";
    p.burst_cycles = 19;
    return p;
}

} // namespace

TEST(Dram, ReadRoundTripLatency)
{
    StatGroup stats("t");
    DramController dram(dramParams(), &stats);
    MockClient client;

    ASSERT_TRUE(dram.sendRead(makeLoad(0x10000, &client, 0)));
    runFor(0, 200, dram);
    ASSERT_EQ(client.returns.size(), 1u);
    EXPECT_EQ(client.returns[0].served_by, MemLevel::Dram);
    // Row miss: tRP+tRCD+tCAS + burst = 72 + 19 = 91 cycles minimum.
    EXPECT_EQ(stats.get("dram.row_miss"), 1u);
    EXPECT_EQ(stats.get("dram.transactions"), 1u);
}

TEST(Dram, RowBufferHitIsCounted)
{
    StatGroup stats("t");
    DramController dram(dramParams(), &stats);
    MockClient client;

    dram.sendRead(makeLoad(0x10000, &client, 0));
    Cycle t = runFor(0, 200, dram);
    dram.sendRead(makeLoad(0x10040, &client, t));   // adjacent block
    runFor(t, 200, dram);
    EXPECT_EQ(stats.get("dram.row_hit"), 1u);
    EXPECT_EQ(stats.get("dram.row_miss"), 1u);
}

TEST(Dram, BusBandwidthSerializesBursts)
{
    StatGroup stats("t");
    DramController::Params p = dramParams();
    p.burst_cycles = 50;
    DramController dram(p, &stats);
    MockClient client;

    // Two reads to different banks: access latency overlaps but the data
    // bursts must serialize -> second completes >= 50 cycles after first.
    dram.sendRead(makeLoad(0x10000, &client, 0));
    dram.sendRead(makeLoad(0x10000 + 64 * 128, &client, 0));
    Cycle t = 0;
    std::vector<Cycle> arrivals;
    for (; t < 500 && arrivals.size() < 2; ++t) {
        dram.tick(t);
        while (arrivals.size() < client.returns.size())
            arrivals.push_back(t);
    }
    ASSERT_EQ(arrivals.size(), 2u);
    EXPECT_GE(arrivals[1] - arrivals[0], 50u);
}

TEST(Dram, WritesDrainWithoutResponse)
{
    StatGroup stats("t");
    DramController dram(dramParams(), &stats);
    Packet w = makeLoad(0x10000, nullptr, 0);
    w.type = AccessType::Writeback;
    ASSERT_TRUE(dram.sendWrite(w));
    runFor(0, 300, dram);
    EXPECT_EQ(stats.get("dram.writes"), 1u);
    EXPECT_EQ(stats.get("dram.transactions"), 1u);
}

TEST(Dram, SpecBufferMergesDemand)
{
    StatGroup stats("t");
    DramController dram(dramParams(), &stats);
    MockClient core;
    MockClient llc;

    Packet spec = makeLoad(0x20000, &core, 0);
    spec.spec_dram = true;
    ASSERT_TRUE(dram.sendRead(spec));
    // Demand for the same line arrives while the spec is in flight.
    dram.sendRead(makeLoad(0x20000, &llc, 5));
    runFor(0, 300, dram);
    EXPECT_EQ(stats.get("dram.transactions"), 1u);   // merged!
    EXPECT_EQ(stats.get("dram.spec_merged_inflight"), 1u);
    EXPECT_EQ(core.returns.size(), 1u);
    EXPECT_EQ(llc.returns.size(), 1u);
}

TEST(Dram, SpecBufferServesLaterDemand)
{
    StatGroup stats("t");
    DramController dram(dramParams(), &stats);
    MockClient core;
    MockClient llc;

    Packet spec = makeLoad(0x20000, &core, 0);
    spec.spec_dram = true;
    dram.sendRead(spec);
    Cycle t = runFor(0, 300, dram);
    ASSERT_TRUE(dram.specBufferHolds(0, 0x20000));

    dram.sendRead(makeLoad(0x20000, &llc, t));
    runFor(t, 50, dram);
    EXPECT_EQ(stats.get("dram.transactions"), 1u);
    EXPECT_EQ(stats.get("dram.spec_consumed"), 1u);
    ASSERT_EQ(llc.returns.size(), 1u);
    EXPECT_EQ(llc.returns[0].served_by, MemLevel::Dram);
    EXPECT_FALSE(dram.specBufferHolds(0, 0x20000));   // consumed
}

TEST(Dram, SpecDuplicatesCoalesce)
{
    StatGroup stats("t");
    DramController dram(dramParams(), &stats);
    MockClient core;
    for (int i = 0; i < 5; ++i) {
        Packet spec = makeLoad(0x20000, &core, 0);
        spec.spec_dram = true;
        dram.sendRead(spec);
    }
    runFor(0, 300, dram);
    EXPECT_EQ(stats.get("dram.spec_issued"), 1u);
    EXPECT_EQ(stats.get("dram.transactions"), 1u);
}

TEST(Dram, SpecBuffersArePerCore)
{
    StatGroup stats("t");
    DramController::Params p = dramParams();
    p.num_cores = 2;
    DramController dram(p, &stats);
    MockClient c0;

    Packet spec = makeLoad(0x20000, &c0, 0);
    spec.spec_dram = true;
    spec.core = 0;
    dram.sendRead(spec);
    runFor(0, 300, dram);
    EXPECT_TRUE(dram.specBufferHolds(0, 0x20000));
    EXPECT_FALSE(dram.specBufferHolds(1, 0x20000));
}

TEST(Dram, RqFullRejectsDemandButDropsSpec)
{
    StatGroup stats("t");
    DramController::Params p = dramParams();
    p.rq_size = 2;
    DramController dram(p, &stats);
    MockClient client;

    EXPECT_TRUE(dram.sendRead(makeLoad(0x10000, &client, 0)));
    EXPECT_TRUE(dram.sendRead(makeLoad(0x20000, &client, 0)));
    EXPECT_FALSE(dram.sendRead(makeLoad(0x30000, &client, 0)));

    Packet spec = makeLoad(0x40000, &client, 0);
    spec.spec_dram = true;
    EXPECT_TRUE(dram.sendRead(spec));   // best effort: accepted but dropped
    EXPECT_EQ(stats.get("dram.spec_dropped_full"), 1u);
}
