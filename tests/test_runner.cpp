/**
 * Tests for the parallel experiment engine: job memoization, work
 * stealing, env parsing, and — most importantly — that a workload grid
 * run with 1 worker and with N workers produces bit-identical
 * SimResult::stats maps (guards the runner and the shared trace/graph
 * caches against data races and scheduling-dependent behaviour).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>

#include "sim/runner.hh"
#include "workloads/workload.hh"

using namespace tlpsim;
using namespace tlpsim::experiment;

namespace
{

SystemConfig
tinyConfig(const SchemeConfig &scheme = SchemeConfig::baseline())
{
    SystemConfig cfg = SystemConfig::cascadeLake(1);
    cfg.warmup_instrs = 5'000;
    cfg.sim_instrs = 20'000;
    cfg.scheme = scheme;
    return cfg;
}

} // namespace

TEST(Runner, MemoizesByKey)
{
    Runner r(1);
    std::atomic<int> calls{0};
    auto fn = [&] {
        ++calls;
        SimResult res;
        res.scheme = "x";
        return res;
    };
    EXPECT_TRUE(r.submit("k", fn));
    EXPECT_FALSE(r.submit("k", fn));   // duplicate submit is a no-op
    const SimResult &a = r.get("k");
    const SimResult &b = r.run("k", fn);
    EXPECT_EQ(&a, &b);                 // same cached object
    EXPECT_EQ(calls.load(), 1);
}

TEST(Runner, InlineExecutionWithoutWorkers)
{
    // One job = zero threads; get() must run the job on this thread.
    Runner r(1);
    EXPECT_EQ(r.jobs(), 1u);
    r.submit("a", [] { return SimResult{}; });
    r.get("a");
    EXPECT_EQ(r.completed(), 1u);
    EXPECT_EQ(r.submitted(), 1u);
}

TEST(Runner, PropagatesJobExceptions)
{
    Runner r(2);
    r.submit("boom", []() -> SimResult {
        throw std::runtime_error("job failed");
    });
    EXPECT_THROW(r.get("boom"), std::runtime_error);
}

TEST(Runner, GetOnUnsubmittedKeyThrowsNamingTheKey)
{
    // A mis-keyed lookup must fail loudly in every build type: waiting
    // for a job that will never exist would hang the sweep forever, and
    // the error has to name the key so the caller can see *which* point
    // was never queued.
    Runner r(1);
    r.submit("present", [] { return SimResult{}; });
    r.get("present");
    try {
        r.get("missing-point-key");
        FAIL() << "expected std::logic_error";
    } catch (const std::logic_error &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("missing-point-key"), std::string::npos) << msg;
        EXPECT_NE(msg.find("never submitted"), std::string::npos) << msg;
    }
    EXPECT_THROW(r.outcome("missing-point-key"), std::logic_error);
}

TEST(Runner, JobsFromEnv)
{
    ::setenv("TLPSIM_JOBS", "3", 1);
    EXPECT_EQ(jobsFromEnv(), 3u);
    ::setenv("TLPSIM_JOBS", "not-a-number", 1);
    EXPECT_GE(jobsFromEnv(), 1u);
    ::unsetenv("TLPSIM_JOBS");
    EXPECT_GE(jobsFromEnv(), 1u);
}

TEST(Runner, ConfigKeyDistinguishesDesignPoints)
{
    SystemConfig a = tinyConfig();
    SystemConfig b = tinyConfig(SchemeConfig::tlp());
    SystemConfig c = tinyConfig();
    c.sim_instrs += 1;
    EXPECT_NE(configKey(a), configKey(b));
    EXPECT_NE(configKey(a), configKey(c));
    EXPECT_EQ(configKey(a), configKey(tinyConfig()));
}

/**
 * The headline guarantee: the same grid sharded over 4 workers yields
 * bit-identical per-workload stats to a sequential run in the same
 * process. Any data race or scheduling dependence in the runner, the
 * trace cache, or the graph cache shows up here.
 */
TEST(Runner, GridDeterministicAcrossWorkerCounts)
{
    auto ws = workloads::singleCoreWorkloads(workloads::SetSize::Tiny);
    ASSERT_GE(ws.size(), 4u);
    ws.resize(4);
    std::vector<SystemConfig> grid{tinyConfig(),
                                   tinyConfig(SchemeConfig::tlp())};

    auto run_grid = [&](unsigned jobs) {
        Runner r(jobs);
        for (const auto &cfg : grid) {
            for (const auto &w : ws)
                r.submitSingle(w, cfg);
        }
        std::vector<SimResult> out;
        for (const auto &cfg : grid) {
            for (const auto &w : ws)
                out.push_back(r.single(w, cfg));
        }
        return out;
    };

    std::vector<SimResult> seq = run_grid(1);
    std::vector<SimResult> par = run_grid(4);

    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        EXPECT_EQ(seq[i].stats, par[i].stats) << "design point " << i;
        EXPECT_EQ(seq[i].window_cycles, par[i].window_cycles)
            << "design point " << i;
        EXPECT_EQ(seq[i].ipc, par[i].ipc) << "design point " << i;
        EXPECT_EQ(seq[i].hit_cycle_cap, par[i].hit_cycle_cap);
    }
}

/**
 * The CLI mix-sweep shape: a full mixes x schemes grid (the Fig. 13
 * recipe at 2 cores) must be bit-identical whether it runs on 1 worker
 * or several — the guarantee the tlpsim --cores/--mix sweep mode rests
 * on, including the per-core measured-instruction counts.
 */
TEST(Runner, MixSchemeGridDeterministicAcrossWorkerCounts)
{
    auto ws = workloads::singleCoreWorkloads(workloads::SetSize::Tiny);
    auto mixes = workloads::makeMixes(ws, 2, 1234, 2);
    ASSERT_GE(mixes.size(), 2u);
    mixes.resize(2);

    std::vector<SystemConfig> grid;
    for (const SchemeConfig &s :
         {SchemeConfig::baseline(), SchemeConfig::tlp()}) {
        SystemConfig cfg = SystemConfig::cascadeLake(2);
        cfg.warmup_instrs = 2'000;
        cfg.sim_instrs = 8'000;
        cfg.scheme = s;
        grid.push_back(cfg);
    }

    auto run_grid = [&](unsigned jobs) {
        Runner r(jobs);
        for (const auto &cfg : grid) {
            for (const auto &mix : mixes)
                r.submitMix(ws, mix, cfg);
        }
        std::vector<SimResult> out;
        for (const auto &cfg : grid) {
            for (const auto &mix : mixes)
                out.push_back(r.mix(ws, mix, cfg));
        }
        return out;
    };

    std::vector<SimResult> seq = run_grid(1);
    std::vector<SimResult> par = run_grid(4);
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        EXPECT_EQ(seq[i].stats, par[i].stats) << "design point " << i;
        EXPECT_EQ(seq[i].ipc, par[i].ipc) << "design point " << i;
        EXPECT_EQ(seq[i].instrs, par[i].instrs) << "design point " << i;
        EXPECT_EQ(seq[i].window_cycles, par[i].window_cycles)
            << "design point " << i;
        EXPECT_EQ(seq[i].warmup_end_cycle, par[i].warmup_end_cycle)
            << "design point " << i;
    }
}

TEST(Runner, MixGridDeterministicAcrossWorkerCounts)
{
    auto ws = workloads::singleCoreWorkloads(workloads::SetSize::Tiny);
    auto mixes = workloads::makeMixes(ws, 1, 99);
    ASSERT_FALSE(mixes.empty());
    mixes.resize(1);

    SystemConfig cfg = SystemConfig::cascadeLake(4);
    cfg.warmup_instrs = 2'000;
    cfg.sim_instrs = 8'000;

    auto run_grid = [&](unsigned jobs) {
        Runner r(jobs);
        for (const auto &mix : mixes)
            r.submitMix(ws, mix, cfg);
        std::vector<SimResult> out;
        for (const auto &mix : mixes)
            out.push_back(r.mix(ws, mix, cfg));
        return out;
    };

    std::vector<SimResult> seq = run_grid(1);
    std::vector<SimResult> par = run_grid(3);
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        EXPECT_EQ(seq[i].stats, par[i].stats);
        EXPECT_EQ(seq[i].ipc, par[i].ipc);
    }
}
