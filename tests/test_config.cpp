/**
 * The declarative configuration surface: Config parsing/serialization,
 * SystemConfig::fromConfig/toConfig round trips for every shipped scheme
 * preset, the configs/ preset files, error paths with actionable
 * messages, and CLI-path vs bench-path design-point equivalence.
 */

#include <gtest/gtest.h>

#include "sim/runner.hh"
#include "sim/system_config.hh"
#include "workloads/workload.hh"

using namespace tlpsim;

// --- Config basics ----------------------------------------------------------

TEST(Config, ParseAndTypedGetters)
{
    Config c = Config::parse("a = 1\n"
                             "b.c = 2.5   # trailing comment\n"
                             "\n"
                             "# full-line comment\n"
                             "d = true\n"
                             "e = hello\n");
    EXPECT_EQ(c.getInt("a", 0), 1);
    EXPECT_DOUBLE_EQ(c.getDouble("b.c", 0.0), 2.5);
    EXPECT_TRUE(c.getBool("d", false));
    EXPECT_EQ(c.getString("e"), "hello");
    EXPECT_EQ(c.getInt("missing", 42), 42);
    EXPECT_FALSE(c.has("missing"));
}

TEST(Config, SerializeRoundTrip)
{
    Config c;
    c.set("x.y", 7);
    c.set("x.z", true);
    c.set("w", 12.8);
    c.set("s", "spp");
    EXPECT_EQ(Config::parse(c.serialize()), c);
}

TEST(Config, MergeLaterWins)
{
    Config base = Config::parse("a = 1\nb = 2\n");
    base.merge(Config::parseAssignments("b=3, c=4"));
    EXPECT_EQ(base.getInt("a", 0), 1);
    EXPECT_EQ(base.getInt("b", 0), 3);
    EXPECT_EQ(base.getInt("c", 0), 4);
}

TEST(Config, SubStripsPrefix)
{
    Config c = Config::parse("scheme.name = tlp\nscheme.tau_high = 9\n"
                             "cores = 1\n");
    Config s = c.sub("scheme");
    EXPECT_EQ(s.getString("name"), "tlp");
    EXPECT_EQ(s.getInt("tau_high", 0), 9);
    EXPECT_FALSE(s.has("cores"));
}

TEST(Config, ListValuedKeys)
{
    // Config-file style (commas), assignment style ('+', where ','
    // already separates assignments), and whitespace all split.
    Config c = Config::parse("mix.a = bfs.kron, mcf_pchase\n"
                             "mix.b = bfs.kron+mcf_pchase\n"
                             "mix.c = bfs.kron mcf_pchase\n");
    std::vector<std::string> want{"bfs.kron", "mcf_pchase"};
    EXPECT_EQ(c.getStringList("mix.a"), want);
    EXPECT_EQ(c.getStringList("mix.b"), want);
    EXPECT_EQ(c.getStringList("mix.c"), want);
    EXPECT_EQ(c.getStringList("missing", {"x"}),
              std::vector<std::string>{"x"});

    // set(vector) round-trips through serialize/parse.
    Config d;
    d.set("workload.mix", want);
    EXPECT_EQ(Config::parse(d.serialize()).getStringList("workload.mix"),
              want);

    // The '+'-separated form survives the --set assignment syntax.
    Config e = Config::parseAssignments(
        "workload.mix=bfs.kron+mcf_pchase, cores=2");
    EXPECT_EQ(e.getStringList("workload.mix"), want);
    EXPECT_EQ(e.getInt("cores", 0), 2);
}

TEST(Config, ParseErrorsNameTheLine)
{
    try {
        Config::parse("a = 1\nwhat is this\n", "bad.conf");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("bad.conf:2"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Config, BadValueErrorsNameKeyAndValue)
{
    Config c = Config::parse("cores = banana\n");
    try {
        c.getUnsigned("cores", 1);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("cores"), std::string::npos) << msg;
        EXPECT_NE(msg.find("banana"), std::string::npos) << msg;
    }
}

// --- scheme presets ---------------------------------------------------------

TEST(SchemeConfig, ElevenShippedPresets)
{
    EXPECT_EQ(SchemeConfig::names().size(), 11u);
}

TEST(SchemeConfig, FromNameMatchesDeprecatedAccessors)
{
    EXPECT_EQ(SchemeConfig::fromName("tlp"), SchemeConfig::tlp());
    EXPECT_EQ(SchemeConfig::fromName("baseline"), SchemeConfig::baseline());
    EXPECT_EQ(SchemeConfig::fromName("hermes+ppf"),
              SchemeConfig::hermesPpf());
    EXPECT_EQ(SchemeConfig::fromName("delayed_tsp"),
              SchemeConfig::delayedTsp());
}

TEST(SchemeConfig, UnknownNameListsValidNames)
{
    try {
        SchemeConfig::fromName("nope");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("nope"), std::string::npos) << msg;
        EXPECT_NE(msg.find("tlp"), std::string::npos) << msg;
        EXPECT_NE(msg.find("hermes+ppf"), std::string::npos) << msg;
    }
}

// The satellite requirement: parse -> SystemConfig -> toConfig -> parse is
// the identity for every shipped scheme.
TEST(SystemConfig, RoundTripsEveryScheme)
{
    for (const std::string &name : SchemeConfig::names()) {
        SystemConfig cfg = SystemConfig::cascadeLake(1);
        cfg.scheme = SchemeConfig::fromName(name);

        Config dumped = cfg.toConfig();
        Config reparsed = Config::parse(dumped.serialize(), name);
        SystemConfig rebuilt = SystemConfig::fromConfig(reparsed);

        EXPECT_EQ(rebuilt.toConfig(), dumped) << name;
        EXPECT_EQ(rebuilt.scheme, cfg.scheme) << name;
        EXPECT_EQ(rebuilt.l1_prefetcher, cfg.l1_prefetcher) << name;
    }
}

TEST(SystemConfig, SchemeShorthandSelectsPreset)
{
    Config c = Config::parse("scheme = tlp\n");
    EXPECT_EQ(SystemConfig::fromConfig(c).scheme, SchemeConfig::tlp());

    // Explicit scheme.* keys override the preset.
    Config c2 = Config::parse("scheme = tlp\nscheme.tau_high = 11\n");
    SystemConfig cfg = SystemConfig::fromConfig(c2);
    EXPECT_EQ(cfg.scheme.tau_high, 11);
    EXPECT_EQ(cfg.scheme.offchip, "flp");
}

TEST(SystemConfig, MultiCoreDefaultsFollowCores)
{
    SystemConfig c = SystemConfig::fromConfig(Config::parse("cores = 4\n"));
    EXPECT_EQ(c.num_cores, 4u);
    EXPECT_DOUBLE_EQ(c.dram_gbps_per_core, 3.2);
}

// Every configs/*.conf preset file must build the same SchemeConfig as the
// in-code preset of the same name, so the shipped files can never rot.
TEST(SystemConfig, ShippedPresetFilesMatchCodePresets)
{
    for (const std::string &name : SchemeConfig::names()) {
        std::string path
            = std::string(TLPSIM_CONFIGS_DIR) + "/" + name + ".conf";
        SystemConfig cfg = SystemConfig::fromConfig(Config::parseFile(path));
        EXPECT_EQ(cfg.scheme, SchemeConfig::fromName(name)) << path;
    }
}

// Arbitrary per-component subtrees: scheme.offchip.* / scheme.l1_filter.*
// (and l1d.prefetcher.* / l2.prefetcher.*) keys the named knobs have
// never heard of must round-trip, fingerprint distinctly, and reach the
// registry builders.
TEST(SystemConfig, ComponentSubtreesRoundTripAndFingerprint)
{
    Config c = Config::parse("scheme = tlp\n"
                             "scheme.offchip.table_scale_shift = 1\n"
                             "scheme.l1_filter.probation_period = 7\n"
                             "l1d.prefetcher.region_lines = 16\n");
    SystemConfig cfg = SystemConfig::fromConfig(c);
    EXPECT_EQ(cfg.scheme.offchip_params.getString("table_scale_shift"),
              "1");
    EXPECT_EQ(cfg.scheme.l1_filter_params.getString("probation_period"),
              "7");
    EXPECT_EQ(cfg.l1_pf_params.getString("region_lines"), "16");

    // toConfig emits the subtree keys, so fromConfig(toConfig()) is the
    // identity and the Runner fingerprint separates the design points.
    Config dumped = cfg.toConfig();
    EXPECT_EQ(dumped.getString("scheme.l1_filter.probation_period"), "7");
    SystemConfig rebuilt
        = SystemConfig::fromConfig(Config::parse(dumped.serialize()));
    EXPECT_EQ(rebuilt.toConfig(), dumped);
    EXPECT_EQ(rebuilt.scheme, cfg.scheme);

    SystemConfig plain
        = SystemConfig::fromConfig(Config::parse("scheme = tlp\n"));
    EXPECT_NE(experiment::configKey(cfg), experiment::configKey(plain));
}

TEST(SystemConfig, ComponentSubtreesReachTheBuilders)
{
    // A subtree knob must change simulated behaviour: SLP drops a
    // prefetch when the perceptron sum reaches tau_pref ("predicted
    // off-chip"), so an always-reached threshold drops (nearly) all.
    Config base = Config::parse("scheme = tlp\n"
                                "warmup_instrs = 2000\n"
                                "sim_instrs = 8000\n");
    Config strict = base;
    strict.set("scheme.l1_filter.tau_pref", -120);

    auto ws = workloads::singleCoreWorkloads(workloads::SetSize::Tiny);
    SimResult loose
        = experiment::runSingleCore(ws.front(),
                                    SystemConfig::fromConfig(base));
    SimResult tight
        = experiment::runSingleCore(ws.front(),
                                    SystemConfig::fromConfig(strict));
    EXPECT_GT(tight.stat("cpu0.l1d.pf_filtered"),
              loose.stat("cpu0.l1d.pf_filtered"));
}

// --- error paths ------------------------------------------------------------

TEST(SystemConfig, ZeroCoresIsRejected)
{
    try {
        SystemConfig::fromConfig(Config::parse("cores = 0\n"));
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("cores = 0"),
                  std::string::npos)
            << e.what();
    }
}

TEST(SystemConfig, UnknownKeyListsNearbyKeys)
{
    try {
        SystemConfig::fromConfig(Config::parse("scheme.bogus = 1\n"));
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("scheme.bogus"), std::string::npos) << msg;
        EXPECT_NE(msg.find("scheme.name"), std::string::npos) << msg;
    }
}

TEST(SystemConfig, UnknownTopLevelKeyListsValidKeys)
{
    try {
        SystemConfig::fromConfig(Config::parse("bogus_key = 1\n"));
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("bogus_key"), std::string::npos) << msg;
        EXPECT_NE(msg.find("valid keys"), std::string::npos) << msg;
        EXPECT_NE(msg.find("warmup_instrs"), std::string::npos) << msg;
    }
}

TEST(SystemConfig, UnknownPrefetcherListsRegistryNames)
{
    try {
        SystemConfig::fromConfig(Config::parse("l1d.prefetcher = fancy\n"));
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("fancy"), std::string::npos) << msg;
        EXPECT_NE(msg.find("ipcp"), std::string::npos) << msg;
        EXPECT_NE(msg.find("berti"), std::string::npos) << msg;
        EXPECT_NE(msg.find("next_line"), std::string::npos) << msg;
    }
}

TEST(SystemConfig, UnknownOffchipPredictorListsRegistryNames)
{
    Config c = Config::parse("scheme.offchip = athena\n"
                             "scheme.offchip_policy = immediate\n");
    try {
        SystemConfig::fromConfig(c);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("athena"), std::string::npos) << msg;
        EXPECT_NE(msg.find("flp"), std::string::npos) << msg;
        EXPECT_NE(msg.find("hermes"), std::string::npos) << msg;
    }
}

TEST(SystemConfig, OffchipNameWithoutPolicyIsRejected)
{
    EXPECT_THROW(
        SystemConfig::fromConfig(Config::parse("scheme.offchip = flp\n")),
        ConfigError);
    EXPECT_THROW(SystemConfig::fromConfig(
                     Config::parse("scheme.offchip_policy = selective\n")),
                 ConfigError);
}

TEST(SystemConfig, BadPolicyListsValidPolicies)
{
    Config c = Config::parse("scheme.offchip = flp\n"
                             "scheme.offchip_policy = sometimes\n");
    try {
        SystemConfig::fromConfig(c);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("sometimes"), std::string::npos) << msg;
        EXPECT_NE(msg.find("selective"), std::string::npos) << msg;
    }
}

// --- CLI path == bench path -------------------------------------------------

// The acceptance criterion: a design point built from a shipped preset
// file (the tlpsim CLI path) is the *same* design point as one built in
// code the way the benches do it — byte-identical config fingerprint, so
// the Runner memoizes them as one simulation and every table row matches.
TEST(SystemConfig, PresetFileDesignPointMatchesBenchPath)
{
    Config file_cfg = Config::parseFile(std::string(TLPSIM_CONFIGS_DIR)
                                        + "/tlp.conf");
    file_cfg.merge(
        Config::parseAssignments("warmup_instrs=2000, sim_instrs=6000"));
    SystemConfig cli_path = SystemConfig::fromConfig(file_cfg);

    SystemConfig bench_path = SystemConfig::cascadeLake(1);
    bench_path.warmup_instrs = 2'000;
    bench_path.sim_instrs = 6'000;
    bench_path.scheme = SchemeConfig::tlp();

    EXPECT_EQ(experiment::configKey(cli_path),
              experiment::configKey(bench_path));

    // And the design point actually runs end to end.
    auto ws = workloads::singleCoreWorkloads(workloads::SetSize::Tiny);
    SimResult r = experiment::runSingleCore(ws.front(), cli_path);
    EXPECT_GT(r.ipc[0], 0.0);
    EXPECT_EQ(r.scheme, "tlp");
}
