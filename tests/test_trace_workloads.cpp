/**
 * Tests for the trace format, the recorder, graph generation, and the GAP
 * and SPEC-like kernels — including algorithmic correctness of the
 * recorded kernels on small graphs (results must match reference
 * implementations run independently).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <queue>

#include "common/bitops.hh"
#include "common/config.hh"
#include "trace/trace.hh"
#include "workloads/gap_kernels.hh"
#include "workloads/graph.hh"
#include "workloads/recorder.hh"
#include "workloads/spec_kernels.hh"
#include "workloads/workload.hh"

using namespace tlpsim;
using namespace tlpsim::workloads;

namespace
{

Trace
record(std::uint64_t max_instrs,
       const std::function<void(TraceRecorder &)> &fn)
{
    Trace t("test");
    TraceRecorder::Options opt;
    opt.max_instrs = max_instrs;
    TraceRecorder rec(t, opt);
    fn(rec);
    return t;
}

Graph
tinyGraph(GraphKind kind = GraphKind::Kron)
{
    return makeGraph(kind, 8, 6, 123);   // 256 vertices
}

} // namespace

TEST(Trace, RecordSize)
{
    EXPECT_EQ(sizeof(TraceInstr), 32u);
}

TEST(Trace, SummaryCounts)
{
    Trace t = record(100, [](TraceRecorder &rec) {
        RegId r = rec.load(0x100000000);
        rec.store(0x100000040, r);
        rec.branch(true, r);
        rec.alu(r);
    });
    auto s = t.summarize();
    EXPECT_EQ(s.instrs, 4u);
    EXPECT_EQ(s.loads, 1u);
    EXPECT_EQ(s.stores, 1u);
    EXPECT_EQ(s.branches, 1u);
    EXPECT_EQ(s.taken_branches, 1u);
    EXPECT_EQ(s.distinct_pages, 1u);
}

TEST(Trace, ReaderLoops)
{
    Trace t = record(100, [](TraceRecorder &rec) {
        rec.alu();
        rec.alu();
        rec.alu();
    });
    TraceReader r(t);
    for (int i = 0; i < 10; ++i)
        r.next();
    EXPECT_EQ(r.position(), 10u % 3u);
}

TEST(Trace, ReaderPeekDoesNotConsume)
{
    Trace t = record(100, [](TraceRecorder &rec) {
        rec.load(0x100000000);
        rec.alu();
    });
    TraceReader r(t);
    const TraceInstr &p1 = r.peek();
    const TraceInstr &p2 = r.peek();
    EXPECT_EQ(&p1, &p2);
    EXPECT_TRUE(r.next().isLoad());
}

TEST(Recorder, StopsAtMaxInstrs)
{
    Trace t = record(10, [](TraceRecorder &rec) {
        while (!rec.full())
            rec.alu();
    });
    EXPECT_EQ(t.size(), 10u);
}

TEST(Recorder, DistinctCallSitesGetDistinctPcs)
{
    Trace t = record(10, [](TraceRecorder &rec) {
        rec.load(0x100000000);   // site A
        rec.load(0x100000040);   // site B
    });
    EXPECT_NE(t.at(0).ip, t.at(1).ip);
}

TEST(Recorder, SameCallSiteSamePc)
{
    volatile int iters = 3;   // opaque bound: prevent full unrolling
    Trace t = record(10, [&](TraceRecorder &rec) {
        for (int i = 0; i < iters; ++i)
            rec.load(0x100000000 + static_cast<Addr>(i) * 64);
    });
    EXPECT_EQ(t.at(0).ip, t.at(1).ip);
    EXPECT_EQ(t.at(1).ip, t.at(2).ip);
}

TEST(Recorder, RegisterDependencyChain)
{
    Trace t = record(10, [](TraceRecorder &rec) {
        RegId a = rec.load(0x100000000);
        RegId b = rec.load(0x100001000, a);   // address depends on a
        rec.alu(a, b);
    });
    EXPECT_EQ(t.at(1).src0, t.at(0).dst);
    EXPECT_EQ(t.at(2).src0, t.at(0).dst);
    EXPECT_EQ(t.at(2).src1, t.at(1).dst);
}

TEST(Recorder, RegistersRotateAvoidingZero)
{
    Trace t = record(200, [](TraceRecorder &rec) {
        for (int i = 0; i < 200; ++i)
            rec.alu();
    });
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_NE(t.at(i).dst, kNoReg);
}

TEST(Recorder, AllocPageAlignedAndDisjoint)
{
    Trace t("x");
    TraceRecorder rec(t, {1000, Addr{1} << 32});
    Addr a = rec.alloc(100);
    Addr b = rec.alloc(5000);
    Addr c = rec.alloc(1);
    EXPECT_EQ(a & kPageMask, 0u);
    EXPECT_EQ(b & kPageMask, 0u);
    EXPECT_GE(b, a + kPageSize);      // guard page between regions
    EXPECT_GE(c, b + 2 * kPageSize);  // 5000 B rounds to 2 pages + guard
}

TEST(Recorder, ExplicitIpVariants)
{
    Trace t("x");
    TraceRecorder rec(t, {100, Addr{1} << 32});
    rec.loadAt(0x1234, 0x100000000);
    rec.branchAt(0x5678, false);
    EXPECT_EQ(t.at(0).ip, 0x1234u);
    EXPECT_EQ(t.at(1).ip, 0x5678u);
    EXPECT_FALSE(t.at(1).taken);
}

// --- Graph generation ----------------------------------------------------

class GraphKindTest : public ::testing::TestWithParam<GraphKind>
{};

TEST_P(GraphKindTest, WellFormedCsr)
{
    Graph g = makeGraph(GetParam(), 10, 8, 42);
    ASSERT_GT(g.numVertices(), 0u);
    EXPECT_EQ(g.offsets.size(), g.numVertices() + 1u);
    EXPECT_EQ(g.offsets.front(), 0u);
    EXPECT_EQ(g.offsets.back(), g.numEdges());
    for (Vertex v = 0; v < g.numVertices(); ++v)
        EXPECT_LE(g.begin(v), g.end(v));
    for (Vertex n : g.neighbors)
        EXPECT_LT(n, g.numVertices());
}

TEST_P(GraphKindTest, Symmetrized)
{
    Graph g = makeGraph(GetParam(), 8, 6, 42);
    // Every edge must appear in both directions.
    for (Vertex u = 0; u < g.numVertices(); ++u) {
        for (std::uint64_t e = g.begin(u); e < g.end(u); ++e) {
            Vertex v = g.neighbors[e];
            bool found = false;
            for (std::uint64_t e2 = g.begin(v); e2 < g.end(v) && !found;
                 ++e2) {
                found = g.neighbors[e2] == u;
            }
            EXPECT_TRUE(found) << "edge " << u << "->" << v;
        }
    }
}

TEST_P(GraphKindTest, DeterministicInSeed)
{
    Graph a = makeGraph(GetParam(), 9, 6, 7);
    Graph b = makeGraph(GetParam(), 9, 6, 7);
    EXPECT_EQ(a.offsets, b.offsets);
    EXPECT_EQ(a.neighbors, b.neighbors);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, GraphKindTest,
    ::testing::Values(GraphKind::Web, GraphKind::Road, GraphKind::Twitter,
                      GraphKind::Kron, GraphKind::Urand),
    [](const auto &inf) { return toString(inf.param); });

TEST(Graph, PowerLawSkew)
{
    // Kron must be much more skewed than Urand at equal size.
    Graph kron = makeGraph(GraphKind::Kron, 12, 8, 42);
    Graph urand = makeGraph(GraphKind::Urand, 12, 8, 42);
    EXPECT_GT(kron.maxDegree(), urand.maxDegree() * 4);
}

TEST(Graph, RoadIsLowDegree)
{
    Graph road = makeGraph(GraphKind::Road, 12, 8, 42);
    EXPECT_LT(road.avgDegree(), 6.0);
    EXPECT_LT(road.maxDegree(), 32u);
}

TEST(Graph, CacheReturnsSameGraph)
{
    GraphCache::clear();
    auto a = GraphCache::get(GraphKind::Kron, 8, 6, 1);
    auto b = GraphCache::get(GraphKind::Kron, 8, 6, 1);
    EXPECT_EQ(a.get(), b.get());
    GraphCache::clear();
}

// --- GAP kernel correctness ----------------------------------------------

TEST(GapKernels, BfsParentsFormValidTree)
{
    Graph g = tinyGraph();
    Trace t("bfs");
    TraceRecorder rec(t, {100'000'000, Addr{1} << 32});
    BfsResult res = recordBfs(g, rec, 5);

    ASSERT_LT(res.source, g.numVertices());
    EXPECT_EQ(res.parent[res.source], res.source);
    std::uint64_t visited = 0;
    for (Vertex v = 0; v < g.numVertices(); ++v) {
        if (res.parent[v] == kNoParent)
            continue;
        ++visited;
        if (v == res.source)
            continue;
        // parent must actually be adjacent to v.
        Vertex p = res.parent[v];
        bool adjacent = false;
        for (std::uint64_t e = g.begin(p); e < g.end(p); ++e)
            adjacent |= g.neighbors[e] == v;
        EXPECT_TRUE(adjacent) << "v=" << v;
    }
    EXPECT_EQ(visited, res.visited);
    EXPECT_GT(visited, 1u);
}

TEST(GapKernels, BfsMatchesReferenceReachability)
{
    Graph g = tinyGraph(GraphKind::Urand);
    Trace t("bfs");
    TraceRecorder rec(t, {100'000'000, Addr{1} << 32});
    BfsResult res = recordBfs(g, rec, 11);

    // Reference BFS from the same source.
    std::vector<bool> reach(g.numVertices(), false);
    std::queue<Vertex> q;
    reach[res.source] = true;
    q.push(res.source);
    while (!q.empty()) {
        Vertex u = q.front();
        q.pop();
        for (std::uint64_t e = g.begin(u); e < g.end(u); ++e) {
            Vertex v = g.neighbors[e];
            if (!reach[v]) {
                reach[v] = true;
                q.push(v);
            }
        }
    }
    for (Vertex v = 0; v < g.numVertices(); ++v)
        EXPECT_EQ(res.parent[v] != kNoParent, reach[v]) << v;
}

TEST(GapKernels, PageRankSumsToOne)
{
    Graph g = tinyGraph(GraphKind::Road);   // mesh: no dangling vertices
    Trace t("pr");
    TraceRecorder rec(t, {100'000'000, Addr{1} << 32});
    PrResult res = recordPr(g, rec, 0, 10);
    ASSERT_EQ(res.iterations, 10u);
    double sum = 0.0;
    for (float r : res.rank)
        sum += r;
    // Dangling vertices leak mass; with few of them the sum stays close.
    EXPECT_NEAR(sum, 1.0, 0.15);
    for (float r : res.rank)
        EXPECT_GE(r, 0.0f);
}

TEST(GapKernels, PageRankHubsRankHigher)
{
    Graph g = tinyGraph(GraphKind::Kron);
    Trace t("pr");
    TraceRecorder rec(t, {100'000'000, Addr{1} << 32});
    PrResult res = recordPr(g, rec, 0, 10);
    Vertex hub = g.maxDegreeVertex();
    double avg = 0.0;
    for (float r : res.rank)
        avg += r;
    avg /= g.numVertices();
    EXPECT_GT(res.rank[hub], avg);
}

TEST(GapKernels, ConnectedComponentsConsistent)
{
    Graph g = tinyGraph(GraphKind::Road);
    Trace t("cc");
    TraceRecorder rec(t, {100'000'000, Addr{1} << 32});
    CcResult res = recordCc(g, rec, 0);
    // Neighbors must share a component label.
    for (Vertex u = 0; u < g.numVertices(); ++u) {
        for (std::uint64_t e = g.begin(u); e < g.end(u); ++e)
            EXPECT_EQ(res.comp[u], res.comp[g.neighbors[e]]);
    }
}

TEST(GapKernels, TriangleCountMatchesBruteForce)
{
    Graph g = makeGraph(GraphKind::Urand, 6, 6, 99);   // 64 vertices
    Trace t("tc");
    TraceRecorder rec(t, {100'000'000, Addr{1} << 32});
    TcResult res = recordTc(g, rec, 0);

    // Brute-force triangle count on the deduplicated adjacency matrix.
    std::vector<std::vector<bool>> adj(
        g.numVertices(), std::vector<bool>(g.numVertices(), false));
    for (Vertex u = 0; u < g.numVertices(); ++u) {
        for (std::uint64_t e = g.begin(u); e < g.end(u); ++e)
            adj[u][g.neighbors[e]] = true;
    }
    std::uint64_t expect = 0;
    for (Vertex a = 0; a < g.numVertices(); ++a) {
        for (Vertex b = a + 1; b < g.numVertices(); ++b) {
            if (!adj[a][b])
                continue;
            for (Vertex c = b + 1; c < g.numVertices(); ++c)
                expect += adj[a][c] && adj[b][c];
        }
    }
    // The recorded kernel counts over the multigraph edge list; parallel
    // edges can double-count, so compare set-based counts only when the
    // generator produced no duplicates. Dedup check:
    bool has_dup = false;
    for (Vertex u = 0; u < g.numVertices() && !has_dup; ++u) {
        std::vector<Vertex> ns(g.neighbors.begin() + g.begin(u),
                               g.neighbors.begin() + g.end(u));
        std::sort(ns.begin(), ns.end());
        has_dup = std::adjacent_find(ns.begin(), ns.end()) != ns.end();
    }
    if (!has_dup)
        EXPECT_EQ(res.triangles, expect);
    else
        EXPECT_GE(res.triangles, expect);
}

TEST(GapKernels, SsspMatchesDijkstra)
{
    Graph g = tinyGraph(GraphKind::Road);
    Trace t("sssp");
    TraceRecorder rec(t, {100'000'000, Addr{1} << 32});
    SsspResult res = recordSssp(g, rec, 21);

    // Reference Dijkstra with the same synthetic weight function.
    auto weight = [](std::uint64_t e) {
        return static_cast<std::uint32_t>(1 + (mix64(e) & 31));
    };
    std::vector<std::uint32_t> dist(g.numVertices(), kInfDist);
    using Pq = std::priority_queue<std::pair<std::uint32_t, Vertex>,
                                   std::vector<std::pair<std::uint32_t,
                                                         Vertex>>,
                                   std::greater<>>;
    Pq pq;
    dist[res.source] = 0;
    pq.push({0, res.source});
    while (!pq.empty()) {
        auto [d, u] = pq.top();
        pq.pop();
        if (d > dist[u])
            continue;
        for (std::uint64_t e = g.begin(u); e < g.end(u); ++e) {
            Vertex v = g.neighbors[e];
            std::uint32_t nd = d + weight(e);
            if (nd < dist[v]) {
                dist[v] = nd;
                pq.push({nd, v});
            }
        }
    }
    EXPECT_EQ(res.dist, dist);
}

TEST(GapKernels, BcSourceHasZeroDependency)
{
    Graph g = tinyGraph();
    Trace t("bc");
    TraceRecorder rec(t, {100'000'000, Addr{1} << 32});
    BcResult res = recordBc(g, rec, 3);
    for (float c : res.centrality)
        EXPECT_GE(c, 0.0f);
}

TEST(GapKernels, TraitsTableMatchesPaper)
{
    EXPECT_STREQ(gapKernelTraits(GapKernel::Pr).execution_style,
                 "Pull-Only");
    EXPECT_TRUE(gapKernelTraits(GapKernel::Bfs).uses_frontier);
    EXPECT_FALSE(gapKernelTraits(GapKernel::Tc).uses_frontier);
    EXPECT_STREQ(gapKernelTraits(GapKernel::Bc).irreg_elem_size,
                 "8 B + 4 B");
}

class GapKernelRecordTest : public ::testing::TestWithParam<GapKernel>
{};

TEST_P(GapKernelRecordTest, FillsTraceWithMemoryOps)
{
    Graph g = makeGraph(GraphKind::Kron, 10, 8, 42);
    Trace t("k");
    TraceRecorder rec(t, {20'000, Addr{1} << 32});
    recordGapKernel(GetParam(), g, rec, 1);
    auto s = t.summarize();
    EXPECT_EQ(s.instrs, 20'000u);
    EXPECT_GT(s.loads, s.instrs / 10);
    EXPECT_GT(s.branches, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, GapKernelRecordTest,
    ::testing::Values(GapKernel::Bfs, GapKernel::Pr, GapKernel::Cc,
                      GapKernel::Bc, GapKernel::Tc, GapKernel::Sssp),
    [](const auto &inf) { return toString(inf.param); });

// --- SPEC-like kernels ----------------------------------------------------

class SpecKernelTest : public ::testing::TestWithParam<SpecKernel>
{};

TEST_P(SpecKernelTest, FillsTraceDeterministically)
{
    Trace a("a");
    TraceRecorder ra(a, {15'000, Addr{1} << 32});
    recordSpecKernel(GetParam(), ra, 42, 6);

    Trace b("b");
    TraceRecorder rb(b, {15'000, Addr{1} << 32});
    recordSpecKernel(GetParam(), rb, 42, 6);

    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.size(), 15'000u);
    for (std::size_t i = 0; i < a.size(); i += 97) {
        EXPECT_EQ(a.at(i).ld_vaddr, b.at(i).ld_vaddr);
        EXPECT_EQ(a.at(i).st_vaddr, b.at(i).st_vaddr);
    }
}

TEST_P(SpecKernelTest, HasLoads)
{
    Trace t("t");
    TraceRecorder rec(t, {15'000, Addr{1} << 32});
    recordSpecKernel(GetParam(), rec, 1, 6);
    EXPECT_GT(t.summarize().loads, 1000u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSpecKernels, SpecKernelTest,
    ::testing::Values(SpecKernel::McfPchase, SpecKernel::LbmStencil,
                      SpecKernel::LibqStream, SpecKernel::OmnetppHeap,
                      SpecKernel::XalanHash, SpecKernel::GccMixed,
                      SpecKernel::DeepsjengTt, SpecKernel::RomsSpmv),
    [](const auto &inf) { return toString(inf.param); });

TEST(SpecKernels, PointerChaseIsDependent)
{
    Trace t("mcf");
    TraceRecorder rec(t, {1'000, Addr{1} << 32});
    recordSpecKernel(SpecKernel::McfPchase, rec, 42, 8);
    // The chase loads must form a register dependence chain: find two
    // successive chase loads and check src/dst linkage.
    int chained = 0;
    RegId last_dst = kNoReg;
    for (std::size_t i = 0; i < t.size(); ++i) {
        const TraceInstr &in = t.at(i);
        if (!in.isLoad())
            continue;
        if (in.src0 != kNoReg && in.src0 == last_dst)
            ++chained;
        last_dst = in.dst;
    }
    EXPECT_GT(chained, 100);
}

// --- Workload registry -----------------------------------------------------

TEST(Workloads, TinySetComposition)
{
    auto ws = singleCoreWorkloads(SetSize::Tiny);
    int gap = 0;
    int spec = 0;
    for (const auto &w : ws)
        (w.suite == Suite::Gap ? gap : spec)++;
    EXPECT_EQ(gap, 12);   // 6 kernels x 2 graphs
    EXPECT_EQ(spec, 2);
}

TEST(Workloads, NamesAreUnique)
{
    auto ws = singleCoreWorkloads(SetSize::Tiny);
    std::set<std::string> names;
    for (const auto &w : ws)
        names.insert(w.name);
    EXPECT_EQ(names.size(), ws.size());
}

TEST(Workloads, BuildTraceRespectsLength)
{
    auto ws = singleCoreWorkloads(SetSize::Tiny);
    Trace t = buildTrace(ws.back(), 5'000, 1);   // a SPEC kernel
    EXPECT_EQ(t.size(), 5'000u);
    EXPECT_EQ(t.name(), ws.back().name);
}

TEST(Workloads, MixesFollowPaperRecipe)
{
    auto ws = singleCoreWorkloads(SetSize::Tiny);
    auto mixes = makeMixes(ws, 4, 99);
    ASSERT_EQ(mixes.size(), 8u);   // 4 per suite
    int homo = 0;
    for (const auto &m : mixes) {
        if (m.homogeneous) {
            ++homo;
            EXPECT_EQ(m.workload_index[0], m.workload_index[1]);
            EXPECT_EQ(m.workload_index[0], m.workload_index[3]);
        }
        for (int idx : m.workload_index) {
            ASSERT_GE(idx, 0);
            ASSERT_LT(idx, static_cast<int>(ws.size()));
            EXPECT_EQ(ws[static_cast<std::size_t>(idx)].suite, m.suite);
        }
    }
    EXPECT_EQ(homo, 4);
}

TEST(Workloads, MixesDeterministic)
{
    auto ws = singleCoreWorkloads(SetSize::Tiny);
    auto a = makeMixes(ws, 4, 7);
    auto b = makeMixes(ws, 4, 7);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].workload_index, b[i].workload_index);
}

TEST(Workloads, MixesGeneralizeToAnyCoreCount)
{
    auto ws = singleCoreWorkloads(SetSize::Tiny);
    for (unsigned cores : {1u, 2u, 4u, 8u}) {
        auto mixes = makeMixes(ws, 2, 7, cores);
        ASSERT_FALSE(mixes.empty());
        for (const auto &m : mixes)
            EXPECT_EQ(m.cores(), cores);
    }
    // A homogeneous mix draws its one workload independently of the core
    // count, so the paper's 4-core mix *names* survive width changes.
    auto four = makeMixes(ws, 2, 7, 4);
    auto two = makeMixes(ws, 2, 7, 2);
    ASSERT_EQ(four.size(), two.size());
    for (std::size_t i = 0; i < four.size(); ++i) {
        if (four[i].homogeneous) {
            EXPECT_EQ(four[i].name, two[i].name);
        }
    }
}

TEST(Workloads, ResolveWorkloadIndicesCollectsEveryUnknownName)
{
    auto ws = singleCoreWorkloads(SetSize::Tiny);
    auto ok = resolveWorkloadIndices(ws, {ws[1].name, ws[0].name}, "test");
    ASSERT_EQ(ok.size(), 2u);
    EXPECT_EQ(ok[0], 1);
    EXPECT_EQ(ok[1], 0);

    try {
        resolveWorkloadIndices(ws, {"bogus_a", ws[0].name, "bogus_b"},
                               "--mix");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        std::string msg = e.what();
        // Both typos in one error, plus the source and the valid names.
        EXPECT_NE(msg.find("bogus_a"), std::string::npos) << msg;
        EXPECT_NE(msg.find("bogus_b"), std::string::npos) << msg;
        EXPECT_NE(msg.find("--mix"), std::string::npos) << msg;
        EXPECT_NE(msg.find(ws[0].name), std::string::npos) << msg;
    }
}

TEST(Workloads, MixFromNamesBuildsNamedMix)
{
    auto ws = singleCoreWorkloads(SetSize::Tiny);
    Mix m = mixFromNames(ws, {"mcf_pchase", "bfs.kron"}, "test");
    EXPECT_EQ(m.cores(), 2u);
    EXPECT_EQ(m.name, "mcf_pchase+bfs.kron");
    EXPECT_FALSE(m.homogeneous);
    EXPECT_EQ(m.suite, Suite::Gap);   // any GAP slot marks the mix GAP

    Mix h = mixFromNames(ws, {"mcf_pchase", "mcf_pchase"}, "test");
    EXPECT_TRUE(h.homogeneous);
    EXPECT_EQ(h.suite, Suite::Spec);
}
