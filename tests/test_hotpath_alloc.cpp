/**
 * Dynamic check of the hot-path zero-allocation contract.
 *
 * Counting overrides of the global operator new/delete measure heap
 * traffic around Simulator::step(). After a warmup long enough to reach
 * every structure's high-water mark (two full passes over a cyclic
 * trace), the per-cycle loop must not allocate or free at all: the
 * core's in-flight tables are FlatTables sized at construction, the
 * cache/DRAM queues are reserved Rings/vectors, and MSHR/DRAM waiter
 * vectors recycle their capacity through pools.
 *
 * This is the runtime complement to tools/hotpath_lint.py, which bans
 * the same constructs statically inside `// tlpsim:hot` regions. The
 * counters are plain (non-atomic) because the whole test is
 * single-threaded; the override itself is process-global, so the test
 * lives in its own binary.
 */

#include <cstdint>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "sim/system_config.hh"
#include "workloads/workload.hh"

namespace
{

std::uint64_t g_news = 0;
std::uint64_t g_deletes = 0;

} // namespace

void *
operator new(std::size_t size)
{
    ++g_news;
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc{};
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    ++g_news;
    std::size_t a = static_cast<std::size_t>(align);
    if (a < sizeof(void *))
        a = sizeof(void *);
    void *p = nullptr;
    if (posix_memalign(&p, a, size ? size : 1) == 0)
        return p;
    throw std::bad_alloc{};
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return ::operator new(size, align);
}

void
operator delete(void *p) noexcept
{
    if (p != nullptr)
        ++g_deletes;
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    ::operator delete(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    ::operator delete(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    ::operator delete(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    ::operator delete(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    ::operator delete(p);
}

namespace
{

using namespace tlpsim;

const workloads::WorkloadSpec &
pickWorkload(const char *name)
{
    static auto specs
        = workloads::singleCoreWorkloads(workloads::SetSize::Tiny);
    for (const auto &w : specs) {
        if (w.name == name)
            return w;
    }
    return specs.front();
}

/** Steady-state allocations per `steps` simulated cycles under
 *  `scheme` on `workload`, after `warmup_steps` cycles of warmup. */
std::uint64_t
steadyStateAllocs(const char *workload, const SchemeConfig &scheme,
                  unsigned warmup_steps, unsigned steps)
{
    constexpr std::uint64_t kTraceInstrs = 4000;
    Trace trace = workloads::buildTrace(pickWorkload(workload),
                                        kTraceInstrs, /*seed=*/1);

    SystemConfig cfg = SystemConfig::cascadeLake(1);
    cfg.scheme = scheme;
    Simulator sim(cfg, std::vector<const Trace *>{&trace});

    // Warmup: reach every high-water mark. The trace repeats
    // cyclically, so this covers its full footprint several times.
    for (unsigned i = 0; i < warmup_steps; ++i)
        sim.step();

    const std::uint64_t news_before = g_news;
    const std::uint64_t deletes_before = g_deletes;
    for (unsigned i = 0; i < steps; ++i)
        sim.step();
    const std::uint64_t news = g_news - news_before;
    const std::uint64_t deletes = g_deletes - deletes_before;

    EXPECT_GT(sim.core(0).retired(), kTraceInstrs * 2)
        << "warmup too short to cycle the trace";
    return news + deletes;
}

TEST(HotPathAlloc, CountersActuallyCount)
{
    const std::uint64_t before = g_news;
    auto *p = new int(42);
    EXPECT_GT(g_news, before);
    const std::uint64_t frees_before = g_deletes;
    delete p;
    EXPECT_GT(g_deletes, frees_before);
}

TEST(HotPathAlloc, BaselineSchemeSteadyStateIsAllocationFree)
{
    EXPECT_EQ(steadyStateAllocs("mcf_pchase", SchemeConfig::baseline(),
                                400'000, 100'000),
              0u);
}

TEST(HotPathAlloc, TlpSchemeSteadyStateIsAllocationFree)
{
    // The full paper scheme: FLP selective delay + SLP filtering +
    // IPCP/SPP prefetchers — the busiest per-cycle path in the system.
    EXPECT_EQ(steadyStateAllocs("mcf_pchase", SchemeConfig::tlp(),
                                400'000, 100'000),
              0u);
}

TEST(HotPathAlloc, GraphWorkloadSteadyStateIsAllocationFree)
{
    EXPECT_EQ(steadyStateAllocs("bfs.kron", SchemeConfig::tlp(),
                                400'000, 100'000),
              0u);
}

} // namespace
