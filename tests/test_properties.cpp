/**
 * Property-style parameterized sweeps over configuration space: cache
 * geometry invariants, DRAM bandwidth monotonicity, off-chip threshold
 * monotonicity, perceptron convergence across table sizes, and page
 * buffer behaviour across geometries.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "common/rng.hh"
#include "mem/dram.hh"
#include "offchip/offchip_predictor.hh"
#include "sim/experiment.hh"
#include "test_util.hh"

using namespace tlpsim;
using namespace tlpsim::test;

// --- Cache geometry: hits guaranteed within capacity ------------------------

struct CacheGeom
{
    unsigned sets;
    unsigned ways;
};

class CacheGeometryTest : public ::testing::TestWithParam<CacheGeom>
{};

TEST_P(CacheGeometryTest, WorkingSetWithinCapacityAlwaysHitsAfterWarm)
{
    auto [sets, ways] = GetParam();
    StatGroup stats("t");
    MockBackend lower(10);
    Cache::Params p;
    p.name = "c";
    p.sets = sets;
    p.ways = ways;
    p.latency = 1;
    p.mshrs = 16;
    p.rq_size = 32;
    Cache c(p, &lower, &stats);
    MockClient client;

    const unsigned blocks = sets * ways;
    Cycle t = 0;
    // Two passes over exactly-capacity working set; second pass all hits.
    for (int pass = 0; pass < 2; ++pass) {
        for (unsigned b = 0; b < blocks; ++b) {
            ASSERT_TRUE(c.sendRead(makeLoad(Addr{b} * 64, &client, t)));
            t = runFor(t, 16, c, lower);
        }
    }
    EXPECT_EQ(stats.get("c.load_miss"), blocks);
    EXPECT_EQ(stats.get("c.load_hit"), blocks);
}

TEST_P(CacheGeometryTest, ProbeAgreesWithContents)
{
    auto [sets, ways] = GetParam();
    StatGroup stats("t");
    MockBackend lower(5);
    Cache::Params p;
    p.name = "c";
    p.sets = sets;
    p.ways = ways;
    p.latency = 1;
    p.mshrs = 8;
    Cache c(p, &lower, &stats);
    MockClient client;

    Cycle t = 0;
    Rng rng(11);
    std::vector<Addr> inserted;
    for (int i = 0; i < 32; ++i) {
        Addr a = rng.below(1u << 20) * 64;
        c.sendRead(makeLoad(a, &client, t));
        t = runFor(t, 12, c, lower);
        inserted.push_back(a);
    }
    // Whatever probe() reports as present must serve a hit.
    for (Addr a : inserted) {
        if (!c.probe(a))
            continue;
        std::uint64_t before = stats.get("c.load_hit");
        c.sendRead(makeLoad(a, &client, t));
        t = runFor(t, 6, c, lower);
        EXPECT_EQ(stats.get("c.load_hit"), before + 1);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryTest,
    ::testing::Values(CacheGeom{1, 1}, CacheGeom{1, 8}, CacheGeom{16, 1},
                      CacheGeom{16, 4}, CacheGeom{64, 8}, CacheGeom{256, 2},
                      CacheGeom{1024, 16}),
    [](const auto &inf) {
        return std::to_string(inf.param.sets) + "s"
            + std::to_string(inf.param.ways) + "w";
    });

// --- DRAM: bandwidth and bank parallelism -----------------------------------

class DramBurstTest : public ::testing::TestWithParam<unsigned>
{};

TEST_P(DramBurstTest, ThroughputMatchesBurstCycles)
{
    unsigned burst = GetParam();
    StatGroup stats("t");
    DramController::Params p;
    p.name = "dram";
    p.burst_cycles = burst;
    p.rq_size = 64;
    DramController dram(p, &stats);
    MockClient client;

    // Saturate with row-hit traffic; completion rate == 1 per burst.
    const int n = 32;
    for (int i = 0; i < n; ++i)
        ASSERT_TRUE(dram.sendRead(makeLoad(0x100000 + static_cast<Addr>(i) * 64,
                                           &client, 0)));
    Cycle t = 0;
    while (client.returns.size() < n && t < 100'000) {
        dram.tick(t);
        ++t;
    }
    ASSERT_EQ(client.returns.size(), static_cast<std::size_t>(n));
    // Total time is dominated by n serialized bursts.
    EXPECT_GE(t, static_cast<Cycle>(n) * burst);
    EXPECT_LE(t, static_cast<Cycle>(n) * burst + 500);
}

INSTANTIATE_TEST_SUITE_P(Bursts, DramBurstTest,
                         ::testing::Values(5u, 10u, 19u, 38u, 76u, 152u));

TEST(DramProperty, MoreBandwidthNeverSlower)
{
    // End-to-end monotonicity: same workload, increasing bandwidth.
    auto specs = workloads::singleCoreWorkloads(workloads::SetSize::Tiny);
    const workloads::WorkloadSpec *mcf = nullptr;
    for (const auto &w : specs) {
        if (w.name == "mcf_pchase")
            mcf = &w;
    }
    ASSERT_NE(mcf, nullptr);
    double last_ipc = 0.0;
    for (double gbps : {1.6, 6.4, 25.6}) {
        SystemConfig cfg = SystemConfig::cascadeLake(1);
        cfg.warmup_instrs = 10'000;
        cfg.sim_instrs = 30'000;
        cfg.dram_gbps_per_core = gbps;
        SimResult r = experiment::runSingleCore(*mcf, cfg);
        EXPECT_GE(r.ipc[0], last_ipc * 0.98) << gbps;   // 2 % tolerance
        last_ipc = r.ipc[0];
    }
}

// --- Off-chip predictor: threshold monotonicity ------------------------------

class TauTest : public ::testing::TestWithParam<int>
{};

TEST_P(TauTest, HigherThresholdNeverPredictsMore)
{
    int tau = GetParam();
    auto count_predictions = [](int tau_high) {
        StatGroup stats("t");
        OffChipPredictor::Params p;
        p.policy = OffchipPolicy::Immediate;
        p.tau_high = tau_high;
        OffChipPredictor pred(p, &stats);
        Rng rng(3);
        int fired = 0;
        for (int i = 0; i < 3000; ++i) {
            Addr ip = 0x400000 + (rng.below(8)) * 4;
            Addr va = (Addr{1} << 32) + rng.below(1 << 16) * 64;
            auto d = pred.predictLoad(ip, va);
            fired += d.spec_now;
            // 70 % of loads from half the PCs go off-chip.
            bool offchip = (ip & 4) != 0 && rng.chance(0.7);
            pred.train(d.meta, offchip);
        }
        return fired;
    };
    EXPECT_GE(count_predictions(tau), count_predictions(tau + 8));
}

INSTANTIATE_TEST_SUITE_P(Taus, TauTest,
                         ::testing::Values(0, 4, 8, 16, 24, 32));

// --- Perceptron: convergence across table sizes ------------------------------

class PerceptronSizeTest : public ::testing::TestWithParam<unsigned>
{};

TEST_P(PerceptronSizeTest, SeparatesTwoClasses)
{
    unsigned entries = GetParam();
    HashedPerceptron p("p", {{"f0", entries}, {"f1", entries}}, 16);
    std::uint16_t pos[2] = {p.indexFor(0, 1111), p.indexFor(1, 2222)};
    std::uint16_t neg[2] = {p.indexFor(0, 3333), p.indexFor(1, 4444)};
    for (int i = 0; i < 100; ++i) {
        p.train(pos, 2, p.predict(pos, 2), true, 0);
        p.train(neg, 2, p.predict(neg, 2), false, 0);
    }
    EXPECT_GT(p.predict(pos, 2), 0);
    EXPECT_LT(p.predict(neg, 2), 0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PerceptronSizeTest,
                         ::testing::Values(16u, 64u, 256u, 1024u, 4096u));

// --- Page buffer geometries ----------------------------------------------------

struct PbGeom
{
    unsigned entries;
    unsigned ways;
};

class PageBufferGeomTest : public ::testing::TestWithParam<PbGeom>
{};

TEST_P(PageBufferGeomTest, TracksLinesWithinResidentPages)
{
    auto [entries, ways] = GetParam();
    PageBuffer::Params p;
    p.entries = entries;
    p.ways = ways;
    PageBuffer pb(p);
    // A single page's lines: first access exactly once per line.
    int firsts = 0;
    for (unsigned rep = 0; rep < 3; ++rep) {
        for (unsigned l = 0; l < kLinesPerPage; ++l)
            firsts += pb.firstAccess(0x7000000 + static_cast<Addr>(l) * 64);
    }
    EXPECT_EQ(firsts, static_cast<int>(kLinesPerPage));
}

INSTANTIATE_TEST_SUITE_P(Geometries, PageBufferGeomTest,
                         ::testing::Values(PbGeom{4, 2}, PbGeom{16, 4},
                                           PbGeom{64, 4}, PbGeom{128, 8}),
                         [](const auto &inf) {
                             return std::to_string(inf.param.entries) + "e"
                                 + std::to_string(inf.param.ways) + "w";
                         });

// --- Workload scale invariants ---------------------------------------------

class TraceLengthTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(TraceLengthTest, RecorderHonorsExactLength)
{
    auto specs = workloads::singleCoreWorkloads(workloads::SetSize::Tiny);
    Trace t = workloads::buildTrace(specs[1], GetParam(), 3);
    EXPECT_EQ(t.size(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Lengths, TraceLengthTest,
                         ::testing::Values(100ull, 1'000ull, 10'000ull,
                                           50'000ull));
