/** Unit tests for src/common: bit ops, RNG, counters, stats, storage. */

#include <gtest/gtest.h>

#include <set>

#include "common/bitops.hh"
#include "common/rng.hh"
#include "common/sat_counter.hh"
#include "common/stats.hh"
#include "common/storage.hh"
#include "common/types.hh"

using namespace tlpsim;

TEST(Types, BlockGeometry)
{
    EXPECT_EQ(kBlockSize, 64u);
    EXPECT_EQ(blockAlign(0x12345), 0x12340u);
    EXPECT_EQ(blockNumber(0x12345), 0x48du);
    EXPECT_EQ(pageNumber(0x12345), 0x12u);
}

TEST(Types, LineOffsetInPage)
{
    EXPECT_EQ(lineOffsetInPage(0x1000), 0u);
    EXPECT_EQ(lineOffsetInPage(0x1040), 1u);
    EXPECT_EQ(lineOffsetInPage(0x1fc0), 63u);
    EXPECT_EQ(lineOffsetInPage(0x2000), 0u);
}

TEST(Types, ByteOffsetInBlock)
{
    EXPECT_EQ(byteOffsetInBlock(0x1000), 0u);
    EXPECT_EQ(byteOffsetInBlock(0x103f), 63u);
    EXPECT_EQ(byteOffsetInBlock(0x1040), 0u);
}

TEST(Types, ToStringCoversAllEnumerators)
{
    EXPECT_STREQ(toString(AccessType::Load), "load");
    EXPECT_STREQ(toString(AccessType::Rfo), "rfo");
    EXPECT_STREQ(toString(AccessType::Prefetch), "prefetch");
    EXPECT_STREQ(toString(AccessType::Writeback), "writeback");
    EXPECT_STREQ(toString(AccessType::Translation), "translation");
    EXPECT_STREQ(toString(MemLevel::Dram), "DRAM");
}

TEST(Bitops, Bits)
{
    EXPECT_EQ(bits(0xffffULL, 0, 4), 0xfu);
    EXPECT_EQ(bits(0xabcdULL, 4, 8), 0xbcu);
    EXPECT_EQ(bits(0xffULL, 0, 64), 0xffULL);
}

TEST(Bitops, FoldedXorReducesRange)
{
    for (std::uint64_t v : {0ULL, 1ULL, 0xdeadbeefULL, ~0ULL}) {
        EXPECT_LT(foldedXor(v, 10), 1024u);
        EXPECT_LT(foldedXor(v, 7), 128u);
    }
}

TEST(Bitops, FoldedXorPreservesLowEntropy)
{
    // Distinct small values must stay distinct after folding.
    std::set<std::uint64_t> outs;
    for (std::uint64_t v = 0; v < 128; ++v)
        outs.insert(foldedXor(v, 10));
    EXPECT_EQ(outs.size(), 128u);
}

TEST(Bitops, Mix64Distributes)
{
    std::set<std::uint64_t> outs;
    for (std::uint64_t v = 0; v < 1000; ++v)
        outs.insert(mix64(v));
    EXPECT_EQ(outs.size(), 1000u);
}

TEST(Bitops, PowerOfTwoAndLog)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(1024));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(48));
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(1024), 10u);
}

TEST(Rng, Deterministic)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowRespectsBound)
{
    Rng r(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(r.below(bound), bound);
    }
}

TEST(Rng, BelowCoversRange)
{
    Rng r(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(3);
    double sum = 0.0;
    for (int i = 0; i < 10'000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10'000.0, 0.5, 0.02);
}

TEST(SatCounter, SaturatesHigh)
{
    SatCounter<5> c;
    for (int i = 0; i < 100; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 15);
}

TEST(SatCounter, SaturatesLow)
{
    SatCounter<5> c;
    for (int i = 0; i < 100; ++i)
        c.decrement();
    EXPECT_EQ(c.value(), -16);
}

TEST(SatCounter, TrainDirection)
{
    SatCounter<5> c;
    c.train(true);
    EXPECT_EQ(c.value(), 1);
    c.train(false);
    c.train(false);
    EXPECT_EQ(c.value(), -1);
}

TEST(SatCounter, ClampOnConstruct)
{
    EXPECT_EQ(SatCounter<5>(100).value(), 15);
    EXPECT_EQ(SatCounter<5>(-100).value(), -16);
    EXPECT_EQ(SatCounter<5>(3).value(), 3);
}

TEST(SatCounter, WidthParameterized)
{
    EXPECT_EQ(SatCounter<3>::kMax, 3);
    EXPECT_EQ(SatCounter<3>::kMin, -4);
    EXPECT_EQ(SatCounter<8>::kMax, 127);
    EXPECT_EQ(SatCounter<8>::kMin, -128);
}

TEST(SatCounterU, Saturates)
{
    SatCounterU<2> c;
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 3u);
    for (int i = 0; i < 10; ++i)
        c.decrement();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, CounterRegistration)
{
    StatGroup g("test");
    Counter *c = g.counter("a.b");
    c->add(3);
    c->add();
    EXPECT_EQ(g.get("a.b"), 4u);
    EXPECT_TRUE(g.has("a.b"));
    EXPECT_FALSE(g.has("a.c"));
    EXPECT_EQ(g.get("a.c"), 0u);
}

TEST(Stats, SameNameSameCounter)
{
    StatGroup g("test");
    Counter *c1 = g.counter("x");
    Counter *c2 = g.counter("x");
    EXPECT_EQ(c1, c2);
}

TEST(Stats, ResetAll)
{
    StatGroup g("test");
    g.counter("x")->add(5);
    g.counter("y")->add(7);
    g.resetAll();
    EXPECT_EQ(g.get("x"), 0u);
    EXPECT_EQ(g.get("y"), 0u);
}

TEST(Stats, DumpSorted)
{
    StatGroup g("test");
    g.counter("b")->add(2);
    g.counter("a")->add(1);
    auto dump = g.dump();
    ASSERT_EQ(dump.size(), 2u);
    EXPECT_EQ(dump[0].first, "a");
    EXPECT_EQ(dump[1].first, "b");
}

TEST(Storage, TotalsAndKilobytes)
{
    StorageBudget b;
    b.add("x", 8192);          // 1 KB
    b.add("y", 4096);          // 0.5 KB
    EXPECT_EQ(b.totalBits(), 12288u);
    EXPECT_DOUBLE_EQ(b.totalKilobytes(), 1.5);
}

TEST(Storage, MergePrefixes)
{
    StorageBudget a;
    a.add("t", 8);
    StorageBudget b;
    b.merge(a, "pre.");
    ASSERT_EQ(b.items().size(), 1u);
    EXPECT_EQ(b.items()[0].name, "pre.t");
}

TEST(Storage, TableRendering)
{
    StorageBudget b;
    b.add("weights", 8192);
    std::string t = b.toTable("Budget");
    EXPECT_NE(t.find("Budget"), std::string::npos);
    EXPECT_NE(t.find("weights"), std::string::npos);
    EXPECT_NE(t.find("TOTAL"), std::string::npos);
}
