/**
 * Unit tests for the StatGroup snapshot/delta mechanism — the windowed
 * measurement primitive behind per-core warmup/measurement windows.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

using namespace tlpsim;

TEST(Stats, SnapshotDeltaMeasuresAWindow)
{
    StatGroup g("sim");
    Counter *a = g.counter("cpu0.instrs");
    Counter *b = g.counter("cpu0.loads");
    a->add(100);
    b->add(7);

    StatSnapshot snap = g.snapshot();
    a->add(25);
    b->add(3);

    auto delta = g.deltaSince(snap);
    ASSERT_EQ(delta.size(), 2u);
    EXPECT_EQ(delta[0].first, "cpu0.instrs");
    EXPECT_EQ(delta[0].second, 25u);
    EXPECT_EQ(delta[1].first, "cpu0.loads");
    EXPECT_EQ(delta[1].second, 3u);
    // The counters themselves keep their absolute values: a snapshot is
    // a read, not a reset.
    EXPECT_EQ(g.get("cpu0.instrs"), 125u);
    EXPECT_EQ(g.get("cpu0.loads"), 10u);
}

TEST(Stats, SnapshotPrefixRestrictsTheWindow)
{
    StatGroup g;
    Counter *c0 = g.counter("cpu0.l1d.load_miss");
    Counter *c1 = g.counter("cpu1.l1d.load_miss");
    Counter *llc = g.counter("llc.load_miss");
    c0->add(1);
    c1->add(1);
    llc->add(1);

    StatSnapshot snap = g.snapshot("cpu0.");
    EXPECT_EQ(snap.prefix(), "cpu0.");
    c0->add(10);
    c1->add(20);
    llc->add(30);

    auto delta = g.deltaSince(snap);
    ASSERT_EQ(delta.size(), 1u);
    EXPECT_EQ(delta[0].first, "cpu0.l1d.load_miss");
    EXPECT_EQ(delta[0].second, 10u);
}

TEST(Stats, PrefixIsAStringPrefixNotAComponentMatch)
{
    // "cpu1." must not swallow "cpu10." style siblings — only exact
    // string-prefix matches belong to the window.
    StatGroup g;
    g.counter("cpu1.instrs")->add(5);
    g.counter("cpu10.instrs")->add(7);

    StatSnapshot snap = g.snapshot("cpu1.");
    g.counter("cpu1.instrs")->add(1);
    g.counter("cpu10.instrs")->add(2);

    auto delta = g.deltaSince(snap);
    ASSERT_EQ(delta.size(), 1u);
    EXPECT_EQ(delta[0].first, "cpu1.instrs");
    EXPECT_EQ(delta[0].second, 1u);
}

TEST(Stats, CounterBornAfterSnapshotDeltasFromZero)
{
    StatGroup g;
    g.counter("cpu0.early")->add(4);
    StatSnapshot snap = g.snapshot("cpu0.");
    g.counter("cpu0.late")->add(9);

    auto delta = g.deltaSince(snap);
    ASSERT_EQ(delta.size(), 2u);
    EXPECT_EQ(delta[0].first, "cpu0.early");
    EXPECT_EQ(delta[0].second, 0u);
    EXPECT_EQ(delta[1].first, "cpu0.late");
    EXPECT_EQ(delta[1].second, 9u);
    EXPECT_EQ(snap.get("cpu0.late"), 0u);
}

TEST(Stats, DeltaIsRepeatableAndNonDestructive)
{
    StatGroup g;
    Counter *c = g.counter("dram.transactions");
    c->add(2);
    StatSnapshot snap = g.snapshot();
    c->add(5);

    auto first = g.deltaSince(snap);
    auto second = g.deltaSince(snap);
    EXPECT_EQ(first, second);
    c->add(1);
    auto third = g.deltaSince(snap);
    ASSERT_EQ(third.size(), 1u);
    EXPECT_EQ(third[0].second, 6u);
}

TEST(Stats, EmptyGroupAndMissingNames)
{
    StatGroup g;
    StatSnapshot snap = g.snapshot();
    EXPECT_TRUE(g.deltaSince(snap).empty());
    EXPECT_EQ(snap.get("never.registered"), 0u);

    StatSnapshot scoped = g.snapshot("cpu0.");
    EXPECT_TRUE(g.deltaSince(scoped).empty());
}

TEST(Stats, OverlappingWindowsAreIndependent)
{
    // Two cores' windows overlap in time but cover different count
    // spans — the per-core measurement-window use case in miniature.
    StatGroup g;
    Counter *c0 = g.counter("cpu0.instrs");
    Counter *c1 = g.counter("cpu1.instrs");

    StatSnapshot w0 = g.snapshot("cpu0.");   // core 0 opens first
    c0->add(100);
    c1->add(400);
    StatSnapshot w1 = g.snapshot("cpu1.");   // core 1 opens later
    c0->add(50);
    c1->add(60);

    auto d0 = g.deltaSince(w0);
    auto d1 = g.deltaSince(w1);
    ASSERT_EQ(d0.size(), 1u);
    ASSERT_EQ(d1.size(), 1u);
    EXPECT_EQ(d0[0].second, 150u);   // everything since core 0 opened
    EXPECT_EQ(d1[0].second, 60u);    // only what came after core 1 opened
}
