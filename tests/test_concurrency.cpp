/**
 * Concurrency stress suite — the tests this repo runs under
 * ThreadSanitizer (and the existing ASan cell) in CI.
 *
 * Covered surfaces, each a real cross-thread interaction in the sweep
 * engine rather than a synthetic two-thread toy:
 *
 *   - the Runner at high job counts over the shared (mutex-guarded)
 *     trace/graph cache, starting cold so workers race to populate it,
 *     with 1-vs-8-jobs bit-identity as the functional oracle;
 *   - two ResultStore writers racing on one store directory (the
 *     documented "two sweep shards on one store" contract:
 *     write-temp-then-rename, last-writer-wins, both rows valid);
 *   - watchdog expiry and cross-thread cancellation concurrent with
 *     Simulator::run's 64 Ki-cycle polling, including the thread_local
 *     independence of the watchdog state and the CancelFlag
 *     release/acquire pairing (the codebase's intended lock-free site).
 *
 * Everything here must pass with -fsanitize=thread; a data race in any
 * of these paths is a test failure even when the values happen to come
 * out right.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/watchdog.hh"
#include "sim/runner.hh"
#include "store/result_store.hh"
#include "workloads/workload.hh"

using namespace tlpsim;
using namespace tlpsim::experiment;
namespace fs = std::filesystem;

namespace
{

SystemConfig
tinyConfig(const SchemeConfig &scheme = SchemeConfig::baseline())
{
    SystemConfig cfg = SystemConfig::cascadeLake(1);
    cfg.warmup_instrs = 5'000;
    cfg.sim_instrs = 20'000;
    cfg.scheme = scheme;
    return cfg;
}

/** A design point far too long to finish: only a watchdog timeout or a
 *  cancellation can end it. */
SystemConfig
endlessConfig()
{
    SystemConfig cfg = SystemConfig::cascadeLake(1);
    cfg.warmup_instrs = 0;
    cfg.sim_instrs = 2'000'000'000;
    return cfg;
}

std::string
freshDir(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) / ("tlpsim_" + name);
    fs::remove_all(dir);
    return dir.string();
}

} // namespace

// --------------------------------------------------------------------------
// CancelFlag / SimCancelledError semantics
// --------------------------------------------------------------------------

// The Runner's retry loop catches SimTimeoutError and re-runs the
// point; a cancellation must never take that path.
static_assert(!std::is_base_of_v<SimTimeoutError, SimCancelledError>,
              "SimCancelledError must not be retried as a timeout");

TEST(CancelFlag, RequestIsStickyAndIdempotent)
{
    watchdog::CancelFlag flag;
    EXPECT_FALSE(flag.requested());
    flag.request();
    EXPECT_TRUE(flag.requested());
    flag.request();   // idempotent
    EXPECT_TRUE(flag.requested());
}

TEST(CancelFlag, PollThrowsOnceThenUnbinds)
{
    watchdog::CancelFlag flag;
    watchdog::bindCancel(&flag);
    watchdog::poll();   // not requested yet: no-op
    flag.request();
    EXPECT_THROW(watchdog::poll(), SimCancelledError);
    // poll() unbound the flag before throwing, so the unwound thread can
    // keep calling poll() (e.g. from a destructor-run drain) safely.
    EXPECT_NO_THROW(watchdog::poll());
}

TEST(CancelFlag, ReleaseAcquireMakesPriorWritesVisible)
{
    // The documented reason the flag is release/acquire instead of
    // relaxed: data written before request() must be visible to the
    // thread that observes requested(). TSan verifies the ordering is
    // real; the assert verifies the value.
    watchdog::CancelFlag flag;
    int payload = 0;
    std::thread controller([&] {
        payload = 42;
        flag.request();
    });
    while (!flag.requested())
        std::this_thread::yield();
    EXPECT_EQ(payload, 42);
    controller.join();
}

// --------------------------------------------------------------------------
// Watchdog expiry / cancellation concurrent with Simulator::run polling
// --------------------------------------------------------------------------

TEST(WatchdogConcurrency, ExpiryUnwindsConcurrentRuns)
{
    // Several threads each arm a tiny budget and start a run that could
    // never finish; every one must unwind with SimTimeoutError via the
    // 64 Ki-cycle poll, independently (the state is thread_local).
    constexpr int kThreads = 4;
    std::atomic<int> timeouts{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&timeouts, t] {
            auto ws = workloads::singleCoreWorkloads(
                workloads::SetSize::Tiny);
            Trace trace = workloads::buildTrace(
                ws[static_cast<std::size_t>(t) % ws.size()], 4'000, 1);
            Simulator sim(endlessConfig(),
                          std::vector<const Trace *>{&trace});
            watchdog::arm(0.05);
            try {
                sim.run();
            } catch (const SimTimeoutError &) {
                ++timeouts;
            }
            watchdog::disarm();
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(timeouts.load(), kThreads);
}

TEST(WatchdogConcurrency, ArmedThreadTimesOutWhileUnarmedThreadFinishes)
{
    // thread_local independence: a timing-out neighbour must not leak
    // its deadline (or its unwinding) into a thread that never armed.
    std::atomic<bool> timed_out{false};
    std::atomic<bool> finished{false};

    std::thread doomed([&] {
        auto ws = workloads::singleCoreWorkloads(workloads::SetSize::Tiny);
        Trace trace = workloads::buildTrace(ws.front(), 4'000, 1);
        Simulator sim(endlessConfig(), std::vector<const Trace *>{&trace});
        watchdog::arm(0.05);
        try {
            sim.run();
        } catch (const SimTimeoutError &) {
            timed_out = true;
        }
        watchdog::disarm();
    });
    std::thread healthy([&] {
        auto ws = workloads::singleCoreWorkloads(workloads::SetSize::Tiny);
        Trace trace = workloads::buildTrace(ws.front(), 4'000, 1);
        Simulator sim(tinyConfig(), std::vector<const Trace *>{&trace});
        SimResult r = sim.run();
        finished = !r.stats.empty();
    });
    doomed.join();
    healthy.join();
    EXPECT_TRUE(timed_out.load());
    EXPECT_TRUE(finished.load());
}

TEST(WatchdogConcurrency, CrossThreadCancelUnwindsSimulatorRun)
{
    // The CancelFlag end to end: a controller thread requests while the
    // simulation thread is deep inside Simulator::run; the run unwinds
    // with SimCancelledError at its next poll.
    watchdog::CancelFlag flag;
    std::atomic<bool> cancelled{false};
    std::atomic<bool> mis_typed{false};

    std::thread sim_thread([&] {
        auto ws = workloads::singleCoreWorkloads(workloads::SetSize::Tiny);
        Trace trace = workloads::buildTrace(ws.front(), 4'000, 1);
        Simulator sim(endlessConfig(), std::vector<const Trace *>{&trace});
        watchdog::bindCancel(&flag);
        try {
            sim.run();
        } catch (const SimCancelledError &) {
            cancelled = true;
        } catch (...) {
            mis_typed = true;
        }
        watchdog::bindCancel(nullptr);
    });

    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    flag.request();
    sim_thread.join();
    EXPECT_TRUE(cancelled.load());
    EXPECT_FALSE(mis_typed.load());
}

// --------------------------------------------------------------------------
// Runner stress: high job counts over the shared trace/graph cache
// --------------------------------------------------------------------------

/**
 * The sanitizer-facing version of the determinism guarantee: start with
 * a cold process-wide trace cache so eight workers race to record the
 * same workloads, and require the resulting grid to be bit-identical to
 * a sequential run (satellite of the 1-vs-N contract in test_runner.cpp,
 * here at 8 jobs and explicitly cold so TSan sees the racy window).
 */
TEST(RunnerConcurrency, ColdCacheGridBitIdentical1v8Jobs)
{
    auto ws = workloads::singleCoreWorkloads(workloads::SetSize::Tiny);
    ASSERT_GE(ws.size(), 4u);
    ws.resize(4);
    std::vector<SystemConfig> grid{tinyConfig(),
                                   tinyConfig(SchemeConfig::tlp())};

    auto run_grid = [&](unsigned jobs) {
        clearTraceCache();   // every worker sees a cold cache
        Runner r(jobs);
        for (const auto &cfg : grid) {
            for (const auto &w : ws)
                r.submitSingle(w, cfg);
        }
        std::vector<SimResult> out;
        for (const auto &cfg : grid) {
            for (const auto &w : ws)
                out.push_back(r.single(w, cfg));
        }
        return out;
    };

    std::vector<SimResult> seq = run_grid(1);
    std::vector<SimResult> par = run_grid(8);

    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        EXPECT_EQ(seq[i].stats, par[i].stats) << "design point " << i;
        EXPECT_EQ(seq[i].ipc, par[i].ipc) << "design point " << i;
        EXPECT_EQ(seq[i].window_cycles, par[i].window_cycles)
            << "design point " << i;
    }
}

TEST(RunnerConcurrency, ManyGettersOnOneJob)
{
    // Eight threads block in get() on the same key while a worker (or a
    // stealing getter) computes it; all must see the same object.
    Runner r(2);
    auto ws = workloads::singleCoreWorkloads(workloads::SetSize::Tiny);
    r.submitSingle(ws.front(), tinyConfig());
    const std::string key = singlePointKey(ws.front(), tinyConfig());

    constexpr int kGetters = 8;
    std::vector<const SimResult *> seen(kGetters, nullptr);
    std::vector<std::thread> threads;
    threads.reserve(kGetters);
    for (int i = 0; i < kGetters; ++i)
        threads.emplace_back([&r, &key, &seen, i] {
            seen[static_cast<std::size_t>(i)] = &r.get(key);
        });
    for (auto &t : threads)
        t.join();
    for (int i = 1; i < kGetters; ++i)
        EXPECT_EQ(seen[static_cast<std::size_t>(i)], seen[0]);
}

TEST(RunnerConcurrency, RequestCancelUnwindsRunningJobs)
{
    // A grid of never-finishing points on four workers; requestCancel()
    // from the main thread must unwind every one with SimCancelledError
    // (not a timeout, not a hang), including points the getter steals
    // after the flag is already up.
    Runner r(4);
    auto ws = workloads::singleCoreWorkloads(workloads::SetSize::Tiny);
    ASSERT_GE(ws.size(), 2u);
    SystemConfig cfg = endlessConfig();
    for (std::size_t i = 0; i < 6; ++i) {
        const auto &w = ws[i % ws.size()];
        SystemConfig point = cfg;
        point.sim_instrs += i;   // distinct keys
        r.submitSingle(w, point);
    }

    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    r.requestCancel();
    EXPECT_TRUE(r.cancelRequested());

    int cancelled = 0;
    for (std::size_t i = 0; i < 6; ++i) {
        const auto &w = ws[i % ws.size()];
        SystemConfig point = cfg;
        point.sim_instrs += i;
        try {
            r.single(w, point);
        } catch (const SimCancelledError &) {
            ++cancelled;
        }
    }
    EXPECT_EQ(cancelled, 6);
}

// --------------------------------------------------------------------------
// Two ResultStore writers racing on one store directory
// --------------------------------------------------------------------------

TEST(StoreConcurrency, TwoWritersOneDirEveryRowStaysValid)
{
    // The documented multi-shard contract: two independent ResultStore
    // instances (two processes in production, two threads under TSan
    // here) hammer the same directory, overlapping on every key. Each
    // save is write-temp-then-rename, so after the dust settles every
    // row must verify and deserialize — last-writer-wins, never torn.
    const std::string dir = freshDir("two_writers");
    constexpr int kKeys = 32;
    constexpr int kRounds = 8;

    auto writer = [&dir](int salt) {
        store::ResultStore mine(dir);
        for (int round = 0; round < kRounds; ++round) {
            for (int k = 0; k < kKeys; ++k) {
                Config row;
                row.set(store::kStatusKey, store::kStatusOk);
                // Writers disagree on purpose: any surviving row is
                // valid, we only require it to be *intact*.
                row.set("value", k * 1000 + salt);
                mine.save("key-" + std::to_string(k), row);
            }
        }
    };

    std::thread a(writer, 1);
    std::thread b(writer, 2);
    a.join();
    b.join();

    store::ResultStore reader(dir);
    for (int k = 0; k < kKeys; ++k) {
        auto row = reader.load("key-" + std::to_string(k));
        ASSERT_TRUE(row.has_value()) << "key-" << k;
        EXPECT_EQ(row->getString(store::kStatusKey, ""), store::kStatusOk);
        const long long v = row->getInt("value", -1);
        EXPECT_TRUE(v == k * 1000 + 1 || v == k * 1000 + 2)
            << "key-" << k << " holds torn value " << v;
    }
    EXPECT_EQ(reader.counters().quarantined, 0u);
}

TEST(StoreConcurrency, ConcurrentLoadersDuringWrites)
{
    // Readers racing the writers: a load() must only ever see a miss or
    // a fully-published row — never quarantine anything, never crash.
    const std::string dir = freshDir("load_race");
    constexpr int kKeys = 16;
    std::atomic<bool> stop{false};
    std::atomic<int> bad_rows{0};

    std::thread writer([&] {
        store::ResultStore mine(dir);
        for (int round = 0; round < 12; ++round) {
            for (int k = 0; k < kKeys; ++k) {
                Config row;
                row.set(store::kStatusKey, store::kStatusOk);
                row.set("value", k);
                mine.save("key-" + std::to_string(k), row);
            }
        }
        stop = true;
    });
    std::thread loader([&] {
        store::ResultStore mine(dir);
        while (!stop.load()) {
            for (int k = 0; k < kKeys; ++k) {
                if (auto row = mine.load("key-" + std::to_string(k))) {
                    if (row->getInt("value", -1) != k)
                        ++bad_rows;
                }
            }
        }
    });
    writer.join();
    loader.join();
    EXPECT_EQ(bad_rows.load(), 0);
}
