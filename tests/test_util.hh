/**
 * @file
 * Shared test scaffolding: a scriptable lower-level memory backend, a
 * completion-capturing client, and a clock helper for driving cache/DRAM
 * units in isolation.
 */

#ifndef TLPSIM_TESTS_TEST_UTIL_HH
#define TLPSIM_TESTS_TEST_UTIL_HH

#include <vector>

#include "mem/packet.hh"

namespace tlpsim::test
{

/**
 * A backend that records everything sent to it and can answer reads after
 * a fixed latency, tagging them with a chosen serve level.
 */
class MockBackend : public MemoryBackend
{
  public:
    explicit MockBackend(Cycle latency = 50,
                         MemLevel serves_as = MemLevel::Dram)
        : latency_(latency), serves_as_(serves_as)
    {}

    bool
    sendRead(const Packet &pkt) override
    {
        if (reject_reads)
            return false;
        reads.push_back(pkt);
        pending_.push_back({pkt, pkt.birth + latency_});
        return true;
    }

    bool
    sendWrite(const Packet &pkt) override
    {
        if (reject_writes)
            return false;
        writes.push_back(pkt);
        return true;
    }

    bool
    sendPrefetch(const Packet &pkt) override
    {
        if (reject_prefetches)
            return false;
        prefetches.push_back(pkt);
        pending_.push_back({pkt, pkt.birth + latency_});
        return true;
    }

    bool probe(Addr) const override { return false; }

    void
    tick(Cycle now) override
    {
        for (std::size_t i = 0; i < pending_.size();) {
            if (pending_[i].second > now) {
                ++i;
                continue;
            }
            Packet resp = pending_[i].first;
            pending_[i] = pending_.back();
            pending_.pop_back();
            resp.served_by = serves_as_;
            if (resp.requestor != nullptr)
                resp.requestor->memReturn(resp);
        }
    }

    std::vector<Packet> reads;
    std::vector<Packet> writes;
    std::vector<Packet> prefetches;
    bool reject_reads = false;
    bool reject_writes = false;
    bool reject_prefetches = false;

  private:
    Cycle latency_;
    MemLevel serves_as_;
    std::vector<std::pair<Packet, Cycle>> pending_;
};

/** Captures completions. */
class MockClient : public MemoryClient
{
  public:
    void memReturn(const Packet &pkt) override { returns.push_back(pkt); }

    std::vector<Packet> returns;
};

/** Make a demand load packet. */
inline Packet
makeLoad(Addr paddr, MemoryClient *client = nullptr, Cycle birth = 0,
         Addr ip = 0x400000)
{
    Packet p;
    p.vaddr = paddr;
    p.paddr = paddr;
    p.ip = ip;
    p.type = AccessType::Load;
    p.requestor = client;
    p.birth = birth;
    return p;
}

/** Tick a set of units for @p cycles starting at @p start. */
template <typename... Units>
Cycle
runFor(Cycle start, Cycle cycles, Units &...units)
{
    for (Cycle c = start; c < start + cycles; ++c)
        (units.tick(c), ...);
    return start + cycles;
}

} // namespace tlpsim::test

#endif // TLPSIM_TESTS_TEST_UTIL_HH
